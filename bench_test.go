// Benchmark harness: one benchmark per figure of the paper's evaluation
// (Figures 1, 6, 7, 8, 9), plus the Algorithm-1 end-to-end run, the
// design-choice ablations called out in DESIGN.md, and micro-benchmarks
// of the computational substrate.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// Each figure benchmark executes the real experiment at the bench scale
// (see internal/core.BenchScale) and prints the regenerated table — the
// textual equivalent of the paper's plot — to stdout. Expensive shared
// setup (the trained (Vth, T) grid used by Figures 7, 8 and 9) runs once
// per process outside the timed region.
package snnsec

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"snnsec/internal/attack"
	"snnsec/internal/autodiff"
	"snnsec/internal/compute"
	"snnsec/internal/core"
	"snnsec/internal/dataset"
	"snnsec/internal/explore"
	"snnsec/internal/nn"
	"snnsec/internal/report"
	"snnsec/internal/serve"
	"snnsec/internal/snn"
	"snnsec/internal/stream"
	"snnsec/internal/tensor"
	"snnsec/internal/train"
)

// ---------------------------------------------------------------------------
// Shared fixtures

var (
	sweepOnce sync.Once
	sweepVal  *explore.Sweep
	sweepTest *dataset.Dataset
	sweepErr  error
)

// sharedSweep trains the (Vth, T) grid once per process; Figures 7, 8 and
// 9 reuse it so the benchmark suite does not retrain the same 12 networks
// three times.
func sharedSweep(b *testing.B) (*explore.Sweep, *dataset.Dataset) {
	b.Helper()
	sweepOnce.Do(func() {
		s := core.ScaleFromEnv()
		trainDS, testDS, err := core.LoadData(s.Data)
		if err != nil {
			sweepErr = err
			return
		}
		sweepTest = testDS
		sweepVal, sweepErr = explore.TrainGrid(gridConfig(s), trainDS, testDS)
	})
	if sweepErr != nil {
		b.Fatal(sweepErr)
	}
	return sweepVal, sweepTest
}

func gridConfig(s core.Scale) explore.Config {
	return explore.Config{
		Vths:              s.Vths,
		Ts:                s.Ts,
		Epsilons:          s.HeatmapEpsilons,
		AccuracyThreshold: 0.70,
		Train: train.Config{
			Epochs:    s.Epochs,
			BatchSize: s.BatchSize,
			GradClip:  s.GradClip,
			Shuffle:   tensor.NewRand(s.Seed, 0x5f),
		},
		NewOptimizer: func() train.Optimizer { return train.NewAdam(s.LR) },
		AttackSteps:  s.AttackSteps,
		EvalBatch:    s.EvalBatch,
		Workers:      s.Workers,
		Seed:         s.Seed,
		Build: func(vth float64, T int) (*snn.Network, error) {
			return core.NewSpikingLeNet5(s.Net, vth, T, core.SNNOptions{})
		},
	}
}

// ---------------------------------------------------------------------------
// Figure 1 — motivational case study (CNN vs SNN under PGD)

func BenchmarkFig1MotivationalStudy(b *testing.B) {
	s := core.ScaleFromEnv()
	var res *core.Fig1Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = core.RunFig1(s, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	report.WriteCurves(os.Stdout, "\nFigure 1 — PGD on CNN vs SNN (default structural parameters)", []report.Series{
		{Name: "CNN", Points: res.CNN},
		{Name: fmt.Sprintf("SNN(%g,%d)", s.DefaultVth, s.DefaultT), Points: res.SNN},
	})
	if eps, ok := res.Crossover(); ok {
		fmt.Printf("turnaround point: eps = %g (paper: 0.5)\n", eps)
		b.ReportMetric(eps, "crossover_eps")
	} else {
		fmt.Println("no crossover observed")
	}
	b.ReportMetric(res.CNNClean, "cnn_clean_acc")
	b.ReportMetric(res.SNNClean, "snn_clean_acc")
}

// ---------------------------------------------------------------------------
// Figure 6 — learnability heat map (trains the full grid)

func BenchmarkFig6LearnabilityHeatmap(b *testing.B) {
	s := core.ScaleFromEnv()
	trainDS, testDS, err := core.LoadData(s.Data)
	if err != nil {
		b.Fatal(err)
	}
	cfg := gridConfig(s)
	var sw *explore.Sweep
	for i := 0; i < b.N; i++ {
		sw, err = explore.TrainGrid(cfg, trainDS, testDS)
		if err != nil {
			b.Fatal(err)
		}
	}
	// Publish for the dependent figure benchmarks.
	sweepOnce.Do(func() { sweepVal, sweepTest = sw, testDS })
	res := sw.AttackAll(testDS, nil)
	fmt.Println()
	report.AccuracyGrid(res).WriteASCII(os.Stdout)
	learnable := 0
	for i := range sw.Points {
		if sw.Points[i].Learnable {
			learnable++
		}
	}
	fmt.Printf("learnable points: %d/%d (Ath = 0.70)\n", learnable, len(sw.Points))
	b.ReportMetric(float64(learnable), "learnable_points")
}

// ---------------------------------------------------------------------------
// Figures 7 and 8 — robustness heat maps at ε = 1.0 and ε = 1.5

func robustnessHeatmapBench(b *testing.B, eps float64) {
	sw, testDS := sharedSweep(b)
	b.ResetTimer()
	var res *explore.Result
	for i := 0; i < b.N; i++ {
		res = sw.AttackAll(testDS, []float64{eps})
	}
	b.StopTimer()
	fmt.Println()
	report.RobustnessGrid(res, eps).WriteASCII(os.Stdout)
	// Spread between the most and least robust learnable point — the
	// paper's "high clean accuracy is no guarantee of robustness".
	lo, hi := 1.0, 0.0
	for i := range res.Points {
		if v, ok := res.Points[i].RobustAt(eps); ok {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	if hi >= lo {
		fmt.Printf("robustness spread across learnable grid at eps=%g: %.3f .. %.3f\n", eps, lo, hi)
		b.ReportMetric(hi-lo, "robustness_spread")
	}
}

func BenchmarkFig7RobustnessHeatmapEps1(b *testing.B)  { robustnessHeatmapBench(b, 1.0) }
func BenchmarkFig8RobustnessHeatmapEps15(b *testing.B) { robustnessHeatmapBench(b, 1.5) }

// ---------------------------------------------------------------------------
// Figure 9 — tracked (Vth, T) combinations vs the CNN

func BenchmarkFig9RobustnessCurves(b *testing.B) {
	s := core.ScaleFromEnv()
	sw, testDS := sharedSweep(b)
	full := sw.AttackAll(testDS, s.HeatmapEpsilons)
	combos := core.SelectFig9Combos(full)
	b.ResetTimer()
	var res *core.Fig9Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = core.RunFig9(s, combos, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	series := []report.Series{{Name: "CNN", Points: res.CNN}}
	for _, c := range res.Combos {
		series = append(series, report.Series{Name: fmt.Sprintf("SNN(%g,%d)", c.Vth, c.T), Points: c.Curve})
	}
	fmt.Println()
	report.WriteCurves(os.Stdout, "Figure 9 — tracked (Vth, T) combinations vs CNN under PGD", series)
	gap := res.MaxGapOverCNN()
	fmt.Printf("max robustness gap over CNN: %.3f (paper: up to 0.85)\n", gap)
	b.ReportMetric(gap, "max_gap_over_cnn")
}

// ---------------------------------------------------------------------------
// Algorithm 1 — end-to-end exploration on a reduced grid

func BenchmarkAlgorithm1Exploration(b *testing.B) {
	// A 2×2 grid keeps this end-to-end (train + gate + attack) benchmark
	// affordable; the full preset is covered by the Figure 6-8 pipeline.
	s := core.ScaleFromEnv()
	s.Vths = s.Vths[:2]
	s.Ts = s.Ts[:2]
	trainDS, testDS, err := core.LoadData(s.Data)
	if err != nil {
		b.Fatal(err)
	}
	cfg := gridConfig(s)
	var res *explore.Result
	for i := 0; i < b.N; i++ {
		res, err = explore.Run(cfg, trainDS, testDS)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.LearnableCount()), "learnable_points")
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md): encoder, surrogate, reset mode, leak factor.
// Each trains the same small spiking network with one knob changed and
// reports clean and robust accuracy at ε = 1.0.

type ablationVariant struct {
	name string
	opts core.SNNOptions
}

func runAblation(b *testing.B, title string, variants []ablationVariant) {
	s := core.ScaleFromEnv()
	s.Data.TestN = 50
	trainDS, testDS, err := core.LoadData(s.Data)
	if err != nil {
		b.Fatal(err)
	}
	const (
		vth = 1.0
		T   = 8
		eps = 1.0
	)
	bounds := attack.DatasetBounds(testDS)
	type row struct {
		name          string
		clean, robust float64
	}
	var rows []row
	for i := 0; i < b.N; i++ {
		rows = rows[:0]
		for _, v := range variants {
			net, err := core.NewSpikingLeNet5(s.Net, vth, T, v.opts)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := train.Fit(net, trainDS, train.Config{
				Epochs: s.Epochs, BatchSize: s.BatchSize,
				Optimizer: train.NewAdam(s.LR), GradClip: s.GradClip,
			}); err != nil {
				b.Fatal(err)
			}
			ev := attack.Evaluate(net, testDS, attack.PGD{
				Eps: eps, Steps: s.AttackSteps, RandomStart: true,
				Rand: tensor.NewRand(s.Seed, 0xab1a), Bounds: bounds,
			}, s.EvalBatch)
			rows = append(rows, row{v.name, ev.CleanAccuracy, ev.RobustAccuracy})
		}
	}
	fmt.Printf("\n%s (Vth=%g, T=%d, PGD eps=%g)\n", title, vth, T, eps)
	fmt.Printf("%-28s %8s %8s\n", "variant", "clean", "robust")
	for _, r := range rows {
		fmt.Printf("%-28s %8.3f %8.3f\n", r.name, r.clean, r.robust)
	}
}

func BenchmarkAblationEncoder(b *testing.B) {
	runAblation(b, "Encoder ablation", []ablationVariant{
		{"poisson-rate (paper)", core.SNNOptions{}},
		{"constant-current", core.SNNOptions{Encoder: snn.ConstantCurrentEncoder{Gain: 1}}},
		{"latency", core.SNNOptions{Encoder: snn.LatencyEncoder{Gain: 1, T: 8}}},
	})
}

func BenchmarkAblationSurrogate(b *testing.B) {
	runAblation(b, "Surrogate-gradient ablation", []ablationVariant{
		{"fast-sigmoid beta=25", core.SNNOptions{Surrogate: snn.FastSigmoid{Beta: 25}}},
		{"fast-sigmoid beta=100", core.SNNOptions{Surrogate: snn.FastSigmoid{Beta: 100}}},
		{"sigmoid-prime beta=5", core.SNNOptions{Surrogate: snn.SigmoidPrime{Beta: 5}}},
		{"piecewise-linear w=0.5", core.SNNOptions{Surrogate: snn.PiecewiseLinear{Width: 0.5}}},
	})
}

func BenchmarkAblationReset(b *testing.B) {
	runAblation(b, "Reset-mode ablation", []ablationVariant{
		{"reset-to-zero (paper)", core.SNNOptions{Reset: snn.ResetZero}},
		{"reset-by-subtraction", core.SNNOptions{Reset: snn.ResetSubtract}},
	})
}

func BenchmarkAblationLeak(b *testing.B) {
	runAblation(b, "Leak-factor ablation (Sharmin et al. [36])", []ablationVariant{
		{"alpha=0.7 (strong leak)", core.SNNOptions{Alpha: 0.7}},
		{"alpha=0.9 (default)", core.SNNOptions{Alpha: 0.9}},
		{"alpha=1.0 (IF, no leak)", core.SNNOptions{Alpha: 1.0}},
	})
}

// ---------------------------------------------------------------------------
// Micro-benchmarks of the substrate

func BenchmarkConv2DForward16(b *testing.B) {
	r := tensor.NewRand(1, 1)
	x := tensor.RandN(r, 0, 1, 32, 1, 16, 16)
	w := tensor.RandN(r, 0, 1, 6, 1, 5, 5)
	bias := tensor.RandN(r, 0, 1, 6)
	p := tensor.ConvParams{Stride: 1, Padding: 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.Conv2D(x, w, bias, p)
	}
}

func BenchmarkMatMul128(b *testing.B) {
	r := tensor.NewRand(2, 2)
	x := tensor.RandN(r, 0, 1, 128, 128)
	y := tensor.RandN(r, 0, 1, 128, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMul(x, y)
	}
}

func BenchmarkLIFStep(b *testing.B) {
	r := tensor.NewRand(3, 3)
	cfg := snn.DefaultNeuronConfig()
	cur := tensor.RandN(r, 0.5, 0.5, 32, 256)
	mem := tensor.RandN(r, 0, 0.3, 32, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tp := autodiff.NewTape()
		snn.LIFStep(tp, cfg, tp.Const(cur), tp.Const(mem))
	}
}

func BenchmarkSNNForwardT12(b *testing.B) {
	net, err := core.NewSpikingLeNet5(core.DefaultLeNetConfig(16, 1), 1, 12, core.SNNOptions{})
	if err != nil {
		b.Fatal(err)
	}
	r := tensor.NewRand(4, 4)
	x := tensor.RandN(r, 0, 1, 8, 1, 16, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tp := autodiff.NewTape()
		net.Logits(tp, tp.Const(x))
	}
}

func BenchmarkSNNBackwardT12(b *testing.B) {
	net, err := core.NewSpikingLeNet5(core.DefaultLeNetConfig(16, 1), 1, 12, core.SNNOptions{})
	if err != nil {
		b.Fatal(err)
	}
	r := tensor.NewRand(5, 5)
	x := tensor.RandN(r, 0, 1, 8, 1, 16, 16)
	labels := []int{0, 1, 2, 3, 4, 5, 6, 7}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range net.Params() {
			p.ZeroGrad()
		}
		tp := autodiff.NewTape()
		loss := tp.SoftmaxCrossEntropy(net.Logits(tp, tp.Const(x)), labels)
		tp.Backward(loss)
	}
}

func BenchmarkCNNForward(b *testing.B) {
	cnn, err := core.NewLeNet5CNN(core.DefaultLeNetConfig(16, 1))
	if err != nil {
		b.Fatal(err)
	}
	r := tensor.NewRand(6, 6)
	x := tensor.RandN(r, 0, 1, 8, 1, 16, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tp := autodiff.NewTape()
		cnn.Logits(tp, tp.Const(x))
	}
}

func BenchmarkPGDStepOnCNN(b *testing.B) {
	cnn, err := core.NewLeNet5CNN(core.DefaultLeNetConfig(16, 1))
	if err != nil {
		b.Fatal(err)
	}
	r := tensor.NewRand(7, 7)
	x := tensor.RandN(r, 0, 1, 8, 1, 16, 16)
	labels := []int{0, 1, 2, 3, 4, 5, 6, 7}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		attack.InputGradient(cnn, x, labels)
	}
}

func BenchmarkSynthDigits(b *testing.B) {
	cfg := dataset.DefaultSynthConfig(100, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dataset.SynthDigits(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Compute-backend benchmarks: each kernel on the Serial and Parallel
// backends, plus the old-vs-new kernel pairs of the batched-conv PR
// (per-image vs batched conv pipeline, naive vs blocked matmul). The
// pairs feed BENCH_compute.json (see TestWriteComputeBenchJSON), which
// keeps one history record per PR so the perf trajectory of the compute
// layer is tracked across the stack.

func benchMatMul256(b *testing.B, be compute.Backend) {
	r := tensor.NewRand(9, 9)
	x := tensor.RandN(r, 0, 1, 256, 256)
	y := tensor.RandN(r, 0, 1, 256, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMulOn(be, x, y)
	}
}

func BenchmarkMatMul256Serial(b *testing.B)   { benchMatMul256(b, compute.NewSerial()) }
func BenchmarkMatMul256Parallel(b *testing.B) { benchMatMul256(b, compute.NewParallel(0)) }

// benchMatMul256Naive is the naive-reference side of the naive-vs-blocked
// matmul pair.
func benchMatMul256Naive(b *testing.B, be compute.Backend) {
	r := tensor.NewRand(9, 9)
	x := tensor.RandN(r, 0, 1, 256, 256)
	y := tensor.RandN(r, 0, 1, 256, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMulNaiveOn(be, x, y)
	}
}

func BenchmarkMatMul256Naive(b *testing.B) { benchMatMul256Naive(b, compute.NewSerial()) }

func convBenchFixture() (x, w, bias *tensor.Tensor, p tensor.ConvParams) {
	r := tensor.NewRand(10, 10)
	x = tensor.RandN(r, 0, 1, 32, 1, 16, 16)
	w = tensor.RandN(r, 0, 1, 6, 1, 5, 5)
	bias = tensor.RandN(r, 0, 1, 6)
	return x, w, bias, tensor.ConvParams{Stride: 1, Padding: 2}
}

func benchConvForwardBatch32(b *testing.B, be compute.Backend) {
	x, w, bias, p := convBenchFixture()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.Conv2DOn(be, x, w, bias, p)
	}
}

func BenchmarkConvForwardBatch32Serial(b *testing.B) {
	benchConvForwardBatch32(b, compute.NewSerial())
}
func BenchmarkConvForwardBatch32Parallel(b *testing.B) {
	benchConvForwardBatch32(b, compute.NewParallel(0))
}

// benchConvForwardBatch32PerImage is the per-image reference side of the
// per-image-vs-batched conv pair (PR-1 path: one im2col and one naive
// matmul per image).
func benchConvForwardBatch32PerImage(b *testing.B, be compute.Backend) {
	x, w, bias, p := convBenchFixture()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.Conv2DPerImageOn(be, x, w, bias, p)
	}
}

func BenchmarkConvForwardBatch32PerImage(b *testing.B) {
	benchConvForwardBatch32PerImage(b, compute.NewSerial())
}

func convBackwardBenchFixture() (x, w, gout *tensor.Tensor, p tensor.ConvParams) {
	x, w, _, p = convBenchFixture()
	r := tensor.NewRand(12, 12)
	gout = tensor.RandN(r, 0, 1, 32, 6, 16, 16)
	return x, w, gout, p
}

func benchConvBackwardBatch32(b *testing.B, be compute.Backend) {
	x, w, gout, p := convBackwardBenchFixture()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.Conv2DBackwardOn(be, x, w, gout, p, true)
	}
}

func BenchmarkConvBackwardBatch32Serial(b *testing.B) {
	benchConvBackwardBatch32(b, compute.NewSerial())
}

func benchConvBackwardBatch32PerImage(b *testing.B, be compute.Backend) {
	x, w, gout, p := convBackwardBenchFixture()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.Conv2DBackwardPerImageOn(be, x, w, gout, p, true)
	}
}

func BenchmarkConvBackwardBatch32PerImage(b *testing.B) {
	benchConvBackwardBatch32PerImage(b, compute.NewSerial())
}

func benchSNNBPTTStep(b *testing.B, be compute.Backend) {
	net, err := core.NewSpikingLeNet5(core.DefaultLeNetConfig(16, 1), 1, 12, core.SNNOptions{})
	if err != nil {
		b.Fatal(err)
	}
	r := tensor.NewRand(11, 11)
	x := tensor.RandN(r, 0, 1, 8, 1, 16, 16)
	labels := []int{0, 1, 2, 3, 4, 5, 6, 7}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range net.Params() {
			p.ZeroGrad()
		}
		tp := autodiff.NewTapeOn(be)
		loss := tp.SoftmaxCrossEntropy(net.Logits(tp, tp.Const(x)), labels)
		tp.Backward(loss)
	}
}

func BenchmarkSNNBPTTStepSerial(b *testing.B)   { benchSNNBPTTStep(b, compute.NewSerial()) }
func BenchmarkSNNBPTTStepParallel(b *testing.B) { benchSNNBPTTStep(b, compute.NewParallel(0)) }

// ---------------------------------------------------------------------------
// Spike-plane engine benchmarks: the bit-packed select-accumulate
// kernels against the dense micro-kernels they replace, on identical
// binary inputs, across spike densities — and end-to-end through the
// BPTT loop of a pooling-free spiking network whose every synapse is
// spike-fed.

// binaryMatrix returns a deterministic 0/1 matrix of the given density.
func binaryMatrix(seed uint64, density float64, m, k int) *tensor.Tensor {
	u := tensor.RandU(tensor.NewRand(seed, 0x51), 0, 1, m, k)
	d := u.Data()
	for i, v := range d {
		if v < density {
			d[i] = 1
		} else {
			d[i] = 0
		}
	}
	return u
}

func benchSpikeMatMul256(b *testing.B, density float64, sparse bool) {
	a := binaryMatrix(14, density, 256, 256)
	y := tensor.RandN(tensor.NewRand(15, 15), 0, 1, 256, 256)
	sp := tensor.PackSpikes(a)
	ser := compute.NewSerial()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if sparse {
			tensor.SpikeMatMulOn(ser, sp, y)
		} else {
			tensor.MatMulOn(ser, a, y)
		}
	}
}

func BenchmarkSpikeMatMul256d10Dense(b *testing.B)  { benchSpikeMatMul256(b, 0.1, false) }
func BenchmarkSpikeMatMul256d10Sparse(b *testing.B) { benchSpikeMatMul256(b, 0.1, true) }
func BenchmarkSpikeMatMul256d50Dense(b *testing.B)  { benchSpikeMatMul256(b, 0.5, false) }
func BenchmarkSpikeMatMul256d50Sparse(b *testing.B) { benchSpikeMatMul256(b, 0.5, true) }

// newSpikeBenchNet builds a pooling-free spiking LeNet variant
// (stride-2 convolutions downsample instead of average pooling), so
// every synapse input is a binary plane and the whole T-step loop runs
// in packed form. Vth = 1.5 keeps the hidden spike rates at ~2% on
// this fixture — the sparse regime of the paper's grid corners, well
// inside the ≤10% density the acceptance gate names; the measured rate
// is recorded as spike_bptt_density when SNNSEC_WRITE_BENCH runs.
func newSpikeBenchNet() *snn.Network {
	r := tensor.NewRand(16, 0x5b1e)
	cfg := snn.NeuronConfig{Vth: 1.5, Alpha: 0.9, Reset: snn.ResetZero, Surrogate: snn.FastSigmoid{Beta: 25}}
	return &snn.Network{
		Encoder: snn.NewPoissonEncoder(1, 17, 0xe4),
		Hidden: []snn.Layer{
			{Syn: nn.NewConv2D(r, 1, 6, 5, 2, 2), Cfg: cfg},
			{Syn: nn.NewConv2D(r, 6, 12, 3, 2, 1), Cfg: cfg},
			{Syn: nn.NewSequential(nn.Flatten{}, nn.NewLinear(r, 12*4*4, 48)), Cfg: cfg},
		},
		Readout:    nn.NewLinear(r, 48, core.NumClasses),
		ReadoutCfg: cfg,
		Mode:       snn.ReadoutSpikeCount,
		T:          12,
		LogitScale: 10,
	}
}

// spikeBenchInput: intensities in [0, 0.2], so the Poisson front end
// fires at ≤ 10% density.
func spikeBenchInput() *tensor.Tensor {
	return tensor.RandU(tensor.NewRand(18, 18), 0, 0.2, 32, 1, 16, 16)
}

func benchSpikeSNNBPTTStep(b *testing.B, spikeKernels bool) {
	pol := compute.DefaultDispatchPolicy()
	if spikeKernels {
		pol.Mode = compute.DispatchSparse
	} else {
		pol.Mode = compute.DispatchDense
	}
	compute.SetDispatchPolicy(pol)
	defer compute.SetDispatchPolicy(compute.DefaultDispatchPolicy())
	net := newSpikeBenchNet()
	x := spikeBenchInput()
	labels := make([]int, x.Dim(0))
	for i := range labels {
		labels[i] = i % core.NumClasses
	}
	be := compute.NewSerial()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range net.Params() {
			p.ZeroGrad()
		}
		tp := autodiff.NewTapeOn(be)
		loss := tp.SoftmaxCrossEntropy(net.Logits(tp, tp.Const(x)), labels)
		tp.Backward(loss)
	}
}

func BenchmarkSpikeSNNBPTTStepDenseKernels(b *testing.B) { benchSpikeSNNBPTTStep(b, false) }
func BenchmarkSpikeSNNBPTTStepSpikeKernels(b *testing.B) { benchSpikeSNNBPTTStep(b, true) }

// spikeBPTTDensity reports the mean hidden spike rate of the sparse
// BPTT fixture, recorded into the bench JSON so the "≤10% density"
// claim on the SNNBPTTStep pair is checkable.
func spikeBPTTDensity() float64 {
	net := newSpikeBenchNet()
	net.Record = &snn.Trace{}
	tp := autodiff.NewTape()
	net.Logits(tp, tp.Const(spikeBenchInput()))
	sum := 0.0
	for _, r := range net.Record.SpikeRates {
		sum += r
	}
	return sum / float64(len(net.Record.SpikeRates))
}

// ---------------------------------------------------------------------------
// Tape-free serving (PR 7)

// newServeBenchNet is the latency-serving fixture: a small dense-layer
// SNN at the paper's default window T=64, evaluated one sample per
// forward — the regime where the tape's per-step bookkeeping dominates
// and the tape-free engine pays off most.
func newServeBenchNet() *snn.Network {
	r := tensor.NewRand(21, 0x5e4e)
	cfg := snn.NeuronConfig{Vth: 0.3, Alpha: 0.9, Reset: snn.ResetZero, Surrogate: snn.FastSigmoid{Beta: 25}}
	return &snn.Network{
		Encoder: snn.NewPoissonEncoder(0.5, 23, 0xe5),
		Hidden: []snn.Layer{
			{Syn: nn.NewSequential(nn.Flatten{}, nn.NewLinear(r, 64, 8)), Cfg: cfg},
			{Syn: nn.NewLinear(r, 8, 8), Cfg: cfg},
		},
		Readout:    nn.NewLinear(r, 8, core.NumClasses),
		ReadoutCfg: cfg,
		Mode:       snn.ReadoutSpikeCount,
		T:          64,
		LogitScale: 10,
	}
}

func serveBenchInput() *tensor.Tensor {
	return tensor.RandU(tensor.NewRand(22, 22), 0, 1, 1, 1, 8, 8)
}

func benchServeForwardTaped(b *testing.B) {
	net := newServeBenchNet()
	be := compute.NewSerial()
	x := serveBenchInput()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		train.LogitsOn(be, net, x)
	}
}

func benchServeForwardTapeFree(b *testing.B) {
	net := newServeBenchNet()
	eng, err := serve.NewEngine(net, compute.NewSerial(), []int{1, 8, 8})
	if err != nil {
		b.Fatal(err)
	}
	x := serveBenchInput()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Logits(x); err != nil {
			b.Fatal(err)
		}
	}
}

// serveLatencySweep runs the same-process load benchmark: the serving
// fixture behind the batching server at ascending offered loads on the
// serial backend, reporting p50/p99 per level. The knee — the last
// level the server kept up with — is what BENCH_compute.json records
// as the serving capacity.
func serveLatencySweep() ([]serve.LatencyReport, error) {
	eng, err := serve.NewEngine(newServeBenchNet(), compute.NewSerial(), []int{1, 8, 8})
	if err != nil {
		return nil, err
	}
	srv, err := serve.NewServer(serve.Config{}, &serve.Model{Fingerprint: "bench", Runner: eng}, nil)
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	sample := make([]float64, 64)
	xd := serveBenchInput().Data()
	copy(sample, xd)
	return serve.MeasureLatencySweep(srv, [][]float64{sample}, []float64{100, 200, 400, 800}, 1500*time.Millisecond, 4), nil
}

// ---------------------------------------------------------------------------
// Streaming inference (PR 9)

// newStreamBenchNet is the event-driven fixture: a dense-layer SNN over
// a 16x16 sensor whose encoder is never called — the binner feeds
// packed spike planes straight into the stateful engine.
func newStreamBenchNet() *snn.Network {
	r := tensor.NewRand(24, 0x57e4)
	cfg := snn.NeuronConfig{Vth: 0.3, Alpha: 0.9, Reset: snn.ResetZero, Surrogate: snn.FastSigmoid{Beta: 25}}
	return &snn.Network{
		Encoder: snn.ConstantCurrentEncoder{Gain: 1},
		Hidden: []snn.Layer{
			{Syn: nn.NewSequential(nn.Flatten{}, nn.NewLinear(r, 16*16, 32)), Cfg: cfg},
			{Syn: nn.NewLinear(r, 32, 32), Cfg: cfg},
		},
		Readout:    nn.NewLinear(r, 32, core.NumClasses),
		ReadoutCfg: cfg,
		Mode:       snn.ReadoutSpikeCount,
		T:          4,
		LogitScale: 10,
	}
}

// streamBenchServer wires the fixture into a streaming server: 16x16
// sensor, 4 steps per 4ms window, tiling hops (carried state).
func streamBenchServer(be compute.Backend) (*stream.Server, error) {
	eng, err := serve.NewEngine(newStreamBenchNet(), be, []int{1, 16, 16})
	if err != nil {
		return nil, err
	}
	return stream.NewServer(stream.Config{
		Binner: stream.BinnerConfig{H: 16, W: 16, Steps: 4, WindowUS: 4000},
	}, func() (stream.Runner, error) {
		return eng.NewStatefulRunner(compute.PackSpikePlanes())
	})
}

func streamBenchSource() (stream.EventSource, int64, error) {
	src, err := dataset.NewGlyphEventStream(dataset.DefaultEventStreamConfig(
		[]int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 42))
	if err != nil {
		return nil, 0, err
	}
	return src, src.EndUS(), nil
}

// streamThroughputReport measures the event path end to end on one
// core: synthetic glyph events → binner → stateful forward, replayed
// for ~2s of wall clock.
func streamThroughputReport() (*stream.ThroughputReport, error) {
	sv, err := streamBenchServer(compute.NewSerial())
	if err != nil {
		return nil, err
	}
	rep, err := sv.MeasureThroughput(2*time.Second, streamBenchSource)
	if err != nil {
		return nil, err
	}
	return &rep, nil
}

// BenchmarkStreamEventThroughput is the manual-run variant of the
// streaming throughput measurement: one op = one full replay of the
// 200ms synthetic stream through a fresh session.
func BenchmarkStreamEventThroughput(b *testing.B) {
	sv, err := streamBenchServer(compute.NewSerial())
	if err != nil {
		b.Fatal(err)
	}
	events := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := sv.MeasureThroughput(0, streamBenchSource)
		if err != nil {
			b.Fatal(err)
		}
		events += rep.Events
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
}

// BENCH_compute.json schema: one history record per PR, appended (never
// overwritten) by TestWriteComputeBenchJSON, so the perf trajectory of
// the compute layer is reviewable across the stack. Each benchmark pair
// times a baseline and a candidate of the same computation and records
// speedup = baseline/candidate.
type benchPairEntry struct {
	Name        string  `json:"name"`
	Baseline    string  `json:"baseline"`
	Candidate   string  `json:"candidate"`
	BaselineNs  int64   `json:"baseline_ns_op"`
	CandidateNs int64   `json:"candidate_ns_op"`
	Speedup     float64 `json:"speedup"`
}

type benchRecord struct {
	Label  string `json:"label"`
	NumCPU int    `json:"numcpu"`
	// SpikeBPTTDensity is the measured mean hidden spike rate of the
	// sparse SNNBPTTStep fixture, recorded so the density regime of the
	// dense-vs-spike pair is auditable (0 for records predating it).
	SpikeBPTTDensity float64          `json:"spike_bptt_density,omitempty"`
	Benchmarks       []benchPairEntry `json:"benchmarks"`
	// Serve is the same-process serving benchmark (PR 7): latency
	// percentiles at a fixed offered load against the tape-free engine
	// behind the batching server (absent for records predating it).
	// Since PR 9 it holds the knee level of ServeSweep.
	Serve *serve.LatencyReport `json:"serve,omitempty"`
	// ServeSweep is the offered-load sweep (PR 9): one report per
	// ascending level; ServeKneeRPS is the last offered rate the server
	// kept up with (achieved ≥ 90% of offered, errors ≤ 1%).
	ServeSweep   []serve.LatencyReport `json:"serve_sweep,omitempty"`
	ServeKneeRPS float64               `json:"serve_knee_rps,omitempty"`
	// Stream is the event-driven streaming benchmark (PR 9): events/sec
	// through binner + stateful forward on one core.
	Stream *stream.ThroughputReport `json:"stream,omitempty"`
}

type benchDoc struct {
	Note    string        `json:"note"`
	History []benchRecord `json:"history"`
}

// TestWriteComputeBenchJSON appends this PR's kernel-timing record to
// BENCH_compute.json: serial-vs-parallel for each kernel, the
// per-image-vs-batched conv pipeline and naive-vs-blocked matmul pairs,
// the dense-vs-sparse spike-kernel pairs (density sweep plus the
// end-to-end sparse BPTT step), the default-vs-fast numerics tier
// pair, the serving offered-load sweep with its knee, and the
// streaming event-throughput run. A record with the same label (SNNSEC_BENCH_LABEL, default
// "PR 6") is replaced; other PRs' records are preserved. It only runs when SNNSEC_WRITE_BENCH is set:
//
//	SNNSEC_WRITE_BENCH=1 go test -run TestWriteComputeBenchJSON
func TestWriteComputeBenchJSON(t *testing.T) {
	if os.Getenv("SNNSEC_WRITE_BENCH") == "" {
		t.Skip("set SNNSEC_WRITE_BENCH=1 to rewrite BENCH_compute.json")
	}
	ser, par := compute.NewSerial(), compute.NewParallel(0)
	onBe := func(fn func(*testing.B, compute.Backend), be compute.Backend) func(*testing.B) {
		return func(b *testing.B) { fn(b, be) }
	}
	atDensity := func(density float64, sparse bool) func(*testing.B) {
		return func(b *testing.B) { benchSpikeMatMul256(b, density, sparse) }
	}
	spikeBPTT := func(spikeKernels bool) func(*testing.B) {
		return func(b *testing.B) { benchSpikeSNNBPTTStep(b, spikeKernels) }
	}
	atTier := func(prec compute.Precision) func(*testing.B) {
		return func(b *testing.B) {
			compute.SetPrecision(prec)
			defer compute.SetPrecision(compute.Float64)
			benchMatMul256(b, ser)
		}
	}
	pairs := []struct {
		name, baseline, candidate string
		base, cand                func(*testing.B)
	}{
		{"MatMul256", "serial", "parallel", onBe(benchMatMul256, ser), onBe(benchMatMul256, par)},
		{"ConvForwardBatch32", "serial", "parallel", onBe(benchConvForwardBatch32, ser), onBe(benchConvForwardBatch32, par)},
		{"SNNBPTTStep", "serial", "parallel", onBe(benchSNNBPTTStep, ser), onBe(benchSNNBPTTStep, par)},
		{"MatMul256", "naive", "blocked", onBe(benchMatMul256Naive, ser), onBe(benchMatMul256, ser)},
		{"ConvForwardBatch32", "per-image", "batched", onBe(benchConvForwardBatch32PerImage, ser), onBe(benchConvForwardBatch32, ser)},
		{"ConvBackwardBatch32", "per-image", "batched", onBe(benchConvBackwardBatch32PerImage, ser), onBe(benchConvBackwardBatch32, ser)},
		// Spike-plane engine (PR 3): dense micro-kernel vs bit-packed
		// select-accumulate on identical binary operands, across the
		// density sweep, and end-to-end through the BPTT loop of the
		// pooling-free spiking net (single core; ≤10% spike density —
		// see spike_bptt_density).
		{"SpikeMatMul256d10", "dense", "sparse", atDensity(0.1, false), atDensity(0.1, true)},
		{"SpikeMatMul256d50", "dense", "sparse", atDensity(0.5, false), atDensity(0.5, true)},
		{"SNNBPTTStepSparse", "dense-kernels", "spike-kernels", spikeBPTT(false), spikeBPTT(true)},
		// Fast-numerics tier (PR 6): the default float64 blocked kernel vs
		// the opt-in float32 FMA/AVX2 staging path on the same product
		// (single core). The CI perf gate requires ≥1.3× here.
		{"MatMul256", "float64-default", "float32-fast", atTier(compute.Float64), atTier(compute.Float32)},
		// Tape-free inference engine (PR 7): the taped forward vs the
		// fused forward-only engine on the single-sample serving fixture
		// (single core). The CI perf gate requires ≥1.5× here.
		{"ServeForward", "taped", "tape-free", benchServeForwardTaped, benchServeForwardTapeFree},
	}
	label := os.Getenv("SNNSEC_BENCH_LABEL")
	if label == "" {
		label = "PR 6"
	}
	rec := benchRecord{Label: label, NumCPU: runtime.NumCPU(), SpikeBPTTDensity: spikeBPTTDensity()}
	sweep, err := serveLatencySweep()
	if err != nil {
		t.Fatalf("serve latency sweep: %v", err)
	}
	rec.ServeSweep = sweep
	if knee := serve.LatencyKnee(sweep); knee >= 0 {
		rec.Serve = &sweep[knee]
		rec.ServeKneeRPS = sweep[knee].OfferedRPS
	}
	if rep, err := streamThroughputReport(); err == nil {
		rec.Stream = rep
	} else {
		t.Fatalf("stream throughput benchmark: %v", err)
	}
	for _, p := range pairs {
		base := testing.Benchmark(p.base)
		cand := testing.Benchmark(p.cand)
		rec.Benchmarks = append(rec.Benchmarks, benchPairEntry{
			Name:        p.name,
			Baseline:    p.baseline,
			Candidate:   p.candidate,
			BaselineNs:  base.NsPerOp(),
			CandidateNs: cand.NsPerOp(),
			Speedup:     float64(base.NsPerOp()) / float64(cand.NsPerOp()),
		})
	}
	var doc benchDoc
	if buf, err := os.ReadFile("BENCH_compute.json"); err == nil {
		// A file that exists but does not parse — or parses to no history
		// records (e.g. a legacy flat schema, whose unknown fields
		// Unmarshal would silently ignore) — must stop the run:
		// overwriting it would wipe the per-PR history. Migrate or delete
		// the file by hand to proceed.
		if err := json.Unmarshal(buf, &doc); err != nil {
			t.Fatalf("BENCH_compute.json exists but does not parse (%v); refusing to overwrite history", err)
		}
		if len(doc.History) == 0 {
			t.Fatalf("BENCH_compute.json exists but holds no history records (legacy schema?); refusing to overwrite it")
		}
	}
	doc.Note = "per-PR kernel timing records; speedup = baseline_ns_op/candidate_ns_op; serial-vs-parallel pairs are meaningful only when numcpu > 1"
	kept := doc.History[:0]
	for _, r := range doc.History {
		if r.Label != label {
			kept = append(kept, r)
		}
	}
	doc.History = append(kept, rec)
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_compute.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAdamStep(b *testing.B) {
	r := tensor.NewRand(8, 8)
	params := []*nn.Param{
		nn.NewParam("w", tensor.RandN(r, 0, 1, 256, 256)),
	}
	params[0].Grad.CopyFrom(tensor.RandN(r, 0, 1, 256, 256))
	opt := train.NewAdam(1e-3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt.Step(params)
	}
}
