// Command snnsec is the command-line interface of the reproduction. It
// trains the paper's models, attacks them, runs the (Vth, T) exploration
// of Algorithm 1, and regenerates each figure of the evaluation.
//
// Usage:
//
//	snnsec fig1            motivational CNN-vs-SNN study (Figure 1)
//	snnsec grid            learnability + robustness heat maps (Figures 6-8)
//	snnsec grid-worker     serve one shard of a distributed grid run (internal)
//	snnsec fig9            tracked (Vth,T) combinations vs CNN (Figure 9)
//	snnsec train           train one model and save a checkpoint
//	snnsec attack          attack a saved checkpoint
//	snnsec serve           serve a checkpoint for tape-free inference
//	snnsec stream          event-driven streaming inference over rolling windows
//	snnsec info            inspect a checkpoint
//	snnsec analyze         activity / gradient-masking diagnostics vs Vth
//	snnsec version         print the library version
//
// Every subcommand accepts -h for its flags. The global flags (before
// the subcommand): -workers bounds the compute backend's kernel
// parallelism, and -precision/-fast select the numerics tier (the
// default tier is bit-exact float64; the fast tier trades bit-identity
// for FMA/AVX2 float32 speed). The global environment variables
// SNNSEC_SCALE=paper and SNNSEC_MNIST_DIR=<dir> switch to the
// paper-scale preset and to real MNIST data.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	snnsec "snnsec"
	"snnsec/internal/analysis"
	"snnsec/internal/attack"
	"snnsec/internal/compute"
	"snnsec/internal/core"
	"snnsec/internal/explore"
	"snnsec/internal/faultinject"
	"snnsec/internal/grid"
	"snnsec/internal/modelio"
	"snnsec/internal/nn"
	"snnsec/internal/obs"
	"snnsec/internal/report"
	"snnsec/internal/tensor"
)

// exitCodeError carries a specific process exit code through the error
// return of run — e.g. 3 for a serve drain that timed out with requests
// still queued, so orchestration can tell "clean stop" from "dropped
// work".
type exitCodeError struct {
	code int
	msg  string
}

func (e exitCodeError) Error() string { return e.msg }

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "snnsec:", err)
		var ec exitCodeError
		if errors.As(err, &ec) {
			os.Exit(ec.code)
		}
		os.Exit(1)
	}
}

func run(args []string) error {
	// Global flags come before the subcommand: snnsec -workers 4 grid ...
	global := flag.NewFlagSet("snnsec", flag.ContinueOnError)
	global.Usage = usage
	workers := global.Int("workers", 0,
		"compute-backend width for tensor kernels: 1 forces the serial backend, 0 uses all CPUs; "+
			"subcommands that parallelise across grid points split this budget so grid workers × kernel width ≤ the value given")
	precision := global.String("precision", "",
		"numerics tier: float64 (or exact; the default, bit-exact) or float32 (or fast; "+
			"FMA/AVX2 float32 kernels with deterministic pairwise reductions — faster, not bit-identical to float64)")
	fast := global.Bool("fast", false, "shorthand for -precision float32")
	faults := global.String("faults", "",
		"fault-injection spec for chaos testing, e.g. 'grid.worker.point@s1:2=exit;stream.window@2=panic' "+
			"(falls back to SNNSEC_FAULTS; empty disables injection)")
	faultSeed := global.Uint64("fault-seed", 0,
		"seed for probabilistic (~p) fault rules; defaults to the run seed so a chaos schedule replays deterministically")
	printVersion := global.Bool("version", false, "print version and build identity, then exit")
	if err := global.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return nil
		}
		return err
	}
	// The CLI is the one armed process: metric collection is a no-op for
	// library embedders and tests, live for every snnsec command.
	obs.SetVersion(snnsec.Version)
	obs.Arm()
	if *printVersion {
		fmt.Println("snnsec", obs.BuildString())
		return nil
	}
	faultSeedSet := false
	global.Visit(func(f *flag.Flag) {
		if f.Name == "fault-seed" {
			faultSeedSet = true
		}
	})
	// Flag validation is strict: out-of-range and contradictory values are
	// errors, never silently clamped or ignored.
	if *workers < 0 {
		return fmt.Errorf("-workers must be >= 0, got %d", *workers)
	}
	prec, err := compute.ParsePrecision(*precision)
	if err != nil {
		return err
	}
	if *fast && *precision != "" && prec != compute.Float32 {
		return fmt.Errorf("-fast conflicts with -precision %q", *precision)
	}
	if *fast {
		prec = compute.Float32
	}
	compute.SetPrecision(prec)
	if *workers > 0 {
		compute.SetDefault(compute.New(*workers))
	}
	if err := faultinject.Init(*faults, *faultSeed, faultSeedSet); err != nil {
		return err
	}
	// Re-export the policy so grid-worker subprocesses inherit it (their
	// shard id is added per-process by the launcher).
	if *faults != "" {
		os.Setenv(faultinject.EnvSpec, *faults)
	}
	if faultSeedSet {
		os.Setenv(faultinject.EnvSeed, strconv.FormatUint(*faultSeed, 10))
	}
	args = global.Args()
	if len(args) == 0 {
		usage()
		return fmt.Errorf("missing subcommand")
	}
	switch args[0] {
	case "fig1":
		return cmdFig1(args[1:])
	case "grid":
		return cmdGrid(args[1:])
	case "grid-worker":
		return cmdGridWorker(args[1:])
	case "fig9":
		return cmdFig9(args[1:])
	case "train":
		return cmdTrain(args[1:])
	case "attack":
		return cmdAttack(args[1:])
	case "serve":
		return cmdServe(args[1:])
	case "stream":
		return cmdStream(args[1:])
	case "info":
		return cmdInfo(args[1:])
	case "analyze":
		return cmdAnalyze(args[1:])
	case "version":
		fmt.Println("snnsec", obs.BuildString())
		return nil
	case "-h", "--help", "help":
		usage()
		return nil
	default:
		usage()
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `snnsec — SNN adversarial-robustness exploration (DATE'21 reproduction)

subcommands:
  fig1     motivational CNN-vs-SNN robustness curves (Figure 1)
  grid     (Vth, T) learnability and robustness heat maps (Figures 6-8);
           -shards n distributes the sweep over grid-worker subprocesses
           with durable -checkpoint-dir checkpoints and -resume; failure
           handling is tuned by -stall-timeout (withdraw a silent
           worker's point), -max-point-retries (quarantine a poison
           point after this many retries) and -retry-backoff
  grid-worker  serve one shard of a distributed run over stdin/stdout
  fig9     tracked combinations vs the CNN (Figure 9)
  train    train a model and save a checkpoint
  attack   attack a saved checkpoint
  serve    serve a checkpoint for tape-free inference (HTTP or stdio);
           SIGTERM/SIGINT drain gracefully within -drain-timeout
           (exit 0: all accepted requests answered; exit 3: timed out
           with requests dropped); -ckpt repeats to preload the cache.
           The HTTP handler exposes Prometheus /metrics; -pprof mounts
           /debug/pprof/ and -trace file records per-request line-JSON
           trace records
  stream   event-driven streaming inference: (t,x,y,pol) events in over
           a keepalive line protocol (stdio or -addr TCP, one session
           per connection), one classification per rolling window out;
           -synth digits classifies a deterministic glyph event stream;
           -metrics addr exposes Prometheus /metrics for the sessions
  info     inspect a checkpoint
  analyze  spike-activity and gradient-masking diagnostics vs Vth
  version  print version and build identity (also: snnsec -version)

  grid, serve and stream accept -log-level (debug|info|warn|error) to
  filter their stderr output; the default (info) is unchanged from
  earlier releases. grid and stream accept -metrics addr to serve
  Prometheus /metrics on a side listener (+ -pprof for /debug/pprof/).

global flags (before the subcommand):
  -workers n   CPU budget for the tensor kernels: 1 selects the serial
               backend, 0 (default) uses every CPU. Grid sweeps (grid,
               fig9 -auto) split the same budget — one worker per
               (Vth, T) point and a kernel backend of width
               budget/gridworkers each — so grid-level × kernel-level
               parallelism never exceeds the budget.
  -precision p numerics tier: float64 (or exact; default) keeps every
               result bit-identical to the float64 reference kernels;
               float32 (or fast) opts into the fast tier — FMA/AVX2
               float32 kernels and deterministic pairwise reductions,
               run-to-run reproducible but not bit-identical to float64.
               Grid results record the tier and refuse mixed-tier merges.
  -fast        shorthand for -precision float32
  -faults s    deterministic fault-injection spec for chaos testing:
               'point[@occurrence]=action' rules joined by ';', where
               occurrence is N, N+, *, ~p (seeded probability) or
               s<shard>:occ, and action is delay:<dur>, error, torn,
               panic or exit. Fault points: grid.worker.point,
               grid.checkpoint.write, serve.forward, stream.window.
  -fault-seed n  seed for ~p rules (default: the run seed)
  -version     print version and build identity, then exit

environment:
  SNNSEC_SCALE=paper     use the paper-scale preset (slow)
  SNNSEC_SCALE=tiny      use the smoke-test preset (2x2 grid, seconds)
  SNNSEC_MNIST_DIR=dir   load real MNIST IDX files from dir
  SNNSEC_FAULTS=s        fault spec when -faults is not given
  SNNSEC_FAULT_SEED=n    seed when -fault-seed is not given
`)
}

func cmdFig1(args []string) error {
	fs := flag.NewFlagSet("fig1", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	s := core.ScaleFromEnv()
	res, err := core.RunFig1(s, os.Stderr)
	if err != nil {
		return err
	}
	report.WriteCurves(os.Stdout, "Figure 1 — PGD on CNN vs SNN (default structural parameters)", []report.Series{
		{Name: "CNN", Points: res.CNN},
		{Name: fmt.Sprintf("SNN(%g,%d)", s.DefaultVth, s.DefaultT), Points: res.SNN},
	})
	if eps, ok := res.Crossover(); ok {
		fmt.Printf("crossover (paper's 'turnaround point'): eps = %g\n", eps)
	} else {
		fmt.Println("no crossover observed in this sweep")
	}
	return nil
}

func cmdGrid(args []string) error {
	fs := flag.NewFlagSet("grid", flag.ContinueOnError)
	csvDir := fs.String("csv", "", "directory to write fig6/fig7/fig8 CSV files into")
	jsonPath := fs.String("json", "", "path to write the full grid result as JSON")
	shards := fs.Int("shards", 0, "distribute the sweep over this many grid-worker subprocesses (0 runs in-process)")
	ckptDir := fs.String("checkpoint-dir", "", "directory to persist per-point results (and model snapshots) for resume; requires -shards")
	resume := fs.Bool("resume", false, "resume a previous run from -checkpoint-dir, computing only the missing points")
	maxPoints := fs.Int("max-points", 0, "compute at most this many new points this invocation (0 = all); the partial result is resumable")
	stallTimeout := fs.Duration("stall-timeout", 0,
		"withdraw and reassign a point whose worker sends nothing (not even a heartbeat) for this long; 0 selects the default (2m), negative disables stall detection")
	maxRetries := fs.Int("max-point-retries", 0,
		"retries per failing point (each on a different shard) before it is quarantined and the sweep completes without it; 0 selects the default (3), negative disables retries")
	retryBackoff := fs.Duration("retry-backoff", 0,
		"delay before a failed point's first retry; the n-th retry waits backoff<<(n-1); 0 selects the default (1s)")
	logLevel := fs.String("log-level", "", "minimum stderr log level: debug, info (default), warn or error")
	metricsAddr := fs.String("metrics", "", "serve Prometheus /metrics for the sweep on this address (empty disables)")
	pprofOn := fs.Bool("pprof", false, "also mount /debug/pprof/ on the -metrics listener")
	if err := fs.Parse(args); err != nil {
		return err
	}
	lg, err := stderrLogger(*logLevel)
	if err != nil {
		return err
	}
	stopMetrics, err := startMetricsServer(*metricsAddr, *pprofOn, lg)
	if err != nil {
		return err
	}
	defer stopMetrics()
	s := core.ScaleFromEnv()
	var res *explore.Result
	if *shards > 0 {
		res, err = runDistributedGrid(s, gridRunOptions{
			shards: *shards, ckptDir: *ckptDir, resume: *resume, maxPoints: *maxPoints,
			stallTimeout: *stallTimeout, maxRetries: *maxRetries, retryBackoff: *retryBackoff,
			logger: lg,
		})
	} else {
		if *ckptDir != "" || *resume || *maxPoints > 0 {
			return fmt.Errorf("grid: -checkpoint-dir/-resume/-max-points require -shards")
		}
		if *stallTimeout != 0 || *maxRetries != 0 || *retryBackoff != 0 {
			return fmt.Errorf("grid: -stall-timeout/-max-point-retries/-retry-backoff require -shards")
		}
		// The in-process sweep logs free-form progress; honour the level
		// by silencing it entirely below info.
		progress := io.Writer(os.Stderr)
		if !lg.Enabled(obs.LevelInfo) {
			progress = io.Discard
		}
		res, err = core.RunGrid(s, progress)
	}
	if err != nil {
		return err
	}
	if missing := res.MissingIndices(); len(missing) > 0 {
		lg.Warnf("grid: partial result, %d/%d points computed (resume with -resume -checkpoint-dir to finish)",
			len(res.Points)-len(missing), len(res.Points))
	}
	if *jsonPath != "" {
		if err := res.SaveJSON(*jsonPath); err != nil {
			return err
		}
		lg.Infof("wrote grid result to %s", *jsonPath)
	}
	acc := report.AccuracyGrid(res)
	acc.WriteASCII(os.Stdout)
	fmt.Println()
	grids := []*report.Grid{acc}
	names := []string{"fig6_accuracy.csv"}
	for i, eps := range s.HeatmapEpsilons {
		g := report.RobustnessGrid(res, eps)
		g.WriteASCII(os.Stdout)
		fmt.Println()
		grids = append(grids, g)
		names = append(names, fmt.Sprintf("fig%d_robustness_eps%g.csv", 7+i, eps))
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
		for i, g := range grids {
			f, err := os.Create(*csvDir + "/" + names[i])
			if err != nil {
				return err
			}
			g.WriteCSV(f)
			if err := f.Close(); err != nil {
				return err
			}
		}
		lg.Infof("wrote %d CSV files to %s", len(grids), *csvDir)
	}
	return nil
}

// gridRunOptions carries the distributed-grid flag values.
type gridRunOptions struct {
	shards       int
	ckptDir      string
	resume       bool
	maxPoints    int
	stallTimeout time.Duration
	maxRetries   int
	retryBackoff time.Duration
	logger       *obs.Logger
}

// runDistributedGrid shards the sweep across local grid-worker
// subprocesses (the binary re-executes itself), splitting the global
// -workers CPU budget across them.
func runDistributedGrid(s core.Scale, o gridRunOptions) (*explore.Result, error) {
	spec, err := s.GridSpec()
	if err != nil {
		return nil, err
	}
	self, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("grid: locating own binary to spawn workers: %w", err)
	}
	return grid.Run(context.Background(), spec, grid.Options{
		Shards:          o.shards,
		CheckpointDir:   o.ckptDir,
		Resume:          o.resume,
		SnapshotModels:  o.ckptDir != "",
		MaxPoints:       o.maxPoints,
		StallTimeout:    o.stallTimeout,
		MaxPointRetries: o.maxRetries,
		RetryBackoff:    o.retryBackoff,
		Launch:          grid.ExecLauncher(self, "grid-worker"),
		Logger:          o.logger,
	})
}

// cmdGridWorker serves one shard of a distributed grid run over
// stdin/stdout; it is spawned by snnsec grid -shards (or by a remote
// launch wrapper) and never invoked by hand.
func cmdGridWorker(args []string) error {
	fs := flag.NewFlagSet("grid-worker", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	return grid.ServeWorker(os.Stdin, os.Stdout)
}

func cmdFig9(args []string) error {
	fs := flag.NewFlagSet("fig9", flag.ContinueOnError)
	auto := fs.Bool("auto", false, "run the grid first and track its best/worst/medium points")
	if err := fs.Parse(args); err != nil {
		return err
	}
	s := core.ScaleFromEnv()
	var res *core.Fig9Result
	var err error
	if *auto {
		grid, gerr := core.RunGrid(s, os.Stderr)
		if gerr != nil {
			return gerr
		}
		res, err = core.RunFig9(s, core.SelectFig9Combos(grid), os.Stderr)
	} else {
		res, err = core.RunFig9(s, nil, os.Stderr)
	}
	if err != nil {
		return err
	}
	series := []report.Series{{Name: "CNN", Points: res.CNN}}
	for _, c := range res.Combos {
		series = append(series, report.Series{
			Name:   fmt.Sprintf("SNN(%g,%d)", c.Vth, c.T),
			Points: c.Curve,
		})
	}
	report.WriteCurves(os.Stdout, "Figure 9 — tracked (Vth, T) combinations vs CNN under PGD", series)
	fmt.Printf("max robustness gap over CNN: %.3f (paper reports up to 0.85)\n", res.MaxGapOverCNN())
	return nil
}

func cmdTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ContinueOnError)
	model := fs.String("model", "snn", "model kind: cnn or snn")
	vth := fs.Float64("vth", 1, "SNN firing threshold")
	T := fs.Int("T", 12, "SNN time window")
	out := fs.String("out", "", "checkpoint output path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	s := core.ScaleFromEnv()
	trainDS, testDS, err := core.LoadData(s.Data)
	if err != nil {
		return err
	}
	var params []*nn.Param
	var acc float64
	meta := map[string]string{"scale": s.Name, "model": *model}
	switch *model {
	case "cnn":
		var cnn *nn.Sequential
		cnn, acc, err = s.TrainCNN(trainDS, testDS)
		if err != nil {
			return err
		}
		params = cnn.Params()
	case "snn":
		net, netAcc, nerr := s.TrainSNN(*vth, *T, trainDS, testDS)
		if nerr != nil {
			return nerr
		}
		acc = netAcc
		params = net.Params()
		meta["vth"] = strconv.FormatFloat(*vth, 'g', -1, 64)
		meta["T"] = strconv.Itoa(*T)
	default:
		return fmt.Errorf("unknown model kind %q", *model)
	}
	meta["test_accuracy"] = strconv.FormatFloat(acc, 'f', 4, 64)
	fmt.Printf("trained %s: test accuracy %.4f\n", *model, acc)
	if *out != "" {
		if err := modelio.SaveFile(*out, meta, params); err != nil {
			return err
		}
		fmt.Printf("checkpoint written to %s\n", *out)
	}
	return nil
}

func cmdAttack(args []string) error {
	fs := flag.NewFlagSet("attack", flag.ContinueOnError)
	ckpt := fs.String("ckpt", "", "checkpoint path (required)")
	kind := fs.String("attack", "pgd", "attack kind: pgd, fgsm, gaussian")
	epsList := fs.String("eps", "0.5,1.0,1.5", "comma-separated noise budgets")
	steps := fs.Int("steps", 10, "PGD iterations")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *ckpt == "" {
		return fmt.Errorf("attack: -ckpt is required")
	}
	m, err := modelio.LoadFile(*ckpt)
	if err != nil {
		return err
	}
	s := core.ScaleFromEnv()
	_, testDS, err := core.LoadData(s.Data)
	if err != nil {
		return err
	}
	victim, _, err := core.BuildFromCheckpoint(s, m)
	if err != nil {
		return err
	}
	bounds := attack.DatasetBounds(testDS)
	var epsilons []float64
	for _, part := range strings.Split(*epsList, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return fmt.Errorf("attack: bad eps %q", part)
		}
		epsilons = append(epsilons, v)
	}
	for _, eps := range epsilons {
		var atk attack.Attack
		switch *kind {
		case "pgd":
			atk = attack.PGD{Eps: eps, Steps: *steps, RandomStart: true, Rand: tensor.NewRand(1, 1), Bounds: bounds}
		case "fgsm":
			atk = attack.FGSM{Eps: eps, Bounds: bounds}
		case "gaussian":
			atk = attack.GaussianNoise{Std: eps, Rand: tensor.NewRand(1, 1), Bounds: bounds}
		default:
			return fmt.Errorf("unknown attack %q", *kind)
		}
		ev := attack.Evaluate(victim, testDS, atk, s.EvalBatch)
		fmt.Println(ev.String())
	}
	return nil
}

func cmdInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("info: usage: snnsec info <checkpoint>")
	}
	m, err := modelio.LoadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	fmt.Println("metadata:")
	for k, v := range m.Meta {
		fmt.Printf("  %s = %s\n", k, v)
	}
	total := 0
	fmt.Println("parameters:")
	for _, p := range m.Params {
		fmt.Printf("  %-24s %v (%d)\n", p.Name, p.Data.Shape(), p.Data.Len())
		total += p.Data.Len()
	}
	fmt.Printf("total: %d parameters\n", total)
	return nil
}

// cmdAnalyze trains one SNN and reports how its spiking activity and
// white-box attack surface change when the inference threshold is swept —
// the mechanism behind the paper's (Vth, T) robustness dependence.
func cmdAnalyze(args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ContinueOnError)
	vth := fs.Float64("vth", 1, "training threshold")
	T := fs.Int("T", 12, "time window")
	sweep := fs.String("sweep", "0.25,0.5,1,1.5,2.25", "comma-separated inference thresholds to probe")
	if err := fs.Parse(args); err != nil {
		return err
	}
	s := core.ScaleFromEnv()
	trainDS, testDS, err := core.LoadData(s.Data)
	if err != nil {
		return err
	}
	net, acc, err := s.TrainSNN(*vth, *T, trainDS, testDS)
	if err != nil {
		return err
	}
	fmt.Printf("SNN(Vth=%g, T=%d) clean accuracy %.3f\n\n", *vth, *T, acc)
	var vths []float64
	for _, part := range strings.Split(*sweep, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return fmt.Errorf("analyze: bad threshold %q", part)
		}
		vths = append(vths, v)
	}
	rows := analysis.SweepVth(net, testDS, vths, s.EvalBatch)
	analysis.WriteVthSweep(os.Stdout, rows)
	return nil
}
