package main

import (
	"path/filepath"
	"strings"
	"testing"

	"snnsec/internal/core"
	"snnsec/internal/modelio"
	"snnsec/internal/nn"
	"snnsec/internal/tensor"
)

func TestRunNoArgs(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no subcommand accepted")
	}
}

func TestRunUnknown(t *testing.T) {
	err := run([]string{"bogus"})
	if err == nil || !strings.Contains(err.Error(), "unknown subcommand") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestRunVersionAndHelp(t *testing.T) {
	if err := run([]string{"version"}); err != nil {
		t.Errorf("version: %v", err)
	}
	if err := run([]string{"help"}); err != nil {
		t.Errorf("help: %v", err)
	}
}

func TestInfoUsage(t *testing.T) {
	if err := run([]string{"info"}); err == nil {
		t.Error("info without args accepted")
	}
	if err := run([]string{"info", "/nonexistent/ckpt"}); err == nil {
		t.Error("info on missing file accepted")
	}
}

func TestAttackRequiresCkpt(t *testing.T) {
	if err := run([]string{"attack"}); err == nil || !strings.Contains(err.Error(), "-ckpt") {
		t.Errorf("attack without ckpt: %v", err)
	}
}

func TestInfoOnRealCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.ckpt")
	r := tensor.NewRand(1, 1)
	params := []*nn.Param{nn.NewParam("w", tensor.RandN(r, 0, 1, 2, 2))}
	if err := modelio.SaveFile(path, map[string]string{"model": "cnn"}, params); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"info", path}); err != nil {
		t.Errorf("info: %v", err)
	}
}

func TestRebuildModelUnknownKind(t *testing.T) {
	s := core.BenchScale()
	m := &modelio.Model{Meta: map[string]string{"model": "transformer"}}
	if _, err := rebuildModel(s, m); err == nil {
		t.Error("unknown model kind accepted")
	}
	m = &modelio.Model{Meta: map[string]string{"model": "snn"}}
	if _, err := rebuildModel(s, m); err == nil {
		t.Error("snn checkpoint without vth accepted")
	}
}

func TestTrainBadModelKind(t *testing.T) {
	if err := run([]string{"train", "-model", "mlp"}); err == nil {
		t.Error("unknown model kind accepted by train")
	}
}

func TestTrainAttackRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end CLI round trip in -short mode")
	}
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "cnn.ckpt")
	if err := run([]string{"train", "-model", "cnn", "-out", ckpt}); err != nil {
		t.Fatalf("train: %v", err)
	}
	if err := run([]string{"info", ckpt}); err != nil {
		t.Fatalf("info: %v", err)
	}
	if err := run([]string{"attack", "-ckpt", ckpt, "-attack", "fgsm", "-eps", "0.5"}); err != nil {
		t.Fatalf("attack: %v", err)
	}
	if err := run([]string{"attack", "-ckpt", ckpt, "-attack", "nope", "-eps", "0.5"}); err == nil {
		t.Error("unknown attack kind accepted")
	}
	if err := run([]string{"attack", "-ckpt", ckpt, "-eps", "abc"}); err == nil {
		t.Error("malformed eps accepted")
	}
}
