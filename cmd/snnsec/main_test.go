package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"snnsec/internal/compute"
	"snnsec/internal/core"
	"snnsec/internal/modelio"
	"snnsec/internal/nn"
	"snnsec/internal/tensor"
)

// TestMain lets this test binary stand in for the snnsec binary when the
// distributed grid coordinator under test re-executes itself
// (os.Executable()) as a shard worker.
func TestMain(m *testing.M) {
	if len(os.Args) > 1 && os.Args[1] == "grid-worker" {
		if err := run(os.Args[1:]); err != nil {
			fmt.Fprintln(os.Stderr, "snnsec:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func TestRunNoArgs(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no subcommand accepted")
	}
}

func TestRunUnknown(t *testing.T) {
	err := run([]string{"bogus"})
	if err == nil || !strings.Contains(err.Error(), "unknown subcommand") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestRunVersionAndHelp(t *testing.T) {
	if err := run([]string{"version"}); err != nil {
		t.Errorf("version: %v", err)
	}
	if err := run([]string{"help"}); err != nil {
		t.Errorf("help: %v", err)
	}
}

func TestInfoUsage(t *testing.T) {
	if err := run([]string{"info"}); err == nil {
		t.Error("info without args accepted")
	}
	if err := run([]string{"info", "/nonexistent/ckpt"}); err == nil {
		t.Error("info on missing file accepted")
	}
}

func TestAttackRequiresCkpt(t *testing.T) {
	if err := run([]string{"attack"}); err == nil || !strings.Contains(err.Error(), "-ckpt") {
		t.Errorf("attack without ckpt: %v", err)
	}
}

func TestInfoOnRealCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.ckpt")
	r := tensor.NewRand(1, 1)
	params := []*nn.Param{nn.NewParam("w", tensor.RandN(r, 0, 1, 2, 2))}
	if err := modelio.SaveFile(path, map[string]string{"model": "cnn"}, params); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"info", path}); err != nil {
		t.Errorf("info: %v", err)
	}
}

func TestRebuildModelUnknownKind(t *testing.T) {
	s := core.BenchScale()
	m := &modelio.Model{Meta: map[string]string{"model": "transformer"}}
	if _, _, err := core.BuildFromCheckpoint(s, m); err == nil {
		t.Error("unknown model kind accepted")
	}
	m = &modelio.Model{Meta: map[string]string{"model": "snn"}}
	if _, _, err := core.BuildFromCheckpoint(s, m); err == nil {
		t.Error("snn checkpoint without vth accepted")
	}
}

func TestTrainBadModelKind(t *testing.T) {
	if err := run([]string{"train", "-model", "mlp"}); err == nil {
		t.Error("unknown model kind accepted by train")
	}
}

// TestGridShardedCLISmoke is the end-to-end distributed smoke: a
// two-shard run with real grid-worker subprocesses, sliced by
// -max-points, killed (by exhausting its budget), resumed — and the
// final merged JSON must be byte-identical to the single-process run's.
func TestGridShardedCLISmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess grid smoke in -short mode")
	}
	t.Setenv(core.ScaleEnv, "tiny")
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "ckpt")
	distJSON := filepath.Join(dir, "dist.json")
	singleJSON := filepath.Join(dir, "single.json")

	// Partial first invocation: budget of 2 of the 4 tiny-grid points.
	if err := run([]string{"grid", "-shards", "2", "-checkpoint-dir", ckpt, "-max-points", "2"}); err != nil {
		t.Fatalf("partial sharded grid: %v", err)
	}
	// Resume to completion.
	if err := run([]string{"grid", "-shards", "2", "-checkpoint-dir", ckpt, "-resume", "-json", distJSON}); err != nil {
		t.Fatalf("resumed sharded grid: %v", err)
	}
	// Single-process reference.
	if err := run([]string{"grid", "-json", singleJSON}); err != nil {
		t.Fatalf("single-process grid: %v", err)
	}
	dist, err := os.ReadFile(distJSON)
	if err != nil {
		t.Fatal(err)
	}
	single, err := os.ReadFile(singleJSON)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dist, single) {
		t.Errorf("sharded+resumed result differs from single-process run:\n got: %s\nwant: %s", dist, single)
	}
	// The checkpoint holds one point file and one model snapshot per
	// grid point.
	entries, err := os.ReadDir(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	points, models := 0, 0
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "point-") {
			points++
		}
		if strings.HasPrefix(e.Name(), "model-") {
			models++
		}
	}
	if points != 4 || models != 4 {
		t.Errorf("checkpoint has %d point files and %d model snapshots, want 4 and 4", points, models)
	}
}

func TestGridFlagsRequireShards(t *testing.T) {
	if err := run([]string{"grid", "-resume"}); err == nil {
		t.Error("-resume without -shards accepted")
	}
}

// TestGlobalFlagValidation pins the strict global-flag contract: bad
// values are errors, never silently clamped, and -precision/-fast set
// the process tier exactly as documented.
func TestGlobalFlagValidation(t *testing.T) {
	t.Cleanup(func() { compute.SetPrecision(compute.Float64) })
	if err := run([]string{"-workers", "-2", "version"}); err == nil || !strings.Contains(err.Error(), "-workers") {
		t.Errorf("negative -workers: %v", err)
	}
	if err := run([]string{"-precision", "float16", "version"}); err == nil || !strings.Contains(err.Error(), "precision") {
		t.Errorf("unknown -precision: %v", err)
	}
	if err := run([]string{"-fast", "-precision", "float64", "version"}); err == nil || !strings.Contains(err.Error(), "conflicts") {
		t.Errorf("-fast with -precision float64: %v", err)
	}
	if err := run([]string{"-fast", "version"}); err != nil {
		t.Fatalf("-fast: %v", err)
	}
	if compute.ActivePrecision() != compute.Float32 {
		t.Error("-fast did not select the fast tier")
	}
	// -fast agreeing with an explicit fast -precision is fine.
	if err := run([]string{"-fast", "-precision", "fast", "version"}); err != nil {
		t.Errorf("-fast -precision fast: %v", err)
	}
	// A plain invocation restores the default tier.
	if err := run([]string{"version"}); err != nil {
		t.Fatal(err)
	}
	if compute.ActivePrecision() != compute.Float64 {
		t.Error("default invocation did not select the default tier")
	}
}

func TestTrainAttackRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end CLI round trip in -short mode")
	}
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "cnn.ckpt")
	if err := run([]string{"train", "-model", "cnn", "-out", ckpt}); err != nil {
		t.Fatalf("train: %v", err)
	}
	if err := run([]string{"info", ckpt}); err != nil {
		t.Fatalf("info: %v", err)
	}
	if err := run([]string{"attack", "-ckpt", ckpt, "-attack", "fgsm", "-eps", "0.5"}); err != nil {
		t.Fatalf("attack: %v", err)
	}
	if err := run([]string{"attack", "-ckpt", ckpt, "-attack", "nope", "-eps", "0.5"}); err == nil {
		t.Error("unknown attack kind accepted")
	}
	if err := run([]string{"attack", "-ckpt", ckpt, "-eps", "abc"}); err == nil {
		t.Error("malformed eps accepted")
	}
}
