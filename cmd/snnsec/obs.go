package main

import (
	"fmt"
	"net"
	"net/http"
	"os"

	"snnsec/internal/obs"
)

// stderrLogger builds the leveled stderr logger behind each
// subcommand's -log-level flag. The default ("" → info) reproduces the
// exact output the commands printed before levels existed: the logger
// writes messages verbatim, levels only filter.
func stderrLogger(level string) (*obs.Logger, error) {
	lvl, err := obs.ParseLevel(level)
	if err != nil {
		return nil, err
	}
	return obs.NewLogger(os.Stderr, lvl), nil
}

// startMetricsServer exposes /metrics (and optionally /debug/pprof/) on
// its own listener for commands that have no HTTP surface of their own
// (grid, stream). Empty addr disables it. The returned stop function
// closes the listener.
func startMetricsServer(addr string, pprofOn bool, lg *obs.Logger) (func(), error) {
	if addr == "" {
		return func() {}, nil
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("metrics listener: %w", err)
	}
	mux := http.NewServeMux()
	obs.MountMetrics(mux)
	if pprofOn {
		obs.MountPprof(mux)
	}
	hs := &http.Server{Handler: mux}
	go hs.Serve(ln)
	lg.Infof("metrics on http://%s/metrics", ln.Addr())
	return func() { hs.Close() }, nil
}
