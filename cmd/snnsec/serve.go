package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"snnsec/internal/compute"
	"snnsec/internal/core"
	"snnsec/internal/modelio"
	"snnsec/internal/serve"
)

// multiFlag collects a repeatable string flag value.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

// cmdServe loads a checkpoint into the tape-free inference engine and
// serves it — over HTTP on -addr, or as line-JSON on stdin/stdout with
// -stdio. Both transports speak the same request/response objects, so a
// served prediction can be diffed byte-for-byte against an offline run
// (the CI smoke does exactly that). -ckpt may be repeated: the first
// checkpoint is the default model, the rest are preloaded into the LRU
// model cache so requests naming their fingerprint never pay a cold
// build.
//
// Shutdown is graceful on SIGTERM/SIGINT: the server stops accepting,
// /healthz flips to 503 draining, and every already-accepted request is
// answered before the process exits — bounded by -drain-timeout. Exit
// codes: 0 when the drain finished (no accepted request was dropped),
// 3 when the drain timed out and queued requests were failed, 1 for any
// other error. A second signal kills the process immediately.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	var ckpts multiFlag
	fs.Var(&ckpts, "ckpt", "checkpoint path (required; repeatable — first is the default model, the rest preload the cache)")
	addr := fs.String("addr", "127.0.0.1:8080", "HTTP listen address")
	stdio := fs.Bool("stdio", false, "serve line-JSON on stdin/stdout instead of HTTP")
	maxBatch := fs.Int("max-batch", 64, "max samples per coalesced forward pass")
	batchWait := fs.Duration("batch-wait", 2*time.Millisecond, "how long an open batch waits for more requests")
	queue := fs.Int("queue", 256, "request queue depth; overflow returns 429")
	deadline := fs.Duration("deadline", 5*time.Second, "default per-request deadline")
	cacheSize := fs.Int("cache", 4, "LRU capacity for uploaded models")
	drainTimeout := fs.Duration("drain-timeout", 10*time.Second,
		"how long a SIGTERM/SIGINT shutdown may spend answering already-accepted requests before giving up (exit code 3)")
	logLevel := fs.String("log-level", "", "minimum stderr log level: debug, info (default), warn or error")
	pprofOn := fs.Bool("pprof", false, "mount /debug/pprof/ on the HTTP handler alongside /metrics")
	tracePath := fs.String("trace", "", "append one line-JSON trace record per request to this file (empty disables tracing)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	lg, err := stderrLogger(*logLevel)
	if err != nil {
		return err
	}
	if len(ckpts) == 0 {
		return fmt.Errorf("serve: -ckpt is required")
	}
	if extra := len(ckpts) - 1; extra > *cacheSize {
		return fmt.Errorf("serve: %d preloaded checkpoints would not fit the model cache (-cache %d); raise -cache", extra, *cacheSize)
	}
	raw, err := os.ReadFile(ckpts[0])
	if err != nil {
		return err
	}
	m, err := modelio.FromBytes(raw)
	if err != nil {
		return err
	}
	s := core.ScaleFromEnv()
	model, sample, err := core.BuildFromCheckpoint(s, m)
	if err != nil {
		return err
	}
	engine, err := serve.NewEngine(model, compute.Default(), sample)
	if err != nil {
		return err
	}
	def := &serve.Model{
		Fingerprint: modelio.Fingerprint(raw),
		Meta:        m.Meta,
		Runner:      engine,
	}
	build := func(cm *modelio.Model) (serve.Runner, error) {
		bm, bsample, err := core.BuildFromCheckpoint(s, cm)
		if err != nil {
			return nil, err
		}
		return serve.NewEngine(bm, compute.Default(), bsample)
	}
	var traceW io.Writer
	if *tracePath != "" {
		f, err := os.OpenFile(*tracePath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("serve: opening -trace file: %w", err)
		}
		defer f.Close()
		traceW = f
	}
	srv, err := serve.NewServer(serve.Config{
		MaxBatch:        *maxBatch,
		BatchWait:       *batchWait,
		QueueDepth:      *queue,
		DefaultDeadline: *deadline,
		CacheSize:       *cacheSize,
		TraceWriter:     traceW,
		EnablePprof:     *pprofOn,
	}, def, build)
	if err != nil {
		return err
	}
	defer srv.Close()
	lg.Infof("serving %s %s (fingerprint %s)",
		m.Meta["model"], ckpts[0], def.Fingerprint[:12])
	for _, path := range ckpts[1:] {
		craw, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		cm, err := srv.AddModel(craw)
		if err != nil {
			return fmt.Errorf("serve: preloading %s: %w", path, err)
		}
		lg.Infof("preloaded %s %s (fingerprint %s)",
			cm.Meta["model"], path, cm.Fingerprint[:12])
	}

	// ctx fires on the first SIGTERM/SIGINT; stop() then restores the
	// default handlers, so a second signal kills the process outright.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *stdio {
		if err := srv.ServeLinesContext(ctx, os.Stdin, os.Stdout); err != nil {
			return err
		}
		if ctx.Err() != nil {
			stop()
			lg.Infof("serve: signal received, draining")
			if derr := srv.DrainAndClose(*drainTimeout); derr != nil {
				return exitCodeError{code: 3, msg: derr.Error()}
			}
			lg.Infof("serve: drained cleanly")
		}
		return nil
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	lg.Infof("listening on http://%s", ln.Addr())
	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	stop()
	lg.Infof("serve: signal received, draining (max %v)", *drainTimeout)
	srv.BeginDrain()
	start := time.Now()
	// Shutdown closes the listener and waits for in-flight handlers —
	// which wait on the batcher, still dispatching — so when it returns
	// cleanly, every accepted request has been answered.
	sdCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := hs.Shutdown(sdCtx); err != nil {
		srv.Close()
		return exitCodeError{code: 3, msg: fmt.Sprintf("serve: drain timed out after %v (%v); in-flight requests dropped", *drainTimeout, err)}
	}
	remaining := *drainTimeout - time.Since(start)
	if remaining < time.Millisecond {
		remaining = time.Millisecond
	}
	if derr := srv.DrainAndClose(remaining); derr != nil {
		return exitCodeError{code: 3, msg: derr.Error()}
	}
	lg.Infof("serve: drained cleanly")
	return nil
}
