package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"snnsec/internal/compute"
	"snnsec/internal/core"
	"snnsec/internal/modelio"
	"snnsec/internal/serve"
)

// cmdServe loads a checkpoint into the tape-free inference engine and
// serves it — over HTTP on -addr, or as line-JSON on stdin/stdout with
// -stdio. Both transports speak the same request/response objects, so a
// served prediction can be diffed byte-for-byte against an offline run
// (the CI smoke does exactly that).
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	ckpt := fs.String("ckpt", "", "checkpoint path (required)")
	addr := fs.String("addr", "127.0.0.1:8080", "HTTP listen address")
	stdio := fs.Bool("stdio", false, "serve line-JSON on stdin/stdout instead of HTTP")
	maxBatch := fs.Int("max-batch", 64, "max samples per coalesced forward pass")
	batchWait := fs.Duration("batch-wait", 2*time.Millisecond, "how long an open batch waits for more requests")
	queue := fs.Int("queue", 256, "request queue depth; overflow returns 429")
	deadline := fs.Duration("deadline", 5*time.Second, "default per-request deadline")
	cacheSize := fs.Int("cache", 4, "LRU capacity for uploaded models")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *ckpt == "" {
		return fmt.Errorf("serve: -ckpt is required")
	}
	raw, err := os.ReadFile(*ckpt)
	if err != nil {
		return err
	}
	m, err := modelio.FromBytes(raw)
	if err != nil {
		return err
	}
	s := core.ScaleFromEnv()
	model, sample, err := core.BuildFromCheckpoint(s, m)
	if err != nil {
		return err
	}
	engine, err := serve.NewEngine(model, compute.Default(), sample)
	if err != nil {
		return err
	}
	def := &serve.Model{
		Fingerprint: modelio.Fingerprint(raw),
		Meta:        m.Meta,
		Runner:      engine,
	}
	build := func(cm *modelio.Model) (serve.Runner, error) {
		bm, bsample, err := core.BuildFromCheckpoint(s, cm)
		if err != nil {
			return nil, err
		}
		return serve.NewEngine(bm, compute.Default(), bsample)
	}
	srv, err := serve.NewServer(serve.Config{
		MaxBatch:        *maxBatch,
		BatchWait:       *batchWait,
		QueueDepth:      *queue,
		DefaultDeadline: *deadline,
		CacheSize:       *cacheSize,
	}, def, build)
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Fprintf(os.Stderr, "serving %s %s (fingerprint %s)\n",
		m.Meta["model"], *ckpt, def.Fingerprint[:12])
	if *stdio {
		return srv.ServeLines(os.Stdin, os.Stdout)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "listening on http://%s\n", ln.Addr())
	return http.Serve(ln, srv.Handler())
}
