package main

import (
	"bytes"
	"encoding/json"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"snnsec/internal/core"
	"snnsec/internal/modelio"
	"snnsec/internal/serve"
	"snnsec/internal/tensor"
	"snnsec/internal/train"
)

// TestServeRequiresCkpt pins the flag contract.
func TestServeRequiresCkpt(t *testing.T) {
	if err := run([]string{"serve"}); err == nil || !strings.Contains(err.Error(), "-ckpt") {
		t.Errorf("serve without ckpt: %v", err)
	}
}

// TestServeEndToEnd is the in-process version of the CI serve smoke:
// train a tiny low-Vth SNN, load the checkpoint twice — once behind the
// server, once offline — and check a served batch's logits are
// bit-identical to the offline taped forward on the same samples. Two
// separate model instances keep the Poisson encoder states independent
// and identically seeded, exactly like the fresh-process comparison in
// CI.
func TestServeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model; skipped in -short mode")
	}
	t.Setenv(core.ScaleEnv, "tiny")
	ckpt := filepath.Join(t.TempDir(), "demo.ckpt")
	// A low threshold keeps the tiny network spiking, so the demo model
	// emits live logits instead of a silent all-zero readout.
	if err := run([]string{"train", "-model", "snn", "-vth", "0.2", "-T", "4", "-out", ckpt}); err != nil {
		t.Fatalf("train: %v", err)
	}

	s := core.ScaleFromEnv()
	m, err := modelio.LoadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	_, testDS, err := core.LoadData(s.Data)
	if err != nil {
		t.Fatal(err)
	}

	// Server side.
	served, sample, err := core.BuildFromCheckpoint(s, m)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := serve.NewEngine(served, nil, sample)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.NewServer(serve.Config{}, &serve.Model{Fingerprint: "demo", Runner: engine}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// One request with the first 3 test images, flattened.
	const n = 3
	sampleLen := 1
	for _, d := range sample {
		sampleLen *= d
	}
	req := serve.PredictRequest{Inputs: make([][]float64, n)}
	xd := testDS.X.Data()
	for i := 0; i < n; i++ {
		req.Inputs[i] = xd[i*sampleLen : (i+1)*sampleLen]
	}
	body, _ := json.Marshal(req)
	var out bytes.Buffer
	if err := srv.ServeLines(bytes.NewReader(append(body, '\n')), &out); err != nil {
		t.Fatalf("ServeLines: %v", err)
	}
	var resp serve.PredictResponse
	if err := json.Unmarshal(out.Bytes(), &resp); err != nil {
		t.Fatalf("decode %q: %v", out.String(), err)
	}

	// Offline side: a fresh model instance from the same checkpoint, so
	// its encoder starts from the same seed.
	offline, _, err := core.BuildFromCheckpoint(s, m)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.FromSlice(xd[:n*sampleLen], append([]int{n}, sample...)...)
	logits := train.LogitsOn(nil, offline, x)
	ld := logits.Data()
	classes := logits.Dim(1)
	live := false
	for i := 0; i < n; i++ {
		for c := 0; c < classes; c++ {
			got := resp.Logits[i][c]
			want := ld[i*classes+c]
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("sample %d class %d: served %v vs offline %v", i, c, got, want)
			}
			if got != 0 {
				live = true
			}
		}
	}
	if !live {
		t.Fatal("demo model emitted all-zero logits; lower the training Vth")
	}
	t.Logf("served preds: %v", resp.Preds)
}
