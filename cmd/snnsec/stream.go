package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"snnsec/internal/compute"
	"snnsec/internal/core"
	"snnsec/internal/dataset"
	"snnsec/internal/modelio"
	"snnsec/internal/serve"
	"snnsec/internal/stream"
)

// cmdStream serves a checkpoint as an event-driven streaming classifier:
// (t, x, y, polarity) events in, one classification per completed rolling
// window out. Input is the keepalive line protocol (one Record per line)
// on stdin/stdout, or on raw TCP with -addr where every connection is an
// independent session with its own carried membrane state. With -synth a
// deterministic glyph event stream is generated in-process and classified
// to stdout — the demo and CI-smoke path.
//
// Shutdown on SIGTERM/SIGINT is graceful per session: the record being
// processed finishes and its windows are answered, then the session ends.
// Exit codes: 0 when every session drained, 3 when TCP sessions were
// still busy after -drain-timeout, 1 for any other error. A second
// signal kills the process immediately.
func cmdStream(args []string) error {
	fs := flag.NewFlagSet("stream", flag.ContinueOnError)
	ckpt := fs.String("ckpt", "", "checkpoint path (required; must be an SNN checkpoint)")
	addr := fs.String("addr", "", "TCP listen address for keepalive sessions (default: line protocol on stdin/stdout)")
	steps := fs.Int("steps", 0, "time slices per window (default: the checkpoint's T)")
	window := fs.Int64("window", 0, "window length in microseconds (default: 1000 per step)")
	hop := fs.Int64("hop", 0, "hop between window starts in microseconds (default: the window length, i.e. tiling windows with carried state)")
	synth := fs.String("synth", "", "classify a synthetic glyph event stream over these comma-separated digits (e.g. 3,7) instead of serving")
	seed := fs.Uint64("seed", 42, "seed for the -synth event stream")
	drainTimeout := fs.Duration("drain-timeout", 10*time.Second,
		"how long a SIGTERM/SIGINT shutdown waits for TCP sessions to finish their in-flight record (exit code 3 on timeout)")
	logLevel := fs.String("log-level", "", "minimum stderr log level: debug, info (default), warn or error")
	metricsAddr := fs.String("metrics", "", "expose /metrics on this address (empty disables)")
	pprofOn := fs.Bool("pprof", false, "mount /debug/pprof/ on the -metrics listener")
	if err := fs.Parse(args); err != nil {
		return err
	}
	lg, err := stderrLogger(*logLevel)
	if err != nil {
		return err
	}
	stopMetrics, err := startMetricsServer(*metricsAddr, *pprofOn, lg)
	if err != nil {
		return err
	}
	defer stopMetrics()
	if *ckpt == "" {
		return fmt.Errorf("stream: -ckpt is required")
	}
	raw, err := os.ReadFile(*ckpt)
	if err != nil {
		return err
	}
	m, err := modelio.FromBytes(raw)
	if err != nil {
		return err
	}
	s := core.ScaleFromEnv()
	model, sample, err := core.BuildFromCheckpoint(s, m)
	if err != nil {
		return err
	}
	engine, err := serve.NewEngine(model, compute.Default(), sample)
	if err != nil {
		return err
	}
	if len(sample) != 3 {
		return fmt.Errorf("stream: checkpoint expects %v input, need [channels, height, width]", sample)
	}
	if *steps == 0 {
		t, err := strconv.Atoi(m.Meta["T"])
		if err != nil {
			return fmt.Errorf("stream: checkpoint has no time window T (is it an SNN checkpoint?); pass -steps")
		}
		*steps = t
	}
	if *window == 0 {
		*window = int64(*steps) * 1000
	}
	hopUS := *hop
	if hopUS == 0 {
		hopUS = *window
	}
	sv, err := stream.NewServer(stream.Config{
		Binner: stream.BinnerConfig{
			H:        sample[1],
			W:        sample[2],
			Channels: sample[0],
			Steps:    *steps,
			WindowUS: *window,
			HopUS:    *hop,
		},
	}, func() (stream.Runner, error) {
		return engine.NewStatefulRunner(compute.PackSpikePlanes())
	})
	if err != nil {
		return err
	}
	lg.Infof("streaming %s %s (fingerprint %s): %dx%d sensor, %d steps / %dus window, hop %dus",
		m.Meta["model"], *ckpt, modelio.Fingerprint(raw)[:12],
		sample[1], sample[2], *steps, *window, hopUS)

	// ctx fires on the first SIGTERM/SIGINT; stop() then restores the
	// default handlers, so a second signal kills the process outright.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *synth != "" {
		labels, err := parseDigits(*synth)
		if err != nil {
			return fmt.Errorf("stream: %w", err)
		}
		if sample[1] != sample[2] {
			return fmt.Errorf("stream: -synth needs a square sensor, model expects %dx%d", sample[1], sample[2])
		}
		cfg := dataset.DefaultEventStreamConfig(labels, *seed)
		cfg.Size = sample[1]
		src, err := dataset.NewGlyphEventStream(cfg)
		if err != nil {
			return err
		}
		dropped, err := sv.RunSource(ctx, src, src.EndUS(), os.Stdout)
		if err != nil {
			return err
		}
		lg.Infof("stream: synthetic stream done (%dus), %d partial windows dropped", src.EndUS(), dropped)
		return nil
	}

	if *addr == "" {
		// One session over stdin/stdout. Cancellation is observed between
		// records, so the signal path finishes the in-flight record — the
		// stdio drain never has queued work left to time out on.
		if err := sv.ServeLines(ctx, os.Stdin, os.Stdout); err != nil {
			return err
		}
		if ctx.Err() != nil {
			lg.Infof("stream: signal received, session drained")
		}
		return nil
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	lg.Infof("listening on %s (one streaming session per connection)", ln.Addr())
	var wg sync.WaitGroup
	acceptErr := make(chan error, 1)
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				acceptErr <- err
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer c.Close()
				if err := sv.ServeLines(ctx, c, c); err != nil {
					lg.Warnf("stream: session %s: %v", c.RemoteAddr(), err)
				}
			}()
		}
	}()
	select {
	case err := <-acceptErr:
		return err
	case <-ctx.Done():
	}
	stop()
	ln.Close()
	lg.Infof("stream: signal received, draining sessions (max %v)", *drainTimeout)
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
		lg.Infof("stream: all sessions drained")
		return nil
	case <-time.After(*drainTimeout):
		return exitCodeError{code: 3, msg: fmt.Sprintf("stream: drain timed out after %v with sessions still busy", *drainTimeout)}
	}
}

// parseDigits parses a comma-separated digit list like "3,7,1".
func parseDigits(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		d, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || d < 0 || d > 9 {
			return nil, fmt.Errorf("bad digit %q (want 0-9)", part)
		}
		out = append(out, d)
	}
	return out, nil
}
