// Package snnsec is a from-scratch Go reproduction of "Securing Deep
// Spiking Neural Networks against Adversarial Attacks through Inherent
// Structural Parameters" (El-Allami, Marchisio, Shafique, Alouani —
// DATE 2021, arXiv:2012.05321).
//
// The paper shows that the robustness of spiking neural networks (SNNs)
// against white-box gradient attacks (PGD) is strongly conditioned by two
// structural parameters: the neuron firing threshold Vth and the
// simulation time window T. This module re-implements the full pipeline
// the paper depends on — a tensor/autodiff substrate, a non-spiking CNN
// baseline (LeNet-5), a leaky-integrate-and-fire spiking substrate trained
// with surrogate-gradient BPTT, an adversarial attack library, a dataset,
// and the (Vth, T) exploration methodology of the paper's Algorithm 1 —
// using only the Go standard library.
//
// Layout:
//
//	internal/compute   execution backends: serial/parallel kernels, buffer pool
//	internal/tensor    dense float64 tensor kernels
//	internal/autodiff  tape-based reverse-mode automatic differentiation
//	internal/nn        non-spiking layers (Conv2D, Linear, pooling, ...)
//	internal/snn       LIF neurons, surrogate gradients, encoders, BPTT
//	internal/dataset   synthetic MNIST-like digits + MNIST IDX loader
//	internal/train     optimisers, training loop, metrics
//	internal/attack    FGSM, PGD, noise baselines, robustness evaluation
//	internal/explore   Algorithm 1: learnability + robustness exploration
//	internal/report    heatmaps, curves, CSV/markdown rendering
//	internal/modelio   model serialisation
//	internal/obs       metrics, Prometheus exposition, leveled logging
//	internal/core      experiment presets mirroring the paper's setup
//	cmd/snnsec         command-line interface
//	examples/          runnable example programs
//
// Every tensor kernel executes through a compute.Backend (selected
// per-tape, with a process-wide default): Serial runs inline, Parallel
// partitions kernels over a shared NumCPU-wide worker pool and recycles
// scratch buffers through a sync.Pool. The two backends are
// bit-identical by construction, and bounded-width backends let
// kernel-level parallelism compose with the grid-level parallelism of
// internal/explore without oversubscription. Convolution runs as a
// batched im2col pipeline — one matmul per batch rather than per image —
// on top of cache-blocked, register-tiled matmul micro-kernels (AVX on
// amd64, scalar tiles elsewhere) that are bit-identical to the naive
// reference kernels they replaced; BENCH_compute.json tracks the kernel
// timings per PR.
//
// The benchmark harness in bench_test.go regenerates every figure of the
// paper's evaluation (Figures 1, 6, 7, 8 and 9) at a CPU-friendly scale.
// README.md has the quickstart and CLI tour, DESIGN.md the architecture
// and numerical conventions, and EXPERIMENTS.md the experiment guide.
package snnsec

// Version is the library version reported by the CLI.
const Version = "1.0.0"
