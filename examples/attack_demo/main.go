// Attack demo: craft a single white-box PGD adversarial example against a
// trained spiking network and visualise it in the terminal — the
// "handwritten bank-check digit" scenario from the paper's introduction,
// where flipping one digit reroutes a payment. The demo prints the clean
// digit, the adversarial digit and the perturbation as ASCII art together
// with the victim's predictions.
//
// Run with:
//
//	go run ./examples/attack_demo
package main

import (
	"fmt"
	"log"

	"snnsec/internal/attack"
	"snnsec/internal/core"
	"snnsec/internal/dataset"
	"snnsec/internal/tensor"
	"snnsec/internal/train"
)

const ramp = " .:-=+*#%@"

// render prints a single-channel image tensor [1,1,H,W] as ASCII art,
// de-normalising back to [0,1] intensity for display.
func render(title string, img *tensor.Tensor) {
	fmt.Println(title)
	h, w := img.Dim(2), img.Dim(3)
	for y := 0; y < h; y++ {
		row := make([]byte, w)
		for x := 0; x < w; x++ {
			v := img.At(0, 0, y, x)*dataset.MNISTStd + dataset.MNISTMean
			if v < 0 {
				v = 0
			} else if v > 1 {
				v = 1
			}
			row[x] = ramp[int(v*float64(len(ramp)-1))]
		}
		fmt.Printf("  |%s|\n", row)
	}
}

func main() {
	log.SetFlags(0)
	trainDS, testDS, err := core.LoadData(core.DataConfig{TrainN: 400, TestN: 40, ImageSize: 16, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	scale := core.BenchScale()
	net, acc, err := scale.TrainSNN(1, 12, trainDS, testDS)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("victim SNN(Vth=1, T=12), clean accuracy %.3f\n\n", acc)

	// Find a correctly classified test digit to attack.
	preds := train.Predict(net, testDS.X)
	idx := -1
	for i, p := range preds {
		if p == testDS.Y[i] {
			idx = i
			break
		}
	}
	if idx < 0 {
		log.Fatal("no correctly classified sample to attack")
	}
	x := tensor.New(1, 1, 16, 16)
	x.SetSlice(0, testDS.X.Slice(idx))
	label := testDS.Y[idx]

	atk := attack.PGD{
		Eps:         1.5,
		Steps:       10,
		RandomStart: true,
		Rand:        tensor.NewRand(9, 9),
		Bounds:      attack.DatasetBounds(testDS),
	}
	adv := atk.Perturb(net, x, []int{label})
	advPred := train.Predict(net, adv)[0]

	render(fmt.Sprintf("clean digit (true label %d, predicted %d):", label, label), x)
	fmt.Println()
	render(fmt.Sprintf("adversarial digit (predicted %d):", advPred), adv)
	fmt.Println()
	delta := tensor.Sub(adv, x)
	fmt.Printf("perturbation:  L-inf = %.3f (budget %.3f),  L2 = %.3f\n",
		tensor.NormInf(delta), atk.Eps, tensor.Norm2(delta))
	if advPred != label {
		fmt.Println("attack SUCCEEDED — the digit reads differently to the network")
	} else {
		fmt.Println("attack FAILED — the spiking network held its prediction")
	}
}
