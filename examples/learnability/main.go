// Learnability study (the paper's Section VI-B, Figure 6): sweep a small
// (Vth, T) grid, train a spiking network at every point, and render the
// clean-accuracy heat map. Points that fail the 70 % learnability gate
// are exactly the ones Algorithm 1 refuses to attack.
//
// Run with:
//
//	go run ./examples/learnability
//
// The grid here is intentionally tiny so the example finishes in about a
// minute on one CPU core; `snnsec grid` runs the full preset.
package main

import (
	"fmt"
	"log"
	"os"

	"snnsec/internal/core"
	"snnsec/internal/explore"
	"snnsec/internal/report"
	"snnsec/internal/snn"
	"snnsec/internal/train"
)

func main() {
	log.SetFlags(0)
	trainDS, testDS, err := core.LoadData(core.DataConfig{TrainN: 400, TestN: 60, ImageSize: 16, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	net := core.DefaultLeNetConfig(16, 7)
	cfg := explore.Config{
		// A deliberately wide threshold range: the highest value
		// approaches the silent regime where too few spikes reach the
		// readout within the window.
		Vths:              []float64{0.5, 1, 3},
		Ts:                []int{4, 12},
		Epsilons:          []float64{1.0}, // unused cells are fine for a learnability-only view
		AccuracyThreshold: 0.70,
		Train: train.Config{
			Epochs:    5,
			BatchSize: 32,
			GradClip:  5,
		},
		NewOptimizer: func() train.Optimizer { return train.NewAdam(3e-3) },
		AttackSteps:  3,
		EvalBatch:    32,
		Build: func(vth float64, T int) (*snn.Network, error) {
			return core.NewSpikingLeNet5(net, vth, T, core.SNNOptions{})
		},
		Seed: 42,
	}
	res, err := explore.Run(cfg, trainDS, testDS)
	if err != nil {
		log.Fatal(err)
	}

	report.AccuracyGrid(res).WriteASCII(os.Stdout)
	fmt.Println()
	fmt.Printf("%d of %d grid points pass the A_th = 70%% gate\n", res.LearnableCount(), len(res.Points))
	for i := range res.Points {
		p := &res.Points[i]
		status := "learns"
		if !p.Learnable {
			status = "REJECTED (Algorithm 1, line 18)"
		}
		fmt.Printf("  (Vth=%-4g T=%-3d) accuracy %.3f — %s\n", p.Vth, p.T, p.CleanAccuracy, status)
	}
}
