// Quickstart: train a spiking LeNet-5 on the synthetic digit dataset,
// measure its clean accuracy, then attack it with white-box PGD at one
// noise budget — the minimal end-to-end tour of the library's public
// surface (dataset → model → training → attack → evaluation).
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"snnsec/internal/attack"
	"snnsec/internal/core"
	"snnsec/internal/tensor"
)

func main() {
	log.SetFlags(0)

	// 1. Data: 16×16 synthetic digits in MNIST-normalised units (set
	//    SNNSEC_MNIST_DIR to use real MNIST instead).
	trainDS, testDS, err := core.LoadData(core.DataConfig{TrainN: 400, TestN: 80, ImageSize: 16, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d train / %d test samples, %d classes\n",
		trainDS.Len(), testDS.Len(), trainDS.NumClasses())

	// 2. Model + training: a spiking LeNet-5 at the default structural
	//    point (Vth=1) with a 12-step time window.
	scale := core.BenchScale()
	const (
		vth = 1.0
		T   = 12
	)
	net, acc, err := scale.TrainSNN(vth, T, trainDS, testDS)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SNN(Vth=%g, T=%d): clean test accuracy %.3f\n", vth, T, acc)

	// 3. White-box PGD attack (Eq. 3 of the paper) at ε = 1.0 in
	//    normalised units, differentiating through the full unrolled
	//    time window.
	eps := 1.0
	atk := attack.PGD{
		Eps:         eps,
		Steps:       5,
		RandomStart: true,
		Rand:        tensor.NewRand(7, 7),
		Bounds:      attack.DatasetBounds(testDS),
	}
	ev := attack.Evaluate(net, testDS, atk, 32)
	fmt.Println(ev.String())
	fmt.Printf("robustness (paper's metric, Algorithm 1 line 15): %.3f\n", ev.RobustAccuracy)

	if ev.RobustAccuracy > ev.CleanAccuracy {
		fmt.Fprintln(os.Stderr, "warning: robust accuracy exceeded clean accuracy — attack ineffective?")
	}
}
