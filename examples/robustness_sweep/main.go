// Robustness sweep (the paper's Section VI-C, Figure 9): train the CNN
// baseline and two spiking networks with different structural parameters,
// then trace robust accuracy across PGD noise budgets. It demonstrates
// the paper's central claim — two SNNs with comparable clean accuracy can
// behave very differently under attack, and a well-chosen (Vth, T) beats
// the CNN by a wide margin at high ε.
//
// Run with:
//
//	go run ./examples/robustness_sweep
package main

import (
	"fmt"
	"log"
	"os"

	"snnsec/internal/attack"
	"snnsec/internal/core"
	"snnsec/internal/report"
	"snnsec/internal/tensor"
)

func main() {
	log.SetFlags(0)
	scale := core.BenchScale()
	trainDS, testDS, err := core.LoadData(scale.Data)
	if err != nil {
		log.Fatal(err)
	}

	cnn, cnnAcc, err := scale.TrainCNN(trainDS, testDS)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CNN clean accuracy: %.3f\n", cnnAcc)

	// Two structural points: a long window at the default threshold (the
	// paper's robust sweet spot is (1, 48)) and a short window (its
	// "medium robustness" case is (1, 32) — low clean accuracy but a
	// flat degradation curve).
	combos := []struct {
		vth float64
		T   int
	}{
		{1, 12},
		{1, 4},
	}

	epsilons := []float64{0, 0.5, 1.0, 1.5}
	bounds := attack.DatasetBounds(testDS)
	mk := func(eps float64) attack.Attack {
		return attack.PGD{Eps: eps, Steps: 5, RandomStart: true, Rand: tensor.NewRand(3, 3), Bounds: bounds}
	}

	series := []report.Series{
		{Name: "CNN", Points: attack.Curve(cnn, testDS, epsilons, mk, 32)},
	}
	for _, c := range combos {
		net, acc, err := scale.TrainSNN(c.vth, c.T, trainDS, testDS)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("SNN(Vth=%g, T=%d) clean accuracy: %.3f\n", c.vth, c.T, acc)
		series = append(series, report.Series{
			Name:   fmt.Sprintf("SNN(%g,%d)", c.vth, c.T),
			Points: attack.Curve(net, testDS, epsilons, mk, 32),
		})
	}

	fmt.Println()
	report.WriteCurves(os.Stdout, "Robust accuracy vs PGD noise budget", series)

	// The paper's headline: the robustness gap over the CNN at the
	// strongest budget.
	last := len(epsilons) - 1
	for _, s := range series[1:] {
		gap := s.Points[last].RobustAccuracy - series[0].Points[last].RobustAccuracy
		fmt.Printf("%s gap over CNN at eps=%g: %+.3f\n", s.Name, epsilons[last], gap)
	}
}
