module snnsec

go 1.24
