// Package analysis provides diagnostics that explain *why* the structural
// parameters condition SNN robustness: spiking-activity profiles across
// the (Vth, T) plane, input-gradient magnitude statistics (the
// gradient-masking effect of sharp surrogates and short windows), and
// logit-margin statistics. The paper reports the phenomena; this package
// measures their mechanism.
package analysis

import (
	"fmt"
	"io"
	"math"
	"sort"

	"snnsec/internal/attack"
	"snnsec/internal/autodiff"
	"snnsec/internal/dataset"
	"snnsec/internal/nn"
	"snnsec/internal/snn"
	"snnsec/internal/tensor"
)

// ActivityProfile summarises the spiking behaviour of a network on a
// batch of inputs.
type ActivityProfile struct {
	// LayerRates[l] is the mean firing probability of hidden layer l.
	LayerRates []float64
	// OutputRate is the mean readout activity.
	OutputRate float64
	// MeanRate averages LayerRates.
	MeanRate float64
	// SilentFraction is the fraction of hidden layers with a rate below
	// 1e-6 — a direct detector of the paper's "silent network" corner.
	SilentFraction float64
}

// Activity runs one recorded forward pass and extracts the profile.
func Activity(net *snn.Network, x *tensor.Tensor) ActivityProfile {
	rec := &snn.Trace{}
	old := net.Record
	net.Record = rec
	defer func() { net.Record = old }()
	tp := autodiff.NewTape()
	net.Logits(tp, tp.Const(x))
	p := ActivityProfile{
		LayerRates: append([]float64(nil), rec.SpikeRates...),
		OutputRate: rec.OutputRate,
	}
	silent := 0
	var sum float64
	for _, r := range p.LayerRates {
		sum += r
		if r < 1e-6 {
			silent++
		}
	}
	if len(p.LayerRates) > 0 {
		p.MeanRate = sum / float64(len(p.LayerRates))
		p.SilentFraction = float64(silent) / float64(len(p.LayerRates))
	}
	return p
}

// GradientStats quantifies the white-box attack surface: the statistics
// of |∂L/∂x| over a batch. Small gradients mean PGD receives little
// signal — the obfuscation mechanism behind much of the measured SNN
// "robustness" (and behind its dependence on the surrogate sharpness and
// on T).
type GradientStats struct {
	MeanAbs   float64
	MaxAbs    float64
	MedianAbs float64
	// ZeroFraction is the fraction of input pixels with exactly zero
	// gradient.
	ZeroFraction float64
}

// InputGradients computes GradientStats for a model on a labelled batch.
func InputGradients(model nn.Classifier, x *tensor.Tensor, y []int) GradientStats {
	g := attack.InputGradient(model, x, y)
	abs := make([]float64, g.Len())
	zero := 0
	var sum, max float64
	for i, v := range g.Data() {
		a := math.Abs(v)
		abs[i] = a
		sum += a
		if a > max {
			max = a
		}
		if v == 0 {
			zero++
		}
	}
	sort.Float64s(abs)
	med := abs[len(abs)/2]
	return GradientStats{
		MeanAbs:      sum / float64(len(abs)),
		MaxAbs:       max,
		MedianAbs:    med,
		ZeroFraction: float64(zero) / float64(len(abs)),
	}
}

// MarginStats summarises classification confidence: the logit margin
// (top1 − top2) per sample. Larger margins require larger perturbations
// to flip.
type MarginStats struct {
	Mean, Min float64
	// NegativeFraction is the fraction of samples already misclassified
	// (margin measured against the true class).
	NegativeFraction float64
}

// Margins computes the true-class logit margin statistics on a batch.
func Margins(model nn.Classifier, x *tensor.Tensor, y []int) MarginStats {
	tp := autodiff.NewTape()
	logits := model.Logits(tp, tp.Const(x)).Data
	n, c := logits.Dim(0), logits.Dim(1)
	if len(y) != n {
		panic(fmt.Sprintf("analysis: %d labels for batch of %d", len(y), n))
	}
	ms := MarginStats{Min: math.Inf(1)}
	neg := 0
	for i := 0; i < n; i++ {
		row := logits.Row(i)
		true_ := row[y[i]]
		best := math.Inf(-1)
		for j := 0; j < c; j++ {
			if j != y[i] && row[j] > best {
				best = row[j]
			}
		}
		m := true_ - best
		ms.Mean += m
		if m < ms.Min {
			ms.Min = m
		}
		if m < 0 {
			neg++
		}
	}
	ms.Mean /= float64(n)
	ms.NegativeFraction = float64(neg) / float64(n)
	return ms
}

// VthSweepRow is one row of a threshold sweep report.
type VthSweepRow struct {
	Vth      float64
	Profile  ActivityProfile
	Gradient GradientStats
}

// SweepVth measures activity and gradient statistics of the same trained
// network evaluated at different inference thresholds (without
// retraining), isolating the direct effect of Vth on the attack surface.
func SweepVth(net *snn.Network, ds *dataset.Dataset, vths []float64, batch int) []VthSweepRow {
	orig := make([]float64, len(net.Hidden))
	for i := range net.Hidden {
		orig[i] = net.Hidden[i].Cfg.Vth
	}
	origOut := net.ReadoutCfg.Vth
	defer func() {
		for i := range net.Hidden {
			net.Hidden[i].Cfg.Vth = orig[i]
		}
		net.ReadoutCfg.Vth = origOut
	}()

	b := ds.Batches(batch)[0]
	rows := make([]VthSweepRow, 0, len(vths))
	for _, v := range vths {
		net.SetVth(v)
		rows = append(rows, VthSweepRow{
			Vth:      v,
			Profile:  Activity(net, b.X),
			Gradient: InputGradients(net, b.X, b.Y),
		})
	}
	return rows
}

// WriteVthSweep renders a threshold sweep as an aligned table.
func WriteVthSweep(w io.Writer, rows []VthSweepRow) {
	fmt.Fprintf(w, "%8s %12s %12s %14s %14s\n", "Vth", "mean_rate", "out_rate", "grad_mean", "grad_zero_frac")
	for _, r := range rows {
		fmt.Fprintf(w, "%8.3g %12.4f %12.4f %14.3e %14.3f\n",
			r.Vth, r.Profile.MeanRate, r.Profile.OutputRate, r.Gradient.MeanAbs, r.Gradient.ZeroFraction)
	}
}
