package analysis

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"snnsec/internal/dataset"
	"snnsec/internal/nn"
	"snnsec/internal/snn"
	"snnsec/internal/tensor"
)

func smallNet(vth float64, T int) *snn.Network {
	r := tensor.NewRand(5, 0)
	cfg := snn.NeuronConfig{Vth: vth, Alpha: 0.9, Reset: snn.ResetZero, Surrogate: snn.FastSigmoid{Beta: 10}}
	return &snn.Network{
		Encoder: snn.ConstantCurrentEncoder{Gain: 1},
		Hidden: []snn.Layer{
			{Syn: nn.NewSequential(nn.Flatten{}, nn.NewLinear(r, 64, 16)), Cfg: cfg},
			{Syn: nn.NewLinear(r, 16, 16), Cfg: cfg},
		},
		Readout:    nn.NewLinear(r, 16, 10),
		ReadoutCfg: cfg,
		Mode:       snn.ReadoutSpikeCount,
		T:          T,
		LogitScale: 10,
	}
}

func smallBatch(t *testing.T) (*tensor.Tensor, []int, *dataset.Dataset) {
	t.Helper()
	cfg := dataset.DefaultSynthConfig(32, 3)
	cfg.Size = 8
	ds, err := dataset.SynthDigits(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ds.Normalize()
	b := ds.Batches(16)[0]
	return b.X, b.Y, ds
}

func TestActivityProfileBasics(t *testing.T) {
	x, _, _ := smallBatch(t)
	p := Activity(smallNet(0.5, 6), x)
	if len(p.LayerRates) != 2 {
		t.Fatalf("layer rates = %d", len(p.LayerRates))
	}
	for i, r := range p.LayerRates {
		if r < 0 || r > 1 {
			t.Errorf("layer %d rate %v out of [0,1]", i, r)
		}
	}
	if p.MeanRate < 0 || p.MeanRate > 1 {
		t.Errorf("mean rate %v", p.MeanRate)
	}
}

func TestActivityDetectsSilentNetwork(t *testing.T) {
	x, _, _ := smallBatch(t)
	p := Activity(smallNet(1e9, 4), x)
	if p.SilentFraction != 1 {
		t.Errorf("silent fraction = %v, want 1", p.SilentFraction)
	}
	if p.MeanRate != 0 {
		t.Errorf("silent network rate = %v", p.MeanRate)
	}
}

func TestActivityRestoresRecorder(t *testing.T) {
	x, _, _ := smallBatch(t)
	net := smallNet(0.5, 4)
	Activity(net, x)
	if net.Record != nil {
		t.Error("Activity leaked its recorder into the network")
	}
}

func TestActivityRateDecreasesWithVth(t *testing.T) {
	x, _, _ := smallBatch(t)
	lo := Activity(smallNet(0.25, 6), x)
	hi := Activity(smallNet(2.5, 6), x)
	if hi.MeanRate > lo.MeanRate {
		t.Errorf("raising Vth increased firing: %v -> %v", lo.MeanRate, hi.MeanRate)
	}
}

func TestInputGradientsSilentMeansMasked(t *testing.T) {
	x, y, _ := smallBatch(t)
	g := InputGradients(smallNet(1e9, 4), x, y)
	// A silent network has (almost) no gradient path to the pixels; with
	// the sharp surrogate far from threshold the gradient is tiny.
	if g.MeanAbs > 1e-3 {
		t.Errorf("silent network leaks gradient: mean |g| = %v", g.MeanAbs)
	}
	live := InputGradients(smallNet(0.5, 6), x, y)
	if live.MeanAbs <= g.MeanAbs {
		t.Errorf("live network gradient (%v) not above silent (%v)", live.MeanAbs, g.MeanAbs)
	}
	if live.MaxAbs < live.MedianAbs {
		t.Error("max below median")
	}
	if g.ZeroFraction < 0 || g.ZeroFraction > 1 {
		t.Errorf("zero fraction %v", g.ZeroFraction)
	}
}

func TestMarginsUntrainedNearZero(t *testing.T) {
	x, y, _ := smallBatch(t)
	m := Margins(smallNet(0.5, 6), x, y)
	if math.IsInf(m.Min, 1) {
		t.Error("min margin not computed")
	}
	if m.NegativeFraction < 0 || m.NegativeFraction > 1 {
		t.Errorf("negative fraction %v", m.NegativeFraction)
	}
	// An untrained net misclassifies most samples: many negative margins.
	if m.NegativeFraction < 0.3 {
		t.Errorf("untrained network suspiciously confident: neg frac %v", m.NegativeFraction)
	}
}

func TestMarginsLabelMismatchPanics(t *testing.T) {
	x, _, _ := smallBatch(t)
	defer func() {
		if recover() == nil {
			t.Fatal("label count mismatch did not panic")
		}
	}()
	Margins(smallNet(0.5, 4), x, []int{0})
}

func TestSweepVthRestoresThresholds(t *testing.T) {
	_, _, ds := smallBatch(t)
	net := smallNet(0.7, 4)
	rows := SweepVth(net, ds, []float64{0.25, 1, 4}, 8)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if net.Hidden[0].Cfg.Vth != 0.7 || net.ReadoutCfg.Vth != 0.7 {
		t.Error("SweepVth did not restore the original thresholds")
	}
	// Firing rate must be non-increasing across the sweep.
	for i := 1; i < len(rows); i++ {
		if rows[i].Profile.MeanRate > rows[i-1].Profile.MeanRate+1e-9 {
			t.Errorf("rate increased from Vth=%g to %g", rows[i-1].Vth, rows[i].Vth)
		}
	}
}

func TestWriteVthSweep(t *testing.T) {
	_, _, ds := smallBatch(t)
	rows := SweepVth(smallNet(0.5, 4), ds, []float64{0.5, 2}, 8)
	var buf bytes.Buffer
	WriteVthSweep(&buf, rows)
	s := buf.String()
	if !strings.Contains(s, "Vth") || !strings.Contains(s, "grad_mean") {
		t.Errorf("sweep table incomplete:\n%s", s)
	}
	if len(strings.Split(strings.TrimSpace(s), "\n")) != 3 {
		t.Errorf("sweep table rows:\n%s", s)
	}
}
