// Package attack implements the white-box adversarial attacks of the
// paper's threat model (Section IV): FGSM and its strong iterated variant
// PGD (Madry et al., Eq. 3 of the paper), plus a Gaussian-noise baseline.
// The attacker has full access to the victim classifier — architecture,
// weights and structural parameters — and differentiates through it,
// which for a spiking network means backpropagating through the full
// unrolled time window with the same surrogate gradients used in
// training.
//
// All attacks operate under an L∞ budget ε measured in the dataset's
// current units (normalised MNIST units in the experiment presets, so
// ε = 1.5 matches the paper's strongest setting) and clip the adversarial
// example to the valid pixel range.
//
// Attacks perturb whole [N,1,H,W] batches at a time: every PGD/FGSM
// gradient step is one forward/backward pass over the batch, so the
// per-step cost rides the batched conv pipeline and the backend
// parallelism of the layers below rather than looping over images here.
package attack

import (
	"fmt"
	"math/rand/v2"

	"snnsec/internal/autodiff"
	"snnsec/internal/compute"
	"snnsec/internal/dataset"
	"snnsec/internal/nn"
	"snnsec/internal/tensor"
)

// Attack crafts adversarial examples against a classifier.
type Attack interface {
	// Perturb returns adversarial versions of the images x [N,1,H,W]
	// with true labels y. The input tensor is not modified.
	Perturb(model nn.Classifier, x *tensor.Tensor, y []int) *tensor.Tensor
	// Name identifies the attack in reports.
	Name() string
}

// Bounds is the valid pixel interval attacks clip to.
type Bounds struct {
	Lo, Hi float64
}

// DatasetBounds derives clipping bounds from a dataset's units.
func DatasetBounds(d *dataset.Dataset) Bounds {
	lo, hi := d.Bounds()
	return Bounds{Lo: lo, Hi: hi}
}

// InputGradient returns dLoss/dx of the mean cross-entropy at (x, y) —
// the core white-box primitive shared by FGSM and PGD — on the default
// backend.
func InputGradient(model nn.Classifier, x *tensor.Tensor, y []int) *tensor.Tensor {
	return InputGradientOn(nil, model, x, y)
}

// InputGradientOn is InputGradient on an explicit compute backend (nil
// selects the default): the forward pass and the BPTT backward pass both
// execute on be.
func InputGradientOn(be compute.Backend, model nn.Classifier, x *tensor.Tensor, y []int) *tensor.Tensor {
	tp := autodiff.NewTapeOn(be)
	xv := tp.Var(x)
	loss := tp.SoftmaxCrossEntropy(model.Logits(tp, xv), y)
	tp.Backward(loss)
	return xv.Grad
}

// FGSM is the single-step fast gradient sign method of Goodfellow et al.
type FGSM struct {
	Eps    float64
	Bounds Bounds
	// Backend selects the compute backend for the gradient computation;
	// nil uses the default.
	Backend compute.Backend
}

// Perturb returns clip(x + ε·sign(∇ₓL)).
func (a FGSM) Perturb(model nn.Classifier, x *tensor.Tensor, y []int) *tensor.Tensor {
	g := InputGradientOn(a.Backend, model, x, y)
	adv := x.Clone()
	tensor.Axpy(a.Eps, tensor.SignOn(a.Backend, g), adv)
	tensor.ClampInto(adv, a.Bounds.Lo, a.Bounds.Hi)
	return adv
}

// Name returns "fgsm(ε)".
func (a FGSM) Name() string { return fmt.Sprintf("fgsm(eps=%g)", a.Eps) }

// PGD is projected gradient descent under an L∞ ball (Madry et al.) —
// Eq. (3) of the paper: x_{t+1} = Π_{Sx}(x_t + α·sign(∇ₓL(x_t, y))).
type PGD struct {
	// Eps is the total L∞ noise budget.
	Eps float64
	// Alpha is the per-iteration step; when 0 it defaults to
	// 2.5·Eps/Steps, the standard Madry heuristic.
	Alpha float64
	// Steps is the iteration count; when 0 it defaults to 10.
	Steps int
	// RandomStart initialises inside the ε-ball (the canonical PGD); the
	// generator must be non-nil when set.
	RandomStart bool
	Rand        *rand.Rand
	Bounds      Bounds
	// Backend selects the compute backend for the per-step gradient
	// computations; nil uses the default.
	Backend compute.Backend
}

// Name returns "pgd(ε,steps)".
func (a PGD) Name() string { return fmt.Sprintf("pgd(eps=%g,steps=%d)", a.Eps, a.effectiveSteps()) }

func (a PGD) effectiveSteps() int {
	if a.Steps <= 0 {
		return 10
	}
	return a.Steps
}

func (a PGD) effectiveAlpha() float64 {
	if a.Alpha > 0 {
		return a.Alpha
	}
	return 2.5 * a.Eps / float64(a.effectiveSteps())
}

// Perturb runs the full iterated attack.
func (a PGD) Perturb(model nn.Classifier, x *tensor.Tensor, y []int) *tensor.Tensor {
	steps := a.effectiveSteps()
	alpha := a.effectiveAlpha()
	adv := x.Clone()
	if a.RandomStart {
		if a.Rand == nil {
			panic("attack: PGD RandomStart requires a generator")
		}
		noise := tensor.RandU(a.Rand, -a.Eps, a.Eps, x.Shape()...)
		tensor.AddIntoOn(a.Backend, adv, noise)
		a.project(adv, x)
	}
	for i := 0; i < steps; i++ {
		g := InputGradientOn(a.Backend, model, adv, y)
		tensor.Axpy(alpha, tensor.SignOn(a.Backend, g), adv)
		a.project(adv, x)
	}
	return adv
}

// project clips adv into the ε-ball around x intersected with the pixel
// bounds — the projection operator P_{Sx} of Eq. (3).
func (a PGD) project(adv, x *tensor.Tensor) {
	ad, xd := adv.Data(), x.Data()
	for i := range ad {
		lo := xd[i] - a.Eps
		hi := xd[i] + a.Eps
		if lo < a.Bounds.Lo {
			lo = a.Bounds.Lo
		}
		if hi > a.Bounds.Hi {
			hi = a.Bounds.Hi
		}
		if ad[i] < lo {
			ad[i] = lo
		} else if ad[i] > hi {
			ad[i] = hi
		}
	}
}

// GaussianNoise is the non-adversarial control: i.i.d. noise of the same
// L∞-comparable magnitude, to separate "robust to attack" from "robust to
// noise".
type GaussianNoise struct {
	Std    float64
	Rand   *rand.Rand
	Bounds Bounds
}

// Perturb adds clipped Gaussian noise.
func (a GaussianNoise) Perturb(_ nn.Classifier, x *tensor.Tensor, _ []int) *tensor.Tensor {
	if a.Rand == nil {
		panic("attack: GaussianNoise requires a generator")
	}
	adv := x.Clone()
	tensor.AddInto(adv, tensor.RandN(a.Rand, 0, a.Std, x.Shape()...))
	tensor.ClampInto(adv, a.Bounds.Lo, a.Bounds.Hi)
	return adv
}

// Name returns "gaussian(σ)".
func (a GaussianNoise) Name() string { return fmt.Sprintf("gaussian(std=%g)", a.Std) }

// Identity is the ε=0 attack: it returns the input unchanged. It anchors
// robustness curves at the clean accuracy.
type Identity struct{}

// Perturb returns a copy of x.
func (Identity) Perturb(_ nn.Classifier, x *tensor.Tensor, _ []int) *tensor.Tensor { return x.Clone() }

// Name returns "identity".
func (Identity) Name() string { return "identity" }
