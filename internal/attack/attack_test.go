package attack

import (
	"math"
	"strings"
	"testing"

	"snnsec/internal/dataset"
	"snnsec/internal/nn"
	"snnsec/internal/snn"
	"snnsec/internal/tensor"
	"snnsec/internal/train"
)

func testData(t *testing.T, n int) *dataset.Dataset {
	t.Helper()
	cfg := dataset.DefaultSynthConfig(n, 99)
	cfg.Size = 12
	d, err := dataset.SynthDigits(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d.Normalize()
	return d
}

func trainedCNN(t *testing.T, ds *dataset.Dataset, seed uint64) *nn.Sequential {
	t.Helper()
	r := tensor.NewRand(seed, 0)
	model := nn.NewSequential(
		nn.NewConv2D(r, 1, 6, 3, 2, 1),
		nn.ReLU{},
		nn.Flatten{},
		nn.NewLinear(r, 6*6*6, 10),
	)
	if _, err := train.Fit(model, ds, train.Config{Epochs: 8, BatchSize: 24, Optimizer: train.NewAdam(3e-3)}); err != nil {
		t.Fatal(err)
	}
	return model
}

func trainedSNN(t *testing.T, ds *dataset.Dataset, seed uint64) *snn.Network {
	t.Helper()
	r := tensor.NewRand(seed, 0)
	cfg := snn.NeuronConfig{Vth: 0.75, Alpha: 0.9, Reset: snn.ResetZero, Surrogate: snn.FastSigmoid{Beta: 5}}
	net := &snn.Network{
		Encoder: snn.ConstantCurrentEncoder{Gain: 1},
		Hidden: []snn.Layer{
			{Syn: nn.NewSequential(nn.NewConv2D(r, 1, 6, 3, 2, 1), nn.Flatten{}), Cfg: cfg},
		},
		Readout:    nn.NewLinear(r, 6*6*6, 10),
		ReadoutCfg: cfg,
		Mode:       snn.ReadoutSpikeCount,
		T:          8,
		LogitScale: 10,
	}
	if _, err := train.Fit(net, ds, train.Config{Epochs: 8, BatchSize: 24, Optimizer: train.NewAdam(3e-3), GradClip: 5}); err != nil {
		t.Fatal(err)
	}
	return net
}

func TestInputGradientNonZero(t *testing.T) {
	ds := testData(t, 40)
	model := trainedCNN(t, ds, 1)
	b := ds.Batches(8)[0]
	g := InputGradient(model, b.X, b.Y)
	if tensor.Sum(tensor.Abs(g)) == 0 {
		t.Fatal("input gradient identically zero")
	}
	if !g.SameShape(b.X) {
		t.Fatal("gradient shape mismatch")
	}
}

func TestFGSMRespectsBudgetAndBounds(t *testing.T) {
	ds := testData(t, 40)
	model := trainedCNN(t, ds, 2)
	lo, hi := ds.Bounds()
	atk := FGSM{Eps: 0.3, Bounds: Bounds{Lo: lo, Hi: hi}}
	b := ds.Batches(16)[0]
	adv := atk.Perturb(model, b.X, b.Y)
	if d := tensor.NormInf(tensor.Sub(adv, b.X)); d > 0.3+1e-9 {
		t.Errorf("FGSM L∞ distortion %v exceeds ε", d)
	}
	if tensor.Max(adv) > hi+1e-9 || tensor.Min(adv) < lo-1e-9 {
		t.Error("FGSM left pixel bounds")
	}
	// Original untouched.
	if !b.X.AllClose(ds.Batches(16)[0].X, 0) {
		t.Error("FGSM mutated its input")
	}
}

func TestPGDRespectsBudgetAndBounds(t *testing.T) {
	ds := testData(t, 40)
	model := trainedCNN(t, ds, 3)
	atk := PGD{Eps: 0.5, Steps: 5, RandomStart: true, Rand: tensor.NewRand(1, 1), Bounds: DatasetBounds(ds)}
	b := ds.Batches(16)[0]
	adv := atk.Perturb(model, b.X, b.Y)
	if d := tensor.NormInf(tensor.Sub(adv, b.X)); d > 0.5+1e-9 {
		t.Errorf("PGD L∞ distortion %v exceeds ε", d)
	}
	lo, hi := ds.Bounds()
	if tensor.Max(adv) > hi+1e-9 || tensor.Min(adv) < lo-1e-9 {
		t.Error("PGD left pixel bounds")
	}
}

func TestPGDDefaults(t *testing.T) {
	a := PGD{Eps: 1}
	if a.effectiveSteps() != 10 {
		t.Errorf("default steps = %d", a.effectiveSteps())
	}
	if math.Abs(a.effectiveAlpha()-0.25) > 1e-12 {
		t.Errorf("default alpha = %v, want 2.5·ε/steps = 0.25", a.effectiveAlpha())
	}
	if !strings.Contains(a.Name(), "pgd") {
		t.Error("bad name")
	}
}

func TestPGDRandomStartNeedsRand(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RandomStart without generator did not panic")
		}
	}()
	ds := testData(t, 10)
	model := trainedCNN(t, ds, 4)
	b := ds.Batches(4)[0]
	PGD{Eps: 0.1, RandomStart: true, Bounds: DatasetBounds(ds)}.Perturb(model, b.X, b.Y)
}

func TestPGDDegradesAccuracyMoreThanFGSM(t *testing.T) {
	ds := testData(t, 80)
	model := trainedCNN(t, ds, 5)
	bounds := DatasetBounds(ds)
	eps := 1.0
	evF := Evaluate(model, ds, FGSM{Eps: eps, Bounds: bounds}, 20)
	evP := Evaluate(model, ds, PGD{Eps: eps, Steps: 10, Bounds: bounds}, 20)
	if evP.RobustAccuracy > evF.RobustAccuracy+0.05 {
		t.Errorf("PGD (%v) should be at least as strong as FGSM (%v)", evP.RobustAccuracy, evF.RobustAccuracy)
	}
	if evF.CleanAccuracy < 0.5 {
		t.Fatalf("model too weak for the comparison: clean %v", evF.CleanAccuracy)
	}
}

func TestStrongPGDBreaksCNN(t *testing.T) {
	ds := testData(t, 60)
	model := trainedCNN(t, ds, 6)
	ev := Evaluate(model, ds, PGD{Eps: 3, Steps: 15, Bounds: DatasetBounds(ds)}, 20)
	if ev.RobustAccuracy > ev.CleanAccuracy/2 {
		t.Errorf("huge-ε PGD barely hurt the CNN: clean %v, robust %v", ev.CleanAccuracy, ev.RobustAccuracy)
	}
}

func TestWhiteBoxPGDWorksOnSNN(t *testing.T) {
	// The central mechanic of the paper: PGD must be able to attack the
	// SNN through surrogate-gradient BPTT.
	ds := testData(t, 60)
	net := trainedSNN(t, ds, 7)
	evClean := Evaluate(net, ds, Identity{}, 20)
	if evClean.CleanAccuracy < 0.4 {
		t.Fatalf("SNN too weak to attack meaningfully: %v", evClean.CleanAccuracy)
	}
	ev := Evaluate(net, ds, PGD{Eps: 3, Steps: 10, Bounds: DatasetBounds(ds)}, 20)
	if ev.RobustAccuracy >= ev.CleanAccuracy {
		t.Errorf("PGD had no effect on the SNN: clean %v, robust %v", ev.CleanAccuracy, ev.RobustAccuracy)
	}
}

func TestGaussianNoiseBaseline(t *testing.T) {
	ds := testData(t, 40)
	model := trainedCNN(t, ds, 8)
	atk := GaussianNoise{Std: 0.1, Rand: tensor.NewRand(2, 2), Bounds: DatasetBounds(ds)}
	b := ds.Batches(16)[0]
	adv := atk.Perturb(model, b.X, b.Y)
	if adv.AllClose(b.X, 0) {
		t.Error("noise attack changed nothing")
	}
	lo, hi := ds.Bounds()
	if tensor.Max(adv) > hi+1e-9 || tensor.Min(adv) < lo-1e-9 {
		t.Error("noise left bounds")
	}
}

func TestGaussianNeedsRand(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("GaussianNoise without generator did not panic")
		}
	}()
	GaussianNoise{Std: 0.1}.Perturb(nil, tensor.New(1, 1, 2, 2), nil)
}

func TestIdentityAttack(t *testing.T) {
	x := tensor.FromSlice([]float64{1, 2, 3, 4}, 1, 1, 2, 2)
	adv := Identity{}.Perturb(nil, x, nil)
	if !adv.AllClose(x, 0) {
		t.Error("identity changed input")
	}
	adv.Data()[0] = 9
	if x.Data()[0] == 9 {
		t.Error("identity returned the same storage")
	}
}

func TestEvaluationMetricsConsistency(t *testing.T) {
	ds := testData(t, 50)
	model := trainedCNN(t, ds, 9)
	ev := Evaluate(model, ds, PGD{Eps: 0.5, Steps: 5, Bounds: DatasetBounds(ds)}, 16)
	if ev.N != 50 {
		t.Errorf("N = %d", ev.N)
	}
	if ev.RobustAccuracy > ev.CleanAccuracy+1e-9 {
		t.Errorf("robust accuracy %v exceeds clean %v under attack", ev.RobustAccuracy, ev.CleanAccuracy)
	}
	if ev.SuccessRate < 0 || ev.SuccessRate > 1 {
		t.Errorf("success rate %v out of [0,1]", ev.SuccessRate)
	}
	if ev.MeanLinf > 0.5+1e-9 {
		t.Errorf("mean L∞ %v exceeds ε", ev.MeanLinf)
	}
	if !strings.Contains(ev.String(), "pgd") {
		t.Error("String() lacks attack name")
	}
}

func TestCurveMonotoneAnchorsAtClean(t *testing.T) {
	ds := testData(t, 50)
	model := trainedCNN(t, ds, 10)
	bounds := DatasetBounds(ds)
	eps := []float64{0, 0.5, 2}
	curve := Curve(model, ds, eps, func(e float64) Attack {
		return PGD{Eps: e, Steps: 5, Bounds: bounds}
	}, 16)
	if len(curve) != 3 {
		t.Fatalf("curve has %d points", len(curve))
	}
	clean := Evaluate(model, ds, Identity{}, 16).CleanAccuracy
	if math.Abs(curve[0].RobustAccuracy-clean) > 1e-9 {
		t.Errorf("ε=0 point %v should equal clean accuracy %v", curve[0].RobustAccuracy, clean)
	}
	// PGD at large ε must be no better than at small ε (allowing a tiny
	// tolerance for attack stochasticity).
	if curve[2].RobustAccuracy > curve[1].RobustAccuracy+0.1 {
		t.Errorf("robustness increased with ε: %v", curve)
	}
}

func TestFGSMZeroEpsilonIsIdentityModuloClip(t *testing.T) {
	ds := testData(t, 20)
	model := trainedCNN(t, ds, 11)
	b := ds.Batches(8)[0]
	adv := FGSM{Eps: 0, Bounds: DatasetBounds(ds)}.Perturb(model, b.X, b.Y)
	if !adv.AllClose(b.X, 1e-12) {
		t.Error("ε=0 FGSM changed the input")
	}
}
