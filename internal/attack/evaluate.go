package attack

import (
	"fmt"

	"snnsec/internal/autodiff"
	"snnsec/internal/compute"
	"snnsec/internal/dataset"
	"snnsec/internal/nn"
	"snnsec/internal/tensor"
)

// Evaluation summarises one attack run against one model, mirroring
// Algorithm 1 of the paper: Robustness(ε) = 1 − Adv/|D| where Adv counts
// samples the adversary successfully flips.
type Evaluation struct {
	AttackName string
	// CleanAccuracy is the accuracy on the unperturbed inputs.
	CleanAccuracy float64
	// RobustAccuracy is the accuracy on the adversarial inputs — the
	// paper's robustness metric.
	RobustAccuracy float64
	// SuccessRate is the fraction of *correctly classified* samples the
	// attack flipped (attack success as attackers count it).
	SuccessRate float64
	// MeanLinf is the average L∞ distortion actually used.
	MeanLinf float64
	// N is the number of evaluated samples.
	N int
}

// String renders a one-line summary.
func (e Evaluation) String() string {
	return fmt.Sprintf("%s: clean %.3f, robust %.3f, success %.3f, mean L∞ %.3f (n=%d)",
		e.AttackName, e.CleanAccuracy, e.RobustAccuracy, e.SuccessRate, e.MeanLinf, e.N)
}

// Evaluate runs the attack over the dataset in batches and scores it on
// the default backend.
func Evaluate(model nn.Classifier, ds *dataset.Dataset, atk Attack, batchSize int) Evaluation {
	return EvaluateOn(nil, model, ds, atk, batchSize)
}

// EvaluateOn is Evaluate with the clean and adversarial forward passes on
// an explicit compute backend (nil selects the default). The attack's own
// gradient computations use the backend it was configured with.
func EvaluateOn(be compute.Backend, model nn.Classifier, ds *dataset.Dataset, atk Attack, batchSize int) Evaluation {
	ev := Evaluation{AttackName: atk.Name()}
	cleanCorrect, robustCorrect, flipped, attackable := 0, 0, 0, 0
	var linfSum float64
	for _, b := range ds.Batches(batchSize) {
		cleanPred := predict(be, model, b.X)
		adv := atk.Perturb(model, b.X, b.Y)
		advPred := predict(be, model, adv)
		linfSum += batchLinf(b.X, adv) * float64(len(b.Y))
		for i, y := range b.Y {
			cleanOK := cleanPred[i] == y
			advOK := advPred[i] == y
			if cleanOK {
				cleanCorrect++
				attackable++
				if !advOK {
					flipped++
				}
			}
			if advOK {
				robustCorrect++
			}
			ev.N++
		}
	}
	ev.CleanAccuracy = float64(cleanCorrect) / float64(ev.N)
	ev.RobustAccuracy = float64(robustCorrect) / float64(ev.N)
	if attackable > 0 {
		ev.SuccessRate = float64(flipped) / float64(attackable)
	}
	ev.MeanLinf = linfSum / float64(ev.N)
	return ev
}

// CurvePoint is one (ε, robust accuracy) sample of a robustness curve.
type CurvePoint struct {
	Eps            float64
	RobustAccuracy float64
}

// Curve evaluates robust accuracy across a sweep of ε budgets, using
// mkAttack to build the attack for each budget (ε=0 short-circuits to the
// clean accuracy). This regenerates the accuracy-vs-ε plots of the
// paper's Figures 1 and 9.
func Curve(model nn.Classifier, ds *dataset.Dataset, epsilons []float64, mkAttack func(eps float64) Attack, batchSize int) []CurvePoint {
	return CurveOn(nil, model, ds, epsilons, mkAttack, batchSize)
}

// CurveOn is Curve on an explicit compute backend (nil selects the
// default).
func CurveOn(be compute.Backend, model nn.Classifier, ds *dataset.Dataset, epsilons []float64, mkAttack func(eps float64) Attack, batchSize int) []CurvePoint {
	out := make([]CurvePoint, 0, len(epsilons))
	for _, eps := range epsilons {
		var atk Attack
		if eps == 0 {
			atk = Identity{}
		} else {
			atk = mkAttack(eps)
		}
		ev := EvaluateOn(be, model, ds, atk, batchSize)
		out = append(out, CurvePoint{Eps: eps, RobustAccuracy: ev.RobustAccuracy})
	}
	return out
}

func predict(be compute.Backend, model nn.Classifier, x *tensor.Tensor) []int {
	tp := autodiff.NewTapeOn(be)
	return tensor.ArgmaxRowsOn(tp.Backend(), model.Logits(tp, tp.Const(x)).Data)
}

func batchLinf(a, b *tensor.Tensor) float64 {
	return tensor.NormInf(tensor.Sub(a, b))
}
