package attack

import (
	"fmt"
	"math"
	"math/rand/v2"

	"snnsec/internal/autodiff"
	"snnsec/internal/compute"
	"snnsec/internal/nn"
	"snnsec/internal/tensor"
)

// BIM is the basic iterative method (Kurakin et al.): iterated FGSM
// without a random start. It is exactly PGD with RandomStart disabled,
// provided as a named constructor because the two are reported separately
// in the adversarial-ML literature.
func BIM(eps float64, steps int, bounds Bounds) PGD {
	return PGD{Eps: eps, Steps: steps, RandomStart: false, Bounds: bounds}
}

// TargetedPGD drives inputs toward a chosen target class rather than
// merely away from the true one — the bank-check scenario of the paper's
// introduction, where the attacker wants a *specific* wrong digit.
type TargetedPGD struct {
	Eps    float64
	Alpha  float64
	Steps  int
	Target int
	Rand   *rand.Rand
	Bounds Bounds
	// Backend selects the compute backend for the per-step gradient
	// computations; nil uses the default.
	Backend compute.Backend
}

// Name returns "targeted_pgd(ε,target)".
func (a TargetedPGD) Name() string {
	return fmt.Sprintf("targeted_pgd(eps=%g,target=%d)", a.Eps, a.Target)
}

// Perturb performs gradient *descent* on the cross-entropy toward the
// target label within the ε-ball.
func (a TargetedPGD) Perturb(model nn.Classifier, x *tensor.Tensor, y []int) *tensor.Tensor {
	steps := a.Steps
	if steps <= 0 {
		steps = 10
	}
	alpha := a.Alpha
	if alpha <= 0 {
		alpha = 2.5 * a.Eps / float64(steps)
	}
	targets := make([]int, x.Dim(0))
	for i := range targets {
		targets[i] = a.Target
	}
	adv := x.Clone()
	if a.Rand != nil {
		tensor.AddIntoOn(a.Backend, adv, tensor.RandU(a.Rand, -a.Eps, a.Eps, x.Shape()...))
		projectLinf(adv, x, a.Eps, a.Bounds)
	}
	for i := 0; i < steps; i++ {
		g := InputGradientOn(a.Backend, model, adv, targets)
		// Descend: reduce the loss w.r.t. the target class.
		tensor.Axpy(-alpha, tensor.SignOn(a.Backend, g), adv)
		projectLinf(adv, x, a.Eps, a.Bounds)
	}
	return adv
}

// Success counts how many adversarial examples are classified AS the
// target (targeted success is stricter than untargeted).
func (a TargetedPGD) Success(model nn.Classifier, adv *tensor.Tensor) int {
	tp := autodiff.NewTapeOn(a.Backend)
	preds := tensor.ArgmaxRowsOn(tp.Backend(), model.Logits(tp, tp.Const(adv)).Data)
	n := 0
	for _, p := range preds {
		if p == a.Target {
			n++
		}
	}
	return n
}

// L2PGD is projected gradient descent under an L2 ball: steps follow the
// normalised gradient and the perturbation is projected onto the sphere
// of radius Eps. Complements the paper's L∞ threat model.
type L2PGD struct {
	Eps    float64
	Alpha  float64
	Steps  int
	Rand   *rand.Rand
	Bounds Bounds
	// Backend selects the compute backend for the per-step gradient
	// computations; nil uses the default.
	Backend compute.Backend
}

// Name returns "l2pgd(ε,steps)".
func (a L2PGD) Name() string { return fmt.Sprintf("l2pgd(eps=%g,steps=%d)", a.Eps, a.steps()) }

func (a L2PGD) steps() int {
	if a.Steps <= 0 {
		return 10
	}
	return a.Steps
}

// Perturb runs the iterated L2 attack.
func (a L2PGD) Perturb(model nn.Classifier, x *tensor.Tensor, y []int) *tensor.Tensor {
	steps := a.steps()
	alpha := a.Alpha
	if alpha <= 0 {
		alpha = 2.5 * a.Eps / float64(steps)
	}
	adv := x.Clone()
	if a.Rand != nil {
		noise := tensor.RandN(a.Rand, 0, 1, x.Shape()...)
		n := tensor.Norm2(noise)
		if n > 0 {
			tensor.Axpy(a.Eps*a.Rand.Float64()/n, noise, adv)
		}
		a.project(adv, x)
	}
	for i := 0; i < steps; i++ {
		g := InputGradientOn(a.Backend, model, adv, y)
		n := tensor.Norm2(g)
		if n == 0 {
			break // fully masked gradient: no direction to follow
		}
		tensor.Axpy(alpha/n, g, adv)
		a.project(adv, x)
	}
	return adv
}

// project maps adv onto the intersection of the L2 ball around x and the
// pixel box. (Box clipping after sphere projection can re-enter the ball
// only, never leave it, since clipping moves points toward x's box which
// contains x.)
func (a L2PGD) project(adv, x *tensor.Tensor) {
	delta := tensor.Sub(adv, x)
	n := tensor.Norm2(delta)
	if n > a.Eps && n > 0 {
		tensor.ScaleInto(delta, a.Eps/n)
		adv.CopyFrom(tensor.Add(x, delta))
	}
	tensor.ClampInto(adv, a.Bounds.Lo, a.Bounds.Hi)
}

// projectLinf is the shared L∞-ball-plus-box projection.
func projectLinf(adv, x *tensor.Tensor, eps float64, b Bounds) {
	ad, xd := adv.Data(), x.Data()
	for i := range ad {
		lo := math.Max(xd[i]-eps, b.Lo)
		hi := math.Min(xd[i]+eps, b.Hi)
		if ad[i] < lo {
			ad[i] = lo
		} else if ad[i] > hi {
			ad[i] = hi
		}
	}
}
