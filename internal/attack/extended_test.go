package attack

import (
	"math"
	"strings"
	"testing"

	"snnsec/internal/autodiff"
	"snnsec/internal/nn"
	"snnsec/internal/tensor"
)

func TestBIMIsPGDWithoutRandomStart(t *testing.T) {
	b := BIM(0.3, 7, Bounds{Lo: 0, Hi: 1})
	if b.RandomStart {
		t.Error("BIM has a random start")
	}
	if b.Eps != 0.3 || b.Steps != 7 {
		t.Errorf("BIM fields: %+v", b)
	}
}

func TestBIMDeterministic(t *testing.T) {
	ds := testData(t, 20)
	model := trainedCNN(t, ds, 20)
	b := ds.Batches(8)[0]
	atk := BIM(0.3, 3, DatasetBounds(ds))
	a1 := atk.Perturb(model, b.X, b.Y)
	a2 := atk.Perturb(model, b.X, b.Y)
	if !a1.AllClose(a2, 0) {
		t.Error("BIM without random start is not deterministic")
	}
}

func TestTargetedPGDBudgetAndDirection(t *testing.T) {
	ds := testData(t, 40)
	model := trainedCNN(t, ds, 21)
	b := ds.Batches(16)[0]
	atk := TargetedPGD{Eps: 1.0, Steps: 8, Target: 3, Rand: tensor.NewRand(4, 4), Bounds: DatasetBounds(ds)}
	adv := atk.Perturb(model, b.X, b.Y)
	if d := tensor.NormInf(tensor.Sub(adv, b.X)); d > 1.0+1e-9 {
		t.Errorf("targeted PGD exceeded budget: %v", d)
	}
	// Perturbing toward class 3 must not reduce how often 3 is predicted.
	before := atk.Success(model, b.X)
	after := atk.Success(model, adv)
	if after < before {
		t.Errorf("targeted attack moved predictions away from target: %d -> %d", before, after)
	}
	if !strings.Contains(atk.Name(), "target=3") {
		t.Errorf("name: %s", atk.Name())
	}
}

func TestL2PGDRespectsSphere(t *testing.T) {
	ds := testData(t, 40)
	model := trainedCNN(t, ds, 22)
	b := ds.Batches(16)[0]
	eps := 2.0
	atk := L2PGD{Eps: eps, Steps: 6, Rand: tensor.NewRand(5, 5), Bounds: DatasetBounds(ds)}
	adv := atk.Perturb(model, b.X, b.Y)
	if d := tensor.Norm2(tensor.Sub(adv, b.X)); d > eps+1e-6 {
		t.Errorf("L2 distortion %v exceeds ε=%v", d, eps)
	}
	lo, hi := ds.Bounds()
	if tensor.Max(adv) > hi+1e-9 || tensor.Min(adv) < lo-1e-9 {
		t.Error("L2 PGD left pixel bounds")
	}
}

func TestL2PGDReducesAccuracy(t *testing.T) {
	ds := testData(t, 60)
	model := trainedCNN(t, ds, 23)
	ev := Evaluate(model, ds, L2PGD{Eps: 8, Steps: 8, Bounds: DatasetBounds(ds)}, 20)
	if ev.RobustAccuracy >= ev.CleanAccuracy {
		t.Errorf("L2 PGD had no effect: clean %v robust %v", ev.CleanAccuracy, ev.RobustAccuracy)
	}
	if !strings.Contains(ev.AttackName, "l2pgd") {
		t.Errorf("attack name %q", ev.AttackName)
	}
}

func TestL2PGDZeroGradientShortCircuits(t *testing.T) {
	// A constant-logit model has zero input gradient everywhere; the
	// attack must return promptly with the (possibly noised) input.
	ds := testData(t, 10)
	model := constantModel{}
	b := ds.Batches(4)[0]
	atk := L2PGD{Eps: 1, Steps: 5, Bounds: DatasetBounds(ds)}
	adv := atk.Perturb(model, b.X, b.Y)
	if !adv.AllClose(b.X, 0) {
		t.Error("zero-gradient L2 attack changed the input without signal")
	}
}

func TestProjectLinfKeepsBall(t *testing.T) {
	x := tensor.FromSlice([]float64{0.5, 0.5}, 2)
	adv := tensor.FromSlice([]float64{0.95, -0.2}, 2)
	projectLinf(adv, x, 0.1, Bounds{Lo: 0, Hi: 1})
	if math.Abs(adv.At(0)-0.6) > 1e-12 || math.Abs(adv.At(1)-0.4) > 1e-12 {
		t.Errorf("projected = %v", adv)
	}
}

// constantModel implements nn.Classifier with constant logits, so the
// input gradient is identically zero.
type constantModel struct{}

func (constantModel) Logits(tp *autodiff.Tape, x *autodiff.Value) *autodiff.Value {
	return tp.Const(tensor.New(x.Data.Dim(0), 10))
}

func (constantModel) Params() []*nn.Param { return nil }
