// Package autodiff implements tape-based reverse-mode automatic
// differentiation over the dense tensors of internal/tensor.
//
// A Tape records every operation in creation order. Because a computation
// graph is always built sequentially, the reverse of the creation order is
// a valid topological order, so Backward simply walks the tape backwards,
// calling each node's pullback to accumulate gradients into its parents.
//
// Three kinds of nodes exist:
//
//   - constants (Const): no gradient is tracked;
//   - leaves (Leaf / Var): inputs of the graph; their gradient buffer may
//     alias external storage so optimisers and attacks can read it;
//   - interior nodes: created by the operations in ops.go or by NewOp.
//
// The engine is deliberately single-threaded per tape; run independent
// tapes on separate goroutines for parallelism (internal/explore does
// this).
package autodiff

import (
	"fmt"

	"snnsec/internal/compute"
	"snnsec/internal/tensor"
)

// Tape records operations for reverse-mode differentiation. A tape is
// bound to a compute backend: every kernel recorded through it — forward
// and pullback — executes on that backend, which is how backend selection
// threads through nn, snn and train without touching their call sites.
type Tape struct {
	nodes []*Value
	be    compute.Backend
	// ownedBufs / ownedWords are pooled buffers backing forward
	// intermediates recorded on the tape (spike planes, membranes, their
	// packed bit forms). They are registered by the producing operations
	// via OwnBuffer/OwnWords and returned to the backend arena by
	// Release once the tape's values are dead.
	ownedBufs  [][]float64
	ownedWords [][]uint64
}

// Value is a node in the computation graph: a tensor plus the bookkeeping
// needed to backpropagate through the operation that produced it.
type Value struct {
	// Data holds the forward result. It must not be mutated after the
	// node has been consumed by another operation.
	Data *tensor.Tensor
	// Grad accumulates dLoss/dData during Backward. It is nil for
	// constants and lazily allocated for interior nodes. Interior-node
	// gradient buffers are drawn from the backend's buffer pool and
	// released as soon as Backward has run the node's pullback, so they
	// must not be read after Backward returns — read gradients through
	// leaves (Leaf/Var), whose buffers are caller-owned.
	Grad *tensor.Tensor

	requiresGrad bool
	back         func()
	tape         *Tape
	// spikes is the bit-packed form of a binary 0/1 Data plane (spike
	// activations); nil for ordinary dense values. Operations consuming
	// the value use it to select the multiply-free spike kernels.
	spikes *tensor.SpikeTensor
	// gradPooled marks a Grad whose backing buffer came from the
	// backend pool and is returned to it during Backward.
	gradPooled bool
}

// NewTape returns an empty tape bound to the default compute backend.
func NewTape() *Tape { return &Tape{} }

// NewTapeOn returns an empty tape bound to be; nil selects the default
// backend at execution time.
func NewTapeOn(be compute.Backend) *Tape { return &Tape{be: be} }

// Backend returns the backend the tape's operations execute on.
func (tp *Tape) Backend() compute.Backend {
	if tp.be == nil {
		return compute.Default()
	}
	return tp.be
}

// Len returns the number of recorded nodes (useful for memory accounting
// in benchmarks).
func (tp *Tape) Len() int { return len(tp.nodes) }

// Reset discards all recorded nodes so the tape can be reused for the next
// forward pass without reallocating the slice. Buffers registered with
// OwnBuffer/OwnWords stay owned by their values; use Release to return
// them to the backend arena as well.
func (tp *Tape) Reset() { tp.nodes = tp.nodes[:0] }

// OwnBuffer registers a pooled float64 buffer (obtained from the tape's
// backend) that backs forward data recorded on the tape. Release returns
// it to the backend pool. A buffer must be registered at most once, and
// must not be sub-sliced into separately-registered pieces.
func (tp *Tape) OwnBuffer(buf []float64) { tp.ownedBufs = append(tp.ownedBufs, buf) }

// OwnWords registers a pooled []uint64 buffer (a packed spike plane
// obtained from compute.GetUint64) for return to the word arena on
// Release.
func (tp *Tape) OwnWords(buf []uint64) { tp.ownedWords = append(tp.ownedWords, buf) }

// Release is the tape's end-of-life hook: it returns every registered
// forward buffer — the spike and membrane planes a T-step unrolled
// network records once per layer per timestep — to the backend arena and
// resets the tape. After Release no Value recorded on the tape may be
// used: their Data may alias recycled pool memory. Call it after Backward
// (and after any forward output has been read), typically once per
// training batch, so long sweeps cycle through a working set of
// cache-warm buffers instead of holding T-step activations until the
// garbage collector runs.
func (tp *Tape) Release() {
	be := tp.Backend()
	for i, b := range tp.ownedBufs {
		be.Put(b)
		tp.ownedBufs[i] = nil
	}
	tp.ownedBufs = tp.ownedBufs[:0]
	for i, w := range tp.ownedWords {
		compute.PutUint64(w)
		tp.ownedWords[i] = nil
	}
	tp.ownedWords = tp.ownedWords[:0]
	tp.Reset()
}

// Const records t as a constant: no gradient flows into it.
func (tp *Tape) Const(t *tensor.Tensor) *Value {
	v := &Value{Data: t, tape: tp}
	tp.nodes = append(tp.nodes, v)
	return v
}

// Leaf records t as a differentiable leaf whose gradient accumulates into
// the provided buffer. grad must have t's shape; it is NOT zeroed here, so
// gradients accumulate across calls until the caller clears it (this is
// what lets an optimiser sum gradients over a batch of tapes).
func (tp *Tape) Leaf(t, grad *tensor.Tensor) *Value {
	if !t.SameShape(grad) {
		panic(fmt.Sprintf("autodiff: Leaf grad shape %v does not match data %v", grad.Shape(), t.Shape()))
	}
	v := &Value{Data: t, Grad: grad, requiresGrad: true, tape: tp}
	tp.nodes = append(tp.nodes, v)
	return v
}

// Var records t as a differentiable leaf with a freshly zeroed gradient
// buffer. Use it for inputs under attack.
func (tp *Tape) Var(t *tensor.Tensor) *Value {
	return tp.Leaf(t, tensor.New(t.Shape()...))
}

// RequiresGrad reports whether gradients flow into v.
func (v *Value) RequiresGrad() bool { return v.requiresGrad }

// Shape returns the shape of the node's data.
func (v *Value) Shape() []int { return v.Data.Shape() }

// Spikes returns the bit-packed form of a binary spike value, or nil
// for ordinary dense values.
func (v *Value) Spikes() *tensor.SpikeTensor { return v.spikes }

// AttachSpikes binds the packed spike-plane form of v's data, letting
// downstream MatMul/Conv2D calls take the multiply-free spike kernels.
// s must pack exactly the 0/1 contents of v.Data (the spike kernels are
// bit-identical to the dense ones only under that contract); producers
// that compute spikes — the LIF/ALIF threshold steps, the spike
// encoders — attach the packed plane they built alongside the dense
// view.
func (v *Value) AttachSpikes(s *tensor.SpikeTensor) {
	if s.Len() != v.Data.Len() || s.Dim(0) != v.Data.Dim(0) {
		panic(fmt.Sprintf("autodiff: AttachSpikes shape %v does not match data %v", s.Shape(), v.Data.Shape()))
	}
	v.spikes = s
}

// ensureGrad lazily allocates the gradient buffer. Interior nodes (those
// with a pullback) draw the buffer from the tape's backend pool — the
// per-step workspace of the BPTT loop — and Backward returns it to the
// pool right after the node's pullback has consumed it, so a T-step
// unrolled network recycles a handful of buffers instead of allocating
// one per recorded operation. Leaves keep their caller-owned buffers.
func (v *Value) ensureGrad() *tensor.Tensor {
	if v.Grad == nil {
		if v.back != nil {
			buf := v.tape.Backend().Get(v.Data.Len())
			clear(buf) // pooled buffers are dirty; gradients accumulate
			v.Grad = tensor.FromSlice(buf, v.Data.Shape()...)
			v.gradPooled = true
		} else {
			v.Grad = tensor.New(v.Data.Shape()...)
		}
	}
	return v.Grad
}

// AccumGrad adds g into v's gradient buffer (allocating it if needed).
// It is a no-op for nodes that do not require gradients, which is what
// makes mixing constants and variables free at the call sites.
func (v *Value) AccumGrad(g *tensor.Tensor) {
	if !v.requiresGrad {
		return
	}
	tensor.AddIntoOn(v.tape.Backend(), v.ensureGrad(), g)
}

// NewOp records a custom operation producing out from parents, with back
// as its pullback. back receives the output gradient and must call
// AccumGrad on each parent it differentiates into. The returned node
// requires gradients iff any parent does; when none does, back is dropped
// and the node degenerates to a constant.
func (tp *Tape) NewOp(out *tensor.Tensor, back func(gout *tensor.Tensor), parents ...*Value) *Value {
	req := false
	for _, p := range parents {
		if p == nil {
			continue
		}
		if p.tape != tp {
			panic("autodiff: operation mixes values from different tapes")
		}
		if p.requiresGrad {
			req = true
		}
	}
	v := &Value{Data: out, requiresGrad: req, tape: tp}
	if req {
		v.back = func() { back(v.Grad) }
	}
	tp.nodes = append(tp.nodes, v)
	return v
}

// Backward runs reverse-mode differentiation from root, which must be a
// one-element tensor (a scalar loss). Gradients accumulate into every
// reachable leaf's buffer.
func (tp *Tape) Backward(root *Value) {
	if root.tape != tp {
		panic("autodiff: Backward on value from a different tape")
	}
	if root.Data.Len() != 1 {
		panic(fmt.Sprintf("autodiff: Backward root must be scalar, has shape %v", root.Data.Shape()))
	}
	if !root.requiresGrad {
		return // nothing differentiable upstream
	}
	root.ensureGrad().Fill(1)
	tp.runBackward()
}

// runBackward walks the tape in reverse, running each pullback, and
// returns every pooled interior gradient buffer to the backend pool the
// moment its node's pullback has consumed it: parents always precede
// their children on the tape, so once node i's pullback has run, no
// later step reads its gradient. This is the workspace arena of the
// BPTT loop — peak gradient memory is the live frontier of the graph,
// not the whole unrolled tape, and the recycled buffers stay
// cache-warm across timesteps.
func (tp *Tape) runBackward() {
	be := tp.Backend()
	for i := len(tp.nodes) - 1; i >= 0; i-- {
		n := tp.nodes[i]
		if n.back != nil && n.Grad != nil {
			n.back()
		}
		if n.gradPooled {
			be.Put(n.Grad.Data())
			n.Grad = nil
			n.gradPooled = false
		}
	}
}

// BackwardWithSeed runs reverse-mode differentiation seeding root's
// gradient with seed instead of 1. root may have any shape; seed must
// match it. This computes vector-Jacobian products.
func (tp *Tape) BackwardWithSeed(root *Value, seed *tensor.Tensor) {
	if !root.Data.SameShape(seed) {
		panic(fmt.Sprintf("autodiff: seed shape %v does not match root %v", seed.Shape(), root.Data.Shape()))
	}
	if !root.requiresGrad {
		return
	}
	tensor.AddIntoOn(tp.Backend(), root.ensureGrad(), seed)
	tp.runBackward()
}
