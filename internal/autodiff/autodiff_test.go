package autodiff

import (
	"math"
	"testing"
	"testing/quick"

	"snnsec/internal/compute"
	"snnsec/internal/tensor"
)

func TestAddBackward(t *testing.T) {
	tp := NewTape()
	a := tp.Var(tensor.FromSlice([]float64{1, 2}, 2))
	b := tp.Var(tensor.FromSlice([]float64{3, 4}, 2))
	s := tp.Sum(tp.Add(a, b))
	tp.Backward(s)
	if !a.Grad.AllClose(tensor.Ones(2), 1e-12) || !b.Grad.AllClose(tensor.Ones(2), 1e-12) {
		t.Errorf("Add grads: a=%v b=%v", a.Grad, b.Grad)
	}
}

func TestSubBackward(t *testing.T) {
	tp := NewTape()
	a := tp.Var(tensor.FromSlice([]float64{1, 2}, 2))
	b := tp.Var(tensor.FromSlice([]float64{3, 4}, 2))
	s := tp.Sum(tp.Sub(a, b))
	tp.Backward(s)
	if !a.Grad.AllClose(tensor.Ones(2), 1e-12) {
		t.Errorf("a.Grad = %v", a.Grad)
	}
	if !b.Grad.AllClose(tensor.Full(-1, 2), 1e-12) {
		t.Errorf("b.Grad = %v", b.Grad)
	}
}

func TestMulBackward(t *testing.T) {
	tp := NewTape()
	a := tp.Var(tensor.FromSlice([]float64{2, 5}, 2))
	b := tp.Var(tensor.FromSlice([]float64{7, 11}, 2))
	s := tp.Sum(tp.Mul(a, b))
	tp.Backward(s)
	if !a.Grad.AllClose(b.Data, 1e-12) || !b.Grad.AllClose(a.Data, 1e-12) {
		t.Errorf("Mul grads: a=%v b=%v", a.Grad, b.Grad)
	}
}

func TestScaleAndAddScalarBackward(t *testing.T) {
	tp := NewTape()
	a := tp.Var(tensor.FromSlice([]float64{1, -1}, 2))
	s := tp.Sum(tp.AddScalar(tp.Scale(a, 3), 10))
	tp.Backward(s)
	if s.Data.Item() != 20+3-3 {
		t.Errorf("forward = %v", s.Data.Item())
	}
	if !a.Grad.AllClose(tensor.Full(3, 2), 1e-12) {
		t.Errorf("grad = %v", a.Grad)
	}
}

func TestMatMulBackwardNumerical(t *testing.T) {
	r := tensor.NewRand(1, 1)
	aT := tensor.RandN(r, 0, 1, 3, 4)
	bT := tensor.RandN(r, 0, 1, 4, 2)
	aG := tensor.New(3, 4)
	bG := tensor.New(4, 2)
	f := func() (*Tape, *Value) {
		tp := NewTape()
		a := tp.Leaf(aT, aG)
		b := tp.Leaf(bT, bG)
		return tp, tp.Sum(tp.MatMul(a, b))
	}
	if _, err := GradCheck(f, []*tensor.Tensor{aT, bT}, []*tensor.Tensor{aG, bG}, 1e-6, 1e-6, 1); err != nil {
		t.Error(err)
	}
}

func TestChainRuleThroughNonlinearities(t *testing.T) {
	// loss = mean(tanh(sigmoid(relu(x) * 2 + 1)))
	r := tensor.NewRand(2, 2)
	xT := tensor.RandN(r, 0, 1, 8)
	xG := tensor.New(8)
	f := func() (*Tape, *Value) {
		tp := NewTape()
		x := tp.Leaf(xT, xG)
		h := tp.AddScalar(tp.Scale(tp.ReLU(x), 2), 1)
		return tp, tp.Mean(tp.Tanh(tp.Sigmoid(h)))
	}
	if _, err := GradCheck(f, []*tensor.Tensor{xT}, []*tensor.Tensor{xG}, 1e-6, 1e-5, 1); err != nil {
		t.Error(err)
	}
}

func TestReLUGradAtKink(t *testing.T) {
	tp := NewTape()
	x := tp.Var(tensor.FromSlice([]float64{-1, 0, 1}, 3))
	s := tp.Sum(tp.ReLU(x))
	tp.Backward(s)
	want := tensor.FromSlice([]float64{0, 0, 1}, 3)
	if !x.Grad.AllClose(want, 1e-12) {
		t.Errorf("ReLU grad = %v, want %v", x.Grad, want)
	}
}

func TestReshapeBackward(t *testing.T) {
	tp := NewTape()
	x := tp.Var(tensor.FromSlice([]float64{1, 2, 3, 4}, 2, 2))
	y := tp.Reshape(x, 4)
	s := tp.Sum(tp.Mul(y, y))
	tp.Backward(s)
	want := tensor.FromSlice([]float64{2, 4, 6, 8}, 2, 2)
	if !x.Grad.AllClose(want, 1e-12) {
		t.Errorf("Reshape grad = %v, want %v", x.Grad, want)
	}
}

func TestConv2DBackwardViaTape(t *testing.T) {
	r := tensor.NewRand(3, 3)
	xT := tensor.RandN(r, 0, 1, 1, 2, 5, 5)
	wT := tensor.RandN(r, 0, 1, 2, 2, 3, 3)
	bT := tensor.RandN(r, 0, 1, 2)
	xG, wG, bG := tensor.New(xT.Shape()...), tensor.New(wT.Shape()...), tensor.New(bT.Shape()...)
	p := tensor.ConvParams{Stride: 1, Padding: 1}
	f := func() (*Tape, *Value) {
		tp := NewTape()
		x := tp.Leaf(xT, xG)
		w := tp.Leaf(wT, wG)
		b := tp.Leaf(bT, bG)
		return tp, tp.Mean(tp.Conv2D(x, w, b, p))
	}
	if _, err := GradCheck(f, []*tensor.Tensor{xT, wT, bT}, []*tensor.Tensor{xG, wG, bG}, 1e-6, 1e-5, 3); err != nil {
		t.Error(err)
	}
}

func TestPoolBackwardViaTape(t *testing.T) {
	r := tensor.NewRand(4, 4)
	xT := tensor.RandN(r, 0, 1, 1, 1, 4, 4)
	xG := tensor.New(xT.Shape()...)
	fAvg := func() (*Tape, *Value) {
		tp := NewTape()
		x := tp.Leaf(xT, xG)
		return tp, tp.Sum(tp.AvgPool2D(x, 2))
	}
	if _, err := GradCheck(fAvg, []*tensor.Tensor{xT}, []*tensor.Tensor{xG}, 1e-6, 1e-6, 1); err != nil {
		t.Errorf("avgpool: %v", err)
	}
	fMax := func() (*Tape, *Value) {
		tp := NewTape()
		x := tp.Leaf(xT, xG)
		return tp, tp.Sum(tp.MaxPool2D(x, 2))
	}
	if _, err := GradCheck(fMax, []*tensor.Tensor{xT}, []*tensor.Tensor{xG}, 1e-6, 1e-6, 1); err != nil {
		t.Errorf("maxpool: %v", err)
	}
}

func TestSoftmaxCrossEntropyForward(t *testing.T) {
	tp := NewTape()
	// Uniform logits: loss = ln(C).
	logits := tp.Var(tensor.New(2, 4))
	loss := tp.SoftmaxCrossEntropy(logits, []int{0, 3})
	if math.Abs(loss.Data.Item()-math.Log(4)) > 1e-9 {
		t.Errorf("uniform CE = %v, want ln4 = %v", loss.Data.Item(), math.Log(4))
	}
}

func TestSoftmaxCrossEntropyBackwardNumerical(t *testing.T) {
	r := tensor.NewRand(5, 5)
	lT := tensor.RandN(r, 0, 1, 3, 5)
	lG := tensor.New(3, 5)
	labels := []int{1, 4, 0}
	f := func() (*Tape, *Value) {
		tp := NewTape()
		l := tp.Leaf(lT, lG)
		return tp, tp.SoftmaxCrossEntropy(l, labels)
	}
	if _, err := GradCheck(f, []*tensor.Tensor{lT}, []*tensor.Tensor{lG}, 1e-6, 1e-6, 1); err != nil {
		t.Error(err)
	}
}

func TestSoftmaxCrossEntropyGradRowsSumToZero(t *testing.T) {
	// d(CE)/dlogits rows sum to zero: softmax sums to 1, one-hot sums to 1.
	f := func(seed uint64) bool {
		r := tensor.NewRand(seed, 6)
		tp := NewTape()
		l := tp.Var(tensor.RandN(r, 0, 2, 2, 6))
		loss := tp.SoftmaxCrossEntropy(l, []int{int(seed % 6), int((seed / 6) % 6)})
		tp.Backward(loss)
		for i := 0; i < 2; i++ {
			var s float64
			for j := 0; j < 6; j++ {
				s += l.Grad.At(i, j)
			}
			if math.Abs(s) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestBadLabelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range label did not panic")
		}
	}()
	tp := NewTape()
	tp.SoftmaxCrossEntropy(tp.Var(tensor.New(1, 3)), []int{3})
}

func TestConstNoGradient(t *testing.T) {
	tp := NewTape()
	c := tp.Const(tensor.FromSlice([]float64{1, 2}, 2))
	x := tp.Var(tensor.FromSlice([]float64{3, 4}, 2))
	s := tp.Sum(tp.Mul(c, x))
	tp.Backward(s)
	if c.Grad != nil {
		t.Error("constant accumulated a gradient")
	}
	if !x.Grad.AllClose(c.Data, 1e-12) {
		t.Errorf("x.Grad = %v", x.Grad)
	}
}

func TestAllConstantGraphBackwardIsNoop(t *testing.T) {
	tp := NewTape()
	a := tp.Const(tensor.Ones(2))
	b := tp.Const(tensor.Ones(2))
	s := tp.Sum(tp.Add(a, b))
	tp.Backward(s) // must not panic
	if s.RequiresGrad() {
		t.Error("all-constant result requires grad")
	}
}

func TestLeafGradAccumulatesAcrossTapes(t *testing.T) {
	w := tensor.FromSlice([]float64{2}, 1)
	g := tensor.New(1)
	for i := 0; i < 3; i++ {
		tp := NewTape()
		wv := tp.Leaf(w, g)
		tp.Backward(tp.Sum(tp.Mul(wv, wv)))
	}
	// d(w²)/dw = 2w = 4, accumulated 3 times.
	if math.Abs(g.At(0)-12) > 1e-12 {
		t.Errorf("accumulated grad = %v, want 12", g.At(0))
	}
}

func TestDiamondGraphAccumulation(t *testing.T) {
	// y = x*x + x*x: gradient must be 4x, exercising multi-path accumulation.
	tp := NewTape()
	x := tp.Var(tensor.FromSlice([]float64{3}, 1))
	a := tp.Mul(x, x)
	b := tp.Mul(x, x)
	s := tp.Sum(tp.Add(a, b))
	tp.Backward(s)
	if math.Abs(x.Grad.At(0)-12) > 1e-12 {
		t.Errorf("diamond grad = %v, want 12", x.Grad.At(0))
	}
}

func TestValueReusedTwice(t *testing.T) {
	// z = relu(x); loss = sum(z) + sum(z*z). dz flows along both paths.
	tp := NewTape()
	x := tp.Var(tensor.FromSlice([]float64{2}, 1))
	z := tp.ReLU(x)
	loss := tp.Add(tp.Sum(z), tp.Sum(tp.Mul(z, z)))
	tp.Backward(loss)
	if math.Abs(x.Grad.At(0)-5) > 1e-12 { // 1 + 2z = 5
		t.Errorf("grad = %v, want 5", x.Grad.At(0))
	}
}

func TestBackwardNonScalarPanics(t *testing.T) {
	tp := NewTape()
	x := tp.Var(tensor.New(2))
	defer func() {
		if recover() == nil {
			t.Fatal("Backward on vector did not panic")
		}
	}()
	tp.Backward(x)
}

func TestBackwardWithSeed(t *testing.T) {
	tp := NewTape()
	x := tp.Var(tensor.FromSlice([]float64{1, 2}, 2))
	y := tp.Mul(x, x) // dy/dx = 2x
	seed := tensor.FromSlice([]float64{1, 10}, 2)
	tp.BackwardWithSeed(y, seed)
	want := tensor.FromSlice([]float64{2, 40}, 2)
	if !x.Grad.AllClose(want, 1e-12) {
		t.Errorf("seeded grad = %v, want %v", x.Grad, want)
	}
}

func TestConcat0ForwardBackward(t *testing.T) {
	tp := NewTape()
	a := tp.Var(tensor.FromSlice([]float64{1, 2}, 1, 2))
	b := tp.Var(tensor.FromSlice([]float64{3, 4, 5, 6}, 2, 2))
	c := tp.Concat0(a, b)
	if !c.Data.ShapeEquals(3, 2) {
		t.Fatalf("concat shape = %v", c.Data.Shape())
	}
	s := tp.Sum(tp.Mul(c, c))
	tp.Backward(s)
	if !a.Grad.AllClose(tensor.FromSlice([]float64{2, 4}, 1, 2), 1e-12) {
		t.Errorf("a.Grad = %v", a.Grad)
	}
	if !b.Grad.AllClose(tensor.FromSlice([]float64{6, 8, 10, 12}, 2, 2), 1e-12) {
		t.Errorf("b.Grad = %v", b.Grad)
	}
}

func TestDetachBlocksGradient(t *testing.T) {
	tp := NewTape()
	x := tp.Var(tensor.FromSlice([]float64{2}, 1))
	y := tp.Detach(tp.Mul(x, x))
	s := tp.Sum(tp.Mul(y, y))
	tp.Backward(s)
	if x.Grad != nil && tensor.Sum(x.Grad) != 0 {
		t.Errorf("gradient leaked through Detach: %v", x.Grad)
	}
}

func TestMixedTapesPanics(t *testing.T) {
	tp1, tp2 := NewTape(), NewTape()
	a := tp1.Var(tensor.New(1))
	b := tp2.Var(tensor.New(1))
	defer func() {
		if recover() == nil {
			t.Fatal("mixing tapes did not panic")
		}
	}()
	tp1.Add(a, b)
}

func TestTapeReset(t *testing.T) {
	tp := NewTape()
	tp.Var(tensor.New(1))
	if tp.Len() != 1 {
		t.Fatalf("Len = %d", tp.Len())
	}
	tp.Reset()
	if tp.Len() != 0 {
		t.Fatalf("Len after Reset = %d", tp.Len())
	}
}

func TestNewOpCustomSquare(t *testing.T) {
	// A custom op implementing y = x² with pullback 2x·g must match Mul.
	tp := NewTape()
	x := tp.Var(tensor.FromSlice([]float64{3, -4}, 2))
	out := tensor.Mul(x.Data, x.Data)
	y := tp.NewOp(out, func(g *tensor.Tensor) {
		d := tensor.Mul(g, tensor.Scale(x.Data, 2))
		x.AccumGrad(d)
	}, x)
	tp.Backward(tp.Sum(y))
	want := tensor.FromSlice([]float64{6, -8}, 2)
	if !x.Grad.AllClose(want, 1e-12) {
		t.Errorf("custom op grad = %v, want %v", x.Grad, want)
	}
}

func TestLeafShapeMismatchPanics(t *testing.T) {
	tp := NewTape()
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched leaf grad did not panic")
		}
	}()
	tp.Leaf(tensor.New(2), tensor.New(3))
}

// TestInteriorGradBuffersReleased pins the backward workspace arena:
// interior-node gradient buffers are pooled and released once Backward
// has consumed them, while leaf gradients stay in their caller-owned
// buffers.
func TestInteriorGradBuffersReleased(t *testing.T) {
	tp := NewTape()
	x := tp.Var(tensor.FromSlice([]float64{1, 2}, 2))
	y := tp.Mul(x, x) // interior
	s := tp.Sum(y)    // interior root
	tp.Backward(s)
	if y.Grad != nil || s.Grad != nil {
		t.Error("interior gradients were retained after Backward")
	}
	if !x.Grad.AllClose(tensor.FromSlice([]float64{2, 4}, 2), 1e-12) {
		t.Errorf("leaf grad = %v, want 2x", x.Grad)
	}
}

// TestReleaseReturnsOwnedBuffers pins the tape's end-of-life hook:
// buffers registered with OwnBuffer/OwnWords go back to the backend
// arena on Release, the tape resets, and Release is idempotent.
func TestReleaseReturnsOwnedBuffers(t *testing.T) {
	tp := NewTape()
	be := tp.Backend()
	buf := be.Get(64)
	for i := range buf {
		buf[i] = float64(i)
	}
	tp.OwnBuffer(buf)
	tp.OwnWords(compute.GetUint64(8))
	x := tp.Var(tensor.FromSlice(buf, 64))
	y := tp.Sum(x)
	tp.Backward(y)
	if x.Grad.Data()[0] != 1 {
		t.Fatalf("grad before release = %v", x.Grad.Data()[0])
	}
	tp.Release()
	if tp.Len() != 0 {
		t.Errorf("tape holds %d nodes after Release", tp.Len())
	}
	tp.Release() // second release must not double-free
	// The tape is reusable after Release.
	x2 := tp.Var(tensor.FromSlice([]float64{2, 3}, 2))
	s2 := tp.Sum(x2)
	tp.Backward(s2)
	if s2.Data.Item() != 5 {
		t.Errorf("reused tape sum = %v, want 5", s2.Data.Item())
	}
}

// TestReleaseReuseIsBitIdentical: running the same forward/backward
// twice with a Release in between — so the second pass recycles the
// first pass's pooled buffers — must produce bit-identical results.
func TestReleaseReuseIsBitIdentical(t *testing.T) {
	run := func() (float64, *tensor.Tensor) {
		tp := NewTape()
		buf := tp.Backend().Get(16)
		for i := range buf {
			buf[i] = float64(i%5) - 2
		}
		tp.OwnBuffer(buf)
		x := tp.Var(tensor.FromSlice(buf, 4, 4))
		y := tp.Mul(x, x)
		s := tp.Sum(y)
		tp.Backward(s)
		g := x.Grad.Clone()
		out := s.Data.Item()
		tp.Release()
		return out, g
	}
	s1, g1 := run()
	s2, g2 := run()
	if s1 != s2 || !g1.AllClose(g2, 0) {
		t.Errorf("pooled reuse changed results: %v vs %v", s1, s2)
	}
}

// TestSpikeMatMulDispatch: a value carrying a packed spike plane must
// produce the same forward result and the same gradients as the dense
// path — the dispatch is a pure kernel substitution.
func TestSpikeMatMulDispatch(t *testing.T) {
	r := tensor.NewRand(41, 43)
	spikes := tensor.New(3, 5)
	for i := 0; i < spikes.Len(); i += 2 {
		spikes.Data()[i] = 1
	}
	w := tensor.RandN(r, 0, 1, 5, 4)
	seed := tensor.RandN(r, 0, 1, 3, 4)

	run := func(attach bool) (*tensor.Tensor, *tensor.Tensor, *tensor.Tensor) {
		tp := NewTape()
		a := tp.Var(spikes.Clone())
		if attach {
			a.AttachSpikes(tensor.PackSpikes(a.Data))
		}
		wv := tp.Var(w.Clone())
		out := tp.MatMul(a, wv)
		tp.BackwardWithSeed(out, seed)
		return out.Data, a.Grad, wv.Grad
	}
	denseOut, denseDA, denseDW := run(false)
	spikeOut, spikeDA, spikeDW := run(true)
	if !denseOut.AllClose(spikeOut, 0) {
		t.Error("spike MatMul forward differs from dense")
	}
	if !denseDA.AllClose(spikeDA, 0) || !denseDW.AllClose(spikeDW, 0) {
		t.Error("spike MatMul gradients differ from dense")
	}

	pol := compute.DefaultDispatchPolicy()
	pol.Mode = compute.DispatchDense
	compute.SetDispatchPolicy(pol)
	defer compute.SetDispatchPolicy(compute.DefaultDispatchPolicy())
	if compute.UseSparse(compute.KernelMatMul, 0) {
		t.Fatal("DispatchDense not observed")
	}
	offOut, offDA, offDW := run(true)
	if !denseOut.AllClose(offOut, 0) || !denseDA.AllClose(offDA, 0) || !denseDW.AllClose(offDW, 0) {
		t.Error("dense-forced dispatch changed results")
	}
}

// TestSpikePlaneSurvivesFlatten: Reshape keeping the batch dimension
// must carry the packed plane through, so a post-Flatten Linear still
// takes the spike kernels.
func TestSpikePlaneSurvivesFlatten(t *testing.T) {
	tp := NewTape()
	x := tensor.New(2, 3, 4)
	x.Data()[0], x.Data()[13] = 1, 1
	v := tp.Const(x)
	v.AttachSpikes(tensor.PackSpikes(x))
	flat := tp.Reshape(v, 2, 12)
	if flat.Spikes() == nil {
		t.Fatal("packed spike plane lost through batch-preserving reshape")
	}
	if !flat.Spikes().Dense().AllClose(x.Reshape(2, 12), 0) {
		t.Fatal("reshaped spike plane does not match the dense view")
	}
	// A reshape that changes the leading dimension must drop the plane.
	if tp.Reshape(v, 6, 4).Spikes() != nil {
		t.Fatal("packed spike plane survived a batch-changing reshape")
	}
}

// Property: gradient of sum(x) is all-ones for any shape.
func TestSumGradProperty(t *testing.T) {
	f := func(seed uint64) bool {
		n := 1 + int(seed%20)
		r := tensor.NewRand(seed, 9)
		tp := NewTape()
		x := tp.Var(tensor.RandN(r, 0, 1, n))
		tp.Backward(tp.Sum(x))
		return x.Grad.AllClose(tensor.Ones(n), 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: linearity of the gradient — grad of sum(a·x) is a for random a.
func TestLinearityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRand(seed, 10)
		n := 1 + int(seed%10)
		aT := tensor.RandN(r, 0, 1, n)
		tp := NewTape()
		x := tp.Var(tensor.RandN(r, 0, 1, n))
		a := tp.Const(aT)
		tp.Backward(tp.Sum(tp.Mul(a, x)))
		return x.Grad.AllClose(aT, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
