package autodiff

import (
	"fmt"
	"math/rand/v2"
	"testing"

	"snnsec/internal/compute"
	"snnsec/internal/tensor"
)

// The density-adaptive dispatcher is a pure speed choice: whatever side
// it picks, the result must be bit-identical to BOTH hand-forced paths.
// These tests pin that at 0/10/50/100% spike density across the three
// dispatched op families (MatMul, Conv2D, the pooling pair).

func binaryAt(rng *rand.Rand, density float64, shape ...int) *tensor.Tensor {
	x := tensor.New(shape...)
	for i := range x.Data() {
		if rng.Float64() < density {
			x.Data()[i] = 1
		}
	}
	return x
}

func forcePolicy(t *testing.T, mode compute.DispatchMode) {
	t.Helper()
	pol := compute.DefaultDispatchPolicy()
	pol.Mode = mode
	compute.SetDispatchPolicy(pol)
}

type gradResult struct {
	out   *tensor.Tensor
	grads []*tensor.Tensor
}

func assertSameResult(t *testing.T, name string, want, got gradResult) {
	t.Helper()
	if !want.out.AllClose(got.out, 0) {
		t.Errorf("%s: forward differs", name)
	}
	for i := range want.grads {
		if !want.grads[i].AllClose(got.grads[i], 0) {
			t.Errorf("%s: gradient %d differs", name, i)
		}
	}
}

// runModes evaluates f under adaptive, forced-sparse and forced-dense
// dispatch and checks the three results are bit-identical. The packed
// plane is attached in every mode (DispatchDense must ignore it at the
// consumer, not rely on the producer gate).
func runModes(t *testing.T, name string, f func() gradResult) {
	t.Helper()
	t.Cleanup(func() { compute.SetDispatchPolicy(compute.DefaultDispatchPolicy()) })
	forcePolicy(t, compute.DispatchAdaptive)
	adaptive := f()
	forcePolicy(t, compute.DispatchSparse)
	assertSameResult(t, name+" adaptive-vs-sparse", f(), adaptive)
	forcePolicy(t, compute.DispatchDense)
	assertSameResult(t, name+" adaptive-vs-dense", f(), adaptive)
}

var dispatchDensities = []float64{0, 0.1, 0.5, 1}

func TestDispatchedMatMulBitIdentical(t *testing.T) {
	r := tensor.NewRand(51, 53)
	w := tensor.RandN(r, 0, 1, 40, 7)
	seed := tensor.RandN(r, 0, 1, 9, 7)
	for di, density := range dispatchDensities {
		rng := rand.New(rand.NewPCG(uint64(60+di), 1))
		spikes := binaryAt(rng, density, 9, 40)
		runModes(t, fmt.Sprintf("MatMul d=%g", density), func() gradResult {
			tp := NewTape()
			a := tp.Var(spikes.Clone())
			a.AttachSpikes(tensor.PackSpikes(a.Data))
			wv := tp.Var(w.Clone())
			out := tp.MatMul(a, wv)
			tp.BackwardWithSeed(out, seed)
			return gradResult{out: out.Data, grads: []*tensor.Tensor{a.Grad, wv.Grad}}
		})
	}
}

func TestDispatchedConv2DBitIdentical(t *testing.T) {
	r := tensor.NewRand(55, 57)
	w := tensor.RandN(r, 0, 0.5, 4, 2, 3, 3)
	bias := tensor.RandN(r, 0, 0.5, 4)
	p := tensor.ConvParams{Stride: 1, Padding: 1}
	for di, density := range dispatchDensities {
		rng := rand.New(rand.NewPCG(uint64(70+di), 1))
		spikes := binaryAt(rng, density, 2, 2, 6, 6)
		runModes(t, fmt.Sprintf("Conv2D d=%g", density), func() gradResult {
			tp := NewTape()
			x := tp.Var(spikes.Clone())
			x.AttachSpikes(tensor.PackSpikes(x.Data))
			wv, bv := tp.Var(w.Clone()), tp.Var(bias.Clone())
			out := tp.Conv2D(x, wv, bv, p)
			tp.Backward(tp.Sum(out))
			return gradResult{out: out.Data, grads: []*tensor.Tensor{x.Grad, wv.Grad, bv.Grad}}
		})
	}
}

func TestDispatchedPoolingBitIdentical(t *testing.T) {
	for di, density := range dispatchDensities {
		rng := rand.New(rand.NewPCG(uint64(80+di), 1))
		spikes := binaryAt(rng, density, 2, 3, 8, 8)
		for _, pool := range []struct {
			name string
			op   func(tp *Tape, x *Value) *Value
		}{
			{"AvgPool2D", func(tp *Tape, x *Value) *Value { return tp.AvgPool2D(x, 2) }},
			{"MaxPool2D", func(tp *Tape, x *Value) *Value { return tp.MaxPool2D(x, 2) }},
		} {
			runModes(t, fmt.Sprintf("%s d=%g", pool.name, density), func() gradResult {
				tp := NewTape()
				x := tp.Var(spikes.Clone())
				x.AttachSpikes(tensor.PackSpikes(x.Data))
				out := pool.op(tp, x)
				tp.Backward(tp.Sum(out))
				return gradResult{out: out.Data, grads: []*tensor.Tensor{x.Grad}}
			})
		}
	}
}

// TestMaxPoolSpikeOutputStaysPacked pins the satellite behaviour that
// motivated the popcount pooling kernels: a packed plane flowing into a
// spike-dispatched max pool comes out still packed, so a pooled
// topology no longer forces the dense fallback on everything behind the
// pool.
func TestMaxPoolSpikeOutputStaysPacked(t *testing.T) {
	rng := rand.New(rand.NewPCG(90, 1))
	spikes := binaryAt(rng, 0.3, 2, 3, 8, 8)
	tp := NewTape()
	x := tp.Const(spikes)
	x.AttachSpikes(tensor.PackSpikes(spikes))
	out := tp.MaxPool2D(x, 2)
	if out.Spikes() == nil {
		t.Fatal("max pool dropped the packed spike plane")
	}
	if !out.Spikes().Dense().AllClose(out.Data, 0) {
		t.Fatal("repacked max pool plane does not match the dense output")
	}
	// Average pooling emits fractions, which cannot stay packed.
	if tp.AvgPool2D(x, 2).Spikes() != nil {
		t.Fatal("avg pool output claims to be binary")
	}
}
