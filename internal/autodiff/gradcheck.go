package autodiff

import (
	"fmt"
	"math"

	"snnsec/internal/tensor"
)

// GradCheck compares the analytic gradient of a scalar-valued function
// with central finite differences. f must rebuild the graph from the
// tensors it closes over on every call and return the scalar loss; params
// are the tensors perturbed in place. It returns the maximum relative
// error observed, or an error describing the worst offender when it
// exceeds tol.
//
// stride subsamples the parameter elements (1 = check all) so large
// tensors stay affordable in tests.
func GradCheck(f func() (*Tape, *Value), params []*tensor.Tensor, grads []*tensor.Tensor, eps, tol float64, stride int) (float64, error) {
	if len(params) != len(grads) {
		return 0, fmt.Errorf("autodiff: gradcheck %d params but %d grads", len(params), len(grads))
	}
	if stride < 1 {
		stride = 1
	}
	// Analytic pass.
	for _, g := range grads {
		g.Zero()
	}
	tp, loss := f()
	tp.Backward(loss)

	analytic := make([]*tensor.Tensor, len(grads))
	for i, g := range grads {
		analytic[i] = g.Clone()
	}

	eval := func() float64 {
		_, l := f()
		return l.Data.Item()
	}

	worst := 0.0
	var worstErr error
	for pi, p := range params {
		for i := 0; i < p.Len(); i += stride {
			old := p.Data()[i]
			p.Data()[i] = old + eps
			lp := eval()
			p.Data()[i] = old - eps
			lm := eval()
			p.Data()[i] = old
			num := (lp - lm) / (2 * eps)
			ana := analytic[pi].Data()[i]
			rel := math.Abs(num-ana) / math.Max(1, math.Max(math.Abs(num), math.Abs(ana)))
			if rel > worst {
				worst = rel
				if rel > tol {
					worstErr = fmt.Errorf("autodiff: gradcheck param %d elem %d: numerical %g vs analytic %g (rel %g)", pi, i, num, ana, rel)
				}
			}
		}
	}
	return worst, worstErr
}
