package autodiff

import (
	"fmt"
	"math"

	"snnsec/internal/compute"
	"snnsec/internal/tensor"
)

// spikeFor makes the per-call sparse-vs-dense choice for an operation
// whose input may carry a packed spike plane: it returns the plane when
// the compute dispatch policy selects the spike kernel for the plane's
// density (read from the popcount index — O(rows), already cached), and
// nil when the dense kernel should run. Recorded pullbacks keep the
// dispatch their forward op chose, so one op's forward and backward
// always agree. The spike kernels are bit-identical to the dense ones,
// so the choice is pure speed — it never changes a result.
func spikeFor(sp *tensor.SpikeTensor, f compute.KernelFamily) *tensor.SpikeTensor {
	if sp == nil || !compute.UseSparse(f, sp.Density()) {
		return nil
	}
	return sp
}

// Add returns a + b elementwise.
func (tp *Tape) Add(a, b *Value) *Value {
	out := tensor.AddOn(tp.Backend(), a.Data, b.Data)
	return tp.NewOp(out, func(g *tensor.Tensor) {
		a.AccumGrad(g)
		b.AccumGrad(g)
	}, a, b)
}

// Sub returns a - b elementwise.
func (tp *Tape) Sub(a, b *Value) *Value {
	out := tensor.SubOn(tp.Backend(), a.Data, b.Data)
	return tp.NewOp(out, func(g *tensor.Tensor) {
		a.AccumGrad(g)
		b.AccumGrad(tensor.NegOn(tp.Backend(), g))
	}, a, b)
}

// Mul returns the elementwise product a * b.
func (tp *Tape) Mul(a, b *Value) *Value {
	out := tensor.MulOn(tp.Backend(), a.Data, b.Data)
	return tp.NewOp(out, func(g *tensor.Tensor) {
		a.AccumGrad(tensor.MulOn(tp.Backend(), g, b.Data))
		b.AccumGrad(tensor.MulOn(tp.Backend(), g, a.Data))
	}, a, b)
}

// Scale returns a * s for scalar s.
func (tp *Tape) Scale(a *Value, s float64) *Value {
	out := tensor.ScaleOn(tp.Backend(), a.Data, s)
	return tp.NewOp(out, func(g *tensor.Tensor) {
		a.AccumGrad(tensor.ScaleOn(tp.Backend(), g, s))
	}, a)
}

// AddScalar returns a + s elementwise for scalar s.
func (tp *Tape) AddScalar(a *Value, s float64) *Value {
	out := tensor.AddScalarOn(tp.Backend(), a.Data, s)
	return tp.NewOp(out, func(g *tensor.Tensor) {
		a.AccumGrad(g)
	}, a)
}

// MatMul returns the matrix product a·b of 2-D values. When a carries a
// packed spike plane (a binary LIF/encoder output) and the plane's
// density is below the dispatch policy's crossover, both the product
// and the weight-gradient pullback run the multiply-free
// select-accumulate kernels — bit-identical to the dense kernels, so
// the choice never changes a result.
func (tp *Tape) MatMul(a, b *Value) *Value {
	sp := spikeFor(a.spikes, compute.KernelMatMul)
	var out *tensor.Tensor
	if sp != nil {
		out = tensor.SpikeMatMulOn(tp.Backend(), sp, b.Data)
	} else {
		out = tensor.MatMulOn(tp.Backend(), a.Data, b.Data)
	}
	return tp.NewOp(out, func(g *tensor.Tensor) {
		// dA = g·Bᵀ, dB = Aᵀ·g
		a.AccumGrad(tensor.MatMulABTOn(tp.Backend(), g, b.Data))
		if sp != nil {
			b.AccumGrad(tensor.SpikeMatMulATBOn(tp.Backend(), sp, g))
		} else {
			b.AccumGrad(tensor.MatMulATBOn(tp.Backend(), a.Data, g))
		}
	}, a, b)
}

// AddRowVector returns the 2-D value a with 1-D bias v added to each row.
func (tp *Tape) AddRowVector(a, v *Value) *Value {
	out := tensor.AddRowVectorOn(tp.Backend(), a.Data, v.Data)
	return tp.NewOp(out, func(g *tensor.Tensor) {
		a.AccumGrad(g)
		v.AccumGrad(tensor.SumRowsOn(tp.Backend(), g))
	}, a, v)
}

// Reshape returns a view of a with a new shape. The gradient is reshaped
// back on the way down. A packed spike plane survives any reshape that
// preserves the leading (batch) dimension — e.g. Flatten — so the BPTT
// loop stays in packed form across layer-shape changes.
func (tp *Tape) Reshape(a *Value, shape ...int) *Value {
	out := a.Data.Reshape(shape...)
	inShape := a.Data.Shape()
	v := tp.NewOp(out, func(g *tensor.Tensor) {
		a.AccumGrad(g.Reshape(inShape...))
	}, a)
	if a.spikes != nil && out.Dim(0) == a.Data.Dim(0) {
		v.spikes = a.spikes.Reshape(out.Shape()...)
	}
	return v
}

// ReLU returns max(a, 0) elementwise.
func (tp *Tape) ReLU(a *Value) *Value {
	out := tensor.ReLUOn(tp.Backend(), a.Data)
	return tp.NewOp(out, func(g *tensor.Tensor) {
		da := tensor.New(g.Shape()...)
		ad, gd, dd := a.Data.Data(), g.Data(), da.Data()
		tp.Backend().ParallelFor(len(dd), 4096, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				if ad[i] > 0 {
					dd[i] = gd[i]
				}
			}
		})
		a.AccumGrad(da)
	}, a)
}

// Sigmoid returns the logistic function of a elementwise.
func (tp *Tape) Sigmoid(a *Value) *Value {
	out := tensor.SigmoidOn(tp.Backend(), a.Data)
	return tp.NewOp(out, func(g *tensor.Tensor) {
		da := tensor.New(g.Shape()...)
		od, gd, dd := out.Data(), g.Data(), da.Data()
		tp.Backend().ParallelFor(len(dd), 4096, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				dd[i] = gd[i] * od[i] * (1 - od[i])
			}
		})
		a.AccumGrad(da)
	}, a)
}

// Tanh returns tanh(a) elementwise.
func (tp *Tape) Tanh(a *Value) *Value {
	out := tensor.TanhOn(tp.Backend(), a.Data)
	return tp.NewOp(out, func(g *tensor.Tensor) {
		da := tensor.New(g.Shape()...)
		od, gd, dd := out.Data(), g.Data(), da.Data()
		tp.Backend().ParallelFor(len(dd), 4096, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				dd[i] = gd[i] * (1 - od[i]*od[i])
			}
		})
		a.AccumGrad(da)
	}, a)
}

// Conv2D returns the batched 2-D convolution of x [N,C,H,W] with weight
// [F,C,KH,KW] and optional bias [F] (pass nil for no bias). Forward and
// pullback both run the batched im2col pipeline: one matmul over the
// whole batch per product, on the tape's backend. When x carries a
// packed spike plane whose density is below the dispatch policy's
// crossover, the forward pass and the weight-gradient pullback run the
// spike-aware pipeline (packed im2col + select-accumulate) instead,
// never materialising a dense column matrix; results are bit-identical
// either way.
func (tp *Tape) Conv2D(x, weight, bias *Value, p tensor.ConvParams) *Value {
	var bt *tensor.Tensor
	if bias != nil {
		bt = bias.Data
	}
	sp := spikeFor(x.spikes, compute.KernelConv)
	var out *tensor.Tensor
	var col *tensor.SpikeTensor
	if sp != nil {
		// The packed column matrix is 1/64 the dense one, so retaining
		// it from the forward pass for the weight-gradient pullback is
		// cheap where retaining the dense expansion would not be.
		col = tensor.SpikeIm2ColOn(tp.Backend(), sp, weight.Data.Dim(2), weight.Data.Dim(3), p)
		out = tensor.SpikeConv2DWithColOn(tp.Backend(), sp, col, weight.Data, bt, p)
	} else {
		out = tensor.Conv2DOn(tp.Backend(), x.Data, weight.Data, bt, p)
	}
	parents := []*Value{x, weight}
	if bias != nil {
		parents = append(parents, bias)
	}
	return tp.NewOp(out, func(g *tensor.Tensor) {
		var dx, dw, db *tensor.Tensor
		if sp != nil {
			dx, dw, db = tensor.SpikeConv2DBackwardWithColOn(tp.Backend(), sp, col, weight.Data, g, p, bias != nil)
		} else {
			dx, dw, db = tensor.Conv2DBackwardOn(tp.Backend(), x.Data, weight.Data, g, p, bias != nil)
		}
		x.AccumGrad(dx)
		weight.AccumGrad(dw)
		if bias != nil {
			bias.AccumGrad(db)
		}
	}, parents...)
}

// AvgPool2D returns k×k average pooling of x [N,C,H,W]. A packed spike
// input pools by window popcount — bit-identical to the dense window
// sum, since a window of 0/1 values sums to an exact small integer.
// The pooled averages are no longer binary, so the output carries no
// packed plane either way.
func (tp *Tape) AvgPool2D(x *Value, k int) *Value {
	h, w := x.Data.Dim(2), x.Data.Dim(3)
	var out *tensor.Tensor
	if sp := spikeFor(x.spikes, compute.KernelPool); sp != nil && k <= 64 {
		out = tensor.SpikeAvgPool2DOn(tp.Backend(), sp, k)
	} else {
		out = tensor.AvgPool2DOn(tp.Backend(), x.Data, k)
	}
	return tp.NewOp(out, func(g *tensor.Tensor) {
		x.AccumGrad(tensor.AvgPool2DBackwardOn(tp.Backend(), g, k, h, w))
	}, x)
}

// MaxPool2D returns k×k max pooling of x [N,C,H,W]. A packed spike
// input pools on the bit plane (any-bit-set per window, first-set-bit
// argmax — bit-identical values and argmaxes to the dense kernel), and
// since the max of a binary window is binary, the pooled output carries
// the packed plane onward: a synapse behind a max pool stays on the
// spike kernels instead of falling back dense.
func (tp *Tape) MaxPool2D(x *Value, k int) *Value {
	h, w := x.Data.Dim(2), x.Data.Dim(3)
	if sp := spikeFor(x.spikes, compute.KernelPool); sp != nil && k <= 64 {
		out, arg, spOut := tensor.SpikeMaxPool2DOn(tp.Backend(), sp, k)
		v := tp.NewOp(out, func(g *tensor.Tensor) {
			x.AccumGrad(tensor.MaxPool2DBackwardOn(tp.Backend(), g, arg, k, h, w))
		}, x)
		v.AttachSpikes(spOut)
		return v
	}
	out, arg := tensor.MaxPool2DOn(tp.Backend(), x.Data, k)
	return tp.NewOp(out, func(g *tensor.Tensor) {
		x.AccumGrad(tensor.MaxPool2DBackwardOn(tp.Backend(), g, arg, k, h, w))
	}, x)
}

// Sum returns the scalar sum of all elements of a.
func (tp *Tape) Sum(a *Value) *Value {
	out := tensor.Scalar(tensor.Sum(a.Data))
	return tp.NewOp(out, func(g *tensor.Tensor) {
		a.AccumGrad(tensor.Full(g.Item(), a.Data.Shape()...))
	}, a)
}

// Mean returns the scalar mean of all elements of a.
func (tp *Tape) Mean(a *Value) *Value {
	n := float64(a.Data.Len())
	out := tensor.Scalar(tensor.Sum(a.Data) / n)
	return tp.NewOp(out, func(g *tensor.Tensor) {
		a.AccumGrad(tensor.Full(g.Item()/n, a.Data.Shape()...))
	}, a)
}

// SoftmaxCrossEntropy returns the mean cross-entropy loss between logits
// [B,C] and integer class labels (len B). The pullback is the standard
// (softmax − onehot)/B.
func (tp *Tape) SoftmaxCrossEntropy(logits *Value, labels []int) *Value {
	if logits.Data.Dims() != 2 {
		panic(fmt.Sprintf("autodiff: SoftmaxCrossEntropy needs [B,C] logits, got %v", logits.Data.Shape()))
	}
	b, c := logits.Data.Dim(0), logits.Data.Dim(1)
	if len(labels) != b {
		panic(fmt.Sprintf("autodiff: %d labels for batch of %d", len(labels), b))
	}
	probs := tensor.SoftmaxRowsOn(tp.Backend(), logits.Data)
	var loss float64
	for i, l := range labels {
		if l < 0 || l >= c {
			panic(fmt.Sprintf("autodiff: label %d out of range [0,%d)", l, c))
		}
		p := probs.At(i, l)
		loss -= math.Log(math.Max(p, 1e-300))
	}
	loss /= float64(b)
	out := tensor.Scalar(loss)
	return tp.NewOp(out, func(g *tensor.Tensor) {
		scale := g.Item() / float64(b)
		grad := probs.Clone()
		for i, l := range labels {
			grad.Set(grad.At(i, l)-1, i, l)
		}
		tensor.ScaleInto(grad, scale)
		logits.AccumGrad(grad)
	}, logits)
}

// Concat0 concatenates values along dimension 0. All inputs must share the
// trailing shape.
func (tp *Tape) Concat0(vs ...*Value) *Value {
	if len(vs) == 0 {
		panic("autodiff: Concat0 of nothing")
	}
	first := vs[0].Data.Shape()
	rows := 0
	for _, v := range vs {
		s := v.Data.Shape()
		if len(s) != len(first) {
			panic("autodiff: Concat0 rank mismatch")
		}
		for i := 1; i < len(s); i++ {
			if s[i] != first[i] {
				panic("autodiff: Concat0 trailing-shape mismatch")
			}
		}
		rows += s[0]
	}
	shape := append([]int{rows}, first[1:]...)
	out := tensor.New(shape...)
	off := 0
	for _, v := range vs {
		copy(out.Data()[off:], v.Data.Data())
		off += v.Data.Len()
	}
	return tp.NewOp(out, func(g *tensor.Tensor) {
		off := 0
		for _, v := range vs {
			n := v.Data.Len()
			part := tensor.FromSlice(append([]float64(nil), g.Data()[off:off+n]...), v.Data.Shape()...)
			v.AccumGrad(part)
			off += n
		}
	}, vs...)
}

// Detach returns a constant copy of a: the value flows forward but no
// gradient flows back through it. Used for truncated BPTT.
func (tp *Tape) Detach(a *Value) *Value {
	return tp.Const(a.Data.Clone())
}
