// Package compute provides the execution backend underneath the tensor
// kernels: data-parallel loop execution and pooled scratch buffers.
//
// A Backend is the unit of kernel-level parallelism. Two implementations
// exist: Serial runs every kernel inline on the calling goroutine, and
// Parallel partitions kernels into contiguous blocks executed on a shared,
// process-wide worker pool. Both draw scratch buffers (im2col matrices,
// gradient accumulators) from a size-bucketed sync.Pool so hot loops do
// not allocate per call.
//
// Determinism: backends only parallelise loops whose blocks write disjoint
// outputs and whose per-element accumulation order matches the serial
// kernel, so Serial and Parallel produce bit-identical results. This is
// asserted by the equivalence tests in internal/tensor.
//
// Composition: kernel-level parallelism composes with coarser parallelism
// (internal/explore runs one grid point per goroutine) without
// oversubscribing the machine. The hard bound is the shared worker pool:
// it holds exactly NumCPU workers, and a ParallelFor block whose
// submission finds no idle worker runs inline on the caller, so total
// kernel concurrency never exceeds NumCPU plus the calling goroutines.
// Backend width is the per-caller budgeting knob on top of that — budget
// widths so that coarse workers × backend width ≤ NumCPU. The width
// bound is advisory rather than exact under nesting (a kernel that calls
// ParallelFor from inside a parallel block can transiently draw more
// idle pool workers); fairness between callers comes from the shared
// pool, not from per-backend accounting.
package compute

import (
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
)

// Backend executes data-parallel kernels and pools scratch buffers.
type Backend interface {
	// Workers returns the maximum number of blocks a ParallelFor call may
	// execute concurrently (≥ 1). Callers use it to budget composition
	// with coarser-grained parallelism.
	Workers() int
	// ParallelFor partitions the index range [0, n) into at most
	// Workers() contiguous blocks and invokes fn(lo, hi) once per block,
	// possibly concurrently. grain is the minimum profitable block size:
	// for grain > 1, fewer than MinParallelGrains*grain iterations run
	// as a single inline block — below that much total work the
	// partition and hand-off overhead exceeds what fan-out recovers. A
	// grain ≤ 1 asserts that every single iteration is a dispatch-worthy
	// unit (e.g. one whole image of a conv batch) and bypasses the
	// inline threshold. The final block of a partition may still be
	// shorter than grain. fn must be safe to run concurrently on
	// disjoint ranges. ParallelFor returns only after every block has
	// completed.
	ParallelFor(n, grain int, fn func(lo, hi int))
	// Get returns a scratch buffer of length n from the pool. Its
	// contents are unspecified (recycled buffers are not zeroed); the
	// caller must fully initialize it before reading.
	Get(n int) []float64
	// Put returns a buffer obtained from Get to the pool. The caller must
	// not use the buffer afterwards.
	Put(buf []float64)
}

// ---------------------------------------------------------------------------
// Serial backend

// Serial executes every kernel inline on the calling goroutine. It is the
// reference implementation the Parallel backend is tested against, and the
// right choice when a coarser layer already saturates the machine.
type Serial struct{}

// NewSerial returns the serial backend.
func NewSerial() Serial { return Serial{} }

// Workers returns 1.
func (Serial) Workers() int { return 1 }

// ParallelFor runs fn(0, n) inline.
func (Serial) ParallelFor(n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	fn(0, n)
}

// Get returns a pooled buffer with unspecified contents.
func (Serial) Get(n int) []float64 { return getBuf(n) }

// Put recycles a buffer.
func (Serial) Put(buf []float64) { putBuf(buf) }

// ---------------------------------------------------------------------------
// Parallel backend

// Parallel partitions kernels into blocks executed on the shared worker
// pool. The zero value is not usable; construct with NewParallel.
type Parallel struct {
	width int
}

// NewParallel returns a backend that runs up to width blocks of each
// kernel concurrently. A width ≤ 0 selects runtime.NumCPU(). A width of 1
// behaves like Serial.
func NewParallel(width int) *Parallel {
	if width <= 0 {
		width = runtime.NumCPU()
	}
	return &Parallel{width: width}
}

// Workers returns the backend's block width.
func (p *Parallel) Workers() int { return p.width }

// MinParallelGrains is the inline work threshold of the Parallel
// backend: a kernel must carry at least this many grains of work before
// ParallelFor fans out. One grain is sized (by the caller) at roughly
// the smallest profitable block, so two grains of work split across two
// workers would save at most one grain of wall-clock — about the same
// as the submit/wait hand-off costs. Requiring MinParallelGrains grains
// keeps such sub-threshold kernels inline, where the partition overhead
// is zero. Callers passing grain ≤ 1 bypass the threshold (each
// iteration is declared dispatch-worthy on its own).
const MinParallelGrains = 4

// ParallelFor partitions [0, n) into at most width blocks of at least
// grain iterations, runs all but one on the shared worker pool and the
// last inline, and waits for completion. Kernels below the
// MinParallelGrains work threshold run inline without partitioning.
// When the pool has no idle worker a block runs inline on the caller,
// so nested or heavily concurrent use degrades to serial execution
// instead of deadlocking or oversubscribing.
func (p *Parallel) ParallelFor(n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain > 1 && n < MinParallelGrains*grain {
		fn(0, n)
		return
	}
	if grain < 1 {
		grain = 1
	}
	// Blocks of at least grain, at most width blocks, evenly sized.
	blocks := n / grain
	if blocks > p.width {
		blocks = p.width
	}
	if blocks <= 1 {
		fn(0, n)
		return
	}
	chunk := (n + blocks - 1) / blocks
	// Panics inside blocks are captured and re-raised on the caller after
	// every block has finished: letting one unwind a pool goroutine would
	// kill the process, and letting the caller's own block unwind early
	// would hand control back while other blocks still write the output.
	var wg sync.WaitGroup
	var panicOnce sync.Once
	var panicVal any
	run := func(lo, hi int) {
		defer func() {
			if r := recover(); r != nil {
				panicOnce.Do(func() { panicVal = r })
			}
		}()
		fn(lo, hi)
	}
	for lo := chunk; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		lo, hi := lo, hi
		wg.Add(1)
		task := func() {
			defer wg.Done()
			run(lo, hi)
		}
		if !submit(task) {
			task()
		}
	}
	run(0, chunk) // first block on the caller
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
}

// Get returns a pooled buffer with unspecified contents.
func (p *Parallel) Get(n int) []float64 { return getBuf(n) }

// Put recycles a buffer.
func (p *Parallel) Put(buf []float64) { putBuf(buf) }

// ---------------------------------------------------------------------------
// Shared worker pool

var (
	poolOnce sync.Once
	taskCh   chan func()
)

// submit hands task to an idle pool worker. It reports false — without
// running the task — when every worker is busy; the caller then runs the
// task inline. The channel is unbuffered on purpose: a send succeeds only
// if a worker is actively receiving, which is what makes nested
// ParallelFor calls deadlock-free (workers blocked in wg.Wait are not
// receiving, so their sub-blocks fall back to inline execution).
func submit(task func()) bool {
	poolOnce.Do(startPool)
	select {
	case taskCh <- task:
		return true
	default:
		return false
	}
}

// startPool launches the process-wide workers, one per CPU. The workers
// live for the life of the process; they are shared by every Parallel
// backend, which is what bounds total kernel-level concurrency to NumCPU
// regardless of how many backends exist.
func startPool() {
	taskCh = make(chan func())
	for i := 0; i < runtime.NumCPU(); i++ {
		go func() {
			for task := range taskCh {
				task()
			}
		}()
	}
}

// ---------------------------------------------------------------------------
// Default backend

var defaultBackend atomic.Pointer[Backend]

// Default returns the process-wide default backend: Parallel(NumCPU) on
// multi-core machines, Serial on single-core ones, unless overridden by
// SetDefault.
func Default() Backend {
	if p := defaultBackend.Load(); p != nil {
		return *p
	}
	return builtinDefault
}

// SetDefault overrides the process-wide default backend (nil restores the
// built-in choice). It is typically called once at start-up, e.g. by the
// CLI's -workers flag.
func SetDefault(be Backend) {
	if be == nil {
		defaultBackend.Store(nil)
		return
	}
	defaultBackend.Store(&be)
}

// New returns a backend of the given width: Serial for width 1, Parallel
// otherwise (width ≤ 0 selects NumCPU).
func New(width int) Backend {
	if width == 1 {
		return Serial{}
	}
	return NewParallel(width)
}

var builtinDefault = New(runtime.NumCPU())

// ---------------------------------------------------------------------------
// Buffer pool

// Buffers are pooled in power-of-two capacity buckets. Larger requests are
// allocated directly and dropped on Put, keeping worst-case retained
// memory bounded.
const maxBucket = 26 // 2^26 float64 = 512 MiB

var buckets [maxBucket + 1]sync.Pool

func bucketFor(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1)) // ceil(log2(n))
}

// getBuf returns a []float64 of length n with unspecified contents; the
// kernels that draw scratch buffers fully overwrite them, so zeroing here
// would be a wasted memory pass on every pooled hit.
func getBuf(n int) []float64 {
	if n <= 0 {
		return nil
	}
	b := bucketFor(n)
	if b > maxBucket {
		return make([]float64, n)
	}
	if v := buckets[b].Get(); v != nil {
		return (*v.(*[]float64))[:n]
	}
	return make([]float64, n, 1<<b)
}

// putBuf recycles a buffer for a later getBuf. Buffers larger than the
// top bucket are dropped, honouring the retained-memory bound.
func putBuf(s []float64) {
	c := cap(s)
	if c == 0 || c > 1<<maxBucket {
		return
	}
	b := bits.Len(uint(c)) - 1 // floor(log2(cap)): bucket whose size the cap covers
	s = s[:0]
	buckets[b].Put(&s) // pointer avoids boxing the slice header (SA6002)
}

// ---------------------------------------------------------------------------
// uint64 scratch pool
//
// Bit-packed spike planes need word scratch rather than float scratch
// (pack/unpack buffers, pooled spike-im2col matrices). The pool mirrors
// the float64 one: power-of-two capacity buckets, unspecified contents
// on Get, oversized buffers dropped on Put. These are package-level
// functions rather than Backend methods so the Backend interface stays
// frozen; like the float64 pool, the buckets are process-wide and safe
// for concurrent use.

var u64Buckets [maxBucket + 1]sync.Pool

// GetUint64 returns a []uint64 of length n with unspecified contents;
// the caller must fully initialize it before reading.
func GetUint64(n int) []uint64 {
	if n <= 0 {
		return nil
	}
	b := bucketFor(n)
	if b > maxBucket {
		return make([]uint64, n)
	}
	if v := u64Buckets[b].Get(); v != nil {
		return (*v.(*[]uint64))[:n]
	}
	return make([]uint64, n, 1<<b)
}

// PutUint64 recycles a buffer obtained from GetUint64. The caller must
// not use the buffer afterwards.
func PutUint64(s []uint64) {
	c := cap(s)
	if c == 0 || c > 1<<maxBucket {
		return
	}
	b := bits.Len(uint(c)) - 1
	s = s[:0]
	u64Buckets[b].Put(&s)
}
