package compute

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// coverage runs ParallelFor and asserts every index of [0, n) is visited
// exactly once, with monotone non-overlapping blocks.
func coverage(t *testing.T, be Backend, n, grain int) {
	t.Helper()
	var mu sync.Mutex
	seen := make([]int, n)
	be.ParallelFor(n, grain, func(lo, hi int) {
		if lo < 0 || hi > n || lo >= hi {
			t.Errorf("bad block [%d,%d) for n=%d", lo, hi, n)
		}
		mu.Lock()
		for i := lo; i < hi; i++ {
			seen[i]++
		}
		mu.Unlock()
	})
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("n=%d grain=%d: index %d visited %d times", n, grain, i, c)
		}
	}
}

func TestParallelForCoverage(t *testing.T) {
	backends := map[string]Backend{
		"serial":     Serial{},
		"parallel4":  NewParallel(4),
		"parallel16": NewParallel(16),
	}
	cases := []struct{ n, grain int }{
		{0, 1}, {1, 1}, {1, 100}, {2, 1}, {3, 2}, {7, 3}, {16, 4},
		{17, 4}, {100, 1}, {100, 7}, {1000, 999}, {1000, 1001}, {4097, 64},
	}
	for name, be := range backends {
		for _, c := range cases {
			coverage(t, be, c.n, c.grain)
		}
		if name == "" {
			t.Fatal("unreachable")
		}
	}
}

func TestParallelForSmallNRunsInline(t *testing.T) {
	// Fewer than 2*grain iterations must stay a single block.
	be := NewParallel(8)
	calls := 0
	be.ParallelFor(63, 32, func(lo, hi int) { calls++ })
	if calls != 1 {
		t.Fatalf("expected a single inline block, got %d", calls)
	}
}

func TestParallelForInlineThresholdCutover(t *testing.T) {
	// Pins the inline work threshold: one iteration below
	// MinParallelGrains*grain the kernel must run as a single inline
	// block; at the threshold it must fan out into multiple blocks.
	be := NewParallel(8)
	const grain = 32
	var calls atomic.Int64
	be.ParallelFor(MinParallelGrains*grain-1, grain, func(lo, hi int) { calls.Add(1) })
	if got := calls.Load(); got != 1 {
		t.Fatalf("below threshold: got %d blocks, want 1 inline block", got)
	}
	calls.Store(0)
	be.ParallelFor(MinParallelGrains*grain, grain, func(lo, hi int) { calls.Add(1) })
	if got := calls.Load(); got < 2 {
		t.Fatalf("at threshold: got %d blocks, want ≥ 2", got)
	}
}

func TestParallelForGrainOneBypassesThreshold(t *testing.T) {
	// grain ≤ 1 declares each iteration dispatch-worthy on its own
	// (e.g. whole conv images), so a 2-iteration kernel must still
	// split even though 2 < MinParallelGrains.
	be := NewParallel(8)
	var calls atomic.Int64
	be.ParallelFor(2, 1, func(lo, hi int) { calls.Add(1) })
	if got := calls.Load(); got != 2 {
		t.Fatalf("grain=1 n=2: got %d blocks, want 2", got)
	}
}

func TestParallelForNested(t *testing.T) {
	// Nested ParallelFor must complete (no deadlock) and cover all work.
	be := NewParallel(runtime.NumCPU() + 2)
	var total atomic.Int64
	be.ParallelFor(8, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			be.ParallelFor(100, 1, func(ilo, ihi int) {
				total.Add(int64(ihi - ilo))
			})
		}
	})
	if got := total.Load(); got != 800 {
		t.Fatalf("nested ParallelFor covered %d iterations, want 800", got)
	}
}

func TestParallelForConcurrentUse(t *testing.T) {
	// Many goroutines sharing one backend — the race detector checks the
	// pool, the counters check coverage.
	be := NewParallel(4)
	var wg sync.WaitGroup
	var total atomic.Int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 50; rep++ {
				buf := be.Get(257)
				be.ParallelFor(1000, 10, func(lo, hi int) {
					total.Add(int64(hi - lo))
				})
				be.Put(buf)
			}
		}()
	}
	wg.Wait()
	if got := total.Load(); got != 8*50*1000 {
		t.Fatalf("concurrent ParallelFor covered %d iterations, want %d", got, 8*50*1000)
	}
}

func TestParallelForPanicPropagates(t *testing.T) {
	// A panic in any block must surface on the caller — after all blocks
	// finished — rather than killing a pool goroutine or returning early.
	be := NewParallel(4)
	var finished atomic.Int64
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("expected ParallelFor to re-raise the block panic")
		} else if r != "boom" {
			t.Fatalf("unexpected panic value %v", r)
		}
		if finished.Load() == 0 {
			t.Fatal("no block ran to completion before the panic surfaced")
		}
	}()
	be.ParallelFor(1000, 10, func(lo, hi int) {
		if lo == 0 {
			panic("boom")
		}
		finished.Add(1)
	})
	t.Fatal("unreachable: ParallelFor should have panicked")
}

func TestPutBufDropsOversized(t *testing.T) {
	// Buffers above the top bucket must not be retained by the pool.
	huge := make([]float64, (1<<maxBucket)+1)
	putBuf(huge) // must not park it in bucket maxBucket
	if v := buckets[maxBucket].Get(); v != nil {
		if cap(*v.(*[]float64)) > 1<<maxBucket {
			t.Fatal("oversized buffer was retained in the top bucket")
		}
		buckets[maxBucket].Put(v) // unrelated buffer: put it back
	}
}

func TestWorkers(t *testing.T) {
	if w := (Serial{}).Workers(); w != 1 {
		t.Fatalf("Serial.Workers() = %d, want 1", w)
	}
	if w := NewParallel(5).Workers(); w != 5 {
		t.Fatalf("NewParallel(5).Workers() = %d, want 5", w)
	}
	if w := NewParallel(0).Workers(); w != runtime.NumCPU() {
		t.Fatalf("NewParallel(0).Workers() = %d, want NumCPU=%d", w, runtime.NumCPU())
	}
}

func TestBufferPoolSizedAndRecycled(t *testing.T) {
	be := Serial{}
	b := be.Get(100)
	if len(b) != 100 {
		t.Fatalf("Get(100) returned len %d", len(b))
	}
	for i := range b {
		b[i] = float64(i + 1)
	}
	be.Put(b)
	// Recycled buffers come back at the requested length with
	// unspecified contents (Get does not zero) and enough capacity.
	c := be.Get(70)
	if len(c) != 70 {
		t.Fatalf("Get(70) returned len %d", len(c))
	}
	if cap(c) < 70 {
		t.Fatalf("Get(70) returned cap %d", cap(c))
	}
	if be.Get(0) != nil {
		t.Fatal("Get(0) should return nil")
	}
	be.Put(nil) // must not panic
}

func TestUint64PoolSizedAndRecycled(t *testing.T) {
	b := GetUint64(100)
	if len(b) != 100 {
		t.Fatalf("GetUint64(100) returned len %d", len(b))
	}
	for i := range b {
		b[i] = uint64(i + 1)
	}
	PutUint64(b)
	c := GetUint64(70)
	if len(c) != 70 || cap(c) < 70 {
		t.Fatalf("GetUint64(70) returned len %d cap %d", len(c), cap(c))
	}
	if GetUint64(0) != nil {
		t.Fatal("GetUint64(0) should return nil")
	}
	PutUint64(nil) // must not panic
	huge := make([]uint64, (1<<maxBucket)+1)
	PutUint64(huge) // must not be retained
	if v := u64Buckets[maxBucket].Get(); v != nil {
		if cap(*v.(*[]uint64)) > 1<<maxBucket {
			t.Fatal("oversized uint64 buffer was retained in the top bucket")
		}
		u64Buckets[maxBucket].Put(v)
	}
}

func TestBucketFor(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 1024: 10, 1025: 11}
	for n, want := range cases {
		if got := bucketFor(n); got != want {
			t.Fatalf("bucketFor(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestDefaultOverride(t *testing.T) {
	orig := Default()
	t.Cleanup(func() { SetDefault(nil) })
	s := Serial{}
	SetDefault(s)
	if Default() != Backend(s) {
		t.Fatal("SetDefault(Serial) not observed")
	}
	SetDefault(nil)
	if Default() != orig {
		t.Fatal("SetDefault(nil) did not restore the built-in default")
	}
}

func TestNewWidthSelection(t *testing.T) {
	if _, ok := New(1).(Serial); !ok {
		t.Fatal("New(1) should be Serial")
	}
	if p, ok := New(3).(*Parallel); !ok || p.Workers() != 3 {
		t.Fatal("New(3) should be Parallel of width 3")
	}
}
