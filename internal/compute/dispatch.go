package compute

import (
	"fmt"
	"sync/atomic"
)

// Density-adaptive kernel dispatch.
//
// Every packed spike plane carries a popcount index, so the sparse-vs-
// dense kernel choice can be made per call from the plane's actual
// density instead of a process-wide toggle: the select-accumulate spike
// kernels do O(nnz) work and win when planes are mostly zeros, while the
// dense blocked/AVX kernels win once a plane is dense enough that
// skipping stops paying for its bookkeeping. On the reference container
// the crossover sits surprisingly high — ≈90% density on the 256³
// matmul (measured by TestDensityCrossoverGate in internal/tensor and
// tabulated in EXPERIMENTS.md), because the dense kernel's own zero-skip
// gate keeps it on a branchy path whenever the operand has any zeros at
// all; only a fully dense plane reaches the pure AVX speed. The
// thresholds here are calibrated from that benchmark and overridable for
// other machines.
//
// Because the spike kernels are bit-identical to the dense kernels on
// binary inputs (and fall back to dense themselves when 0·NaN/0·Inf
// propagation could be observed), the dispatch decision NEVER changes a
// default-tier result — it is purely a speed choice, which is what lets
// it be density-adaptive rather than part of the determinism contract.
// The policy lives in internal/compute so both internal/tensor and
// internal/autodiff can consult it without an import cycle; density
// travels as a plain float64 for the same reason.

// KernelFamily identifies which kernel pair a dispatch decision selects
// between; families can calibrate different crossover thresholds.
type KernelFamily int

const (
	// KernelMatMul covers SpikeMatMul/SpikeMatMulATB vs the blocked
	// dense matmuls.
	KernelMatMul KernelFamily = iota
	// KernelConv covers the packed im2col + SpikeConv2D pipeline vs the
	// dense batched conv pipeline.
	KernelConv
	// KernelPool covers the popcount-window pooling kernels vs the
	// dense pooling loops.
	KernelPool
)

// DispatchMode selects how the sparse-vs-dense choice is made.
type DispatchMode int

const (
	// DispatchAdaptive picks per call from the plane's density and the
	// policy thresholds. This is the default.
	DispatchAdaptive DispatchMode = iota
	// DispatchSparse forces the spike kernels whenever a packed plane is
	// available, regardless of density (the pre-dispatch PR-3 behaviour;
	// used by tests and benchmarks to pin one side).
	DispatchSparse
	// DispatchDense forces the dense kernels and stops producers from
	// packing spike planes at all (the old SetSpikeKernels(false)).
	DispatchDense
)

// DispatchPolicy is the per-call sparse-vs-dense decision rule.
// Thresholds are spike densities in [0,1]: a packed plane takes the
// sparse kernel iff its density is at or below the family's threshold.
type DispatchPolicy struct {
	Mode DispatchMode
	// MatMulThreshold is the density at or below which SpikeMatMul /
	// SpikeMatMulATB beat the dense blocked kernels.
	MatMulThreshold float64
	// ConvThreshold is the density at or below which the packed im2col
	// conv pipeline beats the dense batched one.
	ConvThreshold float64
	// PoolThreshold is the density at or below which popcount-window
	// pooling beats the dense window loops. Popcounting a window is
	// cheaper than reading k² floats at every density, so the default
	// is 1 (always sparse when a plane is available).
	PoolThreshold float64
}

// DefaultDispatchPolicy returns the adaptive policy with thresholds
// calibrated on the reference container (see the density-crossover table
// in EXPERIMENTS.md): the spike matmul still wins at 90% density
// (1.27×) and loses only on fully dense planes, so the matmul threshold
// sits at 85% — below the measured crossover with margin for shapes the
// benchmark does not cover. The conv threshold is more conservative
// because the packed im2col pipeline adds per-call overhead the matmul
// sweep does not measure.
func DefaultDispatchPolicy() DispatchPolicy {
	return DispatchPolicy{
		Mode:            DispatchAdaptive,
		MatMulThreshold: 0.85,
		ConvThreshold:   0.75,
		PoolThreshold:   1,
	}
}

// Validate rejects malformed policies before they are installed.
func (p DispatchPolicy) Validate() error {
	switch p.Mode {
	case DispatchAdaptive, DispatchSparse, DispatchDense:
	default:
		return fmt.Errorf("compute: unknown dispatch mode %d", p.Mode)
	}
	for _, t := range []struct {
		name string
		v    float64
	}{{"matmul", p.MatMulThreshold}, {"conv", p.ConvThreshold}, {"pool", p.PoolThreshold}} {
		if t.v < 0 || t.v > 1 || t.v != t.v {
			return fmt.Errorf("compute: %s dispatch threshold %v out of [0,1]", t.name, t.v)
		}
	}
	return nil
}

// dispatchPolicy holds the active policy; nil means the default, so the
// fast path needs no init.
var dispatchPolicy atomic.Pointer[DispatchPolicy]

// SetDispatchPolicy installs the process-wide dispatch policy. It
// panics on an invalid policy (Validate) — a policy is configuration,
// set once near startup, and silently clamping it would hide the
// mistake.
func SetDispatchPolicy(p DispatchPolicy) {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	dispatchPolicy.Store(&p)
}

// ActiveDispatchPolicy returns the process-wide dispatch policy.
func ActiveDispatchPolicy() DispatchPolicy {
	if p := dispatchPolicy.Load(); p != nil {
		return *p
	}
	return DefaultDispatchPolicy()
}

// UseSparse reports whether a kernel call of the given family should
// take the sparse (spike) kernel for a packed plane of the given
// density. Callers only consult it when a packed plane exists; without
// one there is no choice to make.
func UseSparse(f KernelFamily, density float64) bool {
	sparse := useSparse(f, density)
	countDispatch(f, sparse)
	return sparse
}

func useSparse(f KernelFamily, density float64) bool {
	p := ActiveDispatchPolicy()
	switch p.Mode {
	case DispatchSparse:
		return true
	case DispatchDense:
		return false
	}
	switch f {
	case KernelConv:
		return density <= p.ConvThreshold
	case KernelPool:
		return density <= p.PoolThreshold
	default:
		return density <= p.MatMulThreshold
	}
}

// PackSpikePlanes reports whether spike producers (the LIF/ALIF
// threshold steps, the binary encoders) should pack their outputs.
// Packing stays on under DispatchAdaptive even above the crossover —
// the popcount index is exactly what the per-call decision reads, and
// packing costs one pass over bits the producer already touches — and
// turns off only under DispatchDense, which exists to benchmark the
// dense baseline without any packing overhead.
func PackSpikePlanes() bool { return ActiveDispatchPolicy().Mode != DispatchDense }
