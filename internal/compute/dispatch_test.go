package compute

import "testing"

func TestParsePrecision(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Precision
	}{
		{"", Float64},
		{"float64", Float64},
		{"exact", Float64},
		{"default", Float64},
		{"float32", Float32},
		{"fast", Float32},
	} {
		got, err := ParsePrecision(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParsePrecision(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	for _, bad := range []string{"float16", "FAST", "f32", "double"} {
		if _, err := ParsePrecision(bad); err == nil {
			t.Errorf("ParsePrecision(%q) accepted", bad)
		}
	}
}

func TestPrecisionTagRoundTrips(t *testing.T) {
	for _, p := range []Precision{Float64, Float32} {
		got, err := ParsePrecision(p.Tag())
		if err != nil || got != p {
			t.Errorf("ParsePrecision(%v.Tag()=%q) = %v, %v", p, p.Tag(), got, err)
		}
	}
	if Float64.Tag() != "" {
		t.Errorf("default tier must wire as the empty tag, got %q", Float64.Tag())
	}
}

func TestSetPrecision(t *testing.T) {
	defer SetPrecision(Float64)
	if FastTier() {
		t.Fatal("fast tier active by default")
	}
	SetPrecision(Float32)
	if !FastTier() || ActivePrecision() != Float32 {
		t.Fatal("SetPrecision(Float32) not observed")
	}
	SetPrecision(Float64)
	if FastTier() {
		t.Fatal("SetPrecision(Float64) did not restore the default tier")
	}
}

func TestFloat32Pool(t *testing.T) {
	for _, n := range []int{0, 1, 3, 64, 1000, 1 << 10} {
		s := GetFloat32(n)
		if len(s) != n {
			t.Fatalf("GetFloat32(%d) returned len %d", n, len(s))
		}
		PutFloat32(s)
		s = GetFloat32(n)
		if len(s) != n {
			t.Fatalf("recycled GetFloat32(%d) returned len %d", n, len(s))
		}
		PutFloat32(s)
	}
	// Oversized buffers bypass the pool but must still be exact-length.
	big := GetFloat32(1<<maxBucket + 1)
	if len(big) != 1<<maxBucket+1 {
		t.Fatalf("oversized GetFloat32 returned len %d", len(big))
	}
	PutFloat32(big) // must not panic
}

func TestDispatchPolicyValidate(t *testing.T) {
	if err := DefaultDispatchPolicy().Validate(); err != nil {
		t.Fatalf("default policy invalid: %v", err)
	}
	bad := []DispatchPolicy{
		{Mode: DispatchMode(42)},
		{MatMulThreshold: -0.1},
		{ConvThreshold: 1.5},
		{PoolThreshold: nan()},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("policy %d validated: %+v", i, p)
		}
	}
}

func nan() float64 {
	z := 0.0
	return z / z
}

func TestSetDispatchPolicyPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SetDispatchPolicy accepted an invalid policy")
		}
	}()
	SetDispatchPolicy(DispatchPolicy{MatMulThreshold: 2})
}

func TestUseSparse(t *testing.T) {
	defer SetDispatchPolicy(DefaultDispatchPolicy())

	SetDispatchPolicy(DispatchPolicy{Mode: DispatchAdaptive, MatMulThreshold: 0.4, ConvThreshold: 0.6, PoolThreshold: 1})
	for _, tc := range []struct {
		f       KernelFamily
		density float64
		want    bool
	}{
		{KernelMatMul, 0, true},
		{KernelMatMul, 0.4, true}, // at the threshold: sparse
		{KernelMatMul, 0.41, false},
		{KernelConv, 0.5, true},
		{KernelConv, 0.7, false},
		{KernelPool, 1, true}, // pool threshold 1: always sparse
	} {
		if got := UseSparse(tc.f, tc.density); got != tc.want {
			t.Errorf("UseSparse(%v, %g) = %v, want %v", tc.f, tc.density, got, tc.want)
		}
	}
	if !PackSpikePlanes() {
		t.Error("adaptive mode must keep producers packing")
	}

	SetDispatchPolicy(DispatchPolicy{Mode: DispatchSparse})
	if !UseSparse(KernelMatMul, 1) || !PackSpikePlanes() {
		t.Error("DispatchSparse must force the spike kernels")
	}

	SetDispatchPolicy(DispatchPolicy{Mode: DispatchDense})
	if UseSparse(KernelMatMul, 0) || PackSpikePlanes() {
		t.Error("DispatchDense must force the dense kernels and stop packing")
	}
}
