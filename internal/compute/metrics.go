package compute

import "snnsec/internal/obs"

// dispatchCounters pre-resolves every (family, choice) series at package
// init so the UseSparse hot path pays one gated atomic increment — no
// map lookup, no allocation. Indexed [KernelFamily][chose-sparse].
var dispatchCounters [3][2]*obs.Counter

func init() {
	vec := obs.NewCounterVec("snnsec_compute_dispatch_total",
		"Sparse-vs-dense kernel dispatch decisions, by kernel family and chosen path.",
		"family", "choice")
	for f, name := range []string{"matmul", "conv", "pool"} {
		dispatchCounters[f][0] = vec.With(name, "dense")
		dispatchCounters[f][1] = vec.With(name, "sparse")
	}
}

// countDispatch records one dispatch decision for metrics.
func countDispatch(f KernelFamily, sparse bool) {
	if f < 0 || int(f) >= len(dispatchCounters) {
		return
	}
	i := 0
	if sparse {
		i = 1
	}
	dispatchCounters[f][i].Inc()
}
