package compute

import (
	"testing"

	"snnsec/internal/obs"
)

func TestDispatchCounters(t *testing.T) {
	obs.Arm()
	t.Cleanup(obs.Disarm)
	SetDispatchPolicy(DefaultDispatchPolicy())
	defer SetDispatchPolicy(DefaultDispatchPolicy())

	before := [3][2]uint64{}
	for f := range dispatchCounters {
		for i := range dispatchCounters[f] {
			before[f][i] = dispatchCounters[f][i].Value()
		}
	}
	if !UseSparse(KernelMatMul, 0.1) {
		t.Fatal("low density should dispatch sparse")
	}
	if UseSparse(KernelMatMul, 0.99) {
		t.Fatal("high density should dispatch dense")
	}
	UseSparse(KernelConv, 0.1)
	UseSparse(KernelPool, 0.5)
	if got := dispatchCounters[KernelMatMul][1].Value() - before[KernelMatMul][1]; got != 1 {
		t.Errorf("matmul sparse count = %d, want 1", got)
	}
	if got := dispatchCounters[KernelMatMul][0].Value() - before[KernelMatMul][0]; got != 1 {
		t.Errorf("matmul dense count = %d, want 1", got)
	}
	if got := dispatchCounters[KernelConv][1].Value() - before[KernelConv][1]; got != 1 {
		t.Errorf("conv sparse count = %d, want 1", got)
	}
	if got := dispatchCounters[KernelPool][1].Value() - before[KernelPool][1]; got != 1 {
		t.Errorf("pool sparse count = %d, want 1", got)
	}
	// Out-of-range families must not panic.
	countDispatch(KernelFamily(99), true)
}
