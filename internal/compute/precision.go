package compute

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
)

// Precision selects the numerics tier every kernel in the process runs
// at. The default tier (Float64) is the bit-exactness contract the whole
// repository is built on: every result is bit-identical to the float64
// reference kernels, across backends and kernel generations. The fast
// tier (Float32) is an explicit opt-in that trades those last ulps for
// raw speed — float32 storage in the matmul hot path (half the memory
// traffic, double the SIMD lanes), FMA+AVX2 micro-kernels where the CPU
// has them, and pairwise-tree scalar reductions. Fast-tier results are
// still run-to-run deterministic on a given machine (fixed reduction
// orders, fixed tree shapes), but they are NOT bit-identical to the
// default tier.
type Precision int32

const (
	// Float64 is the default, bit-exact tier.
	Float64 Precision = iota
	// Float32 is the opt-in fast tier.
	Float32
)

// String returns the canonical flag spelling of the tier.
func (p Precision) String() string {
	switch p {
	case Float64:
		return "float64"
	case Float32:
		return "float32"
	default:
		return fmt.Sprintf("Precision(%d)", int32(p))
	}
}

// Tag returns the wire spelling of the tier: the empty string for the
// default tier (so default-tier artifacts — result JSON, checkpoints,
// protocol messages — are byte-identical to those written before tiers
// existed) and the flag spelling for anything else.
func (p Precision) Tag() string {
	if p == Float64 {
		return ""
	}
	return p.String()
}

// ParsePrecision maps a flag/wire spelling to a tier. Accepted values:
// "float64" (or "exact", "default", "") for the default tier and
// "float32" (or "fast") for the fast tier. Anything else is an error —
// callers must reject unknown spellings rather than silently defaulting.
func ParsePrecision(s string) (Precision, error) {
	switch s {
	case "", "float64", "exact", "default":
		return Float64, nil
	case "float32", "fast":
		return Float32, nil
	default:
		return Float64, fmt.Errorf("compute: unknown precision %q (want float64|exact or float32|fast)", s)
	}
}

var activePrecision atomic.Int32

// SetPrecision selects the process-wide numerics tier. Kernels consult
// it per call, so a change applies to the next kernel recorded; recorded
// pullbacks run at whatever tier is active when Backward executes, which
// is why grid runs pin the tier per process and reject mixed-tier
// merges.
func SetPrecision(p Precision) { activePrecision.Store(int32(p)) }

// ActivePrecision returns the process-wide numerics tier.
func ActivePrecision() Precision { return Precision(activePrecision.Load()) }

// FastTier reports whether the float32 fast tier is active. The zero
// value of the process is the default tier, so no init is needed.
func FastTier() bool { return activePrecision.Load() == int32(Float32) }

// f32Buckets mirrors the float64 buffer pool for the fast tier's
// float32 staging buffers: power-of-two size classes, capacity-exact
// slices so callers can rely on len(buf) == n.
var f32Buckets [maxBucket + 1]sync.Pool

// GetFloat32 returns a []float32 of length n with unspecified contents;
// the caller must fully initialize (or clear) it before reading.
func GetFloat32(n int) []float32 {
	if n <= 0 {
		return nil
	}
	b := bucketFor(n)
	if b > maxBucket {
		return make([]float32, n)
	}
	if v := f32Buckets[b].Get(); v != nil {
		return (*v.(*[]float32))[:n]
	}
	return make([]float32, n, 1<<b)
}

// PutFloat32 recycles a buffer obtained from GetFloat32. The caller must
// not use the buffer afterwards.
func PutFloat32(s []float32) {
	c := cap(s)
	if c == 0 || c > 1<<maxBucket {
		return
	}
	b := bits.Len(uint(c)) - 1
	s = s[:0]
	f32Buckets[b].Put(&s)
}
