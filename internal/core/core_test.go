package core

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"snnsec/internal/attack"
	"snnsec/internal/autodiff"
	"snnsec/internal/dataset"
	"snnsec/internal/explore"
	"snnsec/internal/modelio"
	"snnsec/internal/nn"
	"snnsec/internal/snn"
	"snnsec/internal/tensor"
)

// testScale is a drastically reduced preset so core's end-to-end tests
// stay in seconds; the benchmark harness uses BenchScale for the real
// figures.
func testScale() Scale {
	s := BenchScale()
	s.Data = DataConfig{TrainN: 100, TestN: 30, ImageSize: 16, Seed: 1}
	s.Epochs = 2
	s.DefaultT = 4
	s.Vths = []float64{0.5, 1e6}
	s.Ts = []int{2, 4}
	s.HeatmapEpsilons = []float64{1.0}
	s.CurveEpsilons = []float64{0, 1.0}
	s.AttackSteps = 2
	return s
}

func TestNewLeNet5CNNShapes(t *testing.T) {
	cnn, err := NewLeNet5CNN(DefaultLeNetConfig(16, 1))
	if err != nil {
		t.Fatal(err)
	}
	tp := autodiff.NewTape()
	r := tensor.NewRand(2, 0)
	x := tp.Const(tensor.RandN(r, 0, 1, 3, 1, 16, 16))
	y := cnn.Logits(tp, x)
	if !y.Data.ShapeEquals(3, NumClasses) {
		t.Errorf("CNN logits shape = %v", y.Data.Shape())
	}
}

func TestNewLeNet5CNNPaperScaleShapes(t *testing.T) {
	cnn, err := NewLeNet5CNN(FullLeNetConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	tp := autodiff.NewTape()
	r := tensor.NewRand(2, 0)
	x := tp.Const(tensor.RandN(r, 0, 1, 1, 1, 28, 28))
	y := cnn.Logits(tp, x)
	if !y.Data.ShapeEquals(1, NumClasses) {
		t.Errorf("paper-scale CNN logits shape = %v", y.Data.Shape())
	}
}

func TestBadImageSizeRejected(t *testing.T) {
	cfg := DefaultLeNetConfig(18, 1) // not divisible by 4
	if _, err := NewLeNet5CNN(cfg); err == nil {
		t.Error("image size 18 accepted for CNN")
	}
	if _, err := NewSpikingLeNet5(cfg, 1, 4, SNNOptions{}); err == nil {
		t.Error("image size 18 accepted for SNN")
	}
}

func TestSpikingLeNetValidation(t *testing.T) {
	cfg := DefaultLeNetConfig(16, 1)
	if _, err := NewSpikingLeNet5(cfg, 0, 4, SNNOptions{}); err == nil {
		t.Error("Vth=0 accepted")
	}
	if _, err := NewSpikingLeNet5(cfg, 1, 0, SNNOptions{}); err == nil {
		t.Error("T=0 accepted")
	}
}

func TestArchitectureMatched(t *testing.T) {
	// The paper stresses CNN and SNN have "the same number of layers with
	// equal size and equal number of neurons": the trainable parameter
	// count must match exactly.
	cfg := DefaultLeNetConfig(16, 1)
	cnn, err := NewLeNet5CNN(cfg)
	if err != nil {
		t.Fatal(err)
	}
	net, err := NewSpikingLeNet5(cfg, 1, 4, SNNOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cnnCount := nn.ParamCount(cnn)
	snnCount := 0
	for _, p := range net.Params() {
		snnCount += p.Data.Len()
	}
	if cnnCount != snnCount {
		t.Errorf("parameter counts differ: CNN %d vs SNN %d", cnnCount, snnCount)
	}
}

func TestSpikingLeNetForwardShape(t *testing.T) {
	net, err := NewSpikingLeNet5(DefaultLeNetConfig(16, 1), 1, 3, SNNOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tp := autodiff.NewTape()
	r := tensor.NewRand(3, 0)
	x := tp.Const(tensor.RandN(r, 0.5, 0.5, 2, 1, 16, 16))
	y := net.Logits(tp, x)
	if !y.Data.ShapeEquals(2, NumClasses) {
		t.Errorf("SNN logits shape = %v", y.Data.Shape())
	}
}

func TestSNNOptionsDefaults(t *testing.T) {
	var o SNNOptions
	o.fill(1)
	if o.Alpha != 0.9 || o.Surrogate == nil || o.Encoder == nil || o.LogitScale != 10 {
		t.Errorf("defaults not filled: %+v", o)
	}
}

func TestLoadDataSynth(t *testing.T) {
	tr, te, err := LoadData(DataConfig{TrainN: 50, TestN: 20, ImageSize: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 50 || te.Len() != 20 {
		t.Errorf("split sizes %d/%d", tr.Len(), te.Len())
	}
	if !tr.Normalized || !te.Normalized {
		t.Error("data not normalised")
	}
	// Train and test must differ (different seeds).
	if tr.X.Slice(0).AllClose(te.X.Slice(0), 1e-9) {
		t.Error("train and test look identical")
	}
}

func TestLoadDataMNISTDir(t *testing.T) {
	dir := t.TempDir()
	mk := func(n int, seed uint64) *dataset.Dataset {
		cfg := dataset.DefaultSynthConfig(n, seed)
		d, err := dataset.SynthDigits(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	if err := dataset.WriteIDX(mk(40, 1),
		filepath.Join(dir, "train-images-idx3-ubyte"),
		filepath.Join(dir, "train-labels-idx1-ubyte")); err != nil {
		t.Fatal(err)
	}
	if err := dataset.WriteIDX(mk(20, 2),
		filepath.Join(dir, "t10k-images-idx3-ubyte"),
		filepath.Join(dir, "t10k-labels-idx1-ubyte")); err != nil {
		t.Fatal(err)
	}
	t.Setenv(dataset.MNISTDirEnv, dir)
	tr, te, err := LoadData(DataConfig{TrainN: 30, TestN: 10})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 30 || te.Len() != 10 {
		t.Errorf("MNIST-dir subsampling gave %d/%d", tr.Len(), te.Len())
	}
}

func TestScalePresets(t *testing.T) {
	b := BenchScale()
	p := PaperScale()
	if b.Name != "bench" || p.Name != "paper" {
		t.Error("preset names")
	}
	if p.DefaultT != 64 || p.Data.ImageSize != 28 {
		t.Error("paper preset does not match the paper's defaults")
	}
	if len(p.Vths) < 8 || len(p.Ts) < 8 {
		t.Error("paper grid smaller than the paper's 8x8+")
	}
	os.Unsetenv(ScaleEnv)
	if ScaleFromEnv().Name != "bench" {
		t.Error("default scale is not bench")
	}
	t.Setenv(ScaleEnv, "paper")
	if ScaleFromEnv().Name != "paper" {
		t.Error("SNNSEC_SCALE=paper ignored")
	}
}

func TestRunFig1Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end experiment in -short mode")
	}
	s := testScale()
	var log bytes.Buffer
	res, err := RunFig1(s, &log)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CNN) != len(s.CurveEpsilons) || len(res.SNN) != len(s.CurveEpsilons) {
		t.Fatalf("curve lengths %d/%d", len(res.CNN), len(res.SNN))
	}
	if res.CNN[0].RobustAccuracy != res.CNNClean {
		t.Error("ε=0 point does not equal clean accuracy")
	}
	if res.CNNClean < 0.3 {
		t.Errorf("CNN failed to learn at test scale: %v", res.CNNClean)
	}
	if !bytes.Contains(log.Bytes(), []byte("fig1")) {
		t.Error("no log output")
	}
}

func TestRunGridSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end experiment in -short mode")
	}
	s := testScale()
	res, err := RunGrid(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 4 {
		t.Fatalf("grid points = %d", len(res.Points))
	}
	// The absurd-threshold column must fail the gate.
	for _, T := range s.Ts {
		p, ok := res.Lookup(1e6, T)
		if !ok {
			t.Fatal("lookup failed")
		}
		if p.Learnable {
			t.Errorf("Vth=1e6 T=%d passed the 70%% gate with %v", T, p.CleanAccuracy)
		}
	}
}

func TestSelectFig9Combos(t *testing.T) {
	res := &explore.Result{
		Vths:     []float64{0.5, 1, 2},
		Ts:       []int{8},
		Epsilons: []float64{1.5},
		Points: []explore.Point{
			{Vth: 0.5, T: 8, CleanAccuracy: 0.9, Learnable: true,
				Robustness: []attack.CurvePoint{{Eps: 1.5, RobustAccuracy: 0.8}}},
			{Vth: 1, T: 8, CleanAccuracy: 0.85, Learnable: true,
				Robustness: []attack.CurvePoint{{Eps: 1.5, RobustAccuracy: 0.1}}},
			{Vth: 2, T: 8, CleanAccuracy: 0.8, Learnable: true,
				Robustness: []attack.CurvePoint{{Eps: 1.5, RobustAccuracy: 0.45}}},
		},
	}
	combos := SelectFig9Combos(res)
	if len(combos) != 3 {
		t.Fatalf("combos = %d", len(combos))
	}
	if combos[0].Vth != 0.5 { // best
		t.Errorf("best combo = %+v", combos[0])
	}
	if combos[1].Vth != 1 { // worst
		t.Errorf("worst combo = %+v", combos[1])
	}
	if combos[2].Vth != 2 { // medium
		t.Errorf("medium combo = %+v", combos[2])
	}
}

func TestSelectFig9CombosEmpty(t *testing.T) {
	res := &explore.Result{Epsilons: []float64{1}, Points: []explore.Point{{CleanAccuracy: 0.1}}}
	if got := SelectFig9Combos(res); got != nil {
		t.Errorf("combos from unlearnable grid: %v", got)
	}
	if got := SelectFig9Combos(&explore.Result{}); got != nil {
		t.Errorf("combos with no epsilons: %v", got)
	}
}

func TestFig1CrossoverDetection(t *testing.T) {
	r := &Fig1Result{
		CNN: []attack.CurvePoint{{Eps: 0, RobustAccuracy: 0.9}, {Eps: 0.5, RobustAccuracy: 0.2}},
		SNN: []attack.CurvePoint{{Eps: 0, RobustAccuracy: 0.8}, {Eps: 0.5, RobustAccuracy: 0.5}},
	}
	e, ok := r.Crossover()
	if !ok || e != 0.5 {
		t.Errorf("crossover = %v, %v", e, ok)
	}
	r.SNN[1].RobustAccuracy = 0.1
	if _, ok := r.Crossover(); ok {
		t.Error("phantom crossover")
	}
}

func TestFig9MaxGap(t *testing.T) {
	r := &Fig9Result{
		CNN: []attack.CurvePoint{{Eps: 0, RobustAccuracy: 0.9}, {Eps: 1, RobustAccuracy: 0.1}},
		Combos: []Fig9Combo{
			{Vth: 1, T: 8, Curve: []attack.CurvePoint{{Eps: 0, RobustAccuracy: 0.85}, {Eps: 1, RobustAccuracy: 0.75}}},
		},
	}
	if gap := r.MaxGapOverCNN(); gap != 0.65 {
		t.Errorf("MaxGapOverCNN = %v, want 0.65", gap)
	}
}

func TestCheckpointRoundTripPreservesLogits(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end experiment in -short mode")
	}
	s := testScale()
	trainDS, testDS, err := LoadData(s.Data)
	if err != nil {
		t.Fatal(err)
	}
	net, _, err := s.TrainSNN(0.5, 3, trainDS, testDS)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "snn.ckpt")
	if err := modelio.SaveFile(path, map[string]string{"model": "snn"}, net.Params()); err != nil {
		t.Fatal(err)
	}
	m, err := modelio.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, err := NewSpikingLeNet5(s.Net, 0.5, 3, SNNOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Apply(rebuilt.Params()); err != nil {
		t.Fatal(err)
	}
	// Identical weights + identical encoder seed streams give identical
	// predictions batch-by-batch only if the Poisson streams align; use
	// the deterministic constant-current encoder for the check.
	net.Encoder = snn.ConstantCurrentEncoder{Gain: 1}
	rebuilt.Encoder = snn.ConstantCurrentEncoder{Gain: 1}
	b := testDS.Batches(16)[0]
	tp1 := autodiff.NewTape()
	l1 := net.Logits(tp1, tp1.Const(b.X))
	tp2 := autodiff.NewTape()
	l2 := rebuilt.Logits(tp2, tp2.Const(b.X))
	if !l1.Data.AllClose(l2.Data, 0) {
		t.Error("rebuilt checkpoint produces different logits")
	}
}
