package core

import (
	"fmt"
	"io"
	"os"

	"snnsec/internal/attack"
	"snnsec/internal/dataset"
	"snnsec/internal/explore"
	"snnsec/internal/nn"
	"snnsec/internal/snn"
	"snnsec/internal/tensor"
	"snnsec/internal/train"
)

// Scale bundles every knob of an experiment run so the same code serves
// both the CPU-friendly benchmark harness and a paper-scale run.
type Scale struct {
	Name string
	Data DataConfig
	// Net is the architecture scaling.
	Net LeNetConfig
	// Epochs / BatchSize / LR configure training (CNN and each SNN grid
	// point alike).
	Epochs    int
	BatchSize int
	LR        float64
	GradClip  float64
	// DefaultVth / DefaultT are the paper's default structural point
	// used in the motivational study (paper: (1, 64)).
	DefaultVth float64
	DefaultT   int
	// Grid axes (Figures 6-8).
	Vths []float64
	Ts   []int
	// HeatmapEpsilons are the budgets of Figures 7 and 8.
	HeatmapEpsilons []float64
	// CurveEpsilons is the ε sweep of Figures 1 and 9.
	CurveEpsilons []float64
	// AttackSteps is the PGD iteration count.
	AttackSteps int
	EvalBatch   int
	Workers     int
	Seed        uint64
}

// ScaleEnv selects the full-scale preset when set to "paper".
const ScaleEnv = "SNNSEC_SCALE"

// BenchScale is the default preset: small enough to regenerate every
// figure on a single CPU core in minutes while preserving the qualitative
// shapes (see DESIGN.md on the substitution).
func BenchScale() Scale {
	return Scale{
		Name:            "bench",
		Data:            DataConfig{TrainN: 600, TestN: 80, ImageSize: 16, Seed: 1},
		Net:             DefaultLeNetConfig(16, 7),
		Epochs:          6,
		BatchSize:       32,
		LR:              3e-3,
		GradClip:        5,
		DefaultVth:      1,
		DefaultT:        12,
		Vths:            []float64{0.5, 1, 1.5, 2.25},
		Ts:              []int{4, 8, 12},
		HeatmapEpsilons: []float64{1.0, 1.5},
		CurveEpsilons:   []float64{0, 0.5, 1.0, 1.5, 2.0},
		AttackSteps:     5,
		EvalBatch:       32,
		Workers:         0, // NumCPU
		Seed:            42,
	}
}

// TinyScale is the smallest preset that still exercises every phase of
// Algorithm 1: a 2×2 grid over a 12×12 synthetic set, two epochs, one
// heat-map budget. It exists for smoke tests — the CI's distributed grid
// checks train it in seconds — not for meaningful curves; selected with
// SNNSEC_SCALE=tiny.
func TinyScale() Scale {
	return Scale{
		Name:            "tiny",
		Data:            DataConfig{TrainN: 96, TestN: 32, ImageSize: 12, Seed: 1},
		Net:             DefaultLeNetConfig(12, 7),
		Epochs:          2,
		BatchSize:       32,
		LR:              3e-3,
		GradClip:        5,
		DefaultVth:      1,
		DefaultT:        4,
		Vths:            []float64{0.5, 1},
		Ts:              []int{2, 4},
		HeatmapEpsilons: []float64{1.0},
		CurveEpsilons:   []float64{0, 1.0},
		AttackSteps:     2,
		EvalBatch:       32,
		Workers:         0,
		Seed:            42,
	}
}

// PaperScale mirrors the paper's setting (28×28, LeNet-5 widths, the full
// 8×8 grid of Figure 6, PGD with 10 steps). On one CPU core this takes
// hours-to-days; it exists so the experiment is *recoverable*, and is
// selected with SNNSEC_SCALE=paper.
func PaperScale() Scale {
	return Scale{
		Name:            "paper",
		Data:            DataConfig{TrainN: 10000, TestN: 1000, ImageSize: 28, Seed: 1},
		Net:             FullLeNetConfig(7),
		Epochs:          10,
		BatchSize:       64,
		LR:              1e-3,
		GradClip:        5,
		DefaultVth:      1,
		DefaultT:        64,
		Vths:            []float64{0.25, 0.5, 0.75, 1, 1.25, 1.5, 2, 2.25, 2.5},
		Ts:              []int{8, 16, 24, 32, 40, 48, 56, 64, 72},
		HeatmapEpsilons: []float64{1.0, 1.5},
		CurveEpsilons:   []float64{0, 0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0},
		AttackSteps:     10,
		EvalBatch:       100,
		Workers:         0,
		Seed:            42,
	}
}

// ScaleFromEnv returns PaperScale when SNNSEC_SCALE=paper, TinyScale
// when SNNSEC_SCALE=tiny, else BenchScale.
func ScaleFromEnv() Scale {
	switch os.Getenv(ScaleEnv) {
	case "paper":
		return PaperScale()
	case "tiny":
		return TinyScale()
	default:
		return BenchScale()
	}
}

func (s Scale) trainConfig() train.Config {
	return train.Config{
		Epochs:    s.Epochs,
		BatchSize: s.BatchSize,
		Optimizer: train.NewAdam(s.LR),
		GradClip:  s.GradClip,
		Shuffle:   tensor.NewRand(s.Seed, 0x5f),
	}
}

// TrainCNN trains the LeNet-5 baseline and returns it with its test
// accuracy.
func (s Scale) TrainCNN(trainDS, testDS *dataset.Dataset) (*nn.Sequential, float64, error) {
	cnn, err := NewLeNet5CNN(s.Net)
	if err != nil {
		return nil, 0, err
	}
	if _, err := train.Fit(cnn, trainDS, s.trainConfig()); err != nil {
		return nil, 0, err
	}
	return cnn, train.Evaluate(cnn, testDS, s.EvalBatch), nil
}

// TrainSNN trains a spiking LeNet-5 at the given structural point.
func (s Scale) TrainSNN(vth float64, T int, trainDS, testDS *dataset.Dataset) (*snn.Network, float64, error) {
	net, err := NewSpikingLeNet5(s.Net, vth, T, SNNOptions{})
	if err != nil {
		return nil, 0, err
	}
	if _, err := train.Fit(net, trainDS, s.trainConfig()); err != nil {
		return nil, 0, err
	}
	return net, train.Evaluate(net, testDS, s.EvalBatch), nil
}

// pgdFactory builds the per-ε PGD attack used everywhere.
func (s Scale) pgdFactory(bounds attack.Bounds) func(eps float64) attack.Attack {
	return func(eps float64) attack.Attack {
		return attack.PGD{
			Eps:         eps,
			Steps:       s.AttackSteps,
			RandomStart: true,
			Rand:        tensor.NewRand(s.Seed, 0xadd),
			Bounds:      bounds,
		}
	}
}

// ---------------------------------------------------------------------------
// Figure 1 — motivational study

// Fig1Result holds the CNN-vs-SNN robustness curves of the motivational
// case study.
type Fig1Result struct {
	CNNClean, SNNClean float64
	CNN, SNN           []attack.CurvePoint
}

// Crossover returns the smallest ε at which the SNN's robust accuracy
// exceeds the CNN's (the paper's "turnaround point", ε = 0.5 there), or
// (0, false) when no crossover occurs.
func (r *Fig1Result) Crossover() (float64, bool) {
	for i := range r.CNN {
		if r.SNN[i].RobustAccuracy > r.CNN[i].RobustAccuracy {
			return r.CNN[i].Eps, true
		}
	}
	return 0, false
}

// RunFig1 trains the architecture-matched CNN and SNN (default structural
// parameters) and evaluates both under the PGD ε sweep.
func RunFig1(s Scale, logw io.Writer) (*Fig1Result, error) {
	trainDS, testDS, err := LoadData(s.Data)
	if err != nil {
		return nil, err
	}
	cnn, cnnAcc, err := s.TrainCNN(trainDS, testDS)
	if err != nil {
		return nil, err
	}
	logf(logw, "fig1: CNN clean accuracy %.3f\n", cnnAcc)
	snnNet, snnAcc, err := s.TrainSNN(s.DefaultVth, s.DefaultT, trainDS, testDS)
	if err != nil {
		return nil, err
	}
	logf(logw, "fig1: SNN(Vth=%g, T=%d) clean accuracy %.3f\n", s.DefaultVth, s.DefaultT, snnAcc)
	bounds := attack.DatasetBounds(testDS)
	res := &Fig1Result{
		CNNClean: cnnAcc,
		SNNClean: snnAcc,
		CNN:      attack.Curve(cnn, testDS, s.CurveEpsilons, s.pgdFactory(bounds), s.EvalBatch),
		SNN:      attack.Curve(snnNet, testDS, s.CurveEpsilons, s.pgdFactory(bounds), s.EvalBatch),
	}
	return res, nil
}

// ---------------------------------------------------------------------------
// Figures 6, 7, 8 — the (Vth, T) exploration grid

// GridConfig assembles the explore configuration of Algorithm 1 at this
// scale. It is the single construction point shared by the in-process
// RunGrid and the distributed grid job builder, so a sharded run
// reproduces the single-process configuration exactly.
func (s Scale) GridConfig() explore.Config {
	tcfg := s.trainConfig()
	tcfg.Optimizer = nil // one optimiser per grid point, built below
	return explore.Config{
		Vths:              s.Vths,
		Ts:                s.Ts,
		Epsilons:          s.HeatmapEpsilons,
		AccuracyThreshold: 0.70,
		Train:             tcfg,
		NewOptimizer:      func() train.Optimizer { return train.NewAdam(s.LR) },
		AttackSteps:       s.AttackSteps,
		EvalBatch:         s.EvalBatch,
		Workers:           s.Workers,
		Seed:              s.Seed,
		Build: func(vth float64, T int) (*snn.Network, error) {
			return NewSpikingLeNet5(s.Net, vth, T, SNNOptions{})
		},
	}
}

// RunGrid executes Algorithm 1 at this scale: it is the shared engine of
// Figures 6 (clean-accuracy heat map), 7 and 8 (robustness heat maps).
func RunGrid(s Scale, logw io.Writer) (*explore.Result, error) {
	trainDS, testDS, err := LoadData(s.Data)
	if err != nil {
		return nil, err
	}
	res, err := explore.Run(s.GridConfig(), trainDS, testDS)
	if err != nil {
		return nil, err
	}
	logf(logw, "grid: %d/%d points learnable (Ath=0.70)\n", res.LearnableCount(), len(res.Points))
	return res, nil
}

// ---------------------------------------------------------------------------
// Figure 9 — tracked combinations vs the CNN

// Fig9Combo names one tracked structural point and its measured curve.
type Fig9Combo struct {
	Vth   float64
	T     int
	Clean float64
	Curve []attack.CurvePoint
}

// Fig9Result compares selected (Vth, T) combinations against the CNN.
type Fig9Result struct {
	CNN    []attack.CurvePoint
	Combos []Fig9Combo
}

// MaxGapOverCNN returns the largest robust-accuracy margin any combo
// achieves over the CNN across the ε sweep — the paper reports up to
// 85 % for (Vth, T) = (1, 48).
func (r *Fig9Result) MaxGapOverCNN() float64 {
	best := 0.0
	for _, c := range r.Combos {
		for i, p := range c.Curve {
			if gap := p.RobustAccuracy - r.CNN[i].RobustAccuracy; gap > best {
				best = gap
			}
		}
	}
	return best
}

// SelectFig9Combos picks the tracked points from a grid result the way
// the paper does: the most robust learnable combination, the least robust
// learnable combination, and a "medium" point (low clean accuracy that
// still survives attacks better than most). The selection budget eps is
// the largest heat-map ε.
func SelectFig9Combos(res *explore.Result) []explore.Point {
	if len(res.Epsilons) == 0 {
		return nil
	}
	eps := res.Epsilons[len(res.Epsilons)-1]
	var best, worst, medium *explore.Point
	for i := range res.Points {
		p := &res.Points[i]
		if !p.Learnable {
			continue
		}
		r, ok := p.RobustAt(eps)
		if !ok {
			continue
		}
		if best == nil {
			best, worst = p, p
		}
		if rb, _ := best.RobustAt(eps); r > rb {
			best = p
		}
		if rw, _ := worst.RobustAt(eps); r < rw {
			worst = p
		}
	}
	if best == nil {
		return nil
	}
	// Medium: the learnable point whose robustness is closest to the
	// midpoint of best and worst.
	rb, _ := best.RobustAt(eps)
	rw, _ := worst.RobustAt(eps)
	mid := (rb + rw) / 2
	bestDist := -1.0
	for i := range res.Points {
		p := &res.Points[i]
		if !p.Learnable || p == best || p == worst {
			continue
		}
		r, ok := p.RobustAt(eps)
		if !ok {
			continue
		}
		d := r - mid
		if d < 0 {
			d = -d
		}
		if bestDist < 0 || d < bestDist {
			bestDist = d
			medium = p
		}
	}
	out := []explore.Point{*best}
	if worst != best {
		out = append(out, *worst)
	}
	if medium != nil {
		out = append(out, *medium)
	}
	return out
}

// RunFig9 retrains the selected combinations (or the paper's canonical
// three when combos is nil) and traces their full robustness curves
// against the CNN's.
func RunFig9(s Scale, combos []explore.Point, logw io.Writer) (*Fig9Result, error) {
	trainDS, testDS, err := LoadData(s.Data)
	if err != nil {
		return nil, err
	}
	cnn, cnnAcc, err := s.TrainCNN(trainDS, testDS)
	if err != nil {
		return nil, err
	}
	logf(logw, "fig9: CNN clean %.3f\n", cnnAcc)
	bounds := attack.DatasetBounds(testDS)
	out := &Fig9Result{
		CNN: attack.Curve(cnn, testDS, s.CurveEpsilons, s.pgdFactory(bounds), s.EvalBatch),
	}
	if combos == nil {
		// The paper's canonical trio, rescaled to this grid: take the
		// default Vth with a long, a short and an over-threshold
		// window/threshold pairing.
		combos = []explore.Point{
			{Vth: s.DefaultVth, T: s.Ts[len(s.Ts)-1]},
			{Vth: s.Vths[len(s.Vths)-1], T: s.Ts[len(s.Ts)/2]},
			{Vth: s.DefaultVth, T: s.Ts[0]},
		}
	}
	for _, c := range combos {
		net, acc, err := s.TrainSNN(c.Vth, c.T, trainDS, testDS)
		if err != nil {
			return nil, err
		}
		logf(logw, "fig9: SNN(Vth=%g, T=%d) clean %.3f\n", c.Vth, c.T, acc)
		out.Combos = append(out.Combos, Fig9Combo{
			Vth:   c.Vth,
			T:     c.T,
			Clean: acc,
			Curve: attack.Curve(net, testDS, s.CurveEpsilons, s.pgdFactory(bounds), s.EvalBatch),
		})
	}
	return out, nil
}

func logf(w io.Writer, format string, args ...any) {
	if w != nil {
		fmt.Fprintf(w, format, args...)
	}
}
