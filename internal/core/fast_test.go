package core

import (
	"math"
	"testing"

	"snnsec/internal/autodiff"
	"snnsec/internal/compute"
	"snnsec/internal/dataset"
	"snnsec/internal/snn"
	"snnsec/internal/tensor"
)

// TestFastTierTinyPresetEquivalence is the end-to-end tolerance gate of
// the fast tier: on the tiny preset, (a) a forward pass under the fast
// tier must land within a small relative error of the default tier on
// the same trained weights and the same encoder spike train, (b) the
// fast tier must be exactly run-to-run deterministic — repeated forward
// passes and repeated full trainings are bit-identical — and (c)
// retraining under the fast tier must reach a final accuracy close to
// the default tier's.
//
// The relative-error bound on logits is looser than raw float32
// accumulation noise because the network thresholds membrane potentials:
// a potential within ulps of Vth can legitimately spike under one tier
// and not the other, which perturbs downstream logits by whole spike
// contributions, not ulps. The tiny preset keeps that rare; the bound
// absorbs it.
func TestFastTierTinyPresetEquivalence(t *testing.T) {
	s := TinyScale()
	trainDS, testDS, err := LoadData(s.Data)
	if err != nil {
		t.Fatal(err)
	}
	// Fit shuffles the training set in place, so every training run gets
	// its own copy to keep runs independent and comparable.
	trainCopy := func() *dataset.Dataset { return trainDS.Subset(0, trainDS.Len()) }

	net, acc, err := s.TrainSNN(s.DefaultVth, s.DefaultT, trainCopy(), testDS)
	if err != nil {
		t.Fatal(err)
	}
	batch := testDS.Batches(16)[0]
	logits := func() *tensor.Tensor {
		// Reseed the Poisson front-end so both tiers see the identical
		// spike train (the encoder itself always samples in float64).
		net.Encoder.(*snn.PoissonEncoder).Reseed(123, 456)
		tp := autodiff.NewTape()
		return net.Logits(tp, tp.Const(batch.X)).Data
	}
	exact := logits()

	// The SNN's forward path is largely spike-dispatched (exact kernels),
	// so also pin the fully dense path: a randomly initialised CNN's
	// logits go through the fast float32 matmuls end to end.
	cnn, err := NewLeNet5CNN(s.Net)
	if err != nil {
		t.Fatal(err)
	}
	cnnLogits := func() *tensor.Tensor {
		tp := autodiff.NewTape()
		return cnn.Logits(tp, tp.Const(batch.X)).Data
	}
	exactCNN := cnnLogits()

	maxRelTo := func(exact, fast *tensor.Tensor) float64 {
		maxRel := 0.0
		for i, w := range exact.Data() {
			if rel := math.Abs(fast.Data()[i]-w) / (math.Abs(w) + 1); rel > maxRel {
				maxRel = rel
			}
		}
		return maxRel
	}

	compute.SetPrecision(compute.Float32)
	t.Cleanup(func() { compute.SetPrecision(compute.Float64) })
	fast := logits()
	if !fast.AllClose(logits(), 0) {
		t.Error("fast-tier forward pass not run-to-run deterministic")
	}
	snnRel := maxRelTo(exact, fast)
	t.Logf("max relative logit error fast vs default: SNN %.2e", snnRel)
	if snnRel > 0.05 {
		t.Errorf("fast-tier SNN logits diverge from the default tier: max relative error %.2e", snnRel)
	}
	fastCNN := cnnLogits()
	if !fastCNN.AllClose(cnnLogits(), 0) {
		t.Error("fast-tier CNN forward pass not run-to-run deterministic")
	}
	cnnRel := maxRelTo(exactCNN, fastCNN)
	t.Logf("max relative logit error fast vs default: CNN %.2e", cnnRel)
	if cnnRel == 0 {
		t.Error("fast-tier CNN logits bit-identical to float64 — the fast kernels did not run")
	}
	if cnnRel > 1e-3 {
		t.Errorf("fast-tier CNN logits diverge from the default tier: max relative error %.2e", cnnRel)
	}

	netF, accF, err := s.TrainSNN(s.DefaultVth, s.DefaultT, trainCopy(), testDS)
	if err != nil {
		t.Fatal(err)
	}
	_, accF2, err := s.TrainSNN(s.DefaultVth, s.DefaultT, trainCopy(), testDS)
	if err != nil {
		t.Fatal(err)
	}
	if accF != accF2 {
		t.Errorf("fast-tier training not run-to-run deterministic: %v vs %v", accF, accF2)
	}
	t.Logf("tiny-preset accuracy: default %.4f, fast %.4f", acc, accF)
	if math.Abs(accF-acc) > 0.25 {
		t.Errorf("fast-tier final accuracy %.4f too far from default tier %.4f", accF, acc)
	}
	// The retrained fast-tier network must itself produce finite logits.
	netF.Encoder.(*snn.PoissonEncoder).Reseed(123, 456)
	tp := autodiff.NewTape()
	out := netF.Logits(tp, tp.Const(batch.X)).Data
	for i, v := range out.Data() {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("fast-tier network logit %d is %v", i, v)
		}
	}
}
