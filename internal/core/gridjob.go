package core

import (
	"encoding/json"
	"fmt"

	"snnsec/internal/dataset"
	"snnsec/internal/grid"
)

// The distributed grid engine ships a job to worker processes as a named
// builder plus a JSON spec. A Scale is fully serialisable (plain fields,
// and encoding/json round-trips float64 exactly), so it IS the spec: the
// worker rebuilds the identical explore configuration and datasets from
// it, which is what makes a sharded run bit-identical to the in-process
// RunGrid.

// ScaleBuilderName is the registered grid builder that interprets a
// serialised Scale.
const ScaleBuilderName = "scale"

func init() {
	grid.Register(ScaleBuilderName, func(raw json.RawMessage) (grid.Job, error) {
		var s Scale
		if err := json.Unmarshal(raw, &s); err != nil {
			return grid.Job{}, fmt.Errorf("core: decoding scale spec: %w", err)
		}
		return grid.Job{
			Config: s.GridConfig(),
			Data: func() (*dataset.Dataset, *dataset.Dataset, error) {
				return LoadData(s.Data)
			},
		}, nil
	})
}

// GridSpec returns the grid.Spec for this scale's exploration job.
func (s Scale) GridSpec() (grid.Spec, error) {
	raw, err := json.Marshal(s)
	if err != nil {
		return grid.Spec{}, err
	}
	return grid.Spec{Builder: ScaleBuilderName, Config: raw}, nil
}
