// Package core is the facade of the reproduction: it builds the paper's
// two victim models (the LeNet-5 CNN baseline and its spiking counterpart
// with configurable structural parameters Vth and T), loads the
// experiment dataset, and exposes one runner per figure of the paper's
// evaluation (Figures 1, 6, 7, 8, 9). The benchmark harness and the CLI
// are thin wrappers around this package.
package core

import (
	"fmt"
	"os"

	"snnsec/internal/dataset"
	"snnsec/internal/nn"
	"snnsec/internal/snn"
	"snnsec/internal/tensor"
)

// NumClasses is the digit-classification class count.
const NumClasses = 10

// LeNetConfig scales the LeNet-5 family to the experiment budget. The
// paper uses the full 28×28 LeNet-5 ("a 5-layer CNN, with 3 convolutional
// layers and 2 fully-connected layers" counting the readout); the bench
// preset shrinks the trunk while keeping the conv-conv-fc-fc shape so the
// CNN and SNN remain architecture-matched.
type LeNetConfig struct {
	// ImageSize is the square input side (16 in the bench preset, 28
	// for MNIST scale).
	ImageSize int
	// C1, C2 are the two convolution widths (LeNet-5: 6 and 16).
	C1, C2 int
	// FC1 is the first fully connected width (LeNet-5: 120; the second
	// fully connected layer is the 10-way readout).
	FC1 int
	// Seed initialises the weights deterministically.
	Seed uint64
}

// DefaultLeNetConfig returns the bench-scale network for the given image
// size.
func DefaultLeNetConfig(imageSize int, seed uint64) LeNetConfig {
	return LeNetConfig{ImageSize: imageSize, C1: 6, C2: 12, FC1: 48, Seed: seed}
}

// FullLeNetConfig returns the paper-scale LeNet-5 (28×28, 6/16/120).
func FullLeNetConfig(seed uint64) LeNetConfig {
	return LeNetConfig{ImageSize: 28, C1: 6, C2: 16, FC1: 120, Seed: seed}
}

// flatSize computes the flattened feature count after the two conv+pool
// stages: conv k5 pad2 preserves size, each pool halves it, conv k3 pad1
// preserves.
func (c LeNetConfig) flatSize() (int, error) {
	if c.ImageSize%4 != 0 {
		return 0, fmt.Errorf("core: image size %d must be divisible by 4", c.ImageSize)
	}
	s := c.ImageSize / 4
	return c.C2 * s * s, nil
}

// NewLeNet5CNN builds the non-spiking baseline:
// conv5(1→C1) → ReLU → avgpool2 → conv3(C1→C2) → ReLU → avgpool2 →
// flatten → FC(FC1) → ReLU → FC(10).
func NewLeNet5CNN(cfg LeNetConfig) (*nn.Sequential, error) {
	flat, err := cfg.flatSize()
	if err != nil {
		return nil, err
	}
	r := tensor.NewRand(cfg.Seed, 0xc99)
	return nn.NewSequential(
		nn.NewConv2D(r, 1, cfg.C1, 5, 1, 2),
		nn.ReLU{},
		nn.AvgPool{K: 2},
		nn.NewConv2D(r, cfg.C1, cfg.C2, 3, 1, 1),
		nn.ReLU{},
		nn.AvgPool{K: 2},
		nn.Flatten{},
		nn.NewLinear(r, flat, cfg.FC1),
		nn.ReLU{},
		nn.NewLinear(r, cfg.FC1, NumClasses),
	), nil
}

// SNNOptions collects the spiking-specific knobs beyond (Vth, T).
type SNNOptions struct {
	// Alpha is the membrane decay (default 0.9).
	Alpha float64
	// Reset selects the post-spike reset (default ResetZero).
	Reset snn.ResetMode
	// Surrogate selects the backward spike derivative (default
	// FastSigmoid β=100, the Norse default).
	Surrogate snn.Surrogate
	// Encoder overrides the input encoding. The default is the paper's
	// rate coding (Fig. 3): a Poisson encoder whose rate de-normalises
	// the MNIST-normalised input back to [0,1] intensity, with a
	// straight-through gradient for white-box attacks.
	Encoder snn.Encoder
	// Mode selects the readout (default spike count).
	Mode snn.ReadoutMode
	// LogitScale (default 10).
	LogitScale float64
}

func (o *SNNOptions) fill(seed uint64) {
	if o.Alpha == 0 {
		o.Alpha = 0.9
	}
	if o.Surrogate == nil {
		o.Surrogate = snn.FastSigmoid{Beta: 25}
	}
	if o.Encoder == nil {
		o.Encoder = snn.NewNormalizedPoissonEncoder(1, dataset.MNISTMean, dataset.MNISTStd, seed, 0xe4c0de)
	}
	if o.LogitScale == 0 {
		o.LogitScale = 10
	}
}

// NewSpikingLeNet5 builds the spiking counterpart of NewLeNet5CNN with
// the same topology and neuron counts, the LIF populations replacing the
// ReLUs, firing threshold vth and time window T — the (Vth, T) point of
// the paper's exploration grid.
func NewSpikingLeNet5(cfg LeNetConfig, vth float64, T int, opts SNNOptions) (*snn.Network, error) {
	flat, err := cfg.flatSize()
	if err != nil {
		return nil, err
	}
	if vth <= 0 {
		return nil, fmt.Errorf("core: Vth must be positive, got %g", vth)
	}
	if T <= 0 {
		return nil, fmt.Errorf("core: time window T must be positive, got %d", T)
	}
	opts.fill(cfg.Seed)
	r := tensor.NewRand(cfg.Seed, 0x5a11)
	ncfg := snn.NeuronConfig{Vth: vth, Alpha: opts.Alpha, Reset: opts.Reset, Surrogate: opts.Surrogate}
	net := &snn.Network{
		Encoder: opts.Encoder,
		Hidden: []snn.Layer{
			{Syn: nn.NewConv2D(r, 1, cfg.C1, 5, 1, 2), Cfg: ncfg},
			{Syn: nn.NewSequential(nn.AvgPool{K: 2}, nn.NewConv2D(r, cfg.C1, cfg.C2, 3, 1, 1)), Cfg: ncfg},
			{Syn: nn.NewSequential(nn.AvgPool{K: 2}, nn.Flatten{}, nn.NewLinear(r, flat, cfg.FC1)), Cfg: ncfg},
		},
		Readout:    nn.NewLinear(r, cfg.FC1, NumClasses),
		ReadoutCfg: ncfg,
		Mode:       opts.Mode,
		T:          T,
		LogitScale: opts.LogitScale,
	}
	return net, nil
}

// DataConfig selects the experiment dataset.
type DataConfig struct {
	// TrainN, TestN are the split sizes.
	TrainN, TestN int
	// ImageSize is the synthetic image side (ignored for real MNIST).
	ImageSize int
	// Seed drives the synthetic generator.
	Seed uint64
}

// LoadData returns normalised train/test splits: real MNIST when
// SNNSEC_MNIST_DIR is set (subsampled to the requested sizes), else
// SynthDigits. This is the substitution point documented in DESIGN.md.
func LoadData(cfg DataConfig) (trainDS, testDS *dataset.Dataset, err error) {
	if dir := os.Getenv(dataset.MNISTDirEnv); dir != "" {
		trainDS, err = dataset.LoadMNISTDir(dir, true)
		if err != nil {
			return nil, nil, err
		}
		testDS, err = dataset.LoadMNISTDir(dir, false)
		if err != nil {
			return nil, nil, err
		}
		if cfg.TrainN > 0 && cfg.TrainN < trainDS.Len() {
			trainDS = trainDS.Subset(0, cfg.TrainN)
		}
		if cfg.TestN > 0 && cfg.TestN < testDS.Len() {
			testDS = testDS.Subset(0, cfg.TestN)
		}
	} else {
		sc := dataset.DefaultSynthConfig(cfg.TrainN, cfg.Seed)
		sc.Size = cfg.ImageSize
		trainDS, err = dataset.SynthDigits(sc)
		if err != nil {
			return nil, nil, err
		}
		sc = dataset.DefaultSynthConfig(cfg.TestN, cfg.Seed+1)
		sc.Size = cfg.ImageSize
		testDS, err = dataset.SynthDigits(sc)
		if err != nil {
			return nil, nil, err
		}
	}
	trainDS.Normalize()
	testDS.Normalize()
	return trainDS, testDS, nil
}
