package core

import (
	"fmt"
	"strconv"

	"snnsec/internal/modelio"
	"snnsec/internal/nn"
)

// BuildFromCheckpoint reconstructs a trained classifier from checkpoint
// metadata — the same deterministic constructors that produced it, then
// Apply — and returns it together with the per-sample input shape
// ([1,H,W]) the model expects. It is shared by the attack CLI and the
// serve model loader, which must agree on how a checkpoint maps back to
// a network.
func BuildFromCheckpoint(s Scale, m *modelio.Model) (nn.Classifier, []int, error) {
	sample := []int{1, s.Net.ImageSize, s.Net.ImageSize}
	switch m.Meta["model"] {
	case "cnn":
		cnn, err := NewLeNet5CNN(s.Net)
		if err != nil {
			return nil, nil, err
		}
		if err := m.Apply(cnn.Params()); err != nil {
			return nil, nil, err
		}
		return cnn, sample, nil
	case "snn":
		vth, err := strconv.ParseFloat(m.Meta["vth"], 64)
		if err != nil {
			return nil, nil, fmt.Errorf("checkpoint lacks vth: %w", err)
		}
		T, err := strconv.Atoi(m.Meta["T"])
		if err != nil {
			return nil, nil, fmt.Errorf("checkpoint lacks T: %w", err)
		}
		net, err := NewSpikingLeNet5(s.Net, vth, T, SNNOptions{})
		if err != nil {
			return nil, nil, err
		}
		if err := m.Apply(net.Params()); err != nil {
			return nil, nil, err
		}
		return net, sample, nil
	default:
		return nil, nil, fmt.Errorf("checkpoint has unknown model kind %q", m.Meta["model"])
	}
}
