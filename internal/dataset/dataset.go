// Package dataset provides the image-classification data the experiments
// run on. The primary source is SynthDigits, a fully deterministic
// synthetic 10-class digit generator standing in for MNIST (the module is
// offline; see DESIGN.md for why the substitution preserves the paper's
// phenomena). When the real MNIST IDX files are available on disk, LoadMNIST
// reads them instead, recovering the paper's exact setting.
package dataset

import (
	"fmt"
	"math/rand/v2"

	"snnsec/internal/tensor"
)

// MNIST normalisation constants, used by the paper's software stack
// (torchvision) and adopted here so ε budgets are comparable.
const (
	MNISTMean = 0.1307
	MNISTStd  = 0.3081
)

// Dataset is a labelled set of single-channel images.
type Dataset struct {
	// X has shape [N, 1, H, W]. Values are raw intensities in [0, 1]
	// until Normalize is called.
	X *tensor.Tensor
	// Y holds the class label of each image.
	Y []int
	// Normalized records whether X is in normalised units.
	Normalized bool
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.Y) }

// NumClasses returns the number of distinct labels (max label + 1).
func (d *Dataset) NumClasses() int {
	m := 0
	for _, y := range d.Y {
		if y+1 > m {
			m = y + 1
		}
	}
	return m
}

// ImageSize returns the spatial size (H == W is not required; both are
// returned).
func (d *Dataset) ImageSize() (h, w int) { return d.X.Dim(2), d.X.Dim(3) }

// Normalize converts raw [0,1] intensities to MNIST-normalised units
// (x − mean)/std in place. It is idempotent.
func (d *Dataset) Normalize() {
	if d.Normalized {
		return
	}
	for i, v := range d.X.Data() {
		d.X.Data()[i] = (v - MNISTMean) / MNISTStd
	}
	d.Normalized = true
}

// Bounds returns the valid pixel range in the dataset's current units:
// [0,1] raw, or the normalised image of that interval. Attacks clip
// adversarial examples to these bounds, as Foolbox does.
func (d *Dataset) Bounds() (lo, hi float64) {
	if d.Normalized {
		return (0 - MNISTMean) / MNISTStd, (1 - MNISTMean) / MNISTStd
	}
	return 0, 1
}

// Subset returns a dataset view containing samples [from, to).
func (d *Dataset) Subset(from, to int) *Dataset {
	if from < 0 || to > d.Len() || from >= to {
		panic(fmt.Sprintf("dataset: bad subset [%d,%d) of %d", from, to, d.Len()))
	}
	n := to - from
	h, w := d.ImageSize()
	x := tensor.New(n, 1, h, w)
	copy(x.Data(), d.X.Data()[from*h*w:to*h*w])
	y := append([]int(nil), d.Y[from:to]...)
	return &Dataset{X: x, Y: y, Normalized: d.Normalized}
}

// Shuffle permutes the samples in place using r.
func (d *Dataset) Shuffle(r *rand.Rand) {
	h, w := d.ImageSize()
	stride := h * w
	data := d.X.Data()
	tmp := make([]float64, stride)
	for i := d.Len() - 1; i > 0; i-- {
		j := r.IntN(i + 1)
		if i == j {
			continue
		}
		copy(tmp, data[i*stride:(i+1)*stride])
		copy(data[i*stride:(i+1)*stride], data[j*stride:(j+1)*stride])
		copy(data[j*stride:(j+1)*stride], tmp)
		d.Y[i], d.Y[j] = d.Y[j], d.Y[i]
	}
}

// Batch holds one minibatch.
type Batch struct {
	X *tensor.Tensor // [B, 1, H, W]
	Y []int
}

// Batches splits the dataset into consecutive minibatches of at most size.
func (d *Dataset) Batches(size int) []Batch {
	if size <= 0 {
		panic(fmt.Sprintf("dataset: batch size %d", size))
	}
	var out []Batch
	h, w := d.ImageSize()
	stride := h * w
	for from := 0; from < d.Len(); from += size {
		to := from + size
		if to > d.Len() {
			to = d.Len()
		}
		n := to - from
		x := tensor.New(n, 1, h, w)
		copy(x.Data(), d.X.Data()[from*stride:to*stride])
		out = append(out, Batch{X: x, Y: append([]int(nil), d.Y[from:to]...)})
	}
	return out
}

// ClassCounts returns a histogram of labels.
func (d *Dataset) ClassCounts() []int {
	counts := make([]int, d.NumClasses())
	for _, y := range d.Y {
		counts[y]++
	}
	return counts
}
