package dataset

import (
	"math"
	"path/filepath"
	"testing"
	"testing/quick"

	"snnsec/internal/tensor"
)

func mustSynth(t *testing.T, n int, seed uint64) *Dataset {
	t.Helper()
	d, err := SynthDigits(DefaultSynthConfig(n, seed))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestSynthDigitsBasics(t *testing.T) {
	d := mustSynth(t, 50, 1)
	if d.Len() != 50 {
		t.Fatalf("Len = %d", d.Len())
	}
	if d.NumClasses() != 10 {
		t.Errorf("NumClasses = %d", d.NumClasses())
	}
	h, w := d.ImageSize()
	if h != 16 || w != 16 {
		t.Errorf("ImageSize = %dx%d", h, w)
	}
	for _, v := range d.X.Data() {
		if v < 0 || v > 1 {
			t.Fatalf("raw pixel %v out of [0,1]", v)
		}
	}
}

func TestSynthDigitsBalancedClasses(t *testing.T) {
	d := mustSynth(t, 100, 2)
	for c, n := range d.ClassCounts() {
		if n != 10 {
			t.Errorf("class %d count = %d, want 10", c, n)
		}
	}
}

func TestSynthDigitsDeterministic(t *testing.T) {
	a := mustSynth(t, 30, 7)
	b := mustSynth(t, 30, 7)
	if !a.X.AllClose(b.X, 0) {
		t.Error("same seed produced different images")
	}
	c := mustSynth(t, 30, 8)
	if a.X.AllClose(c.X, 0) {
		t.Error("different seeds produced identical images")
	}
}

func TestSynthDigitsHaveInk(t *testing.T) {
	d := mustSynth(t, 20, 3)
	h, w := d.ImageSize()
	for i := 0; i < d.Len(); i++ {
		img := d.X.Data()[i*h*w : (i+1)*h*w]
		var s float64
		for _, v := range img {
			s += v
		}
		if s < 5 {
			t.Errorf("sample %d nearly blank (ink sum %v)", i, s)
		}
	}
}

func TestSynthDigitsClassesDiffer(t *testing.T) {
	// Mean images of different digits must be distinguishable.
	cfg := DefaultSynthConfig(200, 4)
	d, err := SynthDigits(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h, w := d.ImageSize()
	means := make([][]float64, 10)
	for c := range means {
		means[c] = make([]float64, h*w)
	}
	counts := make([]int, 10)
	for i := 0; i < d.Len(); i++ {
		c := d.Y[i]
		counts[c]++
		img := d.X.Data()[i*h*w : (i+1)*h*w]
		for j, v := range img {
			means[c][j] += v
		}
	}
	for c := range means {
		for j := range means[c] {
			means[c][j] /= float64(counts[c])
		}
	}
	dist := func(a, b []float64) float64 {
		var s float64
		for i := range a {
			s += (a[i] - b[i]) * (a[i] - b[i])
		}
		return math.Sqrt(s)
	}
	if d01 := dist(means[0], means[1]); d01 < 1 {
		t.Errorf("digits 0 and 1 mean images too close: %v", d01)
	}
	if d38 := dist(means[3], means[8]); d38 < 0.3 {
		t.Errorf("digits 3 and 8 mean images too close: %v", d38)
	}
}

func TestSynthConfigValidation(t *testing.T) {
	bad := DefaultSynthConfig(10, 1)
	bad.Size = 4
	if _, err := SynthDigits(bad); err == nil {
		t.Error("size 4 accepted")
	}
	bad = DefaultSynthConfig(0, 1)
	if _, err := SynthDigits(bad); err == nil {
		t.Error("N=0 accepted")
	}
	bad = DefaultSynthConfig(10, 1)
	bad.NoiseStd = -1
	if _, err := SynthDigits(bad); err == nil {
		t.Error("negative noise accepted")
	}
}

func TestNormalizeAndBounds(t *testing.T) {
	d := mustSynth(t, 20, 5)
	lo, hi := d.Bounds()
	if lo != 0 || hi != 1 {
		t.Errorf("raw bounds = %v, %v", lo, hi)
	}
	d.Normalize()
	lo, hi = d.Bounds()
	wantLo := (0 - MNISTMean) / MNISTStd
	wantHi := (1 - MNISTMean) / MNISTStd
	if math.Abs(lo-wantLo) > 1e-12 || math.Abs(hi-wantHi) > 1e-12 {
		t.Errorf("normalised bounds = %v, %v, want %v, %v", lo, hi, wantLo, wantHi)
	}
	for _, v := range d.X.Data() {
		if v < lo-1e-9 || v > hi+1e-9 {
			t.Fatalf("normalised pixel %v out of [%v,%v]", v, lo, hi)
		}
	}
	// Idempotent.
	before := d.X.Clone()
	d.Normalize()
	if !d.X.AllClose(before, 0) {
		t.Error("Normalize is not idempotent")
	}
}

func TestSubset(t *testing.T) {
	d := mustSynth(t, 30, 6)
	s := d.Subset(10, 20)
	if s.Len() != 10 {
		t.Fatalf("subset len = %d", s.Len())
	}
	if s.Y[0] != d.Y[10] {
		t.Error("subset labels misaligned")
	}
	if !s.X.Slice(0).AllClose(d.X.Slice(10), 0) {
		t.Error("subset images misaligned")
	}
	// Independence from parent.
	s.X.Data()[0] = 99
	if d.X.Slice(10).Data()[0] == 99 {
		t.Error("subset shares storage")
	}
}

func TestSubsetBadRangePanics(t *testing.T) {
	d := mustSynth(t, 10, 6)
	defer func() {
		if recover() == nil {
			t.Fatal("bad subset did not panic")
		}
	}()
	d.Subset(5, 3)
}

func TestShufflePreservesPairs(t *testing.T) {
	d := mustSynth(t, 40, 9)
	// Fingerprint: per-sample ink sum must follow its label through the
	// shuffle.
	h, w := d.ImageSize()
	sum := func(ds *Dataset, i int) float64 {
		var s float64
		for _, v := range ds.X.Data()[i*h*w : (i+1)*h*w] {
			s += v
		}
		return s
	}
	type pair struct {
		label int
		ink   float64
	}
	before := map[pair]int{}
	for i := 0; i < d.Len(); i++ {
		before[pair{d.Y[i], math.Round(sum(d, i) * 1e6)}]++
	}
	d.Shuffle(tensor.NewRand(1, 1))
	after := map[pair]int{}
	for i := 0; i < d.Len(); i++ {
		after[pair{d.Y[i], math.Round(sum(d, i) * 1e6)}]++
	}
	if len(before) != len(after) {
		t.Fatal("shuffle changed the multiset of samples")
	}
	for k, v := range before {
		if after[k] != v {
			t.Fatal("shuffle broke image-label pairing")
		}
	}
}

func TestBatches(t *testing.T) {
	d := mustSynth(t, 25, 10)
	bs := d.Batches(8)
	if len(bs) != 4 {
		t.Fatalf("batch count = %d, want 4", len(bs))
	}
	if bs[3].X.Dim(0) != 1 {
		t.Errorf("last batch size = %d, want 1", bs[3].X.Dim(0))
	}
	total := 0
	for _, b := range bs {
		if b.X.Dim(0) != len(b.Y) {
			t.Fatal("batch X/Y size mismatch")
		}
		total += len(b.Y)
	}
	if total != 25 {
		t.Errorf("batches cover %d samples, want 25", total)
	}
}

func TestBatchesBadSizePanics(t *testing.T) {
	d := mustSynth(t, 5, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("batch size 0 did not panic")
		}
	}()
	d.Batches(0)
}

func TestIDXRoundTrip(t *testing.T) {
	dir := t.TempDir()
	d := mustSynth(t, 20, 11)
	imgs := filepath.Join(dir, "imgs")
	lbls := filepath.Join(dir, "lbls")
	if err := WriteIDX(d, imgs, lbls); err != nil {
		t.Fatal(err)
	}
	got, err := LoadMNIST(imgs, lbls)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != d.Len() {
		t.Fatalf("round-trip len = %d", got.Len())
	}
	for i := range got.Y {
		if got.Y[i] != d.Y[i] {
			t.Fatalf("label %d changed", i)
		}
	}
	// Byte quantisation loses at most 1/255 ≈ 0.004 per pixel.
	if !got.X.AllClose(d.X, 0.5/255+1e-9) {
		t.Error("round-trip images differ beyond quantisation")
	}
}

func TestLoadMNISTMissingFile(t *testing.T) {
	if _, err := LoadMNIST("/nonexistent/a", "/nonexistent/b"); err == nil {
		t.Error("missing file did not error")
	}
}

func TestGlyphFieldProperties(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRand(seed, 21)
		d := int(seed % 10)
		gx := r.Float64()*10 - 2
		gy := r.Float64()*12 - 2
		v := glyphField(d, gx, gy)
		return v >= 0 && v <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
	// Outside the glyph box the field is zero.
	if glyphField(0, -3, -3) != 0 || glyphField(0, 100, 0) != 0 {
		t.Error("field non-zero far outside glyph")
	}
}
