package dataset

import (
	"fmt"
	"io"
	"math"
	"math/rand/v2"

	"snnsec/internal/stream"
)

// EventStreamConfig parameterises the synthetic moving-glyph event
// emitter: the event-camera analogue of SynthDigits, reusing the same
// glyph templates so the stock digit checkpoints can label its windows.
type EventStreamConfig struct {
	// Size is the square sensor side (default 16, matching SynthDigits).
	Size int
	// Labels is the digit sequence shown by the stream, DwellUS each.
	Labels []int
	// DwellUS is how long each digit stays on screen (default 20ms).
	DwellUS int64
	// TickUS is the sampling tick: each tick Bernoulli-samples every
	// pixel against the glyph intensity (default 1ms).
	TickUS int64
	// Rate is the per-tick spike probability on full-intensity ink
	// (default 0.5).
	Rate float64
	// Drift slides the glyph through the canvas by this many pixels over
	// one dwell, in a per-dwell pseudo-random direction.
	Drift float64
	// Burst modulates the rate sinusoidally by ±Burst (0 ≤ Burst < 1),
	// emulating bursty sensors; 0 disables.
	Burst float64
	// BurstPeriodUS is the burst modulation period (default DwellUS/4).
	BurstPeriodUS int64
	// Noise is the per-tick probability of one spurious event at a
	// uniformly random pixel with random polarity.
	Noise float64
	// Seed pair for the deterministic generator.
	Seed1, Seed2 uint64
}

// DefaultEventStreamConfig returns the harness configuration: a 16×16
// sensor with mild drift, bursts and noise.
func DefaultEventStreamConfig(labels []int, seed uint64) EventStreamConfig {
	return EventStreamConfig{
		Size:    16,
		Labels:  labels,
		DwellUS: 20_000,
		TickUS:  1_000,
		Rate:    0.5,
		Drift:   1.5,
		Burst:   0.3,
		Noise:   0.2,
		Seed1:   seed,
		Seed2:   0x5eed,
	}
}

func (c *EventStreamConfig) validate() error {
	if c.Size < 8 {
		return fmt.Errorf("dataset: event sensor size %d too small (min 8)", c.Size)
	}
	if len(c.Labels) == 0 {
		return fmt.Errorf("dataset: event stream needs at least one label")
	}
	for _, d := range c.Labels {
		if d < 0 || d > 9 {
			return fmt.Errorf("dataset: event stream label %d outside 0..9", d)
		}
	}
	if c.DwellUS <= 0 || c.TickUS <= 0 || c.TickUS > c.DwellUS {
		return fmt.Errorf("dataset: event stream needs 0 < tick (%dus) <= dwell (%dus)", c.TickUS, c.DwellUS)
	}
	if c.Rate < 0 || c.Rate > 1 {
		return fmt.Errorf("dataset: event rate %g outside [0,1]", c.Rate)
	}
	if c.Burst < 0 || c.Burst >= 1 {
		return fmt.Errorf("dataset: burst depth %g outside [0,1)", c.Burst)
	}
	if c.BurstPeriodUS == 0 {
		c.BurstPeriodUS = c.DwellUS / 4
	}
	if c.BurstPeriodUS <= 0 {
		return fmt.Errorf("dataset: burst period must be positive, got %dus", c.BurstPeriodUS)
	}
	if c.Noise < 0 || c.Noise > 1 {
		return fmt.Errorf("dataset: noise probability %g outside [0,1]", c.Noise)
	}
	if c.Drift < 0 {
		return fmt.Errorf("dataset: drift %g must be non-negative", c.Drift)
	}
	return nil
}

// GlyphEventStream is a deterministic stream.EventSource: a glyph per
// dwell period, Bernoulli-sampled into ON events each tick, drifting
// across the sensor, with optional burst modulation and salt-and-pepper
// noise events. The generator consumes a fixed number of random draws
// per tick (one per pixel plus three for noise), so the event sequence
// depends only on the configuration — never on read-buffer sizes.
type GlyphEventStream struct {
	cfg     EventStreamConfig
	rng     *rand.Rand
	tick    int64
	ticks   int64 // total ticks in the stream
	pending []stream.Event
}

// NewGlyphEventStream validates cfg (filling in defaults) and returns
// the emitter positioned at time zero.
func NewGlyphEventStream(cfg EventStreamConfig) (*GlyphEventStream, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &GlyphEventStream{
		cfg:   cfg,
		rng:   rand.New(rand.NewPCG(cfg.Seed1, cfg.Seed2)),
		ticks: int64(len(cfg.Labels)) * cfg.DwellUS / cfg.TickUS,
	}, nil
}

// EndUS returns the stream's total duration: one dwell per label.
func (g *GlyphEventStream) EndUS() int64 { return int64(len(g.cfg.Labels)) * g.cfg.DwellUS }

// LabelAt returns the digit on screen at timeUS (the last one at or past
// the end).
func (g *GlyphEventStream) LabelAt(timeUS int64) int {
	i := timeUS / g.cfg.DwellUS
	if i < 0 {
		i = 0
	}
	if i >= int64(len(g.cfg.Labels)) {
		i = int64(len(g.cfg.Labels)) - 1
	}
	return g.cfg.Labels[i]
}

// Read fills buf with the next events in non-decreasing time order,
// returning io.EOF once the final dwell has elapsed.
func (g *GlyphEventStream) Read(buf []stream.Event) (int, error) {
	for len(g.pending) == 0 {
		if g.tick >= g.ticks {
			return 0, io.EOF
		}
		g.emitTick()
		g.tick++
	}
	n := copy(buf, g.pending)
	g.pending = g.pending[n:]
	return n, nil
}

// emitTick Bernoulli-samples every pixel of the current glyph pose into
// pending, then the noise draw. Draw count per tick is fixed: Size²
// pixel draws plus three noise draws.
func (g *GlyphEventStream) emitTick() {
	c := &g.cfg
	now := g.tick * c.TickUS
	dwell := now / c.DwellUS
	d := c.Labels[dwell]
	phase := float64(now-dwell*c.DwellUS) / float64(c.DwellUS) // ∈ [0,1)

	// Per-dwell drift direction from the golden-ratio sequence: cheap,
	// well-spread, and independent of the rng stream.
	const phi = 0.6180339887498949
	angle := 2 * math.Pi * math.Mod(float64(dwell+1)*phi, 1)
	ox := c.Drift * (phase - 0.5) * math.Cos(angle)
	oy := c.Drift * (phase - 0.5) * math.Sin(angle)

	rate := c.Rate
	if c.Burst > 0 {
		rate *= 1 + c.Burst*math.Sin(2*math.Pi*float64(now)/float64(c.BurstPeriodUS))
	}

	// Same glyph-box mapping as renderDigit: ~70% of the canvas.
	size := float64(c.Size)
	gw, gh := float64(glyphW), float64(glyphH)
	fit := 0.7 * size / math.Max(gw, gh)
	cx, cy := size/2+ox, size/2+oy

	g.pending = g.pending[:0]
	for py := 0; py < c.Size; py++ {
		for px := 0; px < c.Size; px++ {
			u := g.rng.Float64()
			gx := (float64(px)+0.5-cx)/fit + gw/2
			gy := (float64(py)+0.5-cy)/fit + gh/2
			p := rate * glyphField(d, gx-0.5, gy-0.5)
			if p > 1 {
				p = 1
			}
			if u < p {
				g.pending = append(g.pending, stream.Event{TimeUS: now, X: px, Y: py, Pol: 1})
			}
		}
	}
	u := g.rng.Float64()
	pix := g.rng.IntN(c.Size * c.Size)
	pol := 1 - 2*g.rng.IntN(2)
	if u < c.Noise {
		g.pending = append(g.pending, stream.Event{TimeUS: now, X: pix % c.Size, Y: pix / c.Size, Pol: pol})
	}
}
