package dataset

import (
	"io"
	"testing"

	"snnsec/internal/stream"
)

func drainEvents(t *testing.T, g *GlyphEventStream, bufLen int) []stream.Event {
	t.Helper()
	var all []stream.Event
	buf := make([]stream.Event, bufLen)
	for {
		n, err := g.Read(buf)
		all = append(all, buf[:n]...)
		if err == io.EOF {
			if n != 0 {
				t.Fatal("EOF with a non-zero count")
			}
			return all
		}
		if err != nil {
			t.Fatalf("Read: %v", err)
		}
	}
}

// TestGlyphEventStreamDeterministic pins the reproducibility contract:
// the event sequence depends only on the configuration, not on the
// read-buffer size, and reseeding reproduces it exactly.
func TestGlyphEventStreamDeterministic(t *testing.T) {
	cfg := DefaultEventStreamConfig([]int{3, 7}, 42)
	a, err := NewGlyphEventStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewGlyphEventStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	evA := drainEvents(t, a, 7) // deliberately awkward buffer size
	evB := drainEvents(t, b, 1024)
	if len(evA) == 0 {
		t.Fatal("stream produced no events")
	}
	if len(evA) != len(evB) {
		t.Fatalf("event counts differ: %d vs %d", len(evA), len(evB))
	}
	for i := range evA {
		if evA[i] != evB[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, evA[i], evB[i])
		}
	}
}

// TestGlyphEventStreamWellFormed pins the EventSource contract the
// binner enforces: non-decreasing time, in-range coordinates, ±1
// polarity, and an end time matching EndUS.
func TestGlyphEventStreamWellFormed(t *testing.T) {
	cfg := DefaultEventStreamConfig([]int{0, 1, 2}, 7)
	g, err := NewGlyphEventStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g.EndUS() != 3*cfg.DwellUS {
		t.Fatalf("EndUS %d, want %d", g.EndUS(), 3*cfg.DwellUS)
	}
	last := int64(-1)
	for _, ev := range drainEvents(t, g, 256) {
		if ev.TimeUS < last {
			t.Fatalf("time went backwards: %d after %d", ev.TimeUS, last)
		}
		last = ev.TimeUS
		if ev.X < 0 || ev.X >= cfg.Size || ev.Y < 0 || ev.Y >= cfg.Size {
			t.Fatalf("event off-sensor: %+v", ev)
		}
		if ev.Pol != 1 && ev.Pol != -1 {
			t.Fatalf("bad polarity: %+v", ev)
		}
	}
	if last >= g.EndUS() {
		t.Fatalf("event at %dus at or past EndUS %d", last, g.EndUS())
	}
}

// TestGlyphEventStreamSignal pins that the stream actually carries the
// glyph: with noise off, every event must land on a pixel where the
// (possibly drifted) glyph has ink — i.e. inside the glyph's bounding
// region — and each dwell produces substantially more events than
// silence.
func TestGlyphEventStreamSignal(t *testing.T) {
	cfg := DefaultEventStreamConfig([]int{8}, 5)
	cfg.Noise = 0
	cfg.Drift = 0
	g, err := NewGlyphEventStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	evs := drainEvents(t, g, 256)
	ticks := cfg.DwellUS / cfg.TickUS
	if int64(len(evs)) < ticks { // digit 8 has ~20 ink pixels at rate 0.5
		t.Fatalf("only %d events over %d ticks — no glyph signal", len(evs), ticks)
	}
	// With no drift the static pose means ink occupies a fixed pixel set;
	// every event must be on it. Rebuild the set via the same field.
	for _, ev := range evs {
		size := float64(cfg.Size)
		fit := 0.7 * size / 7.0
		gx := (float64(ev.X)+0.5-size/2)/fit + 2.5
		gy := (float64(ev.Y)+0.5-size/2)/fit + 3.5
		if glyphField(8, gx-0.5, gy-0.5) <= 0 {
			t.Fatalf("event %+v off the glyph ink", ev)
		}
	}
}

// TestGlyphEventStreamLabelAt pins the label schedule.
func TestGlyphEventStreamLabelAt(t *testing.T) {
	cfg := DefaultEventStreamConfig([]int{4, 9}, 1)
	g, err := NewGlyphEventStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g.LabelAt(0) != 4 || g.LabelAt(cfg.DwellUS-1) != 4 {
		t.Fatal("first dwell should be labelled 4")
	}
	if g.LabelAt(cfg.DwellUS) != 9 || g.LabelAt(10*cfg.DwellUS) != 9 {
		t.Fatal("second dwell (and past-end clamp) should be labelled 9")
	}
}

// TestGlyphEventStreamRejects pins config validation.
func TestGlyphEventStreamRejects(t *testing.T) {
	bad := []EventStreamConfig{
		{Size: 4, Labels: []int{1}, DwellUS: 10, TickUS: 1, Rate: 0.5},
		{Size: 16, Labels: nil, DwellUS: 10, TickUS: 1, Rate: 0.5},
		{Size: 16, Labels: []int{11}, DwellUS: 10, TickUS: 1, Rate: 0.5},
		{Size: 16, Labels: []int{1}, DwellUS: 10, TickUS: 20, Rate: 0.5},
		{Size: 16, Labels: []int{1}, DwellUS: 10, TickUS: 1, Rate: 1.5},
		{Size: 16, Labels: []int{1}, DwellUS: 10, TickUS: 1, Rate: 0.5, Burst: 1},
		{Size: 16, Labels: []int{1}, DwellUS: 10, TickUS: 1, Rate: 0.5, Noise: 2},
	}
	for i, cfg := range bad {
		if _, err := NewGlyphEventStream(cfg); err == nil {
			t.Fatalf("config %d should have been rejected", i)
		}
	}
}
