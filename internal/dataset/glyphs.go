package dataset

import "math"

// glyphRows are 5×7 bitmap templates for the ten digits, in the style of a
// classic character generator ROM. '#' marks ink. They are the seed shapes
// for the SynthDigits generator, which perturbs them with random affine
// transforms, stroke thickness and noise so that the classification task
// is non-trivial but learnable by a small network — the role MNIST plays
// in the paper.
var glyphRows = [10][7]string{
	{ // 0
		" ### ",
		"#   #",
		"#  ##",
		"# # #",
		"##  #",
		"#   #",
		" ### ",
	},
	{ // 1
		"  #  ",
		" ##  ",
		"  #  ",
		"  #  ",
		"  #  ",
		"  #  ",
		" ### ",
	},
	{ // 2
		" ### ",
		"#   #",
		"    #",
		"   # ",
		"  #  ",
		" #   ",
		"#####",
	},
	{ // 3
		" ### ",
		"#   #",
		"    #",
		"  ## ",
		"    #",
		"#   #",
		" ### ",
	},
	{ // 4
		"   # ",
		"  ## ",
		" # # ",
		"#  # ",
		"#####",
		"   # ",
		"   # ",
	},
	{ // 5
		"#####",
		"#    ",
		"#### ",
		"    #",
		"    #",
		"#   #",
		" ### ",
	},
	{ // 6
		" ### ",
		"#    ",
		"#    ",
		"#### ",
		"#   #",
		"#   #",
		" ### ",
	},
	{ // 7
		"#####",
		"    #",
		"   # ",
		"  #  ",
		"  #  ",
		"  #  ",
		"  #  ",
	},
	{ // 8
		" ### ",
		"#   #",
		"#   #",
		" ### ",
		"#   #",
		"#   #",
		" ### ",
	},
	{ // 9
		" ### ",
		"#   #",
		"#   #",
		" ####",
		"    #",
		"    #",
		" ### ",
	},
}

const (
	glyphW = 5
	glyphH = 7
)

// glyphField returns the continuous-intensity value of digit d at glyph
// coordinates (gx, gy) ∈ [0, glyphW) × [0, glyphH), with bilinear
// interpolation between cells so that rotated/scaled samples are
// anti-aliased. Outside the glyph box the field is zero.
func glyphField(d int, gx, gy float64) float64 {
	x0 := int(math.Floor(gx))
	y0 := int(math.Floor(gy))
	fx := gx - float64(x0)
	fy := gy - float64(y0)
	v := func(x, y int) float64 {
		if x < 0 || x >= glyphW || y < 0 || y >= glyphH {
			return 0
		}
		if glyphRows[d][y][x] == '#' {
			return 1
		}
		return 0
	}
	return v(x0, y0)*(1-fx)*(1-fy) +
		v(x0+1, y0)*fx*(1-fy) +
		v(x0, y0+1)*(1-fx)*fy +
		v(x0+1, y0+1)*fx*fy
}
