package dataset

import (
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"snnsec/internal/tensor"
)

// IDX magic numbers (big-endian), per the original LeCun format.
const (
	idxMagicImages = 0x00000803 // unsigned byte, 3 dimensions
	idxMagicLabels = 0x00000801 // unsigned byte, 1 dimension
)

// MNISTDirEnv is the environment variable naming a directory containing
// the MNIST IDX files (train-images-idx3-ubyte etc., optionally .gz).
// When set, experiment presets load real MNIST instead of SynthDigits.
const MNISTDirEnv = "SNNSEC_MNIST_DIR"

// openMaybeGzip opens path, or path+".gz" with transparent decompression.
func openMaybeGzip(path string) (io.ReadCloser, error) {
	if f, err := os.Open(path); err == nil {
		return f, nil
	}
	f, err := os.Open(path + ".gz")
	if err != nil {
		return nil, fmt.Errorf("dataset: cannot open %s or %s.gz", path, path)
	}
	zr, err := gzip.NewReader(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("dataset: %s.gz: %w", path, err)
	}
	return &gzipFile{zr: zr, f: f}, nil
}

type gzipFile struct {
	zr *gzip.Reader
	f  *os.File
}

func (g *gzipFile) Read(p []byte) (int, error) { return g.zr.Read(p) }
func (g *gzipFile) Close() error {
	g.zr.Close()
	return g.f.Close()
}

// readIDXImages parses an idx3-ubyte image file into raw [0,1] floats.
func readIDXImages(rd io.Reader) (data []float64, n, h, w int, err error) {
	var hdr [4]uint32
	for i := range hdr {
		if err = binary.Read(rd, binary.BigEndian, &hdr[i]); err != nil {
			return nil, 0, 0, 0, fmt.Errorf("dataset: short IDX image header: %w", err)
		}
	}
	if hdr[0] != idxMagicImages {
		return nil, 0, 0, 0, fmt.Errorf("dataset: bad IDX image magic %#x", hdr[0])
	}
	n, h, w = int(hdr[1]), int(hdr[2]), int(hdr[3])
	buf := make([]byte, n*h*w)
	if _, err = io.ReadFull(rd, buf); err != nil {
		return nil, 0, 0, 0, fmt.Errorf("dataset: short IDX image body: %w", err)
	}
	data = make([]float64, len(buf))
	for i, b := range buf {
		data[i] = float64(b) / 255
	}
	return data, n, h, w, nil
}

// readIDXLabels parses an idx1-ubyte label file.
func readIDXLabels(rd io.Reader) ([]int, error) {
	var hdr [2]uint32
	for i := range hdr {
		if err := binary.Read(rd, binary.BigEndian, &hdr[i]); err != nil {
			return nil, fmt.Errorf("dataset: short IDX label header: %w", err)
		}
	}
	if hdr[0] != idxMagicLabels {
		return nil, fmt.Errorf("dataset: bad IDX label magic %#x", hdr[0])
	}
	buf := make([]byte, hdr[1])
	if _, err := io.ReadFull(rd, buf); err != nil {
		return nil, fmt.Errorf("dataset: short IDX label body: %w", err)
	}
	labels := make([]int, len(buf))
	for i, b := range buf {
		labels[i] = int(b)
	}
	return labels, nil
}

// LoadMNIST reads the classic IDX pair (images, labels) from the given
// paths (gzipped variants are found automatically) and returns a raw
// [0,1] dataset.
func LoadMNIST(imagesPath, labelsPath string) (*Dataset, error) {
	imf, err := openMaybeGzip(imagesPath)
	if err != nil {
		return nil, err
	}
	defer imf.Close()
	data, n, h, w, err := readIDXImages(imf)
	if err != nil {
		return nil, err
	}
	lbf, err := openMaybeGzip(labelsPath)
	if err != nil {
		return nil, err
	}
	defer lbf.Close()
	labels, err := readIDXLabels(lbf)
	if err != nil {
		return nil, err
	}
	if len(labels) != n {
		return nil, fmt.Errorf("dataset: %d images but %d labels", n, len(labels))
	}
	return &Dataset{X: tensor.FromSlice(data, n, 1, h, w), Y: labels}, nil
}

// LoadMNISTDir loads the train or test split from a directory holding the
// standard file names.
func LoadMNISTDir(dir string, train bool) (*Dataset, error) {
	if train {
		return LoadMNIST(
			filepath.Join(dir, "train-images-idx3-ubyte"),
			filepath.Join(dir, "train-labels-idx1-ubyte"))
	}
	return LoadMNIST(
		filepath.Join(dir, "t10k-images-idx3-ubyte"),
		filepath.Join(dir, "t10k-labels-idx1-ubyte"))
}

// WriteIDX writes a dataset back out as an IDX image/label pair (raw
// intensities scaled to bytes). Primarily used by tests to round-trip the
// loader and by users who want to snapshot a synthetic dataset.
func WriteIDX(d *Dataset, imagesPath, labelsPath string) error {
	h, w := d.ImageSize()
	imf, err := os.Create(imagesPath)
	if err != nil {
		return err
	}
	defer imf.Close()
	hdr := []uint32{idxMagicImages, uint32(d.Len()), uint32(h), uint32(w)}
	for _, v := range hdr {
		if err := binary.Write(imf, binary.BigEndian, v); err != nil {
			return err
		}
	}
	buf := make([]byte, d.Len()*h*w)
	for i, v := range d.X.Data() {
		if v < 0 {
			v = 0
		} else if v > 1 {
			v = 1
		}
		buf[i] = byte(v*255 + 0.5)
	}
	if _, err := imf.Write(buf); err != nil {
		return err
	}
	lbf, err := os.Create(labelsPath)
	if err != nil {
		return err
	}
	defer lbf.Close()
	if err := binary.Write(lbf, binary.BigEndian, uint32(idxMagicLabels)); err != nil {
		return err
	}
	if err := binary.Write(lbf, binary.BigEndian, uint32(d.Len())); err != nil {
		return err
	}
	lb := make([]byte, d.Len())
	for i, y := range d.Y {
		lb[i] = byte(y)
	}
	_, err = lbf.Write(lb)
	return err
}
