package dataset

import (
	"fmt"
	"math"
	"math/rand/v2"

	"snnsec/internal/tensor"
)

// SynthConfig parameterises the synthetic digit generator.
type SynthConfig struct {
	// Size is the square image side (default 16; MNIST uses 28).
	Size int
	// N is the number of samples to generate.
	N int
	// Seed pair for the deterministic generator.
	Seed1, Seed2 uint64
	// MaxShift is the maximum translation in pixels (default 2).
	MaxShift float64
	// MaxRotate is the maximum rotation in radians (default 0.2 ≈ 11°).
	MaxRotate float64
	// ScaleJitter is the relative scale perturbation (default 0.1).
	ScaleJitter float64
	// Thickness blurs the ink with this kernel radius in glyph cells
	// (default 0.35), emulating stroke-width variation.
	Thickness float64
	// NoiseStd is additive pixel noise before clamping (default 0.05).
	NoiseStd float64
}

// DefaultSynthConfig returns the configuration used by the experiment
// harness: 16×16 images with mild geometric jitter.
func DefaultSynthConfig(n int, seed uint64) SynthConfig {
	return SynthConfig{
		Size:        16,
		N:           n,
		Seed1:       seed,
		Seed2:       0x5eed,
		MaxShift:    1.5,
		MaxRotate:   0.2,
		ScaleJitter: 0.10,
		Thickness:   0.35,
		NoiseStd:    0.05,
	}
}

func (c *SynthConfig) validate() error {
	if c.Size < 8 {
		return fmt.Errorf("dataset: synth size %d too small (min 8)", c.Size)
	}
	if c.N <= 0 {
		return fmt.Errorf("dataset: synth N must be positive, got %d", c.N)
	}
	if c.NoiseStd < 0 || c.Thickness < 0 || c.MaxShift < 0 || c.MaxRotate < 0 || c.ScaleJitter < 0 {
		return fmt.Errorf("dataset: synth config has negative jitter")
	}
	return nil
}

// SynthDigits generates a deterministic synthetic digit dataset. Labels
// cycle 0..9 so classes are balanced. Images are raw intensities in
// [0, 1]; call Normalize for MNIST units.
func SynthDigits(cfg SynthConfig) (*Dataset, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	r := rand.New(rand.NewPCG(cfg.Seed1, cfg.Seed2))
	x := tensor.New(cfg.N, 1, cfg.Size, cfg.Size)
	y := make([]int, cfg.N)
	img := make([]float64, cfg.Size*cfg.Size)
	for i := 0; i < cfg.N; i++ {
		d := i % 10
		y[i] = d
		renderDigit(r, cfg, d, img)
		copy(x.Data()[i*len(img):(i+1)*len(img)], img)
	}
	return &Dataset{X: x, Y: y}, nil
}

// renderDigit rasterises one jittered digit into img (len Size²).
func renderDigit(r *rand.Rand, cfg SynthConfig, d int, img []float64) {
	size := float64(cfg.Size)
	// Random affine parameters.
	angle := (2*r.Float64() - 1) * cfg.MaxRotate
	scale := 1 + (2*r.Float64()-1)*cfg.ScaleJitter
	dx := (2*r.Float64() - 1) * cfg.MaxShift
	dy := (2*r.Float64() - 1) * cfg.MaxShift
	sin, cos := math.Sin(angle), math.Cos(angle)

	// The glyph box is mapped to ~70 % of the canvas.
	gw, gh := float64(glyphW), float64(glyphH)
	fit := 0.7 * size / math.Max(gw, gh) * scale
	cx, cy := size/2+dx, size/2+dy

	thick := cfg.Thickness
	for py := 0; py < cfg.Size; py++ {
		for px := 0; px < cfg.Size; px++ {
			// Inverse map pixel centre to glyph coordinates.
			ux := (float64(px) + 0.5 - cx)
			uy := (float64(py) + 0.5 - cy)
			gx := (cos*ux+sin*uy)/fit + gw/2
			gy := (-sin*ux+cos*uy)/fit + gh/2
			v := glyphField(d, gx-0.5, gy-0.5)
			if thick > 0 {
				// Cheap dilation: max over a small cross of offsets.
				for _, off := range [4][2]float64{{thick, 0}, {-thick, 0}, {0, thick}, {0, -thick}} {
					if w := glyphField(d, gx-0.5+off[0], gy-0.5+off[1]); w > v {
						v = w
					}
				}
			}
			if cfg.NoiseStd > 0 {
				v += cfg.NoiseStd * r.NormFloat64()
			}
			if v < 0 {
				v = 0
			} else if v > 1 {
				v = 1
			}
			img[py*cfg.Size+px] = v
		}
	}
}
