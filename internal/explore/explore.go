// Package explore implements the paper's contribution: the systematic
// robustness-exploration methodology of Algorithm 1. For every point of a
// (Vth, T) grid it trains a spiking network, applies the learnability
// gate (clean accuracy ≥ Ath, 70 % in the paper), and for each surviving
// point evaluates robustness against PGD across a sweep of noise budgets
// ε. Grid points are independent, so they run on a worker pool.
package explore

import (
	"fmt"
	"sync"

	"snnsec/internal/attack"
	"snnsec/internal/compute"
	"snnsec/internal/dataset"
	"snnsec/internal/snn"
	"snnsec/internal/tensor"
	"snnsec/internal/train"
)

// BuildSNN constructs a fresh spiking network for one grid point.
type BuildSNN func(vth float64, T int) (*snn.Network, error)

// Config parameterises one exploration run (Algorithm 1's inputs).
type Config struct {
	// Vths are the membrane voltage thresholds V_i, i ∈ [1, n].
	Vths []float64
	// Ts are the spiking time windows T_j, j ∈ [1, m].
	Ts []int
	// Epsilons are the adversarial noise budgets ε_k, k ∈ [1, p].
	Epsilons []float64
	// AccuracyThreshold is A_th, the learnability gate (default 0.70).
	AccuracyThreshold float64
	// Train configures the per-point training run. Its Optimizer field
	// must be nil: grid points train concurrently and optimiser state
	// (momentum, Adam moments) must not be shared — set NewOptimizer
	// instead.
	Train train.Config
	// NewOptimizer builds a fresh optimiser for each grid point. When
	// nil, each point gets Adam(1e-3).
	NewOptimizer func() train.Optimizer
	// AttackSteps is the PGD iteration count (default 10).
	AttackSteps int
	// EvalBatch is the evaluation batch size (default 32).
	EvalBatch int
	// Workers bounds the parallel grid points. The default is the CPU
	// budget: the width of the process-default compute backend (NumCPU
	// unless overridden, e.g. by the CLI's -workers flag).
	Workers int
	// KernelWorkers is the compute-backend width handed to each grid
	// worker: the tensor kernels under one grid point run on a backend of
	// this width, so total parallelism is Workers × KernelWorkers. The
	// default, max(1, budget/Workers) with budget as above, keeps that
	// product within the CPU budget — grid-level and kernel-level
	// parallelism compose without oversubscribing the machine.
	KernelWorkers int
	// Build constructs the network for a grid point.
	Build BuildSNN
	// Seed derives per-point attack generators.
	Seed uint64
}

// Validate checks the configuration and fills defaulted fields. Run and
// the per-point entry points call it internally; distributed coordinators
// call it up front to learn the grid dimensions.
func (c *Config) Validate() error {
	if len(c.Vths) == 0 || len(c.Ts) == 0 {
		return fmt.Errorf("explore: empty (Vth, T) grid")
	}
	// Zero axis values are rejected so that a zero-valued Point is an
	// unambiguous "never computed" marker in partial (checkpointed or
	// merged) results.
	for _, v := range c.Vths {
		if v <= 0 {
			return fmt.Errorf("explore: threshold Vth must be positive, got %g", v)
		}
	}
	for _, t := range c.Ts {
		if t <= 0 {
			return fmt.Errorf("explore: time window T must be positive, got %d", t)
		}
	}
	if len(c.Epsilons) == 0 {
		return fmt.Errorf("explore: no noise budgets")
	}
	if c.Build == nil {
		return fmt.Errorf("explore: no network builder")
	}
	if c.Train.Optimizer != nil {
		return fmt.Errorf("explore: Train.Optimizer would be shared across concurrent grid points; set NewOptimizer instead")
	}
	if c.AccuracyThreshold == 0 {
		c.AccuracyThreshold = 0.70
	}
	if c.AccuracyThreshold < 0 || c.AccuracyThreshold > 1 {
		return fmt.Errorf("explore: accuracy threshold %g out of [0,1]", c.AccuracyThreshold)
	}
	if c.AttackSteps <= 0 {
		c.AttackSteps = 10
	}
	if c.EvalBatch <= 0 {
		c.EvalBatch = 32
	}
	// The sweep's CPU budget is the default backend's width, so a global
	// override (the CLI's -workers flag) bounds grid-level and
	// kernel-level parallelism together. Workers is clamped to the grid
	// size: a 2×2 grid on a 16-CPU budget gets 4 workers with width-4
	// kernel backends rather than 16 workers of which 12 would idle.
	budget := compute.Default().Workers()
	if c.Workers <= 0 {
		c.Workers = budget
	}
	if points := len(c.Vths) * len(c.Ts); c.Workers > points {
		c.Workers = points
	}
	if c.KernelWorkers <= 0 {
		c.KernelWorkers = budget / c.Workers
		if c.KernelWorkers < 1 {
			c.KernelWorkers = 1
		}
	}
	return nil
}

// backend returns the bounded-width compute backend each grid worker
// executes its kernels on.
func (c *Config) backend() compute.Backend { return compute.New(c.KernelWorkers) }

// Point is the outcome at one (Vth, T) grid position.
type Point struct {
	Vth float64
	T   int
	// CleanAccuracy is the test accuracy without attack (Figure 6's
	// heat-map cell).
	CleanAccuracy float64
	// Learnable reports whether CleanAccuracy ≥ A_th; robustness is only
	// evaluated for learnable points (Algorithm 1, line 4).
	Learnable bool
	// Robustness holds robust accuracy per ε for learnable points
	// (Figures 7/8 cells; a full row of Figure 9).
	Robustness []attack.CurvePoint
	// Precision is the numerics tier (compute.Precision.Tag) the point
	// was computed at: "" for the default tier, "float32" for the fast
	// tier. Merge layers reject results from mismatched tiers.
	Precision string
	// Err records a per-point failure (e.g. diverged training); the
	// sweep continues past it.
	Err error
}

// RobustAt returns the robust accuracy at budget eps, or (0, false) when
// the point was not evaluated at it.
func (p *Point) RobustAt(eps float64) (float64, bool) {
	for _, cp := range p.Robustness {
		if cp.Eps == eps {
			return cp.RobustAccuracy, true
		}
	}
	return 0, false
}

// Result is the full grid outcome.
type Result struct {
	Vths     []float64
	Ts       []int
	Epsilons []float64
	// Points is indexed [ti*len(Vths) + vi] — T-major, matching the
	// paper's heat maps (T on the vertical axis).
	Points []Point
}

// At returns the point for the vi-th threshold and ti-th window.
func (r *Result) At(vi, ti int) *Point {
	return &r.Points[ti*len(r.Vths)+vi]
}

// NewPartialResult returns a Result with the given axes and every point
// unset (zero-valued). Distributed coordinators fill it point by point
// with Set as shards report in; because valid grids have Vth > 0 and
// T > 0, an unset point is recognisable by its zero T.
func NewPartialResult(vths []float64, ts []int, epsilons []float64) *Result {
	return &Result{
		Vths:     append([]float64(nil), vths...),
		Ts:       append([]int(nil), ts...),
		Epsilons: append([]float64(nil), epsilons...),
		Points:   make([]Point, len(vths)*len(ts)),
	}
}

// Set stores the point at grid index idx (T-major).
func (r *Result) Set(idx int, p Point) { r.Points[idx] = p }

// Computed reports whether the point at idx has been filled in.
func (r *Result) Computed(idx int) bool { return r.Points[idx].T != 0 }

// MissingIndices returns the grid indices that have not been computed —
// empty for a complete result, the remaining work-list for a partial
// (checkpoint-resumed or budget-limited) one.
func (r *Result) MissingIndices() []int {
	var out []int
	for i := range r.Points {
		if !r.Computed(i) {
			out = append(out, i)
		}
	}
	return out
}

// Lookup finds the point with the exact (vth, t), if present.
func (r *Result) Lookup(vth float64, t int) (*Point, bool) {
	for i := range r.Points {
		if r.Points[i].Vth == vth && r.Points[i].T == t {
			return &r.Points[i], true
		}
	}
	return nil, false
}

// LearnableCount returns how many grid points passed the gate.
func (r *Result) LearnableCount() int {
	n := 0
	for i := range r.Points {
		if r.Points[i].Learnable {
			n++
		}
	}
	return n
}

// TrainedPoint is one grid position after the training phase: the model
// itself is retained so robustness can be evaluated at any ε later
// without retraining (this is what lets Figures 7 and 8 share Figure 6's
// training).
type TrainedPoint struct {
	Vth           float64
	T             int
	Net           *snn.Network
	CleanAccuracy float64
	Learnable     bool
	Err           error
}

// Sweep holds the trained grid (phase 1 of Algorithm 1: lines 1-4).
type Sweep struct {
	Config Config
	Points []TrainedPoint // T-major, like Result.Points
}

// At returns the trained point for the vi-th threshold and ti-th window.
func (s *Sweep) At(vi, ti int) *TrainedPoint {
	return &s.Points[ti*len(s.Config.Vths)+vi]
}

// TrainGrid trains one network per (Vth, T) point on a worker pool and
// applies the learnability gate — lines 1-4 of Algorithm 1.
func TrainGrid(cfg Config, trainDS, testDS *dataset.Dataset) (*Sweep, error) {
	if err := (&cfg).Validate(); err != nil {
		return nil, err
	}
	sw := &Sweep{
		Config: cfg,
		Points: make([]TrainedPoint, len(cfg.Vths)*len(cfg.Ts)),
	}
	forEachPoint(cfg, func(vi, ti int, be compute.Backend) {
		idx := ti*len(cfg.Vths) + vi
		sw.Points[idx] = trainPoint(cfg, be, cfg.Vths[vi], cfg.Ts[ti], uint64(idx), trainDS, testDS)
	})
	return sw, nil
}

// AttackAll evaluates PGD robustness at each ε for every learnable point
// — lines 5-16 of Algorithm 1 — and assembles the grid Result. It can be
// called repeatedly with different budgets on the same sweep.
func (s *Sweep) AttackAll(testDS *dataset.Dataset, epsilons []float64) *Result {
	cfg := s.Config
	res := &Result{
		Vths:     append([]float64(nil), cfg.Vths...),
		Ts:       append([]int(nil), cfg.Ts...),
		Epsilons: append([]float64(nil), epsilons...),
		Points:   make([]Point, len(s.Points)),
	}
	bounds := attack.DatasetBounds(testDS)
	forEachPoint(cfg, func(vi, ti int, be compute.Backend) {
		idx := ti*len(cfg.Vths) + vi
		res.Points[idx] = attackPoint(cfg, be, idx, &s.Points[idx], testDS, epsilons, bounds)
	})
	return res
}

// attackPoint runs lines 5-16 of Algorithm 1 for one trained point. The
// PGD generator derives from (cfg.Seed, idx) alone, so the outcome does
// not depend on which worker — goroutine or process — executes it.
func attackPoint(cfg Config, be compute.Backend, idx int, tp *TrainedPoint, testDS *dataset.Dataset, epsilons []float64, bounds attack.Bounds) Point {
	pt := Point{
		Vth:           tp.Vth,
		T:             tp.T,
		CleanAccuracy: tp.CleanAccuracy,
		Learnable:     tp.Learnable,
		Precision:     compute.ActivePrecision().Tag(),
		Err:           tp.Err,
	}
	if tp.Learnable && tp.Err == nil {
		pt.Robustness = attack.CurveOn(be, tp.Net, testDS, epsilons, func(eps float64) attack.Attack {
			return attack.PGD{
				Eps:         eps,
				Steps:       cfg.AttackSteps,
				RandomStart: true,
				Rand:        tensor.NewRand(cfg.Seed+uint64(idx), 0xa77ac4),
				Bounds:      bounds,
				Backend:     be,
			}
		}, cfg.EvalBatch)
	}
	return pt
}

// ---------------------------------------------------------------------------
// Per-point entry points — the unit of distributed execution
//
// A distributed grid engine (internal/grid) runs one point at a time in a
// worker process and merges the streamed results. The contract that makes
// the merge bit-identical to the single-process Run is that every source
// of randomness under a point — the training-set shuffle, the network's
// weight initialisation and encoder stream (owned by cfg.Build), and the
// PGD start points — derives from cfg.Seed and the point's T-major grid
// index alone, never from shared or sequential state.

// TrainPointAt validates cfg and trains the idx-th grid point (T-major)
// on be — lines 3-4 of Algorithm 1 for a single point. A nil backend
// selects a backend of cfg.KernelWorkers width.
func TrainPointAt(cfg Config, be compute.Backend, idx int, trainDS, testDS *dataset.Dataset) (TrainedPoint, error) {
	if err := (&cfg).Validate(); err != nil {
		return TrainedPoint{}, err
	}
	if idx < 0 || idx >= len(cfg.Vths)*len(cfg.Ts) {
		return TrainedPoint{}, fmt.Errorf("explore: point index %d out of a %d-point grid", idx, len(cfg.Vths)*len(cfg.Ts))
	}
	if be == nil {
		be = cfg.backend()
	}
	vi, ti := idx%len(cfg.Vths), idx/len(cfg.Vths)
	return trainPoint(cfg, be, cfg.Vths[vi], cfg.Ts[ti], uint64(idx), trainDS, testDS), nil
}

// AttackPointAt evaluates the robustness sweep (lines 5-16) for a point
// trained by TrainPointAt and assembles its grid Point.
func AttackPointAt(cfg Config, be compute.Backend, idx int, tp *TrainedPoint, testDS *dataset.Dataset, epsilons []float64) (Point, error) {
	if err := (&cfg).Validate(); err != nil {
		return Point{}, err
	}
	if idx < 0 || idx >= len(cfg.Vths)*len(cfg.Ts) {
		return Point{}, fmt.Errorf("explore: point index %d out of a %d-point grid", idx, len(cfg.Vths)*len(cfg.Ts))
	}
	if be == nil {
		be = cfg.backend()
	}
	return attackPoint(cfg, be, idx, tp, testDS, epsilons, attack.DatasetBounds(testDS)), nil
}

// RunPointAt executes Algorithm 1 for one grid point: train, gate,
// robustness sweep at cfg.Epsilons. It returns the trained point as well
// so callers can snapshot the model.
func RunPointAt(cfg Config, be compute.Backend, idx int, trainDS, testDS *dataset.Dataset) (TrainedPoint, Point, error) {
	tp, err := TrainPointAt(cfg, be, idx, trainDS, testDS)
	if err != nil {
		return TrainedPoint{}, Point{}, err
	}
	pt, err := AttackPointAt(cfg, be, idx, &tp, testDS, cfg.Epsilons)
	if err != nil {
		return TrainedPoint{}, Point{}, err
	}
	return tp, pt, nil
}

// Run executes Algorithm 1 over the grid: train → learnability gate →
// robustness sweep, with grid points distributed over a worker pool.
func Run(cfg Config, trainDS, testDS *dataset.Dataset) (*Result, error) {
	sw, err := TrainGrid(cfg, trainDS, testDS)
	if err != nil {
		return nil, err
	}
	return sw.AttackAll(testDS, sw.Config.Epsilons), nil
}

// forEachPoint distributes the grid positions over cfg.Workers goroutines
// and waits for completion. Each worker receives a compute backend of
// width cfg.KernelWorkers for the tensor kernels under its grid points.
func forEachPoint(cfg Config, f func(vi, ti int, be compute.Backend)) {
	type job struct{ vi, ti int }
	jobs := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			be := cfg.backend()
			for j := range jobs {
				f(j.vi, j.ti, be)
			}
		}()
	}
	for ti := range cfg.Ts {
		for vi := range cfg.Vths {
			jobs <- job{vi, ti}
		}
	}
	close(jobs)
	wg.Wait()
}

// trainPoint runs lines 3-4 of Algorithm 1 for a single (Vth, T) on the
// given compute backend.
func trainPoint(cfg Config, be compute.Backend, vth float64, T int, idx uint64, trainDS, testDS *dataset.Dataset) TrainedPoint {
	pt := TrainedPoint{Vth: vth, T: T}
	net, err := cfg.Build(vth, T)
	if err != nil {
		pt.Err = fmt.Errorf("explore: build (Vth=%g, T=%d): %w", vth, T, err)
		return pt
	}
	// Each worker trains on its own copy of the training set: train.Fit
	// may shuffle, and the dataset is shared across goroutines.
	localTrain := trainDS.Subset(0, trainDS.Len())
	tcfg := cfg.Train
	tcfg.Backend = be
	if cfg.NewOptimizer != nil {
		tcfg.Optimizer = cfg.NewOptimizer()
	}
	if tcfg.Shuffle != nil {
		// Derive an independent deterministic stream per point.
		tcfg.Shuffle = tensor.NewRand(cfg.Seed^idx, 0x7ea1)
	}
	if _, err := train.Fit(net, localTrain, tcfg); err != nil {
		pt.Err = fmt.Errorf("explore: train (Vth=%g, T=%d): %w", vth, T, err)
		return pt
	}
	pt.Net = net
	pt.CleanAccuracy = train.EvaluateOn(be, net, testDS, cfg.EvalBatch)
	pt.Learnable = pt.CleanAccuracy >= cfg.AccuracyThreshold
	return pt
}
