package explore

import (
	"math"
	"strings"
	"testing"

	"snnsec/internal/dataset"
	"snnsec/internal/nn"
	"snnsec/internal/snn"
	"snnsec/internal/tensor"
	"snnsec/internal/train"
)

// tinyBuilder returns a builder for a minimal one-hidden-layer SNN so the
// grid sweep stays fast in tests.
func tinyBuilder(imageSize int) BuildSNN {
	return func(vth float64, T int) (*snn.Network, error) {
		r := tensor.NewRand(11, 0)
		cfg := snn.NeuronConfig{Vth: vth, Alpha: 0.9, Reset: snn.ResetZero, Surrogate: snn.FastSigmoid{Beta: 10}}
		return &snn.Network{
			Encoder: snn.ConstantCurrentEncoder{Gain: 1},
			Hidden: []snn.Layer{
				{Syn: nn.NewSequential(nn.Flatten{}, nn.NewLinear(r, imageSize*imageSize, 32)), Cfg: cfg},
			},
			Readout:    nn.NewLinear(r, 32, 10),
			ReadoutCfg: cfg,
			Mode:       snn.ReadoutMembrane,
			T:          T,
			LogitScale: 10,
		}, nil
	}
}

func gridData(t *testing.T) (*dataset.Dataset, *dataset.Dataset) {
	t.Helper()
	mk := func(n int, seed uint64) *dataset.Dataset {
		cfg := dataset.DefaultSynthConfig(n, seed)
		cfg.Size = 12
		d, err := dataset.SynthDigits(cfg)
		if err != nil {
			t.Fatal(err)
		}
		d.Normalize()
		return d
	}
	return mk(200, 1), mk(50, 2)
}

func fastConfig(imageSize int) Config {
	return Config{
		Vths:              []float64{0.5, 1e6}, // absurd threshold silences the network: deliberately unlearnable
		Ts:                []int{2, 6},
		Epsilons:          []float64{0.5, 1.5},
		AccuracyThreshold: 0.4,
		Train: train.Config{
			Epochs:    15,
			BatchSize: 20,
			GradClip:  5,
		},
		NewOptimizer: func() train.Optimizer { return train.NewAdam(1e-2) },
		AttackSteps:  3,
		EvalBatch:    32,
		Workers:      2,
		Build:        tinyBuilder(imageSize),
		Seed:         3,
	}
}

func TestRunGridShapeAndGate(t *testing.T) {
	trainDS, testDS := gridData(t)
	cfg := fastConfig(12)
	res, err := Run(cfg, trainDS, testDS)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 4 {
		t.Fatalf("points = %d, want 4", len(res.Points))
	}
	for i := range res.Points {
		p := &res.Points[i]
		if p.Err != nil {
			t.Fatalf("point (%g, %d) failed: %v", p.Vth, p.T, p.Err)
		}
		if p.CleanAccuracy < 0 || p.CleanAccuracy > 1 {
			t.Errorf("accuracy %v out of range", p.CleanAccuracy)
		}
		if p.Learnable != (p.CleanAccuracy >= cfg.AccuracyThreshold) {
			t.Errorf("gate inconsistent at (%g, %d)", p.Vth, p.T)
		}
		if p.Learnable && len(p.Robustness) != 2 {
			t.Errorf("learnable point (%g, %d) has %d robustness entries", p.Vth, p.T, len(p.Robustness))
		}
		if !p.Learnable && p.Robustness != nil {
			t.Errorf("non-learnable point (%g, %d) was attacked", p.Vth, p.T)
		}
	}
	// Vth=8 with tiny T must be unlearnable — the silent-network corner
	// of Figure 6.
	p, ok := res.Lookup(1e6, 2)
	if !ok {
		t.Fatal("lookup failed")
	}
	if p.Learnable {
		t.Errorf("Vth=1e6 T=2 learnable with accuracy %v — silent corner not reproduced", p.CleanAccuracy)
	}
	// Vth=0.5 with the longer window should learn on this easy problem.
	p, ok = res.Lookup(0.5, 6)
	if !ok {
		t.Fatal("lookup failed")
	}
	if !p.Learnable {
		t.Errorf("Vth=0.5 T=6 not learnable (accuracy %v) — sweep too weak to be meaningful", p.CleanAccuracy)
	}
}

func TestResultIndexing(t *testing.T) {
	res := &Result{
		Vths: []float64{0.5, 1},
		Ts:   []int{2, 4},
		Points: []Point{
			{Vth: 0.5, T: 2}, {Vth: 1, T: 2},
			{Vth: 0.5, T: 4}, {Vth: 1, T: 4},
		},
	}
	if p := res.At(1, 0); p.Vth != 1 || p.T != 2 {
		t.Errorf("At(1,0) = (%g, %d)", p.Vth, p.T)
	}
	if p := res.At(0, 1); p.Vth != 0.5 || p.T != 4 {
		t.Errorf("At(0,1) = (%g, %d)", p.Vth, p.T)
	}
	if _, ok := res.Lookup(9, 9); ok {
		t.Error("Lookup found a phantom point")
	}
}

func TestPointRobustAt(t *testing.T) {
	p := Point{Robustness: nil}
	if _, ok := p.RobustAt(1); ok {
		t.Error("RobustAt on empty point")
	}
}

func TestLearnableCount(t *testing.T) {
	res := &Result{Points: []Point{{Learnable: true}, {}, {Learnable: true}}}
	if res.LearnableCount() != 2 {
		t.Errorf("LearnableCount = %d", res.LearnableCount())
	}
}

func TestConfigValidation(t *testing.T) {
	trainDS, testDS := gridData(t)
	bad := fastConfig(12)
	bad.Vths = nil
	if _, err := Run(bad, trainDS, testDS); err == nil {
		t.Error("empty grid accepted")
	}
	bad = fastConfig(12)
	bad.Epsilons = nil
	if _, err := Run(bad, trainDS, testDS); err == nil {
		t.Error("no budgets accepted")
	}
	bad = fastConfig(12)
	bad.Build = nil
	if _, err := Run(bad, trainDS, testDS); err == nil {
		t.Error("nil builder accepted")
	}
	bad = fastConfig(12)
	bad.AccuracyThreshold = 2
	if _, err := Run(bad, trainDS, testDS); err == nil {
		t.Error("threshold 2 accepted")
	}
}

func TestBuilderErrorIsPerPoint(t *testing.T) {
	trainDS, testDS := gridData(t)
	cfg := fastConfig(12)
	cfg.Vths = []float64{0.5}
	cfg.Ts = []int{2}
	builder := cfg.Build
	cfg.Build = func(vth float64, T int) (*snn.Network, error) {
		if vth == 0.5 {
			return nil, errBoom
		}
		return builder(vth, T)
	}
	res, err := Run(cfg, trainDS, testDS)
	if err != nil {
		t.Fatal(err)
	}
	p := res.At(0, 0)
	if p.Err == nil || !strings.Contains(p.Err.Error(), "boom") {
		t.Errorf("builder error not recorded: %v", p.Err)
	}
	if p.Learnable {
		t.Error("failed point marked learnable")
	}
}

var errBoom = errTest("boom")

type errTest string

func (e errTest) Error() string { return string(e) }

func TestGridDeterminism(t *testing.T) {
	trainDS, testDS := gridData(t)
	cfg := fastConfig(12)
	cfg.Vths = []float64{0.5}
	cfg.Ts = []int{4}
	cfg.Workers = 1
	run := func() float64 {
		res, err := Run(cfg, trainDS.Subset(0, trainDS.Len()), testDS)
		if err != nil {
			t.Fatal(err)
		}
		return res.At(0, 0).CleanAccuracy
	}
	a, b := run(), run()
	if math.Abs(a-b) > 1e-12 {
		t.Errorf("two identical runs differ: %v vs %v", a, b)
	}
}

func TestTrainGridThenAttackAll(t *testing.T) {
	trainDS, testDS := gridData(t)
	cfg := fastConfig(12)
	sw, err := TrainGrid(cfg, trainDS, testDS)
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Points) != 4 {
		t.Fatalf("sweep points = %d", len(sw.Points))
	}
	for i := range sw.Points {
		p := &sw.Points[i]
		if p.Err != nil {
			t.Fatalf("train point (%g,%d): %v", p.Vth, p.T, p.Err)
		}
		if p.Net == nil {
			t.Fatalf("trained point (%g,%d) kept no network", p.Vth, p.T)
		}
	}
	// Attack the same sweep at two different budgets without retraining.
	r1 := sw.AttackAll(testDS, []float64{0.5})
	r2 := sw.AttackAll(testDS, []float64{1.5})
	if len(r1.Epsilons) != 1 || r1.Epsilons[0] != 0.5 {
		t.Errorf("r1 epsilons = %v", r1.Epsilons)
	}
	for i := range r1.Points {
		if r1.Points[i].CleanAccuracy != r2.Points[i].CleanAccuracy {
			t.Error("clean accuracy changed between attack passes")
		}
		if r1.Points[i].Learnable {
			a, _ := r1.Points[i].RobustAt(0.5)
			b, _ := r2.Points[i].RobustAt(1.5)
			if b > a+0.15 {
				t.Errorf("robustness at eps=1.5 (%v) far above eps=0.5 (%v)", b, a)
			}
		}
	}
}

// TestTrainPointDeterminismAcrossWorkers pins the contract the
// distributed grid engine rests on: training grid point i in isolation —
// on any worker, with any backend width — produces bit-identical weights
// to the same point trained inside the full multi-worker sweep, because
// every RNG stream under a point derives from (Seed, i) alone.
func TestTrainPointDeterminismAcrossWorkers(t *testing.T) {
	trainDS, testDS := gridData(t)
	cfg := fastConfig(12)
	cfg.Vths = []float64{0.5, 0.75}
	cfg.Train.Epochs = 5
	// A shuffle generator exercises the per-point stream derivation (it
	// is replaced per point, never shared).
	cfg.Train.Shuffle = tensor.NewRand(99, 99)
	cfg.Workers = 2

	sw, err := TrainGrid(cfg, trainDS.Subset(0, trainDS.Len()), testDS)
	if err != nil {
		t.Fatal(err)
	}
	for idx := range sw.Points {
		lone, err := TrainPointAt(cfg, nil, idx, trainDS.Subset(0, trainDS.Len()), testDS)
		if err != nil {
			t.Fatal(err)
		}
		inSweep := &sw.Points[idx]
		if lone.Err != nil || inSweep.Err != nil {
			t.Fatalf("point %d failed: %v / %v", idx, lone.Err, inSweep.Err)
		}
		if lone.CleanAccuracy != inSweep.CleanAccuracy {
			t.Errorf("point %d clean accuracy %v standalone vs %v in sweep", idx, lone.CleanAccuracy, inSweep.CleanAccuracy)
		}
		lp, sp := lone.Net.Params(), inSweep.Net.Params()
		if len(lp) != len(sp) {
			t.Fatalf("point %d param count %d vs %d", idx, len(lp), len(sp))
		}
		for pi := range lp {
			a, b := lp[pi].Data.Data(), sp[pi].Data.Data()
			for j := range a {
				if math.Float64bits(a[j]) != math.Float64bits(b[j]) {
					t.Fatalf("point %d param %q[%d]: %v standalone vs %v in sweep — per-point RNG leaked shared state",
						idx, lp[pi].Name, j, a[j], b[j])
				}
			}
		}
	}
}

func TestRunPointAtMatchesRun(t *testing.T) {
	trainDS, testDS := gridData(t)
	cfg := fastConfig(12)
	res, err := Run(cfg, trainDS.Subset(0, trainDS.Len()), testDS)
	if err != nil {
		t.Fatal(err)
	}
	for idx := range res.Points {
		_, pt, err := RunPointAt(cfg, nil, idx, trainDS.Subset(0, trainDS.Len()), testDS)
		if err != nil {
			t.Fatal(err)
		}
		want := res.Points[idx]
		if pt.CleanAccuracy != want.CleanAccuracy || pt.Learnable != want.Learnable {
			t.Errorf("point %d: standalone (%v, %v) vs sweep (%v, %v)",
				idx, pt.CleanAccuracy, pt.Learnable, want.CleanAccuracy, want.Learnable)
		}
		if len(pt.Robustness) != len(want.Robustness) {
			t.Fatalf("point %d robustness length %d vs %d", idx, len(pt.Robustness), len(want.Robustness))
		}
		for k := range pt.Robustness {
			if pt.Robustness[k] != want.Robustness[k] {
				t.Errorf("point %d eps %g: robust %v standalone vs %v in sweep",
					idx, pt.Robustness[k].Eps, pt.Robustness[k].RobustAccuracy, want.Robustness[k].RobustAccuracy)
			}
		}
	}
}

func TestValidateRejectsZeroAxes(t *testing.T) {
	trainDS, testDS := gridData(t)
	bad := fastConfig(12)
	bad.Vths = []float64{0, 1}
	if _, err := Run(bad, trainDS, testDS); err == nil {
		t.Error("zero Vth accepted")
	}
	bad = fastConfig(12)
	bad.Ts = []int{0, 2}
	if _, err := Run(bad, trainDS, testDS); err == nil {
		t.Error("zero T accepted")
	}
}

func TestPartialResultBookkeeping(t *testing.T) {
	res := NewPartialResult([]float64{0.5, 1}, []int{2}, []float64{1})
	if got := res.MissingIndices(); len(got) != 2 {
		t.Fatalf("fresh partial result missing %v, want 2 indices", got)
	}
	res.Set(1, Point{Vth: 1, T: 2, CleanAccuracy: 0.9})
	if !res.Computed(1) || res.Computed(0) {
		t.Error("Computed flags wrong after Set")
	}
	if got := res.MissingIndices(); len(got) != 1 || got[0] != 0 {
		t.Errorf("MissingIndices = %v, want [0]", got)
	}
}

func TestSweepAtIndexing(t *testing.T) {
	sw := &Sweep{
		Config: Config{Vths: []float64{1, 2}, Ts: []int{3, 4}},
		Points: []TrainedPoint{
			{Vth: 1, T: 3}, {Vth: 2, T: 3},
			{Vth: 1, T: 4}, {Vth: 2, T: 4},
		},
	}
	if p := sw.At(1, 1); p.Vth != 2 || p.T != 4 {
		t.Errorf("At(1,1) = (%g,%d)", p.Vth, p.T)
	}
}
