package explore

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"snnsec/internal/attack"
)

// jsonResult is the stable on-disk schema for a grid result. Errors are
// flattened to strings so results round-trip through JSON.
type jsonResult struct {
	Vths     []float64   `json:"vths"`
	Ts       []int       `json:"ts"`
	Epsilons []float64   `json:"epsilons"`
	Points   []WirePoint `json:"points"`
}

// WirePoint is the stable JSON schema of one grid point. It is the unit
// shared by result files (WriteJSON/ReadJSON), per-point checkpoint files
// and the distributed grid protocol, so a point computed anywhere
// round-trips to the same Point: encoding/json renders float64 in the
// shortest form that parses back to the identical bits, and the error is
// flattened to its message.
type WirePoint struct {
	Vth        float64             `json:"vth"`
	T          int                 `json:"t"`
	CleanAcc   float64             `json:"clean_accuracy"`
	Learnable  bool                `json:"learnable"`
	Robustness []attack.CurvePoint `json:"robustness,omitempty"`
	// Precision is the numerics tier the point was computed at — empty
	// for the default (bit-exact float64) tier, "float32" for the fast
	// tier. Recording it per point is what lets merge layers (the
	// distributed grid, checkpoint resume) reject mixed-tier results,
	// which would silently break the bit-identical-merge contract.
	Precision string `json:"precision,omitempty"`
	Err       string `json:"error,omitempty"`
}

// Wire converts a point to its serialisable form.
func (p *Point) Wire() WirePoint {
	wp := WirePoint{
		Vth:        p.Vth,
		T:          p.T,
		CleanAcc:   p.CleanAccuracy,
		Learnable:  p.Learnable,
		Robustness: p.Robustness,
		Precision:  p.Precision,
	}
	if p.Err != nil {
		wp.Err = p.Err.Error()
	}
	return wp
}

// Point converts the wire form back. The inverse of Wire up to error
// identity: a non-empty Err becomes a fresh error with the same message.
func (wp WirePoint) Point() Point {
	p := Point{
		Vth:           wp.Vth,
		T:             wp.T,
		CleanAccuracy: wp.CleanAcc,
		Learnable:     wp.Learnable,
		Robustness:    wp.Robustness,
		Precision:     wp.Precision,
	}
	if wp.Err != "" {
		p.Err = fmt.Errorf("%s", wp.Err)
	}
	return p
}

// WriteJSON serialises the result. Grid sweeps are expensive (hours at
// paper scale), so persisting them lets reporting and Figure-9 selection
// re-run without retraining.
func (r *Result) WriteJSON(w io.Writer) error {
	jr := jsonResult{
		Vths:     r.Vths,
		Ts:       r.Ts,
		Epsilons: r.Epsilons,
		Points:   make([]WirePoint, len(r.Points)),
	}
	for i := range r.Points {
		jr.Points[i] = r.Points[i].Wire()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jr)
}

// ReadJSON deserialises a result written by WriteJSON, validating the
// grid dimensions.
func ReadJSON(r io.Reader) (*Result, error) {
	var jr jsonResult
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&jr); err != nil {
		return nil, fmt.Errorf("explore: decoding result: %w", err)
	}
	if len(jr.Points) != len(jr.Vths)*len(jr.Ts) {
		return nil, fmt.Errorf("explore: result has %d points for a %d x %d grid",
			len(jr.Points), len(jr.Vths), len(jr.Ts))
	}
	res := &Result{
		Vths:     jr.Vths,
		Ts:       jr.Ts,
		Epsilons: jr.Epsilons,
		Points:   make([]Point, len(jr.Points)),
	}
	for i := range jr.Points {
		res.Points[i] = jr.Points[i].Point()
	}
	return res, nil
}

// SaveJSON writes the result to a file.
func (r *Result) SaveJSON(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadJSON reads a result from a file.
func LoadJSON(path string) (*Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadJSON(f)
}
