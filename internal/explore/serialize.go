package explore

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"snnsec/internal/attack"
)

// jsonResult is the stable on-disk schema for a grid result. Errors are
// flattened to strings so results round-trip through JSON.
type jsonResult struct {
	Vths     []float64   `json:"vths"`
	Ts       []int       `json:"ts"`
	Epsilons []float64   `json:"epsilons"`
	Points   []jsonPoint `json:"points"`
}

type jsonPoint struct {
	Vth        float64             `json:"vth"`
	T          int                 `json:"t"`
	CleanAcc   float64             `json:"clean_accuracy"`
	Learnable  bool                `json:"learnable"`
	Robustness []attack.CurvePoint `json:"robustness,omitempty"`
	Err        string              `json:"error,omitempty"`
}

// WriteJSON serialises the result. Grid sweeps are expensive (hours at
// paper scale), so persisting them lets reporting and Figure-9 selection
// re-run without retraining.
func (r *Result) WriteJSON(w io.Writer) error {
	jr := jsonResult{
		Vths:     r.Vths,
		Ts:       r.Ts,
		Epsilons: r.Epsilons,
		Points:   make([]jsonPoint, len(r.Points)),
	}
	for i, p := range r.Points {
		jp := jsonPoint{
			Vth:        p.Vth,
			T:          p.T,
			CleanAcc:   p.CleanAccuracy,
			Learnable:  p.Learnable,
			Robustness: p.Robustness,
		}
		if p.Err != nil {
			jp.Err = p.Err.Error()
		}
		jr.Points[i] = jp
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jr)
}

// ReadJSON deserialises a result written by WriteJSON, validating the
// grid dimensions.
func ReadJSON(r io.Reader) (*Result, error) {
	var jr jsonResult
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&jr); err != nil {
		return nil, fmt.Errorf("explore: decoding result: %w", err)
	}
	if len(jr.Points) != len(jr.Vths)*len(jr.Ts) {
		return nil, fmt.Errorf("explore: result has %d points for a %d x %d grid",
			len(jr.Points), len(jr.Vths), len(jr.Ts))
	}
	res := &Result{
		Vths:     jr.Vths,
		Ts:       jr.Ts,
		Epsilons: jr.Epsilons,
		Points:   make([]Point, len(jr.Points)),
	}
	for i, jp := range jr.Points {
		p := Point{
			Vth:           jp.Vth,
			T:             jp.T,
			CleanAccuracy: jp.CleanAcc,
			Learnable:     jp.Learnable,
			Robustness:    jp.Robustness,
		}
		if jp.Err != "" {
			p.Err = fmt.Errorf("%s", jp.Err)
		}
		res.Points[i] = p
	}
	return res, nil
}

// SaveJSON writes the result to a file.
func (r *Result) SaveJSON(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadJSON reads a result from a file.
func LoadJSON(path string) (*Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadJSON(f)
}
