package explore

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"snnsec/internal/attack"
)

func roundTripResult() *Result {
	return &Result{
		Vths:     []float64{0.5, 1},
		Ts:       []int{4, 8},
		Epsilons: []float64{1, 1.5},
		Points: []Point{
			{Vth: 0.5, T: 4, CleanAccuracy: 0.82, Learnable: true,
				Robustness: []attack.CurvePoint{{Eps: 1, RobustAccuracy: 0.3}, {Eps: 1.5, RobustAccuracy: 0.1}}},
			{Vth: 1, T: 4, CleanAccuracy: 0.55},
			{Vth: 0.5, T: 8, CleanAccuracy: 0.9, Learnable: true,
				Robustness: []attack.CurvePoint{{Eps: 1, RobustAccuracy: 0.5}, {Eps: 1.5, RobustAccuracy: 0.2}}},
			{Vth: 1, T: 8, Err: errors.New("training diverged")},
		},
	}
}

func TestJSONRoundTrip(t *testing.T) {
	orig := roundTripResult()
	var buf bytes.Buffer
	if err := orig.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Points) != 4 {
		t.Fatalf("points = %d", len(got.Points))
	}
	for i := range orig.Points {
		o, g := orig.Points[i], got.Points[i]
		if o.Vth != g.Vth || o.T != g.T || o.CleanAccuracy != g.CleanAccuracy || o.Learnable != g.Learnable {
			t.Errorf("point %d changed: %+v vs %+v", i, o, g)
		}
		if len(o.Robustness) != len(g.Robustness) {
			t.Errorf("point %d robustness length changed", i)
		}
	}
	if got.Points[3].Err == nil || !strings.Contains(got.Points[3].Err.Error(), "diverged") {
		t.Errorf("error not preserved: %v", got.Points[3].Err)
	}
	// Helpers still work on the loaded result.
	if got.LearnableCount() != 2 {
		t.Errorf("LearnableCount = %d", got.LearnableCount())
	}
	if v, ok := got.At(0, 1).RobustAt(1.5); !ok || v != 0.2 {
		t.Errorf("RobustAt after round trip = %v, %v", v, ok)
	}
}

func TestJSONFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "grid.json")
	if err := roundTripResult().SaveJSON(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Points) != 4 {
		t.Errorf("points = %d", len(got.Points))
	}
	if _, err := LoadJSON(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}

// TestWirePointBitExactRoundTrip pins the property the distributed
// grid's merge depends on: a point serialised to its wire form (the
// checkpoint and protocol format) and parsed back is bit-identical,
// float bits included.
func TestWirePointBitExactRoundTrip(t *testing.T) {
	// Accuracies from real division land on non-terminating binary
	// fractions — the case where shortest-form float encoding matters.
	orig := Point{
		Vth: 0.75, T: 12,
		CleanAccuracy: 23.0 / 29.0,
		Learnable:     true,
		Robustness: []attack.CurvePoint{
			{Eps: 0.1, RobustAccuracy: 17.0 / 31.0},
			{Eps: 1.5, RobustAccuracy: 1.0 / 3.0},
		},
	}
	raw, err := json.Marshal(orig.Wire())
	if err != nil {
		t.Fatal(err)
	}
	var wp WirePoint
	if err := json.Unmarshal(raw, &wp); err != nil {
		t.Fatal(err)
	}
	got := wp.Point()
	if math.Float64bits(got.CleanAccuracy) != math.Float64bits(orig.CleanAccuracy) {
		t.Errorf("clean accuracy bits changed: %x vs %x",
			math.Float64bits(got.CleanAccuracy), math.Float64bits(orig.CleanAccuracy))
	}
	for i := range orig.Robustness {
		if got.Robustness[i] != orig.Robustness[i] {
			t.Errorf("robustness %d changed: %+v vs %+v", i, got.Robustness[i], orig.Robustness[i])
		}
	}
	if got.Vth != orig.Vth || got.T != orig.T || got.Learnable != orig.Learnable {
		t.Errorf("point fields changed: %+v vs %+v", got, orig)
	}
	// Errors flatten to their message.
	failed := Point{Vth: 1, T: 2, Err: errors.New("boom")}
	back := failed.Wire().Point()
	if back.Err == nil || back.Err.Error() != "boom" {
		t.Errorf("error not preserved: %v", back.Err)
	}
}

// TestPartialCheckpointMergeEqualsOriginal is the checkpoint round trip
// of a distributed run in miniature: every point of a result is written
// as an individual wire file, reloaded in scrambled order into a partial
// result, and the merge must serialise byte-identically to the original.
func TestPartialCheckpointMergeEqualsOriginal(t *testing.T) {
	orig := roundTripResult()
	var files [][]byte
	for i := range orig.Points {
		raw, err := json.Marshal(orig.Points[i].Wire())
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, raw)
	}
	merged := NewPartialResult(orig.Vths, orig.Ts, orig.Epsilons)
	for _, i := range []int{2, 0, 3, 1} { // arrival order must not matter
		var wp WirePoint
		if err := json.Unmarshal(files[i], &wp); err != nil {
			t.Fatal(err)
		}
		merged.Set(i, wp.Point())
	}
	if missing := merged.MissingIndices(); len(missing) != 0 {
		t.Fatalf("merged result still missing %v", missing)
	}
	var origJSON, mergedJSON bytes.Buffer
	if err := orig.WriteJSON(&origJSON); err != nil {
		t.Fatal(err)
	}
	if err := merged.WriteJSON(&mergedJSON); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(origJSON.Bytes(), mergedJSON.Bytes()) {
		t.Errorf("merged result differs from original:\n got: %s\nwant: %s", mergedJSON.Bytes(), origJSON.Bytes())
	}
}

func TestReadJSONRejectsBadShape(t *testing.T) {
	bad := `{"vths":[1,2],"ts":[3],"epsilons":[1],"points":[]}`
	if _, err := ReadJSON(strings.NewReader(bad)); err == nil {
		t.Error("mismatched grid accepted")
	}
	if _, err := ReadJSON(strings.NewReader("{nonsense")); err == nil {
		t.Error("malformed JSON accepted")
	}
	unknown := `{"vths":[1],"ts":[1],"epsilons":[1],"points":[{"vth":1,"t":1,"clean_accuracy":0.5,"learnable":false}],"extra":1}`
	if _, err := ReadJSON(strings.NewReader(unknown)); err == nil {
		t.Error("unknown fields accepted")
	}
}
