package explore

import (
	"bytes"
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"snnsec/internal/attack"
)

func roundTripResult() *Result {
	return &Result{
		Vths:     []float64{0.5, 1},
		Ts:       []int{4, 8},
		Epsilons: []float64{1, 1.5},
		Points: []Point{
			{Vth: 0.5, T: 4, CleanAccuracy: 0.82, Learnable: true,
				Robustness: []attack.CurvePoint{{Eps: 1, RobustAccuracy: 0.3}, {Eps: 1.5, RobustAccuracy: 0.1}}},
			{Vth: 1, T: 4, CleanAccuracy: 0.55},
			{Vth: 0.5, T: 8, CleanAccuracy: 0.9, Learnable: true,
				Robustness: []attack.CurvePoint{{Eps: 1, RobustAccuracy: 0.5}, {Eps: 1.5, RobustAccuracy: 0.2}}},
			{Vth: 1, T: 8, Err: errors.New("training diverged")},
		},
	}
}

func TestJSONRoundTrip(t *testing.T) {
	orig := roundTripResult()
	var buf bytes.Buffer
	if err := orig.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Points) != 4 {
		t.Fatalf("points = %d", len(got.Points))
	}
	for i := range orig.Points {
		o, g := orig.Points[i], got.Points[i]
		if o.Vth != g.Vth || o.T != g.T || o.CleanAccuracy != g.CleanAccuracy || o.Learnable != g.Learnable {
			t.Errorf("point %d changed: %+v vs %+v", i, o, g)
		}
		if len(o.Robustness) != len(g.Robustness) {
			t.Errorf("point %d robustness length changed", i)
		}
	}
	if got.Points[3].Err == nil || !strings.Contains(got.Points[3].Err.Error(), "diverged") {
		t.Errorf("error not preserved: %v", got.Points[3].Err)
	}
	// Helpers still work on the loaded result.
	if got.LearnableCount() != 2 {
		t.Errorf("LearnableCount = %d", got.LearnableCount())
	}
	if v, ok := got.At(0, 1).RobustAt(1.5); !ok || v != 0.2 {
		t.Errorf("RobustAt after round trip = %v, %v", v, ok)
	}
}

func TestJSONFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "grid.json")
	if err := roundTripResult().SaveJSON(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Points) != 4 {
		t.Errorf("points = %d", len(got.Points))
	}
	if _, err := LoadJSON(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestReadJSONRejectsBadShape(t *testing.T) {
	bad := `{"vths":[1,2],"ts":[3],"epsilons":[1],"points":[]}`
	if _, err := ReadJSON(strings.NewReader(bad)); err == nil {
		t.Error("mismatched grid accepted")
	}
	if _, err := ReadJSON(strings.NewReader("{nonsense")); err == nil {
		t.Error("malformed JSON accepted")
	}
	unknown := `{"vths":[1],"ts":[1],"epsilons":[1],"points":[{"vth":1,"t":1,"clean_accuracy":0.5,"learnable":false}],"extra":1}`
	if _, err := ReadJSON(strings.NewReader(unknown)); err == nil {
		t.Error("unknown fields accepted")
	}
}
