// Package faultinject is the deterministic fault-injection layer behind
// the robustness tests and the CI chaos smokes. Production code declares
// named fault points at the places failures matter (a grid worker about
// to compute a point, a checkpoint file about to be written, a serve
// forward about to dispatch); an injector — installed for the whole
// process, nil and free when unused — decides per hit whether to inject
// a delay, an error, a torn write, a panic, or a process exit.
//
// Every decision is deterministic. Hit-scoped rules fire on exact,
// counted occurrences of a point ("the 2nd checkpoint write is torn"),
// and probabilistic rules hash (seed, point, hit) so a fixed seed — by
// default the run seed, so a CI chaos failure names everything needed to
// replay it — reproduces the exact same fault schedule.
//
// # Spec grammar
//
// An injector is described by a spec string, usually supplied via the
// snnsec -faults flag or the SNNSEC_FAULTS environment variable
// (subprocess grid workers inherit the latter):
//
//	spec   := rule (';' rule)*
//	rule   := point '@' occ '=' action | point '=' action
//	occ    := '*'                every hit
//	        | N                  the Nth hit only (1-based)
//	        | N '+'              the Nth and every later hit
//	        | '~' p              each hit independently with probability p
//	        | 's' S ':' occ      only in the process whose shard id is S
//	action := 'delay:' duration  sleep (a hung-but-alive worker)
//	        | 'error'            return an injected error
//	        | 'torn'             truncate the write (torn checkpoint file)
//	        | 'panic'            panic (a poisoned request)
//	        | 'exit'             os.Exit(3) (a crashed process)
//
// `point=action` is shorthand for `point@*=action`. Rules are checked in
// spec order; the first match wins. Example — the CI chaos schedule:
//
//	grid.worker.point@s1:1=delay:5s;grid.worker.point@s2:2=exit;grid.checkpoint.write@2=torn
//
// Shard ids are assigned by grid.ExecLauncher through SNNSEC_FAULT_SHARD
// so a rule can target one worker process of a sharded run; in-process
// tests, which share one injector, scope by hit count instead.
//
// The registered fault points and the recovery each one exercises are
// enumerated in DESIGN.md ("Failure model").
package faultinject

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Environment variables the CLI and launchers use to propagate a fault
// policy into subprocesses.
const (
	// EnvSpec carries the spec string (see the package comment).
	EnvSpec = "SNNSEC_FAULTS"
	// EnvSeed carries an explicit seed for probabilistic rules; without
	// it the seed is adopted from the run seed via Reseed.
	EnvSeed = "SNNSEC_FAULT_SEED"
	// EnvShard carries the process's shard id for shard-scoped rules.
	// grid.ExecLauncher sets it on every worker it spawns.
	EnvShard = "SNNSEC_FAULT_SHARD"
)

// Action is what an injector tells a fault point to do.
type Action int

const (
	// ActNone injects nothing.
	ActNone Action = iota
	// ActDelay sleeps for Decision.Delay — a stalled, still-alive process.
	ActDelay
	// ActError returns Decision.Err from the fault point.
	ActError
	// ActTorn truncates the write passing through the fault point.
	ActTorn
	// ActPanic panics at the fault point.
	ActPanic
	// ActExit terminates the process with exit code 3.
	ActExit
)

// Decision is the injector's verdict for one hit of one fault point.
type Decision struct {
	Action Action
	Delay  time.Duration
	Err    error
}

// rule is one parsed spec rule.
type rule struct {
	shard int // -1 = any process
	// occurrence selection: every, an exact hit, an open range, or a
	// seeded per-hit probability.
	every   bool
	hit     uint64
	from    bool
	prob    float64
	probSet bool

	action Action
	delay  time.Duration
}

// Injector is a parsed fault policy plus its per-point hit counters.
// One injector serves the whole process (Set/Active); Fire is safe for
// concurrent use.
type Injector struct {
	seed   atomic.Uint64
	seeded atomic.Bool
	shard  int
	rules  map[string][]rule
	hits   map[string]*atomic.Uint64
}

// Parse builds an injector from a spec string. The seed starts unset
// (probabilistic rules then use seed 0 until Reseed or SetSeed), and the
// shard id defaults to -1 (matches no shard-scoped rule).
func Parse(spec string) (*Injector, error) {
	inj := &Injector{
		shard: -1,
		rules: make(map[string][]rule),
		hits:  make(map[string]*atomic.Uint64),
	}
	for _, rs := range strings.Split(spec, ";") {
		rs = strings.TrimSpace(rs)
		if rs == "" {
			continue
		}
		point, r, err := parseRule(rs)
		if err != nil {
			return nil, fmt.Errorf("faultinject: rule %q: %w", rs, err)
		}
		inj.rules[point] = append(inj.rules[point], r)
		if inj.hits[point] == nil {
			inj.hits[point] = new(atomic.Uint64)
		}
	}
	if len(inj.rules) == 0 {
		return nil, fmt.Errorf("faultinject: empty spec")
	}
	return inj, nil
}

func parseRule(rs string) (string, rule, error) {
	lhs, actionStr, ok := strings.Cut(rs, "=")
	if !ok {
		return "", rule{}, fmt.Errorf("missing '=action'")
	}
	point, occ := lhs, "*"
	if p, o, ok := strings.Cut(lhs, "@"); ok {
		point, occ = p, o
	}
	point = strings.TrimSpace(point)
	if point == "" {
		return "", rule{}, fmt.Errorf("empty fault point name")
	}
	r := rule{shard: -1}
	occ = strings.TrimSpace(occ)
	if rest, ok := strings.CutPrefix(occ, "s"); ok {
		shardStr, occRest, ok := strings.Cut(rest, ":")
		if !ok {
			return "", rule{}, fmt.Errorf("shard scope %q needs 's<shard>:<occurrence>'", occ)
		}
		shard, err := strconv.Atoi(shardStr)
		if err != nil || shard < 0 {
			return "", rule{}, fmt.Errorf("bad shard id %q", shardStr)
		}
		r.shard = shard
		occ = strings.TrimSpace(occRest)
	}
	switch {
	case occ == "*":
		r.every = true
	case strings.HasPrefix(occ, "~"):
		p, err := strconv.ParseFloat(occ[1:], 64)
		if err != nil || p < 0 || p > 1 {
			return "", rule{}, fmt.Errorf("bad probability %q (want 0..1)", occ)
		}
		r.prob, r.probSet = p, true
	default:
		ns, from := strings.CutSuffix(occ, "+")
		n, err := strconv.ParseUint(ns, 10, 64)
		if err != nil || n == 0 {
			return "", rule{}, fmt.Errorf("bad occurrence %q (want *, N, N+, ~p)", occ)
		}
		r.hit, r.from = n, from
	}
	actionStr = strings.TrimSpace(actionStr)
	switch {
	case actionStr == "error":
		r.action = ActError
	case actionStr == "torn":
		r.action = ActTorn
	case actionStr == "panic":
		r.action = ActPanic
	case actionStr == "exit":
		r.action = ActExit
	case strings.HasPrefix(actionStr, "delay:"):
		d, err := time.ParseDuration(actionStr[len("delay:"):])
		if err != nil || d < 0 {
			return "", rule{}, fmt.Errorf("bad delay %q", actionStr)
		}
		r.action, r.delay = ActDelay, d
	default:
		return "", rule{}, fmt.Errorf("unknown action %q (want delay:<dur>, error, torn, panic, exit)", actionStr)
	}
	return point, r, nil
}

// SetSeed pins the seed for probabilistic rules. A seed set here (from
// -fault-seed or SNNSEC_FAULT_SEED) wins over a later Reseed.
func (inj *Injector) SetSeed(seed uint64) {
	inj.seed.Store(seed)
	inj.seeded.Store(true)
}

// SetShard sets the process's shard id for shard-scoped rules.
func (inj *Injector) SetShard(shard int) { inj.shard = shard }

// fire counts one hit of the point and returns the first matching rule's
// decision.
func (inj *Injector) fire(point string) Decision {
	counter := inj.hits[point]
	if counter == nil {
		return Decision{}
	}
	hit := counter.Add(1)
	for _, r := range inj.rules[point] {
		if r.shard >= 0 && r.shard != inj.shard {
			continue
		}
		switch {
		case r.every:
		case r.probSet:
			if hitUniform(inj.seed.Load(), point, hit) >= r.prob {
				continue
			}
		case r.from:
			if hit < r.hit {
				continue
			}
		default:
			if hit != r.hit {
				continue
			}
		}
		d := Decision{Action: r.action, Delay: r.delay}
		if r.action == ActError {
			d.Err = fmt.Errorf("faultinject: injected error at %s (hit %d)", point, hit)
		}
		return d
	}
	return Decision{}
}

// hitUniform maps (seed, point, hit) to a uniform float64 in [0, 1) via
// an FNV-mixed splitmix64 step — deterministic across runs and builds.
func hitUniform(seed uint64, point string, hit uint64) float64 {
	h := seed ^ 0x9e3779b97f4a7c15
	for i := 0; i < len(point); i++ {
		h = (h ^ uint64(point[i])) * 0x100000001b3
	}
	h ^= hit * 0xbf58476d1ce4e5b9
	// splitmix64 finalizer.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return float64(h>>11) / float64(1<<53)
}

// ---------------------------------------------------------------------------
// Process-global injector and fault-point helpers

var active atomic.Pointer[Injector]

// Set installs the process-wide injector; nil disables injection. The
// disabled fast path is one atomic load per fault point.
func Set(inj *Injector) { active.Store(inj) }

// Enabled reports whether an injector is installed.
func Enabled() bool { return active.Load() != nil }

// Reseed adopts seed for probabilistic rules unless a seed was already
// set explicitly (SetSeed / SNNSEC_FAULT_SEED). The grid coordinator and
// workers call it with the run seed, so a chaos schedule reproduces from
// the numbers already in the job spec.
func Reseed(seed uint64) {
	if inj := active.Load(); inj != nil && !inj.seeded.Load() {
		inj.seed.Store(seed)
	}
}

// Fire counts one hit of the named fault point and returns the decision
// (ActNone when no injector is installed). Callers that only support a
// subset of actions should use the Apply/Torn helpers instead.
func Fire(point string) Decision {
	inj := active.Load()
	if inj == nil {
		return Decision{}
	}
	return inj.fire(point)
}

// Apply fires the point and performs the in-line actions itself — sleep
// for ActDelay, panic for ActPanic, process exit for ActExit — and
// returns the injected error for ActError, nil otherwise.
func Apply(point string) error {
	d := Fire(point)
	switch d.Action {
	case ActDelay:
		time.Sleep(d.Delay)
	case ActPanic:
		panic(fmt.Sprintf("faultinject: injected panic at %s", point))
	case ActExit:
		fmt.Fprintf(os.Stderr, "faultinject: injected process exit at %s\n", point)
		os.Exit(3)
	case ActError:
		return d.Err
	}
	return nil
}

// Torn fires the point and returns how many of the n bytes about to be
// written should actually land: n normally, a truncated prefix when a
// torn write is injected.
func Torn(point string, n int) int {
	if Fire(point).Action == ActTorn && n > 0 {
		return n / 2
	}
	return n
}

// Init parses and installs an injector from the given spec (flag value)
// falling back to SNNSEC_FAULTS, with the seed from the flag (when
// seedSet) or SNNSEC_FAULT_SEED, and the shard id from
// SNNSEC_FAULT_SHARD. With no spec anywhere it leaves injection
// disabled and returns nil.
func Init(spec string, seed uint64, seedSet bool) error {
	if spec == "" {
		spec = os.Getenv(EnvSpec)
	}
	if spec == "" {
		return nil
	}
	inj, err := Parse(spec)
	if err != nil {
		return err
	}
	if !seedSet {
		if es := os.Getenv(EnvSeed); es != "" {
			v, err := strconv.ParseUint(es, 10, 64)
			if err != nil {
				return fmt.Errorf("faultinject: bad %s %q: %v", EnvSeed, es, err)
			}
			seed, seedSet = v, true
		}
	}
	if seedSet {
		inj.SetSeed(seed)
	}
	if ss := os.Getenv(EnvShard); ss != "" {
		sh, err := strconv.Atoi(ss)
		if err != nil || sh < 0 {
			return fmt.Errorf("faultinject: bad %s %q", EnvShard, ss)
		}
		inj.SetShard(sh)
	}
	Set(inj)
	return nil
}
