package faultinject

import (
	"strings"
	"testing"
	"time"
)

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",                  // empty spec
		";;",                // only empty rules
		"point",             // no action
		"point@1",           // no action
		"@1=error",          // no point name
		"point@0=error",     // hits are 1-based
		"point@x=error",     // bad occurrence
		"point@~1.5=error",  // probability out of range
		"point@~x=error",    // bad probability
		"point@s:1=error",   // missing shard id
		"point@s-1:1=error", // negative shard
		"point@s1=error",    // shard scope without occurrence
		"point@1=explode",   // unknown action
		"point@1=delay:xx",  // bad duration
		"point@1=delay:-1s", // negative delay
	}
	for _, spec := range bad {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", spec)
		}
	}
}

func TestHitScopedRules(t *testing.T) {
	inj, err := Parse("p@2=error; q@3+=torn; r=panic")
	if err != nil {
		t.Fatal(err)
	}
	for hit := 1; hit <= 4; hit++ {
		d := inj.fire("p")
		want := ActNone
		if hit == 2 {
			want = ActError
		}
		if d.Action != want {
			t.Errorf("p hit %d: action %v, want %v", hit, d.Action, want)
		}
		if hit == 2 && d.Err == nil {
			t.Error("injected error decision carries no error")
		}
	}
	for hit := 1; hit <= 5; hit++ {
		want := ActNone
		if hit >= 3 {
			want = ActTorn
		}
		if d := inj.fire("q"); d.Action != want {
			t.Errorf("q hit %d: action %v, want %v", hit, d.Action, want)
		}
	}
	for hit := 1; hit <= 3; hit++ {
		if d := inj.fire("r"); d.Action != ActPanic {
			t.Errorf("r hit %d: action %v, want ActPanic (every hit)", hit, d.Action)
		}
	}
	// Unregistered points never fire.
	if d := inj.fire("unknown"); d.Action != ActNone {
		t.Errorf("unknown point fired %v", d.Action)
	}
}

func TestDelayRule(t *testing.T) {
	inj, err := Parse("p@1=delay:250ms")
	if err != nil {
		t.Fatal(err)
	}
	d := inj.fire("p")
	if d.Action != ActDelay || d.Delay != 250*time.Millisecond {
		t.Fatalf("got %+v, want 250ms delay", d)
	}
}

func TestShardScope(t *testing.T) {
	inj, err := Parse("p@s1:1=exit")
	if err != nil {
		t.Fatal(err)
	}
	// Default shard is -1: the rule never matches.
	if d := inj.fire("p"); d.Action != ActNone {
		t.Fatalf("unscoped process matched shard rule: %v", d.Action)
	}
	inj2, _ := Parse("p@s1:1=exit")
	inj2.SetShard(1)
	if d := inj2.fire("p"); d.Action != ActExit {
		t.Fatalf("shard 1 hit 1: %v, want ActExit", d.Action)
	}
	if d := inj2.fire("p"); d.Action != ActNone {
		t.Fatalf("shard 1 hit 2: %v, want ActNone", d.Action)
	}
}

func TestProbabilisticRulesDeterministic(t *testing.T) {
	schedule := func(seed uint64) []bool {
		inj, err := Parse("p@~0.5=error")
		if err != nil {
			t.Fatal(err)
		}
		inj.SetSeed(seed)
		out := make([]bool, 64)
		for i := range out {
			out[i] = inj.fire("p").Action == ActError
		}
		return out
	}
	a, b := schedule(7), schedule(7)
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed produced different schedules at hit %d", i+1)
		}
		if a[i] {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("p=0.5 fired %d/%d hits — not probabilistic", fired, len(a))
	}
	c := schedule(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical schedules")
	}
}

func TestFirstMatchingRuleWins(t *testing.T) {
	inj, err := Parse("p@1=error;p=torn")
	if err != nil {
		t.Fatal(err)
	}
	if d := inj.fire("p"); d.Action != ActError {
		t.Fatalf("hit 1: %v, want the earlier exact rule", d.Action)
	}
	if d := inj.fire("p"); d.Action != ActTorn {
		t.Fatalf("hit 2: %v, want the catch-all rule", d.Action)
	}
}

func TestGlobalHelpers(t *testing.T) {
	// Disabled: every helper is a no-op.
	Set(nil)
	if Enabled() {
		t.Fatal("Enabled with nil injector")
	}
	if err := Apply("p"); err != nil {
		t.Fatalf("Apply with no injector: %v", err)
	}
	if n := Torn("p", 10); n != 10 {
		t.Fatalf("Torn with no injector truncated to %d", n)
	}

	inj, err := Parse("p@1=error;w@1=torn;x@1=panic")
	if err != nil {
		t.Fatal(err)
	}
	Set(inj)
	defer Set(nil)
	if !Enabled() {
		t.Fatal("not enabled after Set")
	}
	if err := Apply("p"); err == nil || !strings.Contains(err.Error(), "injected error") {
		t.Fatalf("Apply: %v, want injected error", err)
	}
	if err := Apply("p"); err != nil {
		t.Fatalf("Apply hit 2: %v, want nil", err)
	}
	if n := Torn("w", 10); n != 5 {
		t.Fatalf("torn write landed %d of 10 bytes, want 5", n)
	}
	if n := Torn("w", 10); n != 10 {
		t.Fatalf("second write truncated to %d", n)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("ActPanic did not panic")
			}
		}()
		Apply("x")
	}()
}

func TestReseed(t *testing.T) {
	inj, err := Parse("p@~0.5=error")
	if err != nil {
		t.Fatal(err)
	}
	Set(inj)
	defer Set(nil)
	Reseed(42)
	if got := inj.seed.Load(); got != 42 {
		t.Fatalf("Reseed on unseeded injector: seed %d, want 42", got)
	}
	inj.SetSeed(7)
	Reseed(99)
	if got := inj.seed.Load(); got != 7 {
		t.Fatalf("Reseed overrode an explicit seed: %d", got)
	}
}

func TestInitFromEnv(t *testing.T) {
	t.Setenv(EnvSpec, "p@1=error")
	t.Setenv(EnvSeed, "11")
	t.Setenv(EnvShard, "2")
	defer Set(nil)
	if err := Init("", 0, false); err != nil {
		t.Fatal(err)
	}
	inj := active.Load()
	if inj == nil {
		t.Fatal("Init installed nothing")
	}
	if !inj.seeded.Load() || inj.seed.Load() != 11 || inj.shard != 2 {
		t.Fatalf("env not honoured: seeded=%v seed=%d shard=%d", inj.seeded.Load(), inj.seed.Load(), inj.shard)
	}
	// Flag values win over the environment.
	if err := Init("q@1=torn", 5, true); err != nil {
		t.Fatal(err)
	}
	inj = active.Load()
	if inj.seed.Load() != 5 || len(inj.rules["q"]) != 1 {
		t.Fatalf("flag spec/seed not honoured: seed=%d rules=%v", inj.seed.Load(), inj.rules)
	}
	// Bad env values are errors, not silently ignored.
	t.Setenv(EnvShard, "x")
	if err := Init("q@1=torn", 5, true); err == nil {
		t.Error("bad shard env accepted")
	}
	t.Setenv(EnvShard, "0")
	t.Setenv(EnvSeed, "nope")
	if err := Init("q@1=torn", 0, false); err == nil {
		t.Error("bad seed env accepted")
	}
	// No spec anywhere: injection stays disabled, no error.
	t.Setenv(EnvSpec, "")
	t.Setenv(EnvSeed, "")
	Set(nil)
	if err := Init("", 0, false); err != nil || Enabled() {
		t.Errorf("empty Init: err=%v enabled=%v", err, Enabled())
	}
}
