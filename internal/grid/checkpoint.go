package grid

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"

	"snnsec/internal/compute"
	"snnsec/internal/explore"
	"snnsec/internal/faultinject"
)

// Checkpoint layout (one directory per run):
//
//	manifest.json    — grid axes + spec fingerprint; written once at start
//	point-00042.json — one CRC-wrapped explore.WirePoint per completed point
//	model-00042.snn  — modelio snapshot of the point's trained network
//
// Point files are written atomically (temp file + rename), so a run
// killed at any moment leaves either a complete point or no point —
// never a torn one — on a filesystem that honours fsync+rename. Against
// one that does not (or plain bit rot), every point file additionally
// carries a CRC32 of its payload: a resume verifies each file, renames
// any torn or corrupt one to <name>.corrupt, and re-queues its point
// instead of aborting the session or — worse — merging garbage. The
// files are plain JSON/modelio so external tooling (or a human) can
// inspect partial results without the coordinator.

const manifestName = "manifest.json"

// manifestVersion is bumped whenever the on-disk format changes
// incompatibly; version 2 introduced the CRC point-file envelope.
const manifestVersion = 2

// FaultCheckpointWrite is the fault point in the point-file write path;
// it supports torn (the file lands truncated, as if the filesystem lied
// about durability — exactly what the CRC exists to catch).
const FaultCheckpointWrite = "grid.checkpoint.write"

// manifest pins a checkpoint directory to one job.
type manifest struct {
	Version     int       `json:"version"`
	Builder     string    `json:"builder"`
	Fingerprint string    `json:"fingerprint"`
	Vths        []float64 `json:"vths"`
	Ts          []int     `json:"ts"`
	Epsilons    []float64 `json:"epsilons"`
	// Precision pins the numerics tier the checkpoint was computed at
	// (compute.Precision.Tag; empty = default tier), so a resume at a
	// different tier is rejected instead of producing a mixed result.
	Precision string `json:"precision,omitempty"`
}

// pointEnvelope is the on-disk frame of one checkpointed point: the raw
// WirePoint JSON plus the IEEE CRC32 of exactly those bytes (lower-case
// hex), so torn and bit-flipped files are detected on resume.
type pointEnvelope struct {
	CRC32 string          `json:"crc32"`
	Point json.RawMessage `json:"point"`
}

func pointCRC(raw []byte) string { return fmt.Sprintf("%08x", crc32.ChecksumIEEE(raw)) }

// checkpoint is the coordinator's handle on the directory.
type checkpoint struct {
	dir string
}

func pointFile(idx int) string { return fmt.Sprintf("point-%05d.json", idx) }
func modelFile(idx int) string { return fmt.Sprintf("model-%05d.snn", idx) }

// initCheckpoint creates dir (if needed) and writes the manifest. It
// refuses a directory already holding a different job's manifest, and —
// unless resume is set — one holding any manifest at all, so a stale
// checkpoint is never silently mixed into a fresh run.
func initCheckpoint(dir string, spec Spec, cfg *explore.Config, resume bool) (*checkpoint, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	want := manifest{
		Version:     manifestVersion,
		Builder:     spec.Builder,
		Fingerprint: spec.Fingerprint(),
		Vths:        cfg.Vths,
		Ts:          cfg.Ts,
		Epsilons:    cfg.Epsilons,
		Precision:   compute.ActivePrecision().Tag(),
	}
	path := filepath.Join(dir, manifestName)
	if raw, err := os.ReadFile(path); err == nil {
		var have manifest
		if err := json.Unmarshal(raw, &have); err != nil {
			return nil, fmt.Errorf("grid: corrupt checkpoint manifest %s: %w", path, err)
		}
		if have.Version != manifestVersion {
			return nil, fmt.Errorf("grid: checkpoint %s uses format version %d, this build writes %d — finish it with the matching build or start fresh",
				dir, have.Version, manifestVersion)
		}
		if have.Fingerprint != want.Fingerprint {
			short := have.Fingerprint
			if len(short) > 12 {
				short = short[:12]
			}
			return nil, fmt.Errorf("grid: checkpoint %s belongs to a different job (builder %q, fingerprint %q…)",
				dir, have.Builder, short)
		}
		if have.Precision != want.Precision {
			return nil, fmt.Errorf("grid: checkpoint %s was computed at precision %q, this run is %q — mixed-tier results cannot be merged",
				dir, orDefault(have.Precision), orDefault(want.Precision))
		}
		if !resume {
			return nil, fmt.Errorf("grid: checkpoint %s already exists; pass resume to continue it", dir)
		}
		return &checkpoint{dir: dir}, nil
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	raw, err := json.MarshalIndent(want, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := atomicWrite(path, raw); err != nil {
		return nil, err
	}
	return &checkpoint{dir: dir}, nil
}

// load returns the completed points recorded in the directory, keyed by
// grid index, plus the names of any point files that failed
// verification. A file that is empty, unparsable, or whose payload does
// not match its recorded CRC is quarantined — renamed to <name>.corrupt
// so the evidence survives — and its point simply stays pending, to be
// recomputed like any other. Only I/O errors (unreadable directory,
// failed rename) abort the load: those are environment problems a rerun
// won't fix.
func (c *checkpoint) load() (done map[int]explore.Point, corrupt []string, err error) {
	entries, err := os.ReadDir(c.dir)
	if err != nil {
		return nil, nil, err
	}
	done = make(map[int]explore.Point)
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "point-") || !strings.HasSuffix(name, ".json") {
			continue
		}
		var idx int
		if _, err := fmt.Sscanf(name, "point-%d.json", &idx); err != nil {
			return nil, nil, fmt.Errorf("grid: unrecognised checkpoint file %s", name)
		}
		raw, err := os.ReadFile(filepath.Join(c.dir, name))
		if err != nil {
			return nil, nil, err
		}
		wp, verr := verifyPoint(raw)
		if verr != nil {
			if err := c.quarantine(name); err != nil {
				return nil, nil, fmt.Errorf("grid: quarantining %s (%v): %w", name, verr, err)
			}
			corrupt = append(corrupt, name)
			continue
		}
		done[idx] = wp.Point()
	}
	return done, corrupt, nil
}

// verifyPoint decodes one point file and checks its payload CRC.
func verifyPoint(raw []byte) (*explore.WirePoint, error) {
	if len(raw) == 0 {
		return nil, fmt.Errorf("empty file")
	}
	var env pointEnvelope
	if err := json.Unmarshal(raw, &env); err != nil {
		return nil, fmt.Errorf("unparsable envelope: %w", err)
	}
	if len(env.Point) == 0 || env.CRC32 == "" {
		return nil, fmt.Errorf("envelope missing point or crc32")
	}
	if got := pointCRC(env.Point); got != env.CRC32 {
		return nil, fmt.Errorf("crc mismatch: recorded %s, computed %s", env.CRC32, got)
	}
	var wp explore.WirePoint
	if err := json.Unmarshal(env.Point, &wp); err != nil {
		return nil, fmt.Errorf("unparsable point payload: %w", err)
	}
	return &wp, nil
}

// quarantine moves a failed point file aside as <name>.corrupt, keeping
// the bytes for post-mortem while freeing the point to be recomputed.
func (c *checkpoint) quarantine(name string) error {
	return os.Rename(filepath.Join(c.dir, name), filepath.Join(c.dir, name+".corrupt"))
}

// savePoint durably records one completed point (and its optional model
// snapshot). The model is written first so a point file never exists
// without its snapshot.
func (c *checkpoint) savePoint(idx int, wp *explore.WirePoint, model []byte) error {
	if len(model) > 0 {
		if err := atomicWrite(filepath.Join(c.dir, modelFile(idx)), model); err != nil {
			return err
		}
	}
	raw, err := json.Marshal(wp)
	if err != nil {
		return err
	}
	env, err := json.Marshal(pointEnvelope{CRC32: pointCRC(raw), Point: raw})
	if err != nil {
		return err
	}
	// The torn fault truncates what reaches the disk while the rename
	// still happens — modelling a filesystem that lied about durability.
	env = env[:faultinject.Torn(FaultCheckpointWrite, len(env))]
	return atomicWrite(filepath.Join(c.dir, pointFile(idx)), env)
}

// atomicWrite writes data to path via a temp file and rename, fsyncing
// the file so a completed point survives the process being killed.
func atomicWrite(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
