package grid

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"snnsec/internal/compute"
	"snnsec/internal/explore"
)

// Checkpoint layout (one directory per run):
//
//	manifest.json    — grid axes + spec fingerprint; written once at start
//	point-00042.json — one explore.WirePoint per completed grid point
//	model-00042.snn  — modelio snapshot of the point's trained network
//
// Point files are written atomically (temp file + rename), so a run
// killed at any moment leaves either a complete point or no point —
// never a torn one — and a resume re-runs at most the in-flight points.
// The files are plain JSON/modelio so external tooling (or a human) can
// inspect partial results without the coordinator.

const manifestName = "manifest.json"

// manifest pins a checkpoint directory to one job.
type manifest struct {
	Version     int       `json:"version"`
	Builder     string    `json:"builder"`
	Fingerprint string    `json:"fingerprint"`
	Vths        []float64 `json:"vths"`
	Ts          []int     `json:"ts"`
	Epsilons    []float64 `json:"epsilons"`
	// Precision pins the numerics tier the checkpoint was computed at
	// (compute.Precision.Tag; empty = default tier), so a resume at a
	// different tier is rejected instead of producing a mixed result.
	Precision string `json:"precision,omitempty"`
}

// checkpoint is the coordinator's handle on the directory.
type checkpoint struct {
	dir string
}

func pointFile(idx int) string { return fmt.Sprintf("point-%05d.json", idx) }
func modelFile(idx int) string { return fmt.Sprintf("model-%05d.snn", idx) }

// initCheckpoint creates dir (if needed) and writes the manifest. It
// refuses a directory already holding a different job's manifest, and —
// unless resume is set — one holding any manifest at all, so a stale
// checkpoint is never silently mixed into a fresh run.
func initCheckpoint(dir string, spec Spec, cfg *explore.Config, resume bool) (*checkpoint, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	want := manifest{
		Version:     1,
		Builder:     spec.Builder,
		Fingerprint: spec.Fingerprint(),
		Vths:        cfg.Vths,
		Ts:          cfg.Ts,
		Epsilons:    cfg.Epsilons,
		Precision:   compute.ActivePrecision().Tag(),
	}
	path := filepath.Join(dir, manifestName)
	if raw, err := os.ReadFile(path); err == nil {
		var have manifest
		if err := json.Unmarshal(raw, &have); err != nil {
			return nil, fmt.Errorf("grid: corrupt checkpoint manifest %s: %w", path, err)
		}
		if have.Fingerprint != want.Fingerprint {
			short := have.Fingerprint
			if len(short) > 12 {
				short = short[:12]
			}
			return nil, fmt.Errorf("grid: checkpoint %s belongs to a different job (builder %q, fingerprint %q…)",
				dir, have.Builder, short)
		}
		if have.Precision != want.Precision {
			return nil, fmt.Errorf("grid: checkpoint %s was computed at precision %q, this run is %q — mixed-tier results cannot be merged",
				dir, orDefault(have.Precision), orDefault(want.Precision))
		}
		if !resume {
			return nil, fmt.Errorf("grid: checkpoint %s already exists; pass resume to continue it", dir)
		}
		return &checkpoint{dir: dir}, nil
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	raw, err := json.MarshalIndent(want, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := atomicWrite(path, raw); err != nil {
		return nil, err
	}
	return &checkpoint{dir: dir}, nil
}

// load returns the completed points recorded in the directory, keyed by
// grid index. Unparsable point files are reported, not skipped: a resume
// must not silently recompute (or worse, drop) a point that was counted
// as done.
func (c *checkpoint) load() (map[int]explore.Point, error) {
	entries, err := os.ReadDir(c.dir)
	if err != nil {
		return nil, err
	}
	done := make(map[int]explore.Point)
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "point-") || !strings.HasSuffix(name, ".json") {
			continue
		}
		var idx int
		if _, err := fmt.Sscanf(name, "point-%d.json", &idx); err != nil {
			return nil, fmt.Errorf("grid: unrecognised checkpoint file %s", name)
		}
		raw, err := os.ReadFile(filepath.Join(c.dir, name))
		if err != nil {
			return nil, err
		}
		var wp explore.WirePoint
		if err := json.Unmarshal(raw, &wp); err != nil {
			return nil, fmt.Errorf("grid: corrupt checkpoint point %s: %w", name, err)
		}
		done[idx] = wp.Point()
	}
	return done, nil
}

// savePoint durably records one completed point (and its optional model
// snapshot). The model is written first so a point file never exists
// without its snapshot.
func (c *checkpoint) savePoint(idx int, wp *explore.WirePoint, model []byte) error {
	if len(model) > 0 {
		if err := atomicWrite(filepath.Join(c.dir, modelFile(idx)), model); err != nil {
			return err
		}
	}
	raw, err := json.Marshal(wp)
	if err != nil {
		return err
	}
	return atomicWrite(filepath.Join(c.dir, pointFile(idx)), raw)
}

// atomicWrite writes data to path via a temp file and rename, fsyncing
// the file so a completed point survives the process being killed.
func atomicWrite(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
