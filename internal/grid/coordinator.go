package grid

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"snnsec/internal/compute"
	"snnsec/internal/explore"
	"snnsec/internal/faultinject"
	"snnsec/internal/obs"
)

// Launcher starts (or attaches) the worker for one shard and returns its
// transport. ExecLauncher spawns snnsec grid-worker subprocesses; remote
// launchers can return any duplex stream speaking the worker protocol.
type Launcher func(shard int) (Transport, error)

// Options configure a distributed run.
type Options struct {
	// Shards is the worker-process count (default 1). It is clamped to
	// the number of pending points.
	Shards int
	// KernelWorkers is the compute-backend width handed to each worker
	// process. The default divides the coordinator's CPU budget (the
	// default backend's width) by the shard count, extending explore's
	// Workers × KernelWorkers ≤ NumCPU budgeting across processes; set it
	// explicitly when shards run on other machines.
	KernelWorkers int
	// CheckpointDir, when non-empty, persists every completed point (and
	// optional model snapshot) so a killed run can resume.
	CheckpointDir string
	// Resume loads previously completed points from CheckpointDir and
	// schedules only the rest. Without it, an existing checkpoint is an
	// error rather than silently reused.
	Resume bool
	// SnapshotModels additionally stores each trained point's network in
	// the checkpoint (modelio format). Requires CheckpointDir.
	SnapshotModels bool
	// MaxPoints bounds how many new points this invocation computes
	// (0 = no bound). The run then returns a partial result — resumable
	// from the checkpoint, so CheckpointDir is required — which is how
	// budgeted sweeps and the CI resume smoke slice a grid across
	// invocations.
	MaxPoints int
	// StallTimeout is how long a worker may go silent while a point is
	// in flight before the coordinator withdraws the point and reassigns
	// it to a surviving shard (the stalled transport is closed, exactly
	// as if its pipe had died). Workers heartbeat at a quarter of this
	// interval, so a slow point is distinguishable from a hung process.
	// 0 selects the default (2m); negative disables stall detection.
	StallTimeout time.Duration
	// MaxPointRetries bounds how many times a failing point is retried
	// (each retry lands on a different shard's queue) before it is
	// quarantined as a poison point and the sweep completes without it.
	// 0 selects the default (3); negative disables retries — the first
	// failure quarantines the point.
	MaxPointRetries int
	// RetryBackoff is the delay before a failed point's first retry is
	// requeued; the n-th retry waits RetryBackoff<<(n-1). 0 selects the
	// default (1s); negative means requeue immediately.
	RetryBackoff time.Duration
	// Launch starts the shard workers; required.
	Launch Launcher
	// Log, when non-nil, receives progress lines.
	Log io.Writer
	// Logger, when non-nil, replaces Log with a leveled sink: progress at
	// info, retries/stalls/quarantines at warn, per-point detail at info.
	// When nil, Log is wrapped at the info level, so existing callers see
	// exactly the output they always did.
	Logger *obs.Logger
	// ProgressEvery is the period of the coordinator's progress line
	// (completed/total, elapsed, ETA) and of the heartbeat-age gauge
	// refresh. 0 selects the default (10s); negative disables the ticker.
	ProgressEvery time.Duration
}

// Robustness defaults; see the Options fields above.
const (
	defaultStallTimeout    = 2 * time.Minute
	defaultMaxPointRetries = 3
	defaultRetryBackoff    = time.Second
	defaultProgressEvery   = 10 * time.Second
)

// Run executes the grid job across worker processes and merges the
// streamed points into an explore.Result. The merge is bit-identical to
// the single-process explore.Run of the same job (see the package
// comment). The result is partial — with unset points — when MaxPoints
// was hit or ctx was cancelled; in the latter case the context error is
// returned alongside the checkpointed partial result.
func Run(ctx context.Context, spec Spec, opts Options) (*explore.Result, error) {
	// The coordinator needs only the job's grid axes; datasets are loaded
	// lazily by the workers.
	job, err := spec.Build()
	if err != nil {
		return nil, err
	}
	cfg := job.Config
	if err := (&cfg).Validate(); err != nil {
		return nil, err
	}
	// Coordinator-side fault points (checkpoint writes) derive their
	// probabilistic schedule from the run seed unless seeded explicitly,
	// mirroring the workers.
	faultinject.Reseed(cfg.Seed)
	lg := opts.Logger
	if lg == nil {
		lg = obs.NewLogger(opts.Log, obs.LevelInfo)
	}
	if opts.Launch == nil {
		return nil, fmt.Errorf("grid: no launcher configured")
	}
	if opts.SnapshotModels && opts.CheckpointDir == "" {
		return nil, fmt.Errorf("grid: SnapshotModels requires CheckpointDir")
	}
	if opts.Resume && opts.CheckpointDir == "" {
		return nil, fmt.Errorf("grid: Resume requires CheckpointDir")
	}
	if opts.MaxPoints > 0 && opts.CheckpointDir == "" {
		return nil, fmt.Errorf("grid: MaxPoints produces a partial result that is only useful with a CheckpointDir to resume from")
	}

	res := explore.NewPartialResult(cfg.Vths, cfg.Ts, cfg.Epsilons)
	var ck *checkpoint
	if opts.CheckpointDir != "" {
		ck, err = initCheckpoint(opts.CheckpointDir, spec, &cfg, opts.Resume)
		if err != nil {
			return nil, err
		}
		if opts.Resume {
			done, corrupt, err := ck.load()
			if err != nil {
				return nil, err
			}
			if len(corrupt) > 0 {
				lg.Warnf("grid: quarantined %d corrupt checkpoint file(s) (%s); their points will be recomputed",
					len(corrupt), strings.Join(corrupt, ", "))
			}
			for idx, p := range done {
				if idx < 0 || idx >= len(res.Points) {
					return nil, fmt.Errorf("grid: checkpoint point %d out of a %d-point grid", idx, len(res.Points))
				}
				res.Set(idx, p)
			}
			lg.Infof("grid: resumed %d/%d points from %s", len(done), len(res.Points), opts.CheckpointDir)
		}
	}
	pending := res.MissingIndices()
	if len(pending) == 0 {
		return res, nil
	}

	shards := opts.Shards
	if shards < 1 {
		shards = 1
	}
	if shards > len(pending) {
		shards = len(pending)
	}
	kernelWorkers := opts.KernelWorkers
	if kernelWorkers <= 0 {
		kernelWorkers = compute.Default().Workers() / shards
		if kernelWorkers < 1 {
			kernelWorkers = 1
		}
	}
	lg.Infof("grid: %d points over %d shards, %d kernel workers each", len(pending), shards, kernelWorkers)

	stallTimeout := opts.StallTimeout
	switch {
	case stallTimeout == 0:
		stallTimeout = defaultStallTimeout
	case stallTimeout < 0:
		stallTimeout = 0
	}
	maxRetries := opts.MaxPointRetries
	switch {
	case maxRetries == 0:
		maxRetries = defaultMaxPointRetries
	case maxRetries < 0:
		maxRetries = 0
	}
	backoff := opts.RetryBackoff
	switch {
	case backoff == 0:
		backoff = defaultRetryBackoff
	case backoff < 0:
		backoff = 0
	}

	co := &coordinator{
		spec:          spec,
		sched:         newScheduler(pending, shards, opts.MaxPoints, maxRetries, backoff),
		res:           res,
		ck:            ck,
		wantModel:     opts.SnapshotModels,
		kernelWorkers: kernelWorkers,
		stallTimeout:  stallTimeout,
		lg:            lg,
		total:         len(res.Points),
		resumed:       len(res.Points) - len(pending),
		lastMsg:       make([]atomic.Int64, shards),
	}

	progressEvery := opts.ProgressEvery
	if progressEvery == 0 {
		progressEvery = defaultProgressEvery
	}
	if progressEvery > 0 {
		progressStop := make(chan struct{})
		defer close(progressStop)
		go co.progressLoop(progressEvery, progressStop)
	}

	// Cancellation: stop handing out work and close the transports so
	// workers blocked in reads unwind. Completed points are already on
	// disk, so a cancelled (or killed) run resumes from its checkpoint.
	cancelDone := make(chan struct{})
	defer close(cancelDone)
	go func() {
		select {
		case <-ctx.Done():
			co.sched.stop()
			co.closeTransports()
		case <-cancelDone:
		}
	}()

	var wg sync.WaitGroup
	errs := make([]error, shards)
	for w := 0; w < shards; w++ {
		t, err := opts.Launch(w)
		if err != nil {
			// Launch failures degrade the shard count; the remaining
			// workers absorb the block through stealing.
			errs[w] = fmt.Errorf("grid: launching shard %d: %w", w, err)
			lg.Warnf("grid: shard %d failed to launch: %v", w, err)
			continue
		}
		co.addTransport(t)
		wg.Add(1)
		go func(w int, t Transport) {
			defer wg.Done()
			defer t.Close()
			if err := co.serveShard(w, t); err != nil {
				errs[w] = err
				lg.Warnf("grid: shard %d failed: %v", w, err)
			}
		}(w, t)
	}
	wg.Wait()

	if err := ctx.Err(); err != nil {
		return res, err
	}
	// A failed checkpoint write voids the durability promise even when
	// every point completed in memory — never report such a run clean.
	if err := co.fatalError(); err != nil {
		return res, err
	}
	// Poison points were deliberately abandoned: the sweep completes as a
	// partial result (their cells stay unset, the report renders them as
	// missing) rather than failing everything for a few bad cells.
	if q := co.sched.quarantined(); len(q) > 0 {
		lg.Warnf("grid: %d poison point(s) quarantined after repeated failures: %v — result is partial", len(q), q)
	}
	if rem := co.sched.pendingCount(); rem > 0 {
		if co.sched.budgetExhausted() {
			lg.Infof("grid: point budget reached, %d points remain (resume from the checkpoint to continue)", rem)
			return res, nil
		}
		return res, errors.Join(append([]error{fmt.Errorf("grid: run incomplete, %d points remain", rem)}, errs...)...)
	}
	return res, nil
}

// coordinator is the shared state of one Run.
type coordinator struct {
	spec          Spec
	sched         *scheduler
	ck            *checkpoint
	wantModel     bool
	kernelWorkers int
	// stallTimeout is the resolved silence budget for an in-flight point
	// (0 = stall detection disabled).
	stallTimeout time.Duration
	lg           *obs.Logger
	total        int
	// resumed counts the points already complete before this run.
	resumed int
	// lastMsg holds, per shard, the unix-nano stamp of the shard's most
	// recent message; the progress ticker turns it into the heartbeat-age
	// gauge. Zero means the shard has not spoken yet.
	lastMsg []atomic.Int64

	mu         sync.Mutex
	res        *explore.Result
	transports []Transport
	completed  int
	// fatal records the first unrecoverable coordinator-side failure
	// (a checkpoint that could not be written); it fails the run even
	// when all points completed.
	fatal error
}

func (co *coordinator) fatalError() error {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.fatal
}

func (co *coordinator) addTransport(t Transport) {
	co.mu.Lock()
	defer co.mu.Unlock()
	co.transports = append(co.transports, t)
}

func (co *coordinator) closeTransports() {
	co.mu.Lock()
	defer co.mu.Unlock()
	for _, t := range co.transports {
		t.Close()
	}
}

// serveShard drives one worker: hello, then a pull loop — the worker
// announces ready, the coordinator assigns the next point (its own block
// first, then stolen stragglers). A transport error at any step hands
// the in-flight point to the retry scheduler for reassignment to a
// surviving shard; so does a stall — a worker that stays silent for the
// stall timeout while a point is in flight (heartbeats reset the clock)
// has its point withdrawn and its transport closed, exactly as if the
// pipe had died.
func (co *coordinator) serveShard(shard int, t Transport) (err error) {
	c := newConn(t)
	// Heartbeats at a quarter of the stall timeout give a healthy-but-
	// slow worker four chances per window to prove it is alive.
	hbMS := 0
	if co.stallTimeout > 0 {
		if hbMS = int(co.stallTimeout / 4 / time.Millisecond); hbMS < 1 {
			hbMS = 1
		}
	}
	if err := c.send(message{
		Type:          msgHello,
		Builder:       co.spec.Builder,
		Spec:          co.spec.Config,
		KernelWorkers: co.kernelWorkers,
		WantModel:     co.wantModel,
		Precision:     compute.ActivePrecision().Tag(),
		HeartbeatMS:   hbMS,
	}); err != nil {
		return fmt.Errorf("grid: shard %d hello: %w", shard, err)
	}

	// recv blocks in a read syscall, so watching for stalls needs the
	// reads on their own goroutine. The reader exits on the first recv
	// error or when serveShard returns (closing readerStop; the eventual
	// transport Close unblocks a read still in flight).
	type recvResult struct {
		m   message
		err error
	}
	msgs := make(chan recvResult)
	readerStop := make(chan struct{})
	defer close(readerStop)
	go func() {
		for {
			m, err := c.recv()
			select {
			case msgs <- recvResult{m, err}:
				if err != nil {
					return
				}
			case <-readerStop:
				return
			}
		}
	}()

	inflight := -1
	inflightGauge := metricInflight.With(shardLabel(shard))
	defer inflightGauge.Set(0)
	defer func() {
		if inflight >= 0 {
			co.pointFailed(shard, inflight, "shard lost")
		}
	}()
	for {
		// The stall clock is armed only while a point is in flight — an
		// idle worker blocked on its next assignment legitimately sends
		// nothing — and any message (heartbeats included) resets it.
		var stallC <-chan time.Time
		var stallT *time.Timer
		if inflight >= 0 && co.stallTimeout > 0 {
			stallT = time.NewTimer(co.stallTimeout)
			stallC = stallT.C
		}
		var m message
		select {
		case r := <-msgs:
			if stallT != nil {
				stallT.Stop()
			}
			co.lastMsg[shard].Store(time.Now().UnixNano())
			if r.err != nil {
				return fmt.Errorf("grid: shard %d: %w", shard, r.err)
			}
			m = r.m
		case <-stallC:
			idx := inflight
			inflight = -1
			co.pointFailed(shard, idx, fmt.Sprintf("no heartbeat for %v", co.stallTimeout))
			// The worker is known-wedged and its point is withdrawn:
			// kill it outright rather than granting Close's grace
			// period, and reap in the background so neither the
			// rescheduled point nor the run's exit waits on it.
			if k, ok := t.(interface{ Kill() }); ok {
				k.Kill()
			}
			go t.Close()
			return fmt.Errorf("grid: shard %d stalled on point %d (silent for %v); point withdrawn", shard, idx, co.stallTimeout)
		}
		switch m.Type {
		case msgHeartbeat:
			// Liveness only; receiving it already reset the stall clock.
		case msgPointDone:
			if m.Index != inflight || m.Point == nil {
				return fmt.Errorf("grid: shard %d reported point %d, expected %d", shard, m.Index, inflight)
			}
			inflight = -1
			inflightGauge.Set(0)
			metricPointsDone.Inc()
			co.sched.complete()
			if err := co.record(shard, m); err != nil {
				// A checkpoint that cannot be written voids the run's
				// durability promise: halt everything rather than let the
				// sweep continue unprotected.
				co.sched.stop()
				return err
			}
		case msgPointFailed:
			if m.Index != inflight {
				return fmt.Errorf("grid: shard %d failed point %d, expected %d", shard, m.Index, inflight)
			}
			inflight = -1
			inflightGauge.Set(0)
			co.pointFailed(shard, m.Index, m.Err)
		case msgReady:
			idx, ok := co.sched.next(shard)
			if !ok {
				_ = c.send(message{Type: msgDone})
				return nil
			}
			inflight = idx
			inflightGauge.Set(1)
			if err := c.send(message{Type: msgPoint, Index: idx}); err != nil {
				return fmt.Errorf("grid: shard %d assigning point %d: %w", shard, idx, err)
			}
		default:
			return fmt.Errorf("grid: shard %d sent unexpected %q", shard, m.Type)
		}
	}
}

// pointFailed routes one failed attempt through the retry scheduler and
// logs the outcome (backoff retry on another shard, or quarantine).
func (co *coordinator) pointFailed(shard, idx int, cause string) {
	fails, quarantined := co.sched.fail(shard, idx)
	switch {
	case quarantined:
		metricPointsQuarantined.Inc()
		co.lg.Warnf("grid: point %d failed on shard %d (%s) — quarantined after %d failed attempts", idx, shard, cause, fails)
	case fails > 0:
		metricPointRetries.Inc()
		co.lg.Warnf("grid: point %d failed on shard %d (%s), retry %d scheduled", idx, shard, cause, fails)
	}
}

// record merges one completed point into the result and persists it.
func (co *coordinator) record(shard int, m message) error {
	co.mu.Lock()
	defer co.mu.Unlock()
	// The merged result must be single-tier: mixing bit-exact and fast
	// points would silently void the bit-identical-merge contract, so a
	// point computed at any other tier than this run's is fatal.
	if want := compute.ActivePrecision().Tag(); m.Point.Precision != want {
		err := fmt.Errorf("grid: shard %d computed point %d at precision %q, run is %q — mixed-tier merges are rejected",
			shard, m.Index, orDefault(m.Point.Precision), orDefault(want))
		if co.fatal == nil {
			co.fatal = err
		}
		return err
	}
	co.res.Set(m.Index, m.Point.Point())
	co.completed++
	if co.ck != nil {
		if err := co.ck.savePoint(m.Index, m.Point, m.Model); err != nil {
			err = fmt.Errorf("grid: checkpointing point %d: %w", m.Index, err)
			if co.fatal == nil {
				co.fatal = err
			}
			return err
		}
	}
	co.lg.Infof("grid: point %d (Vth=%g, T=%d) done on shard %d [%d/%d]",
		m.Index, m.Point.Vth, m.Point.T, shard, co.resumed+co.completed, co.total)
	return nil
}

// progressLoop periodically logs sweep progress with an ETA
// extrapolated from the completed-point rate, and refreshes the
// per-shard heartbeat-age gauges (an age gauge updated on receipt would
// always read ~0; sampling on the ticker is what makes a silent shard
// visible).
func (co *coordinator) progressLoop(every time.Duration, stop <-chan struct{}) {
	start := time.Now()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
		}
		now := time.Now()
		for i := range co.lastMsg {
			if last := co.lastMsg[i].Load(); last > 0 {
				metricHeartbeatAge.With(shardLabel(i)).Set(now.Sub(time.Unix(0, last)).Seconds())
			}
		}
		co.mu.Lock()
		done := co.completed
		co.mu.Unlock()
		newTotal := co.total - co.resumed
		elapsed := now.Sub(start)
		eta := ""
		if done > 0 && done < newTotal {
			rem := time.Duration(float64(elapsed) / float64(done) * float64(newTotal-done))
			eta = fmt.Sprintf(", eta %v", rem.Round(time.Second))
		}
		co.lg.Infof("grid: progress %d/%d points, %v elapsed%s",
			co.resumed+done, co.total, elapsed.Round(time.Second), eta)
	}
}

// orDefault spells the empty precision tag out for error messages.
func orDefault(tag string) string {
	if tag == "" {
		return "float64"
	}
	return tag
}

// ---------------------------------------------------------------------------
// Scheduler: static blocks + work stealing

// scheduler hands out pending point indices. Each shard owns one
// contiguous block (static assignment); a shard whose block drains
// steals from the back of the richest remaining block. A shard with no
// work left blocks until every in-flight point lands and every retry
// backoff drains — if a straggler shard dies or stalls, its point comes
// back and an idle shard picks it up. A point that keeps failing is
// retried at most maxRetries times (each retry targets a different
// shard's queue, after an exponential backoff) and then quarantined:
// the sweep completes without it rather than looping on a poison cell.
type scheduler struct {
	mu       sync.Mutex
	cond     *sync.Cond
	queues   [][]int
	inflight int
	// delayed counts points parked in retry-backoff timers — work that
	// will reappear, so idle shards must not give up while it is pending.
	delayed int
	// fails counts failed attempts per point index.
	fails      map[int]int
	maxRetries int
	backoff    time.Duration
	// poisoned lists the quarantined point indices, in quarantine order.
	poisoned []int
	// budget is the remaining new-assignment allowance (-1 = unlimited).
	budget int
	// exhausted latches once a shard was turned away because the budget
	// hit zero, so a later retry refund cannot make the run look like a
	// worker failure.
	exhausted bool
	stopped   bool
}

func newScheduler(pending []int, shards, maxPoints, maxRetries int, backoff time.Duration) *scheduler {
	s := &scheduler{
		queues:     make([][]int, shards),
		fails:      make(map[int]int),
		maxRetries: maxRetries,
		backoff:    backoff,
		budget:     -1,
	}
	if maxPoints > 0 {
		s.budget = maxPoints
	}
	s.cond = sync.NewCond(&s.mu)
	// Contiguous blocks in index order, sized as evenly as possible.
	per := len(pending) / shards
	extra := len(pending) % shards
	lo := 0
	for w := 0; w < shards; w++ {
		hi := lo + per
		if w < extra {
			hi++
		}
		s.queues[w] = append([]int(nil), pending[lo:hi]...)
		lo = hi
	}
	return s
}

// next returns the next point for a shard, blocking while other shards
// still have points in flight (their failure may produce new work). The
// second return is false when the shard should shut down: no work left,
// the assignment budget is spent, or the run was stopped.
func (s *scheduler) next(shard int) (int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.budget == 0 {
			s.exhausted = true
			return 0, false
		}
		if s.stopped {
			return 0, false
		}
		if idx, ok := s.pop(shard); ok {
			s.inflight++
			if s.budget > 0 {
				s.budget--
			}
			return idx, true
		}
		if s.inflight == 0 && s.delayed == 0 {
			return 0, false
		}
		s.cond.Wait()
	}
}

// pop takes from the shard's own block first, then steals from the back
// of the richest other block.
func (s *scheduler) pop(shard int) (int, bool) {
	if q := s.queues[shard]; len(q) > 0 {
		idx := q[0]
		s.queues[shard] = q[1:]
		return idx, true
	}
	richest, max := -1, 0
	for w, q := range s.queues {
		if len(q) > max {
			richest, max = w, len(q)
		}
	}
	if richest < 0 {
		return 0, false
	}
	q := s.queues[richest]
	idx := q[len(q)-1]
	s.queues[richest] = q[:len(q)-1]
	metricSteals.Inc()
	return idx, true
}

// complete marks one in-flight point as landed.
func (s *scheduler) complete() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inflight--
	s.cond.Broadcast()
}

// fail records one failed attempt for an in-flight point. While the
// point is under its retry allowance it is requeued — to a different
// shard each time, after an exponential backoff — with its assignment
// budget refunded; past the allowance it is quarantined and the sweep
// moves on without it. The returned count is the point's total failed
// attempts (0 when the scheduler is already stopped and the failure is
// discarded).
func (s *scheduler) fail(shard, idx int) (fails int, quarantined bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inflight--
	if s.stopped {
		s.cond.Broadcast()
		return 0, false
	}
	s.fails[idx]++
	n := s.fails[idx]
	if n > s.maxRetries {
		s.poisoned = append(s.poisoned, idx)
		s.cond.Broadcast()
		return n, true
	}
	if s.budget >= 0 {
		s.budget++
	}
	// A different shard per retry: if the failure was the worker's (a
	// wedged process, a sick host), the retry dodges it; if it is the
	// point's, distinct workers failing is what justifies quarantine.
	target := (shard + n) % len(s.queues)
	shift := n - 1
	if shift > 16 {
		shift = 16
	}
	s.delayed++
	time.AfterFunc(s.backoff<<shift, func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		s.delayed--
		s.queues[target] = append(s.queues[target], idx)
		s.cond.Broadcast()
	})
	s.cond.Broadcast()
	return n, false
}

// quarantined returns the poison points abandoned so far.
func (s *scheduler) quarantined() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]int(nil), s.poisoned...)
}

// stop makes every subsequent (and blocked) next call return false.
func (s *scheduler) stop() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stopped = true
	s.cond.Broadcast()
}

// pendingCount returns queued, in-flight and backoff-parked points.
// Quarantined points are not pending: they were deliberately abandoned.
func (s *scheduler) pendingCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.inflight + s.delayed
	for _, q := range s.queues {
		n += len(q)
	}
	return n
}

// budgetExhausted reports whether the MaxPoints allowance was used up.
func (s *scheduler) budgetExhausted() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.exhausted || s.budget == 0
}
