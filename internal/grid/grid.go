// Package grid is the distributed engine behind Algorithm 1's (Vth, T)
// exploration: it shards the grid of internal/explore across worker
// processes, streams per-point results back over a line-delimited JSON
// protocol, persists every completed point to a durable on-disk
// checkpoint, and merges the shards into an explore.Result that is
// bit-identical to the single-process explore.Run.
//
// # Architecture
//
// The coordinator (Run) owns scheduling: the pending points are split
// into one contiguous block per shard (static assignment keeps each
// worker's points cache- and locality-friendly), workers pull one point
// at a time, and a worker that drains its own block steals from the back
// of the richest remaining block, so straggler shards do not serialise
// the run. A crashed worker's in-flight point is returned to the queue
// and reassigned; the run fails only when every worker is gone.
//
// Workers are separate processes — spawned locally via ExecLauncher, or
// attached over any byte stream by a custom Launcher, so remote launch
// wrappers (ssh, containers) need nothing beyond stdin/stdout plumbing.
// Each worker receives a kernel budget with its hello message: the
// coordinator divides its own CPU budget by the shard count (the
// Workers × KernelWorkers ≤ NumCPU rule of internal/explore, applied
// across processes), so shards on one machine compose without
// oversubscribing it.
//
// # Determinism
//
// Every source of randomness under a grid point derives from the
// configuration seed and the point's T-major index (see the per-point
// entry points of internal/explore), and job specifications travel as
// JSON whose float64 encoding round-trips exactly. A merged multi-shard
// result — including one resumed from a checkpoint — is therefore
// bit-identical to the single-process run, which the tests assert
// byte-for-byte on the serialised result.
package grid

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"snnsec/internal/dataset"
	"snnsec/internal/explore"
)

// Job is a reconstructed grid job: the exploration configuration
// (including the network builder and optimiser factory, which cannot
// travel over the wire) plus a lazy dataset loader. Data is a function
// so the coordinator — which only needs the grid axes — never pays for
// loading the training set; workers call it once after the hello.
type Job struct {
	Config explore.Config
	// Data loads the train and test datasets. It must be deterministic:
	// every process of a run must see identical data.
	Data func() (trainDS, testDS *dataset.Dataset, err error)
}

// BuildJob reconstructs a grid job from its serialised specification.
// It runs in every process of a distributed run — coordinator and
// workers alike — and must be deterministic: two processes building the
// same spec must produce jobs whose per-point runs are bit-identical.
type BuildJob func(spec json.RawMessage) (Job, error)

var (
	registryMu sync.RWMutex
	registry   = map[string]BuildJob{}
)

// Register installs a job builder under a name. Builders are resolved by
// name from the wire, so every binary participating in a run (usually
// just snnsec, as coordinator and as grid-worker) must register the same
// names; packages register in init.
func Register(name string, b BuildJob) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("grid: duplicate builder %q", name))
	}
	registry[name] = b
}

// Builders returns the registered builder names, sorted.
func Builders() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func resolveBuilder(name string) (BuildJob, error) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	b, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("grid: unknown job builder %q (registered: %v)", name, Builders())
	}
	return b, nil
}

// Spec names a grid job: a registered builder plus its serialised
// configuration. The same Spec is interpreted by the coordinator (for
// the grid axes and checkpoint fingerprint) and by every worker (to
// reconstruct the job).
type Spec struct {
	Builder string          `json:"builder"`
	Config  json.RawMessage `json:"config"`
}

// Build resolves the builder and reconstructs the job.
func (s Spec) Build() (Job, error) {
	b, err := resolveBuilder(s.Builder)
	if err != nil {
		return Job{}, err
	}
	return b(s.Config)
}

// Fingerprint returns a stable hash of the spec (builder name plus the
// whitespace-insensitive configuration JSON). Checkpoints record it so a
// resume against a different job is rejected instead of silently merging
// incompatible points.
func (s Spec) Fingerprint() string {
	var compact bytes.Buffer
	if err := json.Compact(&compact, s.Config); err != nil {
		compact.Reset()
		compact.Write(s.Config)
	}
	h := sha256.New()
	h.Write([]byte(s.Builder))
	h.Write([]byte{0})
	h.Write(compact.Bytes())
	return hex.EncodeToString(h.Sum(nil))
}
