package grid

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"snnsec/internal/dataset"
	"snnsec/internal/explore"
	"snnsec/internal/nn"
	"snnsec/internal/snn"
	"snnsec/internal/tensor"
	"snnsec/internal/train"
)

// testJobSpec parameterises the registered test builder. Everything the
// job needs travels through it, exactly like a real distributed spec.
type testJobSpec struct {
	ImageSize int       `json:"image_size"`
	TrainN    int       `json:"train_n"`
	TestN     int       `json:"test_n"`
	Vths      []float64 `json:"vths"`
	Ts        []int     `json:"ts"`
}

func init() {
	Register("grid-test", func(raw json.RawMessage) (Job, error) {
		var js testJobSpec
		if err := json.Unmarshal(raw, &js); err != nil {
			return Job{}, err
		}
		mk := func(n int, seed uint64) (*dataset.Dataset, error) {
			sc := dataset.DefaultSynthConfig(n, seed)
			sc.Size = js.ImageSize
			d, err := dataset.SynthDigits(sc)
			if err != nil {
				return nil, err
			}
			d.Normalize()
			return d, nil
		}
		cfg := explore.Config{
			Vths:              js.Vths,
			Ts:                js.Ts,
			Epsilons:          []float64{0.5, 1.5},
			AccuracyThreshold: 0.4,
			Train: train.Config{
				Epochs:    3,
				BatchSize: 20,
				GradClip:  5,
				Shuffle:   tensor.NewRand(7, 7), // per-point stream derived by explore
			},
			NewOptimizer: func() train.Optimizer { return train.NewAdam(1e-2) },
			AttackSteps:  2,
			EvalBatch:    32,
			Seed:         3,
			Build: func(vth float64, T int) (*snn.Network, error) {
				r := tensor.NewRand(11, 0)
				ncfg := snn.NeuronConfig{Vth: vth, Alpha: 0.9, Reset: snn.ResetZero, Surrogate: snn.FastSigmoid{Beta: 10}}
				return &snn.Network{
					Encoder: snn.ConstantCurrentEncoder{Gain: 1},
					Hidden: []snn.Layer{
						{Syn: nn.NewSequential(nn.Flatten{}, nn.NewLinear(r, js.ImageSize*js.ImageSize, 24)), Cfg: ncfg},
					},
					Readout:    nn.NewLinear(r, 24, 10),
					ReadoutCfg: ncfg,
					Mode:       snn.ReadoutMembrane,
					T:          T,
					LogitScale: 10,
				}, nil
			},
		}
		return Job{
			Config: cfg,
			Data: func() (*dataset.Dataset, *dataset.Dataset, error) {
				trainDS, err := mk(js.TrainN, 1)
				if err != nil {
					return nil, nil, err
				}
				testDS, err := mk(js.TestN, 2)
				if err != nil {
					return nil, nil, err
				}
				return trainDS, testDS, nil
			},
		}, nil
	})
}

func testSpec(t *testing.T) Spec {
	t.Helper()
	raw, err := json.Marshal(testJobSpec{
		ImageSize: 12, TrainN: 80, TestN: 30,
		Vths: []float64{0.5, 1}, Ts: []int{2, 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	return Spec{Builder: "grid-test", Config: raw}
}

// singleProcessJSON runs the same job with the in-process explore.Run
// and returns its serialised result — the bit-identity baseline.
func singleProcessJSON(t *testing.T, spec Spec) []byte {
	t.Helper()
	job, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	trainDS, testDS, err := job.Data()
	if err != nil {
		t.Fatal(err)
	}
	res, err := explore.Run(job.Config, trainDS, testDS)
	if err != nil {
		t.Fatal(err)
	}
	return resultJSON(t, res)
}

func resultJSON(t *testing.T, res *explore.Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// ---------------------------------------------------------------------------
// In-process transports

// pipeTransport is the coordinator's end of an in-process worker.
type pipeTransport struct {
	r    *io.PipeReader
	w    *io.PipeWriter
	once sync.Once
}

func (p *pipeTransport) Read(b []byte) (int, error)  { return p.r.Read(b) }
func (p *pipeTransport) Write(b []byte) (int, error) { return p.w.Write(b) }
func (p *pipeTransport) Close() error {
	p.once.Do(func() {
		p.w.Close()
		p.r.Close()
	})
	return nil
}

// inProcLauncher runs ServeWorker on a goroutine per shard, connected by
// pipes — the protocol without the subprocess.
func inProcLauncher() Launcher {
	return func(shard int) (Transport, error) {
		toWorkerR, toWorkerW := io.Pipe()
		fromWorkerR, fromWorkerW := io.Pipe()
		go func() {
			_ = ServeWorker(toWorkerR, fromWorkerW)
			fromWorkerW.Close()
		}()
		return &pipeTransport{r: fromWorkerR, w: toWorkerW}, nil
	}
}

// dieAfterReader crashes a worker: it delivers n point assignments and
// then reports EOF instead of the (n+1)-th, so the worker dies with that
// point in flight at the coordinator.
type dieAfterReader struct {
	r          io.Reader
	pointsLeft int
}

func (d *dieAfterReader) Read(p []byte) (int, error) {
	n, err := d.r.Read(p)
	if err != nil {
		return n, err
	}
	if bytes.Contains(p[:n], []byte(`"type":"point"`)) {
		if d.pointsLeft == 0 {
			return 0, io.EOF
		}
		d.pointsLeft--
	}
	return n, err
}

// crashingLauncher makes the given shard die after serving n points;
// other shards run normally.
func crashingLauncher(crashShard, n int) Launcher {
	healthy := inProcLauncher()
	return func(shard int) (Transport, error) {
		if shard != crashShard {
			return healthy(shard)
		}
		toWorkerR, toWorkerW := io.Pipe()
		fromWorkerR, fromWorkerW := io.Pipe()
		go func() {
			_ = ServeWorker(&dieAfterReader{r: toWorkerR, pointsLeft: n}, fromWorkerW)
			fromWorkerW.Close()
		}()
		return &pipeTransport{r: fromWorkerR, w: toWorkerW}, nil
	}
}

// ---------------------------------------------------------------------------
// End-to-end distribution tests

func TestDistributedMatchesSingleProcess(t *testing.T) {
	spec := testSpec(t)
	want := singleProcessJSON(t, spec)
	res, err := Run(context.Background(), spec, Options{
		Shards: 2,
		Launch: inProcLauncher(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := resultJSON(t, res); !bytes.Equal(got, want) {
		t.Errorf("2-shard result differs from single-process run:\n got: %s\nwant: %s", got, want)
	}
}

func TestCrashedWorkerPointsReassigned(t *testing.T) {
	spec := testSpec(t)
	want := singleProcessJSON(t, spec)
	// Shard 1 dies with a point in flight; shard 0 must absorb its block.
	res, err := Run(context.Background(), spec, Options{
		Shards: 2,
		Launch: crashingLauncher(1, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := resultJSON(t, res); !bytes.Equal(got, want) {
		t.Errorf("result after crash reassignment differs from single-process run")
	}
}

func TestAllWorkersDeadFails(t *testing.T) {
	spec := testSpec(t)
	_, err := Run(context.Background(), spec, Options{
		Shards: 1,
		Launch: crashingLauncher(0, 0),
	})
	if err == nil {
		t.Fatal("run with no surviving workers succeeded")
	}
}

func TestCheckpointResumeBitIdentical(t *testing.T) {
	spec := testSpec(t)
	want := singleProcessJSON(t, spec)
	dir := filepath.Join(t.TempDir(), "ckpt")

	// Phase 1: compute two points, then stop (the budgeted form of a
	// killed run — every completed point is already durable).
	res, err := Run(context.Background(), spec, Options{
		Shards:        2,
		CheckpointDir: dir,
		MaxPoints:     2,
		Launch:        inProcLauncher(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if missing := res.MissingIndices(); len(missing) != 2 {
		t.Fatalf("partial run left %d missing points, want 2", len(missing))
	}

	// Phase 2: resume from the checkpoint and finish.
	res, err = Run(context.Background(), spec, Options{
		Shards:        2,
		CheckpointDir: dir,
		Resume:        true,
		Launch:        inProcLauncher(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := resultJSON(t, res); !bytes.Equal(got, want) {
		t.Errorf("resumed result differs from single-process run:\n got: %s\nwant: %s", got, want)
	}
}

func TestKilledRunResumes(t *testing.T) {
	spec := testSpec(t)
	want := singleProcessJSON(t, spec)
	dir := filepath.Join(t.TempDir(), "ckpt")

	// Kill the coordinator after the first checkpointed point: cancel the
	// context from the progress log, which fires inside record() — points
	// may still land while the cancellation propagates, exactly like a
	// real kill arriving mid-write.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err := Run(ctx, spec, Options{
		Shards:        2,
		CheckpointDir: dir,
		Launch:        inProcLauncher(),
		Log:           cancelOnFirstPoint{cancel: cancel},
	})
	if err == nil {
		t.Fatal("cancelled run returned no error")
	}

	res, err := Run(context.Background(), spec, Options{
		Shards:        2,
		CheckpointDir: dir,
		Resume:        true,
		Launch:        inProcLauncher(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := resultJSON(t, res); !bytes.Equal(got, want) {
		t.Errorf("kill-and-resume result differs from single-process run")
	}
}

// cancelOnFirstPoint cancels the run the first time a completed point is
// logged.
type cancelOnFirstPoint struct{ cancel context.CancelFunc }

func (c cancelOnFirstPoint) Write(p []byte) (int, error) {
	if bytes.Contains(p, []byte("done on shard")) {
		c.cancel()
	}
	return len(p), nil
}

func TestModelSnapshotsWritten(t *testing.T) {
	spec := testSpec(t)
	dir := filepath.Join(t.TempDir(), "ckpt")
	res, err := Run(context.Background(), spec, Options{
		Shards:         2,
		CheckpointDir:  dir,
		SnapshotModels: true,
		Launch:         inProcLauncher(),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Points {
		if res.Points[i].Err != nil {
			continue
		}
		if _, err := os.Stat(filepath.Join(dir, modelFile(i))); err != nil {
			t.Errorf("point %d has no model snapshot: %v", i, err)
		}
	}
}

func TestCheckpointGuards(t *testing.T) {
	spec := testSpec(t)
	dir := filepath.Join(t.TempDir(), "ckpt")
	if _, err := Run(context.Background(), spec, Options{
		Shards: 1, CheckpointDir: dir, MaxPoints: 1, Launch: inProcLauncher(),
	}); err != nil {
		t.Fatal(err)
	}
	// Same directory without resume must be refused.
	if _, err := Run(context.Background(), spec, Options{
		Shards: 1, CheckpointDir: dir, Launch: inProcLauncher(),
	}); err == nil {
		t.Error("existing checkpoint reused without resume")
	}
	// A different job must be refused even with resume.
	other, err := json.Marshal(testJobSpec{ImageSize: 12, TrainN: 60, TestN: 30, Vths: []float64{0.5}, Ts: []int{2}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), Spec{Builder: "grid-test", Config: other}, Options{
		Shards: 1, CheckpointDir: dir, Resume: true, Launch: inProcLauncher(),
	}); err == nil {
		t.Error("checkpoint of a different job accepted")
	}
}

func TestSpecFingerprintIgnoresWhitespace(t *testing.T) {
	a := Spec{Builder: "b", Config: json.RawMessage(`{"x": 1,  "y": [2]}`)}
	b := Spec{Builder: "b", Config: json.RawMessage(`{"x":1,"y":[2]}`)}
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("fingerprint depends on JSON whitespace")
	}
	c := Spec{Builder: "b", Config: json.RawMessage(`{"x":2,"y":[2]}`)}
	if a.Fingerprint() == c.Fingerprint() {
		t.Error("fingerprint ignores config changes")
	}
	d := Spec{Builder: "other", Config: b.Config}
	if b.Fingerprint() == d.Fingerprint() {
		t.Error("fingerprint ignores builder name")
	}
}

func TestOptionsRequireCheckpointDir(t *testing.T) {
	spec := testSpec(t)
	if _, err := Run(context.Background(), spec, Options{
		Shards: 1, Resume: true, Launch: inProcLauncher(),
	}); err == nil {
		t.Error("Resume without CheckpointDir accepted — a forgotten -checkpoint-dir would silently recompute the whole sweep")
	}
	if _, err := Run(context.Background(), spec, Options{
		Shards: 1, MaxPoints: 1, Launch: inProcLauncher(),
	}); err == nil {
		t.Error("MaxPoints without CheckpointDir accepted — the partial result would not be resumable")
	}
	if _, err := Run(context.Background(), spec, Options{
		Shards: 1, SnapshotModels: true, Launch: inProcLauncher(),
	}); err == nil {
		t.Error("SnapshotModels without CheckpointDir accepted")
	}
}

func TestUnknownBuilder(t *testing.T) {
	_, err := Run(context.Background(), Spec{Builder: "nope"}, Options{Shards: 1, Launch: inProcLauncher()})
	if err == nil {
		t.Error("unknown builder accepted")
	}
}

// ---------------------------------------------------------------------------
// Scheduler unit tests

func TestSchedulerStaticBlocks(t *testing.T) {
	s := newScheduler([]int{0, 1, 2, 3, 4}, 2, 0, 3, 0)
	// Shard 0 owns {0,1,2}, shard 1 owns {3,4}.
	if idx, ok := s.next(1); !ok || idx != 3 {
		t.Fatalf("shard 1 first point = %d, want 3", idx)
	}
	if idx, ok := s.next(0); !ok || idx != 0 {
		t.Fatalf("shard 0 first point = %d, want 0", idx)
	}
}

func TestSchedulerStealsFromRichest(t *testing.T) {
	s := newScheduler([]int{0, 1, 2, 3, 4, 5}, 3, 0, 3, 0)
	// Drain shard 2's block {4,5}.
	s.next(2)
	s.next(2)
	s.complete()
	s.complete()
	// Next call steals from the back of the richest block — shard 0's
	// {0,1} and shard 1's {2,3} tie at 2; the first richest wins, tail
	// first.
	if idx, ok := s.next(2); !ok || idx != 1 {
		t.Fatalf("steal = %d, want 1 (tail of shard 0's block)", idx)
	}
}

func TestSchedulerRetryAndBudget(t *testing.T) {
	s := newScheduler([]int{0, 1, 2}, 1, 2, 3, 0)
	i0, _ := s.next(0)
	if i0 != 0 {
		t.Fatalf("first point = %d, want 0", i0)
	}
	// The failed assignment refunds the budget, so two fresh assignments
	// still fit the allowance of 2; the retried point itself lands at the
	// back of the queue and is the one the budget then excludes.
	if n, q := s.fail(0, i0); q || n != 1 {
		t.Fatalf("fail = (%d, %v), want first retry", n, q)
	}
	if idx, ok := s.next(0); !ok || idx != 1 {
		t.Fatalf("second point = %d, want 1", idx)
	}
	s.complete()
	if idx, ok := s.next(0); !ok || idx != 2 {
		t.Fatalf("third point = %v, want 2", idx)
	}
	s.complete()
	if _, ok := s.next(0); ok {
		t.Fatal("assignment beyond MaxPoints budget")
	}
	if !s.budgetExhausted() {
		t.Error("budget not reported exhausted")
	}
	// The retried point is still pending (queued or parked in backoff).
	if s.pendingCount() != 1 {
		t.Errorf("pendingCount = %d, want 1", s.pendingCount())
	}
}

func TestSchedulerBlocksUntilInflightLands(t *testing.T) {
	s := newScheduler([]int{0, 1}, 2, 0, 3, 0)
	if _, ok := s.next(0); !ok {
		t.Fatal("shard 0 got no point")
	}
	got := make(chan int, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.next(1) // takes shard 1's own point
		s.complete()
		// Shard 1 is now idle but shard 0's point is in flight: this call
		// must block until the fail below requeues it, then reacquire it.
		if idx, ok := s.next(1); ok {
			got <- idx
		}
	}()
	s.fail(0, 0)
	wg.Wait()
	select {
	case idx := <-got:
		if idx != 0 {
			t.Errorf("reassigned point = %d, want 0", idx)
		}
	default:
		t.Error("idle shard did not pick up the requeued point")
	}
}

func TestSchedulerQuarantinesPoisonPoint(t *testing.T) {
	// One poison point, two shards, two retries allowed. Whichever queue
	// each retry targets, shard 0 steals it back — next blocks while the
	// zero-backoff requeue is in flight, so the loop is deterministic.
	s := newScheduler([]int{0}, 2, 0, 2, 0)
	for attempt := 1; ; attempt++ {
		idx, ok := s.next(0)
		if !ok {
			t.Fatal("scheduler refused the retry")
		}
		if idx != 0 {
			t.Fatalf("drew point %d, want 0", idx)
		}
		n, quarantined := s.fail(0, idx)
		if quarantined {
			if n != 3 {
				t.Fatalf("quarantined after %d failed attempts, want 3 (initial + 2 retries)", n)
			}
			break
		}
		if attempt > 5 {
			t.Fatal("poison point never quarantined")
		}
	}
	if q := s.quarantined(); len(q) != 1 || q[0] != 0 {
		t.Fatalf("quarantined = %v, want [0]", q)
	}
	// The poison point is abandoned, not pending: the sweep finishes.
	if _, ok := s.next(0); ok {
		t.Fatal("scheduler handed out a quarantined point")
	}
	if s.pendingCount() != 0 {
		t.Errorf("pendingCount = %d, want 0 (quarantined points are abandoned)", s.pendingCount())
	}
}

func TestSchedulerRetryTargetsOtherShard(t *testing.T) {
	s := newScheduler([]int{0, 1, 2, 3}, 2, 0, 3, 0)
	idx, _ := s.next(0) // shard 0's first point
	s.fail(0, idx)
	// Zero backoff: the requeue lands (asynchronously) on shard 1's queue.
	deadline := time.Now().Add(2 * time.Second)
	for {
		s.mu.Lock()
		q := append([]int(nil), s.queues[1]...)
		s.mu.Unlock()
		if len(q) == 3 && q[2] == idx {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("retry of point %d never reached shard 1's queue (queue %v)", idx, q)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register did not panic")
		}
	}()
	Register("grid-test", nil)
}
