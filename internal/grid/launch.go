package grid

import (
	"fmt"
	"io"
	"os"
	"os/exec"
	"sync"
	"time"

	"snnsec/internal/faultinject"
)

// ExecLauncher spawns one local worker subprocess per shard, speaking
// the protocol over its stdin/stdout; stderr passes through to the
// coordinator's stderr so worker logs stay visible. The CLI uses it as
// ExecLauncher(os.Executable(), "grid-worker"); pointing name at a
// wrapper script (ssh, docker run, …) is all a remote launch needs.
func ExecLauncher(name string, args ...string) Launcher {
	return func(shard int) (Transport, error) {
		cmd := exec.Command(name, args...)
		cmd.Stderr = os.Stderr
		// Tag the subprocess with its shard id so shard-scoped fault
		// rules (point@s2:…) land on exactly one worker. The fault spec
		// and seed themselves travel via the environment too (the CLI
		// exports them), so a chaos schedule follows the whole tree.
		cmd.Env = append(os.Environ(), fmt.Sprintf("%s=%d", faultinject.EnvShard, shard))
		stdin, err := cmd.StdinPipe()
		if err != nil {
			return nil, err
		}
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			return nil, err
		}
		if err := cmd.Start(); err != nil {
			return nil, fmt.Errorf("grid: starting worker %q: %w", name, err)
		}
		return &execTransport{cmd: cmd, in: stdin, out: stdout}, nil
	}
}

// execTransport is the coordinator's handle on a worker subprocess.
type execTransport struct {
	cmd  *exec.Cmd
	in   io.WriteCloser
	out  io.ReadCloser
	once sync.Once
	werr error
}

func (t *execTransport) Read(p []byte) (int, error)  { return t.out.Read(p) }
func (t *execTransport) Write(p []byte) (int, error) { return t.in.Write(p) }

// Kill forcibly terminates the worker process. The coordinator uses it
// when a worker is known-wedged (its point already withdrawn after a
// stall) so the subsequent Close reaps immediately instead of waiting
// out the grace period.
func (t *execTransport) Kill() {
	if t.cmd.Process != nil {
		_ = t.cmd.Process.Kill()
	}
}

// Close shuts the worker down: closing stdin makes a healthy worker exit
// its read loop; a wedged one is killed after a grace period so Close
// (and the coordinator) cannot hang on it. Close is idempotent — the
// shard goroutine and the cancellation path may both call it.
func (t *execTransport) Close() error {
	t.once.Do(func() {
		_ = t.in.Close()
		killer := time.AfterFunc(10*time.Second, func() {
			if t.cmd.Process != nil {
				_ = t.cmd.Process.Kill()
			}
		})
		defer killer.Stop()
		t.werr = t.cmd.Wait()
	})
	return t.werr
}
