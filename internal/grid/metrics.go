package grid

import (
	"strconv"

	"snnsec/internal/obs"
)

// Sweep telemetry. Like the serve instruments these are process-wide
// and registered at init, so a serving or streaming binary exposes the
// grid families (zero-valued) too; the armed CLI coordinator is the
// only process that writes them.
var (
	metricPointsDone = obs.NewCounter("snnsec_grid_points_done_total",
		"Grid points completed and merged into the result.")
	metricPointRetries = obs.NewCounter("snnsec_grid_point_retries_total",
		"Failed point attempts requeued for retry on another shard.")
	metricPointsQuarantined = obs.NewCounter("snnsec_grid_points_quarantined_total",
		"Poison points abandoned after exhausting their retry allowance.")
	metricSteals = obs.NewCounter("snnsec_grid_steals_total",
		"Points taken from another shard's block by an idle shard.")
	metricInflight = obs.NewGaugeVec("snnsec_grid_inflight",
		"Points currently in flight, per shard.", "shard")
	metricHeartbeatAge = obs.NewGaugeVec("snnsec_grid_heartbeat_age_seconds",
		"Seconds since each shard's last message, sampled by the progress ticker.", "shard")
)

func shardLabel(shard int) string { return strconv.Itoa(shard) }
