package grid

import (
	"bytes"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"snnsec/internal/obs"
)

type lockedBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (l *lockedBuffer) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *lockedBuffer) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

// TestProgressLoop pins the periodic progress line (counts resumed
// points, reports an ETA once a rate exists) and the heartbeat-age
// gauge refresh.
func TestProgressLoop(t *testing.T) {
	obs.Arm()
	t.Cleanup(obs.Disarm)
	var buf lockedBuffer
	co := &coordinator{
		lg:      obs.NewLogger(&buf, obs.LevelInfo),
		total:   10,
		resumed: 2,
		lastMsg: make([]atomic.Int64, 2),
	}
	co.completed = 4
	co.lastMsg[0].Store(time.Now().Add(-3 * time.Second).UnixNano())

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		co.progressLoop(10*time.Millisecond, stop)
		close(done)
	}()
	deadline := time.Now().Add(2 * time.Second)
	for !strings.Contains(buf.String(), "grid: progress") && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	<-done

	out := buf.String()
	if !strings.Contains(out, "grid: progress 6/10 points") {
		t.Errorf("progress line missing or wrong:\n%s", out)
	}
	if !strings.Contains(out, "eta ") {
		t.Errorf("progress line has no ETA:\n%s", out)
	}
	if age := metricHeartbeatAge.With("0").Value(); age < 2.5 {
		t.Errorf("heartbeat age gauge = %g, want ≥ 2.5s", age)
	}
	// Shard 1 never spoke: its gauge must stay untouched at zero rather
	// than reporting a bogus age.
	if age := metricHeartbeatAge.With("1").Value(); age != 0 {
		t.Errorf("silent shard heartbeat age = %g, want 0", age)
	}
}

// TestProgressLoopDisabled ensures a negative ProgressEvery resolves to
// no ticker (the Run wiring skips the goroutine entirely); here we just
// pin that the options default resolution is what Run uses.
func TestProgressEveryDefault(t *testing.T) {
	if defaultProgressEvery != 10*time.Second {
		t.Fatalf("defaultProgressEvery = %v", defaultProgressEvery)
	}
}
