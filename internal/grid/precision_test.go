package grid

import (
	"context"
	"path/filepath"
	"strings"
	"testing"

	"snnsec/internal/compute"
	"snnsec/internal/explore"
)

// The distributed merge is only bit-identical when every point comes
// from the same numerics tier, so the tier travels in the hello, is
// stamped into every WirePoint, and mismatches are rejected at both
// merge layers: the live record() path and checkpoint resume.

func TestMixedTierPointRejected(t *testing.T) {
	co := &coordinator{res: explore.NewPartialResult([]float64{1}, []int{2}, []float64{0.5}), total: 1}
	wp := &explore.WirePoint{Vth: 1, T: 2, Precision: "float32"}
	err := co.record(0, message{Index: 0, Point: wp})
	if err == nil || !strings.Contains(err.Error(), "mixed-tier") {
		t.Fatalf("fast-tier point accepted into a default-tier run: %v", err)
	}
	if co.fatalError() == nil {
		t.Error("mixed-tier point did not latch a fatal error")
	}
	// A matching tier records cleanly.
	co = &coordinator{res: explore.NewPartialResult([]float64{1}, []int{2}, []float64{0.5}), total: 1}
	if err := co.record(0, message{Index: 0, Point: &explore.WirePoint{Vth: 1, T: 2}}); err != nil {
		t.Fatalf("default-tier point rejected: %v", err)
	}
}

func TestMixedTierResumeRejected(t *testing.T) {
	spec := testSpec(t)
	dir := filepath.Join(t.TempDir(), "ckpt")
	if _, err := Run(context.Background(), spec, Options{
		Shards: 1, CheckpointDir: dir, MaxPoints: 1, Launch: inProcLauncher(),
	}); err != nil {
		t.Fatal(err)
	}
	compute.SetPrecision(compute.Float32)
	t.Cleanup(func() { compute.SetPrecision(compute.Float64) })
	_, err := Run(context.Background(), spec, Options{
		Shards: 1, CheckpointDir: dir, Resume: true, Launch: inProcLauncher(),
	})
	if err == nil || !strings.Contains(err.Error(), "mixed-tier") {
		t.Fatalf("default-tier checkpoint resumed under the fast tier: %v", err)
	}
}

// TestFastTierGridRoundTrip pins the happy path: under the fast tier
// the hello carries the tier to the worker, the worker computes at it,
// every merged point is stamped with it, and a same-tier resume works.
func TestFastTierGridRoundTrip(t *testing.T) {
	compute.SetPrecision(compute.Float32)
	t.Cleanup(func() { compute.SetPrecision(compute.Float64) })
	spec := testSpec(t)
	dir := filepath.Join(t.TempDir(), "ckpt")
	res, err := Run(context.Background(), spec, Options{
		Shards: 1, CheckpointDir: dir, MaxPoints: 1, Launch: inProcLauncher(),
	})
	if err != nil {
		t.Fatal(err)
	}
	computed := 0
	for i := range res.Points {
		if !res.Computed(i) {
			continue
		}
		computed++
		if res.Points[i].Precision != "float32" {
			t.Errorf("point %d precision %q, want float32", i, res.Points[i].Precision)
		}
	}
	if computed != 1 {
		t.Fatalf("computed %d points, want 1", computed)
	}
	// Same-tier resume continues from the checkpoint.
	res, err = Run(context.Background(), spec, Options{
		Shards: 1, CheckpointDir: dir, Resume: true, MaxPoints: 1, Launch: inProcLauncher(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Points) - len(res.MissingIndices()); got != 2 {
		t.Fatalf("after resume %d points computed, want 2", got)
	}
}
