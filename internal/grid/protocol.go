package grid

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"snnsec/internal/explore"
)

// The wire protocol is one JSON object per line in each direction, so a
// worker can be driven by anything that can pipe newline-delimited JSON
// — the local exec launcher, an ssh wrapper, a container runtime.
//
// Coordinator → worker:
//
//	{"type":"hello","builder":…,"spec":…,"kernel_workers":k,"want_model":b}
//	{"type":"point","index":i}        assign grid point i
//	{"type":"done"}                   no more work; worker exits
//
// Worker → coordinator:
//
//	{"type":"ready"}                  hello processed / previous point sent
//	{"type":"heartbeat"}              still computing the assigned point
//	{"type":"point_done","index":i,"point":…,"model":…}
//	{"type":"point_failed","index":i,"err":…}  this point failed; worker lives on
//	{"type":"fatal","err":…}          unrecoverable worker error
//
// A worker handles one point at a time (process-level parallelism is the
// coordinator's job), so the conversation is a strict request/response
// alternation after hello — except heartbeats, which the worker streams
// while a point computes (at the hello's heartbeat_ms interval) so the
// coordinator can tell a long-running point from a hung worker. A worker
// that sends nothing for the coordinator's stall timeout has its point
// withdrawn and reassigned, exactly as if its pipe had died.
const (
	msgHello       = "hello"
	msgPoint       = "point"
	msgDone        = "done"
	msgReady       = "ready"
	msgHeartbeat   = "heartbeat"
	msgPointDone   = "point_done"
	msgPointFailed = "point_failed"
	msgFatal       = "fatal"
)

// message is the single wire envelope of the protocol.
type message struct {
	Type string `json:"type"`

	// hello fields.
	Builder string          `json:"builder,omitempty"`
	Spec    json.RawMessage `json:"spec,omitempty"`
	// KernelWorkers is the compute-backend width the worker must run its
	// tensor kernels at — its slice of the coordinator's CPU budget.
	KernelWorkers int `json:"kernel_workers,omitempty"`
	// WantModel asks the worker to attach a modelio snapshot of each
	// successfully trained point (for checkpoint model files).
	WantModel bool `json:"want_model,omitempty"`
	// Precision is the numerics tier (compute.Precision.Tag) the worker
	// must compute at — empty for the default bit-exact tier. Pinning
	// the tier in the hello is what keeps a sharded sweep single-tier:
	// every point either carries the coordinator's tier or is rejected
	// at merge time.
	Precision string `json:"precision,omitempty"`
	// HeartbeatMS is the interval (milliseconds) at which the worker
	// must send heartbeat messages while computing a point; 0 disables
	// heartbeats (and the coordinator's stall detection with them).
	HeartbeatMS int `json:"heartbeat_ms,omitempty"`

	// point / point_done / point_failed fields. Index is the T-major
	// grid index; no omitempty, 0 is a valid index.
	Index int                `json:"index"`
	Point *explore.WirePoint `json:"point,omitempty"`
	// Model is the modelio checkpoint of the trained point
	// (base64-encoded by encoding/json).
	Model []byte `json:"model,omitempty"`

	// fatal / point_failed error text.
	Err string `json:"err,omitempty"`
}

// Transport is one duplex byte stream to a worker. Close must release
// the underlying resources (pipes, the worker process).
type Transport interface {
	io.Reader
	io.Writer
	Close() error
}

// conn frames messages over a transport. send is mutex-guarded because
// the worker's heartbeat goroutine writes concurrently with its main
// loop; recv has a single reader on each side.
type conn struct {
	sendMu sync.Mutex
	enc    *json.Encoder
	dec    *json.Decoder
}

func newConn(rw io.ReadWriter) *conn {
	return &conn{enc: json.NewEncoder(rw), dec: json.NewDecoder(rw)}
}

func (c *conn) send(m message) error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	return c.enc.Encode(m)
}

func (c *conn) recv() (message, error) {
	var m message
	if err := c.dec.Decode(&m); err != nil {
		return message{}, err
	}
	if m.Type == msgFatal {
		return m, fmt.Errorf("grid: peer reported: %s", m.Err)
	}
	return m, nil
}
