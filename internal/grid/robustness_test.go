package grid

// Fault-injection scenarios for the distributed sweep. Every test here
// asserts the same invariant the package promises in the happy path:
// whatever faults are injected, the merged result for completed points
// is byte-identical to the fault-free single-process run.

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"snnsec/internal/faultinject"
)

// installFaults activates a fault spec for the duration of the test.
// In-process coordinator and workers share the injector, so occurrence
// counts are process-wide — specs below are written for that.
func installFaults(t *testing.T, spec string) {
	t.Helper()
	inj, err := faultinject.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Set(inj)
	t.Cleanup(func() { faultinject.Set(nil) })
}

// syncBuffer is a concurrency-safe log sink (serveShard goroutines log
// concurrently).
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestStalledWorkerPointWithdrawn(t *testing.T) {
	spec := testSpec(t)
	want := singleProcessJSON(t, spec)
	// The first assigned point sleeps well past the stall timeout before
	// any heartbeat starts — a hung-but-alive worker. The coordinator
	// must withdraw the point and let the surviving shard finish it.
	installFaults(t, "grid.worker.point@1=delay:500ms")
	var log syncBuffer
	res, err := Run(context.Background(), spec, Options{
		Shards:       2,
		Launch:       inProcLauncher(),
		StallTimeout: 100 * time.Millisecond,
		RetryBackoff: -1, // requeue immediately
		Log:          &log,
	})
	if err != nil {
		t.Fatalf("run with stalled worker failed: %v\n%s", err, log.String())
	}
	if got := resultJSON(t, res); !bytes.Equal(got, want) {
		t.Errorf("result after stall differs from single-process run:\n got: %s\nwant: %s", got, want)
	}
	if !strings.Contains(log.String(), "stalled") {
		t.Errorf("log does not mention the stall:\n%s", log.String())
	}
}

func TestTransientPointFailuresRetried(t *testing.T) {
	spec := testSpec(t)
	want := singleProcessJSON(t, spec)
	// With one shard the assignment order is deterministic (0,1,2,3),
	// so hits 1 and 2 fail the first attempts of points 0 and 1; their
	// retries (hits 5 and 6) succeed.
	installFaults(t, "grid.worker.point@1=error;grid.worker.point@2=error")
	var log syncBuffer
	res, err := Run(context.Background(), spec, Options{
		Shards:       1,
		Launch:       inProcLauncher(),
		RetryBackoff: -1,
		Log:          &log,
	})
	if err != nil {
		t.Fatalf("run with transient failures failed: %v\n%s", err, log.String())
	}
	if got := resultJSON(t, res); !bytes.Equal(got, want) {
		t.Errorf("result after transient failures differs from single-process run:\n got: %s\nwant: %s", got, want)
	}
	if !strings.Contains(log.String(), "retry 1 scheduled") {
		t.Errorf("log does not mention the retries:\n%s", log.String())
	}
}

func TestPoisonPointQuarantined(t *testing.T) {
	spec := testSpec(t)
	want := singleProcessJSON(t, spec)
	// Point 0 fails on its first attempt (hit 1) and again on its retry
	// (hit 5, after points 1..3 complete in order on the single shard).
	// With one retry allowed, the second failure quarantines it: the
	// sweep completes as a partial result, without an error.
	installFaults(t, "grid.worker.point@1=error;grid.worker.point@5=error")
	var log syncBuffer
	res, err := Run(context.Background(), spec, Options{
		Shards:          1,
		Launch:          inProcLauncher(),
		MaxPointRetries: 1,
		RetryBackoff:    -1,
		Log:             &log,
	})
	if err != nil {
		t.Fatalf("run with poison point failed outright: %v\n%s", err, log.String())
	}
	if missing := res.MissingIndices(); len(missing) != 1 || missing[0] != 0 {
		t.Fatalf("missing points = %v, want [0]\n%s", missing, log.String())
	}
	if !strings.Contains(log.String(), "quarantined") {
		t.Errorf("log does not mention the quarantine:\n%s", log.String())
	}
	if bytes.Equal(resultJSON(t, res), want) {
		t.Error("partial result claims to equal the complete run")
	}
}

func TestCorruptCheckpointFilesQuarantinedOnResume(t *testing.T) {
	spec := testSpec(t)
	want := singleProcessJSON(t, spec)
	dir := t.TempDir()
	if _, err := Run(context.Background(), spec, Options{
		Shards: 1, Launch: inProcLauncher(), CheckpointDir: dir,
	}); err != nil {
		t.Fatal(err)
	}

	// One corruption mode per point file; point 3 stays intact.
	cases := []struct {
		idx     int
		name    string
		corrupt func(path string) error
	}{
		{0, "truncated", func(p string) error {
			raw, err := os.ReadFile(p)
			if err != nil {
				return err
			}
			return os.WriteFile(p, raw[:len(raw)/2], 0o644)
		}},
		{1, "bit-flipped", func(p string) error {
			raw, err := os.ReadFile(p)
			if err != nil {
				return err
			}
			raw[len(raw)/2] ^= 0x01
			return os.WriteFile(p, raw, 0o644)
		}},
		{2, "zero-length", func(p string) error {
			return os.WriteFile(p, nil, 0o644)
		}},
	}
	for _, c := range cases {
		if err := c.corrupt(filepath.Join(dir, pointFile(c.idx))); err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
	}

	var log syncBuffer
	res, err := Run(context.Background(), spec, Options{
		Shards: 1, Launch: inProcLauncher(), CheckpointDir: dir, Resume: true,
		Log: &log,
	})
	if err != nil {
		t.Fatalf("resume over corrupt files failed: %v\n%s", err, log.String())
	}
	if got := resultJSON(t, res); !bytes.Equal(got, want) {
		t.Errorf("resumed result differs from single-process run:\n got: %s\nwant: %s", got, want)
	}
	for _, c := range cases {
		quarantined := filepath.Join(dir, pointFile(c.idx)+".corrupt")
		if _, err := os.Stat(quarantined); err != nil {
			t.Errorf("%s point %d: no quarantine file: %v", c.name, c.idx, err)
		}
		// The point was recomputed and re-checkpointed.
		if _, err := os.Stat(filepath.Join(dir, pointFile(c.idx))); err != nil {
			t.Errorf("%s point %d: not re-checkpointed: %v", c.name, c.idx, err)
		}
	}
	if !strings.Contains(log.String(), "quarantined 3 corrupt checkpoint file(s)") {
		t.Errorf("log does not report the quarantine:\n%s", log.String())
	}
}

func TestTornCheckpointWriteDetectedOnResume(t *testing.T) {
	spec := testSpec(t)
	want := singleProcessJSON(t, spec)
	dir := t.TempDir()
	// The second checkpoint write lands truncated — the rename happens
	// but half the bytes are missing, as if the filesystem lied about
	// durability. The first run's in-memory result is unaffected.
	installFaults(t, "grid.checkpoint.write@2=torn")
	res, err := Run(context.Background(), spec, Options{
		Shards: 1, Launch: inProcLauncher(), CheckpointDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := resultJSON(t, res); !bytes.Equal(got, want) {
		t.Errorf("torn checkpoint write corrupted the in-memory result:\n got: %s\nwant: %s", got, want)
	}

	faultinject.Set(nil)
	var log syncBuffer
	res, err = Run(context.Background(), spec, Options{
		Shards: 1, Launch: inProcLauncher(), CheckpointDir: dir, Resume: true,
		Log: &log,
	})
	if err != nil {
		t.Fatalf("resume over torn write failed: %v\n%s", err, log.String())
	}
	if got := resultJSON(t, res); !bytes.Equal(got, want) {
		t.Errorf("resumed result differs from single-process run:\n got: %s\nwant: %s", got, want)
	}
	// With one shard the second write is point 1's file.
	if _, err := os.Stat(filepath.Join(dir, pointFile(1)+".corrupt")); err != nil {
		t.Errorf("torn file not quarantined: %v\n%s", err, log.String())
	}
}

func TestStallDetectionDisabled(t *testing.T) {
	spec := testSpec(t)
	want := singleProcessJSON(t, spec)
	// Negative StallTimeout turns heartbeats and withdrawal off — the
	// pre-robustness protocol, still byte-identical.
	res, err := Run(context.Background(), spec, Options{
		Shards: 2, Launch: inProcLauncher(), StallTimeout: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := resultJSON(t, res); !bytes.Equal(got, want) {
		t.Errorf("heartbeat-free result differs from single-process run:\n got: %s\nwant: %s", got, want)
	}
}
