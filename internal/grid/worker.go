package grid

import (
	"fmt"
	"io"
	"strconv"
	"time"

	"snnsec/internal/compute"
	"snnsec/internal/explore"
	"snnsec/internal/faultinject"
	"snnsec/internal/modelio"
)

// Fault points the worker exposes to internal/faultinject. FaultPoint
// fires once per assigned point, before the compute starts — and before
// heartbeats, so an injected delay looks exactly like a wedged process.
const (
	// FaultWorkerPoint supports delay (a hung-but-alive worker), error
	// (a per-point failure reported as point_failed) and exit (a
	// crashed worker process).
	FaultWorkerPoint = "grid.worker.point"
)

// ServeWorker runs the worker side of the protocol over r/w — for the
// snnsec grid-worker subcommand these are stdin and stdout, but any
// byte stream works (the tests drive workers over in-process pipes).
// It processes the hello, then serves assigned points one at a time
// until the coordinator sends done or the stream closes. Point-level
// sweep failures travel inside the point (explore sweeps past them); a
// point whose computation errors outright is reported as point_failed
// and the worker stays alive for the rest of its block (the coordinator
// bounds the retries). Only errors that make the whole worker useless —
// an unknown builder, a dataset that fails to load — are reported as
// fatal and returned.
func ServeWorker(r io.Reader, w io.Writer) error {
	c := newConn(struct {
		io.Reader
		io.Writer
	}{r, w})
	hello, err := c.recv()
	if err != nil {
		return fmt.Errorf("grid: worker reading hello: %w", err)
	}
	if hello.Type != msgHello {
		return c.fatal(fmt.Errorf("grid: worker expected hello, got %q", hello.Type))
	}
	prec, err := compute.ParsePrecision(hello.Precision)
	if err != nil {
		return c.fatal(fmt.Errorf("grid: worker hello: %w", err))
	}
	// The tier is process-wide; a grid-worker process serves exactly one
	// coordinator, so adopting its tier here pins every point this
	// process computes.
	compute.SetPrecision(prec)
	job, err := Spec{Builder: hello.Builder, Config: hello.Spec}.Build()
	if err != nil {
		return c.fatal(err)
	}
	trainDS, testDS, err := job.Data()
	if err != nil {
		return c.fatal(err)
	}
	cfg := job.Config
	// The coordinator owns point-level parallelism; this process runs one
	// point at a time on its assigned slice of the CPU budget.
	cfg.Workers = 1
	cfg.KernelWorkers = hello.KernelWorkers
	if err := (&cfg).Validate(); err != nil {
		return c.fatal(err)
	}
	// Probabilistic fault rules derive from the run seed unless the
	// policy was seeded explicitly, so a chaos schedule replays from the
	// job spec alone.
	faultinject.Reseed(cfg.Seed)
	be := compute.New(cfg.KernelWorkers)
	for {
		if err := c.send(message{Type: msgReady}); err != nil {
			return fmt.Errorf("grid: worker sending ready: %w", err)
		}
		m, err := c.recv()
		if err != nil {
			return fmt.Errorf("grid: worker reading assignment: %w", err)
		}
		switch m.Type {
		case msgDone:
			return nil
		case msgPoint:
			if err := faultinject.Apply(FaultWorkerPoint); err != nil {
				if serr := c.send(message{Type: msgPointFailed, Index: m.Index, Err: err.Error()}); serr != nil {
					return fmt.Errorf("grid: worker reporting failed point %d: %w", m.Index, serr)
				}
				continue
			}
			stopHB := startHeartbeat(c, hello.HeartbeatMS)
			tp, pt, err := explore.RunPointAt(cfg, be, m.Index, trainDS, testDS)
			stopHB()
			if err != nil {
				if serr := c.send(message{Type: msgPointFailed, Index: m.Index, Err: err.Error()}); serr != nil {
					return fmt.Errorf("grid: worker reporting failed point %d: %w", m.Index, serr)
				}
				continue
			}
			wire := pt.Wire()
			reply := message{Type: msgPointDone, Index: m.Index, Point: &wire}
			if hello.WantModel && tp.Err == nil && tp.Net != nil {
				snap, err := modelio.Bytes(map[string]string{
					"model": "snn",
					"vth":   strconv.FormatFloat(tp.Vth, 'g', -1, 64),
					"T":     strconv.Itoa(tp.T),
					"index": strconv.Itoa(m.Index),
				}, tp.Net.Params())
				if err != nil {
					return c.fatal(fmt.Errorf("grid: snapshotting point %d: %w", m.Index, err))
				}
				reply.Model = snap
			}
			if err := c.send(reply); err != nil {
				return fmt.Errorf("grid: worker sending point %d: %w", m.Index, err)
			}
		default:
			return c.fatal(fmt.Errorf("grid: worker got unexpected %q", m.Type))
		}
	}
}

// fatal reports err to the coordinator (best effort) and returns it.
func (c *conn) fatal(err error) error {
	_ = c.send(message{Type: msgFatal, Err: err.Error()})
	return err
}

// startHeartbeat streams heartbeat messages on c every ms milliseconds
// until the returned stop function is called (it waits for the sender to
// finish, so no heartbeat can trail the point_done that follows). Send
// failures end the stream early — the coordinator side is gone and the
// main loop will notice on its next send.
func startHeartbeat(c *conn, ms int) (stop func()) {
	if ms <= 0 {
		return func() {}
	}
	stopc := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(time.Duration(ms) * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				if err := c.send(message{Type: msgHeartbeat}); err != nil {
					return
				}
			case <-stopc:
				return
			}
		}
	}()
	return func() {
		close(stopc)
		<-done
	}
}
