package grid

import (
	"fmt"
	"io"
	"strconv"

	"snnsec/internal/compute"
	"snnsec/internal/explore"
	"snnsec/internal/modelio"
)

// ServeWorker runs the worker side of the protocol over r/w — for the
// snnsec grid-worker subcommand these are stdin and stdout, but any
// byte stream works (the tests drive workers over in-process pipes).
// It processes the hello, then serves assigned points one at a time
// until the coordinator sends done or the stream closes. Per-point
// failures travel inside the point (explore sweeps past them); only
// errors that make the whole worker useless — an unknown builder, a
// dataset that fails to load — are reported as fatal and returned.
func ServeWorker(r io.Reader, w io.Writer) error {
	c := newConn(struct {
		io.Reader
		io.Writer
	}{r, w})
	hello, err := c.recv()
	if err != nil {
		return fmt.Errorf("grid: worker reading hello: %w", err)
	}
	if hello.Type != msgHello {
		return c.fatal(fmt.Errorf("grid: worker expected hello, got %q", hello.Type))
	}
	prec, err := compute.ParsePrecision(hello.Precision)
	if err != nil {
		return c.fatal(fmt.Errorf("grid: worker hello: %w", err))
	}
	// The tier is process-wide; a grid-worker process serves exactly one
	// coordinator, so adopting its tier here pins every point this
	// process computes.
	compute.SetPrecision(prec)
	job, err := Spec{Builder: hello.Builder, Config: hello.Spec}.Build()
	if err != nil {
		return c.fatal(err)
	}
	trainDS, testDS, err := job.Data()
	if err != nil {
		return c.fatal(err)
	}
	cfg := job.Config
	// The coordinator owns point-level parallelism; this process runs one
	// point at a time on its assigned slice of the CPU budget.
	cfg.Workers = 1
	cfg.KernelWorkers = hello.KernelWorkers
	if err := (&cfg).Validate(); err != nil {
		return c.fatal(err)
	}
	be := compute.New(cfg.KernelWorkers)
	for {
		if err := c.send(message{Type: msgReady}); err != nil {
			return fmt.Errorf("grid: worker sending ready: %w", err)
		}
		m, err := c.recv()
		if err != nil {
			return fmt.Errorf("grid: worker reading assignment: %w", err)
		}
		switch m.Type {
		case msgDone:
			return nil
		case msgPoint:
			tp, pt, err := explore.RunPointAt(cfg, be, m.Index, trainDS, testDS)
			if err != nil {
				return c.fatal(err)
			}
			wire := pt.Wire()
			reply := message{Type: msgPointDone, Index: m.Index, Point: &wire}
			if hello.WantModel && tp.Err == nil && tp.Net != nil {
				snap, err := modelio.Bytes(map[string]string{
					"model": "snn",
					"vth":   strconv.FormatFloat(tp.Vth, 'g', -1, 64),
					"T":     strconv.Itoa(tp.T),
					"index": strconv.Itoa(m.Index),
				}, tp.Net.Params())
				if err != nil {
					return c.fatal(fmt.Errorf("grid: snapshotting point %d: %w", m.Index, err))
				}
				reply.Model = snap
			}
			if err := c.send(reply); err != nil {
				return fmt.Errorf("grid: worker sending point %d: %w", m.Index, err)
			}
		default:
			return c.fatal(fmt.Errorf("grid: worker got unexpected %q", m.Type))
		}
	}
}

// fatal reports err to the coordinator (best effort) and returns it.
func (c *conn) fatal(err error) error {
	_ = c.send(message{Type: msgFatal, Err: err.Error()})
	return err
}
