// Package modelio serialises trained models to a small self-describing
// binary format so expensive sweeps can checkpoint their networks, the
// CLI can hand models between subcommands, and the robust (Vth, T)
// "sweet-spot" models the paper ships can be reproduced and stored.
//
// Format (all integers little-endian):
//
//	magic   [8]byte  "SNNSEC01"
//	nmeta   uint32   — metadata key/value pairs (UTF-8, length-prefixed)
//	nparams uint32
//	per parameter:
//	  name  string   (length-prefixed)
//	  ndims uint32, dims []uint32
//	  data  []float64
package modelio

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"math"
	"os"

	"snnsec/internal/nn"
	"snnsec/internal/tensor"
)

var magic = [8]byte{'S', 'N', 'N', 'S', 'E', 'C', '0', '1'}

// limits guard against corrupt files allocating absurd amounts.
const (
	maxStringLen = 1 << 16
	maxDims      = 16
	maxElems     = 1 << 28
)

// SavedParam is one serialised tensor.
type SavedParam struct {
	Name string
	Data *tensor.Tensor
}

// Model is the deserialised form of a checkpoint.
type Model struct {
	// Meta carries free-form metadata: architecture name, Vth, T,
	// encoder, surrogate, training configuration.
	Meta   map[string]string
	Params []SavedParam
}

// Save writes metadata and parameters.
func Save(w io.Writer, meta map[string]string, params []*nn.Param) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(meta))); err != nil {
		return err
	}
	// Deterministic order: sort keys.
	keys := make([]string, 0, len(meta))
	for k := range meta {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	for _, k := range keys {
		if err := writeString(bw, k); err != nil {
			return err
		}
		if err := writeString(bw, meta[k]); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(params))); err != nil {
		return err
	}
	for _, p := range params {
		if err := writeString(bw, p.Name); err != nil {
			return err
		}
		shape := p.Data.Shape()
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(shape))); err != nil {
			return err
		}
		for _, d := range shape {
			if err := binary.Write(bw, binary.LittleEndian, uint32(d)); err != nil {
				return err
			}
		}
		for _, v := range p.Data.Data() {
			if err := binary.Write(bw, binary.LittleEndian, math.Float64bits(v)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Load reads a checkpoint.
func Load(r io.Reader) (*Model, error) {
	br := bufio.NewReader(r)
	var got [8]byte
	if _, err := io.ReadFull(br, got[:]); err != nil {
		return nil, fmt.Errorf("modelio: short magic: %w", err)
	}
	if got != magic {
		return nil, fmt.Errorf("modelio: bad magic %q", got[:])
	}
	var nmeta uint32
	if err := binary.Read(br, binary.LittleEndian, &nmeta); err != nil {
		return nil, fmt.Errorf("modelio: meta count: %w", err)
	}
	if nmeta > maxStringLen {
		return nil, fmt.Errorf("modelio: implausible meta count %d", nmeta)
	}
	m := &Model{Meta: make(map[string]string, nmeta)}
	for i := uint32(0); i < nmeta; i++ {
		k, err := readString(br)
		if err != nil {
			return nil, err
		}
		v, err := readString(br)
		if err != nil {
			return nil, err
		}
		m.Meta[k] = v
	}
	var nparams uint32
	if err := binary.Read(br, binary.LittleEndian, &nparams); err != nil {
		return nil, fmt.Errorf("modelio: param count: %w", err)
	}
	if nparams > maxStringLen {
		return nil, fmt.Errorf("modelio: implausible param count %d", nparams)
	}
	for i := uint32(0); i < nparams; i++ {
		name, err := readString(br)
		if err != nil {
			return nil, err
		}
		var ndims uint32
		if err := binary.Read(br, binary.LittleEndian, &ndims); err != nil {
			return nil, fmt.Errorf("modelio: %s dims: %w", name, err)
		}
		if ndims > maxDims {
			return nil, fmt.Errorf("modelio: %s has %d dims", name, ndims)
		}
		shape := make([]int, ndims)
		n := 1
		for d := range shape {
			var v uint32
			if err := binary.Read(br, binary.LittleEndian, &v); err != nil {
				return nil, fmt.Errorf("modelio: %s dim %d: %w", name, d, err)
			}
			if v == 0 || int(v) > maxElems {
				return nil, fmt.Errorf("modelio: %s dim %d = %d", name, d, v)
			}
			shape[d] = int(v)
			n *= int(v)
			if n > maxElems {
				return nil, fmt.Errorf("modelio: %s too large", name)
			}
		}
		// Read the payload in bounded chunks and grow the slice as bytes
		// actually arrive: a corrupt header claiming maxElems values must
		// fail on the first missing chunk, not after a 2 GB up-front
		// allocation (the fuzz harness feeds exactly such headers).
		const chunk = 1 << 13
		data := make([]float64, 0, min(n, chunk))
		raw := make([]byte, 8*min(n, chunk))
		for len(data) < n {
			c := min(chunk, n-len(data))
			if _, err := io.ReadFull(br, raw[:8*c]); err != nil {
				return nil, fmt.Errorf("modelio: %s data: %w", name, err)
			}
			for j := 0; j < c; j++ {
				data = append(data, math.Float64frombits(binary.LittleEndian.Uint64(raw[8*j:])))
			}
		}
		m.Params = append(m.Params, SavedParam{Name: name, Data: tensor.FromSlice(data, shape...)})
	}
	return m, nil
}

// Apply copies the saved tensors into the given parameters by position,
// verifying names and shapes. The target model must have been built by
// the same deterministic constructor that produced the checkpoint.
func (m *Model) Apply(params []*nn.Param) error {
	if len(params) != len(m.Params) {
		return fmt.Errorf("modelio: checkpoint has %d params, model has %d", len(m.Params), len(params))
	}
	for i, sp := range m.Params {
		p := params[i]
		if p.Name != sp.Name {
			return fmt.Errorf("modelio: param %d name %q, checkpoint has %q", i, p.Name, sp.Name)
		}
		if !p.Data.SameShape(sp.Data) {
			return fmt.Errorf("modelio: param %q shape %v, checkpoint has %v", p.Name, p.Data.Shape(), sp.Data.Shape())
		}
	}
	for i, sp := range m.Params {
		params[i].Data.CopyFrom(sp.Data)
	}
	return nil
}

// Bytes serialises a checkpoint to memory — the form the distributed
// grid protocol streams per-point model snapshots in.
func Bytes(meta map[string]string, params []*nn.Param) ([]byte, error) {
	var buf bytes.Buffer
	if err := Save(&buf, meta, params); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// FromBytes deserialises a checkpoint produced by Bytes (or read back
// from a checkpoint file).
func FromBytes(b []byte) (*Model, error) {
	return Load(bytes.NewReader(b))
}

// SaveFile writes a checkpoint to path.
func SaveFile(path string, meta map[string]string, params []*nn.Param) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Save(f, meta, params); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a checkpoint from path.
func LoadFile(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// Fingerprint returns the SHA-256 hex digest of a serialised checkpoint
// — the identity the serve model cache and the grid manifests key on.
// Save writes metadata in sorted key order, so equal models produce
// equal fingerprints.
func Fingerprint(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

func writeString(w io.Writer, s string) error {
	if len(s) > maxStringLen {
		return fmt.Errorf("modelio: string too long (%d)", len(s))
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func readString(r io.Reader) (string, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", fmt.Errorf("modelio: string length: %w", err)
	}
	if n > maxStringLen {
		return "", fmt.Errorf("modelio: implausible string length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", fmt.Errorf("modelio: string body: %w", err)
	}
	return string(buf), nil
}
