package modelio

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"snnsec/internal/nn"
	"snnsec/internal/tensor"
)

func sampleParams() []*nn.Param {
	r := tensor.NewRand(1, 2)
	return []*nn.Param{
		nn.NewParam("layer0.W", tensor.RandN(r, 0, 1, 3, 4)),
		nn.NewParam("layer0.B", tensor.RandN(r, 0, 1, 4)),
		nn.NewParam("conv.W", tensor.RandN(r, 0, 1, 2, 1, 3, 3)),
	}
}

func TestRoundTrip(t *testing.T) {
	params := sampleParams()
	meta := map[string]string{"arch": "lenet5-snn", "vth": "1.0", "T": "48"}
	var buf bytes.Buffer
	if err := Save(&buf, meta, params); err != nil {
		t.Fatal(err)
	}
	m, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m.Meta["arch"] != "lenet5-snn" || m.Meta["T"] != "48" {
		t.Errorf("meta = %v", m.Meta)
	}
	if len(m.Params) != 3 {
		t.Fatalf("params = %d", len(m.Params))
	}
	for i, sp := range m.Params {
		if sp.Name != params[i].Name {
			t.Errorf("param %d name %q", i, sp.Name)
		}
		if !sp.Data.AllClose(params[i].Data, 0) {
			t.Errorf("param %q data mismatch", sp.Name)
		}
	}
}

func TestApplyRestoresWeights(t *testing.T) {
	params := sampleParams()
	var buf bytes.Buffer
	if err := Save(&buf, nil, params); err != nil {
		t.Fatal(err)
	}
	m, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Fresh params with the same structure but different values.
	fresh := sampleParams()
	for _, p := range fresh {
		p.Data.Fill(0)
	}
	if err := m.Apply(fresh); err != nil {
		t.Fatal(err)
	}
	for i := range fresh {
		if !fresh[i].Data.AllClose(params[i].Data, 0) {
			t.Errorf("param %d not restored", i)
		}
	}
}

func TestApplyMismatches(t *testing.T) {
	params := sampleParams()
	var buf bytes.Buffer
	if err := Save(&buf, nil, params); err != nil {
		t.Fatal(err)
	}
	m, _ := Load(&buf)

	short := sampleParams()[:2]
	if err := m.Apply(short); err == nil || !strings.Contains(err.Error(), "params") {
		t.Errorf("count mismatch not caught: %v", err)
	}

	renamed := sampleParams()
	renamed[1].Name = "other"
	if err := m.Apply(renamed); err == nil || !strings.Contains(err.Error(), "name") {
		t.Errorf("name mismatch not caught: %v", err)
	}

	reshaped := sampleParams()
	reshaped[0] = nn.NewParam("layer0.W", tensor.New(4, 3))
	if err := m.Apply(reshaped); err == nil || !strings.Contains(err.Error(), "shape") {
		t.Errorf("shape mismatch not caught: %v", err)
	}
}

func TestApplyIsAtomicOnError(t *testing.T) {
	params := sampleParams()
	var buf bytes.Buffer
	if err := Save(&buf, nil, params); err != nil {
		t.Fatal(err)
	}
	m, _ := Load(&buf)
	target := sampleParams()
	for _, p := range target {
		p.Data.Fill(7)
	}
	target[2] = nn.NewParam("conv.W", tensor.New(9, 9)) // wrong shape
	if err := m.Apply(target); err == nil {
		t.Fatal("bad apply succeeded")
	}
	// Earlier params must be untouched: validation precedes mutation.
	if !target[0].Data.AllClose(tensor.Full(7, 3, 4), 0) {
		t.Error("Apply mutated params before validating all of them")
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("NOTMAGIC plus junk"))); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Errorf("bad magic not caught: %v", err)
	}
}

func TestTruncatedFile(t *testing.T) {
	params := sampleParams()
	var buf bytes.Buffer
	if err := Save(&buf, map[string]string{"k": "v"}, params); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{4, 9, 15, len(full) / 2, len(full) - 3} {
		if _, err := Load(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d not caught", cut)
		}
	}
}

func TestEmptyModel(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, nil, nil); err != nil {
		t.Fatal(err)
	}
	m, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Params) != 0 || len(m.Meta) != 0 {
		t.Error("empty model round-trip not empty")
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "model.snnsec")
	params := sampleParams()
	if err := SaveFile(path, map[string]string{"a": "b"}, params); err != nil {
		t.Fatal(err)
	}
	m, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.Meta["a"] != "b" {
		t.Error("file round-trip lost metadata")
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing file did not error")
	}
}

func TestDeterministicOutput(t *testing.T) {
	params := sampleParams()
	meta := map[string]string{"z": "1", "a": "2", "m": "3"}
	var b1, b2 bytes.Buffer
	if err := Save(&b1, meta, params); err != nil {
		t.Fatal(err)
	}
	if err := Save(&b2, meta, params); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Error("two saves of identical state differ (map iteration leaked in)")
	}
}
