package nn

import "snnsec/internal/autodiff"

// Classifier maps a batch of images [N,C,H,W] to class logits [N, classes].
// Both the non-spiking Sequential CNN and the spiking network of
// internal/snn implement it, which is what lets the attack and training
// code treat them uniformly — the white-box attacker differentiates
// through Logits regardless of what is inside.
type Classifier interface {
	Logits(tp *autodiff.Tape, x *autodiff.Value) *autodiff.Value
	Params() []*Param
}

// Logits makes Sequential a Classifier; it is simply Forward.
func (s *Sequential) Logits(tp *autodiff.Tape, x *autodiff.Value) *autodiff.Value {
	return s.Forward(tp, x)
}

var _ Classifier = (*Sequential)(nil)
