// Package nn provides non-spiking neural network layers built on the
// autodiff engine: Linear, Conv2D, pooling, activations, Dropout and a
// Sequential container. These layers serve two roles in the reproduction:
// they form the LeNet-5 CNN baseline the paper compares against, and they
// provide the synaptic (weight) transformations inside the spiking layers
// of internal/snn.
//
// Layers are backend-agnostic: every kernel a layer records runs on the
// compute backend its tape is bound to (autodiff.NewTapeOn), so callers
// select serial or parallel execution per forward/backward pass without
// any layer-level configuration.
package nn

import (
	"fmt"
	"math"
	"math/rand/v2"

	"snnsec/internal/autodiff"
	"snnsec/internal/tensor"
)

// Param is a trainable tensor with its persistent gradient buffer. The
// gradient accumulates across forward/backward passes until an optimiser
// consumes and clears it.
type Param struct {
	Name string
	Data *tensor.Tensor
	Grad *tensor.Tensor
}

// NewParam allocates a parameter with a zeroed gradient buffer.
func NewParam(name string, data *tensor.Tensor) *Param {
	return &Param{Name: name, Data: data, Grad: tensor.New(data.Shape()...)}
}

// Leaf registers the parameter on tp and returns its graph node.
func (p *Param) Leaf(tp *autodiff.Tape) *autodiff.Value {
	return tp.Leaf(p.Data, p.Grad)
}

// ZeroGrad clears the gradient buffer.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// Layer is a differentiable module: it maps a graph node to a graph node
// on the given tape and exposes its trainable parameters.
type Layer interface {
	Forward(tp *autodiff.Tape, x *autodiff.Value) *autodiff.Value
	Params() []*Param
}

// Trainable is implemented by layers whose behaviour differs between
// training and evaluation (e.g. Dropout).
type Trainable interface {
	SetTraining(bool)
}

// ParamCount returns the total number of scalar parameters of a layer.
func ParamCount(l Layer) int {
	n := 0
	for _, p := range l.Params() {
		n += p.Data.Len()
	}
	return n
}

// ZeroGrads clears the gradient buffers of all parameters of a layer.
func ZeroGrads(l Layer) {
	for _, p := range l.Params() {
		p.ZeroGrad()
	}
}

// ---------------------------------------------------------------------------
// Initialisers

// HeNormal fills with N(0, sqrt(2/fanIn)) — the standard initialisation for
// ReLU-family networks.
func HeNormal(r *rand.Rand, fanIn int, shape ...int) *tensor.Tensor {
	return tensor.RandN(r, 0, math.Sqrt(2/float64(fanIn)), shape...)
}

// XavierUniform fills with U(−a, a), a = sqrt(6/(fanIn+fanOut)).
func XavierUniform(r *rand.Rand, fanIn, fanOut int, shape ...int) *tensor.Tensor {
	a := math.Sqrt(6 / float64(fanIn+fanOut))
	return tensor.RandU(r, -a, a, shape...)
}

// ---------------------------------------------------------------------------
// Linear

// Linear is a fully connected layer y = x·W + b for x of shape [B, In].
type Linear struct {
	In, Out int
	W, B    *Param
}

// NewLinear creates a fully connected layer with Xavier-uniform weights
// and zero bias.
func NewLinear(r *rand.Rand, in, out int) *Linear {
	return &Linear{
		In:  in,
		Out: out,
		W:   NewParam(fmt.Sprintf("linear_%dx%d.W", in, out), XavierUniform(r, in, out, in, out)),
		B:   NewParam(fmt.Sprintf("linear_%dx%d.B", in, out), tensor.New(out)),
	}
}

// Forward applies the affine map; x must be [B, In].
func (l *Linear) Forward(tp *autodiff.Tape, x *autodiff.Value) *autodiff.Value {
	if x.Data.Dims() != 2 || x.Data.Dim(1) != l.In {
		panic(fmt.Sprintf("nn: Linear(%d→%d) got input %v", l.In, l.Out, x.Data.Shape()))
	}
	return tp.AddRowVector(tp.MatMul(x, l.W.Leaf(tp)), l.B.Leaf(tp))
}

// Params returns the layer's weight and bias.
func (l *Linear) Params() []*Param { return []*Param{l.W, l.B} }

// ---------------------------------------------------------------------------
// Conv2D

// Conv2D is a 2-D convolution layer over [N,C,H,W] inputs. Each forward
// or backward pass convolves the whole batch with one im2col expansion
// and one matmul (the batched pipeline of internal/tensor), so batch
// size — not image count — is the unit of work the backend parallelises.
type Conv2D struct {
	InChannels, OutChannels, Kernel int
	Conv                            tensor.ConvParams
	W, B                            *Param
}

// NewConv2D creates a convolution layer with He-normal weights and zero
// bias.
func NewConv2D(r *rand.Rand, inCh, outCh, kernel, stride, padding int) *Conv2D {
	fanIn := inCh * kernel * kernel
	return &Conv2D{
		InChannels:  inCh,
		OutChannels: outCh,
		Kernel:      kernel,
		Conv:        tensor.ConvParams{Stride: stride, Padding: padding},
		W:           NewParam(fmt.Sprintf("conv_%dto%dk%d.W", inCh, outCh, kernel), HeNormal(r, fanIn, outCh, inCh, kernel, kernel)),
		B:           NewParam(fmt.Sprintf("conv_%dto%dk%d.B", inCh, outCh, kernel), tensor.New(outCh)),
	}
}

// Forward applies the convolution; x must be [N, InChannels, H, W].
func (c *Conv2D) Forward(tp *autodiff.Tape, x *autodiff.Value) *autodiff.Value {
	if x.Data.Dims() != 4 || x.Data.Dim(1) != c.InChannels {
		panic(fmt.Sprintf("nn: Conv2D(%d→%d) got input %v", c.InChannels, c.OutChannels, x.Data.Shape()))
	}
	return tp.Conv2D(x, c.W.Leaf(tp), c.B.Leaf(tp), c.Conv)
}

// Params returns the layer's weight and bias.
func (c *Conv2D) Params() []*Param { return []*Param{c.W, c.B} }

// OutSize returns the spatial output size for a given input size.
func (c *Conv2D) OutSize(in int) int { return c.Conv.ConvOutSize(in, c.Kernel) }

// ---------------------------------------------------------------------------
// Stateless layers

// ReLU applies max(x, 0).
type ReLU struct{}

// Forward applies the rectifier.
func (ReLU) Forward(tp *autodiff.Tape, x *autodiff.Value) *autodiff.Value { return tp.ReLU(x) }

// Params returns nil; ReLU is parameter-free.
func (ReLU) Params() []*Param { return nil }

// AvgPool performs k×k average pooling.
type AvgPool struct{ K int }

// Forward pools the input.
func (p AvgPool) Forward(tp *autodiff.Tape, x *autodiff.Value) *autodiff.Value {
	return tp.AvgPool2D(x, p.K)
}

// Params returns nil; pooling is parameter-free.
func (p AvgPool) Params() []*Param { return nil }

// MaxPool performs k×k max pooling.
type MaxPool struct{ K int }

// Forward pools the input.
func (p MaxPool) Forward(tp *autodiff.Tape, x *autodiff.Value) *autodiff.Value {
	return tp.MaxPool2D(x, p.K)
}

// Params returns nil; pooling is parameter-free.
func (p MaxPool) Params() []*Param { return nil }

// Flatten reshapes [N, ...] to [N, prod(...)].
type Flatten struct{}

// Forward flattens all but the batch dimension.
func (Flatten) Forward(tp *autodiff.Tape, x *autodiff.Value) *autodiff.Value {
	n := x.Data.Dim(0)
	return tp.Reshape(x, n, -1)
}

// Params returns nil; Flatten is parameter-free.
func (Flatten) Params() []*Param { return nil }

// ---------------------------------------------------------------------------
// Dropout

// Dropout zeroes activations with probability P during training and
// rescales survivors by 1/(1−P) (inverted dropout). In evaluation mode it
// is the identity.
type Dropout struct {
	P        float64
	Training bool
	rng      *rand.Rand
}

// NewDropout creates a dropout layer with its own deterministic generator.
func NewDropout(r *rand.Rand, p float64) *Dropout {
	if p < 0 || p >= 1 {
		panic(fmt.Sprintf("nn: dropout probability %v out of [0,1)", p))
	}
	return &Dropout{P: p, rng: r}
}

// Forward applies (inverted) dropout.
func (d *Dropout) Forward(tp *autodiff.Tape, x *autodiff.Value) *autodiff.Value {
	if !d.Training || d.P == 0 {
		return x
	}
	mask := tensor.New(x.Data.Shape()...)
	keep := 1 - d.P
	md := mask.Data()
	for i := range md {
		if d.rng.Float64() < keep {
			md[i] = 1 / keep
		}
	}
	return tp.Mul(x, tp.Const(mask))
}

// Params returns nil; Dropout is parameter-free.
func (d *Dropout) Params() []*Param { return nil }

// SetTraining toggles dropout on or off.
func (d *Dropout) SetTraining(t bool) { d.Training = t }

// ---------------------------------------------------------------------------
// Sequential

// Sequential chains layers.
type Sequential struct {
	Layers []Layer
}

// NewSequential builds a container from the given layers.
func NewSequential(layers ...Layer) *Sequential { return &Sequential{Layers: layers} }

// Forward threads x through every layer in order.
func (s *Sequential) Forward(tp *autodiff.Tape, x *autodiff.Value) *autodiff.Value {
	for _, l := range s.Layers {
		x = l.Forward(tp, x)
	}
	return x
}

// Params returns the concatenated parameters of all layers.
func (s *Sequential) Params() []*Param {
	var ps []*Param
	for _, l := range s.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// SetTraining propagates the training flag to every layer that cares.
func (s *Sequential) SetTraining(t bool) {
	for _, l := range s.Layers {
		if tr, ok := l.(Trainable); ok {
			tr.SetTraining(t)
		}
	}
}
