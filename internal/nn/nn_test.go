package nn

import (
	"math"
	"testing"

	"snnsec/internal/autodiff"
	"snnsec/internal/tensor"
)

func TestLinearForwardShape(t *testing.T) {
	r := tensor.NewRand(1, 1)
	l := NewLinear(r, 4, 3)
	tp := autodiff.NewTape()
	x := tp.Const(tensor.RandN(r, 0, 1, 2, 4))
	y := l.Forward(tp, x)
	if !y.Data.ShapeEquals(2, 3) {
		t.Errorf("Linear output shape = %v, want [2 3]", y.Data.Shape())
	}
}

func TestLinearKnownValues(t *testing.T) {
	r := tensor.NewRand(2, 2)
	l := NewLinear(r, 2, 2)
	l.W.Data.CopyFrom(tensor.FromSlice([]float64{1, 2, 3, 4}, 2, 2))
	l.B.Data.CopyFrom(tensor.FromSlice([]float64{10, 20}, 2))
	tp := autodiff.NewTape()
	x := tp.Const(tensor.FromSlice([]float64{1, 1}, 1, 2))
	y := l.Forward(tp, x)
	want := tensor.FromSlice([]float64{14, 26}, 1, 2)
	if !y.Data.AllClose(want, 1e-12) {
		t.Errorf("Linear = %v, want %v", y.Data, want)
	}
}

func TestLinearWrongInputPanics(t *testing.T) {
	r := tensor.NewRand(3, 3)
	l := NewLinear(r, 4, 3)
	tp := autodiff.NewTape()
	defer func() {
		if recover() == nil {
			t.Fatal("Linear with wrong input width did not panic")
		}
	}()
	l.Forward(tp, tp.Const(tensor.New(2, 5)))
}

func TestLinearGradientsFlow(t *testing.T) {
	r := tensor.NewRand(4, 4)
	l := NewLinear(r, 3, 2)
	tp := autodiff.NewTape()
	x := tp.Const(tensor.RandN(r, 0, 1, 5, 3))
	loss := tp.Mean(l.Forward(tp, x))
	tp.Backward(loss)
	if tensor.Sum(tensor.Abs(l.W.Grad)) == 0 {
		t.Error("weight gradient is zero")
	}
	if tensor.Sum(tensor.Abs(l.B.Grad)) == 0 {
		t.Error("bias gradient is zero")
	}
	ZeroGrads(l)
	if tensor.Sum(tensor.Abs(l.W.Grad)) != 0 {
		t.Error("ZeroGrads did not clear")
	}
}

func TestConv2DLayerShape(t *testing.T) {
	r := tensor.NewRand(5, 5)
	c := NewConv2D(r, 1, 6, 5, 1, 2)
	tp := autodiff.NewTape()
	x := tp.Const(tensor.RandN(r, 0, 1, 2, 1, 16, 16))
	y := c.Forward(tp, x)
	if !y.Data.ShapeEquals(2, 6, 16, 16) {
		t.Errorf("Conv2D output shape = %v, want [2 6 16 16]", y.Data.Shape())
	}
	if c.OutSize(16) != 16 {
		t.Errorf("OutSize(16) = %d", c.OutSize(16))
	}
}

func TestConvWrongChannelsPanics(t *testing.T) {
	r := tensor.NewRand(6, 6)
	c := NewConv2D(r, 3, 4, 3, 1, 1)
	tp := autodiff.NewTape()
	defer func() {
		if recover() == nil {
			t.Fatal("Conv2D with wrong channels did not panic")
		}
	}()
	c.Forward(tp, tp.Const(tensor.New(1, 2, 8, 8)))
}

func TestFlatten(t *testing.T) {
	tp := autodiff.NewTape()
	x := tp.Const(tensor.New(2, 3, 4, 4))
	y := Flatten{}.Forward(tp, x)
	if !y.Data.ShapeEquals(2, 48) {
		t.Errorf("Flatten shape = %v, want [2 48]", y.Data.Shape())
	}
}

func TestSequentialComposesAndCollectsParams(t *testing.T) {
	r := tensor.NewRand(7, 7)
	net := NewSequential(
		NewConv2D(r, 1, 2, 3, 1, 1),
		ReLU{},
		AvgPool{K: 2},
		Flatten{},
		NewLinear(r, 2*4*4, 10),
	)
	tp := autodiff.NewTape()
	x := tp.Const(tensor.RandN(r, 0, 1, 3, 1, 8, 8))
	y := net.Forward(tp, x)
	if !y.Data.ShapeEquals(3, 10) {
		t.Fatalf("Sequential output = %v", y.Data.Shape())
	}
	if len(net.Params()) != 4 {
		t.Errorf("Params count = %d, want 4", len(net.Params()))
	}
	want := 2*1*3*3 + 2 + 32*10 + 10
	if got := ParamCount(net); got != want {
		t.Errorf("ParamCount = %d, want %d", got, want)
	}
}

func TestSequentialIsClassifier(t *testing.T) {
	r := tensor.NewRand(8, 8)
	var c Classifier = NewSequential(Flatten{}, NewLinear(r, 16, 4))
	tp := autodiff.NewTape()
	x := tp.Const(tensor.RandN(r, 0, 1, 2, 1, 4, 4))
	y := c.Logits(tp, x)
	if !y.Data.ShapeEquals(2, 4) {
		t.Errorf("Logits shape = %v", y.Data.Shape())
	}
}

func TestDropoutEvalIsIdentity(t *testing.T) {
	r := tensor.NewRand(9, 9)
	d := NewDropout(r, 0.5)
	d.SetTraining(false)
	tp := autodiff.NewTape()
	x := tp.Const(tensor.RandN(r, 0, 1, 10))
	y := d.Forward(tp, x)
	if !y.Data.AllClose(x.Data, 0) {
		t.Error("eval-mode dropout altered input")
	}
}

func TestDropoutTrainZeroesAndRescales(t *testing.T) {
	r := tensor.NewRand(10, 10)
	d := NewDropout(r, 0.5)
	d.SetTraining(true)
	tp := autodiff.NewTape()
	x := tp.Const(tensor.Ones(10000))
	y := d.Forward(tp, x)
	zeros, twos := 0, 0
	for _, v := range y.Data.Data() {
		switch {
		case v == 0:
			zeros++
		case math.Abs(v-2) < 1e-12:
			twos++
		default:
			t.Fatalf("unexpected dropout output %v", v)
		}
	}
	if zeros < 4000 || zeros > 6000 {
		t.Errorf("dropout zeroed %d of 10000, expected ≈5000", zeros)
	}
	// Inverted dropout keeps the expectation: mean should stay near 1.
	if m := tensor.Mean(y.Data); math.Abs(m-1) > 0.05 {
		t.Errorf("dropout mean = %v, want ≈1", m)
	}
}

func TestDropoutBadProbabilityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("dropout p=1 did not panic")
		}
	}()
	NewDropout(tensor.NewRand(1, 2), 1)
}

func TestSetTrainingPropagates(t *testing.T) {
	r := tensor.NewRand(11, 11)
	d := NewDropout(r, 0.3)
	net := NewSequential(Flatten{}, d)
	net.SetTraining(true)
	if !d.Training {
		t.Error("SetTraining(true) not propagated")
	}
	net.SetTraining(false)
	if d.Training {
		t.Error("SetTraining(false) not propagated")
	}
}

func TestInitialisersStatistics(t *testing.T) {
	r := tensor.NewRand(12, 12)
	h := HeNormal(r, 100, 100, 100)
	std := math.Sqrt(2.0 / 100)
	var s, s2 float64
	for _, v := range h.Data() {
		s += v
		s2 += v * v
	}
	n := float64(h.Len())
	mean := s / n
	sd := math.Sqrt(s2/n - mean*mean)
	if math.Abs(mean) > 0.01 || math.Abs(sd-std) > 0.02 {
		t.Errorf("HeNormal mean=%v sd=%v, want 0 / %v", mean, sd, std)
	}
	x := XavierUniform(r, 50, 50, 50, 50)
	a := math.Sqrt(6.0 / 100)
	if tensor.Max(x) > a || tensor.Min(x) < -a {
		t.Errorf("XavierUniform out of ±%v: [%v, %v]", a, tensor.Min(x), tensor.Max(x))
	}
}

func TestPoolLayers(t *testing.T) {
	tp := autodiff.NewTape()
	x := tp.Const(tensor.FromSlice([]float64{1, 2, 3, 4}, 1, 1, 2, 2))
	if got := (AvgPool{K: 2}).Forward(tp, x); got.Data.Item() != 2.5 {
		t.Errorf("AvgPool = %v", got.Data.Item())
	}
	if got := (MaxPool{K: 2}).Forward(tp, x); got.Data.Item() != 4 {
		t.Errorf("MaxPool = %v", got.Data.Item())
	}
}

// End-to-end sanity: a tiny MLP can fit a linearly separable toy problem
// with plain gradient descent, proving grads are wired correctly.
func TestMLPLearnsToyProblem(t *testing.T) {
	r := tensor.NewRand(13, 13)
	net := NewSequential(NewLinear(r, 2, 8), ReLU{}, NewLinear(r, 8, 2))
	// Class 0: x0+x1 < 0; class 1 otherwise.
	xs := tensor.RandN(r, 0, 1, 64, 2)
	labels := make([]int, 64)
	for i := 0; i < 64; i++ {
		if xs.At(i, 0)+xs.At(i, 1) > 0 {
			labels[i] = 1
		}
	}
	var loss0, lossN float64
	for epoch := 0; epoch < 200; epoch++ {
		ZeroGrads(net)
		tp := autodiff.NewTape()
		x := tp.Const(xs)
		loss := tp.SoftmaxCrossEntropy(net.Forward(tp, x), labels)
		if epoch == 0 {
			loss0 = loss.Data.Item()
		}
		lossN = loss.Data.Item()
		tp.Backward(loss)
		for _, p := range net.Params() {
			tensor.Axpy(-0.1, p.Grad, p.Data)
		}
	}
	if lossN >= loss0/2 {
		t.Errorf("training did not reduce loss: %v -> %v", loss0, lossN)
	}
	// Final accuracy should be high.
	tp := autodiff.NewTape()
	pred := tensor.ArgmaxRows(net.Forward(tp, tp.Const(xs)).Data)
	correct := 0
	for i, p := range pred {
		if p == labels[i] {
			correct++
		}
	}
	if correct < 58 {
		t.Errorf("toy accuracy %d/64, want ≥ 58", correct)
	}
}
