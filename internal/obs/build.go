package obs

import (
	"fmt"
	"runtime"
	"sync/atomic"
)

// version holds the module version the CLI stamps in at startup
// (SetVersion). Library embedders that never call SetVersion report
// "unknown" — the honest value, since the library cannot know which
// module wrapped it.
var version atomic.Pointer[string]

func init() {
	v := "unknown"
	version.Store(&v)
	// snnsec_build_info resolves its labels at scrape time, so the
	// version label is correct even though SetVersion runs after
	// package init.
	NewInfoFunc("snnsec_build_info",
		"Build and runtime identity: module version, Go version, GOARCH. Value is always 1.",
		func() map[string]string {
			return map[string]string{
				"version":   Version(),
				"goversion": runtime.Version(),
				"goarch":    runtime.GOARCH,
			}
		})
}

// SetVersion records the module version reported by -version, /healthz
// and snnsec_build_info.
func SetVersion(v string) { version.Store(&v) }

// Version returns the recorded module version.
func Version() string { return *version.Load() }

// BuildString renders the one-line build identity the -version flag
// prints: version, Go toolchain, OS/arch.
func BuildString() string {
	return fmt.Sprintf("%s %s %s/%s", Version(), runtime.Version(), runtime.GOOS, runtime.GOARCH)
}
