package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
)

// Level orders log severities. The zero value is LevelDebug; the CLI
// default is LevelInfo, which keeps the pre-existing progress output
// exactly as it was — levels only filter, they do not reformat.
type Level int32

const (
	// LevelDebug is chatty per-item detail (per-point assignments,
	// per-session accounting).
	LevelDebug Level = iota
	// LevelInfo is the default operational narrative (progress lines,
	// startup banners) — everything the commands printed before levels
	// existed.
	LevelInfo
	// LevelWarn is degraded-but-handled conditions (retries, stalls,
	// quarantines, failed sessions).
	LevelWarn
	// LevelError is failures the command surfaces to the caller.
	LevelError
)

// String returns the level's flag spelling.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	}
	return fmt.Sprintf("level(%d)", int32(l))
}

// ParseLevel parses a -log-level flag value.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LevelDebug, nil
	case "info", "":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return LevelInfo, fmt.Errorf("obs: unknown log level %q (want debug, info, warn or error)", s)
}

// Logger is a minimal leveled logger: messages at or above the minimum
// level are written verbatim (a trailing newline is added when the
// format lacks one), below it they are dropped. A nil *Logger and a nil
// writer both discard everything, so callers never need a nil check.
type Logger struct {
	mu  sync.Mutex
	w   io.Writer
	min Level
}

// NewLogger returns a logger writing messages at or above min to w.
// A nil w discards all output.
func NewLogger(w io.Writer, min Level) *Logger { return &Logger{w: w, min: min} }

// Enabled reports whether messages at lv would be written.
func (l *Logger) Enabled(lv Level) bool {
	return l != nil && l.w != nil && lv >= l.min
}

// Logf writes one message at the given level.
func (l *Logger) Logf(lv Level, format string, args ...any) {
	if !l.Enabled(lv) {
		return
	}
	msg := fmt.Sprintf(format, args...)
	if !strings.HasSuffix(msg, "\n") {
		msg += "\n"
	}
	l.mu.Lock()
	io.WriteString(l.w, msg)
	l.mu.Unlock()
}

// Debugf logs at LevelDebug.
func (l *Logger) Debugf(format string, args ...any) { l.Logf(LevelDebug, format, args...) }

// Infof logs at LevelInfo.
func (l *Logger) Infof(format string, args ...any) { l.Logf(LevelInfo, format, args...) }

// Warnf logs at LevelWarn.
func (l *Logger) Warnf(format string, args ...any) { l.Logf(LevelWarn, format, args...) }

// Errorf logs at LevelError.
func (l *Logger) Errorf(format string, args ...any) { l.Logf(LevelError, format, args...) }
