package obs

import (
	"strings"
	"testing"
)

func TestParseLevel(t *testing.T) {
	cases := []struct {
		in   string
		want Level
		err  bool
	}{
		{"debug", LevelDebug, false},
		{"info", LevelInfo, false},
		{"", LevelInfo, false},
		{" WARN ", LevelWarn, false},
		{"warning", LevelWarn, false},
		{"error", LevelError, false},
		{"loud", LevelInfo, true},
	}
	for _, c := range cases {
		got, err := ParseLevel(c.in)
		if (err != nil) != c.err || got != c.want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v, err=%v", c.in, got, err, c.want, c.err)
		}
	}
}

func TestLoggerFiltersByLevel(t *testing.T) {
	var sb strings.Builder
	lg := NewLogger(&sb, LevelWarn)
	lg.Debugf("d")
	lg.Infof("i")
	lg.Warnf("w %d", 1)
	lg.Errorf("e\n") // trailing newline not doubled
	if got, want := sb.String(), "w 1\ne\n"; got != want {
		t.Fatalf("logged %q, want %q", got, want)
	}
	if lg.Enabled(LevelInfo) || !lg.Enabled(LevelError) {
		t.Fatal("Enabled disagrees with filtering")
	}
}

func TestLoggerNilSafety(t *testing.T) {
	var lg *Logger
	lg.Infof("dropped") // must not panic
	if lg.Enabled(LevelError) {
		t.Fatal("nil logger reports enabled")
	}
	discard := NewLogger(nil, LevelDebug)
	discard.Infof("dropped") // nil writer must not panic
	if discard.Enabled(LevelDebug) {
		t.Fatal("nil-writer logger reports enabled")
	}
}

func TestLevelString(t *testing.T) {
	for lv, want := range map[Level]string{
		LevelDebug: "debug", LevelInfo: "info", LevelWarn: "warn", LevelError: "error",
	} {
		if lv.String() != want {
			t.Errorf("Level(%d).String() = %q, want %q", lv, lv.String(), want)
		}
	}
}
