package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry is an ordered collection of named metric families. One
// default registry serves the whole process (Default); tests build
// their own with NewRegistry. Registration panics on an invalid or
// duplicate name — instruments are configuration, declared once at
// package init, and a silently dropped metric would hide the mistake.
type Registry struct {
	mu      sync.Mutex
	metrics []metric
	names   map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]bool)}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry every package-level
// instrument registers into.
func Default() *Registry { return defaultRegistry }

// metric is one registered family: its metadata plus its exposition
// sample lines.
type metric interface {
	metricName() string
	metricHelp() string
	metricType() string
	writeSamples(w *strings.Builder)
}

func (r *Registry) register(m metric) {
	name := m.metricName()
	if err := checkMetricName(name); err != nil {
		panic(fmt.Sprintf("obs: %v", err))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[name] {
		panic(fmt.Sprintf("obs: duplicate metric %q", name))
	}
	r.names[name] = true
	r.metrics = append(r.metrics, m)
}

// snapshot returns the registered families in registration order.
func (r *Registry) snapshot() []metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]metric(nil), r.metrics...)
}

func checkMetricName(name string) error {
	if name == "" {
		return fmt.Errorf("empty metric name")
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return fmt.Errorf("bad metric name %q", name)
		}
	}
	return nil
}

func checkLabelName(name string) error {
	if name == "" {
		return fmt.Errorf("empty label name")
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return fmt.Errorf("bad label name %q", name)
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Counter

// Counter is a monotonically increasing count. All methods are safe for
// concurrent use; writes are dropped while the layer is disarmed.
type Counter struct {
	name, help string
	v          atomic.Uint64
}

// NewCounter registers a counter in the default registry.
func NewCounter(name, help string) *Counter { return defaultRegistry.NewCounter(name, help) }

// NewCounter registers a counter in r.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{name: name, help: help}
	r.register(c)
	return c
}

// Inc adds 1.
func (c *Counter) Inc() {
	if armed.Load() {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if armed.Load() {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) metricName() string { return c.name }
func (c *Counter) metricHelp() string { return c.help }
func (c *Counter) metricType() string { return "counter" }
func (c *Counter) writeSamples(w *strings.Builder) {
	fmt.Fprintf(w, "%s %d\n", c.name, c.v.Load())
}

// ---------------------------------------------------------------------------
// Gauge

// Gauge is a value that can go up and down (queue depth, sessions,
// heartbeat age). The value is a float64 held in atomic bits.
type Gauge struct {
	name, help string
	bits       atomic.Uint64
}

// NewGauge registers a gauge in the default registry.
func NewGauge(name, help string) *Gauge { return defaultRegistry.NewGauge(name, help) }

// NewGauge registers a gauge in r.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{name: name, help: help}
	r.register(g)
	return g
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if armed.Load() {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adds d (negative to decrement).
func (g *Gauge) Add(d float64) {
	if !armed.Load() {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) metricName() string { return g.name }
func (g *Gauge) metricHelp() string { return g.help }
func (g *Gauge) metricType() string { return "gauge" }
func (g *Gauge) writeSamples(w *strings.Builder) {
	fmt.Fprintf(w, "%s %s\n", g.name, formatFloat(g.Value()))
}

// GaugeFunc is a gauge whose value is computed at exposition time —
// for values that already live somewhere authoritative (a queue length
// under its own mutex) and would only drift if mirrored on writes.
type GaugeFunc struct {
	name, help string
	fn         func() float64
}

// NewGaugeFunc registers a callback gauge in the default registry.
func NewGaugeFunc(name, help string, fn func() float64) *GaugeFunc {
	return defaultRegistry.NewGaugeFunc(name, help, fn)
}

// NewGaugeFunc registers a callback gauge in r.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) *GaugeFunc {
	if fn == nil {
		panic("obs: nil GaugeFunc callback")
	}
	g := &GaugeFunc{name: name, help: help, fn: fn}
	r.register(g)
	return g
}

func (g *GaugeFunc) metricName() string { return g.name }
func (g *GaugeFunc) metricHelp() string { return g.help }
func (g *GaugeFunc) metricType() string { return "gauge" }
func (g *GaugeFunc) writeSamples(w *strings.Builder) {
	fmt.Fprintf(w, "%s %s\n", g.name, formatFloat(g.fn()))
}

// ---------------------------------------------------------------------------
// Histogram

// Histogram counts observations into fixed buckets (ascending upper
// bounds; an implicit +Inf bucket catches the rest) and tracks their
// count and sum. Buckets are cumulative in the exposition, matching
// Prometheus histogram semantics, and Quantile reads exact values for
// observations that land on bucket bounds — the readout the satellite
// tests pin.
type Histogram struct {
	name, help string
	bounds     []float64
	counts     []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	count      atomic.Uint64
	sumBits    atomic.Uint64
}

// NewHistogram registers a histogram in the default registry.
func NewHistogram(name, help string, bounds []float64) *Histogram {
	return defaultRegistry.NewHistogram(name, help, bounds)
}

// NewHistogram registers a histogram in r. bounds must be non-empty,
// finite and strictly ascending.
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic(fmt.Sprintf("obs: histogram %q needs at least one bucket bound", name))
	}
	for i, b := range bounds {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			panic(fmt.Sprintf("obs: histogram %q bound %v is not finite", name, b))
		}
		if i > 0 && b <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not strictly ascending at %v", name, b))
		}
	}
	h := &Histogram{
		name:   name,
		help:   help,
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
	r.register(h)
	return h
}

// Observe records one value. A value equal to a bound lands in that
// bound's bucket (le semantics).
func (h *Histogram) Observe(v float64) {
	if !armed.Load() {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile returns the upper bound of the bucket holding the q-th
// (0 ≤ q ≤ 1) observation: exact when observations sit on bucket
// bounds, an upper bound otherwise. Returns NaN for an empty histogram
// and +Inf when the rank falls in the overflow bucket.
func (h *Histogram) Quantile(q float64) float64 {
	n := h.count.Load()
	if n == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i := range h.bounds {
		cum += h.counts[i].Load()
		if cum >= rank {
			return h.bounds[i]
		}
	}
	return math.Inf(1)
}

func (h *Histogram) metricName() string { return h.name }
func (h *Histogram) metricHelp() string { return h.help }
func (h *Histogram) metricType() string { return "histogram" }
func (h *Histogram) writeSamples(w *strings.Builder) {
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", h.name, formatFloat(b), cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", h.name, h.count.Load())
	fmt.Fprintf(w, "%s_sum %s\n", h.name, formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count %d\n", h.name, h.count.Load())
}

// ExpBuckets returns n strictly ascending bounds starting at start and
// growing by factor — the usual shape for latency histograms.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// ---------------------------------------------------------------------------
// Labeled vectors

// vec is the shared child table behind CounterVec and GaugeVec: one
// instrument per label-value combination, created on first use.
type vec struct {
	name, help string
	labels     []string
	mu         sync.RWMutex
	children   map[string]metric // key: label values joined by \x00
}

func newVec(name, help string, labels []string) *vec {
	if len(labels) == 0 {
		panic(fmt.Sprintf("obs: vector %q needs at least one label", name))
	}
	for _, l := range labels {
		if err := checkLabelName(l); err != nil {
			panic(fmt.Sprintf("obs: metric %q: %v", name, err))
		}
	}
	return &vec{name: name, help: help, labels: labels, children: make(map[string]metric)}
}

// child returns the existing child for the label values or creates one
// with mk. The number of values must match the label names.
func (v *vec) child(values []string, mk func(series string) metric) metric {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obs: metric %q got %d label values for %d labels", v.name, len(values), len(v.labels)))
	}
	key := strings.Join(values, "\x00")
	v.mu.RLock()
	m := v.children[key]
	v.mu.RUnlock()
	if m != nil {
		return m
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if m := v.children[key]; m != nil {
		return m
	}
	var sb strings.Builder
	sb.WriteString(v.name)
	sb.WriteByte('{')
	for i, l := range v.labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=\"%s\"", l, escapeLabelValue(values[i]))
	}
	sb.WriteByte('}')
	m = mk(sb.String())
	v.children[key] = m
	return m
}

// sortedChildren returns the children in a stable (series-name) order.
func (v *vec) sortedChildren() []metric {
	v.mu.RLock()
	out := make([]metric, 0, len(v.children))
	for _, m := range v.children {
		out = append(out, m)
	}
	v.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].metricName() < out[j].metricName() })
	return out
}

func escapeLabelValue(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

// CounterVec is a counter family keyed by label values — e.g. requests
// per model fingerprint, dispatch decisions per kernel family.
type CounterVec struct{ *vec }

// NewCounterVec registers a labeled counter family in the default
// registry.
func NewCounterVec(name, help string, labels ...string) *CounterVec {
	return defaultRegistry.NewCounterVec(name, help, labels...)
}

// NewCounterVec registers a labeled counter family in r.
func (r *Registry) NewCounterVec(name, help string, labels ...string) *CounterVec {
	cv := &CounterVec{vec: newVec(name, help, labels)}
	r.register(cv)
	return cv
}

// With returns the counter for the given label values, creating it on
// first use. Children are cached; callers on hot paths should resolve
// once and keep the *Counter.
func (cv *CounterVec) With(values ...string) *Counter {
	return cv.child(values, func(series string) metric {
		return &Counter{name: series, help: cv.help}
	}).(*Counter)
}

func (cv *CounterVec) metricName() string { return cv.name }
func (cv *CounterVec) metricHelp() string { return cv.help }
func (cv *CounterVec) metricType() string { return "counter" }
func (cv *CounterVec) writeSamples(w *strings.Builder) {
	for _, m := range cv.sortedChildren() {
		m.writeSamples(w)
	}
}

// GaugeVec is a gauge family keyed by label values — e.g. in-flight
// points per shard.
type GaugeVec struct{ *vec }

// NewGaugeVec registers a labeled gauge family in the default registry.
func NewGaugeVec(name, help string, labels ...string) *GaugeVec {
	return defaultRegistry.NewGaugeVec(name, help, labels...)
}

// NewGaugeVec registers a labeled gauge family in r.
func (r *Registry) NewGaugeVec(name, help string, labels ...string) *GaugeVec {
	gv := &GaugeVec{vec: newVec(name, help, labels)}
	r.register(gv)
	return gv
}

// With returns the gauge for the given label values, creating it on
// first use.
func (gv *GaugeVec) With(values ...string) *Gauge {
	return gv.child(values, func(series string) metric {
		return &Gauge{name: series, help: gv.help}
	}).(*Gauge)
}

func (gv *GaugeVec) metricName() string { return gv.name }
func (gv *GaugeVec) metricHelp() string { return gv.help }
func (gv *GaugeVec) metricType() string { return "gauge" }
func (gv *GaugeVec) writeSamples(w *strings.Builder) {
	for _, m := range gv.sortedChildren() {
		m.writeSamples(w)
	}
}

// ---------------------------------------------------------------------------
// Info

// InfoFunc is a constant-1 gauge whose labels are resolved at
// exposition time — the build_info idiom, where the version label may
// be set after the metric is registered.
type InfoFunc struct {
	name, help string
	labels     func() map[string]string
}

// NewInfoFunc registers an info metric in the default registry.
func NewInfoFunc(name, help string, labels func() map[string]string) *InfoFunc {
	return defaultRegistry.NewInfoFunc(name, help, labels)
}

// NewInfoFunc registers an info metric in r.
func (r *Registry) NewInfoFunc(name, help string, labels func() map[string]string) *InfoFunc {
	if labels == nil {
		panic("obs: nil InfoFunc labels callback")
	}
	m := &InfoFunc{name: name, help: help, labels: labels}
	r.register(m)
	return m
}

func (m *InfoFunc) metricName() string { return m.name }
func (m *InfoFunc) metricHelp() string { return m.help }
func (m *InfoFunc) metricType() string { return "gauge" }
func (m *InfoFunc) writeSamples(w *strings.Builder) {
	ls := m.labels()
	keys := make([]string, 0, len(ls))
	for k := range ls {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w.WriteString(m.name)
	w.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			w.WriteByte(',')
		}
		fmt.Fprintf(w, "%s=\"%s\"", k, escapeLabelValue(ls[k]))
	}
	w.WriteString("} 1\n")
}
