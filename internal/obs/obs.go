// Package obs is the dependency-free observability core behind every
// production surface of the stack: atomic counters, gauges and
// fixed-bucket histograms collected in a named registry, a Prometheus
// text-format exposition writer for the /metrics endpoints, a small
// leveled logger, and the build/version info reported by -version,
// /healthz and the snnsec_build_info metric.
//
// Instrumentation follows faultinject's pattern: the whole layer is
// disarmed by default and every write is gated on one process-global
// atomic load, so a library user (and every test and benchmark that
// does not opt in) pays a single predictable branch per instrument
// call — the CI overhead gate holds the disarmed cost of a served
// request's instrumentation under 1% of its forward pass. The CLI arms
// the layer at startup (Arm); reads — exposition, Value accessors —
// always work, armed or not.
//
// Instruments are package-level vars registered at init into the
// default registry, so importing a package (serve, grid, stream,
// compute) is what makes its metric families appear on /metrics —
// present with zero values before any traffic, which is what lets the
// CI smoke assert the full family set from one scrape.
package obs

import "sync/atomic"

// armed is the process-global switch for metric collection. Disarmed
// (the default), every instrument write returns after one atomic load.
var armed atomic.Bool

// Arm enables metric collection process-wide. The CLI calls it once at
// startup; libraries and tests stay disarmed unless they opt in.
func Arm() { armed.Store(true) }

// Disarm disables metric collection again (used by tests to restore the
// default).
func Disarm() { armed.Store(false) }

// Armed reports whether metric collection is enabled.
func Armed() bool { return armed.Load() }
