package obs

import (
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// arm enables collection for one test and restores the disarmed default
// afterwards. The obs tests never run in parallel: armed is process
// state, like the dispatch policy and precision tier elsewhere.
func arm(t *testing.T) {
	t.Helper()
	Arm()
	t.Cleanup(Disarm)
}

func TestDisarmedWritesAreDropped(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("test_disarmed_total", "t")
	g := r.NewGauge("test_disarmed_gauge", "t")
	h := r.NewHistogram("test_disarmed_hist", "t", []float64{1})
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(2)
	h.Observe(0.5)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatalf("disarmed writes landed: counter=%d gauge=%g hist=%d", c.Value(), g.Value(), h.Count())
	}
}

func TestCounterAndGauge(t *testing.T) {
	arm(t)
	r := NewRegistry()
	c := r.NewCounter("test_total", "t")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	g := r.NewGauge("test_gauge", "t")
	g.Set(7)
	g.Add(-2.5)
	if g.Value() != 4.5 {
		t.Fatalf("gauge = %g, want 4.5", g.Value())
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	arm(t)
	r := NewRegistry()
	h := r.NewHistogram("test_hist", "t", []float64{1, 2, 5})
	// One observation exactly on each bound (le semantics: a value equal
	// to a bound lands in that bound's bucket), plus interior and
	// overflow values.
	for _, v := range []float64{1, 2, 5, 0.5, 3, 10} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	if got, want := h.Sum(), 21.5; got != want {
		t.Fatalf("sum = %g, want %g", got, want)
	}
	wantPerBucket := []uint64{2, 1, 2, 1} // ≤1: {1, 0.5}; ≤2: {2}; ≤5: {5, 3}; +Inf: {10}
	for i, want := range wantPerBucket {
		if got := h.counts[i].Load(); got != want {
			t.Errorf("bucket %d holds %d, want %d", i, got, want)
		}
	}
	var sb strings.Builder
	h.writeSamples(&sb)
	out := sb.String()
	// Exposition buckets are cumulative.
	for _, line := range []string{
		`test_hist_bucket{le="1"} 2`,
		`test_hist_bucket{le="2"} 3`,
		`test_hist_bucket{le="5"} 5`,
		`test_hist_bucket{le="+Inf"} 6`,
		`test_hist_sum 21.5`,
		`test_hist_count 6`,
	} {
		if !strings.Contains(out, line+"\n") {
			t.Errorf("exposition missing %q:\n%s", line, out)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	arm(t)
	r := NewRegistry()
	h := r.NewHistogram("test_q", "t", []float64{1, 2, 5})
	if q := h.Quantile(0.5); !math.IsNaN(q) {
		t.Fatalf("empty histogram quantile = %g, want NaN", q)
	}
	// Observations exactly on bucket edges: quantile readout is exact.
	for i := 0; i < 5; i++ {
		h.Observe(1)
	}
	for i := 0; i < 4; i++ {
		h.Observe(2)
	}
	h.Observe(5)
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.5, 1}, {0.6, 2}, {0.9, 2}, {0.91, 5}, {1, 5},
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
	h.Observe(100) // overflow bucket
	if q := h.Quantile(1); !math.IsInf(q, 1) {
		t.Fatalf("overflow quantile = %g, want +Inf", q)
	}
}

// TestConcurrentIncrements exercises every instrument from many
// goroutines; it exists for the -race sweep and checks totals land
// exactly.
func TestConcurrentIncrements(t *testing.T) {
	arm(t)
	r := NewRegistry()
	c := r.NewCounter("test_conc_total", "t")
	g := r.NewGauge("test_conc_gauge", "t")
	h := r.NewHistogram("test_conc_hist", "t", []float64{0.5, 1})
	cv := r.NewCounterVec("test_conc_vec_total", "t", "k")
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			child := cv.With("a")
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(1)
				child.Inc()
			}
		}()
	}
	wg.Wait()
	const want = workers * per
	if c.Value() != want {
		t.Errorf("counter = %d, want %d", c.Value(), want)
	}
	if g.Value() != want {
		t.Errorf("gauge = %g, want %d", g.Value(), want)
	}
	if h.Count() != want || h.Sum() != want {
		t.Errorf("hist count=%d sum=%g, want %d", h.Count(), h.Sum(), want)
	}
	if cv.With("a").Value() != want {
		t.Errorf("vec child = %d, want %d", cv.With("a").Value(), want)
	}
}

func TestVecLabelsAndEscaping(t *testing.T) {
	arm(t)
	r := NewRegistry()
	cv := r.NewCounterVec("test_vec_total", "t", "model", "kind")
	cv.With("b", "y").Inc()
	cv.With("a", "x").Add(2)
	cv.With(`q"\`+"\n", "z").Inc()
	if cv.With("a", "x") != cv.With("a", "x") {
		t.Fatal("With did not cache the child")
	}
	var sb strings.Builder
	cv.writeSamples(&sb)
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d sample lines, want 3:\n%s", len(lines), out)
	}
	// Sorted series order, escaped label values.
	if !strings.HasPrefix(lines[0], `test_vec_total{model="a",kind="x"} 2`) {
		t.Errorf("first line %q not the sorted a/x series", lines[0])
	}
	if !strings.Contains(out, `model="q\"\\\n"`) {
		t.Errorf("label value not escaped:\n%s", out)
	}
}

func TestRegistryRejectsBadAndDuplicateNames(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("test_dup_total", "t")
	mustPanic(t, "duplicate", func() { r.NewCounter("test_dup_total", "t") })
	mustPanic(t, "bad name", func() { r.NewCounter("9starts_with_digit", "t") })
	mustPanic(t, "bad label", func() { r.NewCounterVec("test_lbl_total", "t", "bad-label") })
	mustPanic(t, "empty buckets", func() { r.NewHistogram("test_h0", "t", nil) })
	mustPanic(t, "descending buckets", func() { r.NewHistogram("test_h1", "t", []float64{2, 1}) })
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", what)
		}
	}()
	fn()
}

func TestWritePrometheusParses(t *testing.T) {
	arm(t)
	r := NewRegistry()
	r.NewCounter("test_expo_total", "counts things").Inc()
	r.NewGauge("test_expo_gauge", "help with \\ and \n newline").Set(2.5)
	r.NewHistogram("test_expo_hist", "t", []float64{0.1, 1}).Observe(0.05)
	r.NewGaugeFunc("test_expo_func", "t", func() float64 { return 42 })
	r.NewCounterVec("test_expo_vec_total", "t", "k").With("v").Inc()
	r.NewInfoFunc("test_expo_info", "t", func() map[string]string {
		return map[string]string{"version": "1.0.0"}
	})
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP test_expo_total counts things\n# TYPE test_expo_total counter\ntest_expo_total 1\n",
		"# TYPE test_expo_gauge gauge\ntest_expo_gauge 2.5\n",
		`help with \\ and \n newline`,
		"test_expo_func 42\n",
		`test_expo_vec_total{k="v"} 1`,
		`test_expo_info{version="1.0.0"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Every sample line must match the text-format grammar the CI smoke
	// enforces: name, optional {labels}, one float value.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !sampleLineOK(line) {
			t.Errorf("unparseable sample line %q", line)
		}
	}
}

// sampleLineOK is a minimal parser for `name{labels} value` lines.
func sampleLineOK(line string) bool {
	sp := strings.LastIndexByte(line, ' ')
	if sp <= 0 {
		return false
	}
	series, val := line[:sp], line[sp+1:]
	if val != "+Inf" && val != "-Inf" && val != "NaN" {
		if _, err := strconv.ParseFloat(val, 64); err != nil {
			return false
		}
	}
	name := series
	if i := strings.IndexByte(series, '{'); i >= 0 {
		if !strings.HasSuffix(series, "}") {
			return false
		}
		name = series[:i]
	}
	return checkMetricName(name) == nil
}

func TestBuildInfo(t *testing.T) {
	old := Version()
	defer SetVersion(old)
	SetVersion("9.9.9-test")
	if Version() != "9.9.9-test" {
		t.Fatalf("Version = %q", Version())
	}
	if !strings.Contains(BuildString(), "9.9.9-test") || !strings.Contains(BuildString(), "go") {
		t.Fatalf("BuildString = %q", BuildString())
	}
	var sb strings.Builder
	if err := Default().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "snnsec_build_info{") || !strings.Contains(out, `version="9.9.9-test"`) {
		t.Fatalf("default registry missing build info:\n%s", out)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(0.001, 2, 4)
	want := []float64{0.001, 0.002, 0.004, 0.008}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", b, want)
		}
	}
	mustPanic(t, "bad start", func() { ExpBuckets(0, 2, 3) })
}
