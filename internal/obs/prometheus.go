package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
)

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4): one # HELP / # TYPE pair per family followed
// by its samples, families in registration order, vector children in
// sorted series order — so consecutive scrapes of an unchanged process
// are byte-identical.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var sb strings.Builder
	for _, m := range r.snapshot() {
		name := m.metricName()
		fmt.Fprintf(&sb, "# HELP %s %s\n", name, escapeHelp(m.metricHelp()))
		fmt.Fprintf(&sb, "# TYPE %s %s\n", name, m.metricType())
		m.writeSamples(&sb)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// Handler serves the default registry as a Prometheus /metrics
// endpoint.
func Handler() http.Handler { return defaultRegistry.Handler() }

// Handler serves r as a Prometheus /metrics endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// MountMetrics mounts the default registry's /metrics endpoint on mux.
func MountMetrics(mux *http.ServeMux) {
	mux.Handle("GET /metrics", Handler())
}

// MountPprof mounts net/http/pprof under /debug/pprof/ on mux — the
// opt-in (-pprof) profiling surface. Mounting explicitly rather than
// importing the package for its side effect keeps profiling off the
// DefaultServeMux and behind the flag.
func MountPprof(mux *http.ServeMux) {
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
}

// formatFloat renders a sample value the way Prometheus expects:
// shortest round-trip representation, Inf spelled +Inf/-Inf.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes backslashes and newlines in HELP text.
func escapeHelp(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}
