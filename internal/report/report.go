// Package report renders experiment results as ASCII heat maps, aligned
// curve tables, CSV and markdown — the textual equivalents of the paper's
// Figures 1 and 6-9.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"

	"snnsec/internal/attack"
	"snnsec/internal/explore"
)

// Grid is a labelled 2-D table of values; NaN cells are "missing" (e.g.
// non-learnable grid points whose robustness was never measured).
type Grid struct {
	Title     string
	RowName   string // e.g. "T"
	ColName   string // e.g. "Vth"
	RowLabels []string
	ColLabels []string
	Cells     [][]float64 // [row][col]
}

// NewGrid allocates a rows×cols grid filled with NaN.
func NewGrid(title, rowName, colName string, rowLabels, colLabels []string) *Grid {
	cells := make([][]float64, len(rowLabels))
	for i := range cells {
		cells[i] = make([]float64, len(colLabels))
		for j := range cells[i] {
			cells[i][j] = math.NaN()
		}
	}
	return &Grid{
		Title: title, RowName: rowName, ColName: colName,
		RowLabels: rowLabels, ColLabels: colLabels, Cells: cells,
	}
}

// shade maps a value in [0,1] to a coarse ASCII intensity ramp so heat
// maps are readable in a terminal.
func shade(v float64) byte {
	const ramp = " .:-=+*#%@"
	if math.IsNaN(v) {
		return '?'
	}
	if v < 0 {
		v = 0
	} else if v > 1 {
		v = 1
	}
	i := int(v * float64(len(ramp)-1))
	return ramp[i]
}

// WriteASCII renders the grid with one "value shade" cell per entry plus
// the numeric values, rows printed top-to-bottom in reverse order (so the
// largest row label is at the top, matching the paper's heat maps).
func (g *Grid) WriteASCII(w io.Writer) {
	fmt.Fprintf(w, "%s\n", g.Title)
	width := 7
	fmt.Fprintf(w, "%8s |", g.RowName+`\`+g.ColName)
	for _, c := range g.ColLabels {
		fmt.Fprintf(w, " %*s", width, c)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%s-+%s\n", strings.Repeat("-", 8), strings.Repeat("-", (width+1)*len(g.ColLabels)))
	for i := len(g.RowLabels) - 1; i >= 0; i-- {
		fmt.Fprintf(w, "%8s |", g.RowLabels[i])
		for j := range g.ColLabels {
			v := g.Cells[i][j]
			if math.IsNaN(v) {
				fmt.Fprintf(w, " %*s", width, "--")
			} else {
				fmt.Fprintf(w, " %c%*.3f", shade(v), width-1, v)
			}
		}
		fmt.Fprintln(w)
	}
}

// WriteCSV renders the grid as CSV with the row label in the first
// column; missing cells are empty.
func (g *Grid) WriteCSV(w io.Writer) {
	fmt.Fprintf(w, "%s/%s", g.RowName, g.ColName)
	for _, c := range g.ColLabels {
		fmt.Fprintf(w, ",%s", c)
	}
	fmt.Fprintln(w)
	for i, r := range g.RowLabels {
		fmt.Fprint(w, r)
		for j := range g.ColLabels {
			if math.IsNaN(g.Cells[i][j]) {
				fmt.Fprint(w, ",")
			} else {
				fmt.Fprintf(w, ",%.4f", g.Cells[i][j])
			}
		}
		fmt.Fprintln(w)
	}
}

// WriteMarkdown renders the grid as a GitHub-flavoured markdown table.
func (g *Grid) WriteMarkdown(w io.Writer) {
	fmt.Fprintf(w, "**%s**\n\n", g.Title)
	fmt.Fprintf(w, "| %s \\ %s |", g.RowName, g.ColName)
	for _, c := range g.ColLabels {
		fmt.Fprintf(w, " %s |", c)
	}
	fmt.Fprintln(w)
	fmt.Fprint(w, "|---|")
	for range g.ColLabels {
		fmt.Fprint(w, "---|")
	}
	fmt.Fprintln(w)
	for i := len(g.RowLabels) - 1; i >= 0; i-- {
		fmt.Fprintf(w, "| %s |", g.RowLabels[i])
		for j := range g.ColLabels {
			if math.IsNaN(g.Cells[i][j]) {
				fmt.Fprint(w, " — |")
			} else {
				fmt.Fprintf(w, " %.3f |", g.Cells[i][j])
			}
		}
		fmt.Fprintln(w)
	}
}

// AccuracyGrid converts an exploration result into the Figure-6 heat map
// (clean accuracy per (Vth, T)). Results may be partial — a checkpointed
// distributed run rendered mid-sweep, or a budget-limited invocation —
// in which case the never-computed points render as missing cells rather
// than as zero accuracy.
func AccuracyGrid(res *explore.Result) *Grid {
	g := newGridFrom(res, "Clean accuracy heat map (Figure 6)")
	for ti := range res.Ts {
		for vi := range res.Vths {
			if !res.Computed(ti*len(res.Vths) + vi) {
				continue
			}
			g.Cells[ti][vi] = res.At(vi, ti).CleanAccuracy
		}
	}
	return g
}

// RobustnessGrid converts an exploration result into a Figure-7/8-style
// heat map of robust accuracy at the given ε. Non-learnable points — and
// the never-computed points of a partial result — stay NaN.
func RobustnessGrid(res *explore.Result, eps float64) *Grid {
	g := newGridFrom(res, fmt.Sprintf("Robust accuracy heat map under PGD eps=%g (Figures 7/8)", eps))
	for ti := range res.Ts {
		for vi := range res.Vths {
			p := res.At(vi, ti)
			if v, ok := p.RobustAt(eps); ok {
				g.Cells[ti][vi] = v
			}
		}
	}
	return g
}

func newGridFrom(res *explore.Result, title string) *Grid {
	rows := make([]string, len(res.Ts))
	for i, t := range res.Ts {
		rows[i] = fmt.Sprintf("%d", t)
	}
	cols := make([]string, len(res.Vths))
	for i, v := range res.Vths {
		cols[i] = trimFloat(v)
	}
	return NewGrid(title, "T", "Vth", rows, cols)
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.2f", v)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

// Series is one named robustness curve (one line of Figure 1 or 9).
type Series struct {
	Name   string
	Points []attack.CurvePoint
}

// WriteCurves renders aligned columns: ε followed by the robust accuracy
// of every series, reproducing the paper's accuracy-vs-ε plots as a
// table. Series may sample different ε sets; missing entries print "--".
func WriteCurves(w io.Writer, title string, series []Series) {
	fmt.Fprintf(w, "%s\n", title)
	// Union of ε values, ascending.
	seen := map[float64]bool{}
	var eps []float64
	for _, s := range series {
		for _, p := range s.Points {
			if !seen[p.Eps] {
				seen[p.Eps] = true
				eps = append(eps, p.Eps)
			}
		}
	}
	for i := 1; i < len(eps); i++ {
		for j := i; j > 0 && eps[j] < eps[j-1]; j-- {
			eps[j], eps[j-1] = eps[j-1], eps[j]
		}
	}
	fmt.Fprintf(w, "%8s", "eps")
	for _, s := range series {
		fmt.Fprintf(w, " %16s", clip(s.Name, 16))
	}
	fmt.Fprintln(w)
	for _, e := range eps {
		fmt.Fprintf(w, "%8.3f", e)
		for _, s := range series {
			v, ok := lookupEps(s.Points, e)
			if ok {
				fmt.Fprintf(w, " %16.3f", v)
			} else {
				fmt.Fprintf(w, " %16s", "--")
			}
		}
		fmt.Fprintln(w)
	}
}

func lookupEps(points []attack.CurvePoint, eps float64) (float64, bool) {
	for _, p := range points {
		if p.Eps == eps {
			return p.RobustAccuracy, true
		}
	}
	return 0, false
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
