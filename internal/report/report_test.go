package report

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"snnsec/internal/attack"
	"snnsec/internal/explore"
)

func sampleResult() *explore.Result {
	return &explore.Result{
		Vths:     []float64{0.5, 1},
		Ts:       []int{8, 16},
		Epsilons: []float64{1, 1.5},
		Points: []explore.Point{
			{Vth: 0.5, T: 8, CleanAccuracy: 0.91, Learnable: true,
				Robustness: []attack.CurvePoint{{Eps: 1, RobustAccuracy: 0.4}, {Eps: 1.5, RobustAccuracy: 0.2}}},
			{Vth: 1, T: 8, CleanAccuracy: 0.12},
			{Vth: 0.5, T: 16, CleanAccuracy: 0.95, Learnable: true,
				Robustness: []attack.CurvePoint{{Eps: 1, RobustAccuracy: 0.8}, {Eps: 1.5, RobustAccuracy: 0.6}}},
			{Vth: 1, T: 16, CleanAccuracy: 0.89, Learnable: true,
				Robustness: []attack.CurvePoint{{Eps: 1, RobustAccuracy: 0.5}, {Eps: 1.5, RobustAccuracy: 0.35}}},
		},
	}
}

func TestAccuracyGridValues(t *testing.T) {
	g := AccuracyGrid(sampleResult())
	if len(g.Cells) != 2 || len(g.Cells[0]) != 2 {
		t.Fatalf("grid shape %dx%d", len(g.Cells), len(g.Cells[0]))
	}
	if g.Cells[0][0] != 0.91 || g.Cells[1][1] != 0.89 {
		t.Errorf("cells = %v", g.Cells)
	}
	if g.RowLabels[1] != "16" || g.ColLabels[0] != "0.5" {
		t.Errorf("labels = %v / %v", g.RowLabels, g.ColLabels)
	}
}

func TestRobustnessGridMissingCells(t *testing.T) {
	g := RobustnessGrid(sampleResult(), 1.5)
	if !math.IsNaN(g.Cells[0][1]) {
		t.Error("non-learnable cell should be NaN")
	}
	if g.Cells[1][0] != 0.6 {
		t.Errorf("cell = %v, want 0.6", g.Cells[1][0])
	}
	// Unmeasured ε: everything NaN.
	g2 := RobustnessGrid(sampleResult(), 99)
	for _, row := range g2.Cells {
		for _, v := range row {
			if !math.IsNaN(v) {
				t.Fatal("phantom ε produced values")
			}
		}
	}
}

func TestWriteASCII(t *testing.T) {
	var buf bytes.Buffer
	AccuracyGrid(sampleResult()).WriteASCII(&buf)
	s := buf.String()
	if !strings.Contains(s, "Figure 6") {
		t.Error("missing title")
	}
	// Rows top-down: T=16 first.
	i16 := strings.Index(s, "16 |")
	i8 := strings.Index(s, " 8 |")
	if i16 < 0 || i8 < 0 || i16 > i8 {
		t.Errorf("rows not reversed:\n%s", s)
	}
	if !strings.Contains(s, "0.910") {
		t.Errorf("missing value:\n%s", s)
	}
	var buf2 bytes.Buffer
	RobustnessGrid(sampleResult(), 1.5).WriteASCII(&buf2)
	if !strings.Contains(buf2.String(), "--") {
		t.Error("missing-cell marker absent")
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	RobustnessGrid(sampleResult(), 1).WriteCSV(&buf)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV has %d lines", len(lines))
	}
	if lines[0] != "T/Vth,0.5,1" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "8,0.4000,") {
		t.Errorf("row = %q", lines[1])
	}
	if !strings.HasSuffix(lines[1], ",") {
		t.Errorf("missing cell should be empty: %q", lines[1])
	}
}

func TestWriteMarkdown(t *testing.T) {
	var buf bytes.Buffer
	AccuracyGrid(sampleResult()).WriteMarkdown(&buf)
	s := buf.String()
	if !strings.Contains(s, "| T \\ Vth |") {
		t.Errorf("markdown header missing:\n%s", s)
	}
	if !strings.Contains(s, "|---|---|---|") {
		t.Errorf("markdown separator missing:\n%s", s)
	}
	var buf2 bytes.Buffer
	RobustnessGrid(sampleResult(), 1.5).WriteMarkdown(&buf2)
	if !strings.Contains(buf2.String(), "—") {
		t.Error("markdown missing-cell dash absent")
	}
}

func TestWriteCurvesAlignsSeries(t *testing.T) {
	var buf bytes.Buffer
	WriteCurves(&buf, "Figure 9", []Series{
		{Name: "CNN", Points: []attack.CurvePoint{{Eps: 0, RobustAccuracy: 0.95}, {Eps: 1, RobustAccuracy: 0.05}}},
		{Name: "SNN(1,48)", Points: []attack.CurvePoint{{Eps: 0, RobustAccuracy: 0.9}, {Eps: 1, RobustAccuracy: 0.8}, {Eps: 2, RobustAccuracy: 0.5}}},
	})
	s := buf.String()
	if !strings.Contains(s, "Figure 9") || !strings.Contains(s, "CNN") || !strings.Contains(s, "SNN(1,48)") {
		t.Errorf("curve table incomplete:\n%s", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 5 { // title + header + 3 ε rows
		t.Fatalf("curve table has %d lines:\n%s", len(lines), s)
	}
	// ε ascending.
	if !strings.Contains(lines[2], "0.000") || !strings.Contains(lines[4], "2.000") {
		t.Errorf("ε not sorted:\n%s", s)
	}
	// CNN has no ε=2 point: placeholder.
	if !strings.Contains(lines[4], "--") {
		t.Errorf("missing point placeholder absent:\n%s", s)
	}
}

// TestGridsFromPartialResult: a partial (checkpointed/budget-limited)
// result renders with its never-computed points as missing cells, not as
// zero accuracy.
func TestGridsFromPartialResult(t *testing.T) {
	res := explore.NewPartialResult([]float64{0.5, 1}, []int{2, 4}, []float64{1})
	res.Set(0, explore.Point{Vth: 0.5, T: 2, CleanAccuracy: 0.8, Learnable: true,
		Robustness: []attack.CurvePoint{{Eps: 1, RobustAccuracy: 0.4}}})
	res.Set(3, explore.Point{Vth: 1, T: 4, CleanAccuracy: 0.3})

	acc := AccuracyGrid(res)
	if v := acc.Cells[0][0]; v != 0.8 {
		t.Errorf("computed cell = %v, want 0.8", v)
	}
	if !math.IsNaN(acc.Cells[0][1]) || !math.IsNaN(acc.Cells[1][0]) {
		t.Error("missing points rendered as values instead of NaN")
	}
	if v := acc.Cells[1][1]; v != 0.3 {
		t.Errorf("second computed cell = %v, want 0.3", v)
	}
	rob := RobustnessGrid(res, 1)
	if v := rob.Cells[0][0]; v != 0.4 {
		t.Errorf("robustness cell = %v, want 0.4", v)
	}
	if !math.IsNaN(rob.Cells[1][1]) {
		t.Error("non-learnable computed point should stay NaN in robustness grid")
	}
	// The ASCII rendering shows missing cells as "--" rather than 0.
	var buf strings.Builder
	acc.WriteASCII(&buf)
	if !strings.Contains(buf.String(), "--") {
		t.Error("ASCII render of a partial grid lacks missing markers")
	}
}

func TestShadeRamp(t *testing.T) {
	if shade(math.NaN()) != '?' {
		t.Error("NaN shade")
	}
	if shade(0) != ' ' {
		t.Errorf("shade(0) = %c", shade(0))
	}
	if shade(1) != '@' {
		t.Errorf("shade(1) = %c", shade(1))
	}
	if shade(-5) != ' ' || shade(7) != '@' {
		t.Error("out-of-range shade not clamped")
	}
	// Monotone.
	prev := shade(0)
	ramp := " .:-=+*#%@"
	for v := 0.05; v <= 1; v += 0.05 {
		cur := shade(v)
		if strings.IndexByte(ramp, cur) < strings.IndexByte(ramp, prev) {
			t.Fatalf("ramp not monotone at %v", v)
		}
		prev = cur
	}
}

func TestTrimFloat(t *testing.T) {
	cases := map[float64]string{0.5: "0.5", 1: "1", 2.25: "2.25", 0.1: "0.1"}
	for in, want := range cases {
		if got := trimFloat(in); got != want {
			t.Errorf("trimFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestNewGridAllNaN(t *testing.T) {
	g := NewGrid("t", "r", "c", []string{"a"}, []string{"b", "c"})
	for _, row := range g.Cells {
		for _, v := range row {
			if !math.IsNaN(v) {
				t.Fatal("fresh grid not NaN")
			}
		}
	}
}

func TestClip(t *testing.T) {
	if clip("short", 10) != "short" {
		t.Error("clip altered short string")
	}
	long := clip("averyveryverylongname", 8)
	if len(long) > 10 { // byte length can exceed 8 due to the ellipsis rune
		t.Errorf("clip result too long: %q", long)
	}
}
