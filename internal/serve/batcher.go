package serve

import (
	"sync"
	"sync/atomic"
	"time"

	"snnsec/internal/tensor"
)

// call is one enqueued predict request. done is buffered (cap 1) and the
// dispatcher is its only sender, so delivering a result never blocks
// even when the requester has already given up; cancelled lets the
// requester withdraw (deadline fired, client disconnected) without any
// handshake — the dispatcher just skips the call when it gets there.
type call struct {
	runner    Runner
	x         *tensor.Tensor // [n, sample...]
	n         int
	deadline  time.Time
	cancelled atomic.Bool
	done      chan callResult
}

type callResult struct {
	logits *tensor.Tensor // [n, classes]
	err    error
}

func (c *call) finish(res callResult) {
	select {
	case c.done <- res:
	default:
	}
}

// batcher owns the bounded request queue and the single dispatch
// goroutine that coalesces compatible requests into one forward pass.
// One goroutine is deliberate: the engine serialises forwards anyway
// (kernel parallelism comes from the compute backend, batch parallelism
// from coalescing), so more dispatchers would only add contention.
type batcher struct {
	maxBatch  int
	batchWait time.Duration
	depth     int

	mu       sync.Mutex
	queue    []*call
	arrive   chan struct{} // best-effort arrival signal, cap 1
	stop     chan struct{}
	donec    chan struct{}
	stopOnce sync.Once
}

func newBatcher(maxBatch int, batchWait time.Duration, depth int) *batcher {
	b := &batcher{
		maxBatch:  maxBatch,
		batchWait: batchWait,
		depth:     depth,
		arrive:    make(chan struct{}, 1),
		stop:      make(chan struct{}),
		donec:     make(chan struct{}),
	}
	go b.loop()
	return b
}

// enqueue admits a call or reports overload when the bounded queue is
// full — the backpressure the transports translate into 429.
func (b *batcher) enqueue(c *call) error {
	b.mu.Lock()
	if len(b.queue) >= b.depth {
		b.mu.Unlock()
		return ErrOverloaded
	}
	b.queue = append(b.queue, c)
	b.mu.Unlock()
	select {
	case b.arrive <- struct{}{}:
	default:
	}
	return nil
}

// close stops the dispatcher and fails every queued call. Idempotent.
func (b *batcher) close() {
	b.stopOnce.Do(func() { close(b.stop) })
	<-b.donec
	b.mu.Lock()
	q := b.queue
	b.queue = nil
	b.mu.Unlock()
	for _, c := range q {
		c.finish(callResult{err: ErrClosed})
	}
}

func (b *batcher) loop() {
	defer close(b.donec)
	for {
		first := b.next()
		if first == nil {
			return
		}
		b.runBatch(b.coalesce(first))
	}
}

// next pops the first live call, expiring dead ones on the way, or
// blocks until an arrival (nil once stopped).
func (b *batcher) next() *call {
	for {
		b.mu.Lock()
		var c *call
		for len(b.queue) > 0 {
			head := b.queue[0]
			b.queue = b.queue[1:]
			if head.cancelled.Load() {
				continue
			}
			if !head.deadline.IsZero() && time.Now().After(head.deadline) {
				head.finish(callResult{err: ErrDeadline})
				continue
			}
			c = head
			break
		}
		b.mu.Unlock()
		if c != nil {
			return c
		}
		select {
		case <-b.arrive:
		case <-b.stop:
			return nil
		}
	}
}

// coalesce grows a batch around first: it takes same-model calls off the
// queue front (never jumping over a different model's request, so FIFO
// order holds across models) until the batch is full or BatchWait has
// passed since the batch opened.
func (b *batcher) coalesce(first *call) []*call {
	batch := []*call{first}
	n := first.n
	if b.maxBatch <= n {
		return batch
	}
	var timeout <-chan time.Time
	if b.batchWait > 0 {
		timer := time.NewTimer(b.batchWait)
		defer timer.Stop()
		timeout = timer.C
	}
	for {
		b.mu.Lock()
		for len(b.queue) > 0 && n < b.maxBatch {
			c := b.queue[0]
			if c.runner != first.runner || n+c.n > b.maxBatch {
				break
			}
			b.queue = b.queue[1:]
			if c.cancelled.Load() {
				continue
			}
			batch = append(batch, c)
			n += c.n
		}
		b.mu.Unlock()
		if n >= b.maxBatch || timeout == nil {
			return batch
		}
		select {
		case <-b.arrive:
		case <-timeout:
			return batch
		case <-b.stop:
			return batch
		}
	}
}

// runBatch drops dead calls, runs one forward over the survivors'
// concatenated inputs, and splits the logits back per call. Per-sample
// logits are batch-composition invariant (every kernel computes a
// sample's outputs from that sample's inputs alone), so coalescing never
// changes what a request gets back.
func (b *batcher) runBatch(batch []*call) {
	now := time.Now()
	live := batch[:0]
	for _, c := range batch {
		if c.cancelled.Load() {
			continue
		}
		if !c.deadline.IsZero() && now.After(c.deadline) {
			c.finish(callResult{err: ErrDeadline})
			continue
		}
		live = append(live, c)
	}
	if len(live) == 0 {
		return
	}
	x := live[0].x
	if len(live) > 1 {
		sample := live[0].x.Shape()[1:]
		total := 0
		for _, c := range live {
			total += c.n
		}
		x = tensor.New(append([]int{total}, sample...)...)
		xd := x.Data()
		off := 0
		for _, c := range live {
			copy(xd[off:], c.x.Data())
			off += c.x.Len()
		}
	}
	logits, err := live[0].runner.Logits(x)
	if err != nil {
		for _, c := range live {
			c.finish(callResult{err: err})
		}
		return
	}
	classes := logits.Dim(1)
	ld := logits.Data()
	off := 0
	for _, c := range live {
		part := make([]float64, c.n*classes)
		copy(part, ld[off:off+len(part)])
		off += len(part)
		c.finish(callResult{logits: tensor.FromSlice(part, c.n, classes)})
	}
}
