package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"snnsec/internal/faultinject"
	"snnsec/internal/tensor"
)

// FaultServeForward is the fault point wrapping every dispatched forward
// pass; it supports delay (a slow model), error and panic (a poisoned
// request taking down the dispatcher — the bug safeLogits contains).
const FaultServeForward = "serve.forward"

// call is one enqueued predict request. done is buffered (cap 1) and the
// dispatcher is its only sender, so delivering a result never blocks
// even when the requester has already given up; cancelled lets the
// requester withdraw (deadline fired, client disconnected) without any
// handshake — the dispatcher just skips the call when it gets there.
type call struct {
	runner    Runner
	x         *tensor.Tensor // [n, sample...]
	n         int
	deadline  time.Time
	cancelled atomic.Bool
	done      chan callResult
	// trace is non-nil only when the server was built with a TraceWriter;
	// the dispatcher stamps it before delivering on done.
	trace *traceTimes
}

type callResult struct {
	logits *tensor.Tensor // [n, classes]
	err    error
}

func (c *call) finish(res callResult) {
	select {
	case c.done <- res:
	default:
	}
}

// batcher owns the bounded request queue and the single dispatch
// goroutine that coalesces compatible requests into one forward pass.
// One goroutine is deliberate: the engine serialises forwards anyway
// (kernel parallelism comes from the compute backend, batch parallelism
// from coalescing), so more dispatchers would only add contention.
type batcher struct {
	maxBatch  int
	batchWait time.Duration
	depth     int

	mu       sync.Mutex
	queue    []*call
	arrive   chan struct{} // best-effort arrival signal, cap 1
	stop     chan struct{}
	donec    chan struct{}
	stopOnce sync.Once
	// abandoned latches when a drain timed out: the dispatcher may be
	// wedged in a forward pass, so close must not wait for it.
	abandoned atomic.Bool
	// ewmaNS tracks the smoothed per-forward service time (nanoseconds);
	// the dispatcher writes it, retryAfter reads it.
	ewmaNS atomic.Int64
}

func newBatcher(maxBatch int, batchWait time.Duration, depth int) *batcher {
	b := &batcher{
		maxBatch:  maxBatch,
		batchWait: batchWait,
		depth:     depth,
		arrive:    make(chan struct{}, 1),
		stop:      make(chan struct{}),
		donec:     make(chan struct{}),
	}
	go b.loop()
	return b
}

// enqueue admits a call or reports overload when the bounded queue is
// full — the backpressure the transports translate into 429.
func (b *batcher) enqueue(c *call) error {
	b.mu.Lock()
	if len(b.queue) >= b.depth {
		b.mu.Unlock()
		metricRejected.Inc()
		return ErrOverloaded
	}
	b.queue = append(b.queue, c)
	metricQueueDepth.Set(float64(len(b.queue)))
	b.mu.Unlock()
	select {
	case b.arrive <- struct{}{}:
	default:
	}
	return nil
}

// close stops the dispatcher — the loop drains what is already queued
// before exiting — and fails any straggler enqueued during shutdown with
// ErrClosed. Idempotent. After a timed-out drain (abandoned), close does
// not wait for the possibly-wedged dispatcher.
func (b *batcher) close() {
	b.stopOnce.Do(func() { close(b.stop) })
	if !b.abandoned.Load() {
		<-b.donec
	}
	b.mu.Lock()
	q := b.queue
	b.queue = nil
	b.mu.Unlock()
	for _, c := range q {
		c.finish(callResult{err: ErrClosed})
	}
}

// drainAndClose stops the dispatcher after it has answered everything
// already queued, bounded by timeout. On timeout the remaining calls
// fail with ErrClosed and an error is returned — the caller's signal
// that accepted work was dropped.
func (b *batcher) drainAndClose(timeout time.Duration) error {
	b.stopOnce.Do(func() { close(b.stop) })
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case <-b.donec:
		b.close()
		return nil
	case <-timer.C:
		b.abandoned.Store(true)
		b.close()
		return fmt.Errorf("serve: drain did not finish within %v", timeout)
	}
}

// queueLen reports the current queue depth — the live value /healthz
// exposes (metrics only sample it when collection is armed).
func (b *batcher) queueLen() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.queue)
}

// retryAfter estimates, in whole seconds (≥1, capped at 60), how long a
// rejected client should wait before retrying: the queue length times
// the smoothed per-forward service time.
func (b *batcher) retryAfter() int {
	b.mu.Lock()
	qlen := len(b.queue)
	b.mu.Unlock()
	per := time.Duration(b.ewmaNS.Load())
	if per <= 0 {
		return 1
	}
	secs := int((time.Duration(qlen+1)*per + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return secs
}

func (b *batcher) loop() {
	defer close(b.donec)
	for {
		first := b.next()
		if first == nil {
			return
		}
		b.runBatch(b.coalesce(first))
	}
}

// next pops the first live call, expiring dead ones on the way, or
// blocks until an arrival (nil once stopped).
func (b *batcher) next() *call {
	for {
		b.mu.Lock()
		var c *call
		for len(b.queue) > 0 {
			head := b.queue[0]
			b.queue = b.queue[1:]
			if head.cancelled.Load() {
				continue
			}
			if !head.deadline.IsZero() && time.Now().After(head.deadline) {
				metricDeadlineWithdrawals.Inc()
				head.finish(callResult{err: ErrDeadline})
				continue
			}
			c = head
			break
		}
		metricQueueDepth.Set(float64(len(b.queue)))
		b.mu.Unlock()
		if c != nil {
			return c
		}
		select {
		case <-b.arrive:
		case <-b.stop:
			return nil
		}
	}
}

// coalesce grows a batch around first: it takes same-model calls off the
// queue front (never jumping over a different model's request, so FIFO
// order holds across models) until the batch is full or BatchWait has
// passed since the batch opened.
func (b *batcher) coalesce(first *call) []*call {
	batch := []*call{first}
	n := first.n
	if b.maxBatch <= n {
		return batch
	}
	var timeout <-chan time.Time
	if b.batchWait > 0 {
		timer := time.NewTimer(b.batchWait)
		defer timer.Stop()
		timeout = timer.C
	}
	for {
		b.mu.Lock()
		for len(b.queue) > 0 && n < b.maxBatch {
			c := b.queue[0]
			if c.runner != first.runner || n+c.n > b.maxBatch {
				break
			}
			b.queue = b.queue[1:]
			if c.cancelled.Load() {
				continue
			}
			batch = append(batch, c)
			n += c.n
		}
		metricQueueDepth.Set(float64(len(b.queue)))
		b.mu.Unlock()
		if n >= b.maxBatch || timeout == nil {
			return batch
		}
		select {
		case <-b.arrive:
		case <-timeout:
			return batch
		case <-b.stop:
			return batch
		}
	}
}

// runBatch drops dead calls, runs one forward over the survivors'
// concatenated inputs, and splits the logits back per call. Per-sample
// logits are batch-composition invariant (every kernel computes a
// sample's outputs from that sample's inputs alone), so coalescing never
// changes what a request gets back.
func (b *batcher) runBatch(batch []*call) {
	now := time.Now()
	live := batch[:0]
	for _, c := range batch {
		if c.cancelled.Load() {
			continue
		}
		if !c.deadline.IsZero() && now.After(c.deadline) {
			metricDeadlineWithdrawals.Inc()
			c.finish(callResult{err: ErrDeadline})
			continue
		}
		live = append(live, c)
	}
	if len(live) == 0 {
		return
	}
	batchN := 0
	for _, c := range live {
		batchN += c.n
	}
	metricBatchSize.Observe(float64(batchN))
	metricCoalescedCalls.Observe(float64(len(live)))
	for _, c := range live {
		if c.trace != nil {
			c.trace.dequeued = now
			c.trace.batchN = batchN
			c.trace.batchCalls = len(live)
		}
	}
	x := live[0].x
	if len(live) > 1 {
		sample := live[0].x.Shape()[1:]
		total := 0
		for _, c := range live {
			total += c.n
		}
		x = tensor.New(append([]int{total}, sample...)...)
		xd := x.Data()
		off := 0
		for _, c := range live {
			copy(xd[off:], c.x.Data())
			off += c.x.Len()
		}
	}
	fwdStart := time.Now()
	logits, err := b.forward(live[0].runner, x)
	if fwdNS := time.Since(fwdStart).Nanoseconds(); live[0].trace != nil {
		for _, c := range live {
			c.trace.forwardNS = fwdNS
		}
	}
	if err != nil {
		if len(live) == 1 {
			live[0].finish(callResult{err: err})
			return
		}
		// One poisoned request must not fail its co-travellers: rerun
		// each call alone so only the culprit sees the error. The panic
		// is already converted to an error by safeLogits, so the
		// dispatcher itself survives either way.
		for _, c := range live {
			lg, cerr := b.forward(c.runner, c.x)
			if cerr != nil {
				c.finish(callResult{err: cerr})
				continue
			}
			c.finish(callResult{logits: lg})
		}
		return
	}
	classes := logits.Dim(1)
	ld := logits.Data()
	off := 0
	for _, c := range live {
		part := make([]float64, c.n*classes)
		copy(part, ld[off:off+len(part)])
		off += len(part)
		c.finish(callResult{logits: tensor.FromSlice(part, c.n, classes)})
	}
}

// forward runs one panic-isolated forward pass and folds its service
// time into the retry-after estimate.
func (b *batcher) forward(r Runner, x *tensor.Tensor) (*tensor.Tensor, error) {
	start := time.Now()
	lg, err := safeLogits(r, x)
	sample := time.Since(start).Nanoseconds()
	metricForwardSeconds.Observe(float64(sample) / 1e9)
	if err == nil {
		if old := b.ewmaNS.Load(); old == 0 {
			b.ewmaNS.Store(sample)
		} else {
			b.ewmaNS.Store(old - old/8 + sample/8)
		}
	}
	return lg, err
}

// safeLogits converts a panicking runner into an error return. The
// Runner contract says Logits must not panic, but the dispatcher is
// shared by every request in the process — one poisoned request must
// poison at most itself, never the runner loop. The serve.forward fault
// point fires here, wrapping exactly what production wraps.
func safeLogits(r Runner, x *tensor.Tensor) (logits *tensor.Tensor, err error) {
	defer func() {
		if p := recover(); p != nil {
			metricForwardPanics.Inc()
			err = fmt.Errorf("serve: forward pass panicked: %v", p)
		}
	}()
	if err := faultinject.Apply(FaultServeForward); err != nil {
		return nil, err
	}
	return r.Logits(x)
}
