package serve

import (
	"container/list"
	"sync"
)

// modelCache is a small LRU over loaded models keyed by checkpoint
// fingerprint (modelio.Fingerprint of the serialised bytes). Eviction
// only drops the cache's reference: a model whose requests are still
// queued keeps working — the calls hold the Runner directly — and the
// memory goes back once the last request drains. That is what makes
// eviction under load race-free without any handshake.
type modelCache struct {
	mu   sync.Mutex
	max  int
	ll   *list.List // front = most recently used; element values are *Model
	byFP map[string]*list.Element
}

func newModelCache(max int) *modelCache {
	return &modelCache{max: max, ll: list.New(), byFP: make(map[string]*list.Element)}
}

// Get returns the cached model and marks it most recently used, or nil.
func (c *modelCache) Get(fp string) *Model {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byFP[fp]
	if !ok {
		return nil
	}
	c.ll.MoveToFront(el)
	return el.Value.(*Model)
}

// Add inserts (or refreshes) a model and returns the model evicted to
// make room, if any.
func (c *modelCache) Add(m *Model) (evicted *Model) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byFP[m.Fingerprint]; ok {
		c.ll.MoveToFront(el)
		el.Value = m
		return nil
	}
	c.byFP[m.Fingerprint] = c.ll.PushFront(m)
	if c.ll.Len() <= c.max {
		return nil
	}
	el := c.ll.Back()
	c.ll.Remove(el)
	ev := el.Value.(*Model)
	delete(c.byFP, ev.Fingerprint)
	return ev
}

// Len returns the number of cached models.
func (c *modelCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Fingerprints returns the cached fingerprints, most recently used first.
func (c *modelCache) Fingerprints() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	fps := make([]string, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		fps = append(fps, el.Value.(*Model).Fingerprint)
	}
	return fps
}
