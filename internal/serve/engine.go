// Package serve is the inference side of the repository: a tape-free
// forward-only engine that runs a trained classifier with zero autodiff
// allocations, and an HTTP/line-JSON server on top of it with request
// coalescing, an LRU model cache, per-request deadlines and
// bounded-queue backpressure.
//
// The engine mirrors the taped forward pass kernel for kernel — same
// density-adaptive sparse-vs-dense dispatch per call, same fused LIF
// threshold/pack pass, same accumulation order — so default-tier logits
// are bit-identical to train.Predict's (pinned by the forward-
// equivalence suite in engine_test.go). What it drops is everything the
// tape exists for: node and Value allocations, surrogate passes,
// retained per-timestep activations. Membrane, spike and accumulator
// state live in backend-arena slabs reused across all T timesteps.
package serve

import (
	"fmt"
	"sync"

	"snnsec/internal/compute"
	"snnsec/internal/nn"
	"snnsec/internal/snn"
	"snnsec/internal/tensor"
)

// act is an activation flowing between layers: the dense tensor plus the
// packed spike plane when the producer emitted a binary one. Each kernel
// call consults the dispatch policy for the plane's density, exactly as
// the taped ops do. The streaming input path feeds spike-only
// activations (t == nil): the binner packed the events directly, so no
// dense view of the input exists — and must never be materialised.
type act struct {
	t  *tensor.Tensor
	sp *tensor.SpikeTensor
}

func (a act) dims() int {
	if a.t != nil {
		return a.t.Dims()
	}
	return a.sp.Dims()
}

func (a act) dim(i int) int {
	if a.t != nil {
		return a.t.Dim(i)
	}
	return a.sp.Dim(i)
}

func (a act) shape() []int {
	if a.t != nil {
		return a.t.Shape()
	}
	return a.sp.Shape()
}

// dense returns the dense view, materialising (and caching) it from the
// spike plane for spike-only activations. Only the K>64 pool fallbacks
// reach this on the streaming path — pools larger than one word are
// unsupported by the spike kernels and unreachable in the stock models.
func (a act) dense(be compute.Backend) *tensor.Tensor {
	if a.t != nil {
		return a.t
	}
	return a.sp.DenseOn(be)
}

// spikeFor mirrors autodiff's per-call sparse-vs-dense choice: the plane
// when the dispatch policy selects the spike kernel for its density, nil
// for the dense kernel. Bit-identical either way; pure speed. A
// spike-only activation always elects the spike kernel — its dense
// operand was never materialised, and the spike kernels are pinned
// bit-identical to the dense ones, so forcing them preserves the
// equivalence contract.
func (a act) spikeFor(f compute.KernelFamily) *tensor.SpikeTensor {
	if a.sp == nil {
		return nil
	}
	if a.t == nil {
		return a.sp
	}
	if !compute.UseSparse(f, a.sp.Density()) {
		return nil
	}
	return a.sp
}

// Engine runs a classifier forward without a tape. One Engine serves one
// model; calls are serialised (an SNN's rate encoder is a stateful
// generator, and the state slabs are per-engine), so concurrency comes
// from batching requests together, not from parallel forwards.
type Engine struct {
	mu     sync.Mutex
	be     compute.Backend
	net    *snn.Network // spiking path when non-nil
	dense  nn.Layer     // non-spiking path otherwise
	sample []int        // per-sample input shape, e.g. [1,H,W]
}

// NewEngine validates that the model is built only from layer types the
// tape-free evaluator knows how to mirror and returns an engine bound to
// be (nil selects compute.Default()). sample is the per-sample input
// shape (without the batch dimension).
func NewEngine(model nn.Classifier, be compute.Backend, sample []int) (*Engine, error) {
	if be == nil {
		be = compute.Default()
	}
	if len(sample) == 0 {
		return nil, fmt.Errorf("serve: empty sample shape")
	}
	for _, d := range sample {
		if d <= 0 {
			return nil, fmt.Errorf("serve: bad sample shape %v", sample)
		}
	}
	e := &Engine{be: be, sample: append([]int(nil), sample...)}
	switch m := model.(type) {
	case *snn.Network:
		if err := m.Validate(); err != nil {
			return nil, err
		}
		if _, ok := m.Encoder.(snn.ForwardEncoder); !ok {
			return nil, fmt.Errorf("serve: encoder %s has no forward-only path", m.Encoder.Name())
		}
		if m.Mode != snn.ReadoutSpikeCount && m.Mode != snn.ReadoutMembrane {
			return nil, fmt.Errorf("serve: unknown readout mode %v", m.Mode)
		}
		for i := range m.Hidden {
			if err := checkSupported(m.Hidden[i].Syn); err != nil {
				return nil, fmt.Errorf("serve: hidden layer %d: %w", i, err)
			}
		}
		if err := checkSupported(m.Readout); err != nil {
			return nil, fmt.Errorf("serve: readout: %w", err)
		}
		e.net = m
	case nn.Layer:
		if err := checkSupported(m); err != nil {
			return nil, err
		}
		e.dense = m
	default:
		return nil, fmt.Errorf("serve: unsupported classifier %T", model)
	}
	return e, nil
}

// checkSupported walks a layer tree and rejects anything the type switch
// in forwardLayer does not cover, so unsupported models fail at engine
// construction instead of mid-request.
func checkSupported(l nn.Layer) error {
	switch v := l.(type) {
	case *nn.Sequential:
		for _, sub := range v.Layers {
			if err := checkSupported(sub); err != nil {
				return err
			}
		}
		return nil
	case *nn.Linear, *nn.Conv2D, nn.ReLU, nn.AvgPool, nn.MaxPool, nn.Flatten:
		return nil
	case *nn.Dropout:
		if v.Training {
			return fmt.Errorf("serve: dropout layer is in training mode")
		}
		return nil
	default:
		return fmt.Errorf("serve: unsupported layer type %T", l)
	}
}

// SampleShape returns the per-sample input shape the engine expects.
func (e *Engine) SampleShape() []int { return append([]int(nil), e.sample...) }

// Logits runs the forward pass on x [N, sample...] and returns the
// [N, classes] scores. At the default precision tier the result is
// bit-identical to the taped train.Predict logits.
func (e *Engine) Logits(x *tensor.Tensor) (out *tensor.Tensor, err error) {
	if err := e.checkInput(x); err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	defer func() {
		if r := recover(); r != nil {
			out, err = nil, fmt.Errorf("serve: forward failed: %v", r)
		}
	}()
	if e.net != nil {
		return e.snnLogits(x), nil
	}
	return e.forwardLayer(e.dense, act{t: x}).t, nil
}

// Predict returns the argmax class per sample.
func (e *Engine) Predict(x *tensor.Tensor) ([]int, error) {
	logits, err := e.Logits(x)
	if err != nil {
		return nil, err
	}
	return tensor.ArgmaxRowsOn(e.be, logits), nil
}

func (e *Engine) checkInput(x *tensor.Tensor) error {
	if x == nil || x.Dims() != len(e.sample)+1 || x.Dim(0) <= 0 {
		return fmt.Errorf("serve: input must be [N,%v]-shaped", e.sample)
	}
	for i, d := range e.sample {
		if x.Dim(i+1) != d {
			return fmt.Errorf("serve: input shape %v does not match sample shape %v", x.Shape(), e.sample)
		}
	}
	return nil
}

// forwardLayer mirrors each nn layer's taped Forward with the same
// kernel choices (see autodiff/ops.go), minus the recording. Spike-only
// activations (a.t == nil, the streaming input path) take the spike
// kernel in every branch that has one; the remaining branches are
// either identity on binary planes (ReLU, Dropout) or pure reshapes
// (Flatten), so no dense view is ever materialised for them.
func (e *Engine) forwardLayer(l nn.Layer, a act) act {
	be := e.be
	switch v := l.(type) {
	case *nn.Sequential:
		for _, sub := range v.Layers {
			a = e.forwardLayer(sub, a)
		}
		return a
	case *nn.Linear:
		if a.dims() != 2 || a.dim(1) != v.In {
			panic(fmt.Sprintf("serve: Linear(%d→%d) got input %v", v.In, v.Out, a.shape()))
		}
		var out *tensor.Tensor
		if sp := a.spikeFor(compute.KernelMatMul); sp != nil {
			out = tensor.SpikeMatMulOn(be, sp, v.W.Data)
		} else {
			out = tensor.MatMulOn(be, a.t, v.W.Data)
		}
		return act{t: tensor.AddRowVectorOn(be, out, v.B.Data)}
	case *nn.Conv2D:
		if a.dims() != 4 || a.dim(1) != v.InChannels {
			panic(fmt.Sprintf("serve: Conv2D(%d→%d) got input %v", v.InChannels, v.OutChannels, a.shape()))
		}
		if sp := a.spikeFor(compute.KernelConv); sp != nil {
			return act{t: tensor.SpikeConv2DOn(be, sp, v.W.Data, v.B.Data, v.Conv)}
		}
		return act{t: tensor.Conv2DOn(be, a.t, v.W.Data, v.B.Data, v.Conv)}
	case nn.ReLU:
		if a.t == nil {
			// ReLU is the identity on a binary plane; keep it packed.
			return a
		}
		return act{t: tensor.ReLUOn(be, a.t)}
	case nn.AvgPool:
		if sp := a.spikeFor(compute.KernelPool); sp != nil && v.K <= 64 {
			return act{t: tensor.SpikeAvgPool2DOn(be, sp, v.K)}
		}
		return act{t: tensor.AvgPool2DOn(be, a.dense(be), v.K)}
	case nn.MaxPool:
		if sp := a.spikeFor(compute.KernelPool); sp != nil && v.K <= 64 {
			out, _, spOut := tensor.SpikeMaxPool2DOn(be, sp, v.K)
			return act{t: out, sp: spOut}
		}
		out, _ := tensor.MaxPool2DOn(be, a.dense(be), v.K)
		return act{t: out}
	case nn.Flatten:
		n := a.dim(0)
		if a.t == nil {
			return act{sp: a.sp.Reshape(n, a.sp.Len()/n)}
		}
		out := a.t.Reshape(n, -1)
		res := act{t: out}
		if a.sp != nil && out.Dim(0) == a.t.Dim(0) {
			res.sp = a.sp.Reshape(out.Shape()...)
		}
		return res
	case *nn.Dropout:
		if v.Training {
			panic("serve: dropout layer is in training mode")
		}
		return a
	default:
		panic(fmt.Sprintf("serve: unsupported layer type %T", l))
	}
}

// popState is the per-population slab set the SNN loop reuses across all
// T timesteps: membrane (and threshold excess for ALIF), the spike
// output, and the packed-plane storage.
type popState struct {
	mem    []float64
	ex     []float64
	spk    []float64
	bits   []uint64
	counts []int
	shape  []int
	rows   int
}

func (e *Engine) newPopState(be compute.Backend, shape []int, adaptive, pack bool) *popState {
	n := 1
	for _, d := range shape {
		n *= d
	}
	st := &popState{shape: append([]int(nil), shape...), rows: shape[0]}
	st.mem = be.Get(n)
	clear(st.mem)
	st.spk = be.Get(n)
	if adaptive {
		st.ex = be.Get(n)
		clear(st.ex)
	}
	if pack {
		rowLen := n / st.rows
		words := (rowLen + 63) / 64
		st.bits = compute.GetUint64(st.rows * words)
		st.counts = make([]int, st.rows)
	}
	return st
}

func (st *popState) release(be compute.Backend) {
	be.Put(st.mem)
	be.Put(st.spk)
	if st.ex != nil {
		be.Put(st.ex)
	}
	if st.bits != nil {
		compute.PutUint64(st.bits)
	}
}

// accum is a running elementwise sum of per-timestep readout
// contributions in an arena slab. The first contribution is copied, the
// rest added in place — acc[i] += c[i] reads the old accumulator first,
// matching the taped Add(acc, contribution) operand order bit for bit.
type accum struct {
	slab []float64
	t    *tensor.Tensor
	n    int // timesteps accumulated
}

func (ac *accum) add(be compute.Backend, contribution []float64, shape []int) {
	if ac.slab == nil {
		ac.slab = be.Get(len(contribution))
	}
	if ac.n == 0 {
		copy(ac.slab, contribution)
		ac.t = tensor.FromSlice(ac.slab, shape...)
	} else {
		tensor.AddIntoOn(be, ac.t, tensor.FromSlice(contribution, shape...))
	}
	ac.n++
}

func (ac *accum) release(be compute.Backend) {
	if ac.slab != nil {
		be.Put(ac.slab)
		ac.slab = nil
		ac.t = nil
	}
	ac.n = 0
}

// snnState is the complete mutable state of one SNN forward: per-hidden
// population slabs, the readout state for either mode, and the logit
// accumulators. snnLogits owns one for the duration of a call; a
// StatefulRunner keeps one alive across window boundaries.
type snnState struct {
	states   []*popState
	outState *popState      // readout LIF population (spike-count mode)
	outMemT  *tensor.Tensor // readout LI state (membrane mode)
	acc      accum          // cumulative since construction / Reset
	win      *accum         // per-window accumulator (streaming only)
}

func (e *Engine) newSNNState() *snnState {
	return &snnState{states: make([]*popState, len(e.net.Hidden))}
}

func (st *snnState) release(be compute.Backend) {
	for i, ps := range st.states {
		if ps != nil {
			ps.release(be)
			st.states[i] = nil
		}
	}
	if st.outState != nil {
		st.outState.release(be)
		st.outState = nil
	}
	st.outMemT = nil
	st.acc.release(be)
	if st.win != nil {
		st.win.release(be)
	}
}

// stepSNN advances the network one timestep on input activation a:
// hidden synapses + fused LIF/ALIF threshold passes, then the readout,
// accumulating the contribution into st's accumulator(s). This is the
// shared loop body of the batch forward (snnLogits) and the streaming
// forward (StatefulRunner.Step); keeping it single-sourced is what makes
// their bit-identity a structural property rather than a coincidence.
func (e *Engine) stepSNN(st *snnState, a act, packOn bool) {
	nw := e.net
	be := e.be
	for l := range nw.Hidden {
		cur := e.forwardLayer(nw.Hidden[l].Syn, a).t
		ps := st.states[l]
		if ps == nil {
			ps = e.newPopState(be, cur.Shape(), nw.Hidden[l].Adapt != nil, packOn)
			st.states[l] = ps
		}
		if ad := nw.Hidden[l].Adapt; ad != nil {
			cfg := snn.AdaptiveConfig{NeuronConfig: nw.Hidden[l].Cfg, AdaptStep: ad.Step, AdaptDecay: ad.Decay}
			snn.FusedALIFForward(be, cfg, cur.Data(), ps.mem, ps.ex, ps.spk, ps.rows, ps.bits, ps.counts)
		} else {
			snn.FusedLIFForward(be, nw.Hidden[l].Cfg, cur.Data(), ps.mem, ps.spk, ps.rows, ps.bits, ps.counts)
		}
		a = act{t: tensor.FromSlice(ps.spk, ps.shape...)}
		if packOn {
			// A fresh header per step over the reused word slab: the
			// popcount index is rebuilt by the fused step, and a new
			// header keeps the lazily cached density/dense views from
			// leaking across timesteps.
			a.sp = tensor.NewSpikeTensorFromBits(ps.bits, ps.counts, ps.shape...)
		}
	}
	out := e.forwardLayer(nw.Readout, a).t
	var contribution []float64
	switch nw.Mode {
	case snn.ReadoutSpikeCount:
		if st.outState == nil {
			// The readout plane feeds only the elementwise accumulator,
			// so packing it would be pure overhead — skipping it cannot
			// change a result (the taped path packs but never consults
			// the plane either).
			st.outState = e.newPopState(be, out.Shape(), false, false)
		}
		snn.FusedLIFForward(be, nw.ReadoutCfg, out.Data(), st.outState.mem, st.outState.spk, st.outState.rows, nil, nil)
		contribution = st.outState.spk
	case snn.ReadoutMembrane:
		if st.outMemT == nil {
			st.outMemT = tensor.New(out.Shape()...)
		}
		st.outMemT = tensor.AddOn(be, tensor.ScaleOn(be, st.outMemT, nw.ReadoutCfg.Alpha), out)
		contribution = st.outMemT.Data()
	default:
		panic(fmt.Sprintf("serve: unknown readout mode %v", nw.Mode))
	}
	st.acc.add(be, contribution, out.Shape())
	if st.win != nil {
		st.win.add(be, contribution, out.Shape())
	}
}

// snnLogits is the tape-free mirror of snn.Network.Logits: the same
// T-step loop over the same kernels in the same order, with membrane and
// accumulator state in reused arena slabs and the LIF threshold step
// fused (leak → threshold → reset → pack in one pass, no surrogate).
func (e *Engine) snnLogits(x *tensor.Tensor) *tensor.Tensor {
	nw := e.net
	be := e.be
	enc := nw.Encoder.(snn.ForwardEncoder)
	packOn := compute.PackSpikePlanes()

	st := e.newSNNState()
	defer st.release(be)
	for t := 0; t < nw.T; t++ {
		hT, hSp := enc.EncodeForward(be, x, t)
		e.stepSNN(st, act{t: hT, sp: hSp}, packOn)
	}
	return tensor.ScaleOn(be, st.acc.t, nw.LogitScale/float64(nw.T))
}
