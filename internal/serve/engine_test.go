package serve

import (
	"fmt"
	"math"
	"math/rand/v2"
	"testing"

	"snnsec/internal/compute"
	"snnsec/internal/nn"
	"snnsec/internal/snn"
	"snnsec/internal/tensor"
	"snnsec/internal/train"
)

// The forward-equivalence harness: the tape-free engine must reproduce
// the taped forward (train.LogitsOn) bit for bit at the default
// precision tier, across neuron models, readout modes, topologies,
// spike densities and backends. This is the pin that lets every other
// serve feature (batching, caching, the CLI) trust the engine.

const (
	eqC    = 1 // input channels
	eqHW   = 8 // input height/width
	eqT    = 4 // time window
	eqN    = 3 // batch size
	eqOut  = 4 // classes
	eqSeed = 0x5eed
)

// eqTopology builds the hidden stack + readout for one structural case.
type eqTopology struct {
	name   string
	hidden func(r *rand.Rand) []nn.Layer
	// readoutIn is the flattened feature count feeding the readout.
	readoutIn int
}

var eqTopologies = []eqTopology{
	{
		// conv → LIF → avgpool+flatten+linear → LIF → linear readout:
		// the LeNet-style shape with average pooling.
		name: "pooled_avg",
		hidden: func(r *rand.Rand) []nn.Layer {
			return []nn.Layer{
				nn.NewConv2D(r, eqC, 2, 3, 1, 1), // [N,2,8,8]
				nn.NewSequential(nn.AvgPool{K: 2}, nn.Flatten{}, nn.NewLinear(r, 2*4*4, 16)),
			}
		},
		readoutIn: 16,
	},
	{
		// Same stack with max pooling, which threads a packed spike
		// plane *through* the pool (SpikeMaxPool2DOn re-emits one).
		name: "pooled_max",
		hidden: func(r *rand.Rand) []nn.Layer {
			return []nn.Layer{
				nn.NewConv2D(r, eqC, 2, 3, 1, 1),
				nn.NewSequential(nn.MaxPool{K: 2}, nn.Flatten{}, nn.NewLinear(r, 2*4*4, 16)),
			}
		},
		readoutIn: 16,
	},
	{
		// Pool-free: flatten straight into dense layers.
		name: "pool_free",
		hidden: func(r *rand.Rand) []nn.Layer {
			return []nn.Layer{
				nn.NewSequential(nn.Flatten{}, nn.NewLinear(r, eqC*eqHW*eqHW, 24)),
				nn.NewLinear(r, 24, 16),
			}
		},
		readoutIn: 16,
	},
}

// eqNetwork assembles a full spiking classifier for one case. gain is
// the Poisson rate on an all-ones input, i.e. the exact input spike
// density.
func eqNetwork(top eqTopology, adapt bool, mode snn.ReadoutMode, gain float64) *snn.Network {
	r := rand.New(rand.NewPCG(eqSeed, 7))
	layers := top.hidden(r)
	hidden := make([]snn.Layer, len(layers))
	for i, l := range layers {
		hidden[i] = snn.Layer{
			Syn: l,
			// Reset modes alternate so both are always exercised.
			Cfg: snn.NeuronConfig{Vth: 0.3, Alpha: 0.9, Reset: snn.ResetMode(i % 2)},
		}
		if adapt {
			hidden[i].Adapt = &snn.Adaptation{Step: 0.2, Decay: 0.8}
		}
	}
	return &snn.Network{
		Encoder:    snn.NewPoissonEncoder(gain, eqSeed, 11),
		Hidden:     hidden,
		Readout:    nn.NewLinear(r, top.readoutIn, eqOut),
		ReadoutCfg: snn.NeuronConfig{Vth: 0.3, Alpha: 0.9},
		Mode:       mode,
		T:          eqT,
		LogitScale: 10,
	}
}

// eqInput is all ones, so the Poisson gain is the spike density.
func eqInput() *tensor.Tensor {
	x := tensor.New(eqN, eqC, eqHW, eqHW)
	d := x.Data()
	for i := range d {
		d[i] = 1
	}
	return x
}

// runBoth evaluates the taped and the tape-free forward on the same
// network and input, reseeding the Poisson generator before each pass so
// both consume identical spike trains.
func runBoth(t *testing.T, net *snn.Network, be compute.Backend, x *tensor.Tensor) (taped, free *tensor.Tensor) {
	t.Helper()
	enc := net.Encoder.(*snn.PoissonEncoder)
	enc.Reseed(eqSeed, 11)
	taped = train.LogitsOn(be, net, x)
	eng, err := NewEngine(net, be, x.Shape()[1:])
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	enc.Reseed(eqSeed, 11)
	free, err = eng.Logits(x)
	if err != nil {
		t.Fatalf("Engine.Logits: %v", err)
	}
	return taped, free
}

func assertBitIdentical(t *testing.T, taped, free *tensor.Tensor) {
	t.Helper()
	td, fd := taped.Data(), free.Data()
	if len(td) != len(fd) {
		t.Fatalf("logit count: taped %v, tape-free %v", taped.Shape(), free.Shape())
	}
	for i := range td {
		if math.Float64bits(td[i]) != math.Float64bits(fd[i]) {
			t.Fatalf("logit %d differs: taped %v (%#x) vs tape-free %v (%#x)",
				i, td[i], math.Float64bits(td[i]), fd[i], math.Float64bits(fd[i]))
		}
	}
}

// TestForwardEquivalence is the pinning suite: every combination of
// topology × neuron model × readout mode × input spike density ×
// backend must be bit-identical between the taped and tape-free paths.
func TestForwardEquivalence(t *testing.T) {
	backends := map[string]compute.Backend{
		"serial":   compute.NewSerial(),
		"parallel": compute.NewParallel(4),
	}
	x := eqInput()
	for _, top := range eqTopologies {
		for _, adapt := range []bool{false, true} {
			neuron := "lif"
			if adapt {
				neuron = "alif"
			}
			for _, mode := range []snn.ReadoutMode{snn.ReadoutSpikeCount, snn.ReadoutMembrane} {
				for _, gain := range []float64{0, 0.1, 0.5, 1} {
					for beName, be := range backends {
						name := fmt.Sprintf("%s/%s/%s/density=%v/%s", top.name, neuron, mode, gain, beName)
						t.Run(name, func(t *testing.T) {
							taped, free := runBoth(t, eqNetwork(top, adapt, mode, gain), be, x)
							assertBitIdentical(t, taped, free)
						})
					}
				}
			}
		}
	}
}

// TestForwardEquivalenceDenseDispatch pins equivalence when spike-plane
// packing is globally off (dense dispatch): the engine must follow the
// same policy switch the taped ops consult.
func TestForwardEquivalenceDenseDispatch(t *testing.T) {
	old := compute.ActiveDispatchPolicy()
	dense := old
	dense.Mode = compute.DispatchDense
	compute.SetDispatchPolicy(dense)
	defer compute.SetDispatchPolicy(old)
	x := eqInput()
	for _, top := range eqTopologies {
		t.Run(top.name, func(t *testing.T) {
			taped, free := runBoth(t, eqNetwork(top, false, snn.ReadoutSpikeCount, 0.5), nil, x)
			assertBitIdentical(t, taped, free)
		})
	}
}

// TestForwardEquivalenceFloat32 runs the same grid on the opt-in fast
// tier, where the contract loosens from bit-identity to a 1e-3
// tolerance.
func TestForwardEquivalenceFloat32(t *testing.T) {
	compute.SetPrecision(compute.Float32)
	defer compute.SetPrecision(compute.Float64)
	x := eqInput()
	for _, top := range eqTopologies {
		for _, mode := range []snn.ReadoutMode{snn.ReadoutSpikeCount, snn.ReadoutMembrane} {
			name := fmt.Sprintf("%s/%s", top.name, mode)
			t.Run(name, func(t *testing.T) {
				taped, free := runBoth(t, eqNetwork(top, false, mode, 0.5), nil, x)
				td, fd := taped.Data(), free.Data()
				for i := range td {
					tol := 1e-3 * math.Max(1, math.Abs(td[i]))
					if math.Abs(td[i]-fd[i]) > tol {
						t.Fatalf("logit %d: taped %v vs tape-free %v exceeds %v", i, td[i], fd[i], tol)
					}
				}
			})
		}
	}
}

// TestForwardEquivalenceCNN covers the non-spiking path: the engine's
// dense evaluator vs the taped forward on a ReLU CNN with both pool
// kinds and dropout in eval mode.
func TestForwardEquivalenceCNN(t *testing.T) {
	r := rand.New(rand.NewPCG(eqSeed, 13))
	model := nn.NewSequential(
		nn.NewConv2D(r, eqC, 2, 3, 1, 1),
		nn.ReLU{},
		nn.MaxPool{K: 2},
		nn.NewConv2D(r, 2, 3, 3, 1, 1),
		nn.ReLU{},
		nn.AvgPool{K: 2},
		nn.Flatten{},
		&nn.Dropout{P: 0.5},
		nn.NewLinear(r, 3*2*2, eqOut),
	)
	x := tensor.New(eqN, eqC, eqHW, eqHW)
	d := x.Data()
	rr := rand.New(rand.NewPCG(3, 4))
	for i := range d {
		d[i] = rr.Float64()*2 - 1
	}
	taped := train.LogitsOn(nil, model, x)
	eng, err := NewEngine(model, nil, x.Shape()[1:])
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	free, err := eng.Logits(x)
	if err != nil {
		t.Fatalf("Engine.Logits: %v", err)
	}
	assertBitIdentical(t, taped, free)
}

// TestEngineRejectsUnsupported pins construction-time validation: models
// the tape-free evaluator cannot mirror must fail at NewEngine, not
// mid-request.
func TestEngineRejectsUnsupported(t *testing.T) {
	r := rand.New(rand.NewPCG(1, 2))
	if _, err := NewEngine(nn.NewSequential(&nn.Dropout{P: 0.5, Training: true}, nn.NewLinear(r, 4, 2)), nil, []int{4}); err == nil {
		t.Fatal("want error for dropout in training mode")
	}
	if _, err := NewEngine(nn.NewSequential(nn.NewLinear(r, 4, 2)), nil, nil); err == nil {
		t.Fatal("want error for empty sample shape")
	}
}

// TestEngineInputValidation pins shape checking on the request path.
func TestEngineInputValidation(t *testing.T) {
	r := rand.New(rand.NewPCG(1, 2))
	eng, err := NewEngine(nn.NewSequential(nn.NewLinear(r, 4, 2)), nil, []int{4})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	if _, err := eng.Logits(tensor.New(2, 5)); err == nil {
		t.Fatal("want error for wrong sample length")
	}
	if _, err := eng.Logits(tensor.New(2, 2, 2)); err == nil {
		t.Fatal("want error for wrong rank")
	}
	if _, err := eng.Logits(nil); err == nil {
		t.Fatal("want error for nil input")
	}
}
