package serve

import (
	"bytes"
	"errors"
	"testing"

	"snnsec/internal/modelio"
)

// Fuzz targets for the two byte-eating entry points the server exposes
// to untrusted clients: the predict-request parser and the checkpoint
// deserialiser. The contract is the same for both: any input yields a
// value or an error — never a panic, never an unbounded allocation.
// Seed corpora live in testdata/fuzz/<FuzzName>/ (CI runs each target
// for a short budget on top of the checked-in corpus).

func fuzzRequestSeeds() [][]byte {
	return [][]byte{
		[]byte(`{"inputs":[[1,2],[3,4]]}`),
		[]byte(`{"model":"abc","inputs":[[0.5]],"deadline_ms":100}`),
		[]byte(`{"inputs":[]}`),
		[]byte(`{"inputs":[[1],[2,3]]}`),
		[]byte(`{"inputs":[[1]],"bogus":true}`),
		[]byte(`{"inputs":[[1]]}{"inputs":[[2]]}`),
		[]byte(`{"inputs":[[1]],"deadline_ms":-5}`),
		[]byte(`{"inputs":[[1e308,-1e308,null]]}`),
		[]byte(`[]`),
		[]byte(`null`),
		[]byte(``),
		[]byte(`{`),
		[]byte("\xff\xfe{}"),
	}
}

func FuzzParsePredictRequest(f *testing.F) {
	for _, seed := range fuzzRequestSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		req, err := ParsePredictRequest(b)
		if err != nil {
			if !errors.Is(err, ErrBadRequest) {
				t.Fatalf("non-ErrBadRequest error: %v", err)
			}
			return
		}
		// Accepted requests must satisfy the documented invariants the
		// server relies on downstream.
		if len(req.Inputs) == 0 || len(req.Inputs) > MaxRequestInputs {
			t.Fatalf("accepted batch of %d inputs", len(req.Inputs))
		}
		want := len(req.Inputs[0])
		if want == 0 || want > MaxSampleLen {
			t.Fatalf("accepted sample length %d", want)
		}
		for i, row := range req.Inputs {
			if len(row) != want {
				t.Fatalf("accepted ragged row %d (%d vs %d)", i, len(row), want)
			}
		}
		if req.DeadlineMS < 0 {
			t.Fatalf("accepted negative deadline %d", req.DeadlineMS)
		}
	})
}

func fuzzCheckpointSeeds(f *testing.F) [][]byte {
	var ok bytes.Buffer
	if err := modelio.Save(&ok, map[string]string{"arch": "snn", "vth": "0.25"}, nil); err != nil {
		f.Fatalf("save seed: %v", err)
	}
	valid := ok.Bytes()
	seeds := [][]byte{
		valid,
		valid[:len(valid)-1],           // truncated tail
		valid[:8],                      // magic only
		[]byte("SNNSEC01"),             // bare magic
		[]byte("SNNSEC99 junk"),        // wrong magic
		{},                             // empty
		bytes.Repeat([]byte{0xff}, 64), // huge length prefixes
	}
	// A corrupted copy: flip a byte inside the header region.
	corrupt := append([]byte(nil), valid...)
	if len(corrupt) > 10 {
		corrupt[10] ^= 0x80
	}
	return append(seeds, corrupt)
}

func FuzzFromBytes(f *testing.F) {
	for _, seed := range fuzzCheckpointSeeds(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := modelio.FromBytes(b)
		if err != nil {
			return
		}
		// A successfully parsed model must respect the format bounds.
		for _, p := range m.Params {
			if p.Data == nil {
				t.Fatalf("param %q has nil data", p.Name)
			}
			n := 1
			for _, d := range p.Data.Shape() {
				if d <= 0 {
					t.Fatalf("param %q has non-positive dim %v", p.Name, p.Data.Shape())
				}
				n *= d
			}
			if p.Data.Len() != n {
				t.Fatalf("param %q: %d elements for shape %v", p.Name, p.Data.Len(), p.Data.Shape())
			}
		}
	})
}
