package serve

import "snnsec/internal/obs"

// Package-level instruments: registering at init means any binary that
// links the serve package exposes these families (zero-valued until
// traffic arrives) on /metrics, which is what the CI smoke scrapes for.
// Instruments are process-wide, not per-Server — tests that spin up many
// servers share them, which is safe because collection is disarmed by
// default and the CLI owns the only armed process.
var (
	metricQueueDepth = obs.NewGauge("snnsec_serve_queue_depth",
		"Requests currently waiting in the bounded predict queue.")
	metricRequests = obs.NewCounterVec("snnsec_serve_requests_total",
		"Predict requests answered, by checkpoint fingerprint (first 12 hex chars) and outcome.",
		"model", "outcome")
	metricRejected = obs.NewCounter("snnsec_serve_rejected_total",
		"Predict requests rejected with 429 because the queue was full.")
	metricDeadlineWithdrawals = obs.NewCounter("snnsec_serve_deadline_withdrawals_total",
		"Requests withdrawn before a forward pass because their deadline expired.")
	metricForwardPanics = obs.NewCounter("snnsec_serve_forward_panics_total",
		"Forward passes that panicked and were isolated to the offending request.")
	metricForwardSeconds = obs.NewHistogram("snnsec_serve_forward_seconds",
		"Wall time of one coalesced forward pass.",
		obs.ExpBuckets(0.0005, 2, 14)) // 0.5 ms .. 4 s
	metricBatchSize = obs.NewHistogram("snnsec_serve_batch_size",
		"Samples carried by one dispatched forward pass (batch occupancy).",
		[]float64{1, 2, 4, 8, 16, 32, 64, 128, 256})
	metricCoalescedCalls = obs.NewHistogram("snnsec_serve_coalesced_calls",
		"Requests coalesced into one dispatched forward pass.",
		[]float64{1, 2, 4, 8, 16, 32, 64})
)

// fpShort truncates a checkpoint fingerprint to the 12-char prefix used
// in metric labels and error messages.
func fpShort(fp string) string {
	if len(fp) > 12 {
		return fp[:12]
	}
	return fp
}
