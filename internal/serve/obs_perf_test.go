package serve

import (
	"testing"
	"time"

	"snnsec/internal/compute"
	"snnsec/internal/obs"
	"snnsec/internal/snn"
)

// TestObsDisarmedOverheadGate is the CI overhead gate for the
// observability layer: the disarmed instrument calls one request incurs
// on the serve hot path must cost ≤1% of that request's forward pass on
// the throughput-gate fixture. Instrumentation cannot be compiled out,
// so the gate measures the two sides directly: the per-request
// instrument bundle (every metric write a request triggers through
// enqueue → dispatch → forward → respond) against the per-forward
// service time on the same engine and input the throughput gate uses.
func TestObsDisarmedOverheadGate(t *testing.T) {
	if testing.Short() {
		t.Skip("perf gate skipped in -short mode")
	}
	if obs.Armed() {
		t.Fatal("gate must run disarmed")
	}
	// The bundle mirrors the hot path: queue-gauge updates at enqueue,
	// next and coalesce; batch-occupancy, coalesce-size and forward-
	// latency observations; the deadline/reject counter check the error
	// paths share; and the per-model labelled counter at respond time.
	requestsOK := metricRequests.With("default", "ok")
	bundle := func() {
		metricQueueDepth.Set(1)
		metricQueueDepth.Set(0)
		metricQueueDepth.Set(0)
		metricBatchSize.Observe(1)
		metricCoalescedCalls.Observe(1)
		metricForwardSeconds.Observe(0.001)
		metricRejected.Inc()
		requestsOK.Inc()
	}
	const iters = 1_000_000
	bundle() // warm up
	start := time.Now()
	for i := 0; i < iters; i++ {
		bundle()
	}
	perBundle := time.Since(start).Seconds() / iters
	if metricRejected.Value() != 0 {
		t.Fatal("disarmed counter advanced — overhead measurement is invalid")
	}

	net := perfNet()
	eng, err := NewEngine(net, compute.NewSerial(), perfInput(1).Shape()[1:])
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	x := perfInput(1)
	enc := net.Encoder.(*snn.PoissonEncoder)
	fps := measureForwards(2*time.Second, func() {
		enc.Reseed(eqSeed, 11)
		if _, err := eng.Logits(x); err != nil {
			t.Fatal(err)
		}
	})
	perForward := 1 / fps
	overhead := perBundle / perForward
	t.Logf("disarmed bundle %.1f ns, forward %.0f µs, overhead %.4f%%",
		perBundle*1e9, perForward*1e6, overhead*100)
	if overhead > 0.01 {
		t.Fatalf("disarmed instrumentation overhead %.4f%% above the 1%% gate", overhead*100)
	}
}
