package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"snnsec/internal/obs"
)

// syncBuffer is a goroutine-safe trace sink.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func TestTraceRecords(t *testing.T) {
	var sink syncBuffer
	r := &fakeRunner{sample: []int{4}, classes: 3}
	s := newFakeServer(t, Config{TraceWriter: &sink}, r, nil)
	req := &PredictRequest{Inputs: [][]float64{{1, 2, 3, 4}, {5, 6, 7, 8}}}
	if _, err := s.Predict(context.Background(), req); err != nil {
		t.Fatalf("Predict: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(sink.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("got %d trace lines, want 1: %q", len(lines), sink.String())
	}
	var rec TraceRecord
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("trace line not JSON: %v\n%s", err, lines[0])
	}
	if rec.ID == 0 || rec.Model != "default" || rec.N != 2 {
		t.Errorf("trace identity wrong: %+v", rec)
	}
	if rec.EnqueueUS == 0 || rec.TotalNS <= 0 || rec.ForwardNS <= 0 || rec.TotalNS < rec.ForwardNS {
		t.Errorf("trace timings inconsistent: %+v", rec)
	}
	if rec.BatchN < 2 || rec.BatchCalls < 1 || rec.Err != "" {
		t.Errorf("trace batch fields wrong: %+v", rec)
	}
}

func TestTraceDisabledWritesNothing(t *testing.T) {
	r := &fakeRunner{sample: []int{2}, classes: 2}
	s := newFakeServer(t, Config{}, r, nil)
	if s.trace != nil {
		t.Fatal("trace log allocated without a TraceWriter")
	}
	if _, err := s.Predict(context.Background(), &PredictRequest{Inputs: [][]float64{{1, 2}}}); err != nil {
		t.Fatalf("Predict: %v", err)
	}
}

func TestHealthzEnriched(t *testing.T) {
	r := &fakeRunner{sample: []int{2}, classes: 2}
	s := newFakeServer(t, Config{}, r, nil)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	get := func() (int, map[string]any) {
		resp, err := srv.Client().Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatalf("GET /healthz: %v", err)
		}
		defer resp.Body.Close()
		var body map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatalf("healthz body: %v", err)
		}
		return resp.StatusCode, body
	}

	code, body := get()
	if code != 200 || body["ok"] != true {
		t.Fatalf("healthz = %d %v", code, body)
	}
	for _, k := range []string{"queue_depth", "models_cached", "version", "go", "arch"} {
		if _, ok := body[k]; !ok {
			t.Errorf("healthz missing %q: %v", k, body)
		}
	}
	if body["queue_depth"] != float64(0) || body["models_cached"] != float64(0) {
		t.Errorf("idle healthz occupancy wrong: %v", body)
	}

	s.BeginDrain()
	code, body = get()
	if code != 503 || body["ok"] != false || body["draining"] != true {
		t.Fatalf("draining healthz = %d %v", code, body)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	obs.Arm()
	t.Cleanup(obs.Disarm)
	r := &fakeRunner{sample: []int{2}, classes: 2}
	s := newFakeServer(t, Config{}, r, nil)
	if _, err := s.Predict(context.Background(), &PredictRequest{Inputs: [][]float64{{1, 2}}}); err != nil {
		t.Fatalf("Predict: %v", err)
	}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(raw)
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type = %q", ct)
	}
	// One scrape must cover every layer's families: package-init
	// registration makes grid/stream/compute series visible (zero-valued)
	// from the serve binary.
	for _, family := range []string{
		"snnsec_serve_queue_depth",
		"snnsec_serve_requests_total",
		"snnsec_serve_forward_seconds",
		"snnsec_serve_batch_size",
		"snnsec_serve_coalesced_calls",
		"snnsec_serve_rejected_total",
		"snnsec_serve_deadline_withdrawals_total",
		"snnsec_serve_forward_panics_total",
		"snnsec_compute_dispatch_total",
		"snnsec_build_info",
	} {
		if !strings.Contains(out, "# TYPE "+family+" ") {
			t.Errorf("/metrics missing family %s", family)
		}
	}
	if !strings.Contains(out, `snnsec_serve_requests_total{model="default",outcome="ok"} 1`) {
		t.Errorf("per-model request counter not incremented:\n%s", out)
	}
}

func TestPprofMountOptIn(t *testing.T) {
	r := &fakeRunner{sample: []int{2}, classes: 2}
	off := newFakeServer(t, Config{}, r, nil)
	on := newFakeServer(t, Config{EnablePprof: true}, r, nil)

	srvOff := httptest.NewServer(off.Handler())
	defer srvOff.Close()
	srvOn := httptest.NewServer(on.Handler())
	defer srvOn.Close()

	if resp, err := srvOff.Client().Get(srvOff.URL + "/debug/pprof/"); err != nil {
		t.Fatal(err)
	} else if resp.Body.Close(); resp.StatusCode != 404 {
		t.Errorf("pprof without flag = %d, want 404", resp.StatusCode)
	}
	if resp, err := srvOn.Client().Get(srvOn.URL + "/debug/pprof/"); err != nil {
		t.Fatal(err)
	} else if resp.Body.Close(); resp.StatusCode != 200 {
		t.Errorf("pprof with flag = %d, want 200", resp.StatusCode)
	}
}

// TestDeadlineWithdrawalCounted pins that a request withdrawn on
// deadline increments the withdrawal counter.
func TestDeadlineWithdrawalCounted(t *testing.T) {
	obs.Arm()
	t.Cleanup(obs.Disarm)
	before := metricDeadlineWithdrawals.Value()
	r := &fakeRunner{sample: []int{2}, classes: 2, delay: 50 * time.Millisecond}
	s := newFakeServer(t, Config{}, r, nil)
	req := &PredictRequest{Inputs: [][]float64{{1, 2}}, DeadlineMS: 5}
	if _, err := s.Predict(context.Background(), req); err == nil {
		t.Fatal("expected deadline error")
	}
	if metricDeadlineWithdrawals.Value() <= before {
		t.Error("deadline withdrawal not counted")
	}
}
