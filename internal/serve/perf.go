package serve

import (
	"context"
	"sort"
	"sync"
	"time"
)

// LatencyReport summarises a same-process load run against a server:
// offered vs achieved request rate and the latency distribution. It is
// what the serving benchmark appends to BENCH_compute.json.
type LatencyReport struct {
	// OfferedRPS is the open-loop request rate the run scheduled.
	OfferedRPS float64 `json:"offered_rps"`
	// AchievedRPS is completed requests over the wall-clock span.
	AchievedRPS float64 `json:"achieved_rps"`
	// Requests is the number of completed (successful) requests.
	Requests int `json:"requests"`
	// Errors counts failed requests (deadline, overload).
	Errors int `json:"errors,omitempty"`
	// P50Ns and P99Ns are latency percentiles in nanoseconds.
	P50Ns int64 `json:"p50_ns"`
	P99Ns int64 `json:"p99_ns"`
}

// MeasureLatency drives the server at a fixed offered load from within
// the process: requests are scheduled open-loop at rps (send times are
// fixed up front, so a slow server cannot slow the arrival rate — the
// honest way to measure tail latency) and executed by a bounded pool of
// client goroutines. Each request carries one copy of sample. Returns
// the percentile report over successful requests.
// MeasureLatencySweep runs MeasureLatency once per offered load, in the
// order given (ascending loads make the knee visible: the level where
// achieved rate stops tracking offered rate). Every level reuses the
// same server, so the sweep measures steady-state behaviour, not cold
// caches.
func MeasureLatencySweep(s *Server, sample [][]float64, loads []float64, duration time.Duration, clients int) []LatencyReport {
	reports := make([]LatencyReport, 0, len(loads))
	for _, rps := range loads {
		reports = append(reports, MeasureLatency(s, sample, rps, duration, clients))
	}
	return reports
}

// LatencyKnee returns the index of the highest offered load the server
// kept up with — the last report whose achieved rate is at least 90% of
// the offered rate and whose error fraction is at most 1% — or -1 when
// no level qualifies. The next level up (if any) is past the knee:
// offered load the server could not serve.
func LatencyKnee(reports []LatencyReport) int {
	knee := -1
	for i, r := range reports {
		total := r.Requests + r.Errors
		if total == 0 || r.AchievedRPS < 0.9*r.OfferedRPS {
			continue
		}
		if float64(r.Errors)/float64(total) > 0.01 {
			continue
		}
		knee = i
	}
	return knee
}

func MeasureLatency(s *Server, sample [][]float64, rps float64, duration time.Duration, clients int) LatencyReport {
	if clients <= 0 {
		clients = 4
	}
	interval := time.Duration(float64(time.Second) / rps)
	total := int(duration.Nanoseconds() / interval.Nanoseconds())
	if total < 1 {
		total = 1
	}
	start := time.Now()
	var mu sync.Mutex
	lats := make([]time.Duration, 0, total)
	errs := 0
	var wg sync.WaitGroup
	next := make(chan int, total)
	for i := 0; i < total; i++ {
		next <- i
	}
	close(next)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				// Open loop: wait for this request's scheduled send time;
				// if we are already late, send immediately (the lateness
				// shows up as queueing in the measured latency).
				sendAt := start.Add(time.Duration(i) * interval)
				if d := time.Until(sendAt); d > 0 {
					time.Sleep(d)
				}
				t0 := time.Now()
				_, err := s.Predict(context.Background(), &PredictRequest{Inputs: sample})
				lat := time.Since(t0)
				mu.Lock()
				if err != nil {
					errs++
				} else {
					lats = append(lats, lat)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	span := time.Since(start)
	rep := LatencyReport{
		OfferedRPS:  rps,
		AchievedRPS: float64(len(lats)) / span.Seconds(),
		Requests:    len(lats),
		Errors:      errs,
	}
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		rep.P50Ns = lats[len(lats)*50/100].Nanoseconds()
		p99 := len(lats) * 99 / 100
		if p99 >= len(lats) {
			p99 = len(lats) - 1
		}
		rep.P99Ns = lats[p99].Nanoseconds()
	}
	return rep
}
