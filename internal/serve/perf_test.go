package serve

import (
	"math/rand/v2"
	"testing"
	"time"

	"snnsec/internal/compute"
	"snnsec/internal/nn"
	"snnsec/internal/snn"
	"snnsec/internal/tensor"
	"snnsec/internal/train"
)

// perfNet is the fixture for the taped-vs-tape-free comparison: a small
// dense-layer SNN at the paper's default window T=64, evaluated one
// sample at a time — the latency-serving shape, where the tape's
// per-step node/closure/surrogate overhead is the dominant cost the
// engine removes (matmul work is shared by both paths and tiny here).
// Weights are seeded, so both paths do identical arithmetic.
func perfNet() *snn.Network {
	r := rand.New(rand.NewPCG(eqSeed, 7))
	cfg := snn.NeuronConfig{Vth: 0.3, Alpha: 0.9}
	return &snn.Network{
		Encoder: snn.NewPoissonEncoder(0.5, eqSeed, 11),
		Hidden: []snn.Layer{
			{Syn: nn.NewSequential(nn.Flatten{}, nn.NewLinear(r, eqC*eqHW*eqHW, 8)), Cfg: cfg},
			{Syn: nn.NewLinear(r, 8, 8), Cfg: cfg},
		},
		Readout:    nn.NewLinear(r, 8, eqOut),
		ReadoutCfg: cfg,
		Mode:       snn.ReadoutSpikeCount,
		T:          64,
		LogitScale: 10,
	}
}

func perfInput(n int) *tensor.Tensor {
	x := tensor.New(n, eqC, eqHW, eqHW)
	d := x.Data()
	for i := range d {
		d[i] = 1
	}
	return x
}

// measureForwards runs fn repeatedly for at least minWall and returns
// forwards per second.
func measureForwards(minWall time.Duration, fn func()) float64 {
	fn() // warm up arenas and caches
	iters := 0
	start := time.Now()
	for time.Since(start) < minWall {
		fn()
		iters++
	}
	return float64(iters) / time.Since(start).Seconds()
}

// TestTapeFreeThroughputGate is the CI perf gate: the tape-free engine
// must clear 1.5× the taped forward's throughput on the same network,
// input and backend. Skipped under -short so the race sweep and local
// iteration stay fast; CI runs it as its own step on one core.
func TestTapeFreeThroughputGate(t *testing.T) {
	if testing.Short() {
		t.Skip("perf gate skipped in -short mode")
	}
	net := perfNet()
	be := compute.NewSerial()
	x := perfInput(1)
	enc := net.Encoder.(*snn.PoissonEncoder)

	eng, err := NewEngine(net, be, x.Shape()[1:])
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	const wall = 2 * time.Second
	taped := measureForwards(wall, func() {
		enc.Reseed(eqSeed, 11)
		train.LogitsOn(be, net, x)
	})
	free := measureForwards(wall, func() {
		enc.Reseed(eqSeed, 11)
		if _, err := eng.Logits(x); err != nil {
			t.Fatal(err)
		}
	})
	ratio := free / taped
	t.Logf("taped %.1f fw/s, tape-free %.1f fw/s, ratio %.2fx", taped, free, ratio)
	if ratio < 1.5 {
		t.Fatalf("tape-free/taped throughput ratio %.2fx below the 1.5x gate", ratio)
	}
}

// TestLatencyKnee pins the knee rule on synthetic sweeps: last level
// with achieved ≥ 90% of offered and errors ≤ 1%.
func TestLatencyKnee(t *testing.T) {
	mk := func(offered, achieved float64, reqs, errs int) LatencyReport {
		return LatencyReport{OfferedRPS: offered, AchievedRPS: achieved, Requests: reqs, Errors: errs}
	}
	cases := []struct {
		name    string
		reports []LatencyReport
		want    int
	}{
		{"all keep up", []LatencyReport{mk(100, 99, 99, 0), mk(200, 198, 198, 0)}, 1},
		{"saturates", []LatencyReport{mk(100, 99, 99, 0), mk(200, 195, 195, 0), mk(400, 210, 210, 0)}, 1},
		{"errors disqualify", []LatencyReport{mk(100, 99, 90, 9), mk(200, 190, 190, 0)}, 1},
		{"none qualify", []LatencyReport{mk(100, 50, 50, 0)}, -1},
		{"empty level", []LatencyReport{mk(100, 0, 0, 0)}, -1},
		{"recovery does not count backwards", []LatencyReport{mk(100, 99, 99, 0), mk(200, 100, 100, 0)}, 0},
	}
	for _, c := range cases {
		if got := LatencyKnee(c.reports); got != c.want {
			t.Errorf("%s: knee %d, want %d", c.name, got, c.want)
		}
	}
}

// TestMeasureLatencySweep runs the sweep harness on the fast fake: one
// report per level, in order.
func TestMeasureLatencySweep(t *testing.T) {
	r := &fakeRunner{sample: []int{4}, classes: 2}
	s := newFakeServer(t, Config{BatchWait: 100 * time.Microsecond}, r, nil)
	loads := []float64{100, 200, 400}
	reps := MeasureLatencySweep(s, [][]float64{{1, 2, 3, 4}}, loads, 150*time.Millisecond, 4)
	if len(reps) != len(loads) {
		t.Fatalf("got %d reports for %d loads", len(reps), len(loads))
	}
	for i, rep := range reps {
		if rep.OfferedRPS != loads[i] {
			t.Fatalf("report %d offered %v, want %v", i, rep.OfferedRPS, loads[i])
		}
		if rep.Requests == 0 {
			t.Fatalf("level %v completed no requests", loads[i])
		}
	}
	if LatencyKnee(reps) == -1 {
		t.Fatal("idle fake should keep up with at least one level")
	}
}

// TestMeasureLatency sanity-checks the load harness itself on a fast
// fake: the report must count every request and order its percentiles.
func TestMeasureLatency(t *testing.T) {
	r := &fakeRunner{sample: []int{4}, classes: 2}
	s := newFakeServer(t, Config{BatchWait: 100 * time.Microsecond}, r, nil)
	rep := MeasureLatency(s, [][]float64{{1, 2, 3, 4}}, 200, 300*time.Millisecond, 4)
	if rep.Requests == 0 {
		t.Fatal("no requests completed")
	}
	if rep.Errors != 0 {
		t.Fatalf("%d errors from an idle fake", rep.Errors)
	}
	if rep.P50Ns <= 0 || rep.P99Ns < rep.P50Ns {
		t.Fatalf("bad percentiles: p50=%d p99=%d", rep.P50Ns, rep.P99Ns)
	}
}
