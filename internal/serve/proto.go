package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// Wire protocol of the inference server. The same request/response JSON
// travels over both transports — HTTP bodies on /v1/predict and one
// object per line in -stdio mode — so an offline run can be compared
// byte-for-byte against a served one (the CI serve smoke does exactly
// that).

// Request limits. These bound what a single request can make the parser
// allocate before any model is consulted; per-model sample-length
// validation happens later against the engine's input shape.
const (
	// MaxRequestInputs caps the samples one request may carry.
	MaxRequestInputs = 4096
	// MaxSampleLen caps the per-sample element count.
	MaxSampleLen = 1 << 20
)

// PredictRequest asks for logits on a batch of flattened samples.
type PredictRequest struct {
	// Model selects a cached model by checkpoint fingerprint; empty
	// selects the server's default model.
	Model string `json:"model,omitempty"`
	// Inputs holds one flattened sample per row, all the same length.
	Inputs [][]float64 `json:"inputs"`
	// DeadlineMS tightens the server's default per-request deadline
	// (milliseconds); 0 keeps the default.
	DeadlineMS int `json:"deadline_ms,omitempty"`
}

// PredictResponse returns the logits and argmax class per sample.
type PredictResponse struct {
	Model  string      `json:"model"`
	Logits [][]float64 `json:"logits"`
	Preds  []int       `json:"preds"`
}

// ErrBadRequest tags malformed requests so transports can map them to
// 400 instead of 500.
var ErrBadRequest = errors.New("serve: bad request")

// ParsePredictRequest strictly decodes a request body: unknown fields,
// trailing data, empty or oversized batches, ragged rows and negative
// deadlines are all rejected with an error wrapping ErrBadRequest —
// never a panic, whatever the bytes (fuzz-enforced).
func ParsePredictRequest(b []byte) (*PredictRequest, error) {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var req PredictRequest
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	var extra json.RawMessage
	if err := dec.Decode(&extra); err != io.EOF {
		return nil, fmt.Errorf("%w: trailing data after request object", ErrBadRequest)
	}
	if req.DeadlineMS < 0 {
		return nil, fmt.Errorf("%w: negative deadline_ms %d", ErrBadRequest, req.DeadlineMS)
	}
	if len(req.Inputs) == 0 {
		return nil, fmt.Errorf("%w: empty inputs", ErrBadRequest)
	}
	if len(req.Inputs) > MaxRequestInputs {
		return nil, fmt.Errorf("%w: %d inputs exceeds limit %d", ErrBadRequest, len(req.Inputs), MaxRequestInputs)
	}
	want := len(req.Inputs[0])
	for i, row := range req.Inputs {
		if len(row) == 0 || len(row) > MaxSampleLen {
			return nil, fmt.Errorf("%w: input %d has %d elements (want 1..%d)", ErrBadRequest, i, len(row), MaxSampleLen)
		}
		if len(row) != want {
			return nil, fmt.Errorf("%w: ragged inputs (%d elements at row %d, %d at row 0)", ErrBadRequest, len(row), i, want)
		}
	}
	return &req, nil
}
