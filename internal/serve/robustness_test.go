package serve

// Failure-handling tests: panic isolation in the dispatcher, graceful
// drain, overload backoff, and the serve.forward fault point.

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"snnsec/internal/faultinject"
	"snnsec/internal/tensor"
)

// poisonMarker in a sample's first element makes poisonRunner panic —
// the "one bad request" whose blast radius must stay one request.
const poisonMarker = -1e9

type poisonRunner struct {
	inner *fakeRunner
}

func (p *poisonRunner) SampleShape() []int { return p.inner.SampleShape() }

func (p *poisonRunner) Logits(x *tensor.Tensor) (*tensor.Tensor, error) {
	xd := x.Data()
	sampleLen := x.Len() / x.Dim(0)
	for i := 0; i < x.Dim(0); i++ {
		if xd[i*sampleLen] == poisonMarker {
			panic("poisoned request")
		}
	}
	return p.inner.Logits(x)
}

func TestPanicIsolatedToPoisonedRequest(t *testing.T) {
	r := &poisonRunner{inner: &fakeRunner{sample: []int{4}, classes: 3}}
	s, err := NewServer(Config{MaxBatch: 16, BatchWait: 20 * time.Millisecond, QueueDepth: 64},
		&Model{Fingerprint: "default", Runner: r}, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	// A poisoned request and healthy co-travellers, in flight together
	// (the generous BatchWait coalesces them into one batch).
	const healthy = 4
	var wg sync.WaitGroup
	healthyErrs := make(chan error, healthy)
	poisonErr := make(chan error, 1)
	for i := 0; i < healthy; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := &PredictRequest{Inputs: [][]float64{{1, 2, 3, float64(i)}}}
			_, err := s.Predict(context.Background(), req)
			healthyErrs <- err
		}(i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		req := &PredictRequest{Inputs: [][]float64{{poisonMarker, 0, 0, 0}}}
		_, err := s.Predict(context.Background(), req)
		poisonErr <- err
	}()
	wg.Wait()

	if err := <-poisonErr; err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Errorf("poisoned request error = %v, want forward-pass panic", err)
	}
	for i := 0; i < healthy; i++ {
		if err := <-healthyErrs; err != nil {
			t.Errorf("healthy co-traveller failed: %v", err)
		}
	}
	// The dispatcher survived: a fresh request still works.
	if _, err := s.Predict(context.Background(), &PredictRequest{Inputs: [][]float64{{1, 1, 1, 1}}}); err != nil {
		t.Errorf("request after panic failed: %v", err)
	}
}

func TestDrainAnswersEverythingQueued(t *testing.T) {
	r := &fakeRunner{sample: []int{4}, classes: 3, delay: 15 * time.Millisecond}
	s := newFakeServer(t, Config{MaxBatch: 1, BatchWait: time.Millisecond, QueueDepth: 64}, r, nil)

	const n = 6
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := s.Predict(context.Background(), &PredictRequest{Inputs: [][]float64{{1, 2, 3, 4}}})
			errs <- err
		}()
	}
	// Let the requests enqueue (MaxBatch 1 serialises them behind the
	// 15ms forwards), then drain: every one must still be answered.
	time.Sleep(10 * time.Millisecond)
	if err := s.DrainAndClose(5 * time.Second); err != nil {
		t.Fatalf("drain failed: %v", err)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Errorf("request dropped during drain: %v", err)
		}
	}
	if !s.Draining() {
		t.Error("server does not report draining")
	}
	// New work after the drain is refused, not silently queued.
	if _, err := s.Predict(context.Background(), &PredictRequest{Inputs: [][]float64{{1, 2, 3, 4}}}); !errors.Is(err, ErrDeadline) && !errors.Is(err, ErrClosed) {
		t.Errorf("post-drain request error = %v, want closed/deadline", err)
	}
}

func TestDrainTimeoutFailsRemainder(t *testing.T) {
	r := &fakeRunner{sample: []int{4}, classes: 3, delay: 200 * time.Millisecond}
	s := newFakeServer(t, Config{MaxBatch: 1, BatchWait: time.Millisecond, QueueDepth: 64, DefaultDeadline: time.Minute}, r, nil)

	const n = 5
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := s.Predict(context.Background(), &PredictRequest{Inputs: [][]float64{{1, 2, 3, 4}}})
			errs <- err
		}()
	}
	time.Sleep(10 * time.Millisecond)
	// 5 × 200ms of queued work cannot drain in 50ms.
	if err := s.DrainAndClose(50 * time.Millisecond); err == nil {
		t.Fatal("drain of 1s of work finished within 50ms?")
	}
	wg.Wait()
	close(errs)
	var dropped int
	for err := range errs {
		if errors.Is(err, ErrClosed) {
			dropped++
		} else if err != nil {
			t.Errorf("unexpected request error: %v", err)
		}
	}
	if dropped == 0 {
		t.Error("timed-out drain reported an error but dropped nothing")
	}
}

func TestHealthzFlipsWhileDraining(t *testing.T) {
	r := &fakeRunner{sample: []int{4}, classes: 3}
	s := newFakeServer(t, Config{}, r, nil)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz before drain: %d, want 200", resp.StatusCode)
	}
	s.BeginDrain()
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		OK       bool `json:"ok"`
		Draining bool `json:"draining"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || body.OK || !body.Draining {
		t.Errorf("healthz while draining: status %d body %+v, want 503 {ok:false draining:true}", resp.StatusCode, body)
	}
}

func TestRetryAfterReflectsBacklog(t *testing.T) {
	r := &fakeRunner{sample: []int{4}, classes: 3, delay: 50 * time.Millisecond}
	s := newFakeServer(t, Config{MaxBatch: 1, BatchWait: time.Millisecond, QueueDepth: 2, DefaultDeadline: time.Minute}, r, nil)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	// Prime the service-time estimate with one completed request.
	body := `{"inputs":[[1,2,3,4]]}`
	resp, err := http.Post(ts.URL+"/v1/predict", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("priming request: %d", resp.StatusCode)
	}

	// Saturate the depth-2 queue until a 429 arrives.
	var wg sync.WaitGroup
	got429 := make(chan string, 16)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/predict", "application/json", strings.NewReader(body))
			if err != nil {
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode == http.StatusTooManyRequests {
				got429 <- resp.Header.Get("Retry-After")
			}
		}()
	}
	wg.Wait()
	close(got429)
	saw := false
	for ra := range got429 {
		saw = true
		secs, err := strconv.Atoi(ra)
		if err != nil || secs < 1 || secs > 60 {
			t.Errorf("Retry-After = %q, want an integer in [1,60]", ra)
		}
	}
	if !saw {
		t.Skip("queue never overflowed on this machine; nothing to assert")
	}
}

func TestServeLinesContextStopsOnCancel(t *testing.T) {
	r := &fakeRunner{sample: []int{4}, classes: 3}
	s := newFakeServer(t, Config{}, r, nil)

	ctx, cancel := context.WithCancel(context.Background())
	pr, pw := io.Pipe()
	var out strings.Builder
	var mu sync.Mutex
	done := make(chan error, 1)
	go func() {
		done <- s.ServeLinesContext(ctx, pr, syncWriter{mu: &mu, w: &out})
	}()

	if _, err := io.WriteString(pw, `{"inputs":[[1,2,3,4]]}`+"\n"); err != nil {
		t.Fatal(err)
	}
	// Wait for the first response so cancellation lands between requests.
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := strings.Count(out.String(), "\n")
		mu.Unlock()
		if n >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first response never arrived")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("cancelled ServeLinesContext returned %v, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ServeLinesContext did not return after cancel")
	}
	pw.Close()
	mu.Lock()
	first := strings.SplitN(out.String(), "\n", 2)[0]
	mu.Unlock()
	if !strings.Contains(first, `"preds"`) {
		t.Errorf("request served before cancel got %q, want a prediction", first)
	}
}

type syncWriter struct {
	mu *sync.Mutex
	w  io.Writer
}

func (s syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

func TestForwardFaultPoint(t *testing.T) {
	inj, err := faultinject.Parse("serve.forward@1=error;serve.forward@2=panic")
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Set(inj)
	t.Cleanup(func() { faultinject.Set(nil) })

	r := &fakeRunner{sample: []int{4}, classes: 3}
	s := newFakeServer(t, Config{MaxBatch: 1}, r, nil)
	req := &PredictRequest{Inputs: [][]float64{{1, 2, 3, 4}}}
	if _, err := s.Predict(context.Background(), req); err == nil || !strings.Contains(err.Error(), "injected error") {
		t.Errorf("hit 1: %v, want injected error", err)
	}
	if _, err := s.Predict(context.Background(), req); err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Errorf("hit 2: %v, want recovered injected panic", err)
	}
	// Injection exhausted: the server is healthy.
	if _, err := s.Predict(context.Background(), req); err != nil {
		t.Errorf("hit 3: %v, want success", err)
	}
}
