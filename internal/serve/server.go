package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"snnsec/internal/modelio"
	"snnsec/internal/obs"
	"snnsec/internal/tensor"
)

// Runner is what the server batches onto: the tape-free Engine in
// production, fakes in the scheduling tests. Logits must be safe to call
// from the dispatcher goroutine and must return an error (not panic) on
// bad input.
type Runner interface {
	Logits(x *tensor.Tensor) (*tensor.Tensor, error)
	SampleShape() []int
}

// Model couples a runner with the checkpoint identity it was built from.
type Model struct {
	// Fingerprint is modelio.Fingerprint of the serialised checkpoint.
	Fingerprint string
	// Meta is the checkpoint metadata (architecture, vth, T, ...).
	Meta map[string]string
	// Runner evaluates the model.
	Runner Runner
}

// BuildFunc reconstructs a runner from an uploaded checkpoint.
type BuildFunc func(m *modelio.Model) (Runner, error)

// Sentinel errors the transports map to status codes.
var (
	// ErrOverloaded reports a full request queue (429).
	ErrOverloaded = errors.New("serve: request queue full")
	// ErrDeadline reports an expired per-request deadline (504).
	ErrDeadline = errors.New("serve: deadline exceeded")
	// ErrUnknownModel reports a fingerprint the cache does not hold (404).
	ErrUnknownModel = errors.New("serve: unknown model")
	// ErrClosed reports a server shut down mid-request (503).
	ErrClosed = errors.New("serve: server closed")
)

// Config tunes the server's scheduling. Zero values select the defaults.
type Config struct {
	// MaxBatch caps the samples one coalesced forward pass carries
	// (default 64).
	MaxBatch int
	// BatchWait is how long an open batch waits for co-travellers before
	// dispatching below MaxBatch (default 2ms).
	BatchWait time.Duration
	// QueueDepth bounds the request queue; enqueueing beyond it fails
	// with ErrOverloaded → 429 (default 256).
	QueueDepth int
	// DefaultDeadline is the per-request deadline when the request does
	// not tighten it (default 5s).
	DefaultDeadline time.Duration
	// CacheSize is the LRU model-cache capacity for uploaded models, not
	// counting the pinned default model (default 4).
	CacheSize int
	// MaxBodyBytes bounds HTTP request bodies (default 64 MiB — a
	// checkpoint upload is the largest legitimate body).
	MaxBodyBytes int64
	// TraceWriter, when non-nil, receives one line-JSON TraceRecord per
	// answered request (the -trace flag). Nil disables tracing and its
	// entire cost.
	TraceWriter io.Writer
	// EnablePprof mounts net/http/pprof under /debug/pprof/ on the
	// handler (the -pprof flag).
	EnablePprof bool
}

func (c Config) withDefaults() Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.BatchWait == 0 {
		c.BatchWait = 2 * time.Millisecond
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 5 * time.Second
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 4
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	return c
}

// Server schedules predict requests onto engines: one bounded queue, one
// coalescing dispatcher, a pinned default model and an LRU cache of
// uploaded ones.
type Server struct {
	cfg   Config
	def   *Model
	build BuildFunc
	cache *modelCache
	b     *batcher
	// trace is nil unless Config.TraceWriter was set.
	trace *traceLog
	// draining flips when a graceful shutdown starts: /healthz answers
	// 503 so load balancers stop routing here, while accepted requests
	// keep being served.
	draining atomic.Bool
}

// NewServer starts a server for the given default model. build may be
// nil to disable checkpoint uploads.
func NewServer(cfg Config, def *Model, build BuildFunc) (*Server, error) {
	if def == nil || def.Runner == nil {
		return nil, fmt.Errorf("serve: server needs a default model")
	}
	cfg = cfg.withDefaults()
	return &Server{
		cfg:   cfg,
		def:   def,
		build: build,
		cache: newModelCache(cfg.CacheSize),
		b:     newBatcher(cfg.MaxBatch, cfg.BatchWait, cfg.QueueDepth),
		trace: newTraceLog(cfg.TraceWriter),
	}, nil
}

// Close stops the dispatcher and fails queued requests with ErrClosed.
func (s *Server) Close() { s.b.close() }

// BeginDrain marks the server as draining: /healthz flips to 503 so load
// balancers stop routing new work here, while everything already
// accepted keeps being served. Call it when the shutdown signal arrives,
// before closing listeners.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether a graceful shutdown has started.
func (s *Server) Draining() bool { return s.draining.Load() }

// DrainAndClose begins draining (if not already begun), answers every
// request still queued — bounded by timeout — and then closes the
// server. A non-nil error means the timeout fired and accepted requests
// were failed with ErrClosed.
func (s *Server) DrainAndClose(timeout time.Duration) error {
	s.BeginDrain()
	return s.b.drainAndClose(timeout)
}

// DefaultModel returns the pinned default model.
func (s *Server) DefaultModel() *Model { return s.def }

// AddModel deserialises an uploaded checkpoint, builds its runner and
// caches it under its fingerprint, evicting the least recently used
// model if the cache is full. In-flight requests on an evicted model
// finish normally — eviction only drops the cache reference.
func (s *Server) AddModel(raw []byte) (*Model, error) {
	if s.build == nil {
		return nil, fmt.Errorf("%w: model uploads are disabled", ErrBadRequest)
	}
	cm, err := modelio.FromBytes(raw)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	r, err := s.build(cm)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	m := &Model{Fingerprint: modelio.Fingerprint(raw), Meta: cm.Meta, Runner: r}
	s.cache.Add(m)
	return m, nil
}

// Models returns the default fingerprint plus the cached ones (MRU
// first).
func (s *Server) Models() []string {
	return append([]string{s.def.Fingerprint}, s.cache.Fingerprints()...)
}

// Predict resolves the request's model, enqueues it and waits for the
// coalesced result or the deadline, whichever comes first.
func (s *Server) Predict(ctx context.Context, req *PredictRequest) (*PredictResponse, error) {
	m := s.def
	if req.Model != "" && req.Model != s.def.Fingerprint {
		if m = s.cache.Get(req.Model); m == nil {
			return nil, fmt.Errorf("%w: %s", ErrUnknownModel, req.Model)
		}
	}
	shape := m.Runner.SampleShape()
	sampleLen := 1
	for _, d := range shape {
		sampleLen *= d
	}
	for i, row := range req.Inputs {
		if len(row) != sampleLen {
			return nil, fmt.Errorf("%w: input %d has %d elements, model %s wants %d",
				ErrBadRequest, i, len(row), m.Fingerprint[:min(12, len(m.Fingerprint))], sampleLen)
		}
	}
	n := len(req.Inputs)
	x := tensor.New(append([]int{n}, shape...)...)
	xd := x.Data()
	for i, row := range req.Inputs {
		copy(xd[i*sampleLen:(i+1)*sampleLen], row)
	}
	deadline := time.Now().Add(s.cfg.DefaultDeadline)
	if req.DeadlineMS > 0 {
		if d := time.Now().Add(time.Duration(req.DeadlineMS) * time.Millisecond); d.Before(deadline) {
			deadline = d
		}
	}
	if cd, ok := ctx.Deadline(); ok && cd.Before(deadline) {
		deadline = cd
	}
	c := &call{runner: m.Runner, x: x, n: n, deadline: deadline, done: make(chan callResult, 1)}
	if s.trace != nil {
		c.trace = &traceTimes{enq: time.Now()}
	}
	if err := s.b.enqueue(c); err != nil {
		metricRequests.With(fpShort(m.Fingerprint), "rejected").Inc()
		s.emitTrace(c, m, err, true) // never reached the dispatcher, all stamps are ours
		return nil, err
	}
	timer := time.NewTimer(time.Until(deadline))
	defer timer.Stop()
	select {
	case res := <-c.done:
		if res.err != nil {
			metricRequests.With(fpShort(m.Fingerprint), "error").Inc()
			s.emitTrace(c, m, res.err, true)
			return nil, res.err
		}
		logits := make([][]float64, n)
		classes := res.logits.Dim(1)
		ld := res.logits.Data()
		for i := range logits {
			logits[i] = ld[i*classes : (i+1)*classes : (i+1)*classes]
		}
		metricRequests.With(fpShort(m.Fingerprint), "ok").Inc()
		s.emitTrace(c, m, nil, true)
		return &PredictResponse{
			Model:  m.Fingerprint,
			Logits: logits,
			Preds:  tensor.ArgmaxRowsOn(nil, res.logits),
		}, nil
	case <-timer.C:
		c.cancelled.Store(true)
		metricDeadlineWithdrawals.Inc()
		metricRequests.With(fpShort(m.Fingerprint), "deadline").Inc()
		s.emitTrace(c, m, ErrDeadline, false)
		return nil, ErrDeadline
	case <-ctx.Done():
		c.cancelled.Store(true)
		metricDeadlineWithdrawals.Inc()
		metricRequests.With(fpShort(m.Fingerprint), "deadline").Inc()
		err := fmt.Errorf("%w: %v", ErrDeadline, ctx.Err())
		s.emitTrace(c, m, err, false)
		return nil, err
	}
}

// ---------------------------------------------------------------------------
// HTTP transport

// Handler returns the HTTP API:
//
//	POST /v1/predict  PredictRequest JSON → PredictResponse JSON
//	POST /v1/models   raw checkpoint bytes → {"model": fingerprint, ...}
//	GET  /v1/models   {"models": [fingerprints...]} (default first)
//	GET  /healthz     {"ok": true, "queue_depth": ..., "models_cached": ..., ...}
//	GET  /metrics     Prometheus text exposition of the default registry
//
// With Config.EnablePprof, net/http/pprof is additionally mounted under
// /debug/pprof/.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/predict", s.handlePredict)
	mux.HandleFunc("POST /v1/models", s.handleAddModel)
	mux.HandleFunc("GET /v1/models", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"models": s.Models()})
	})
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	obs.MountMetrics(mux)
	if s.cfg.EnablePprof {
		obs.MountPprof(mux)
	}
	return mux
}

// handleHealthz answers the liveness probe. Beyond the original ok/
// draining pair (which existing probes key on), the body carries live
// operational fields: queue depth, model-cache occupancy and build
// identity. These read the server directly, not the metrics registry,
// so they are accurate even when collection is disarmed.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	body := map[string]any{
		"ok":            !s.Draining(),
		"queue_depth":   s.b.queueLen(),
		"models_cached": s.cache.Len(),
		"version":       obs.Version(),
		"go":            runtime.Version(),
		"arch":          runtime.GOARCH,
	}
	if s.Draining() {
		body["draining"] = true
		writeJSON(w, http.StatusServiceUnavailable, body)
		return
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		s.writeError(w, fmt.Errorf("%w: %v", ErrBadRequest, err))
		return
	}
	req, err := ParsePredictRequest(body)
	if err != nil {
		s.writeError(w, err)
		return
	}
	resp, err := s.Predict(r.Context(), req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleAddModel(w http.ResponseWriter, r *http.Request) {
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		s.writeError(w, fmt.Errorf("%w: %v", ErrBadRequest, err))
		return
	}
	m, err := s.AddModel(raw)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"model": m.Fingerprint, "meta": m.Meta})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

func (s *Server) writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrBadRequest):
		status = http.StatusBadRequest
	case errors.Is(err, ErrOverloaded):
		status = http.StatusTooManyRequests
		// Retry-After reflects the actual backlog: queue length times
		// the smoothed per-forward service time, so clients back off
		// proportionally to how overloaded the server really is.
		w.Header().Set("Retry-After", strconv.Itoa(s.b.retryAfter()))
	case errors.Is(err, ErrDeadline):
		status = http.StatusGatewayTimeout
	case errors.Is(err, ErrUnknownModel):
		status = http.StatusNotFound
	case errors.Is(err, ErrClosed):
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// ---------------------------------------------------------------------------
// Line-JSON transport

// ServeLines serves the same protocol over a byte stream: one
// PredictRequest JSON object per input line, one PredictResponse (or
// {"error": ...}) JSON object per output line, in request order. The
// response encoding is byte-identical to the HTTP body for the same
// request, which is what lets the CI smoke diff a served batch against
// the offline path.
func (s *Server) ServeLines(r io.Reader, w io.Writer) error {
	return s.ServeLinesContext(context.Background(), r, w)
}

// ServeLinesContext is ServeLines with graceful drain: when ctx is
// cancelled, the request currently being served is answered (the
// cancellation is only observed between requests), no further lines are
// read, and nil is returned — the stdio analogue of closing the HTTP
// listener on SIGTERM. The reader goroutine may stay blocked in a read
// until the process exits; that is fine for the one use (stdin of a
// process about to exit).
func (s *Server) ServeLinesContext(ctx context.Context, r io.Reader, w io.Writer) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), int(s.cfg.MaxBodyBytes))
	lines := make(chan []byte)
	scanErr := make(chan error, 1)
	go func() {
		defer close(lines)
		for sc.Scan() {
			line := append([]byte(nil), sc.Bytes()...)
			select {
			case lines <- line:
			case <-ctx.Done():
				return
			}
		}
		scanErr <- sc.Err()
	}()
	enc := json.NewEncoder(w)
	for {
		var line []byte
		select {
		case <-ctx.Done():
			return nil
		case l, ok := <-lines:
			if !ok {
				select {
				case err := <-scanErr:
					return err
				default:
					// The reader quit because ctx fired mid-handoff.
					return nil
				}
			}
			line = l
		}
		if len(line) == 0 {
			continue
		}
		req, err := ParsePredictRequest(line)
		if err != nil {
			if eerr := enc.Encode(map[string]string{"error": err.Error()}); eerr != nil {
				return eerr
			}
			continue
		}
		// Deliberately not ctx: a cancellation mid-request means drain,
		// and an accepted request must still be answered (the per-request
		// deadline bounds it regardless).
		resp, err := s.Predict(context.Background(), req)
		if err != nil {
			if eerr := enc.Encode(map[string]string{"error": err.Error()}); eerr != nil {
				return eerr
			}
			continue
		}
		if err := enc.Encode(resp); err != nil {
			return err
		}
	}
}
