package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"snnsec/internal/modelio"
	"snnsec/internal/tensor"
)

// Scheduling tests for the server hot path. These run under -race in CI:
// many clients on one batcher, cache eviction mid-load, deadline expiry
// withdrawing queued calls, and queue-overflow backpressure.

// fakeRunner computes a deterministic per-sample function so any client
// can verify its own rows regardless of how requests were coalesced. An
// optional delay simulates a slow forward.
type fakeRunner struct {
	sample  []int
	classes int
	delay   time.Duration
	calls   atomic.Int64 // forward passes
	samples atomic.Int64 // samples across all passes
	id      float64      // distinguishes models in eviction tests
}

func (f *fakeRunner) SampleShape() []int { return f.sample }

func (f *fakeRunner) Logits(x *tensor.Tensor) (*tensor.Tensor, error) {
	f.calls.Add(1) // counted at entry, so tests can observe an in-flight forward
	if f.delay > 0 {
		time.Sleep(f.delay)
	}
	n := x.Dim(0)
	f.samples.Add(int64(n))
	sampleLen := x.Len() / n
	out := tensor.New(n, f.classes)
	od := out.Data()
	xd := x.Data()
	for i := 0; i < n; i++ {
		sum := 0.0
		for _, v := range xd[i*sampleLen : (i+1)*sampleLen] {
			sum += v
		}
		for c := 0; c < f.classes; c++ {
			od[i*f.classes+c] = sum*float64(c+1) + f.id
		}
	}
	return out, nil
}

func newFakeServer(t *testing.T, cfg Config, r *fakeRunner, build BuildFunc) *Server {
	t.Helper()
	s, err := NewServer(cfg, &Model{Fingerprint: "default", Runner: r}, build)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	t.Cleanup(s.Close)
	return s
}

// TestServerConcurrentClients hammers one batcher from many goroutines
// and has every client verify its own logits, proving coalescing never
// crosses rows between requests.
func TestServerConcurrentClients(t *testing.T) {
	r := &fakeRunner{sample: []int{4}, classes: 3}
	s := newFakeServer(t, Config{MaxBatch: 8, BatchWait: time.Millisecond, QueueDepth: 1024}, r, nil)
	const clients = 16
	const perClient = 20
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(cl), 99))
			for i := 0; i < perClient; i++ {
				n := 1 + rng.IntN(3)
				req := &PredictRequest{Inputs: make([][]float64, n)}
				for j := range req.Inputs {
					row := make([]float64, 4)
					for k := range row {
						row[k] = rng.Float64()
					}
					req.Inputs[j] = row
				}
				resp, err := s.Predict(context.Background(), req)
				if err != nil {
					errs <- fmt.Errorf("client %d: %v", cl, err)
					return
				}
				for j, row := range req.Inputs {
					sum := 0.0
					for _, v := range row {
						sum += v
					}
					for c := 0; c < 3; c++ {
						if resp.Logits[j][c] != sum*float64(c+1) {
							errs <- fmt.Errorf("client %d: row %d class %d: got %v want %v",
								cl, j, c, resp.Logits[j][c], sum*float64(c+1))
							return
						}
					}
					if resp.Preds[j] != 2 {
						errs <- fmt.Errorf("client %d: pred %d, want 2", cl, resp.Preds[j])
						return
					}
				}
			}
		}(cl)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got, want := r.samples.Load(), int64(0); got == want {
		t.Fatal("runner never ran")
	}
	if r.calls.Load() >= r.samples.Load() {
		t.Logf("no coalescing observed (%d calls for %d samples) — legal but unexpected under load",
			r.calls.Load(), r.samples.Load())
	}
}

// TestServerCacheEvictionUnderLoad uploads models past the cache
// capacity while clients keep predicting on them. Requests racing an
// eviction must either finish normally (they hold the Runner) or fail
// with ErrUnknownModel at resolution — never crash or hang.
func TestServerCacheEvictionUnderLoad(t *testing.T) {
	def := &fakeRunner{sample: []int{2}, classes: 2}
	builds := atomic.Int64{}
	build := func(m *modelio.Model) (Runner, error) {
		return &fakeRunner{sample: []int{2}, classes: 2, id: float64(builds.Add(1))}, nil
	}
	s := newFakeServer(t, Config{CacheSize: 2, BatchWait: time.Microsecond, QueueDepth: 1024}, def, build)

	// Distinct checkpoint bytes → distinct fingerprints.
	raws := make([][]byte, 6)
	fps := make([]string, 6)
	for i := range raws {
		var buf bytes.Buffer
		if err := modelio.Save(&buf, map[string]string{"i": fmt.Sprint(i)}, nil); err != nil {
			t.Fatalf("save: %v", err)
		}
		raws[i] = buf.Bytes()
		fps[i] = modelio.Fingerprint(raws[i])
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, 8)
	// Uploader: cycles models through the size-2 cache.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 60; i++ {
			if _, err := s.AddModel(raws[i%len(raws)]); err != nil {
				errs <- fmt.Errorf("AddModel: %v", err)
				return
			}
		}
		close(stop)
	}()
	// Clients: predict on random fingerprints; unknown-model errors are
	// expected (the model may have been evicted), anything else is not.
	for cl := 0; cl < 8; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(cl), 7))
			for {
				select {
				case <-stop:
					return
				default:
				}
				req := &PredictRequest{Model: fps[rng.IntN(len(fps))], Inputs: [][]float64{{1, 2}}}
				_, err := s.Predict(context.Background(), req)
				if err != nil && !errors.Is(err, ErrUnknownModel) {
					errs <- fmt.Errorf("client %d: %v", cl, err)
					return
				}
			}
		}(cl)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if n := s.cache.Len(); n > 2 {
		t.Fatalf("cache holds %d models, capacity 2", n)
	}
}

// TestServerDeadlineExpiry pins both expiry paths: a request whose
// deadline fires while it waits behind a slow forward gets ErrDeadline
// and is withdrawn (the dispatcher must skip the cancelled call), and a
// cancelled context maps to the same error.
func TestServerDeadlineExpiry(t *testing.T) {
	slow := &fakeRunner{sample: []int{2}, classes: 2, delay: 60 * time.Millisecond}
	s := newFakeServer(t, Config{MaxBatch: 1, BatchWait: time.Microsecond, QueueDepth: 64}, slow, nil)

	// Occupy the dispatcher with a long-deadline request.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := s.Predict(context.Background(), &PredictRequest{Inputs: [][]float64{{1, 1}}}); err != nil {
			t.Errorf("long request: %v", err)
		}
	}()
	time.Sleep(5 * time.Millisecond) // let it reach the runner
	start := time.Now()
	_, err := s.Predict(context.Background(), &PredictRequest{Inputs: [][]float64{{1, 1}}, DeadlineMS: 10})
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("queued request: got %v, want ErrDeadline", err)
	}
	if d := time.Since(start); d > 50*time.Millisecond {
		t.Fatalf("deadline took %v to fire, want ~10ms", d)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Predict(ctx, &PredictRequest{Inputs: [][]float64{{1, 1}}}); !errors.Is(err, ErrDeadline) {
		t.Fatalf("cancelled context: got %v, want ErrDeadline", err)
	}
	wg.Wait()

	// The withdrawn calls must not reach the runner after the fact: give
	// the dispatcher a beat, then check it only ever saw the live call.
	time.Sleep(20 * time.Millisecond)
	if got := slow.calls.Load(); got > 2 {
		t.Fatalf("runner saw %d forwards, want the non-cancelled ones only", got)
	}
}

// TestServerBackpressure fills a depth-1 queue behind a slow forward and
// checks overflow fails fast with ErrOverloaded.
func TestServerBackpressure(t *testing.T) {
	slow := &fakeRunner{sample: []int{1}, classes: 2, delay: 300 * time.Millisecond}
	s := newFakeServer(t, Config{MaxBatch: 1, BatchWait: time.Microsecond, QueueDepth: 1}, slow, nil)
	waitFor := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", what)
			}
			time.Sleep(time.Millisecond)
		}
	}
	queueLen := func() int {
		s.b.mu.Lock()
		defer s.b.mu.Unlock()
		return len(s.b.queue)
	}
	var wg sync.WaitGroup
	filler := func() {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Predict(context.Background(), &PredictRequest{Inputs: [][]float64{{1}}})
		}()
	}
	// Stage the fillers deterministically. If both raced into the
	// depth-1 queue at once, the second *filler* could draw the 429 and
	// leave the queue empty for the probe — so admit the second only
	// after the first is inside the runner, and probe only after the
	// second is visibly parked in the queue.
	filler()
	waitFor("first filler to enter the runner", func() bool { return slow.calls.Load() >= 1 })
	filler()
	waitFor("second filler to occupy the queue", func() bool { return queueLen() == 1 })
	start := time.Now()
	_, err := s.Predict(context.Background(), &PredictRequest{Inputs: [][]float64{{1}}})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("got %v, want ErrOverloaded", err)
	}
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Fatalf("overload took %v, want immediate", d)
	}
	wg.Wait()
}

// TestServerClose pins shutdown: queued requests fail with ErrClosed and
// Predict after Close cannot hang.
func TestServerClose(t *testing.T) {
	slow := &fakeRunner{sample: []int{1}, classes: 2, delay: 30 * time.Millisecond}
	s := newFakeServer(t, Config{MaxBatch: 1, BatchWait: time.Microsecond, QueueDepth: 16}, slow, nil)
	var wg sync.WaitGroup
	errCh := make(chan error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := s.Predict(context.Background(), &PredictRequest{Inputs: [][]float64{{1}}})
			errCh <- err
		}()
	}
	time.Sleep(10 * time.Millisecond)
	s.Close()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil && !errors.Is(err, ErrClosed) && !errors.Is(err, ErrDeadline) {
			t.Fatalf("got %v, want nil, ErrClosed or ErrDeadline", err)
		}
	}
}

// TestHTTPTransport drives the full HTTP surface and pins the status
// code mapping.
func TestHTTPTransport(t *testing.T) {
	r := &fakeRunner{sample: []int{2}, classes: 2}
	build := func(m *modelio.Model) (Runner, error) {
		return &fakeRunner{sample: []int{2}, classes: 2, id: 1}, nil
	}
	s := newFakeServer(t, Config{}, r, build)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(path, body string) (*http.Response, string) {
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		resp.Body.Close()
		return resp, buf.String()
	}

	resp, body := post("/v1/predict", `{"inputs":[[1,2],[3,4]]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict: %d %s", resp.StatusCode, body)
	}
	var pr PredictResponse
	if err := json.Unmarshal([]byte(body), &pr); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if pr.Model != "default" || len(pr.Logits) != 2 || pr.Logits[0][1] != 6 {
		t.Fatalf("unexpected response: %+v", pr)
	}

	if resp, body = post("/v1/predict", `{"inputs":[[1,2]],"bogus":1}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: %d %s", resp.StatusCode, body)
	}
	if resp, body = post("/v1/predict", `{"inputs":[[1,2,3]]}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("wrong sample len: %d %s", resp.StatusCode, body)
	}
	if resp, body = post("/v1/predict", `{"model":"nope","inputs":[[1,2]]}`); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown model: %d %s", resp.StatusCode, body)
	}

	// Upload a model, then predict on its fingerprint.
	var ckpt bytes.Buffer
	if err := modelio.Save(&ckpt, map[string]string{"k": "v"}, nil); err != nil {
		t.Fatalf("save: %v", err)
	}
	fp := modelio.Fingerprint(ckpt.Bytes())
	if resp, body = post("/v1/models", ckpt.String()); resp.StatusCode != http.StatusOK || !strings.Contains(body, fp) {
		t.Fatalf("upload: %d %s", resp.StatusCode, body)
	}
	if resp, body = post("/v1/models", "not a checkpoint"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad upload: %d %s", resp.StatusCode, body)
	}
	req := fmt.Sprintf(`{"model":%q,"inputs":[[1,2]]}`, fp)
	if resp, body = post("/v1/predict", req); resp.StatusCode != http.StatusOK || !strings.Contains(body, `"model":"`+fp+`"`) {
		t.Fatalf("predict on uploaded: %d %s", resp.StatusCode, body)
	}

	get, err := http.Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatalf("GET models: %v", err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(get.Body)
	get.Body.Close()
	if get.StatusCode != http.StatusOK || !strings.Contains(buf.String(), "default") || !strings.Contains(buf.String(), fp) {
		t.Fatalf("models list: %d %s", get.StatusCode, buf.String())
	}
	if hz, err := http.Get(ts.URL + "/healthz"); err != nil || hz.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", err, hz)
	} else {
		hz.Body.Close()
	}
}

// TestServeLines pins the line-JSON transport: per-line responses in
// order, error lines for bad requests, and byte-identical encoding to
// the HTTP body for the same request.
func TestServeLines(t *testing.T) {
	r := &fakeRunner{sample: []int{2}, classes: 2}
	s := newFakeServer(t, Config{}, r, nil)
	in := strings.NewReader(`{"inputs":[[1,2]]}` + "\n" +
		"\n" + // blank lines are skipped
		`{"inputs":[[1,2,3]]}` + "\n" + // wrong sample length → error line
		`{"inputs":[[0.5,0.5]]}` + "\n")
	var out bytes.Buffer
	if err := s.ServeLines(in, &out); err != nil {
		t.Fatalf("ServeLines: %v", err)
	}
	lines := strings.Split(strings.TrimRight(out.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d output lines, want 3: %q", len(lines), out.String())
	}
	var first PredictResponse
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil || first.Logits[0][0] != 3 {
		t.Fatalf("line 0: %v %q", err, lines[0])
	}
	if !strings.Contains(lines[1], `"error"`) {
		t.Fatalf("line 1 should be an error: %q", lines[1])
	}

	// Byte-identity with the HTTP transport for the same request.
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v1/predict", "application/json", strings.NewReader(`{"inputs":[[1,2]]}`))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	var httpBody bytes.Buffer
	httpBody.ReadFrom(resp.Body)
	resp.Body.Close()
	if httpBody.String() != lines[0]+"\n" {
		t.Fatalf("transport encodings differ:\nhttp:  %q\nstdio: %q", httpBody.String(), lines[0]+"\n")
	}
}

// TestModelCacheLRU pins the eviction order and refresh-on-Get.
func TestModelCacheLRU(t *testing.T) {
	c := newModelCache(2)
	a := &Model{Fingerprint: "a"}
	b := &Model{Fingerprint: "b"}
	d := &Model{Fingerprint: "d"}
	if ev := c.Add(a); ev != nil {
		t.Fatalf("evicted %v early", ev.Fingerprint)
	}
	c.Add(b)
	if got := c.Get("a"); got != a {
		t.Fatal("a should be cached")
	}
	// a was refreshed, so adding d evicts b.
	if ev := c.Add(d); ev != b {
		t.Fatalf("evicted %+v, want b", ev)
	}
	if c.Get("b") != nil {
		t.Fatal("b should be gone")
	}
	if c.Get("a") != a || c.Get("d") != d {
		t.Fatal("a and d should remain")
	}
	if fps := c.Fingerprints(); len(fps) != 2 || fps[0] != "d" {
		t.Fatalf("fingerprints %v, want [d a]", fps)
	}
}
