package serve

import (
	"fmt"

	"snnsec/internal/faultinject"
	"snnsec/internal/tensor"
)

// FaultStreamWindow is the fault point fired inside every streaming
// window, after the first timestep has already mutated the carried
// slabs — so an injected panic or error lands mid-update and exercises
// the rollback, not just the error return.
const FaultStreamWindow = "stream.window"

// StatefulRunner is the streaming forward: it advances an SNN engine one
// window of pre-binned spike planes at a time, carrying membrane and
// adaptation state across window boundaries instead of resetting per
// call. Under contiguous tiling (hop == window) a sequence of Step calls
// is therefore a faithful continuous simulation: the cumulative logits
// after k windows are bit-identical to one batch forward over the k·T
// concatenated planes (pinned by the equivalence suite in
// stateful_test.go).
//
// Windows are transactional. The carried state is snapshotted before
// each Step; if the window panics or a fault fires, the snapshot is
// restored and the error returned — the window fails alone, the stream
// continues from the pre-window state.
//
// A runner is not safe for concurrent use: one runner per stream
// session. Independent runners over the same Engine may run
// concurrently — Step never touches the engine's per-call state.
type StatefulRunner struct {
	e      *Engine
	st     *snnState
	win    accum // per-window accumulator, reused across Steps
	packOn bool  // hidden-plane packing, latched at construction
	steps  int   // timesteps advanced since construction / Reset
	closed bool
}

// NewStatefulRunner returns a streaming runner over the engine's
// network. packOn controls hidden-plane packing and is latched here so a
// stream's results cannot shift mid-connection if the global toggle
// changes; pass compute.PackSpikePlanes() for the batch-equivalent
// setting.
func (e *Engine) NewStatefulRunner(packOn bool) (*StatefulRunner, error) {
	if e.net == nil {
		return nil, fmt.Errorf("serve: streaming requires a spiking network, engine serves %T", e.dense)
	}
	r := &StatefulRunner{e: e, st: e.newSNNState(), packOn: packOn}
	r.st.win = &r.win
	return r, nil
}

// Steps returns how many timesteps the runner has advanced since
// construction or the last Reset.
func (r *StatefulRunner) Steps() int { return r.steps }

// Reset drops all carried state — membrane, adaptation, readout and the
// cumulative accumulator — returning the runner to its initial
// condition. The slabs are released; the next Step reacquires them.
func (r *StatefulRunner) Reset() {
	if r.closed {
		return
	}
	r.st.release(r.e.be)
	r.st = r.e.newSNNState()
	r.st.win = &r.win
	r.steps = 0
}

// Close releases the carried slabs. The runner is unusable afterwards.
func (r *StatefulRunner) Close() {
	if r.closed {
		return
	}
	r.st.release(r.e.be)
	r.closed = true
}

// Step advances the network over one window of spike-only input planes
// (one per timestep, each [N, sample...]) and returns the window's own
// logits: the readout contributions of exactly these len(planes) steps,
// scaled by LogitScale/len(planes). The input stays packed end to end —
// no dense input tensor is ever materialised.
func (r *StatefulRunner) Step(planes []*tensor.SpikeTensor) (out *tensor.Tensor, err error) {
	if r.closed {
		return nil, fmt.Errorf("serve: Step on closed runner")
	}
	if err := r.checkPlanes(planes); err != nil {
		return nil, err
	}
	e := r.e
	snap := r.snapshot()
	defer snap.discard(e)
	defer func() {
		if p := recover(); p != nil {
			r.restore(snap)
			out, err = nil, fmt.Errorf("serve: stream window failed: %v", p)
		}
	}()
	r.win.n = 0 // fresh per-window sum; the cumulative accumulator carries on
	for i, p := range planes {
		e.stepSNN(r.st, act{sp: p}, r.packOn)
		r.steps++
		if i == 0 {
			if ferr := faultinject.Apply(FaultStreamWindow); ferr != nil {
				r.restore(snap)
				return nil, fmt.Errorf("serve: stream window failed: %w", ferr)
			}
		}
	}
	return tensor.ScaleOn(e.be, r.win.t, e.net.LogitScale/float64(len(planes))), nil
}

// CumulativeLogits returns the logits over every timestep since the last
// Reset — ScaleOn(acc, LogitScale/steps), the exact expression the batch
// forward applies — or nil before the first successful Step. Under
// tiling this is bit-identical to a single batch forward over the
// concatenated windows.
func (r *StatefulRunner) CumulativeLogits() *tensor.Tensor {
	if r.closed || r.steps == 0 {
		return nil
	}
	return tensor.ScaleOn(r.e.be, r.st.acc.t, r.e.net.LogitScale/float64(r.steps))
}

func (r *StatefulRunner) checkPlanes(planes []*tensor.SpikeTensor) error {
	if len(planes) == 0 {
		return fmt.Errorf("serve: empty window")
	}
	sample := r.e.sample
	n := planes[0].Dim(0)
	for _, p := range planes {
		if p == nil || p.Dims() != len(sample)+1 || p.Dim(0) != n {
			return fmt.Errorf("serve: window planes must share a [N,%v] shape", sample)
		}
		for i, d := range sample {
			if p.Dim(i+1) != d {
				return fmt.Errorf("serve: plane shape %v does not match sample shape %v", p.Shape(), sample)
			}
		}
	}
	return nil
}

// stateSnap is the pre-window copy of everything a window mutates in
// place. Spike slabs and packed planes are rewritten from scratch every
// timestep, so only membrane, adaptation excess, readout state and the
// cumulative accumulator need copying. outMemT is pointer-restored: the
// membrane readout reassigns a freshly allocated tensor each step and
// never mutates the old one.
type stateSnap struct {
	mems    [][]float64 // arena copies per hidden layer; nil where no state yet
	exs     [][]float64
	outMem  []float64
	outMemT *tensor.Tensor
	accSlab []float64
	accN    int
	steps   int
}

func (r *StatefulRunner) snapshot() *stateSnap {
	be := r.e.be
	st := r.st
	s := &stateSnap{
		mems:    make([][]float64, len(st.states)),
		exs:     make([][]float64, len(st.states)),
		outMemT: st.outMemT,
		accN:    st.acc.n,
		steps:   r.steps,
	}
	for l, ps := range st.states {
		if ps == nil {
			continue
		}
		s.mems[l] = be.Get(len(ps.mem))
		copy(s.mems[l], ps.mem)
		if ps.ex != nil {
			s.exs[l] = be.Get(len(ps.ex))
			copy(s.exs[l], ps.ex)
		}
	}
	if st.outState != nil {
		s.outMem = be.Get(len(st.outState.mem))
		copy(s.outMem, st.outState.mem)
	}
	if st.acc.n > 0 {
		s.accSlab = be.Get(len(st.acc.slab))
		copy(s.accSlab, st.acc.slab)
	}
	return s
}

// restore rewinds the runner to the snapshot. Populations created during
// the failed window are released outright — they will be recreated (zero
// state) by the next window, exactly as if the failed one never ran.
func (r *StatefulRunner) restore(s *stateSnap) {
	be := r.e.be
	st := r.st
	for l, ps := range st.states {
		if ps == nil {
			continue
		}
		if s.mems[l] == nil {
			ps.release(be)
			st.states[l] = nil
			continue
		}
		copy(ps.mem, s.mems[l])
		if ps.ex != nil {
			copy(ps.ex, s.exs[l])
		}
	}
	if st.outState != nil {
		if s.outMem == nil {
			st.outState.release(be)
			st.outState = nil
		} else {
			copy(st.outState.mem, s.outMem)
		}
	}
	st.outMemT = s.outMemT
	if s.accSlab != nil {
		copy(st.acc.slab, s.accSlab)
	} else {
		st.acc.t = nil
	}
	st.acc.n = s.accN
	r.steps = s.steps
}

// discard returns the snapshot's arena copies.
func (s *stateSnap) discard(e *Engine) {
	be := e.be
	for _, m := range s.mems {
		if m != nil {
			be.Put(m)
		}
	}
	for _, x := range s.exs {
		if x != nil {
			be.Put(x)
		}
	}
	if s.outMem != nil {
		be.Put(s.outMem)
	}
	if s.accSlab != nil {
		be.Put(s.accSlab)
	}
}
