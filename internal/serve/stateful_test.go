package serve

import (
	"fmt"
	"math"
	"math/rand/v2"
	"testing"

	"snnsec/internal/compute"
	"snnsec/internal/faultinject"
	"snnsec/internal/snn"
	"snnsec/internal/tensor"
	"snnsec/internal/train"
)

// The streaming-equivalence harness: a StatefulRunner advancing over
// pre-binned spike planes must reproduce the batch engine (and the taped
// forward) fed the same train through snn.SpikeTrainEncoder — per window
// and, with carried state under tiling, cumulatively across windows.

// streamPlanes draws count deterministic random spike planes shaped
// [eqN, eqC, eqHW, eqHW] at roughly the given density, scatter-packed
// exactly as the stream binner packs event windows.
func streamPlanes(rng *rand.Rand, count int, density float64) []*tensor.SpikeTensor {
	n := eqN * eqC * eqHW * eqHW
	planes := make([]*tensor.SpikeTensor, count)
	for t := range planes {
		var idx []int
		for i := 0; i < n; i++ {
			if rng.Float64() < density {
				idx = append(idx, i)
			}
		}
		planes[t] = tensor.ScatterSpikes(idx, eqN, eqC, eqHW, eqHW)
	}
	return planes
}

// streamNetwork is eqNetwork with the Poisson encoder swapped for a
// replay of the given train (weights stay identical — eqNetwork is
// deterministic in its seed).
func streamNetwork(top eqTopology, adapt bool, mode snn.ReadoutMode, planes []*tensor.SpikeTensor) *snn.Network {
	net := eqNetwork(top, adapt, mode, 0.5)
	net.Encoder = &snn.SpikeTrainEncoder{Planes: planes}
	net.T = len(planes)
	return net
}

func newRunner(t *testing.T, eng *Engine) *StatefulRunner {
	t.Helper()
	r, err := eng.NewStatefulRunner(compute.PackSpikePlanes())
	if err != nil {
		t.Fatalf("NewStatefulRunner: %v", err)
	}
	t.Cleanup(r.Close)
	return r
}

func stepOK(t *testing.T, r *StatefulRunner, planes []*tensor.SpikeTensor) *tensor.Tensor {
	t.Helper()
	out, err := r.Step(planes)
	if err != nil {
		t.Fatalf("Step: %v", err)
	}
	return out
}

// TestStreamEquivalenceSingleWindow pins the three paths to each other
// on one full window: taped forward == batch engine == streaming Step,
// bit for bit, across topology × neuron × readout mode.
func TestStreamEquivalenceSingleWindow(t *testing.T) {
	x := eqInput()
	for _, top := range eqTopologies {
		for _, adapt := range []bool{false, true} {
			neuron := "lif"
			if adapt {
				neuron = "alif"
			}
			for _, mode := range []snn.ReadoutMode{snn.ReadoutSpikeCount, snn.ReadoutMembrane} {
				t.Run(fmt.Sprintf("%s/%s/%s", top.name, neuron, mode), func(t *testing.T) {
					rng := rand.New(rand.NewPCG(0x9a77, 3))
					planes := streamPlanes(rng, eqT, 0.3)
					net := streamNetwork(top, adapt, mode, planes)
					taped := train.LogitsOn(nil, net, x)
					eng, err := NewEngine(net, nil, x.Shape()[1:])
					if err != nil {
						t.Fatalf("NewEngine: %v", err)
					}
					batch, err := eng.Logits(x)
					if err != nil {
						t.Fatalf("Engine.Logits: %v", err)
					}
					assertBitIdentical(t, taped, batch)
					r := newRunner(t, eng)
					win := stepOK(t, r, planes)
					assertBitIdentical(t, batch, win)
					assertBitIdentical(t, batch, r.CumulativeLogits())
				})
			}
		}
	}
}

// TestStreamEquivalenceCarriedHops pins the tentpole property: under
// contiguous tiling, a runner stepping window by window with carried
// membrane/adaptation state reproduces one batch forward over the whole
// concatenated train — and each window's own logits match a from-scratch
// run over just that window's planes with fresh state.
func TestStreamEquivalenceCarriedHops(t *testing.T) {
	x := eqInput()
	const windows = 3
	for _, top := range eqTopologies {
		for _, adapt := range []bool{false, true} {
			neuron := "lif"
			if adapt {
				neuron = "alif"
			}
			t.Run(fmt.Sprintf("%s/%s", top.name, neuron), func(t *testing.T) {
				rng := rand.New(rand.NewPCG(0x9a78, 5))
				planes := streamPlanes(rng, windows*eqT, 0.3)
				net := streamNetwork(top, adapt, snn.ReadoutSpikeCount, planes)
				eng, err := NewEngine(net, nil, x.Shape()[1:])
				if err != nil {
					t.Fatalf("NewEngine: %v", err)
				}
				full, err := eng.Logits(x) // one forward over all windows*eqT steps
				if err != nil {
					t.Fatalf("Engine.Logits: %v", err)
				}
				r := newRunner(t, eng)
				var first *tensor.Tensor
				for w := 0; w < windows; w++ {
					out := stepOK(t, r, planes[w*eqT:(w+1)*eqT])
					if w == 0 {
						first = out
					}
				}
				if r.Steps() != windows*eqT {
					t.Fatalf("Steps() = %d, want %d", r.Steps(), windows*eqT)
				}
				assertBitIdentical(t, full, r.CumulativeLogits())

				// Window 0 saw only fresh state, so its per-window logits
				// must equal a from-scratch batch run over its planes.
				net0 := streamNetwork(top, adapt, snn.ReadoutSpikeCount, planes[:eqT])
				eng0, err := NewEngine(net0, nil, x.Shape()[1:])
				if err != nil {
					t.Fatalf("NewEngine: %v", err)
				}
				scratch, err := eng0.Logits(x)
				if err != nil {
					t.Fatalf("Engine.Logits: %v", err)
				}
				assertBitIdentical(t, scratch, first)
			})
		}
	}
}

// TestStreamReset pins that Reset returns the runner to its initial
// condition: the same window replayed after Reset yields bit-identical
// logits to the first pass.
func TestStreamReset(t *testing.T) {
	x := eqInput()
	rng := rand.New(rand.NewPCG(0x9a79, 7))
	planes := streamPlanes(rng, 2*eqT, 0.3)
	net := streamNetwork(eqTopologies[0], true, snn.ReadoutMembrane, planes)
	eng, err := NewEngine(net, nil, x.Shape()[1:])
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	r := newRunner(t, eng)
	first := stepOK(t, r, planes[:eqT])
	stepOK(t, r, planes[eqT:]) // dirty the carried state
	r.Reset()
	if r.Steps() != 0 || r.CumulativeLogits() != nil {
		t.Fatal("Reset left steps or cumulative logits behind")
	}
	assertBitIdentical(t, first, stepOK(t, r, planes[:eqT]))
}

// TestStreamWindowRollback pins the failure model: with the
// stream.window fault point armed to panic on the second window, that
// window fails alone — the windows around it are bit-identical to a
// carried run that never saw the faulted window at all, proving the
// snapshot/restore left no trace of the half-applied update.
func TestStreamWindowRollback(t *testing.T) {
	x := eqInput()
	rng := rand.New(rand.NewPCG(0x9a7a, 9))
	planes := streamPlanes(rng, 3*eqT, 0.3)
	// ALIF + max pool: the topology with the most carried state (membrane
	// plus adaptation excess, packed planes through the pool).
	net := streamNetwork(eqTopologies[1], true, snn.ReadoutSpikeCount, planes)
	eng, err := NewEngine(net, nil, x.Shape()[1:])
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}

	// Reference: a carried run that skips window 2 entirely.
	ref := newRunner(t, eng)
	refW1 := stepOK(t, ref, planes[:eqT])
	refW3 := stepOK(t, ref, planes[2*eqT:])

	for _, action := range []string{"panic", "error"} {
		t.Run(action, func(t *testing.T) {
			inj, err := faultinject.Parse(fmt.Sprintf("%s@2=%s", FaultStreamWindow, action))
			if err != nil {
				t.Fatalf("Parse: %v", err)
			}
			faultinject.Set(inj)
			t.Cleanup(func() { faultinject.Set(nil) })

			r := newRunner(t, eng)
			w1 := stepOK(t, r, planes[:eqT])
			assertBitIdentical(t, refW1, w1)
			if _, err := r.Step(planes[eqT : 2*eqT]); err == nil {
				t.Fatal("faulted window did not fail")
			}
			if r.Steps() != eqT {
				t.Fatalf("failed window advanced Steps to %d, want %d", r.Steps(), eqT)
			}
			w3 := stepOK(t, r, planes[2*eqT:])
			assertBitIdentical(t, refW3, w3)
		})
	}
}

// TestStreamNeverMaterialisesDenseInput pins the zero-copy contract of
// the event path: streaming a window through every topology must leave
// the input planes without a cached dense view — the spike kernels
// consumed the packed bits directly.
func TestStreamNeverMaterialisesDenseInput(t *testing.T) {
	x := eqInput()
	for _, top := range eqTopologies {
		t.Run(top.name, func(t *testing.T) {
			rng := rand.New(rand.NewPCG(0x9a7b, 11))
			planes := streamPlanes(rng, eqT, 0.9) // dense enough that batch dispatch would pick the dense kernels
			net := streamNetwork(top, false, snn.ReadoutSpikeCount, planes)
			eng, err := NewEngine(net, nil, x.Shape()[1:])
			if err != nil {
				t.Fatalf("NewEngine: %v", err)
			}
			r := newRunner(t, eng)
			stepOK(t, r, planes)
			for i, p := range planes {
				if p.HasDenseView() {
					t.Fatalf("plane %d grew a dense view on the streaming path", i)
				}
			}
		})
	}
}

// TestStreamEquivalenceFloat32 runs the single-window pin on the opt-in
// fast tier, where the contract loosens to a 1e-3 relative tolerance.
func TestStreamEquivalenceFloat32(t *testing.T) {
	compute.SetPrecision(compute.Float32)
	defer compute.SetPrecision(compute.Float64)
	x := eqInput()
	for _, top := range eqTopologies {
		t.Run(top.name, func(t *testing.T) {
			rng := rand.New(rand.NewPCG(0x9a7c, 13))
			planes := streamPlanes(rng, eqT, 0.3)
			net := streamNetwork(top, false, snn.ReadoutSpikeCount, planes)
			eng, err := NewEngine(net, nil, x.Shape()[1:])
			if err != nil {
				t.Fatalf("NewEngine: %v", err)
			}
			batch, err := eng.Logits(x)
			if err != nil {
				t.Fatalf("Engine.Logits: %v", err)
			}
			r := newRunner(t, eng)
			win := stepOK(t, r, planes)
			bd, wd := batch.Data(), win.Data()
			for i := range bd {
				tol := 1e-3 * math.Max(1, math.Abs(bd[i]))
				if math.Abs(bd[i]-wd[i]) > tol {
					t.Fatalf("logit %d: batch %v vs stream %v exceeds %v", i, bd[i], wd[i], tol)
				}
			}
		})
	}
}

// TestStatefulRunnerValidation pins the runner's input contract.
func TestStatefulRunnerValidation(t *testing.T) {
	x := eqInput()
	rng := rand.New(rand.NewPCG(0x9a7d, 15))
	planes := streamPlanes(rng, eqT, 0.3)
	net := streamNetwork(eqTopologies[0], false, snn.ReadoutSpikeCount, planes)
	eng, err := NewEngine(net, nil, x.Shape()[1:])
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	r := newRunner(t, eng)
	if r.CumulativeLogits() != nil {
		t.Fatal("CumulativeLogits before any Step must be nil")
	}
	if _, err := r.Step(nil); err == nil {
		t.Fatal("empty window must be rejected")
	}
	bad := tensor.ScatterSpikes(nil, eqN, eqC, eqHW, eqHW+1)
	if _, err := r.Step([]*tensor.SpikeTensor{bad}); err == nil {
		t.Fatal("mis-shaped plane must be rejected")
	}
	r.Close()
	if _, err := r.Step(planes); err == nil {
		t.Fatal("Step on a closed runner must fail")
	}
}
