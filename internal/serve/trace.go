package serve

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// TraceRecord is one per-request trace line: the request's path through
// the server, enqueue → dequeue → batch → forward → respond, as
// monotonic durations plus the wall-clock enqueue stamp. Records are
// emitted as line-JSON to Config.TraceWriter, one object per request,
// written when the response is sent.
type TraceRecord struct {
	// ID is a process-unique request sequence number.
	ID uint64 `json:"id"`
	// Model is the serving fingerprint prefix (12 hex chars).
	Model string `json:"model"`
	// N is the number of samples the request carried.
	N int `json:"n"`
	// EnqueueUS is the wall-clock enqueue time, microseconds since epoch.
	EnqueueUS int64 `json:"enq_us"`
	// QueueNS is time spent queued before the dispatcher picked the
	// request up.
	QueueNS int64 `json:"queue_ns"`
	// BatchN is the total samples in the coalesced batch this request
	// rode in.
	BatchN int `json:"batch_n"`
	// BatchCalls is how many requests shared that batch.
	BatchCalls int `json:"batch_calls"`
	// ForwardNS is the wall time of the batch's forward pass.
	ForwardNS int64 `json:"forward_ns"`
	// TotalNS is enqueue to response, the client-observed latency inside
	// the server.
	TotalNS int64 `json:"total_ns"`
	// Err is the error the request was answered with, empty on success.
	Err string `json:"err,omitempty"`
}

// traceLog serialises trace records onto one writer.
type traceLog struct {
	mu  sync.Mutex
	enc *json.Encoder
	seq atomic.Uint64
}

func newTraceLog(w io.Writer) *traceLog {
	if w == nil {
		return nil
	}
	return &traceLog{enc: json.NewEncoder(w)}
}

// nextID hands out the request sequence number; nil-safe because calls
// carry a trace stamp only when tracing is on.
func (t *traceLog) emit(rec TraceRecord) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.enc.Encode(rec)
	t.mu.Unlock()
}

// emitTrace writes the request's trace record. full means the requester
// observed the dispatcher's result (the receive on c.done orders the
// dispatcher's stamps before this read); on withdrawal paths full must
// be false — the dispatcher may still be stamping concurrently, so only
// requester-owned fields are read.
func (s *Server) emitTrace(c *call, m *Model, err error, full bool) {
	if s.trace == nil || c.trace == nil {
		return
	}
	rec := TraceRecord{
		ID:        s.trace.seq.Add(1),
		Model:     fpShort(m.Fingerprint),
		N:         c.n,
		EnqueueUS: c.trace.enq.UnixMicro(),
		TotalNS:   time.Since(c.trace.enq).Nanoseconds(),
	}
	if full && !c.trace.dequeued.IsZero() {
		rec.QueueNS = c.trace.dequeued.Sub(c.trace.enq).Nanoseconds()
		rec.BatchN = c.trace.batchN
		rec.BatchCalls = c.trace.batchCalls
		rec.ForwardNS = c.trace.forwardNS
	}
	if err != nil {
		rec.Err = err.Error()
	}
	s.trace.emit(rec)
}

// traceTimes rides on a call when tracing is enabled. The dispatcher
// stamps the dequeue/batch/forward fields before delivering the result
// on c.done, so the requester's read after receiving is ordered by the
// channel; on the withdrawal paths (deadline, context) the requester
// never reads these fields — the dispatcher may still be running.
type traceTimes struct {
	enq        time.Time
	dequeued   time.Time
	batchN     int
	batchCalls int
	forwardNS  int64
}
