package snn

import (
	"fmt"
	"math"

	"snnsec/internal/autodiff"
	"snnsec/internal/compute"
	"snnsec/internal/tensor"
)

// AdaptiveConfig extends NeuronConfig with threshold adaptation (the ALIF
// neuron of Bellec et al.): each spike raises the effective threshold by
// AdaptStep, and the excess decays back toward the base Vth with factor
// AdaptDecay per step:
//
//	th[t+1] = Vth + (th[t] − Vth)·AdaptDecay + AdaptStep·s[t]
//
// Threshold adaptation is a *dynamic* counterpart of the paper's static
// Vth knob — the "more complex behaviour" its future-work section
// anticipates — and is exercised by the extension benchmarks.
type AdaptiveConfig struct {
	NeuronConfig
	// AdaptStep is the per-spike threshold increment (≥ 0).
	AdaptStep float64
	// AdaptDecay is the per-step decay of the threshold excess in [0,1).
	AdaptDecay float64
}

// Validate checks the adaptive parameters on top of the base config.
func (c *AdaptiveConfig) Validate() error {
	if err := c.NeuronConfig.Validate(); err != nil {
		return err
	}
	if c.AdaptStep < 0 {
		return fmt.Errorf("snn: AdaptStep must be non-negative, got %g", c.AdaptStep)
	}
	if c.AdaptDecay < 0 || c.AdaptDecay >= 1 {
		return fmt.Errorf("snn: AdaptDecay must be in [0,1), got %g", c.AdaptDecay)
	}
	return nil
}

// ALIFState carries the two state tensors of an adaptive population
// between timesteps.
type ALIFState struct {
	// V is the membrane potential node.
	V *autodiff.Value
	// ThExcess is the threshold excess (th − Vth) as a plain tensor; the
	// adaptation path is treated as non-differentiable state, as in
	// e-prop style truncations.
	ThExcess *tensor.Tensor
}

// NewALIFState returns the zero state for a population of the given
// shape.
func NewALIFState(tp *autodiff.Tape, shape ...int) *ALIFState {
	return &ALIFState{
		V:        tp.Const(tensor.New(shape...)),
		ThExcess: tensor.New(shape...),
	}
}

// ALIFStep advances an adaptive LIF population one timestep. The spike
// condition compares the membrane against the *adapted* threshold
// Vth + excess; gradients flow through the membrane path exactly as in
// LIFStep while the adaptation state is updated out-of-graph.
func ALIFStep(tp *autodiff.Tape, cfg AdaptiveConfig, current *autodiff.Value, st *ALIFState) (spikes *autodiff.Value, next *ALIFState) {
	if err := (&cfg).Validate(); err != nil {
		panic(err)
	}
	if !current.Data.SameShape(st.V.Data) || !current.Data.SameShape(st.ThExcess) {
		panic(fmt.Sprintf("snn: ALIFStep shape mismatch current %v vs state %v/%v",
			current.Data.Shape(), st.V.Data.Shape(), st.ThExcess.Shape()))
	}
	if cfg.Reset != ResetZero && cfg.Reset != ResetSubtract {
		panic(fmt.Sprintf("snn: unknown reset mode %v", cfg.Reset))
	}
	n := current.Data.Len()
	shape := current.Data.Shape()
	be := tp.Backend()

	// One slab for the three tape-lived arrays, drawn from the backend
	// arena and recycled by Tape.Release (see LIFStep); the loop below
	// fully overwrites all three sections.
	slab := be.Get(3 * n)
	tp.OwnBuffer(slab)
	spk := slab[0*n : 1*n : 1*n]
	vout := slab[1*n : 2*n : 2*n]
	surr := slab[2*n : 3*n : 3*n]
	newExcess := tensor.New(shape...)
	cv, mv, ex, ne := current.Data.Data(), st.V.Data.Data(), st.ThExcess.Data(), newExcess.Data()
	// Devirtualise the default surrogate (see LIFStep); the inline
	// expression is FastSigmoid.Grad verbatim.
	fs, isFS := cfg.Surrogate.(FastSigmoid)
	// Pack the spike plane inline while thresholding, exactly as
	// LIFStep does: the loop is partitioned by (word-aligned) row, so
	// bit writes stay block-local and a dense-kernel run pays nothing.
	rows := shape[0]
	rowLen := n / rows
	words := (rowLen + 63) / 64
	packOn := compute.PackSpikePlanes()
	var spkBits []uint64
	var spkCounts []int
	if packOn {
		// Tape-lived like the slab; every word is stored exactly once.
		spkBits = compute.GetUint64(rows * words)
		tp.OwnWords(spkBits)
		spkCounts = make([]int, rows)
	}
	be.ParallelFor(rows, 2048/rowLen, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			base := r * rowLen
			wi := r * words
			var wrd uint64
			cnt := 0
			for j := 0; j < rowLen; j++ {
				i := base + j
				p := cfg.Alpha*mv[i] + cv[i]
				th := cfg.Vth + ex[i]
				var s float64
				if p > th {
					s = 1
					if packOn {
						wrd |= 1 << (uint(j) & 63)
						cnt++
					}
				}
				spk[i] = s
				if isFS {
					d := 1 + fs.Beta*math.Abs(p-th)
					surr[i] = 1 / (d * d)
				} else {
					surr[i] = cfg.Surrogate.Grad(p - th)
				}
				if cfg.Reset == ResetZero {
					vout[i] = p * (1 - s)
				} else {
					vout[i] = p - th*s
				}
				ne[i] = ex[i]*cfg.AdaptDecay + cfg.AdaptStep*s
				if packOn && j&63 == 63 {
					spkBits[wi] = wrd
					wi++
					wrd = 0
				}
			}
			if packOn {
				if rowLen&63 != 0 {
					spkBits[wi] = wrd
				}
				spkCounts[r] = cnt
			}
		}
	})

	spikeT := tensor.FromSlice(spk, shape...)
	membrane := st.V
	spikes = tp.NewOp(spikeT, func(g *tensor.Tensor) {
		gd := g.Data()
		dI, dV := stepScratch(be, n)
		be.ParallelFor(n, 2048, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				dI[i] = gd[i] * surr[i]
				dV[i] = dI[i] * cfg.Alpha
			}
		})
		current.AccumGrad(tensor.FromSlice(dI, shape...))
		membrane.AccumGrad(tensor.FromSlice(dV, shape...))
		releaseStepScratch(be, dI, dV)
	}, current, membrane)
	// Adaptive populations emit binary planes too: attach the plane
	// packed inline above so downstream synapses take the spike kernels.
	if packOn {
		spikes.AttachSpikes(tensor.NewSpikeTensorFromBits(spkBits, spkCounts, shape...))
	}

	vT := tensor.FromSlice(vout, shape...)
	vNode := tp.NewOp(vT, func(g *tensor.Tensor) {
		gd := g.Data()
		dI, dV := stepScratch(be, n)
		be.ParallelFor(n, 2048, func(lo, hi int) {
			if cfg.Reset == ResetZero {
				for i := lo; i < hi; i++ {
					dI[i] = gd[i] * (1 - spk[i])
					dV[i] = dI[i] * cfg.Alpha
				}
			} else {
				for i := lo; i < hi; i++ {
					dI[i] = gd[i]
					dV[i] = gd[i] * cfg.Alpha
				}
			}
		})
		current.AccumGrad(tensor.FromSlice(dI, shape...))
		membrane.AccumGrad(tensor.FromSlice(dV, shape...))
		releaseStepScratch(be, dI, dV)
	}, current, membrane)

	return spikes, &ALIFState{V: vNode, ThExcess: newExcess}
}
