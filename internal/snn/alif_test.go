package snn

import (
	"math"
	"testing"

	"snnsec/internal/autodiff"
	"snnsec/internal/tensor"
)

func alifCfg(vth, step, decay float64) AdaptiveConfig {
	return AdaptiveConfig{
		NeuronConfig: NeuronConfig{Vth: vth, Alpha: 1, Reset: ResetZero, Surrogate: FastSigmoid{Beta: 5}},
		AdaptStep:    step,
		AdaptDecay:   decay,
	}
}

func TestALIFValidate(t *testing.T) {
	bad := alifCfg(1, -0.1, 0.5)
	if err := bad.Validate(); err == nil {
		t.Error("negative AdaptStep validated")
	}
	bad = alifCfg(1, 0.1, 1.0)
	if err := bad.Validate(); err == nil {
		t.Error("AdaptDecay=1 validated")
	}
	bad = alifCfg(0, 0.1, 0.5)
	if err := bad.Validate(); err == nil {
		t.Error("Vth=0 validated")
	}
	good := alifCfg(1, 0.1, 0.5)
	if err := good.Validate(); err != nil {
		t.Errorf("valid adaptive config rejected: %v", err)
	}
}

func TestALIFThresholdRisesAfterSpike(t *testing.T) {
	cfg := alifCfg(1, 0.5, 0.8)
	tp := autodiff.NewTape()
	st := NewALIFState(tp, 1)
	// Strong drive: first step spikes and raises the threshold.
	s1, st := ALIFStep(tp, cfg, tp.Const(tensor.FromSlice([]float64{1.2}, 1)), st)
	if s1.Data.Item() != 1 {
		t.Fatal("first step did not spike")
	}
	if math.Abs(st.ThExcess.At(0)-0.5) > 1e-12 {
		t.Fatalf("excess after spike = %v, want 0.5", st.ThExcess.At(0))
	}
	// Same drive again: effective threshold is now 1.5, so 1.2 is
	// subthreshold — adaptation suppressed the second spike.
	s2, st := ALIFStep(tp, cfg, tp.Const(tensor.FromSlice([]float64{1.2}, 1)), st)
	if s2.Data.Item() != 0 {
		t.Fatal("adapted neuron fired under the raised threshold")
	}
	// Excess decays: 0.5·0.8 = 0.4.
	if math.Abs(st.ThExcess.At(0)-0.4) > 1e-12 {
		t.Errorf("excess after decay = %v, want 0.4", st.ThExcess.At(0))
	}
}

func TestALIFZeroStepEquivalentToLIF(t *testing.T) {
	// With AdaptStep = 0 the adaptive neuron must reproduce LIFStep
	// exactly over a multi-step drive.
	cfg := alifCfg(0.8, 0, 0.5)
	r := tensor.NewRand(1, 2)
	drive := make([]*tensor.Tensor, 5)
	for i := range drive {
		drive[i] = tensor.RandN(r, 0.5, 0.5, 6)
	}

	tpA := autodiff.NewTape()
	stA := NewALIFState(tpA, 6)
	var outA []*tensor.Tensor
	for _, d := range drive {
		var s *autodiff.Value
		s, stA = ALIFStep(tpA, cfg, tpA.Const(d), stA)
		outA = append(outA, s.Data)
	}

	tpB := autodiff.NewTape()
	vB := tpB.Const(tensor.New(6))
	var outB []*tensor.Tensor
	for _, d := range drive {
		var s *autodiff.Value
		s, vB = LIFStep(tpB, cfg.NeuronConfig, tpB.Const(d), vB)
		outB = append(outB, s.Data)
	}

	for i := range outA {
		if !outA[i].AllClose(outB[i], 0) {
			t.Fatalf("step %d: ALIF(step=0) %v != LIF %v", i, outA[i], outB[i])
		}
	}
}

func TestALIFReducesFiringUnderSustainedDrive(t *testing.T) {
	// Adaptation must lower the total spike count of a strongly driven
	// population compared to a non-adaptive one.
	base := alifCfg(0.5, 0, 0.9)
	adap := alifCfg(0.5, 0.3, 0.9)
	count := func(cfg AdaptiveConfig) float64 {
		tp := autodiff.NewTape()
		st := NewALIFState(tp, 20)
		total := 0.0
		for i := 0; i < 10; i++ {
			var s *autodiff.Value
			s, st = ALIFStep(tp, cfg, tp.Const(tensor.Full(1.0, 20)), st)
			total += tensor.Sum(s.Data)
		}
		return total
	}
	if ca, cb := count(adap), count(base); ca >= cb {
		t.Errorf("adaptation did not reduce firing: adaptive %v vs base %v", ca, cb)
	}
}

func TestALIFGradientFlows(t *testing.T) {
	cfg := alifCfg(1, 0.2, 0.7)
	tp := autodiff.NewTape()
	x := tp.Var(tensor.FromSlice([]float64{0.9}, 1))
	st := NewALIFState(tp, 1)
	var s1, s2 *autodiff.Value
	s1, st = ALIFStep(tp, cfg, x, st)
	s2, _ = ALIFStep(tp, cfg, x, st)
	tp.Backward(tp.Sum(tp.Add(s1, s2)))
	if x.Grad == nil || x.Grad.At(0) == 0 {
		t.Fatal("no gradient through the adaptive unroll")
	}
}

func TestALIFShapeMismatchPanics(t *testing.T) {
	tp := autodiff.NewTape()
	st := NewALIFState(tp, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch did not panic")
		}
	}()
	ALIFStep(tp, alifCfg(1, 0.1, 0.5), tp.Const(tensor.New(2)), st)
}

func TestALIFSubtractReset(t *testing.T) {
	cfg := alifCfg(1, 0.2, 0.5)
	cfg.Reset = ResetSubtract
	tp := autodiff.NewTape()
	st := NewALIFState(tp, 1)
	_, st = ALIFStep(tp, cfg, tp.Const(tensor.FromSlice([]float64{1.4}, 1)), st)
	// Subtracts the adapted threshold (here still the base 1.0).
	if math.Abs(st.V.Data.Item()-0.4) > 1e-12 {
		t.Errorf("membrane after subtract reset = %v, want 0.4", st.V.Data.Item())
	}
}
