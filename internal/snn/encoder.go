package snn

import (
	"fmt"
	"math/rand/v2"

	"snnsec/internal/autodiff"
	"snnsec/internal/compute"
	"snnsec/internal/tensor"
)

// Encoder converts a static input image into the per-timestep input of
// the spiking network. Encode is called once per timestep t ∈ [0, T);
// implementations must be differentiable (exactly or via a
// straight-through estimator) so the white-box attacker can reach the
// pixels.
type Encoder interface {
	// Encode returns the input drive at timestep t for the static input
	// x (shape [N,C,H,W] or [N,D]).
	Encode(tp *autodiff.Tape, x *autodiff.Value, t int) *autodiff.Value
	// Name identifies the encoder in reports.
	Name() string
}

// ConstantCurrentEncoder injects the (scaled) analog input as synaptic
// current at every timestep — Norse's constant-current LIF encoding. The
// first spiking layer then converts intensity to rate through its own LIF
// dynamics. This encoder is exactly differentiable, making it the default
// for white-box attack studies.
type ConstantCurrentEncoder struct {
	// Gain multiplies the input before injection.
	Gain float64
}

// Encode returns Gain·x regardless of t.
func (e ConstantCurrentEncoder) Encode(tp *autodiff.Tape, x *autodiff.Value, t int) *autodiff.Value {
	if e.Gain == 1 {
		return x
	}
	return tp.Scale(x, e.Gain)
}

// Name returns "constant_current(gain)".
func (e ConstantCurrentEncoder) Name() string {
	return fmt.Sprintf("constant_current(gain=%g)", e.Gain)
}

// PoissonEncoder emits rate-coded Bernoulli spike trains: at each step a
// pixel spikes with probability clamp(Gain·(Scale·x + Offset), 0, 1).
// Scale and Offset (default 1 and 0) de-normalise inputs that live in
// MNIST-normalised units back into [0,1] rate space. The backward pass
// uses the straight-through estimator dE[s]/dx = Gain·Scale inside the
// unsaturated region, so PGD still reaches the pixels. The generator is
// owned by the encoder and must be reseeded (Reseed) to reproduce a
// specific spike train.
type PoissonEncoder struct {
	Gain   float64
	Scale  float64
	Offset float64
	rng    *rand.Rand
}

// NewPoissonEncoder builds a rate encoder with a deterministic generator
// and identity de-normalisation.
func NewPoissonEncoder(gain float64, seed1, seed2 uint64) *PoissonEncoder {
	return &PoissonEncoder{Gain: gain, Scale: 1, rng: rand.New(rand.NewPCG(seed1, seed2))}
}

// NewNormalizedPoissonEncoder builds a rate encoder for inputs in
// MNIST-normalised units: the rate is Gain·(std·x + mean).
func NewNormalizedPoissonEncoder(gain, mean, std float64, seed1, seed2 uint64) *PoissonEncoder {
	return &PoissonEncoder{Gain: gain, Scale: std, Offset: mean, rng: rand.New(rand.NewPCG(seed1, seed2))}
}

// Reseed resets the spike-train generator.
func (e *PoissonEncoder) Reseed(seed1, seed2 uint64) {
	e.rng = rand.New(rand.NewPCG(seed1, seed2))
}

// Encode samples a Bernoulli spike tensor from the rate
// clamp(Gain·(Scale·x+Offset), 0, 1).
func (e *PoissonEncoder) Encode(tp *autodiff.Tape, x *autodiff.Value, t int) *autodiff.Value {
	scale := e.Scale
	if scale == 0 {
		scale = 1
	}
	n := x.Data.Len()
	shape := x.Data.Shape()
	xd := x.Data.Data()
	spikes := make([]float64, n)
	inRegion := make([]bool, n)
	for i := 0; i < n; i++ {
		p := e.Gain * (scale*xd[i] + e.Offset)
		inRegion[i] = p > 0 && p < 1
		if p < 0 {
			p = 0
		} else if p > 1 {
			p = 1
		}
		if e.rng.Float64() < p {
			spikes[i] = 1
		}
	}
	out := tensor.FromSlice(spikes, shape...)
	v := tp.NewOp(out, func(g *tensor.Tensor) {
		// Straight-through: d rate/dx = Gain·Scale inside the linear
		// region, zero where the rate saturates.
		gd := g.Data()
		dx := make([]float64, n)
		for i := range dx {
			if inRegion[i] {
				dx[i] = gd[i] * e.Gain * scale
			}
		}
		x.AccumGrad(tensor.FromSlice(dx, shape...))
	}, x)
	// Rate-coded trains are binary: packing them here lets the first
	// synapse run the spike kernels, so the whole forward pass stays in
	// packed form from the pixels to the readout.
	if compute.PackSpikePlanes() {
		v.AttachSpikes(tensor.PackSpikesOn(tp.Backend(), out))
	}
	return v
}

// Name returns "poisson(gain)".
func (e *PoissonEncoder) Name() string { return fmt.Sprintf("poisson(gain=%g)", e.Gain) }

// LatencyEncoder emits a single spike per pixel whose timing encodes
// intensity: brighter pixels spike earlier. A pixel with normalised
// intensity p ∈ (0,1] spikes at step floor((1−p)·(T−1)); non-positive
// intensities never spike. Backward uses a straight-through estimator on
// the spiking step. Included for the encoding ablation (Bagheri et al.
// study encoding sensitivity); the paper itself uses rate coding.
type LatencyEncoder struct {
	Gain float64
	// T must match the network's time window so spike times span it.
	T int
}

// Encode emits the latency-coded spikes for step t.
func (e LatencyEncoder) Encode(tp *autodiff.Tape, x *autodiff.Value, t int) *autodiff.Value {
	if e.T <= 0 {
		panic("snn: LatencyEncoder requires positive T")
	}
	n := x.Data.Len()
	shape := x.Data.Shape()
	xd := x.Data.Data()
	spikes := make([]float64, n)
	active := make([]bool, n)
	for i := 0; i < n; i++ {
		p := e.Gain * xd[i]
		if p <= 0 {
			continue
		}
		if p > 1 {
			p = 1
		}
		step := int((1 - p) * float64(e.T-1))
		if step == t {
			spikes[i] = 1
			active[i] = true
		}
	}
	out := tensor.FromSlice(spikes, shape...)
	v := tp.NewOp(out, func(g *tensor.Tensor) {
		gd := g.Data()
		dx := make([]float64, n)
		for i := range dx {
			if active[i] {
				dx[i] = gd[i] * e.Gain
			}
		}
		x.AccumGrad(tensor.FromSlice(dx, shape...))
	}, x)
	// A latency-coded step is binary (at most one spike per pixel), so
	// it packs the same way as the rate code.
	if compute.PackSpikePlanes() {
		v.AttachSpikes(tensor.PackSpikesOn(tp.Backend(), out))
	}
	return v
}

// Name returns "latency(gain,T)".
func (e LatencyEncoder) Name() string { return fmt.Sprintf("latency(gain=%g,T=%d)", e.Gain, e.T) }
