package snn

import (
	"fmt"

	"snnsec/internal/compute"
	"snnsec/internal/tensor"
)

// Forward-only producers for the tape-free inference engine
// (internal/serve). These mirror LIFStep/ALIFStep/Encode elementwise
// expression for elementwise expression — same leak, threshold, reset
// and packing — but record nothing: no surrogate pass, no pullbacks, no
// tape-owned allocations. State lives in caller-provided slabs that the
// engine draws from the backend arena and reuses across timesteps, so a
// T-step forward touches a fixed working set instead of T tapes' worth
// of activations. Because every float expression is the taped producer's
// verbatim, default-tier results are bit-identical to the taped forward
// (pinned by the forward-equivalence suite in internal/serve).

// ForwardEncoder is implemented by encoders that can emit a timestep
// without a tape. EncodeForward returns the dense drive and, when spike
// packing is on and the drive is binary, its packed plane (nil
// otherwise). Implementations must consume any internal randomness
// exactly as Encode does, so a reseeded encoder produces the same spike
// trains on either path.
type ForwardEncoder interface {
	Encoder
	EncodeForward(be compute.Backend, x *tensor.Tensor, t int) (*tensor.Tensor, *tensor.SpikeTensor)
}

// EncodeForward returns Gain·x regardless of t. Like Encode, the output
// carries no packed plane: the analog drive is not binary.
func (e ConstantCurrentEncoder) EncodeForward(be compute.Backend, x *tensor.Tensor, t int) (*tensor.Tensor, *tensor.SpikeTensor) {
	if e.Gain == 1 {
		return x, nil
	}
	return tensor.ScaleOn(be, x, e.Gain), nil
}

// EncodeForward samples the same Bernoulli spike train as Encode — one
// generator draw per element, identical clamping — without recording the
// straight-through estimator.
func (e *PoissonEncoder) EncodeForward(be compute.Backend, x *tensor.Tensor, t int) (*tensor.Tensor, *tensor.SpikeTensor) {
	scale := e.Scale
	if scale == 0 {
		scale = 1
	}
	n := x.Len()
	xd := x.Data()
	spikes := make([]float64, n)
	for i := 0; i < n; i++ {
		p := e.Gain * (scale*xd[i] + e.Offset)
		if p < 0 {
			p = 0
		} else if p > 1 {
			p = 1
		}
		if e.rng.Float64() < p {
			spikes[i] = 1
		}
	}
	out := tensor.FromSlice(spikes, x.Shape()...)
	if compute.PackSpikePlanes() {
		return out, tensor.PackSpikesOn(be, out)
	}
	return out, nil
}

// EncodeForward emits the latency-coded spikes for step t without
// recording the straight-through estimator.
func (e LatencyEncoder) EncodeForward(be compute.Backend, x *tensor.Tensor, t int) (*tensor.Tensor, *tensor.SpikeTensor) {
	if e.T <= 0 {
		panic("snn: LatencyEncoder requires positive T")
	}
	n := x.Len()
	xd := x.Data()
	spikes := make([]float64, n)
	for i := 0; i < n; i++ {
		p := e.Gain * xd[i]
		if p <= 0 {
			continue
		}
		if p > 1 {
			p = 1
		}
		if int((1-p)*float64(e.T-1)) == t {
			spikes[i] = 1
		}
	}
	out := tensor.FromSlice(spikes, x.Shape()...)
	if compute.PackSpikePlanes() {
		return out, tensor.PackSpikesOn(be, out)
	}
	return out, nil
}

// FusedLIFForward advances one LIF population one timestep without a
// tape: leak, integrate, threshold, reset and bit-pack fused into a
// single pass over the population. cur is the synaptic input I[t]; mem
// the membrane state v[t−1], updated IN PLACE to v[t]; spk receives the
// binary spikes s[t] (len(cur) each). rows is the leading (batch)
// dimension the packed plane is row-aligned on. When bits is non-nil the
// plane is packed into bits/counts (rows·words and rows long, exactly as
// LIFStep lays them out); a nil bits skips packing, e.g. for a readout
// population whose spikes only feed an elementwise accumulator.
//
// The per-element expressions are LIFStep's verbatim, so the results are
// bit-identical to the taped step at the default tier.
func FusedLIFForward(be compute.Backend, cfg NeuronConfig, cur, mem, spk []float64, rows int, bits []uint64, counts []int) {
	if err := (&cfg).Validate(); err != nil {
		panic(err)
	}
	if cfg.Reset != ResetZero && cfg.Reset != ResetSubtract {
		panic(fmt.Sprintf("snn: unknown reset mode %v", cfg.Reset))
	}
	n := len(cur)
	if len(mem) != n || len(spk) != n {
		panic(fmt.Sprintf("snn: FusedLIFForward slab sizes %d/%d for %d neurons", len(mem), len(spk), n))
	}
	const lifGrain = 2048
	rowLen := n / rows
	words := (rowLen + 63) / 64
	packOn := bits != nil
	if packOn && (len(bits) != rows*words || len(counts) != rows) {
		panic(fmt.Sprintf("snn: FusedLIFForward pack storage %d/%d for %d rows × %d words", len(bits), len(counts), rows, words))
	}
	be.ParallelFor(rows, lifGrain/rowLen, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			base := r * rowLen
			wi := r * words
			var wrd uint64
			cnt := 0
			for j := 0; j < rowLen; j++ {
				i := base + j
				p := cfg.Alpha*mem[i] + cur[i]
				var s float64
				if p > cfg.Vth {
					s = 1
					if packOn {
						wrd |= 1 << (uint(j) & 63)
						cnt++
					}
				}
				spk[i] = s
				if cfg.Reset == ResetZero {
					mem[i] = p * (1 - s)
				} else {
					mem[i] = p - cfg.Vth*s
				}
				if packOn && j&63 == 63 {
					bits[wi] = wrd
					wi++
					wrd = 0
				}
			}
			if packOn {
				if rowLen&63 != 0 {
					bits[wi] = wrd
				}
				counts[r] = cnt
			}
		}
	})
}

// FusedALIFForward is FusedLIFForward for an adaptive-threshold (ALIF)
// population: ex carries the threshold excess (th − Vth), updated IN
// PLACE alongside the membrane. Expressions mirror ALIFStep verbatim.
func FusedALIFForward(be compute.Backend, cfg AdaptiveConfig, cur, mem, ex, spk []float64, rows int, bits []uint64, counts []int) {
	if err := (&cfg).Validate(); err != nil {
		panic(err)
	}
	if cfg.Reset != ResetZero && cfg.Reset != ResetSubtract {
		panic(fmt.Sprintf("snn: unknown reset mode %v", cfg.Reset))
	}
	n := len(cur)
	if len(mem) != n || len(ex) != n || len(spk) != n {
		panic(fmt.Sprintf("snn: FusedALIFForward slab sizes %d/%d/%d for %d neurons", len(mem), len(ex), len(spk), n))
	}
	rowLen := n / rows
	words := (rowLen + 63) / 64
	packOn := bits != nil
	if packOn && (len(bits) != rows*words || len(counts) != rows) {
		panic(fmt.Sprintf("snn: FusedALIFForward pack storage %d/%d for %d rows × %d words", len(bits), len(counts), rows, words))
	}
	be.ParallelFor(rows, 2048/rowLen, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			base := r * rowLen
			wi := r * words
			var wrd uint64
			cnt := 0
			for j := 0; j < rowLen; j++ {
				i := base + j
				p := cfg.Alpha*mem[i] + cur[i]
				th := cfg.Vth + ex[i]
				var s float64
				if p > th {
					s = 1
					if packOn {
						wrd |= 1 << (uint(j) & 63)
						cnt++
					}
				}
				spk[i] = s
				if cfg.Reset == ResetZero {
					mem[i] = p * (1 - s)
				} else {
					mem[i] = p - th*s
				}
				ex[i] = ex[i]*cfg.AdaptDecay + cfg.AdaptStep*s
				if packOn && j&63 == 63 {
					bits[wi] = wrd
					wi++
					wrd = 0
				}
			}
			if packOn {
				if rowLen&63 != 0 {
					bits[wi] = wrd
				}
				counts[r] = cnt
			}
		}
	})
}
