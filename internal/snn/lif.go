package snn

import (
	"fmt"
	"math"

	"snnsec/internal/autodiff"
	"snnsec/internal/compute"
	"snnsec/internal/tensor"
)

// ResetMode selects how the membrane potential is reset after a spike.
type ResetMode int

const (
	// ResetZero clamps the membrane to 0 after a spike (Norse default).
	ResetZero ResetMode = iota
	// ResetSubtract subtracts Vth from the membrane after a spike,
	// preserving the residual above threshold.
	ResetSubtract
)

// String names the reset mode.
func (m ResetMode) String() string {
	switch m {
	case ResetZero:
		return "zero"
	case ResetSubtract:
		return "subtract"
	default:
		return fmt.Sprintf("ResetMode(%d)", int(m))
	}
}

// NeuronConfig holds the structural parameters of a LIF population. Vth is
// the firing threshold the paper sweeps; Alpha is the membrane decay
// (leak) factor per step, with Alpha = 1 degenerating to a non-leaky
// integrate-and-fire neuron.
type NeuronConfig struct {
	// Vth is the firing threshold voltage. The membrane emits a spike
	// when it strictly exceeds Vth.
	Vth float64
	// Alpha is the per-step membrane decay in (0, 1]; v decays to α·v
	// before integrating the input current.
	Alpha float64
	// Reset selects the post-spike reset behaviour.
	Reset ResetMode
	// Surrogate is the backward-pass spike derivative; nil selects
	// DefaultSurrogate.
	Surrogate Surrogate
}

// Validate checks the configuration and fills defaulted fields.
func (c *NeuronConfig) Validate() error {
	if c.Vth <= 0 {
		return fmt.Errorf("snn: threshold Vth must be positive, got %g", c.Vth)
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		return fmt.Errorf("snn: membrane decay Alpha must be in (0,1], got %g", c.Alpha)
	}
	if c.Surrogate == nil {
		c.Surrogate = DefaultSurrogate()
	}
	return nil
}

// DefaultNeuronConfig mirrors the paper's default structural point
// (Vth, T) = (1, 64): threshold 1, leak 0.9, reset-to-zero, fast-sigmoid
// surrogate.
func DefaultNeuronConfig() NeuronConfig {
	return NeuronConfig{Vth: 1, Alpha: 0.9, Reset: ResetZero, Surrogate: DefaultSurrogate()}
}

// LIFStep advances one population of LIF neurons by one timestep on the
// tape. current is the synaptic input I[t] and membrane the previous
// state v[t−1] (any matching shapes). It returns the binary spike tensor
// s[t] and the post-reset membrane v[t], both differentiable:
//
//	pre  = α·v[t−1] + I[t]
//	s[t] = H(pre − Vth)            (surrogate derivative backward)
//	v[t] = pre·(1−s[t])            (ResetZero)
//	v[t] = pre − Vth·s[t]          (ResetSubtract)
//
// Following standard surrogate-gradient practice (STBP, Norse), the reset
// path treats s[t] as a constant: gradients flow through the reset gate's
// value, not through its dependence on pre. This keeps BPTT stable and
// matches what the paper's software stack does.
func LIFStep(tp *autodiff.Tape, cfg NeuronConfig, current, membrane *autodiff.Value) (spikes, newMembrane *autodiff.Value) {
	if err := (&cfg).Validate(); err != nil {
		panic(err)
	}
	if !current.Data.SameShape(membrane.Data) {
		panic(fmt.Sprintf("snn: LIFStep current %v vs membrane %v shape mismatch", current.Data.Shape(), membrane.Data.Shape()))
	}
	if cfg.Reset != ResetZero && cfg.Reset != ResetSubtract {
		panic(fmt.Sprintf("snn: unknown reset mode %v", cfg.Reset))
	}
	n := current.Data.Len()
	shape := current.Data.Shape()
	be := tp.Backend()

	// The per-neuron state update is embarrassingly parallel, and for a
	// convolutional population n is N·C·H·W — large enough that the BPTT
	// hot loop is worth running on the backend. Only the tensors the
	// tape retains (spikes, membrane, the surrogate for the pullback)
	// are allocated; the pullback scratch below comes from the pooled
	// per-step workspace.
	const lifGrain = 2048
	// One slab for the three tape-lived arrays: a third of the
	// allocations per step. The slab comes from the backend arena and is
	// registered with the tape, so Tape.Release recycles it once the
	// step's values are dead — a T-step unrolled network cycles through a
	// working set of slabs instead of holding every timestep's
	// activations. The loop below fully overwrites all three sections, so
	// the dirty pooled memory never leaks into results.
	slab := be.Get(3 * n)
	tp.OwnBuffer(slab)
	spk := slab[0*n : 1*n : 1*n]  // binary spikes
	vout := slab[1*n : 2*n : 2*n] // post-reset membrane
	surr := slab[2*n : 3*n : 3*n] // surrogate dH/dpre
	cv := current.Data.Data()
	mv := membrane.Data.Data()
	// Devirtualise the default surrogate: an interface call per neuron
	// per timestep dominates the elementwise pass otherwise. The inline
	// expression is FastSigmoid.Grad verbatim, so the results are
	// bit-identical to the interface path.
	fs, isFS := cfg.Surrogate.(FastSigmoid)
	// The threshold step is the producer of the network's binary
	// planes: when the spike dispatch is on, the loop packs the plane
	// while it thresholds (rows are word-aligned, and the loop is
	// partitioned by row, so the bit writes are block-local); a
	// dense-kernel run pays no packing cost. rowGrain ≤ 1 is the
	// dispatch-worthy-row case: one row alone exceeds lifGrain work.
	rows := shape[0]
	rowLen := n / rows
	words := (rowLen + 63) / 64
	packOn := compute.PackSpikePlanes()
	var spkBits []uint64
	var spkCounts []int
	if packOn {
		// The packed plane is tape-lived like the slab; every word is
		// stored exactly once below, so the dirty pooled words are fully
		// overwritten.
		spkBits = compute.GetUint64(rows * words)
		tp.OwnWords(spkBits)
		spkCounts = make([]int, rows)
	}
	rowGrain := lifGrain / rowLen
	be.ParallelFor(rows, rowGrain, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			base := r * rowLen
			wi := r * words
			var wrd uint64
			cnt := 0
			for j := 0; j < rowLen; j++ {
				i := base + j
				p := cfg.Alpha*mv[i] + cv[i]
				var s float64
				if p > cfg.Vth {
					s = 1
					if packOn {
						wrd |= 1 << (uint(j) & 63)
						cnt++
					}
				}
				spk[i] = s
				if isFS {
					d := 1 + fs.Beta*math.Abs(p-cfg.Vth)
					surr[i] = 1 / (d * d)
				} else {
					surr[i] = cfg.Surrogate.Grad(p - cfg.Vth)
				}
				if cfg.Reset == ResetZero {
					vout[i] = p * (1 - s)
				} else {
					vout[i] = p - cfg.Vth*s
				}
				if packOn && j&63 == 63 {
					spkBits[wi] = wrd
					wi++
					wrd = 0
				}
			}
			if packOn {
				if rowLen&63 != 0 {
					spkBits[wi] = wrd
				}
				spkCounts[r] = cnt
			}
		}
	})

	spikeT := tensor.FromSlice(spk, shape...)
	spikes = tp.NewOp(spikeT, func(g *tensor.Tensor) {
		// ds/dpre = surrogate; dpre/dI = 1; dpre/dv_prev = α.
		gd := g.Data()
		dI, dV := stepScratch(be, n)
		be.ParallelFor(n, lifGrain, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				dI[i] = gd[i] * surr[i]
				dV[i] = gd[i] * surr[i] * cfg.Alpha
			}
		})
		current.AccumGrad(tensor.FromSlice(dI, shape...))
		membrane.AccumGrad(tensor.FromSlice(dV, shape...))
		releaseStepScratch(be, dI, dV)
	}, current, membrane)
	// Attach the plane packed inline above so every synapse downstream —
	// and the weight-gradient pullbacks — run the spike kernels.
	if packOn {
		spikes.AttachSpikes(tensor.NewSpikeTensorFromBits(spkBits, spkCounts, shape...))
	}

	vT := tensor.FromSlice(vout, shape...)
	newMembrane = tp.NewOp(vT, func(g *tensor.Tensor) {
		// dv_out/dpre with the reset gate detached:
		//   ResetZero:     (1 − s)
		//   ResetSubtract: 1
		gd := g.Data()
		dI, dV := stepScratch(be, n)
		be.ParallelFor(n, lifGrain, func(lo, hi int) {
			if cfg.Reset == ResetZero {
				for i := lo; i < hi; i++ {
					dI[i] = gd[i] * (1 - spk[i])
					dV[i] = dI[i] * cfg.Alpha
				}
			} else {
				for i := lo; i < hi; i++ {
					dI[i] = gd[i]
					dV[i] = gd[i] * cfg.Alpha
				}
			}
		})
		current.AccumGrad(tensor.FromSlice(dI, shape...))
		membrane.AccumGrad(tensor.FromSlice(dV, shape...))
		releaseStepScratch(be, dI, dV)
	}, current, membrane)

	return spikes, newMembrane
}

// LIStep advances a non-spiking leaky integrator (Norse's LICell), used as
// a voltage readout layer: v[t] = α·v[t−1] + I[t]. It is fully
// differentiable with no surrogate needed.
func LIStep(tp *autodiff.Tape, alpha float64, current, membrane *autodiff.Value) *autodiff.Value {
	if alpha <= 0 || alpha > 1 {
		panic(fmt.Sprintf("snn: LIStep alpha %g out of (0,1]", alpha))
	}
	return tp.Add(tp.Scale(membrane, alpha), current)
}
