package snn

import (
	"fmt"

	"snnsec/internal/autodiff"
	"snnsec/internal/tensor"
)

// ResetMode selects how the membrane potential is reset after a spike.
type ResetMode int

const (
	// ResetZero clamps the membrane to 0 after a spike (Norse default).
	ResetZero ResetMode = iota
	// ResetSubtract subtracts Vth from the membrane after a spike,
	// preserving the residual above threshold.
	ResetSubtract
)

// String names the reset mode.
func (m ResetMode) String() string {
	switch m {
	case ResetZero:
		return "zero"
	case ResetSubtract:
		return "subtract"
	default:
		return fmt.Sprintf("ResetMode(%d)", int(m))
	}
}

// NeuronConfig holds the structural parameters of a LIF population. Vth is
// the firing threshold the paper sweeps; Alpha is the membrane decay
// (leak) factor per step, with Alpha = 1 degenerating to a non-leaky
// integrate-and-fire neuron.
type NeuronConfig struct {
	// Vth is the firing threshold voltage. The membrane emits a spike
	// when it strictly exceeds Vth.
	Vth float64
	// Alpha is the per-step membrane decay in (0, 1]; v decays to α·v
	// before integrating the input current.
	Alpha float64
	// Reset selects the post-spike reset behaviour.
	Reset ResetMode
	// Surrogate is the backward-pass spike derivative; nil selects
	// DefaultSurrogate.
	Surrogate Surrogate
}

// Validate checks the configuration and fills defaulted fields.
func (c *NeuronConfig) Validate() error {
	if c.Vth <= 0 {
		return fmt.Errorf("snn: threshold Vth must be positive, got %g", c.Vth)
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		return fmt.Errorf("snn: membrane decay Alpha must be in (0,1], got %g", c.Alpha)
	}
	if c.Surrogate == nil {
		c.Surrogate = DefaultSurrogate()
	}
	return nil
}

// DefaultNeuronConfig mirrors the paper's default structural point
// (Vth, T) = (1, 64): threshold 1, leak 0.9, reset-to-zero, fast-sigmoid
// surrogate.
func DefaultNeuronConfig() NeuronConfig {
	return NeuronConfig{Vth: 1, Alpha: 0.9, Reset: ResetZero, Surrogate: DefaultSurrogate()}
}

// LIFStep advances one population of LIF neurons by one timestep on the
// tape. current is the synaptic input I[t] and membrane the previous
// state v[t−1] (any matching shapes). It returns the binary spike tensor
// s[t] and the post-reset membrane v[t], both differentiable:
//
//	pre  = α·v[t−1] + I[t]
//	s[t] = H(pre − Vth)            (surrogate derivative backward)
//	v[t] = pre·(1−s[t])            (ResetZero)
//	v[t] = pre − Vth·s[t]          (ResetSubtract)
//
// Following standard surrogate-gradient practice (STBP, Norse), the reset
// path treats s[t] as a constant: gradients flow through the reset gate's
// value, not through its dependence on pre. This keeps BPTT stable and
// matches what the paper's software stack does.
func LIFStep(tp *autodiff.Tape, cfg NeuronConfig, current, membrane *autodiff.Value) (spikes, newMembrane *autodiff.Value) {
	if err := (&cfg).Validate(); err != nil {
		panic(err)
	}
	if !current.Data.SameShape(membrane.Data) {
		panic(fmt.Sprintf("snn: LIFStep current %v vs membrane %v shape mismatch", current.Data.Shape(), membrane.Data.Shape()))
	}
	if cfg.Reset != ResetZero && cfg.Reset != ResetSubtract {
		panic(fmt.Sprintf("snn: unknown reset mode %v", cfg.Reset))
	}
	n := current.Data.Len()
	shape := current.Data.Shape()
	be := tp.Backend()

	// The per-neuron state update is embarrassingly parallel, and for a
	// convolutional population n is N·C·H·W — large enough that the BPTT
	// hot loop is worth running on the backend.
	const lifGrain = 2048
	pre := make([]float64, n)  // pre-reset membrane α·v + I
	spk := make([]float64, n)  // binary spikes
	vout := make([]float64, n) // post-reset membrane
	surr := make([]float64, n) // surrogate dH/dpre
	cv := current.Data.Data()
	mv := membrane.Data.Data()
	be.ParallelFor(n, lifGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			p := cfg.Alpha*mv[i] + cv[i]
			pre[i] = p
			var s float64
			if p > cfg.Vth {
				s = 1
			}
			spk[i] = s
			surr[i] = cfg.Surrogate.Grad(p - cfg.Vth)
			if cfg.Reset == ResetZero {
				vout[i] = p * (1 - s)
			} else {
				vout[i] = p - cfg.Vth*s
			}
		}
	})

	spikeT := tensor.FromSlice(spk, shape...)
	spikes = tp.NewOp(spikeT, func(g *tensor.Tensor) {
		// ds/dpre = surrogate; dpre/dI = 1; dpre/dv_prev = α.
		gd := g.Data()
		dI := make([]float64, n)
		dV := make([]float64, n)
		be.ParallelFor(n, lifGrain, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				dI[i] = gd[i] * surr[i]
				dV[i] = gd[i] * surr[i] * cfg.Alpha
			}
		})
		current.AccumGrad(tensor.FromSlice(dI, shape...))
		membrane.AccumGrad(tensor.FromSlice(dV, shape...))
	}, current, membrane)

	vT := tensor.FromSlice(vout, shape...)
	newMembrane = tp.NewOp(vT, func(g *tensor.Tensor) {
		// dv_out/dpre with the reset gate detached:
		//   ResetZero:     (1 − s)
		//   ResetSubtract: 1
		gd := g.Data()
		dI := make([]float64, n)
		dV := make([]float64, n)
		be.ParallelFor(n, lifGrain, func(lo, hi int) {
			if cfg.Reset == ResetZero {
				for i := lo; i < hi; i++ {
					dI[i] = gd[i] * (1 - spk[i])
					dV[i] = dI[i] * cfg.Alpha
				}
			} else {
				for i := lo; i < hi; i++ {
					dI[i] = gd[i]
					dV[i] = gd[i] * cfg.Alpha
				}
			}
		})
		current.AccumGrad(tensor.FromSlice(dI, shape...))
		membrane.AccumGrad(tensor.FromSlice(dV, shape...))
	}, current, membrane)

	return spikes, newMembrane
}

// LIStep advances a non-spiking leaky integrator (Norse's LICell), used as
// a voltage readout layer: v[t] = α·v[t−1] + I[t]. It is fully
// differentiable with no surrogate needed.
func LIStep(tp *autodiff.Tape, alpha float64, current, membrane *autodiff.Value) *autodiff.Value {
	if alpha <= 0 || alpha > 1 {
		panic(fmt.Sprintf("snn: LIStep alpha %g out of (0,1]", alpha))
	}
	return tp.Add(tp.Scale(membrane, alpha), current)
}
