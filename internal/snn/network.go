package snn

import (
	"fmt"

	"snnsec/internal/autodiff"
	"snnsec/internal/nn"
	"snnsec/internal/tensor"
)

// ReadoutMode selects how the output layer converts spikes to logits.
type ReadoutMode int

const (
	// ReadoutSpikeCount runs the output synapse into a final LIF
	// population and uses the spike count over the time window as the
	// class score (rate decoding, as in the paper's Fig. 3).
	ReadoutSpikeCount ReadoutMode = iota
	// ReadoutMembrane integrates the output synapse's current in a
	// non-spiking leaky integrator and uses the time-averaged membrane
	// potential as the class score (Norse's LI readout).
	ReadoutMembrane
)

// String names the readout mode.
func (m ReadoutMode) String() string {
	switch m {
	case ReadoutSpikeCount:
		return "spike_count"
	case ReadoutMembrane:
		return "membrane"
	default:
		return fmt.Sprintf("ReadoutMode(%d)", int(m))
	}
}

// Layer couples a synaptic transformation (convolution, pooling, linear —
// any nn.Layer) with the LIF population that receives its current. A
// non-nil Adapt upgrades the population to an adaptive-threshold ALIF
// neuron (ALIFStep); nil keeps the plain LIF dynamics.
type Layer struct {
	Syn   nn.Layer
	Cfg   NeuronConfig
	Adapt *Adaptation
}

// Adaptation selects threshold adaptation for a layer's population: each
// spike raises the effective threshold by Step and the excess decays by
// Decay per timestep (see AdaptiveConfig).
type Adaptation struct {
	// Step is the per-spike threshold increment (≥ 0).
	Step float64
	// Decay is the per-step decay of the threshold excess in [0,1).
	Decay float64
}

// Trace records per-layer activity statistics of the last forward pass
// when attached to a Network. It is diagnostic only; recording does not
// affect gradients.
type Trace struct {
	// SpikeRates[l] is the mean firing probability of hidden layer l
	// over all neurons, samples and timesteps.
	SpikeRates []float64
	// OutputRate is the mean activity of the readout population.
	OutputRate float64
}

// Network is a spiking classifier: an encoder feeding a stack of
// (synapse → LIF) layers, simulated for T timesteps, with a rate or
// membrane readout. It implements nn.Classifier, so attacks and training
// treat it exactly like the CNN baseline — the white-box adversary
// backpropagates through the full unrolled time window.
type Network struct {
	Encoder Encoder
	Hidden  []Layer
	// Readout is the final synapse producing one current per class.
	Readout nn.Layer
	// ReadoutCfg configures the output LIF population (ReadoutSpikeCount)
	// or the leak of the LI integrator (ReadoutMembrane).
	ReadoutCfg NeuronConfig
	Mode       ReadoutMode
	// T is the simulation time window — the structural parameter the
	// paper sweeps together with Vth.
	T int
	// LogitScale multiplies the time-averaged readout before the
	// softmax; spike rates live in [0,1], so a scale ≈10 restores a
	// useful logit dynamic range.
	LogitScale float64
	// Record, when non-nil, receives activity statistics each forward
	// pass.
	Record *Trace
}

// Validate checks the network invariants.
func (n *Network) Validate() error {
	if n.Encoder == nil {
		return fmt.Errorf("snn: network has no encoder")
	}
	if n.T <= 0 {
		return fmt.Errorf("snn: time window T must be positive, got %d", n.T)
	}
	if n.Readout == nil {
		return fmt.Errorf("snn: network has no readout synapse")
	}
	if n.LogitScale <= 0 {
		return fmt.Errorf("snn: LogitScale must be positive, got %g", n.LogitScale)
	}
	for i := range n.Hidden {
		if ad := n.Hidden[i].Adapt; ad != nil {
			cfg := AdaptiveConfig{NeuronConfig: n.Hidden[i].Cfg, AdaptStep: ad.Step, AdaptDecay: ad.Decay}
			if err := (&cfg).Validate(); err != nil {
				return fmt.Errorf("snn: hidden layer %d: %w", i, err)
			}
			continue
		}
		cfg := n.Hidden[i].Cfg
		if err := (&cfg).Validate(); err != nil {
			return fmt.Errorf("snn: hidden layer %d: %w", i, err)
		}
	}
	cfg := n.ReadoutCfg
	if err := (&cfg).Validate(); err != nil {
		return fmt.Errorf("snn: readout: %w", err)
	}
	return nil
}

// SetVth sets the firing threshold of every LIF population (hidden and
// readout) — the Vth knob of the paper's (Vth, T) grid.
func (n *Network) SetVth(vth float64) {
	for i := range n.Hidden {
		n.Hidden[i].Cfg.Vth = vth
	}
	n.ReadoutCfg.Vth = vth
}

// Logits simulates the network for T steps and returns [N, classes]
// scores. It implements nn.Classifier.
//
// This is the BPTT hot loop: each of the T timesteps runs every synapse
// over the whole batch (one batched im2col matmul per conv synapse) and
// every LIF population elementwise, all on the tape's backend, and the
// pullbacks replay the same batched kernels in reverse. Wall-clock for
// training and for white-box attacks alike is dominated by these T
// unrolled steps, which is why the (Vth, T) exploration scales linearly
// in T.
//
// Binary planes stay bit-packed between layers: the encoder and every
// LIF threshold step attach the packed spike form to their output, so
// a synapse fed directly by spikes (the input convolution, the readout,
// and every synapse of a pooling-free topology) runs the multiply-free
// select-accumulate kernels — forward and weight gradient — instead of
// dense matmuls, at identical bit-for-bit results. Pooling layers
// average spikes into non-binary values, so synapses behind a pool take
// the dense kernels with their zero-skip path.
func (n *Network) Logits(tp *autodiff.Tape, x *autodiff.Value) *autodiff.Value {
	if err := n.Validate(); err != nil {
		panic(err)
	}
	membranes := make([]*autodiff.Value, len(n.Hidden))
	excess := make([]*tensor.Tensor, len(n.Hidden))
	var outState *autodiff.Value
	var acc *autodiff.Value
	var rateSums []float64
	var outRateSum float64
	if n.Record != nil {
		rateSums = make([]float64, len(n.Hidden))
	}

	for t := 0; t < n.T; t++ {
		h := n.Encoder.Encode(tp, x, t)
		for l := range n.Hidden {
			cur := n.Hidden[l].Syn.Forward(tp, h)
			if membranes[l] == nil {
				membranes[l] = tp.Const(tensor.New(cur.Data.Shape()...))
				if n.Hidden[l].Adapt != nil {
					excess[l] = tensor.New(cur.Data.Shape()...)
				}
			}
			var spikes *autodiff.Value
			if ad := n.Hidden[l].Adapt; ad != nil {
				cfg := AdaptiveConfig{NeuronConfig: n.Hidden[l].Cfg, AdaptStep: ad.Step, AdaptDecay: ad.Decay}
				st := &ALIFState{V: membranes[l], ThExcess: excess[l]}
				spikes, st = ALIFStep(tp, cfg, cur, st)
				membranes[l], excess[l] = st.V, st.ThExcess
			} else {
				spikes, membranes[l] = LIFStep(tp, n.Hidden[l].Cfg, cur, membranes[l])
			}
			if rateSums != nil {
				rateSums[l] += spikeRate(spikes)
			}
			h = spikes
		}
		out := n.Readout.Forward(tp, h)
		if outState == nil {
			outState = tp.Const(tensor.New(out.Data.Shape()...))
		}
		var contribution *autodiff.Value
		switch n.Mode {
		case ReadoutSpikeCount:
			var spikes *autodiff.Value
			spikes, outState = LIFStep(tp, n.ReadoutCfg, out, outState)
			contribution = spikes
		case ReadoutMembrane:
			outState = LIStep(tp, n.ReadoutCfg.Alpha, out, outState)
			contribution = outState
		default:
			panic(fmt.Sprintf("snn: unknown readout mode %v", n.Mode))
		}
		if n.Record != nil {
			outRateSum += spikeRate(contribution)
		}
		if acc == nil {
			acc = contribution
		} else {
			acc = tp.Add(acc, contribution)
		}
	}

	if n.Record != nil {
		n.Record.SpikeRates = rateSums
		for l := range n.Record.SpikeRates {
			n.Record.SpikeRates[l] /= float64(n.T)
		}
		n.Record.OutputRate = outRateSum / float64(n.T)
	}
	return tp.Scale(acc, n.LogitScale/float64(n.T))
}

// spikeRate returns the mean activity of a value, reading the packed
// popcount index when the value carries one. The two reads are
// identical floats: a serial sum of 0/1 terms is the exact integer
// popcount (every partial sum is an integer well below 2^53).
func spikeRate(v *autodiff.Value) float64 {
	if s := v.Spikes(); s != nil {
		return s.Density()
	}
	return tensor.Mean(v.Data)
}

// Params returns all trainable parameters (hidden synapses then readout).
func (n *Network) Params() []*nn.Param {
	var ps []*nn.Param
	for _, l := range n.Hidden {
		ps = append(ps, l.Syn.Params()...)
	}
	ps = append(ps, n.Readout.Params()...)
	return ps
}

var _ nn.Classifier = (*Network)(nil)
