package snn

import (
	"fmt"

	"snnsec/internal/autodiff"
	"snnsec/internal/compute"
	"snnsec/internal/tensor"
)

// SpikeTrainEncoder replays a pre-binned spike train: plane t of Planes
// is the network's input drive at timestep t, verbatim. It is how the
// batch forward consumes the stream binner's output — the equivalence
// reference for the streaming engine — and more generally how any
// recorded event data reaches the taped or tape-free forwards without
// re-encoding. The train is a constant, so the taped path records a
// zero-gradient op (the pixels behind the events are not reachable).
type SpikeTrainEncoder struct {
	// Planes holds one packed [N,...] plane per timestep; the network's T
	// must not exceed len(Planes).
	Planes []*tensor.SpikeTensor
}

func (e *SpikeTrainEncoder) plane(t int) *tensor.SpikeTensor {
	if t < 0 || t >= len(e.Planes) {
		panic(fmt.Sprintf("snn: spike train has %d planes, no step %d", len(e.Planes), t))
	}
	return e.Planes[t]
}

// Encode returns plane t's dense view as a constant (zero-backward) op,
// with the packed plane attached when packing is on so the first synapse
// runs the spike kernels exactly as the streaming path does.
func (e *SpikeTrainEncoder) Encode(tp *autodiff.Tape, x *autodiff.Value, t int) *autodiff.Value {
	p := e.plane(t)
	v := tp.NewOp(p.DenseOn(tp.Backend()), func(g *tensor.Tensor) {}, x)
	if compute.PackSpikePlanes() {
		v.AttachSpikes(p)
	}
	return v
}

// EncodeForward returns plane t's dense view and, when packing is on,
// the plane itself. The static input x is ignored — the train already is
// the input. Note the dense view is materialised and cached on the
// plane; callers pinning the streaming no-dense-input property must feed
// that path separately-binned planes.
func (e *SpikeTrainEncoder) EncodeForward(be compute.Backend, x *tensor.Tensor, t int) (*tensor.Tensor, *tensor.SpikeTensor) {
	p := e.plane(t)
	if compute.PackSpikePlanes() {
		return p.DenseOn(be), p
	}
	return p.DenseOn(be), nil
}

// Name returns "spike_train(T)".
func (e *SpikeTrainEncoder) Name() string { return fmt.Sprintf("spike_train(T=%d)", len(e.Planes)) }
