package snn

import (
	"math"
	"testing"
	"testing/quick"

	"snnsec/internal/autodiff"
	"snnsec/internal/compute"
	"snnsec/internal/nn"
	"snnsec/internal/tensor"
)

func TestSurrogatePeaksAtThreshold(t *testing.T) {
	for _, s := range []Surrogate{FastSigmoid{Beta: 10}, SigmoidPrime{Beta: 5}, PiecewiseLinear{Width: 0.5}} {
		at0 := s.Grad(0)
		if at0 <= 0 {
			t.Errorf("%s: Grad(0) = %v, want > 0", s.Name(), at0)
		}
		for _, u := range []float64{-2, -0.5, 0.5, 2} {
			if g := s.Grad(u); g > at0+1e-12 {
				t.Errorf("%s: Grad(%v)=%v exceeds Grad(0)=%v", s.Name(), u, g, at0)
			}
		}
	}
}

func TestSurrogateSymmetry(t *testing.T) {
	f := func(u float64) bool {
		if math.IsNaN(u) || math.IsInf(u, 0) {
			return true
		}
		u = math.Mod(u, 10)
		fs := FastSigmoid{Beta: 7}
		return math.Abs(fs.Grad(u)-fs.Grad(-u)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSurrogateDecaysToZero(t *testing.T) {
	fs := FastSigmoid{Beta: 100}
	if fs.Grad(10) > 1e-4 {
		t.Errorf("fast sigmoid at u=10: %v, want ≈0", fs.Grad(10))
	}
	pl := PiecewiseLinear{Width: 0.3}
	if pl.Grad(0.31) != 0 {
		t.Errorf("triangular support exceeded: %v", pl.Grad(0.31))
	}
}

func TestSurrogateByName(t *testing.T) {
	for _, s := range []Surrogate{FastSigmoid{Beta: 10}, SigmoidPrime{Beta: 5}, PiecewiseLinear{Width: 0.5}} {
		got, err := SurrogateByName(s.Name(), 3)
		if err != nil {
			t.Errorf("SurrogateByName(%q): %v", s.Name(), err)
			continue
		}
		if got == nil {
			t.Errorf("SurrogateByName(%q) returned nil", s.Name())
		}
	}
	if _, err := SurrogateByName("bogus", 1); err == nil {
		t.Error("unknown surrogate name did not error")
	}
}

func TestNeuronConfigValidate(t *testing.T) {
	bad := []NeuronConfig{
		{Vth: 0, Alpha: 0.9},
		{Vth: -1, Alpha: 0.9},
		{Vth: 1, Alpha: 0},
		{Vth: 1, Alpha: 1.5},
	}
	for _, c := range bad {
		cc := c
		if err := (&cc).Validate(); err == nil {
			t.Errorf("config %+v validated", c)
		}
	}
	good := NeuronConfig{Vth: 1, Alpha: 1}
	if err := (&good).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	if good.Surrogate == nil {
		t.Error("Validate did not fill default surrogate")
	}
}

func TestLIFStepSubthresholdIntegration(t *testing.T) {
	cfg := NeuronConfig{Vth: 1, Alpha: 0.5, Reset: ResetZero}
	tp := autodiff.NewTape()
	i1 := tp.Const(tensor.FromSlice([]float64{0.4}, 1))
	v0 := tp.Const(tensor.New(1))
	s, v := LIFStep(tp, cfg, i1, v0)
	if s.Data.Item() != 0 {
		t.Errorf("subthreshold spike emitted")
	}
	if math.Abs(v.Data.Item()-0.4) > 1e-12 {
		t.Errorf("membrane = %v, want 0.4", v.Data.Item())
	}
	// Second step: 0.5*0.4 + 0.4 = 0.6, still subthreshold.
	s2, v2 := LIFStep(tp, cfg, tp.Const(tensor.FromSlice([]float64{0.4}, 1)), v)
	if s2.Data.Item() != 0 || math.Abs(v2.Data.Item()-0.6) > 1e-12 {
		t.Errorf("step2: s=%v v=%v, want 0 / 0.6", s2.Data.Item(), v2.Data.Item())
	}
}

func TestLIFStepFiresAndResetsZero(t *testing.T) {
	cfg := NeuronConfig{Vth: 1, Alpha: 1, Reset: ResetZero}
	tp := autodiff.NewTape()
	s, v := LIFStep(tp, cfg, tp.Const(tensor.FromSlice([]float64{1.5}, 1)), tp.Const(tensor.New(1)))
	if s.Data.Item() != 1 {
		t.Error("neuron did not fire above threshold")
	}
	if v.Data.Item() != 0 {
		t.Errorf("reset-to-zero membrane = %v", v.Data.Item())
	}
}

func TestLIFStepFiresAndResetsSubtract(t *testing.T) {
	cfg := NeuronConfig{Vth: 1, Alpha: 1, Reset: ResetSubtract}
	tp := autodiff.NewTape()
	s, v := LIFStep(tp, cfg, tp.Const(tensor.FromSlice([]float64{1.5}, 1)), tp.Const(tensor.New(1)))
	if s.Data.Item() != 1 {
		t.Error("neuron did not fire above threshold")
	}
	if math.Abs(v.Data.Item()-0.5) > 1e-12 {
		t.Errorf("subtract-reset membrane = %v, want 0.5", v.Data.Item())
	}
}

func TestLIFSpikesAreBinary(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRand(seed, 42)
		cfg := DefaultNeuronConfig()
		tp := autodiff.NewTape()
		cur := tp.Const(tensor.RandN(r, 0, 2, 3, 4))
		mem := tp.Const(tensor.RandN(r, 0, 1, 3, 4))
		s, _ := LIFStep(tp, cfg, cur, mem)
		for _, v := range s.Data.Data() {
			if v != 0 && v != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestLIFThresholdMonotonicity(t *testing.T) {
	// Raising Vth can only reduce the number of spikes.
	r := tensor.NewRand(5, 6)
	cur := tensor.RandN(r, 0.5, 1, 100)
	count := func(vth float64) float64 {
		cfg := NeuronConfig{Vth: vth, Alpha: 1}
		tp := autodiff.NewTape()
		s, _ := LIFStep(tp, cfg, tp.Const(cur), tp.Const(tensor.New(100)))
		return tensor.Sum(s.Data)
	}
	prev := count(0.1)
	for _, vth := range []float64{0.5, 1, 1.5, 2.5} {
		c := count(vth)
		if c > prev {
			t.Errorf("spike count increased from %v to %v when Vth rose to %v", prev, c, vth)
		}
		prev = c
	}
}

func TestLIFGradientFlowsThroughTime(t *testing.T) {
	// A two-step unroll: gradients must reach the input of step 1 through
	// the membrane chain of step 2.
	cfg := NeuronConfig{Vth: 1, Alpha: 0.8, Reset: ResetZero, Surrogate: FastSigmoid{Beta: 2}}
	tp := autodiff.NewTape()
	x := tp.Var(tensor.FromSlice([]float64{0.5}, 1))
	v := tp.Const(tensor.New(1))
	var s *autodiff.Value
	s, v = LIFStep(tp, cfg, x, v)
	s2, _ := LIFStep(tp, cfg, x, v)
	loss := tp.Sum(tp.Add(s, s2))
	tp.Backward(loss)
	if x.Grad == nil || x.Grad.At(0) == 0 {
		t.Fatal("no gradient reached the input through the unrolled LIF chain")
	}
}

func TestLIFSurrogateGradientMatchesFormula(t *testing.T) {
	beta := 4.0
	cfg := NeuronConfig{Vth: 1, Alpha: 1, Reset: ResetZero, Surrogate: FastSigmoid{Beta: beta}}
	tp := autodiff.NewTape()
	x := tp.Var(tensor.FromSlice([]float64{0.7}, 1))
	s, _ := LIFStep(tp, cfg, x, tp.Const(tensor.New(1)))
	tp.Backward(tp.Sum(s))
	u := 0.7 - 1.0
	want := 1 / math.Pow(1+beta*math.Abs(u), 2)
	if math.Abs(x.Grad.At(0)-want) > 1e-12 {
		t.Errorf("surrogate grad = %v, want %v", x.Grad.At(0), want)
	}
}

func TestLIFShapeMismatchPanics(t *testing.T) {
	tp := autodiff.NewTape()
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched shapes did not panic")
		}
	}()
	LIFStep(tp, DefaultNeuronConfig(), tp.Const(tensor.New(2)), tp.Const(tensor.New(3)))
}

func TestLIStepIntegration(t *testing.T) {
	tp := autodiff.NewTape()
	v := tp.Const(tensor.FromSlice([]float64{1}, 1))
	cur := tp.Const(tensor.FromSlice([]float64{0.5}, 1))
	v2 := LIStep(tp, 0.9, cur, v)
	if math.Abs(v2.Data.Item()-1.4) > 1e-12 {
		t.Errorf("LI membrane = %v, want 1.4", v2.Data.Item())
	}
}

func TestLIStepBadAlphaPanics(t *testing.T) {
	tp := autodiff.NewTape()
	defer func() {
		if recover() == nil {
			t.Fatal("alpha=0 did not panic")
		}
	}()
	LIStep(tp, 0, tp.Const(tensor.New(1)), tp.Const(tensor.New(1)))
}

func TestConstantCurrentEncoder(t *testing.T) {
	e := ConstantCurrentEncoder{Gain: 2}
	tp := autodiff.NewTape()
	x := tp.Var(tensor.FromSlice([]float64{0.5, 1}, 2))
	y0 := e.Encode(tp, x, 0)
	y9 := e.Encode(tp, x, 9)
	if !y0.Data.AllClose(y9.Data, 0) {
		t.Error("constant-current encoding varies over time")
	}
	if !y0.Data.AllClose(tensor.FromSlice([]float64{1, 2}, 2), 1e-12) {
		t.Errorf("encoded = %v", y0.Data)
	}
	tp.Backward(tp.Sum(y0))
	if !x.Grad.AllClose(tensor.Full(2, 2), 1e-12) {
		t.Errorf("encoder grad = %v, want gain", x.Grad)
	}
}

func TestConstantCurrentGainOneIsIdentityNode(t *testing.T) {
	e := ConstantCurrentEncoder{Gain: 1}
	tp := autodiff.NewTape()
	x := tp.Var(tensor.FromSlice([]float64{0.3}, 1))
	if y := e.Encode(tp, x, 0); y != x {
		t.Error("gain-1 encoder should return the input node unchanged")
	}
}

func TestPoissonEncoderRateMatchesIntensity(t *testing.T) {
	e := NewPoissonEncoder(1, 1, 2)
	tp := autodiff.NewTape()
	x := tp.Const(tensor.Full(0.3, 10000))
	total := 0.0
	const steps = 20
	for t1 := 0; t1 < steps; t1++ {
		s := e.Encode(tp, x, t1)
		total += tensor.Mean(s.Data)
	}
	rate := total / steps
	if math.Abs(rate-0.3) > 0.01 {
		t.Errorf("empirical rate %v, want ≈0.3", rate)
	}
}

func TestPoissonEncoderBinaryAndClamped(t *testing.T) {
	e := NewPoissonEncoder(1, 3, 4)
	tp := autodiff.NewTape()
	x := tp.Const(tensor.FromSlice([]float64{-0.5, 0, 1, 2}, 4))
	s := e.Encode(tp, x, 0)
	d := s.Data.Data()
	if d[0] != 0 || d[1] != 0 {
		t.Error("non-positive intensity spiked")
	}
	if d[2] != 1 || d[3] != 1 {
		t.Error("saturated intensity did not spike")
	}
}

func TestPoissonEncoderDeterministicAfterReseed(t *testing.T) {
	e := NewPoissonEncoder(1, 9, 9)
	tp := autodiff.NewTape()
	x := tp.Const(tensor.Full(0.5, 100))
	a := e.Encode(tp, x, 0).Data.Clone()
	e.Reseed(9, 9)
	b := e.Encode(tp, x, 0).Data
	if !a.AllClose(b, 0) {
		t.Error("reseeded encoder produced different spikes")
	}
}

func TestPoissonEncoderSTEGradient(t *testing.T) {
	e := NewPoissonEncoder(2, 5, 5)
	tp := autodiff.NewTape()
	x := tp.Var(tensor.FromSlice([]float64{0.25}, 1)) // p = 0.5, in region
	s := e.Encode(tp, x, 0)
	tp.Backward(tp.Sum(s))
	if g := x.Grad.At(0); g != 2 {
		t.Errorf("STE gradient = %v, want gain 2", g)
	}
}

func TestLatencyEncoderSingleSpikeTiming(t *testing.T) {
	T := 8
	e := LatencyEncoder{Gain: 1, T: T}
	tp := autodiff.NewTape()
	x := tp.Const(tensor.FromSlice([]float64{1.0, 0.5, 0.0}, 3))
	counts := make([]float64, 3)
	firstSpike := []int{-1, -1, -1}
	for t1 := 0; t1 < T; t1++ {
		s := e.Encode(tp, x, t1)
		for i, v := range s.Data.Data() {
			counts[i] += v
			if v == 1 && firstSpike[i] < 0 {
				firstSpike[i] = t1
			}
		}
	}
	if counts[0] != 1 || counts[1] != 1 {
		t.Errorf("positive pixels must spike exactly once, got %v", counts)
	}
	if counts[2] != 0 {
		t.Error("zero pixel spiked")
	}
	if firstSpike[0] >= firstSpike[1] {
		t.Errorf("brighter pixel must spike earlier: %v", firstSpike)
	}
}

func buildTinySNN(seed uint64, vth float64, T int, mode ReadoutMode) *Network {
	r := tensor.NewRand(seed, 0)
	cfg := NeuronConfig{Vth: vth, Alpha: 0.9, Reset: ResetZero, Surrogate: FastSigmoid{Beta: 5}}
	return &Network{
		Encoder: ConstantCurrentEncoder{Gain: 1},
		Hidden: []Layer{
			{Syn: nn.NewSequential(nn.Flatten{}, nn.NewLinear(r, 16, 12)), Cfg: cfg},
		},
		Readout:    nn.NewLinear(r, 12, 3),
		ReadoutCfg: cfg,
		Mode:       mode,
		T:          T,
		LogitScale: 10,
	}
}

func TestNetworkLogitsShape(t *testing.T) {
	net := buildTinySNN(1, 1, 4, ReadoutSpikeCount)
	tp := autodiff.NewTape()
	r := tensor.NewRand(2, 0)
	x := tp.Const(tensor.RandN(r, 0.5, 0.5, 5, 1, 4, 4))
	y := net.Logits(tp, x)
	if !y.Data.ShapeEquals(5, 3) {
		t.Errorf("logits shape = %v, want [5 3]", y.Data.Shape())
	}
}

func TestNetworkMembraneReadout(t *testing.T) {
	net := buildTinySNN(3, 1, 4, ReadoutMembrane)
	tp := autodiff.NewTape()
	r := tensor.NewRand(4, 0)
	x := tp.Const(tensor.RandN(r, 0.5, 0.5, 2, 1, 4, 4))
	y := net.Logits(tp, x)
	if !y.Data.ShapeEquals(2, 3) {
		t.Errorf("logits shape = %v", y.Data.Shape())
	}
	if y.Data.HasNaN() {
		t.Error("membrane readout produced NaN")
	}
}

func TestNetworkGradReachesInputAndParams(t *testing.T) {
	net := buildTinySNN(5, 0.5, 6, ReadoutSpikeCount)
	tp := autodiff.NewTape()
	r := tensor.NewRand(6, 0)
	x := tp.Var(tensor.RandN(r, 0.8, 0.3, 2, 1, 4, 4))
	loss := tp.SoftmaxCrossEntropy(net.Logits(tp, x), []int{0, 2})
	tp.Backward(loss)
	if x.Grad == nil || tensor.Sum(tensor.Abs(x.Grad)) == 0 {
		t.Error("white-box input gradient is zero — attacks would be impossible")
	}
	nonzero := false
	for _, p := range net.Params() {
		if tensor.Sum(tensor.Abs(p.Grad)) > 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Error("no parameter received gradient")
	}
}

func TestNetworkHugeVthSilences(t *testing.T) {
	// With an absurd threshold no spikes fire: spike-count logits are all
	// zero, the defining failure mode of the paper's non-learnable corner.
	net := buildTinySNN(7, 100, 5, ReadoutSpikeCount)
	tp := autodiff.NewTape()
	r := tensor.NewRand(8, 0)
	x := tp.Const(tensor.RandN(r, 0.5, 0.2, 3, 1, 4, 4))
	y := net.Logits(tp, x)
	if tensor.Sum(tensor.Abs(y.Data)) != 0 {
		t.Errorf("logits non-zero under Vth=100: %v", y.Data)
	}
}

func TestNetworkLongerWindowMoreEvidence(t *testing.T) {
	// Spike-count logits magnitude should not shrink when T grows for a
	// constant-current drive (rates converge).
	netShort := buildTinySNN(9, 0.5, 2, ReadoutSpikeCount)
	netLong := buildTinySNN(9, 0.5, 16, ReadoutSpikeCount)
	r := tensor.NewRand(10, 0)
	xT := tensor.RandN(r, 0.8, 0.3, 2, 1, 4, 4)
	tp1 := autodiff.NewTape()
	y1 := netShort.Logits(tp1, tp1.Const(xT))
	tp2 := autodiff.NewTape()
	y2 := netLong.Logits(tp2, tp2.Const(xT))
	if y1.Data.HasNaN() || y2.Data.HasNaN() {
		t.Fatal("NaN logits")
	}
	// Both networks share weights (same seed), so rates must correlate;
	// just assert the long window is non-degenerate.
	if tensor.Sum(tensor.Abs(y2.Data)) == 0 && tensor.Sum(tensor.Abs(y1.Data)) > 0 {
		t.Error("longer window lost all spikes")
	}
}

func TestNetworkTraceRecording(t *testing.T) {
	net := buildTinySNN(11, 0.5, 4, ReadoutSpikeCount)
	net.Record = &Trace{}
	tp := autodiff.NewTape()
	r := tensor.NewRand(12, 0)
	x := tp.Const(tensor.RandN(r, 0.8, 0.3, 2, 1, 4, 4))
	net.Logits(tp, x)
	if len(net.Record.SpikeRates) != 1 {
		t.Fatalf("trace layers = %d", len(net.Record.SpikeRates))
	}
	rate := net.Record.SpikeRates[0]
	if rate < 0 || rate > 1 {
		t.Errorf("spike rate %v out of [0,1]", rate)
	}
}

func TestNetworkValidateCatchesMistakes(t *testing.T) {
	net := buildTinySNN(13, 1, 4, ReadoutSpikeCount)
	net.T = 0
	if err := net.Validate(); err == nil {
		t.Error("T=0 validated")
	}
	net = buildTinySNN(13, 1, 4, ReadoutSpikeCount)
	net.Encoder = nil
	if err := net.Validate(); err == nil {
		t.Error("nil encoder validated")
	}
	net = buildTinySNN(13, 1, 4, ReadoutSpikeCount)
	net.LogitScale = 0
	if err := net.Validate(); err == nil {
		t.Error("zero LogitScale validated")
	}
	net = buildTinySNN(13, 1, 4, ReadoutSpikeCount)
	net.Hidden[0].Cfg.Vth = -1
	if err := net.Validate(); err == nil {
		t.Error("negative Vth validated")
	}
}

func TestSetVth(t *testing.T) {
	net := buildTinySNN(14, 1, 4, ReadoutSpikeCount)
	net.SetVth(2.25)
	if net.Hidden[0].Cfg.Vth != 2.25 || net.ReadoutCfg.Vth != 2.25 {
		t.Error("SetVth did not propagate")
	}
}

func TestResetModeString(t *testing.T) {
	if ResetZero.String() != "zero" || ResetSubtract.String() != "subtract" {
		t.Error("ResetMode.String broken")
	}
	if ReadoutSpikeCount.String() != "spike_count" || ReadoutMembrane.String() != "membrane" {
		t.Error("ReadoutMode.String broken")
	}
}

// Determinism: identical seeds and inputs give identical logits.
func TestNetworkDeterminism(t *testing.T) {
	r := tensor.NewRand(20, 0)
	xT := tensor.RandN(r, 0.8, 0.3, 2, 1, 4, 4)
	run := func() *tensor.Tensor {
		net := buildTinySNN(21, 1, 6, ReadoutSpikeCount)
		tp := autodiff.NewTape()
		return net.Logits(tp, tp.Const(xT)).Data
	}
	if !run().AllClose(run(), 0) {
		t.Error("two identical constructions diverged")
	}
}

// TestSpikeKernelsBitIdenticalEndToEnd pins the spike-plane engine
// through a whole BPTT pass: a spiking network with a Poisson front-end
// (packed encoder spikes into SpikeConv2D), a pooling stage (dense
// kernels resume behind it) and a spike-fed readout must produce
// bit-identical logits, parameter gradients and input gradients with
// the spike kernels enabled and disabled.
func TestSpikeKernelsBitIdenticalEndToEnd(t *testing.T) {
	r := tensor.NewRand(40, 0)
	xT := tensor.RandN(r, 0.6, 0.3, 3, 1, 8, 8)
	labels := []int{0, 2, 1}
	build := func() *Network {
		rr := tensor.NewRand(41, 0)
		cfg := NeuronConfig{Vth: 0.8, Alpha: 0.9, Reset: ResetZero, Surrogate: FastSigmoid{Beta: 25}}
		return &Network{
			Encoder: NewPoissonEncoder(1, 7, 9),
			Hidden: []Layer{
				{Syn: nn.NewConv2D(rr, 1, 4, 3, 1, 1), Cfg: cfg},
				{Syn: nn.NewSequential(nn.AvgPool{K: 2}, nn.Flatten{}, nn.NewLinear(rr, 64, 10)), Cfg: cfg},
			},
			Readout:    nn.NewLinear(rr, 10, 3),
			ReadoutCfg: cfg,
			Mode:       ReadoutSpikeCount,
			T:          5,
			LogitScale: 10,
		}
	}
	type result struct {
		logits, xGrad *tensor.Tensor
		params        []*tensor.Tensor
	}
	run := func(spike bool) result {
		pol := compute.DefaultDispatchPolicy()
		if spike {
			pol.Mode = compute.DispatchSparse
		} else {
			pol.Mode = compute.DispatchDense
		}
		compute.SetDispatchPolicy(pol)
		defer compute.SetDispatchPolicy(compute.DefaultDispatchPolicy())
		net := build()
		tp := autodiff.NewTape()
		x := tp.Var(xT.Clone())
		logits := net.Logits(tp, x)
		loss := tp.SoftmaxCrossEntropy(logits, labels)
		tp.Backward(loss)
		res := result{logits: logits.Data, xGrad: x.Grad}
		for _, p := range net.Params() {
			res.params = append(res.params, p.Grad)
		}
		return res
	}
	dense := run(false)
	spiked := run(true)
	if !dense.logits.AllClose(spiked.logits, 0) {
		t.Error("spike kernels changed the logits")
	}
	if !dense.xGrad.AllClose(spiked.xGrad, 0) {
		t.Error("spike kernels changed the input gradient")
	}
	for i := range dense.params {
		if !dense.params[i].AllClose(spiked.params[i], 0) {
			t.Errorf("spike kernels changed parameter gradient %d", i)
		}
	}
}

// TestTapeReleaseBitIdenticalAcrossReuse pins the Tape.Release lifetime
// hook at the LIF level: the spike/membrane slabs (and packed planes) a
// forward pass records come from the backend arena, so a second pass
// after Release recycles the first pass's buffers — and must still
// produce bit-identical logits and gradients.
func TestTapeReleaseBitIdenticalAcrossReuse(t *testing.T) {
	r := tensor.NewRand(77, 0)
	xT := tensor.RandN(r, 0.8, 0.3, 3, 1, 4, 4)
	labels := []int{0, 1, 2}
	run := func() (*tensor.Tensor, []*tensor.Tensor) {
		net := buildTinySNN(78, 0.8, 5, ReadoutSpikeCount)
		for _, p := range net.Params() {
			p.ZeroGrad()
		}
		tp := autodiff.NewTape()
		logits := net.Logits(tp, tp.Const(xT))
		loss := tp.SoftmaxCrossEntropy(logits, labels)
		tp.Backward(loss)
		out := logits.Data.Clone() // Data dies with Release; keep a copy
		var grads []*tensor.Tensor
		for _, p := range net.Params() {
			grads = append(grads, p.Grad.Clone())
		}
		tp.Release()
		return out, grads
	}
	l1, g1 := run()
	l2, g2 := run()
	if !l1.AllClose(l2, 0) {
		t.Error("logits differ across pooled-slab reuse")
	}
	for i := range g1 {
		if !g1[i].AllClose(g2[i], 0) {
			t.Errorf("gradient %d differs across pooled-slab reuse", i)
		}
	}
}

// A tiny SNN must be able to learn a separable toy problem through BPTT —
// the end-to-end sanity check for the whole surrogate-gradient machinery.
func TestSNNLearnsToyProblem(t *testing.T) {
	net := buildTinySNN(30, 0.5, 6, ReadoutSpikeCount)
	r := tensor.NewRand(31, 0)
	const n = 48
	xs := tensor.New(n, 1, 4, 4)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % 3
		labels[i] = c
		// Three classes light up three different image quadrants.
		for y := 0; y < 2; y++ {
			for x := 0; x < 2; x++ {
				xs.Set(1.0+0.1*r.NormFloat64(), i, 0, y+(c%2)*2, x+(c/2)*2)
			}
		}
	}
	var first, last float64
	for epoch := 0; epoch < 60; epoch++ {
		for _, p := range net.Params() {
			p.ZeroGrad()
		}
		tp := autodiff.NewTape()
		loss := tp.SoftmaxCrossEntropy(net.Logits(tp, tp.Const(xs)), labels)
		if epoch == 0 {
			first = loss.Data.Item()
		}
		last = loss.Data.Item()
		tp.Backward(loss)
		for _, p := range net.Params() {
			tensor.Axpy(-0.05, p.Grad, p.Data)
		}
	}
	if last >= first*0.8 {
		t.Errorf("SNN BPTT did not reduce loss: %v -> %v", first, last)
	}
	tp := autodiff.NewTape()
	pred := tensor.ArgmaxRows(net.Logits(tp, tp.Const(xs)).Data)
	correct := 0
	for i, p := range pred {
		if p == labels[i] {
			correct++
		}
	}
	if correct < n*2/3 {
		t.Errorf("SNN toy accuracy %d/%d", correct, n)
	}
}

func TestNormalizedPoissonEncoderDenormalises(t *testing.T) {
	// A pixel at normalised value x should spike with rate std·x + mean.
	mean, std := 0.1307, 0.3081
	e := NewNormalizedPoissonEncoder(1, mean, std, 1, 2)
	raw := 0.8
	normed := (raw - mean) / std
	tp := autodiff.NewTape()
	x := tp.Const(tensor.Full(normed, 5000))
	total := 0.0
	const steps = 20
	for i := 0; i < steps; i++ {
		total += tensor.Mean(e.Encode(tp, x, i).Data)
	}
	rate := total / steps
	if math.Abs(rate-raw) > 0.01 {
		t.Errorf("empirical rate %v, want ≈%v", rate, raw)
	}
}

func TestNormalizedPoissonEncoderSTESlope(t *testing.T) {
	mean, std := 0.1307, 0.3081
	e := NewNormalizedPoissonEncoder(1, mean, std, 3, 4)
	tp := autodiff.NewTape()
	x := tp.Var(tensor.FromSlice([]float64{0}, 1)) // rate = mean, inside (0,1)
	s := e.Encode(tp, x, 0)
	tp.Backward(tp.Sum(s))
	if g := x.Grad.At(0); math.Abs(g-std) > 1e-12 {
		t.Errorf("STE slope = %v, want Gain·Scale = %v", g, std)
	}
}

func TestPoissonEncoderZeroScaleDefaultsToOne(t *testing.T) {
	// A zero-valued Scale field (struct literal without Scale) must not
	// silence the encoder.
	e := &PoissonEncoder{Gain: 1, rng: tensor.NewRand(1, 1)}
	tp := autodiff.NewTape()
	x := tp.Const(tensor.Full(1.0, 100))
	s := e.Encode(tp, x, 0)
	if tensor.Sum(s.Data) != 100 {
		t.Errorf("saturated input spiked %v/100 with zero Scale", tensor.Sum(s.Data))
	}
}

func TestEncoderNames(t *testing.T) {
	names := []string{
		ConstantCurrentEncoder{Gain: 1}.Name(),
		NewPoissonEncoder(1, 1, 1).Name(),
		LatencyEncoder{Gain: 1, T: 4}.Name(),
	}
	for _, n := range names {
		if n == "" {
			t.Error("empty encoder name")
		}
	}
}

func TestLatencyEncoderRequiresT(t *testing.T) {
	tp := autodiff.NewTape()
	defer func() {
		if recover() == nil {
			t.Fatal("T=0 latency encoder did not panic")
		}
	}()
	LatencyEncoder{Gain: 1}.Encode(tp, tp.Const(tensor.New(1)), 0)
}
