// Package snn implements the spiking substrate of the reproduction:
// leaky-integrate-and-fire (LIF) neuron dynamics with surrogate-gradient
// backpropagation through time (BPTT), spike encoders, and a spiking
// network container whose structural parameters — the firing threshold
// Vth and the time window T — are exactly the knobs the paper explores.
//
// Discretised dynamics (DESIGN.md "Numerical conventions"):
//
//	v[t+1] = α·v[t]·reset(s[t]) + I[t]
//	s[t]   = H(v[t] − Vth)
//
// The Heaviside step H has zero derivative almost everywhere, so training
// uses a surrogate derivative at the threshold (fast sigmoid by default,
// as in SuperSpike/Norse). The attack code differentiates through the
// same surrogate — the white-box setting of the paper's threat model,
// where the adversary knows Vth and T.
package snn

import (
	"fmt"
	"math"
)

// Surrogate is a smoothed derivative of the Heaviside spike function,
// evaluated at the distance u = v − Vth from the threshold. Grad must be
// safe for concurrent calls: the LIF kernels evaluate it from parallel
// backend workers.
type Surrogate interface {
	// Grad returns dH/dv at membrane distance u = v − Vth.
	Grad(u float64) float64
	// Name identifies the surrogate in reports and serialised models.
	Name() string
}

// FastSigmoid is the SuperSpike surrogate (Zenke & Ganguli 2018), also
// Norse's default: dH/du = 1/(1+β|u|)².
type FastSigmoid struct {
	// Beta controls the sharpness; larger β concentrates the gradient
	// near the threshold. Norse uses 100 by default; smaller values
	// (≈10) give better-conditioned deep BPTT at our scale.
	Beta float64
}

// Grad returns 1/(1+β|u|)².
func (s FastSigmoid) Grad(u float64) float64 {
	d := 1 + s.Beta*math.Abs(u)
	return 1 / (d * d)
}

// Name returns the identifier "fast_sigmoid(β)".
func (s FastSigmoid) Name() string { return fmt.Sprintf("fast_sigmoid(beta=%g)", s.Beta) }

// SigmoidPrime uses the derivative of a scaled logistic function:
// dH/du = β·σ(βu)·(1−σ(βu)).
type SigmoidPrime struct {
	Beta float64
}

// Grad returns β·σ(βu)(1−σ(βu)).
func (s SigmoidPrime) Grad(u float64) float64 {
	e := 1 / (1 + math.Exp(-s.Beta*u))
	return s.Beta * e * (1 - e)
}

// Name returns the identifier "sigmoid_prime(β)".
func (s SigmoidPrime) Name() string { return fmt.Sprintf("sigmoid_prime(beta=%g)", s.Beta) }

// PiecewiseLinear is the triangular surrogate of Bellec et al. / STBP:
// dH/du = max(0, 1 − |u|/w) / w.
type PiecewiseLinear struct {
	// Width is the half-support w of the triangle.
	Width float64
}

// Grad returns the triangular kernel value at u.
func (s PiecewiseLinear) Grad(u float64) float64 {
	a := 1 - math.Abs(u)/s.Width
	if a <= 0 {
		return 0
	}
	return a / s.Width
}

// Name returns the identifier "piecewise_linear(w)".
func (s PiecewiseLinear) Name() string { return fmt.Sprintf("piecewise_linear(width=%g)", s.Width) }

// DefaultSurrogate is the surrogate used when a NeuronConfig leaves the
// field nil.
func DefaultSurrogate() Surrogate { return FastSigmoid{Beta: 10} }

// SurrogateByName reconstructs a surrogate from its Name() string prefix;
// used by model deserialisation. Parameters are not parsed back — the
// defaults are returned — because serialised models store parameters
// separately.
func SurrogateByName(name string, param float64) (Surrogate, error) {
	switch {
	case len(name) >= 12 && name[:12] == "fast_sigmoid":
		return FastSigmoid{Beta: param}, nil
	case len(name) >= 13 && name[:13] == "sigmoid_prime":
		return SigmoidPrime{Beta: param}, nil
	case len(name) >= 16 && name[:16] == "piecewise_linear":
		return PiecewiseLinear{Width: param}, nil
	default:
		return nil, fmt.Errorf("snn: unknown surrogate %q", name)
	}
}
