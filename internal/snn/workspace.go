package snn

import "snnsec/internal/compute"

// Per-step workspace arena of the BPTT loop.
//
// Every LIF/ALIF pullback needs two transient buffers (the gradients
// with respect to the input current and the previous membrane); an
// unrolled T-step network runs 2·layers·T such pullbacks per backward
// pass. AccumGrad copies the values out immediately, so the buffers are
// dead as soon as the pullback returns — drawing them from the
// backend's buffer pool instead of the heap means a whole backward
// pass cycles through a handful of cache-warm buffers rather than
// allocating (and later garbage-collecting) one pair per step. The
// interior gradient buffers themselves are pooled the same way by
// autodiff's Backward; together they form the workspace the time loop
// reuses every step.

// stepScratch returns two length-n buffers from the backend pool. Their
// contents are unspecified (recycled buffers are dirty); every pullback
// fully overwrites them before reading.
func stepScratch(be compute.Backend, n int) (dI, dV []float64) {
	return be.Get(n), be.Get(n)
}

// releaseStepScratch returns step buffers to the pool. The caller must
// have finished reading them (AccumGrad copies, so returning right
// after the accumulation is safe).
func releaseStepScratch(be compute.Backend, dI, dV []float64) {
	be.Put(dI)
	be.Put(dV)
}
