package stream

import (
	"fmt"

	"snnsec/internal/compute"
	"snnsec/internal/tensor"
)

// MaxSilentWindows bounds how many consecutive windows a single event
// may complete at once. A stream that jumps that far ahead in time
// (ordinarily a corrupt or hostile timestamp) is rejected instead of
// making the binner emit an unbounded run of empty windows. Genuine
// silence below the limit does emit empty windows — the leaky membrane
// integrates silence like any other input, so skipping quiet windows
// would change carried-state results.
const MaxSilentWindows = 4096

// BinnerConfig describes the sensor geometry and the rolling window.
type BinnerConfig struct {
	// H, W is the sensor geometry; events carry 0-based (X, Y) with
	// X < W, Y < H.
	H, W int
	// Channels is 1 (polarity folded into one plane) or 2 (ON events on
	// channel 0, OFF on channel 1). The stock checkpoints are trained on
	// single-channel images, so 1 is the default everywhere.
	Channels int
	// Steps is the number of equal time slices per window — one packed
	// plane each, the T of the network consuming them.
	Steps int
	// WindowUS is the window length in microseconds; must be divisible
	// by Steps.
	WindowUS int64
	// HopUS is the distance between window starts; 0 selects WindowUS
	// (contiguous tiling, the only arrangement carried membrane state
	// composes with). HopUS < WindowUS overlaps windows; HopUS >
	// WindowUS samples with gaps.
	HopUS int64
}

func (c *BinnerConfig) validate() error {
	if c.H <= 0 || c.W <= 0 {
		return fmt.Errorf("stream: bad sensor geometry %dx%d", c.W, c.H)
	}
	if c.Channels == 0 {
		c.Channels = 1
	}
	if c.Channels != 1 && c.Channels != 2 {
		return fmt.Errorf("stream: channels must be 1 or 2, got %d", c.Channels)
	}
	if c.Steps <= 0 {
		return fmt.Errorf("stream: steps must be positive, got %d", c.Steps)
	}
	if c.WindowUS <= 0 {
		return fmt.Errorf("stream: window must be positive, got %dus", c.WindowUS)
	}
	if c.WindowUS%int64(c.Steps) != 0 {
		return fmt.Errorf("stream: window %dus is not divisible by %d steps", c.WindowUS, c.Steps)
	}
	if c.HopUS == 0 {
		c.HopUS = c.WindowUS
	}
	if c.HopUS < 0 {
		return fmt.Errorf("stream: hop must be positive, got %dus", c.HopUS)
	}
	return nil
}

// Tiling reports whether windows tile time exactly (hop == window) —
// the arrangement under which carried membrane state is a faithful
// continuous simulation.
func (c BinnerConfig) Tiling() bool { return c.HopUS == c.WindowUS || c.HopUS == 0 }

// Window is one completed rolling window: Steps packed spike planes of
// shape [1, Channels, H, W], one per time slice. The planes' bit slabs
// come from the shared arena; call Release when done with them.
type Window struct {
	// Index is the window's position on the hop grid: it spans
	// [Index·hop, Index·hop + window).
	Index   int64
	StartUS int64
	EndUS   int64
	// Events is how many events landed in the window (after folding;
	// duplicates on one pixel in one slice still count individually).
	Events int
	Planes []*tensor.SpikeTensor
	bits   []uint64
}

// Release returns the window's bit slab to the arena. The planes must
// not be used afterwards.
func (w *Window) Release() {
	if w.bits != nil {
		compute.PutUint64(w.bits)
		w.bits = nil
		w.Planes = nil
	}
}

// winState is an open (still-filling) window: per-slice lists of set
// element indices, scatter-packed only when the window completes.
type winState struct {
	events int
	idx    [][]int // Steps reusable index lists
}

// Binner scatters a time-ordered event stream into completed windows.
// Not safe for concurrent use; one binner per session.
type Binner struct {
	cfg      BinnerConfig
	words    int // words per plane row (rows == 1)
	open     map[int64]*winState
	free     []*winState
	nextEmit int64 // lowest window index not yet emitted
	lastUS   int64 // last event time seen, for the monotonicity check
	skipTo   bool  // after Reset: fast-forward nextEmit to the next event
}

// NewBinner validates cfg (filling in defaults) and returns a binner.
func NewBinner(cfg BinnerConfig) (*Binner, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cols := cfg.Channels * cfg.H * cfg.W
	return &Binner{
		cfg:   cfg,
		words: (cols + 63) / 64,
		open:  make(map[int64]*winState),
	}, nil
}

// Config returns the validated configuration (defaults filled in).
func (b *Binner) Config() BinnerConfig { return b.cfg }

// Add feeds one event, emitting (in index order) every window the
// event's timestamp proves complete — including empty ones, see
// MaxSilentWindows. Events must arrive in non-decreasing time order
// with in-range coordinates and polarity ±1; violations are errors and
// leave the binner unchanged.
func (b *Binner) Add(ev Event, emit func(*Window) error) error {
	c := &b.cfg
	if ev.TimeUS < b.lastUS {
		return fmt.Errorf("stream: event time %dus went backwards (last %dus)", ev.TimeUS, b.lastUS)
	}
	if ev.X < 0 || ev.X >= c.W || ev.Y < 0 || ev.Y >= c.H {
		return fmt.Errorf("stream: event at (%d,%d) outside %dx%d sensor", ev.X, ev.Y, c.W, c.H)
	}
	if ev.Pol != 1 && ev.Pol != -1 {
		return fmt.Errorf("stream: event polarity %d (want +1 or -1)", ev.Pol)
	}
	// kMin is the first window still containing ev; everything before it
	// is complete (or, right after Reset, silently skipped).
	kMin := int64(0)
	if past := ev.TimeUS - c.WindowUS; past >= 0 {
		kMin = past/c.HopUS + 1
	}
	if b.skipTo {
		if kMin > b.nextEmit {
			b.nextEmit = kMin
		}
		b.skipTo = false
	}
	if err := b.emitThrough(kMin, emit); err != nil {
		return err
	}
	b.lastUS = ev.TimeUS
	kMax := ev.TimeUS / c.HopUS
	ch := 0
	if c.Channels == 2 && ev.Pol < 0 {
		ch = 1
	}
	elem := ch*c.H*c.W + ev.Y*c.W + ev.X
	// When hop > window an event can fall in a gap: then kMin > kMax and
	// the loop body never runs.
	for k := max(kMin, b.nextEmit); k <= kMax; k++ {
		start := k * c.HopUS
		st := b.open[k]
		if st == nil {
			st = b.newWinState()
			b.open[k] = st
		}
		s := (ev.TimeUS - start) / (c.WindowUS / int64(c.Steps))
		st.idx[s] = append(st.idx[s], elem)
		st.events++
	}
	return nil
}

// Drain completes the stream at endUS: every window whose span ends at
// or before endUS is emitted (empty or not); windows still in progress
// are dropped. Returns how many partial windows were dropped. The
// binner remains usable — a later event at or after endUS continues the
// stream.
func (b *Binner) Drain(endUS int64, emit func(*Window) error) (dropped int, err error) {
	if endUS < b.lastUS {
		return 0, fmt.Errorf("stream: drain time %dus before last event %dus", endUS, b.lastUS)
	}
	kDone := int64(0)
	if past := endUS - b.cfg.WindowUS; past >= 0 {
		kDone = past/b.cfg.HopUS + 1
	}
	if b.skipTo {
		if kDone > b.nextEmit {
			b.nextEmit = kDone
		}
		b.skipTo = false
	}
	if err := b.emitThrough(kDone, emit); err != nil {
		return 0, err
	}
	b.lastUS = endUS
	// Dropped = every window that started before endUS but was not
	// emitted (whether or not it saw events), plus any boundary window
	// opened exactly at endUS.
	started := (endUS + b.cfg.HopUS - 1) / b.cfg.HopUS
	for k, st := range b.open {
		b.recycle(st)
		delete(b.open, k)
		if k >= started {
			dropped++
		}
	}
	if started > b.nextEmit {
		dropped += int(started - b.nextEmit)
	}
	b.skipTo = true
	return dropped, nil
}

// Reset drops every open window and suppresses the empty-window
// back-fill up to the next event — the binner half of a stream reset
// (the runner half is StatefulRunner.Reset).
func (b *Binner) Reset() {
	for k, st := range b.open {
		b.recycle(st)
		delete(b.open, k)
	}
	b.skipTo = true
}

// emitThrough packs and emits windows nextEmit..kEnd-1 in order.
func (b *Binner) emitThrough(kEnd int64, emit func(*Window) error) error {
	if kEnd-b.nextEmit > MaxSilentWindows {
		return fmt.Errorf("stream: time jump would emit %d consecutive windows (max %d); reset the stream instead",
			kEnd-b.nextEmit, MaxSilentWindows)
	}
	for k := b.nextEmit; k < kEnd; k++ {
		w := b.pack(k)
		b.nextEmit = k + 1
		if err := emit(w); err != nil {
			return err
		}
	}
	return nil
}

// pack scatter-packs window k's per-slice index lists into spike planes
// backed by one pooled bit slab. An absent state packs an all-zero
// window — silence, not an error.
func (b *Binner) pack(k int64) *Window {
	c := &b.cfg
	st := b.open[k]
	if st != nil {
		delete(b.open, k)
	}
	bits := compute.GetUint64(c.Steps * b.words)
	counts := make([]int, c.Steps)
	planes := make([]*tensor.SpikeTensor, c.Steps)
	shape := []int{1, c.Channels, c.H, c.W}
	for s := 0; s < c.Steps; s++ {
		var idx []int
		if st != nil {
			idx = st.idx[s]
		}
		slab := bits[s*b.words : (s+1)*b.words]
		tensor.ScatterSpikesInto(slab, counts[s:s+1], idx, shape...)
		planes[s] = tensor.NewSpikeTensorFromBits(slab, counts[s:s+1], shape...)
	}
	w := &Window{
		Index:   k,
		StartUS: k * c.HopUS,
		EndUS:   k*c.HopUS + c.WindowUS,
		Planes:  planes,
		bits:    bits,
	}
	if st != nil {
		w.Events = st.events
		b.recycle(st)
	}
	return w
}

func (b *Binner) newWinState() *winState {
	if n := len(b.free); n > 0 {
		st := b.free[n-1]
		b.free = b.free[:n-1]
		return st
	}
	return &winState{idx: make([][]int, b.cfg.Steps)}
}

func (b *Binner) recycle(st *winState) {
	st.events = 0
	for s := range st.idx {
		st.idx[s] = st.idx[s][:0]
	}
	b.free = append(b.free, st)
}
