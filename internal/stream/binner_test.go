package stream

import (
	"testing"

	"snnsec/internal/tensor"
)

func collectWindows(t *testing.T, b *Binner, evs []Event, endUS int64) ([]*Window, int) {
	t.Helper()
	var out []*Window
	emit := func(w *Window) error { out = append(out, w); return nil }
	for _, ev := range evs {
		if err := b.Add(ev, emit); err != nil {
			t.Fatalf("Add(%+v): %v", ev, err)
		}
	}
	dropped, err := b.Drain(endUS, emit)
	if err != nil {
		t.Fatalf("Drain(%d): %v", endUS, err)
	}
	return out, dropped
}

// TestBinnerTiling pins the contiguous-tiling case: every event lands in
// exactly one window and one slice, empty windows are emitted for
// silence, and the packed planes match a scatter-pack reference.
func TestBinnerTiling(t *testing.T) {
	b, err := NewBinner(BinnerConfig{H: 4, W: 4, Steps: 2, WindowUS: 100})
	if err != nil {
		t.Fatal(err)
	}
	if !b.Config().Tiling() {
		t.Fatal("hop defaulting to window should report Tiling")
	}
	evs := []Event{
		{TimeUS: 0, X: 0, Y: 0, Pol: 1},    // window 0, slice 0
		{TimeUS: 49, X: 1, Y: 2, Pol: 1},   // window 0, slice 0
		{TimeUS: 50, X: 3, Y: 3, Pol: -1},  // window 0, slice 1
		{TimeUS: 260, X: 2, Y: 1, Pol: 1},  // window 2, slice 1 (window 1 silent)
		{TimeUS: 399, X: 2, Y: 1, Pol: 1},  // window 3, slice 1
		{TimeUS: 399, X: 2, Y: 1, Pol: -1}, // duplicate pixel, same slice
	}
	wins, dropped := collectWindows(t, b, evs, 400)
	if dropped != 0 {
		t.Fatalf("dropped %d windows, want 0", dropped)
	}
	if len(wins) != 4 {
		t.Fatalf("got %d windows, want 4", len(wins))
	}
	wantEvents := []int{3, 0, 1, 2}
	for i, w := range wins {
		if w.Index != int64(i) || w.StartUS != int64(i)*100 || w.EndUS != int64(i+1)*100 {
			t.Fatalf("window %d: index %d span [%d,%d)", i, w.Index, w.StartUS, w.EndUS)
		}
		if w.Events != wantEvents[i] {
			t.Fatalf("window %d: %d events, want %d", i, w.Events, wantEvents[i])
		}
		if len(w.Planes) != 2 {
			t.Fatalf("window %d: %d planes, want 2", i, len(w.Planes))
		}
	}
	// Window 0 slice 0: pixels (0,0) and (2,1) set; slice 1: (3,3).
	ref0 := tensor.ScatterSpikes([]int{0, 2*4 + 1}, 1, 1, 4, 4)
	ref1 := tensor.ScatterSpikes([]int{3*4 + 3}, 1, 1, 4, 4)
	for i, want := range []*tensor.SpikeTensor{ref0, ref1} {
		got := wins[0].Planes[i]
		if got.Count() != want.Count() {
			t.Fatalf("window 0 plane %d: %d spikes, want %d", i, got.Count(), want.Count())
		}
		for c := 0; c < 16; c++ {
			if got.Bit(0, c) != want.Bit(0, c) {
				t.Fatalf("window 0 plane %d bit %d mismatch", i, c)
			}
		}
	}
	if wins[1].Events != 0 || wins[1].Planes[0].Count() != 0 {
		t.Fatal("silent window 1 should be empty, not skipped")
	}
	// Duplicate events on one pixel in one slice pack to one bit.
	if got := wins[3].Planes[1].Count(); got != 1 {
		t.Fatalf("window 3 slice 1 has %d bits, want 1 (duplicates fold)", got)
	}
	for _, w := range wins {
		w.Release()
	}
}

// TestBinnerOverlap pins hop < window: an event lands in every window
// whose span contains it, at the right per-window slice.
func TestBinnerOverlap(t *testing.T) {
	b, err := NewBinner(BinnerConfig{H: 2, W: 2, Steps: 2, WindowUS: 100, HopUS: 50})
	if err != nil {
		t.Fatal(err)
	}
	if b.Config().Tiling() {
		t.Fatal("hop < window must not report Tiling")
	}
	// Event at t=60: window 0 [0,100) slice 1, window 1 [50,150) slice 0.
	wins, dropped := collectWindows(t, b, []Event{{TimeUS: 60, X: 1, Y: 1, Pol: 1}}, 150)
	if dropped != 1 { // window 2 [100,200) started but incomplete
		t.Fatalf("dropped %d, want 1", dropped)
	}
	if len(wins) != 2 {
		t.Fatalf("got %d windows, want 2", len(wins))
	}
	if wins[0].Planes[0].Count() != 0 || wins[0].Planes[1].Count() != 1 {
		t.Fatal("window 0 should hold the event in slice 1")
	}
	if wins[1].Planes[0].Count() != 1 || wins[1].Planes[1].Count() != 0 {
		t.Fatal("window 1 should hold the event in slice 0")
	}
}

// TestBinnerGapHop pins hop > window: events in the gaps belong to no
// window.
func TestBinnerGapHop(t *testing.T) {
	b, err := NewBinner(BinnerConfig{H: 2, W: 2, Steps: 1, WindowUS: 50, HopUS: 100})
	if err != nil {
		t.Fatal(err)
	}
	evs := []Event{
		{TimeUS: 10, X: 0, Y: 0, Pol: 1},  // window 0 [0,50)
		{TimeUS: 60, X: 1, Y: 0, Pol: 1},  // gap
		{TimeUS: 110, X: 0, Y: 1, Pol: 1}, // window 1 [100,150)
	}
	wins, _ := collectWindows(t, b, evs, 200)
	if len(wins) != 2 {
		t.Fatalf("got %d windows, want 2", len(wins))
	}
	if wins[0].Events != 1 || wins[1].Events != 1 {
		t.Fatalf("events per window %d/%d, want 1/1 (gap event binned?)", wins[0].Events, wins[1].Events)
	}
}

// TestBinnerChannels pins the 2-channel polarity split and the folded
// default.
func TestBinnerChannels(t *testing.T) {
	b2, err := NewBinner(BinnerConfig{H: 2, W: 2, Channels: 2, Steps: 1, WindowUS: 10})
	if err != nil {
		t.Fatal(err)
	}
	evs := []Event{{TimeUS: 1, X: 1, Y: 0, Pol: 1}, {TimeUS: 2, X: 1, Y: 0, Pol: -1}}
	wins, _ := collectWindows(t, b2, evs, 10)
	p := wins[0].Planes[0]
	if got := p.Shape(); got[1] != 2 {
		t.Fatalf("plane shape %v, want 2 channels", got)
	}
	if !p.Bit(0, 1) || !p.Bit(0, 4+1) || p.Count() != 2 {
		t.Fatal("ON should land on channel 0, OFF on channel 1")
	}
}

// TestBinnerRejects pins the strict input contract.
func TestBinnerRejects(t *testing.T) {
	emit := func(*Window) error { return nil }
	b, _ := NewBinner(BinnerConfig{H: 2, W: 2, Steps: 1, WindowUS: 10})
	if err := b.Add(Event{TimeUS: 5, X: 0, Y: 0, Pol: 1}, emit); err != nil {
		t.Fatal(err)
	}
	if err := b.Add(Event{TimeUS: 4, X: 0, Y: 0, Pol: 1}, emit); err == nil {
		t.Fatal("time going backwards must be rejected")
	}
	if err := b.Add(Event{TimeUS: 6, X: 2, Y: 0, Pol: 1}, emit); err == nil {
		t.Fatal("out-of-range X must be rejected")
	}
	if err := b.Add(Event{TimeUS: 6, X: 0, Y: 0, Pol: 0}, emit); err == nil {
		t.Fatal("polarity 0 must be rejected")
	}
	if err := b.Add(Event{TimeUS: int64(MaxSilentWindows+2) * 10, X: 0, Y: 0, Pol: 1}, emit); err == nil {
		t.Fatal("a time jump past MaxSilentWindows must be rejected")
	}
	if _, err := NewBinner(BinnerConfig{H: 2, W: 2, Steps: 3, WindowUS: 10}); err == nil {
		t.Fatal("window not divisible by steps must be rejected")
	}
	if _, err := NewBinner(BinnerConfig{H: 2, W: 2, Channels: 3, Steps: 1, WindowUS: 10}); err == nil {
		t.Fatal("3 channels must be rejected")
	}
}

// TestBinnerReset pins that Reset drops open windows and suppresses the
// empty back-fill up to the next event.
func TestBinnerReset(t *testing.T) {
	var wins []*Window
	emit := func(w *Window) error { wins = append(wins, w); return nil }
	b, _ := NewBinner(BinnerConfig{H: 2, W: 2, Steps: 1, WindowUS: 10})
	if err := b.Add(Event{TimeUS: 5, X: 0, Y: 0, Pol: 1}, emit); err != nil {
		t.Fatal(err)
	}
	b.Reset()
	// Far ahead: without the reset this would back-fill ~100 empty
	// windows; with it the stream resumes at the event's own window.
	if err := b.Add(Event{TimeUS: 1001, X: 1, Y: 1, Pol: 1}, emit); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Drain(1010, emit); err != nil {
		t.Fatal(err)
	}
	if len(wins) != 1 {
		t.Fatalf("got %d windows after reset, want 1", len(wins))
	}
	if wins[0].Index != 100 || wins[0].Events != 1 {
		t.Fatalf("window after reset: index %d events %d, want 100/1 (pre-reset event leaked?)", wins[0].Index, wins[0].Events)
	}
}
