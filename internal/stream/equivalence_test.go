package stream_test

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand/v2"
	"strings"
	"sync"
	"testing"

	"snnsec/internal/compute"
	"snnsec/internal/dataset"
	"snnsec/internal/nn"
	"snnsec/internal/serve"
	"snnsec/internal/snn"
	"snnsec/internal/stream"
)

// End-to-end: glyph event source → binner → stateful engine → result
// lines, with a real network. External test package so the dataset
// emitter (which imports stream) can feed the pipeline.

const (
	e2eSize  = 16
	e2eSteps = 4
)

func e2eEngine(t *testing.T) *serve.Engine {
	t.Helper()
	r := rand.New(rand.NewPCG(0xe2e, 1))
	net := &snn.Network{
		Encoder: snn.ConstantCurrentEncoder{Gain: 1},
		Hidden: []snn.Layer{{
			Syn: nn.NewSequential(nn.Flatten{}, nn.NewLinear(r, e2eSize*e2eSize, 24)),
			Cfg: snn.NeuronConfig{Vth: 0.3, Alpha: 0.9},
		}},
		Readout:    nn.NewLinear(r, 24, 10),
		ReadoutCfg: snn.NeuronConfig{Vth: 0.3, Alpha: 0.9},
		Mode:       snn.ReadoutSpikeCount,
		T:          e2eSteps,
		LogitScale: 10,
	}
	eng, err := serve.NewEngine(net, nil, []int{1, e2eSize, e2eSize})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	return eng
}

func e2eServer(t *testing.T, eng *serve.Engine) *stream.Server {
	t.Helper()
	sv, err := stream.NewServer(stream.Config{
		Binner: stream.BinnerConfig{H: e2eSize, W: e2eSize, Steps: e2eSteps, WindowUS: 4000},
	}, func() (stream.Runner, error) {
		return eng.NewStatefulRunner(compute.PackSpikePlanes())
	})
	if err != nil {
		t.Fatalf("stream.NewServer: %v", err)
	}
	return sv
}

func e2eRun(t *testing.T, sv *stream.Server) string {
	t.Helper()
	src, err := dataset.NewGlyphEventStream(dataset.DefaultEventStreamConfig([]int{3, 7}, 42))
	if err != nil {
		t.Fatalf("NewGlyphEventStream: %v", err)
	}
	var out bytes.Buffer
	if _, err := sv.RunSource(context.Background(), src, src.EndUS(), &out); err != nil {
		t.Fatalf("RunSource: %v", err)
	}
	return out.String()
}

// TestStreamEndToEndDeterministic pins the CI smoke's property at unit
// level: the same synthetic stream through the same checkpoint yields
// byte-identical result lines, run after run.
func TestStreamEndToEndDeterministic(t *testing.T) {
	eng := e2eEngine(t)
	sv := e2eServer(t, eng)
	first := e2eRun(t, sv)
	lines := strings.Split(strings.TrimSpace(first), "\n")
	if want := int(40_000 / 4000); len(lines) != want {
		t.Fatalf("got %d result lines, want %d", len(lines), want)
	}
	for _, l := range lines {
		var res stream.WindowResult
		if err := json.Unmarshal([]byte(l), &res); err != nil {
			t.Fatalf("bad result line %q: %v", l, err)
		}
		if res.Pred < 0 || res.Pred > 9 || len(res.Logits) != 10 {
			t.Fatalf("implausible result: %+v", res)
		}
		if res.Events == 0 {
			t.Fatalf("window %d binned no events — emitter and binner disagree", res.Window)
		}
	}
	if second := e2eRun(t, sv); second != first {
		t.Fatal("two identical runs produced different bytes")
	}
}

// TestStreamSessionsConcurrent pins session isolation on a shared
// engine: concurrent sessions must each reproduce the serial run
// byte for byte. This is the stateful hot path the CI -race sweep
// exercises.
func TestStreamSessionsConcurrent(t *testing.T) {
	eng := e2eEngine(t)
	sv := e2eServer(t, eng)
	want := e2eRun(t, sv)
	var wg sync.WaitGroup
	got := make([]string, 4)
	for i := range got {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			src, err := dataset.NewGlyphEventStream(dataset.DefaultEventStreamConfig([]int{3, 7}, 42))
			if err != nil {
				t.Errorf("NewGlyphEventStream: %v", err)
				return
			}
			var out bytes.Buffer
			if _, err := sv.RunSource(context.Background(), src, src.EndUS(), &out); err != nil {
				t.Errorf("RunSource: %v", err)
				return
			}
			got[i] = out.String()
		}(i)
	}
	wg.Wait()
	for i, g := range got {
		if g != want {
			t.Fatalf("concurrent session %d diverged from the serial run", i)
		}
	}
}
