package stream

import (
	"errors"
	"testing"
)

// Fuzz target for the streaming record parser — the byte-eating entry
// point a keepalive connection exposes to untrusted clients. Contract as
// for ParsePredictRequest: a value or an ErrBadRecord, never a panic,
// never an unbounded allocation. Seed corpus in
// testdata/fuzz/FuzzParseRecord/.

func fuzzRecordSeeds() [][]byte {
	return [][]byte{
		[]byte(`{"events":[[10,0,0,1],[20,1,1,-1]]}`),
		[]byte(`{"events":[],"reset":true}`),
		[]byte(`{"end_us":500}`),
		[]byte(`{"reset":true,"events":[[0,0,0,1]],"end_us":100}`),
		[]byte(`{}`),
		[]byte(`{"events":[[10,0,0,0]]}`),
		[]byte(`{"events":[[-1,0,0,1]]}`),
		[]byte(`{"events":[[1,1048576,0,1]]}`),
		[]byte(`{"end_us":-1}`),
		[]byte(`{"events":[[1,2,3]]}`),
		[]byte(`{"events":[[1,2,3,4,5]]}`),
		[]byte(`{"bogus":true}`),
		[]byte(`{}{}`),
		[]byte(`[]`),
		[]byte(`null`),
		[]byte(``),
		[]byte(`{`),
		[]byte("\xff\xfe{}"),
	}
}

func FuzzParseRecord(f *testing.F) {
	for _, seed := range fuzzRecordSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		rec, err := ParseRecord(b)
		if err != nil {
			if !errors.Is(err, ErrBadRecord) {
				t.Fatalf("non-ErrBadRecord error: %v", err)
			}
			return
		}
		// Accepted records must satisfy the invariants the session layer
		// relies on.
		if len(rec.Events) > MaxRecordEvents {
			t.Fatalf("accepted %d events", len(rec.Events))
		}
		for i, q := range rec.Events {
			if q[0] < 0 {
				t.Fatalf("accepted negative time at quad %d", i)
			}
			if q[1] < 0 || q[1] >= 1<<20 || q[2] < 0 || q[2] >= 1<<20 {
				t.Fatalf("accepted out-of-range coordinates at quad %d", i)
			}
			if q[3] != 1 && q[3] != -1 {
				t.Fatalf("accepted polarity %d at quad %d", q[3], i)
			}
			ev := rec.event(i)
			if int64(ev.X) != q[1] || int64(ev.Y) != q[2] {
				t.Fatalf("quad %d round-trip lost precision", i)
			}
		}
		if rec.EndUS != nil && *rec.EndUS < 0 {
			t.Fatalf("accepted negative end_us")
		}
	})
}
