package stream

import "snnsec/internal/obs"

// Streaming telemetry: event/window throughput plus the two quiet
// failure modes a stream can hide — silent windows (no events landed in
// the window) and window errors (a Step that failed and rolled back).
// Registered at init like the other layers, so every binary's /metrics
// carries the families.
var (
	metricEvents = obs.NewCounter("snnsec_stream_events_total",
		"Sensor events accepted into binners.")
	metricWindows = obs.NewCounter("snnsec_stream_windows_total",
		"Windows classified (result or error line written).")
	metricSilentWindows = obs.NewCounter("snnsec_stream_silent_windows_total",
		"Classified windows that contained zero events.")
	metricWindowErrors = obs.NewCounter("snnsec_stream_window_errors_total",
		"Windows whose Step failed and was rolled back (error line written).")
	metricSessions = obs.NewGauge("snnsec_stream_sessions",
		"Streaming sessions currently open.")
)
