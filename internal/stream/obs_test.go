package stream

import (
	"testing"

	"snnsec/internal/obs"
)

// TestSessionMetrics drives one session while armed and checks every
// stream family advances: events accepted, windows classified, a silent
// window, a rolled-back window error, and the session gauge returning
// to its starting level.
func TestSessionMetrics(t *testing.T) {
	obs.Arm()
	t.Cleanup(obs.Disarm)
	events0 := metricEvents.Value()
	windows0 := metricWindows.Value()
	silent0 := metricSilentWindows.Value()
	errors0 := metricWindowErrors.Value()
	sessions0 := metricSessions.Value()

	r := &fakeRunner{fail: map[int]bool{2: true}}
	sv := newTestServer(t, BinnerConfig{H: 2, W: 2, Steps: 2, WindowUS: 100}, r)
	// Window 0 carries two events; window 1 is silent (events jump past
	// it) and its Step fails, exercising the rollback counter too.
	input := `{"events":[[10,0,0,1],[60,1,1,1],[250,0,1,1]]}` + "\n" + `{"end_us":300}`
	out := runLines(t, sv, input)
	if len(out) == 0 {
		t.Fatal("no output lines")
	}

	if got := metricEvents.Value() - events0; got != 3 {
		t.Errorf("events counted = %d, want 3", got)
	}
	if got := metricWindows.Value() - windows0; got != 3 {
		t.Errorf("windows counted = %d, want 3", got)
	}
	if got := metricSilentWindows.Value() - silent0; got != 1 {
		t.Errorf("silent windows counted = %d, want 1", got)
	}
	if got := metricWindowErrors.Value() - errors0; got != 1 {
		t.Errorf("window errors counted = %d, want 1", got)
	}
	if got := metricSessions.Value(); got != sessions0 {
		t.Errorf("session gauge = %g after session end, want %g", got, sessions0)
	}
}
