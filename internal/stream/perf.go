package stream

import (
	"bytes"
	"context"
	"time"
)

// ThroughputReport summarises a streaming load run: how many events one
// session binned and classified per second of wall clock. It is what
// the streaming benchmark appends to BENCH_compute.json.
type ThroughputReport struct {
	// Events is the number of events consumed from the source(s).
	Events int `json:"events"`
	// Windows is the number of result lines emitted (completed windows,
	// plus error lines if any window failed).
	Windows int `json:"windows"`
	// Dropped is the total partial windows dropped at the drains.
	Dropped int `json:"dropped,omitempty"`
	// Replays is how many full source replays the run completed.
	Replays int `json:"replays"`
	// EventsPerSec and WindowsPerSec are rates over the whole run.
	EventsPerSec  float64 `json:"events_per_sec"`
	WindowsPerSec float64 `json:"windows_per_sec"`
}

// countingSource counts the events handed out by the wrapped source.
type countingSource struct {
	src EventSource
	n   int
}

func (c *countingSource) Read(buf []Event) (int, error) {
	n, err := c.src.Read(buf)
	c.n += n
	return n, err
}

// lineCountWriter discards result lines, counting them.
type lineCountWriter struct{ n int }

func (w *lineCountWriter) Write(p []byte) (int, error) {
	w.n += bytes.Count(p, []byte{'\n'})
	return len(p), nil
}

// MeasureThroughput measures the event-driven hot path: it replays
// whole streams from newSource through one session each (result lines
// discarded) until at least minWall of wall clock has elapsed, and
// reports event and window rates. newSource returns a fresh source and
// the stream's end time per replay, so every replay does identical
// work. At least one replay always runs.
func (sv *Server) MeasureThroughput(minWall time.Duration, newSource func() (EventSource, int64, error)) (ThroughputReport, error) {
	var rep ThroughputReport
	start := time.Now()
	for {
		src, endUS, err := newSource()
		if err != nil {
			return rep, err
		}
		cs := &countingSource{src: src}
		var w lineCountWriter
		dropped, err := sv.RunSource(context.Background(), cs, endUS, &w)
		if err != nil {
			return rep, err
		}
		rep.Events += cs.n
		rep.Windows += w.n
		rep.Dropped += dropped
		rep.Replays++
		if time.Since(start) >= minWall {
			break
		}
	}
	wall := time.Since(start).Seconds()
	rep.EventsPerSec = float64(rep.Events) / wall
	rep.WindowsPerSec = float64(rep.Windows) / wall
	return rep, nil
}
