package stream

import (
	"testing"
	"time"
)

// TestMeasureThroughput sanity-checks the load harness on the fake
// runner: every replay does the same work and the counters add up.
func TestMeasureThroughput(t *testing.T) {
	evs := []Event{
		{TimeUS: 10, X: 0, Y: 0, Pol: 1},
		{TimeUS: 120, X: 1, Y: 1, Pol: 1},
		{TimeUS: 260, X: 0, Y: 1, Pol: -1},
	}
	sv := newTestServer(t, BinnerConfig{H: 2, W: 2, Steps: 2, WindowUS: 100}, &fakeRunner{})
	rep, err := sv.MeasureThroughput(20*time.Millisecond, func() (EventSource, int64, error) {
		return &sliceSource{evs: evs}, 300, nil
	})
	if err != nil {
		t.Fatalf("MeasureThroughput: %v", err)
	}
	if rep.Replays == 0 {
		t.Fatal("no replays completed")
	}
	if rep.Events != 3*rep.Replays {
		t.Fatalf("counted %d events over %d replays, want %d", rep.Events, rep.Replays, 3*rep.Replays)
	}
	if rep.Windows != 3*rep.Replays { // windows 0,1,2 complete by the drain at 300us
		t.Fatalf("counted %d windows over %d replays, want %d", rep.Windows, rep.Replays, 3*rep.Replays)
	}
	if rep.EventsPerSec <= 0 || rep.WindowsPerSec <= 0 {
		t.Fatalf("non-positive rates: %+v", rep)
	}
}
