package stream

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// Wire protocol of the streaming server: the keepalive variant of the
// serve line protocol. One connection carries many records (one JSON
// object per line) and receives many windowed results — one JSON line
// per completed window as its span closes, plus error and drain lines.

// MaxRecordEvents caps the events one record may carry, bounding what a
// single line can make the parser allocate.
const MaxRecordEvents = 65536

// ErrBadRecord tags malformed records so the session can answer with an
// error line and keep the connection alive.
var ErrBadRecord = errors.New("stream: bad record")

// Record is one client line: an event batch, a stream reset, an
// end-of-stream marker, or any combination (applied in that order:
// reset, events, end). An empty record is a keepalive no-op.
type Record struct {
	// Events holds [t_us, x, y, pol] quads in non-decreasing t_us order.
	Events [][4]int64 `json:"events,omitempty"`
	// Reset drops all session state — open windows and carried membrane —
	// before the record's events are applied.
	Reset bool `json:"reset,omitempty"`
	// EndUS closes the stream at the given time: every window ending at
	// or before it is emitted, later ones are dropped. The session stays
	// open; subsequent events at or after EndUS continue the stream.
	EndUS *int64 `json:"end_us,omitempty"`
}

// WindowResult is one server line: the classification of one completed
// window.
type WindowResult struct {
	// Window is the window index on the hop grid.
	Window  int64 `json:"window"`
	StartUS int64 `json:"t0_us"`
	EndUS   int64 `json:"t1_us"`
	// Events is how many events the window binned.
	Events int       `json:"events"`
	Pred   int       `json:"pred"`
	Logits []float64 `json:"logits"`
}

// ParseRecord strictly decodes one protocol line: unknown fields,
// trailing data, oversized batches and out-of-range fields are all
// rejected with an error wrapping ErrBadRecord — never a panic, whatever
// the bytes (fuzz-enforced).
func ParseRecord(b []byte) (*Record, error) {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var rec Record
	if err := dec.Decode(&rec); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRecord, err)
	}
	var extra json.RawMessage
	if err := dec.Decode(&extra); err != io.EOF {
		return nil, fmt.Errorf("%w: trailing data after record object", ErrBadRecord)
	}
	if len(rec.Events) > MaxRecordEvents {
		return nil, fmt.Errorf("%w: %d events exceeds limit %d", ErrBadRecord, len(rec.Events), MaxRecordEvents)
	}
	for i, q := range rec.Events {
		if q[0] < 0 {
			return nil, fmt.Errorf("%w: event %d has negative time %d", ErrBadRecord, i, q[0])
		}
		if q[1] < 0 || q[1] >= 1<<20 || q[2] < 0 || q[2] >= 1<<20 {
			// No real sensor is a million pixels wide; rejecting here keeps
			// the int64→int conversion below from wrapping on 32-bit ints.
			return nil, fmt.Errorf("%w: event %d coordinates (%d,%d) out of range", ErrBadRecord, i, q[1], q[2])
		}
		if q[3] != 1 && q[3] != -1 {
			return nil, fmt.Errorf("%w: event %d has polarity %d (want +1 or -1)", ErrBadRecord, i, q[3])
		}
	}
	if rec.EndUS != nil && *rec.EndUS < 0 {
		return nil, fmt.Errorf("%w: negative end_us %d", ErrBadRecord, *rec.EndUS)
	}
	return &rec, nil
}

// event converts quad i to an Event. Coordinate range is the binner's
// concern (it knows the sensor geometry); the parser only pins the
// fields that are wrong in any geometry.
func (r *Record) event(i int) Event {
	q := r.Events[i]
	return Event{TimeUS: q[0], X: int(q[1]), Y: int(q[2]), Pol: int(q[3])}
}
