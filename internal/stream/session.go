package stream

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"

	"snnsec/internal/tensor"
)

// Runner is the stateful forward a session drives: serve.StatefulRunner
// in production, fakes in the session tests. Step consumes one window of
// spike planes and returns its logits; a failed Step must leave the
// carried state as if the window never ran.
type Runner interface {
	Step(planes []*tensor.SpikeTensor) (*tensor.Tensor, error)
	Reset()
	Close()
}

// Config tunes a streaming server.
type Config struct {
	// Binner is the window geometry every session uses.
	Binner BinnerConfig
	// MaxLineBytes bounds one input line (default 8 MiB — a full
	// MaxRecordEvents record is ~2 MiB of JSON).
	MaxLineBytes int
}

// Server speaks the streaming line protocol: each connection gets its
// own binner and its own stateful runner, so concurrent sessions are
// independent streams over the same engine.
type Server struct {
	cfg       Config
	newRunner func() (Runner, error)
}

// NewServer validates the window geometry and returns a server that
// builds one runner per session with newRunner.
func NewServer(cfg Config, newRunner func() (Runner, error)) (*Server, error) {
	if newRunner == nil {
		return nil, fmt.Errorf("stream: server needs a runner factory")
	}
	if err := cfg.Binner.validate(); err != nil {
		return nil, err
	}
	if cfg.MaxLineBytes <= 0 {
		cfg.MaxLineBytes = 8 << 20
	}
	return &Server{cfg: cfg, newRunner: newRunner}, nil
}

// session is one connection's state: binner + runner + output encoder.
type session struct {
	binner *Binner
	runner Runner
	carry  bool // tiling windows: membrane state flows across boundaries
	enc    *json.Encoder
	werr   error // first write error; aborts the session
}

func (sv *Server) newSession(w io.Writer) (*session, error) {
	b, err := NewBinner(sv.cfg.Binner)
	if err != nil {
		return nil, err
	}
	r, err := sv.newRunner()
	if err != nil {
		return nil, err
	}
	return &session{
		binner: b,
		runner: r,
		carry:  sv.cfg.Binner.Tiling(),
		enc:    json.NewEncoder(w),
	}, nil
}

// emit classifies one completed window and writes its result line. A
// failed window (fault injection, bad planes) produces an error line and
// the stream continues — the runner's transactional Step guarantees the
// carried state is untouched. Only write errors abort.
func (s *session) emit(w *Window) error {
	defer w.Release()
	metricWindows.Inc()
	if w.Events == 0 {
		metricSilentWindows.Inc()
	}
	if !s.carry {
		// Overlapping or gapped windows double- or under-count time, so
		// carried membrane state would not be a continuous simulation;
		// every window starts fresh instead.
		s.runner.Reset()
	}
	logits, err := s.runner.Step(w.Planes)
	if err != nil {
		metricWindowErrors.Inc()
		return s.writeError(fmt.Errorf("window %d: %w", w.Index, err))
	}
	return s.write(&WindowResult{
		Window:  w.Index,
		StartUS: w.StartUS,
		EndUS:   w.EndUS,
		Events:  w.Events,
		Pred:    tensor.ArgmaxRowsOn(nil, logits)[0],
		Logits:  append([]float64(nil), logits.Data()...),
	})
}

func (s *session) write(v any) error {
	if s.werr == nil {
		s.werr = s.enc.Encode(v)
	}
	return s.werr
}

func (s *session) writeError(err error) error {
	return s.write(map[string]string{"error": err.Error()})
}

// apply processes one parsed record: reset, then events, then drain.
func (s *session) apply(rec *Record) error {
	if rec.Reset {
		s.binner.Reset()
		s.runner.Reset()
	}
	metricEvents.Add(uint64(len(rec.Events)))
	for i := range rec.Events {
		if err := s.binner.Add(rec.event(i), s.emit); err != nil {
			if s.werr != nil {
				return s.werr
			}
			// A rejected event (stale time, off-sensor) skips the rest of
			// the record — later quads are ordered after it and would
			// cascade the same error — but keeps the session alive.
			return s.writeError(err)
		}
		if s.werr != nil {
			return s.werr
		}
	}
	if rec.EndUS != nil {
		dropped, err := s.binner.Drain(*rec.EndUS, s.emit)
		if err != nil {
			if s.werr != nil {
				return s.werr
			}
			return s.writeError(err)
		}
		return s.write(map[string]int{"dropped": dropped})
	}
	return nil
}

// ServeLines runs one streaming session over a byte stream: one Record
// per input line, one WindowResult line per completed window (plus error
// and drain lines), until EOF or ctx cancellation. Cancellation is
// observed between records: the record being processed finishes and its
// windows are answered — the keepalive analogue of the predict drain.
func (sv *Server) ServeLines(ctx context.Context, r io.Reader, w io.Writer) error {
	s, err := sv.newSession(w)
	if err != nil {
		return err
	}
	metricSessions.Add(1)
	defer metricSessions.Add(-1)
	defer s.runner.Close()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), sv.cfg.MaxLineBytes)
	lines := make(chan []byte)
	scanErr := make(chan error, 1)
	go func() {
		defer close(lines)
		for sc.Scan() {
			line := append([]byte(nil), sc.Bytes()...)
			select {
			case lines <- line:
			case <-ctx.Done():
				return
			}
		}
		scanErr <- sc.Err()
	}()
	for {
		var line []byte
		select {
		case <-ctx.Done():
			return nil
		case l, ok := <-lines:
			if !ok {
				select {
				case err := <-scanErr:
					return err
				default:
					// The reader quit because ctx fired mid-handoff.
					return nil
				}
			}
			line = l
		}
		if len(line) == 0 {
			continue
		}
		rec, err := ParseRecord(line)
		if err != nil {
			if werr := s.writeError(err); werr != nil {
				return werr
			}
			continue
		}
		if err := s.apply(rec); err != nil {
			return err
		}
	}
}

// RunSource drives a whole EventSource through one session — the synth
// and benchmark path, no wire protocol on the input side — writing the
// same result lines ServeLines produces. endUS closes the stream
// (usually the source's natural end time). Returns the number of
// partial windows dropped at the drain.
func (sv *Server) RunSource(ctx context.Context, src EventSource, endUS int64, w io.Writer) (int, error) {
	s, err := sv.newSession(w)
	if err != nil {
		return 0, err
	}
	metricSessions.Add(1)
	defer metricSessions.Add(-1)
	defer s.runner.Close()
	buf := make([]Event, 512)
	for {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		n, rerr := src.Read(buf)
		metricEvents.Add(uint64(n))
		for _, ev := range buf[:n] {
			if err := s.binner.Add(ev, s.emit); err != nil {
				if s.werr != nil {
					return 0, s.werr
				}
				return 0, err
			}
			if s.werr != nil {
				return 0, s.werr
			}
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			return 0, rerr
		}
	}
	dropped, err := s.binner.Drain(endUS, s.emit)
	if err != nil {
		if s.werr != nil {
			return 0, s.werr
		}
		return 0, err
	}
	return dropped, s.werr
}
