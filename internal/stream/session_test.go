package stream

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"testing"

	"snnsec/internal/tensor"
)

// fakeRunner records the session's calls and can fail chosen steps.
type fakeRunner struct {
	stepped []int // plane counts per Step call
	resets  int
	closed  bool
	fail    map[int]bool // 1-based Step call numbers to fail
}

func (f *fakeRunner) Step(planes []*tensor.SpikeTensor) (*tensor.Tensor, error) {
	f.stepped = append(f.stepped, len(planes))
	if f.fail[len(f.stepped)] {
		return nil, fmt.Errorf("injected step failure")
	}
	// Logits encode the call number so result lines are distinguishable.
	return tensor.FromSlice([]float64{float64(len(f.stepped)), 0}, 1, 2), nil
}

func (f *fakeRunner) Reset() { f.resets++ }
func (f *fakeRunner) Close() { f.closed = true }

func newTestServer(t *testing.T, cfg BinnerConfig, r *fakeRunner) *Server {
	t.Helper()
	sv, err := NewServer(Config{Binner: cfg}, func() (Runner, error) { return r, nil })
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	return sv
}

// runLines feeds input lines through one session and returns the output
// decoded line by line into generic maps.
func runLines(t *testing.T, sv *Server, input string) []map[string]any {
	t.Helper()
	var out bytes.Buffer
	if err := sv.ServeLines(context.Background(), strings.NewReader(input), &out); err != nil {
		t.Fatalf("ServeLines: %v", err)
	}
	var results []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(out.String()), "\n") {
		if line == "" {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("bad output line %q: %v", line, err)
		}
		results = append(results, m)
	}
	return results
}

// TestServeLinesSession walks the whole protocol surface over a tiling
// session: window results, malformed lines, rejected events, reset and
// drain — all on one connection.
func TestServeLinesSession(t *testing.T) {
	r := &fakeRunner{}
	sv := newTestServer(t, BinnerConfig{H: 2, W: 2, Steps: 2, WindowUS: 100}, r)
	input := strings.Join([]string{
		`{"events":[[10,0,0,1],[60,1,1,1]]}`,    // window 0 fills
		`{"events":[[150,0,1,1]]}`,              // completes window 0
		`{"bogus":true}`,                        // error line, session lives
		`{"events":[[40,0,0,1]]}`,               // stale time: error line
		`{"reset":true,"events":[[430,1,0,1]]}`, // reset, then window 4 opens
		`{"end_us":500}`,                        // drains window 4
		``,                                      // keepalive no-op
	}, "\n")
	out := runLines(t, sv, input)
	if len(out) != 5 {
		t.Fatalf("got %d output lines, want 5: %v", len(out), out)
	}
	if out[0]["window"] != float64(0) || out[0]["events"] != float64(2) || out[0]["pred"] != float64(0) {
		t.Fatalf("window 0 result wrong: %v", out[0])
	}
	if _, ok := out[1]["error"]; !ok {
		t.Fatalf("malformed record should answer an error line, got %v", out[1])
	}
	if _, ok := out[2]["error"]; !ok {
		t.Fatalf("stale event should answer an error line, got %v", out[2])
	}
	if out[3]["window"] != float64(4) || out[3]["events"] != float64(1) {
		t.Fatalf("post-reset window wrong: %v", out[3])
	}
	if out[4]["dropped"] != float64(0) {
		t.Fatalf("drain line wrong: %v", out[4])
	}
	if r.resets != 1 {
		t.Fatalf("runner saw %d resets, want 1", r.resets)
	}
	if len(r.stepped) != 2 || r.stepped[0] != 2 {
		t.Fatalf("runner stepped %v, want two 2-plane windows", r.stepped)
	}
	if !r.closed {
		t.Fatal("session end did not close the runner")
	}
}

// TestServeLinesAutoResetWhenNotTiling pins that overlapping windows
// reset the runner before every window — carried state only composes
// under tiling.
func TestServeLinesAutoResetWhenNotTiling(t *testing.T) {
	r := &fakeRunner{}
	sv := newTestServer(t, BinnerConfig{H: 2, W: 2, Steps: 1, WindowUS: 100, HopUS: 50}, r)
	out := runLines(t, sv, `{"events":[[10,0,0,1]],"end_us":150}`)
	windows := 0
	for _, m := range out {
		if _, ok := m["window"]; ok {
			windows++
		}
	}
	if windows == 0 {
		t.Fatal("no windows emitted")
	}
	if r.resets != windows {
		t.Fatalf("runner saw %d resets for %d windows, want one per window", r.resets, windows)
	}
}

// TestServeLinesWindowFailureContinues pins the failure model at the
// session layer: a failed window answers an error line and the stream
// keeps classifying later windows.
func TestServeLinesWindowFailureContinues(t *testing.T) {
	r := &fakeRunner{fail: map[int]bool{2: true}}
	sv := newTestServer(t, BinnerConfig{H: 2, W: 2, Steps: 1, WindowUS: 100}, r)
	out := runLines(t, sv, `{"events":[[10,0,0,1],[110,0,0,1],[210,0,0,1]],"end_us":300}`)
	if len(out) != 4 { // window 0, error, window 2, dropped
		t.Fatalf("got %d lines, want 4: %v", len(out), out)
	}
	if out[0]["window"] != float64(0) {
		t.Fatalf("first line should be window 0: %v", out[0])
	}
	if _, ok := out[1]["error"]; !ok {
		t.Fatalf("failed window should answer an error line: %v", out[1])
	}
	if out[2]["window"] != float64(2) {
		t.Fatalf("stream should continue with window 2: %v", out[2])
	}
}

// TestRunSourceMatchesServeLines pins that the source-driven path and
// the wire path produce identical window lines for the same events.
func TestRunSourceMatchesServeLines(t *testing.T) {
	evs := []Event{
		{TimeUS: 10, X: 0, Y: 0, Pol: 1},
		{TimeUS: 120, X: 1, Y: 1, Pol: 1},
		{TimeUS: 260, X: 0, Y: 1, Pol: -1},
	}
	cfg := BinnerConfig{H: 2, W: 2, Steps: 2, WindowUS: 100}

	var quads [][]int64
	for _, ev := range evs {
		quads = append(quads, []int64{ev.TimeUS, int64(ev.X), int64(ev.Y), int64(ev.Pol)})
	}
	line, _ := json.Marshal(map[string]any{"events": quads, "end_us": 300})
	wireOut := runLines(t, newTestServer(t, cfg, &fakeRunner{}), string(line))

	var srcBuf bytes.Buffer
	sv := newTestServer(t, cfg, &fakeRunner{})
	dropped, err := sv.RunSource(context.Background(), &sliceSource{evs: evs}, 300, &srcBuf)
	if err != nil {
		t.Fatalf("RunSource: %v", err)
	}
	var srcOut []map[string]any
	for _, l := range strings.Split(strings.TrimSpace(srcBuf.String()), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(l), &m); err != nil {
			t.Fatalf("bad line %q: %v", l, err)
		}
		srcOut = append(srcOut, m)
	}
	// The wire path appends a dropped line; the source path returns it.
	if wireOut[len(wireOut)-1]["dropped"] != float64(dropped) {
		t.Fatalf("dropped mismatch: wire %v vs source %d", wireOut[len(wireOut)-1], dropped)
	}
	wireWindows := wireOut[:len(wireOut)-1]
	if len(wireWindows) != len(srcOut) {
		t.Fatalf("window counts differ: %d vs %d", len(wireWindows), len(srcOut))
	}
	for i := range srcOut {
		if fmt.Sprint(wireWindows[i]) != fmt.Sprint(srcOut[i]) {
			t.Fatalf("window %d differs: %v vs %v", i, wireWindows[i], srcOut[i])
		}
	}
}

// sliceSource replays a fixed event slice one event per Read call —
// deliberately awkward chunking.
type sliceSource struct {
	evs []Event
	i   int
}

func (s *sliceSource) Read(buf []Event) (int, error) {
	if s.i >= len(s.evs) {
		return 0, io.EOF
	}
	buf[0] = s.evs[s.i]
	s.i++
	return 1, nil
}
