// Package stream is the event-driven inference subsystem: it turns an
// asynchronous stream of (t, x, y, polarity) sensor events into
// classifications over a rolling time window, without ever materialising
// a dense input tensor.
//
// The pipeline is three stages. A Binner slices time into overlapping or
// tiling windows of Steps equal slices and scatter-packs each slice's
// events straight into a bit-packed tensor.SpikeTensor plane (the
// tensor.ScatterSpikesInto kernel — the dense encode PackSpikes performs
// never happens, so the sparse spike kernels win at any density). A
// serve.StatefulRunner then advances the fused tape-free LIF/ALIF
// forward one window at a time, carrying membrane and adaptation slabs
// across window boundaries when windows tile (hop == window); windows
// are transactional — a failed window rolls the carried state back and
// fails alone. A Server speaks the streaming variant of the serve line
// protocol: one connection, many windowed results, graceful drain.
//
// Equivalence contract: a single full-window stream run is bit-identical
// at the default precision tier to the batch serve engine (and the taped
// forward) fed the same binned planes through snn.SpikeTrainEncoder, and
// a carried-state run's cumulative logits are bit-identical to a
// from-scratch run over the concatenated windows — pinned by the suite
// in internal/serve/stateful_test.go and equivalence_test.go here.
package stream

// Event is one sensor event: something changed at pixel (X, Y) at
// TimeUS microseconds since stream start, with polarity Pol (+1 ON,
// -1 OFF). Sources yield events in non-decreasing TimeUS order.
type Event struct {
	TimeUS int64
	X, Y   int
	Pol    int
}

// EventSource yields a finite or unbounded event stream in
// non-decreasing time order.
type EventSource interface {
	// Read fills buf with the next events and returns how many it wrote.
	// It returns io.EOF (with n == 0) when the stream has ended, and may
	// return short counts at any time.
	Read(buf []Event) (int, error)
}
