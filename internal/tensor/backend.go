package tensor

import (
	"math"

	"snnsec/internal/compute"
)

// Every kernel in this package executes through a compute.Backend: the
// exported legacy names (MatMul, Conv2D, ...) run on compute.Default(),
// and each has an ...On variant taking an explicit backend. Kernels use a
// fixed, partition-independent computation order — parallel blocks write
// disjoint outputs and accumulate in the same per-element order as the
// serial path — so Serial and Parallel backends produce bit-identical
// results (asserted by equivalence_test.go).

// Grain constants: the minimum amount of per-block work worth dispatching
// to a worker, expressed in loop iterations at each call site.
const (
	// elemGrain is the minimum elements per block for memory-bound
	// elementwise loops.
	elemGrain = 4096
	// opsGrain is the minimum floating-point operations per block for
	// compute-bound kernels (matmul, conv).
	opsGrain = 1 << 15
)

// grainRows converts a per-row operation count into a row grain so each
// parallel block carries at least opsGrain operations.
func grainRows(opsPerRow int) int {
	if opsPerRow <= 0 {
		return 1
	}
	g := opsGrain / opsPerRow
	if g < 1 {
		return 1
	}
	return g
}

// allFinite reports whether s contains no NaN or infinity. The matmul
// kernels use it to gate their zero-skip branch: skipping a zero row of a
// is only sound when b is finite everywhere, because 0·NaN and 0·±Inf
// must propagate NaN into the product.
func allFinite(s []float64) bool {
	for _, v := range s {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// backendOr returns be, or the process default when be is nil.
func backendOr(be compute.Backend) compute.Backend {
	if be == nil {
		return compute.Default()
	}
	return be
}
