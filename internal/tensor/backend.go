package tensor

import (
	"snnsec/internal/compute"
)

// Every kernel in this package executes through a compute.Backend: the
// exported legacy names (MatMul, Conv2D, ...) run on compute.Default(),
// and each has an ...On variant taking an explicit backend. Kernels use a
// fixed, partition-independent computation order — parallel blocks write
// disjoint outputs and accumulate in the same per-element order as the
// serial path — so Serial and Parallel backends produce bit-identical
// results (asserted by equivalence_test.go).

// Grain constants: the minimum amount of per-block work worth dispatching
// to a worker, expressed in loop iterations at each call site.
const (
	// elemGrain is the minimum elements per block for memory-bound
	// elementwise loops.
	elemGrain = 4096
	// opsGrain is the minimum floating-point operations per block for
	// compute-bound kernels (matmul, conv).
	opsGrain = 1 << 15
)

// grainRows converts a per-row operation count into a row grain so each
// parallel block carries at least opsGrain operations.
func grainRows(opsPerRow int) int {
	if opsPerRow <= 0 {
		return 1
	}
	g := opsGrain / opsPerRow
	if g < 1 {
		return 1
	}
	return g
}

// allFinite reports whether s contains no NaN or infinity. The matmul
// and spike kernels use it to gate their zero-skip behaviour: skipping
// a zero coefficient is only sound when the other operand is finite
// everywhere, because 0·NaN and 0·±Inf must propagate NaN into the
// product.
//
// The scan is branch-free: v·0 is ±0 for finite v and NaN for NaN/±Inf,
// and NaN is sticky through addition, so the accumulated sum is +0 iff
// every element is finite (±0 terms cannot turn an accumulator negative
// or non-zero). Four independent accumulators keep the multiply-add
// chains pipelined; the gate runs over whole weight matrices on every
// spike-kernel call, so its throughput shows in BPTT profiles.
func allFinite(s []float64) bool {
	var a0, a1, a2, a3 float64
	i := 0
	for ; i+4 <= len(s); i += 4 {
		v := (*[4]float64)(s[i:])
		a0 += v[0] * 0
		a1 += v[1] * 0
		a2 += v[2] * 0
		a3 += v[3] * 0
	}
	for ; i < len(s); i++ {
		a0 += s[i] * 0
	}
	return a0+a1+a2+a3 == 0
}

// backendOr returns be, or the process default when be is nil.
func backendOr(be compute.Backend) compute.Backend {
	if be == nil {
		return compute.Default()
	}
	return be
}
