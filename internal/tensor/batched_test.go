package tensor

import (
	"math"
	"testing"

	"snnsec/internal/compute"
)

// These tests pin the two PR-level kernel claims bit-for-bit:
//
//   - the cache-blocked matmul micro-kernels produce exactly the floats
//     of the naive reference kernels in naive.go (same ascending-k
//     accumulation per element, same zero-skip decisions);
//   - the batched im2col conv pipeline produces exactly the floats of
//     the per-image reference path (forward, input grad, weight grad,
//     bias grad);
//
// across odd shapes (tile fringes in every dimension), stride/padding
// combinations, and the Serial and Parallel backends.

// blockedBackends covers Serial, a width smaller than most tile counts,
// and a width larger than any tested dimension.
var blockedBackends = []compute.Backend{
	compute.Serial{},
	compute.NewParallel(3),
	compute.NewParallel(16),
}

// sprinkleZeros zeroes every third element so the zero-skip branch fires
// on some rows of some tiles but not others.
func sprinkleZeros(t *Tensor) {
	d := t.Data()
	for i := 0; i < len(d); i += 3 {
		d[i] = 0
	}
}

func TestBlockedMatMulMatchesNaive(t *testing.T) {
	r := NewRand(19, 41)
	ser := compute.Serial{}
	// Shapes straddle the mrTile/nrTile/ncBlock boundaries: exact
	// multiples, one-off fringes, single rows/columns, and a matrix wider
	// than one column panel.
	shapes := []struct{ m, k, n int }{
		{1, 1, 1}, {3, 5, 2}, {4, 4, 4}, {5, 7, 9}, {8, 16, 8},
		{17, 25, 13}, {6, 25, 150}, {33, 65, 129}, {12, 9, 260},
	}
	for _, s := range shapes {
		// dense = false routes the product through the zero-skip scalar
		// tiles; dense = true keeps rows zero-free so full tiles take the
		// AVX micro-kernel (where the CPU has one) — both must reproduce
		// the naive floats exactly.
		for _, dense := range []bool{false, true} {
			a := RandN(r, 0, 1, s.m, s.k)
			b := RandN(r, 0, 1, s.k, s.n)
			if !dense {
				sprinkleZeros(a)
			}
			want := MatMulNaiveOn(ser, a, b)
			wantATB := New(s.m, s.n)
			at := Transpose2D(a)
			matMulATBNaiveInto(ser, wantATB.data, at.data, b.data, s.k, s.m, s.n, true)
			wantABT := New(s.m, s.n)
			bt := Transpose2D(b)
			matMulABTNaiveInto(ser, wantABT.data, a.data, bt.data, s.m, s.k, s.n)
			for _, be := range blockedBackends {
				assertIdentical(t, "blocked MatMul", want, MatMulOn(be, a, b))
				assertIdentical(t, "blocked MatMulATB", wantATB, MatMulATBOn(be, at, b))
				assertIdentical(t, "blocked MatMulABT", wantABT, MatMulABTOn(be, a, bt))
			}
		}
	}
}

// TestBlockedMatMulMixedRowBlocks zeroes entire rows of a so adjacent row
// blocks of one product take different paths (zero-skip scalar vs AVX)
// and still agree with the naive kernel.
func TestBlockedMatMulMixedRowBlocks(t *testing.T) {
	r := NewRand(31, 53)
	ser := compute.Serial{}
	a := RandN(r, 0, 1, 11, 9)
	b := RandN(r, 0, 1, 9, 21)
	for i := 4; i < 8; i++ { // second row block gets the zeros
		for j := 0; j < 9; j += 2 {
			a.Set(0, i, j)
		}
	}
	want := MatMulNaiveOn(ser, a, b)
	for _, be := range blockedBackends {
		assertIdentical(t, "mixed row blocks", want, MatMulOn(be, a, b))
	}
}

// TestBlockedMatMulNaNPropagation re-pins the PR-1 finiteness gate on the
// blocked kernels: a NaN or Inf in b must poison the product even where
// a's coefficient is zero (0·NaN is NaN), in full tiles and in fringes.
func TestBlockedMatMulNaNPropagation(t *testing.T) {
	for _, m := range []int{4, 5} { // full tile and row fringe
		a := New(m, 2)
		// Row 0 of a is all zeros; rows beyond stay zero too.
		b := FromSlice([]float64{math.NaN(), 1, 2, 3}, 2, 2)
		for _, be := range blockedBackends {
			out := MatMulOn(be, a, b)
			if !math.IsNaN(out.At(0, 0)) {
				t.Fatalf("m=%d: blocked MatMul swallowed NaN: got %v", m, out.At(0, 0))
			}
			outATB := MatMulATBOn(be, Transpose2D(a), b)
			if !math.IsNaN(outATB.At(0, 0)) {
				t.Fatalf("m=%d: blocked MatMulATB swallowed NaN: got %v", m, outATB.At(0, 0))
			}
		}
	}
}

// convCases stresses the batched pipeline's slab arithmetic: batch sizes
// around the worker count, odd spatial sizes, strides > 1, zero and
// asymmetric-looking paddings, and multi-channel inputs.
var convCases = []struct {
	n, c, h, w, f, k int
	p                ConvParams
}{
	{1, 1, 5, 5, 1, 3, ConvParams{Stride: 1, Padding: 1}},
	{2, 3, 7, 9, 4, 3, ConvParams{Stride: 2, Padding: 1}},
	{3, 1, 16, 16, 6, 5, ConvParams{Stride: 1, Padding: 0}},
	{5, 2, 8, 8, 3, 5, ConvParams{Stride: 1, Padding: 2}},
	{7, 2, 9, 7, 5, 3, ConvParams{Stride: 3, Padding: 2}},
	{16, 1, 11, 11, 6, 5, ConvParams{Stride: 2, Padding: 2}},
	// Kernel wider than the padded-row overlap on some taps (kw > w+1
	// with this padding): the stride-1 im2col fast path must clamp its
	// copy interval to an empty range instead of panicking.
	{2, 1, 1, 1, 2, 5, ConvParams{Stride: 1, Padding: 2}},
	{2, 2, 3, 2, 3, 5, ConvParams{Stride: 1, Padding: 2}},
}

func TestBatchedConvMatchesPerImage(t *testing.T) {
	r := NewRand(23, 43)
	ser := compute.Serial{}
	for _, cs := range convCases {
		x := RandN(r, 0, 1, cs.n, cs.c, cs.h, cs.w)
		wt := RandN(r, 0, 1, cs.f, cs.c, cs.k, cs.k)
		bias := RandN(r, 0, 1, cs.f)
		oh := cs.p.ConvOutSize(cs.h, cs.k)
		ow := cs.p.ConvOutSize(cs.w, cs.k)
		gout := RandN(r, 0, 1, cs.n, cs.f, oh, ow)

		want := Conv2DPerImageOn(ser, x, wt, bias, cs.p)
		wantNoBias := Conv2DPerImageOn(ser, x, wt, nil, cs.p)
		wdx, wdw, wdb := Conv2DBackwardPerImageOn(ser, x, wt, gout, cs.p, true)
		for _, be := range blockedBackends {
			assertIdentical(t, "batched Conv2D", want, Conv2DOn(be, x, wt, bias, cs.p))
			assertIdentical(t, "batched Conv2D no-bias", wantNoBias, Conv2DOn(be, x, wt, nil, cs.p))
			dx, dw, db := Conv2DBackwardOn(be, x, wt, gout, cs.p, true)
			assertIdentical(t, "batched Conv2DBackward dx", wdx, dx)
			assertIdentical(t, "batched Conv2DBackward dw", wdw, dw)
			assertIdentical(t, "batched Conv2DBackward db", wdb, db)
			dxn, dwn, dbn := Conv2DBackwardOn(be, x, wt, gout, cs.p, false)
			assertIdentical(t, "batched Conv2DBackward dx no-bias", wdx, dxn)
			assertIdentical(t, "batched Conv2DBackward dw no-bias", wdw, dwn)
			if dbn != nil {
				t.Fatalf("batched Conv2DBackward returned dbias without hasBias")
			}
		}
	}
}

// TestBatchedIm2ColSlabLayout pins the batch-wide column-matrix layout:
// image i's slab of the batched expansion must equal the single-image
// Im2Col of image i, column-shifted by i·OH·OW.
func TestBatchedIm2ColSlabLayout(t *testing.T) {
	r := NewRand(29, 47)
	const n, c, h, w, k = 3, 2, 6, 7, 3
	p := ConvParams{Stride: 2, Padding: 1}
	x := RandN(r, 0, 1, n, c, h, w)
	oh, ow := p.ConvOutSize(h, k), p.ConvOutSize(w, k)
	ckk := c * k * k
	batched := make([]float64, ckk*n*oh*ow)
	im2colBatchInto(compute.Serial{}, batched, x.Data(), n, c, h, w, k, k, p)
	for i := 0; i < n; i++ {
		col := Im2Col(x.Slice(i), k, k, p)
		for rr := 0; rr < ckk; rr++ {
			for j := 0; j < oh*ow; j++ {
				got := batched[rr*n*oh*ow+i*oh*ow+j]
				if want := col.At(rr, j); got != want {
					t.Fatalf("slab image %d row %d col %d: %v vs %v", i, rr, j, got, want)
				}
			}
		}
	}
}
