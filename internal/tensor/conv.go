package tensor

import (
	"fmt"

	"snnsec/internal/compute"
)

// Convolution runs as a batched im2col pipeline: the whole batch
// [N,C,H,W] is expanded into one pooled column matrix of shape
// [C·KH·KW, N·OH·OW] (each image owns a contiguous slab of columns), and
// each conv product — forward, input gradient, weight gradient — is one
// matmul over that matrix instead of one per image. The batch-wide
// matrices give the blocked matmul micro-kernel long rows to tile and
// give ParallelFor batch-sized index spaces to partition, and all scratch
// (column matrix, product matrix, gradient partials) comes from the
// backend's buffer pool. The pre-batching per-image path is retained in
// naive.go as the bit-identical reference.

// ConvParams describes a 2-D convolution: kernel size, stride and symmetric
// zero padding.
type ConvParams struct {
	Stride  int
	Padding int
}

// ConvOutSize returns the output spatial size for an input of size in with
// kernel k under p.
func (p ConvParams) ConvOutSize(in, k int) int {
	return (in+2*p.Padding-k)/p.Stride + 1
}

func (p ConvParams) validate() {
	if p.Stride <= 0 {
		panic(fmt.Sprintf("tensor: conv stride must be positive, got %d", p.Stride))
	}
	if p.Padding < 0 {
		panic(fmt.Sprintf("tensor: conv padding must be non-negative, got %d", p.Padding))
	}
}

// convShapes validates a conv call and returns the unpacked dimensions.
// bias may be nil (then unchecked).
func convShapes(name string, x, weight, bias *Tensor, p ConvParams) (n, c, h, w, f, kh, kw int) {
	p.validate()
	if x.Dims() != 4 || weight.Dims() != 4 {
		panic(fmt.Sprintf("tensor: %s needs 4-d x and weight, got %v, %v", name, x.shape, weight.shape))
	}
	n, c, h, w = x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	var cw int
	f, cw, kh, kw = weight.shape[0], weight.shape[1], weight.shape[2], weight.shape[3]
	if c != cw {
		panic(fmt.Sprintf("tensor: %s channel mismatch x=%v weight=%v", name, x.shape, weight.shape))
	}
	if bias != nil && !bias.ShapeEquals(f) {
		panic(fmt.Sprintf("tensor: %s bias shape %v, want [%d]", name, bias.shape, f))
	}
	if p.ConvOutSize(h, kh) <= 0 || p.ConvOutSize(w, kw) <= 0 {
		panic(fmt.Sprintf("tensor: %s non-positive output for input %v kernel %dx%d", name, x.shape, kh, kw))
	}
	return n, c, h, w, f, kh, kw
}

func checkGoutShape(name string, gout *Tensor, n, f, oh, ow int) {
	if !gout.ShapeEquals(n, f, oh, ow) {
		panic(fmt.Sprintf("tensor: %s gout shape %v, want [%d %d %d %d]", name, gout.shape, n, f, oh, ow))
	}
}

// Im2Col expands one image [C,H,W] into a column matrix [C*KH*KW, OH*OW]
// for convolution with kernel (kh, kw) under p. Out-of-bounds taps are
// zero. It is a thin single-image wrapper over the batched expansion.
func Im2Col(img *Tensor, kh, kw int, p ConvParams) *Tensor {
	return Im2ColOn(nil, img, kh, kw, p)
}

// Im2ColOn is Im2Col on an explicit backend (nil selects the default).
func Im2ColOn(be compute.Backend, img *Tensor, kh, kw int, p ConvParams) *Tensor {
	p.validate()
	if img.Dims() != 3 {
		panic(fmt.Sprintf("tensor: Im2Col needs [C,H,W], got %v", img.shape))
	}
	c, h, w := img.shape[0], img.shape[1], img.shape[2]
	oh, ow := p.ConvOutSize(h, kh), p.ConvOutSize(w, kw)
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("tensor: Im2Col non-positive output %dx%d for input %v kernel %dx%d", oh, ow, img.shape, kh, kw))
	}
	col := New(c*kh*kw, oh*ow)
	im2colBatchInto(backendOr(be), col.data, img.data, 1, c, h, w, kh, kw, p)
	return col
}

// im2colBatchInto expands the batch x [n,c,h,w] into dst, the batch-wide
// column matrix [c*kh*kw, n*oh*ow] in which image i owns the contiguous
// column slab [i*oh*ow, (i+1)*oh*ow). Every element is written
// (out-of-bounds taps become explicit zeros), so dst may be a reused
// pooled buffer. (row, image) pairs are partitioned across workers; each
// pair's slab is written by exactly one block.
func im2colBatchInto(be compute.Backend, dst, x []float64, n, c, h, w, kh, kw int, p ConvParams) {
	oh, ow := p.ConvOutSize(h, kh), p.ConvOutSize(w, kw)
	ohow := oh * ow
	rows := c * kh * kw
	be.ParallelFor(rows*n, grainRows(ohow), func(lo, hi int) {
		for idx := lo; idx < hi; idx++ {
			r, i := idx/n, idx%n
			ci := r / (kh * kw)
			ki := (r / kw) % kh
			kj := r % kw
			img := x[i*c*h*w : (i+1)*c*h*w]
			row := dst[r*n*ohow+i*ohow : r*n*ohow+(i+1)*ohow]
			// For stride 1 the valid ox range is a single interval and the
			// taps are consecutive input pixels, so each output row is a
			// zero prefix, one copy, and a zero suffix.
			oxlo, oxhi := 0, 0
			if p.Stride == 1 {
				oxlo = min(ow, max(0, p.Padding-kj))
				oxhi = max(oxlo, min(ow, w+p.Padding-kj))
			}
			for oy := 0; oy < oh; oy++ {
				iy := oy*p.Stride + ki - p.Padding
				seg := row[oy*ow : (oy+1)*ow]
				if iy < 0 || iy >= h {
					for ox := range seg {
						seg[ox] = 0
					}
					continue
				}
				srcRow := img[(ci*h+iy)*w : (ci*h+iy+1)*w]
				if p.Stride == 1 {
					for ox := 0; ox < oxlo; ox++ {
						seg[ox] = 0
					}
					if oxhi > oxlo { // empty interval: src index may be out of range
						copy(seg[oxlo:oxhi], srcRow[oxlo+kj-p.Padding:])
					}
					for ox := oxhi; ox < ow; ox++ {
						seg[ox] = 0
					}
					continue
				}
				for ox := 0; ox < ow; ox++ {
					ix := ox*p.Stride + kj - p.Padding
					if ix >= 0 && ix < w {
						seg[ox] = srcRow[ix]
					} else {
						seg[ox] = 0
					}
				}
			}
		}
	})
}

// Col2Im scatters a column matrix [C*KH*KW, OH*OW] back into an image
// gradient [C,H,W], accumulating overlapping taps. It is the adjoint of
// Im2Col.
func Col2Im(col *Tensor, c, h, w, kh, kw int, p ConvParams) *Tensor {
	return Col2ImOn(nil, col, c, h, w, kh, kw, p)
}

// Col2ImOn is Col2Im on an explicit backend (nil selects the default).
func Col2ImOn(be compute.Backend, col *Tensor, c, h, w, kh, kw int, p ConvParams) *Tensor {
	p.validate()
	oh, ow := p.ConvOutSize(h, kh), p.ConvOutSize(w, kw)
	if !col.ShapeEquals(c*kh*kw, oh*ow) {
		panic(fmt.Sprintf("tensor: Col2Im shape %v does not match c=%d h=%d w=%d k=%dx%d", col.shape, c, h, w, kh, kw))
	}
	img := New(c, h, w)
	col2imAddInto(backendOr(be), img.data, col.data, oh*ow, c, h, w, kh, kw, p)
	return img
}

// col2imAddInto accumulates a column matrix into the image gradient dst
// (len c*h*w). The matrix's c*kh*kw rows of length oh*ow start at
// multiples of ldcol within col, so one image's column slab of the
// batch-wide matrix can be scattered in place (pass ldcol = n*oh*ow and
// col offset i*oh*ow); for a contiguous single-image matrix pass
// ldcol = oh*ow. Overlapping taps land within a single channel, so the
// scatter is partitioned across channels; within a channel the
// accumulation order matches the serial kernel.
func col2imAddInto(be compute.Backend, dst, col []float64, ldcol int, c, h, w, kh, kw int, p ConvParams) {
	oh, ow := p.ConvOutSize(h, kh), p.ConvOutSize(w, kw)
	be.ParallelFor(c, grainRows(kh*kw*oh*ow), func(clo, chi int) {
		for ci := clo; ci < chi; ci++ {
			for ki := 0; ki < kh; ki++ {
				for kj := 0; kj < kw; kj++ {
					r := (ci*kh+ki)*kw + kj
					src := col[r*ldcol : r*ldcol+oh*ow]
					// The valid ox range for this kj is one interval:
					// 0 ≤ ox·stride + kj − padding < w. Hoisting it out
					// of the inner loop removes the per-tap bounds
					// tests; the adds themselves keep their (oy, ox)
					// order, so the accumulation is unchanged.
					oxlo := 0
					if num := p.Padding - kj; num > 0 {
						oxlo = (num + p.Stride - 1) / p.Stride
					}
					oxhi := 0
					if num := w - 1 + p.Padding - kj; num >= 0 {
						oxhi = min(ow, num/p.Stride+1)
					}
					for oy := 0; oy < oh; oy++ {
						iy := oy*p.Stride + ki - p.Padding
						if iy < 0 || iy >= h {
							continue
						}
						dstRow := dst[(ci*h+iy)*w : (ci*h+iy+1)*w]
						base := oy * ow
						ix := oxlo*p.Stride + kj - p.Padding
						for ox := oxlo; ox < oxhi; ox++ {
							dstRow[ix] += src[base+ox]
							ix += p.Stride
						}
					}
				}
			}
		}
	})
}

// Conv2D computes a batched 2-D convolution (cross-correlation, as in deep
// learning frameworks). x is [N,C,H,W], weight is [F,C,KH,KW], bias is [F]
// or nil. The result is [N,F,OH,OW].
func Conv2D(x, weight, bias *Tensor, p ConvParams) *Tensor {
	return Conv2DOn(nil, x, weight, bias, p)
}

// Conv2DOn is Conv2D on an explicit backend (nil selects the default).
// The whole batch is expanded into one pooled column matrix and convolved
// with a single blocked matmul [F, C·KH·KW]·[C·KH·KW, N·OH·OW]; a final
// scatter pass reorders the product into the [N,F,OH,OW] output layout
// and folds in the bias. Bit-identical to the per-image reference
// Conv2DPerImageOn.
func Conv2DOn(be compute.Backend, x, weight, bias *Tensor, p ConvParams) *Tensor {
	n, c, h, w, f, kh, kw := convShapes("Conv2D", x, weight, bias, p)
	be = backendOr(be)
	oh, ow := p.ConvOutSize(h, kh), p.ConvOutSize(w, kw)
	ohow := oh * ow
	ckk := c * kh * kw
	cols := n * ohow
	wmat := weight.data // [f, ckk] row-major, same layout as the reshape
	out := New(n, f, oh, ow)
	col := be.Get(ckk * cols)
	defer be.Put(col)
	im2colBatchInto(be, col, x.data, n, c, h, w, kh, kw, p)
	prod := be.Get(f * cols)
	defer be.Put(prod)
	clear(prod) // matMulInto accumulates; the pooled buffer is dirty
	// skipZero off: the weight matrix is dense, so the zero-skip would
	// almost never fire and its allFinite scan of the im2col buffer is
	// pure overhead on the conv hot path.
	matMulInto(be, prod, wmat, col, f, ckk, cols, false)
	be.ParallelFor(n*f, grainRows(ohow), func(lo, hi int) {
		for idx := lo; idx < hi; idx++ {
			i, fi := idx/f, idx%f
			src := prod[fi*cols+i*ohow : fi*cols+(i+1)*ohow]
			dst := out.data[idx*ohow : (idx+1)*ohow]
			if bias != nil {
				bv := bias.data[fi]
				for j, v := range src {
					dst[j] = v + bv
				}
			} else {
				copy(dst, src)
			}
		}
	})
	return out
}

// Conv2DBackward computes the gradients of a Conv2D call given the upstream
// gradient gout [N,F,OH,OW]. It returns (dx, dweight, dbias); dbias is nil
// when hasBias is false.
func Conv2DBackward(x, weight, gout *Tensor, p ConvParams, hasBias bool) (dx, dweight, dbias *Tensor) {
	return Conv2DBackwardOn(nil, x, weight, gout, p, hasBias)
}

// Conv2DBackwardOn is Conv2DBackward on an explicit backend (nil selects
// the default). The batch-wide column matrix is built once and shared by
// both gradient products: the input gradient is one blocked
// Wᵀ·G matmul over the whole batch scattered back image by image
// (disjoint dx rows), and the weight gradient is one pooled partial
// product per image — computed in place on the image's column slab —
// merged in image order after the parallel phase, so the result is
// independent of the partitioning. Bit-identical to the per-image
// reference Conv2DBackwardPerImageOn.
func Conv2DBackwardOn(be compute.Backend, x, weight, gout *Tensor, p ConvParams, hasBias bool) (dx, dweight, dbias *Tensor) {
	n, c, h, w, f, kh, kw := convShapes("Conv2DBackward", x, weight, nil, p)
	be = backendOr(be)
	oh, ow := p.ConvOutSize(h, kh), p.ConvOutSize(w, kw)
	checkGoutShape("Conv2DBackward", gout, n, f, oh, ow)
	ohow := oh * ow
	ckk := c * kh * kw
	cols := n * ohow
	chw := c * h * w
	wmat := weight.data // [f, ckk] row-major
	dx = New(n, c, h, w)
	dwmat := New(f, ckk)
	if hasBias {
		dbias = New(f)
	}
	col := be.Get(ckk * cols)
	defer be.Put(col)
	im2colBatchInto(be, col, x.data, n, c, h, w, kh, kw, p)
	// gbig is gout reordered to the column-matrix layout [f, n*ohow] so
	// the input gradient is a single aᵀ·b product over the whole batch.
	gbig := be.Get(f * cols)
	defer be.Put(gbig)
	be.ParallelFor(n*f, grainRows(ohow), func(lo, hi int) {
		for idx := lo; idx < hi; idx++ {
			i, fi := idx/f, idx%f
			copy(gbig[fi*cols+i*ohow:fi*cols+(i+1)*ohow], gout.data[idx*ohow:(idx+1)*ohow])
		}
	})
	// dcol = Wᵀ · G for the whole batch, scattered back into dx below.
	dcol := be.Get(ckk * cols)
	defer be.Put(dcol)
	clear(dcol)
	matMulATBInto(be, dcol, wmat, gbig, f, ckk, cols, false)
	// dwPartials[i] is image i's contribution g_i·col_iᵀ, merged below.
	dwPartials := make([][]float64, n)
	be.ParallelFor(n, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			col2imAddInto(be, dx.data[i*chw:(i+1)*chw], dcol[i*ohow:], cols, c, h, w, kh, kw, p)
			dw := be.Get(f * ckk)
			matMulABTInto(be, dw, gout.data[i*f*ohow:(i+1)*f*ohow], col[i*ohow:], f, ohow, ckk, cols)
			dwPartials[i] = dw
		}
	})
	for _, dw := range dwPartials {
		for j, v := range dw {
			dwmat.data[j] += v
		}
		be.Put(dw)
	}
	if hasBias {
		convBiasGradInto(dbias.data, gout.data, n, f, ohow)
	}
	dweight = dwmat.Reshape(f, c, kh, kw)
	return dx, dweight, dbias
}

// convBiasGradInto accumulates the bias gradient — the per-filter sum of
// gout — serially in image order so the result does not depend on the
// backend's partitioning.
func convBiasGradInto(dbias, gout []float64, n, f, ohow int) {
	for i := 0; i < n; i++ {
		g := gout[i*f*ohow : (i+1)*f*ohow]
		for fi := 0; fi < f; fi++ {
			seg := g[fi*ohow : (fi+1)*ohow]
			var s float64
			for _, v := range seg {
				s += v
			}
			dbias[fi] += s
		}
	}
}
