package tensor

import (
	"fmt"

	"snnsec/internal/compute"
)

// ConvParams describes a 2-D convolution: kernel size, stride and symmetric
// zero padding.
type ConvParams struct {
	Stride  int
	Padding int
}

// ConvOutSize returns the output spatial size for an input of size in with
// kernel k under p.
func (p ConvParams) ConvOutSize(in, k int) int {
	return (in+2*p.Padding-k)/p.Stride + 1
}

func (p ConvParams) validate() {
	if p.Stride <= 0 {
		panic(fmt.Sprintf("tensor: conv stride must be positive, got %d", p.Stride))
	}
	if p.Padding < 0 {
		panic(fmt.Sprintf("tensor: conv padding must be non-negative, got %d", p.Padding))
	}
}

// Im2Col expands one image [C,H,W] into a column matrix [C*KH*KW, OH*OW]
// for convolution with kernel (kh, kw) under p. Out-of-bounds taps are
// zero.
func Im2Col(img *Tensor, kh, kw int, p ConvParams) *Tensor {
	return Im2ColOn(nil, img, kh, kw, p)
}

// Im2ColOn is Im2Col on an explicit backend (nil selects the default).
func Im2ColOn(be compute.Backend, img *Tensor, kh, kw int, p ConvParams) *Tensor {
	p.validate()
	if img.Dims() != 3 {
		panic(fmt.Sprintf("tensor: Im2Col needs [C,H,W], got %v", img.shape))
	}
	c, h, w := img.shape[0], img.shape[1], img.shape[2]
	oh, ow := p.ConvOutSize(h, kh), p.ConvOutSize(w, kw)
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("tensor: Im2Col non-positive output %dx%d for input %v kernel %dx%d", oh, ow, img.shape, kh, kw))
	}
	col := New(c*kh*kw, oh*ow)
	im2colInto(backendOr(be), col.data, img.data, c, h, w, kh, kw, p)
	return col
}

// im2colInto expands img [c,h,w] into dst (len c*kh*kw*oh*ow), writing
// every element (out-of-bounds taps become explicit zeros), so dst may be
// a reused pooled buffer. Column-matrix rows are partitioned across
// workers; each row is written by exactly one block.
func im2colInto(be compute.Backend, dst, img []float64, c, h, w, kh, kw int, p ConvParams) {
	oh, ow := p.ConvOutSize(h, kh), p.ConvOutSize(w, kw)
	rows := c * kh * kw
	be.ParallelFor(rows, grainRows(oh*ow), func(lo, hi int) {
		for r := lo; r < hi; r++ {
			ci := r / (kh * kw)
			ki := (r / kw) % kh
			kj := r % kw
			row := dst[r*oh*ow : (r+1)*oh*ow]
			for oy := 0; oy < oh; oy++ {
				iy := oy*p.Stride + ki - p.Padding
				seg := row[oy*ow : (oy+1)*ow]
				if iy < 0 || iy >= h {
					for ox := range seg {
						seg[ox] = 0
					}
					continue
				}
				srcRow := img[(ci*h+iy)*w : (ci*h+iy+1)*w]
				for ox := 0; ox < ow; ox++ {
					ix := ox*p.Stride + kj - p.Padding
					if ix >= 0 && ix < w {
						seg[ox] = srcRow[ix]
					} else {
						seg[ox] = 0
					}
				}
			}
		}
	})
}

// Col2Im scatters a column matrix [C*KH*KW, OH*OW] back into an image
// gradient [C,H,W], accumulating overlapping taps. It is the adjoint of
// Im2Col.
func Col2Im(col *Tensor, c, h, w, kh, kw int, p ConvParams) *Tensor {
	return Col2ImOn(nil, col, c, h, w, kh, kw, p)
}

// Col2ImOn is Col2Im on an explicit backend (nil selects the default).
func Col2ImOn(be compute.Backend, col *Tensor, c, h, w, kh, kw int, p ConvParams) *Tensor {
	p.validate()
	oh, ow := p.ConvOutSize(h, kh), p.ConvOutSize(w, kw)
	if !col.ShapeEquals(c*kh*kw, oh*ow) {
		panic(fmt.Sprintf("tensor: Col2Im shape %v does not match c=%d h=%d w=%d k=%dx%d", col.shape, c, h, w, kh, kw))
	}
	img := New(c, h, w)
	col2imAddInto(backendOr(be), img.data, col.data, c, h, w, kh, kw, p)
	return img
}

// col2imAddInto accumulates the column matrix col into the image gradient
// dst (len c*h*w). Overlapping taps land within a single channel, so the
// scatter is partitioned across channels; within a channel the
// accumulation order matches the serial kernel.
func col2imAddInto(be compute.Backend, dst, col []float64, c, h, w, kh, kw int, p ConvParams) {
	oh, ow := p.ConvOutSize(h, kh), p.ConvOutSize(w, kw)
	be.ParallelFor(c, grainRows(kh*kw*oh*ow), func(clo, chi int) {
		for ci := clo; ci < chi; ci++ {
			for ki := 0; ki < kh; ki++ {
				for kj := 0; kj < kw; kj++ {
					r := (ci*kh+ki)*kw + kj
					src := col[r*oh*ow : (r+1)*oh*ow]
					for oy := 0; oy < oh; oy++ {
						iy := oy*p.Stride + ki - p.Padding
						if iy < 0 || iy >= h {
							continue
						}
						dstRow := dst[(ci*h+iy)*w : (ci*h+iy+1)*w]
						base := oy * ow
						for ox := 0; ox < ow; ox++ {
							ix := ox*p.Stride + kj - p.Padding
							if ix >= 0 && ix < w {
								dstRow[ix] += src[base+ox]
							}
						}
					}
				}
			}
		}
	})
}

// Conv2D computes a batched 2-D convolution (cross-correlation, as in deep
// learning frameworks). x is [N,C,H,W], weight is [F,C,KH,KW], bias is [F]
// or nil. The result is [N,F,OH,OW].
func Conv2D(x, weight, bias *Tensor, p ConvParams) *Tensor {
	return Conv2DOn(nil, x, weight, bias, p)
}

// Conv2DOn is Conv2D on an explicit backend (nil selects the default).
// Images are partitioned across workers and each worker draws its im2col
// scratch matrix from the backend's buffer pool instead of allocating.
func Conv2DOn(be compute.Backend, x, weight, bias *Tensor, p ConvParams) *Tensor {
	p.validate()
	if x.Dims() != 4 || weight.Dims() != 4 {
		panic(fmt.Sprintf("tensor: Conv2D needs 4-d x and weight, got %v, %v", x.shape, weight.shape))
	}
	n, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	f, cw, kh, kw := weight.shape[0], weight.shape[1], weight.shape[2], weight.shape[3]
	if c != cw {
		panic(fmt.Sprintf("tensor: Conv2D channel mismatch x=%v weight=%v", x.shape, weight.shape))
	}
	if bias != nil && !bias.ShapeEquals(f) {
		panic(fmt.Sprintf("tensor: Conv2D bias shape %v, want [%d]", bias.shape, f))
	}
	be = backendOr(be)
	oh, ow := p.ConvOutSize(h, kh), p.ConvOutSize(w, kw)
	ckk := c * kh * kw
	wmat := weight.data // [f, ckk] row-major, same layout as the reshape
	out := New(n, f, oh, ow)
	be.ParallelFor(n, 1, func(lo, hi int) {
		col := be.Get(ckk * oh * ow)
		defer be.Put(col)
		for i := lo; i < hi; i++ {
			img := x.data[i*c*h*w : (i+1)*c*h*w]
			im2colInto(be, col, img, c, h, w, kh, kw, p)
			dst := out.data[i*f*oh*ow : (i+1)*f*oh*ow]
			// skipZero off: the weight matrix is dense, so the zero-skip
			// would almost never fire and its allFinite scan of the im2col
			// buffer is pure overhead on the conv hot path.
			matMulInto(be, dst, wmat, col, f, ckk, oh*ow, false)
			if bias != nil {
				for fi := 0; fi < f; fi++ {
					b := bias.data[fi]
					seg := dst[fi*oh*ow : (fi+1)*oh*ow]
					for j := range seg {
						seg[j] += b
					}
				}
			}
		}
	})
	return out
}

// Conv2DBackward computes the gradients of a Conv2D call given the upstream
// gradient gout [N,F,OH,OW]. It returns (dx, dweight, dbias); dbias is nil
// when hasBias is false.
func Conv2DBackward(x, weight, gout *Tensor, p ConvParams, hasBias bool) (dx, dweight, dbias *Tensor) {
	return Conv2DBackwardOn(nil, x, weight, gout, p, hasBias)
}

// Conv2DBackwardOn is Conv2DBackward on an explicit backend (nil selects
// the default). Images are partitioned across workers: dx rows are
// disjoint per image, while the weight gradient is computed as one pooled
// partial product per image and merged in image order after the parallel
// phase, so the result is independent of the partitioning.
func Conv2DBackwardOn(be compute.Backend, x, weight, gout *Tensor, p ConvParams, hasBias bool) (dx, dweight, dbias *Tensor) {
	p.validate()
	be = backendOr(be)
	if x.Dims() != 4 || weight.Dims() != 4 {
		panic(fmt.Sprintf("tensor: Conv2DBackward needs 4-d x and weight, got %v, %v", x.shape, weight.shape))
	}
	n, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	f, cw, kh, kw := weight.shape[0], weight.shape[1], weight.shape[2], weight.shape[3]
	if c != cw {
		panic(fmt.Sprintf("tensor: Conv2DBackward channel mismatch x=%v weight=%v", x.shape, weight.shape))
	}
	oh, ow := p.ConvOutSize(h, kh), p.ConvOutSize(w, kw)
	if !gout.ShapeEquals(n, f, oh, ow) {
		panic(fmt.Sprintf("tensor: Conv2DBackward gout shape %v, want [%d %d %d %d]", gout.shape, n, f, oh, ow))
	}
	ckk := c * kh * kw
	wmat := weight.data // [f, ckk] row-major
	dx = New(n, c, h, w)
	dwmat := New(f, ckk)
	if hasBias {
		dbias = New(f)
	}
	// dwPartials[i] is image i's contribution g_i·col_iᵀ, merged below.
	dwPartials := make([][]float64, n)
	be.ParallelFor(n, 1, func(lo, hi int) {
		col := be.Get(ckk * oh * ow)
		dcol := be.Get(ckk * oh * ow)
		defer be.Put(col)
		defer be.Put(dcol)
		for i := lo; i < hi; i++ {
			img := x.data[i*c*h*w : (i+1)*c*h*w]
			im2colInto(be, col, img, c, h, w, kh, kw, p)
			g := gout.data[i*f*oh*ow : (i+1)*f*oh*ow]
			// dW_i = g · colᵀ into a pooled per-image partial.
			dw := be.Get(f * ckk)
			matMulABTInto(be, dw, g, col, f, oh*ow, ckk)
			dwPartials[i] = dw
			// dcol = Wᵀ · g, scattered back into dx.
			clear(dcol)
			matMulATBInto(be, dcol, wmat, g, f, ckk, oh*ow, false)
			col2imAddInto(be, dx.data[i*c*h*w:(i+1)*c*h*w], dcol, c, h, w, kh, kw, p)
		}
	})
	for _, dw := range dwPartials {
		for j, v := range dw {
			dwmat.data[j] += v
		}
		be.Put(dw)
	}
	if hasBias {
		for i := 0; i < n; i++ {
			g := gout.data[i*f*oh*ow : (i+1)*f*oh*ow]
			for fi := 0; fi < f; fi++ {
				seg := g[fi*oh*ow : (fi+1)*oh*ow]
				var s float64
				for _, v := range seg {
					s += v
				}
				dbias.data[fi] += s
			}
		}
	}
	dweight = dwmat.Reshape(f, c, kh, kw)
	return dx, dweight, dbias
}
