package tensor

import "fmt"

// ConvParams describes a 2-D convolution: kernel size, stride and symmetric
// zero padding.
type ConvParams struct {
	Stride  int
	Padding int
}

// ConvOutSize returns the output spatial size for an input of size in with
// kernel k under p.
func (p ConvParams) ConvOutSize(in, k int) int {
	return (in+2*p.Padding-k)/p.Stride + 1
}

func (p ConvParams) validate() {
	if p.Stride <= 0 {
		panic(fmt.Sprintf("tensor: conv stride must be positive, got %d", p.Stride))
	}
	if p.Padding < 0 {
		panic(fmt.Sprintf("tensor: conv padding must be non-negative, got %d", p.Padding))
	}
}

// Im2Col expands one image [C,H,W] into a column matrix [C*KH*KW, OH*OW]
// for convolution with kernel (kh, kw) under p. Out-of-bounds taps are
// zero.
func Im2Col(img *Tensor, kh, kw int, p ConvParams) *Tensor {
	p.validate()
	if img.Dims() != 3 {
		panic(fmt.Sprintf("tensor: Im2Col needs [C,H,W], got %v", img.shape))
	}
	c, h, w := img.shape[0], img.shape[1], img.shape[2]
	oh, ow := p.ConvOutSize(h, kh), p.ConvOutSize(w, kw)
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("tensor: Im2Col non-positive output %dx%d for input %v kernel %dx%d", oh, ow, img.shape, kh, kw))
	}
	col := New(c*kh*kw, oh*ow)
	for ci := 0; ci < c; ci++ {
		for ki := 0; ki < kh; ki++ {
			for kj := 0; kj < kw; kj++ {
				r := (ci*kh+ki)*kw + kj
				dst := col.data[r*oh*ow : (r+1)*oh*ow]
				for oy := 0; oy < oh; oy++ {
					iy := oy*p.Stride + ki - p.Padding
					if iy < 0 || iy >= h {
						continue
					}
					srcRow := img.data[(ci*h+iy)*w : (ci*h+iy+1)*w]
					base := oy * ow
					for ox := 0; ox < ow; ox++ {
						ix := ox*p.Stride + kj - p.Padding
						if ix >= 0 && ix < w {
							dst[base+ox] = srcRow[ix]
						}
					}
				}
			}
		}
	}
	return col
}

// Col2Im scatters a column matrix [C*KH*KW, OH*OW] back into an image
// gradient [C,H,W], accumulating overlapping taps. It is the adjoint of
// Im2Col.
func Col2Im(col *Tensor, c, h, w, kh, kw int, p ConvParams) *Tensor {
	p.validate()
	oh, ow := p.ConvOutSize(h, kh), p.ConvOutSize(w, kw)
	if !col.ShapeEquals(c*kh*kw, oh*ow) {
		panic(fmt.Sprintf("tensor: Col2Im shape %v does not match c=%d h=%d w=%d k=%dx%d", col.shape, c, h, w, kh, kw))
	}
	img := New(c, h, w)
	for ci := 0; ci < c; ci++ {
		for ki := 0; ki < kh; ki++ {
			for kj := 0; kj < kw; kj++ {
				r := (ci*kh+ki)*kw + kj
				src := col.data[r*oh*ow : (r+1)*oh*ow]
				for oy := 0; oy < oh; oy++ {
					iy := oy*p.Stride + ki - p.Padding
					if iy < 0 || iy >= h {
						continue
					}
					dstRow := img.data[(ci*h+iy)*w : (ci*h+iy+1)*w]
					base := oy * ow
					for ox := 0; ox < ow; ox++ {
						ix := ox*p.Stride + kj - p.Padding
						if ix >= 0 && ix < w {
							dstRow[ix] += src[base+ox]
						}
					}
				}
			}
		}
	}
	return img
}

// Conv2D computes a batched 2-D convolution (cross-correlation, as in deep
// learning frameworks). x is [N,C,H,W], weight is [F,C,KH,KW], bias is [F]
// or nil. The result is [N,F,OH,OW].
func Conv2D(x, weight, bias *Tensor, p ConvParams) *Tensor {
	p.validate()
	if x.Dims() != 4 || weight.Dims() != 4 {
		panic(fmt.Sprintf("tensor: Conv2D needs 4-d x and weight, got %v, %v", x.shape, weight.shape))
	}
	n, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	f, cw, kh, kw := weight.shape[0], weight.shape[1], weight.shape[2], weight.shape[3]
	if c != cw {
		panic(fmt.Sprintf("tensor: Conv2D channel mismatch x=%v weight=%v", x.shape, weight.shape))
	}
	if bias != nil && !bias.ShapeEquals(f) {
		panic(fmt.Sprintf("tensor: Conv2D bias shape %v, want [%d]", bias.shape, f))
	}
	oh, ow := p.ConvOutSize(h, kh), p.ConvOutSize(w, kw)
	wmat := weight.Reshape(f, c*kh*kw)
	out := New(n, f, oh, ow)
	for i := 0; i < n; i++ {
		img := &Tensor{shape: []int{c, h, w}, data: x.data[i*c*h*w : (i+1)*c*h*w]}
		col := Im2Col(img, kh, kw, p)
		res := MatMul(wmat, col) // [F, OH*OW]
		dst := out.data[i*f*oh*ow : (i+1)*f*oh*ow]
		copy(dst, res.data)
		if bias != nil {
			for fi := 0; fi < f; fi++ {
				b := bias.data[fi]
				seg := dst[fi*oh*ow : (fi+1)*oh*ow]
				for j := range seg {
					seg[j] += b
				}
			}
		}
	}
	return out
}

// Conv2DBackward computes the gradients of a Conv2D call given the upstream
// gradient gout [N,F,OH,OW]. It returns (dx, dweight, dbias); dbias is nil
// when hasBias is false.
func Conv2DBackward(x, weight, gout *Tensor, p ConvParams, hasBias bool) (dx, dweight, dbias *Tensor) {
	p.validate()
	n, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	f, _, kh, kw := weight.shape[0], weight.shape[1], weight.shape[2], weight.shape[3]
	oh, ow := p.ConvOutSize(h, kh), p.ConvOutSize(w, kw)
	if !gout.ShapeEquals(n, f, oh, ow) {
		panic(fmt.Sprintf("tensor: Conv2DBackward gout shape %v, want [%d %d %d %d]", gout.shape, n, f, oh, ow))
	}
	wmat := weight.Reshape(f, c*kh*kw)
	dx = New(n, c, h, w)
	dwmat := New(f, c*kh*kw)
	if hasBias {
		dbias = New(f)
	}
	for i := 0; i < n; i++ {
		img := &Tensor{shape: []int{c, h, w}, data: x.data[i*c*h*w : (i+1)*c*h*w]}
		col := Im2Col(img, kh, kw, p)
		g := &Tensor{shape: []int{f, oh * ow}, data: gout.data[i*f*oh*ow : (i+1)*f*oh*ow]}
		// dW += g · colᵀ
		AddInto(dwmat, MatMulABT(g, col))
		// dcol = Wᵀ · g, scattered back into dx
		dcol := MatMulATB(wmat, g)
		dimg := Col2Im(dcol, c, h, w, kh, kw, p)
		copy(dx.data[i*c*h*w:(i+1)*c*h*w], dimg.data)
		if hasBias {
			for fi := 0; fi < f; fi++ {
				seg := g.data[fi*oh*ow : (fi+1)*oh*ow]
				var s float64
				for _, v := range seg {
					s += v
				}
				dbias.data[fi] += s
			}
		}
	}
	dweight = dwmat.Reshape(f, c, kh, kw)
	return dx, dweight, dbias
}
