package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

// naiveConv2D is a direct reference implementation used to validate the
// im2col fast path.
func naiveConv2D(x, w, b *Tensor, p ConvParams) *Tensor {
	n, c, h, wd := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	f, _, kh, kw := w.Dim(0), w.Dim(1), w.Dim(2), w.Dim(3)
	oh, ow := p.ConvOutSize(h, kh), p.ConvOutSize(wd, kw)
	out := New(n, f, oh, ow)
	for i := 0; i < n; i++ {
		for fi := 0; fi < f; fi++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					var s float64
					for ci := 0; ci < c; ci++ {
						for ky := 0; ky < kh; ky++ {
							for kx := 0; kx < kw; kx++ {
								iy := oy*p.Stride + ky - p.Padding
								ix := ox*p.Stride + kx - p.Padding
								if iy < 0 || iy >= h || ix < 0 || ix >= wd {
									continue
								}
								s += x.At(i, ci, iy, ix) * w.At(fi, ci, ky, kx)
							}
						}
					}
					if b != nil {
						s += b.At(fi)
					}
					out.Set(s, i, fi, oy, ox)
				}
			}
		}
	}
	return out
}

func TestConvOutSize(t *testing.T) {
	p := ConvParams{Stride: 1, Padding: 2}
	if got := p.ConvOutSize(28, 5); got != 28 {
		t.Errorf("ConvOutSize(28,5,pad2) = %d, want 28", got)
	}
	p2 := ConvParams{Stride: 2, Padding: 0}
	if got := p2.ConvOutSize(8, 2); got != 4 {
		t.Errorf("ConvOutSize(8,2,s2) = %d, want 4", got)
	}
}

func TestConv2DMatchesNaive(t *testing.T) {
	r := NewRand(10, 20)
	cases := []struct {
		n, c, h, w, f, k int
		p                ConvParams
	}{
		{1, 1, 5, 5, 1, 3, ConvParams{Stride: 1, Padding: 0}},
		{2, 3, 8, 8, 4, 3, ConvParams{Stride: 1, Padding: 1}},
		{2, 2, 9, 7, 3, 3, ConvParams{Stride: 2, Padding: 1}},
		{1, 1, 6, 6, 2, 5, ConvParams{Stride: 1, Padding: 2}},
	}
	for _, tc := range cases {
		x := RandN(r, 0, 1, tc.n, tc.c, tc.h, tc.w)
		w := RandN(r, 0, 1, tc.f, tc.c, tc.k, tc.k)
		b := RandN(r, 0, 1, tc.f)
		got := Conv2D(x, w, b, tc.p)
		want := naiveConv2D(x, w, b, tc.p)
		if !got.AllClose(want, 1e-9) {
			t.Errorf("Conv2D mismatch for case %+v", tc)
		}
	}
}

func TestConv2DNilBias(t *testing.T) {
	r := NewRand(11, 21)
	x := RandN(r, 0, 1, 1, 2, 6, 6)
	w := RandN(r, 0, 1, 3, 2, 3, 3)
	p := ConvParams{Stride: 1, Padding: 1}
	got := Conv2D(x, w, nil, p)
	want := naiveConv2D(x, w, nil, p)
	if !got.AllClose(want, 1e-9) {
		t.Error("Conv2D nil-bias mismatch")
	}
}

func TestConv2DIdentityKernel(t *testing.T) {
	// A 1x1 kernel of value 1 with a single channel is the identity.
	r := NewRand(12, 22)
	x := RandN(r, 0, 1, 2, 1, 4, 4)
	w := Ones(1, 1, 1, 1)
	got := Conv2D(x, w, nil, ConvParams{Stride: 1})
	if !got.AllClose(x, 1e-12) {
		t.Error("1x1 identity convolution altered input")
	}
}

func TestIm2ColCol2ImAdjoint(t *testing.T) {
	// <Im2Col(x), y> == <x, Col2Im(y)> — the defining property of adjoint
	// operators; this is exactly what backprop relies on.
	f := func(seed uint64) bool {
		r := NewRand(seed, 77)
		c, h, w, k := 2, 6, 5, 3
		p := ConvParams{Stride: 1, Padding: 1}
		x := RandN(r, 0, 1, c, h, w)
		col := Im2Col(x, k, k, p)
		y := RandN(r, 0, 1, col.Dim(0), col.Dim(1))
		lhs := Dot(col, y)
		rhs := Dot(x, Col2Im(y, c, h, w, k, k, p))
		return math.Abs(lhs-rhs) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// numericalConvGrad checks Conv2DBackward against finite differences of a
// scalar loss L = sum(conv(x, w, b) * g).
func TestConv2DBackwardNumerical(t *testing.T) {
	r := NewRand(13, 23)
	p := ConvParams{Stride: 1, Padding: 1}
	x := RandN(r, 0, 1, 1, 2, 5, 5)
	w := RandN(r, 0, 1, 2, 2, 3, 3)
	b := RandN(r, 0, 1, 2)
	out := Conv2D(x, w, b, p)
	g := RandN(r, 0, 1, out.Shape()...)

	loss := func() float64 { return Dot(Conv2D(x, w, b, p), g) }

	dx, dw, db := Conv2DBackward(x, w, g, p, true)
	const eps = 1e-6
	check := func(name string, param, grad *Tensor) {
		for i := 0; i < param.Len(); i += 7 { // subsample for speed
			old := param.Data()[i]
			param.Data()[i] = old + eps
			lp := loss()
			param.Data()[i] = old - eps
			lm := loss()
			param.Data()[i] = old
			num := (lp - lm) / (2 * eps)
			if math.Abs(num-grad.Data()[i]) > 1e-5*(1+math.Abs(num)) {
				t.Errorf("%s grad[%d]: numerical %v vs analytic %v", name, i, num, grad.Data()[i])
			}
		}
	}
	check("x", x, dx)
	check("w", w, dw)
	check("b", b, db)
}

func TestConv2DBackwardStride2(t *testing.T) {
	r := NewRand(14, 24)
	p := ConvParams{Stride: 2, Padding: 1}
	x := RandN(r, 0, 1, 2, 1, 7, 7)
	w := RandN(r, 0, 1, 3, 1, 3, 3)
	out := Conv2D(x, w, nil, p)
	g := RandN(r, 0, 1, out.Shape()...)
	dx, dw, db := Conv2DBackward(x, w, g, p, false)
	if db != nil {
		t.Error("dbias should be nil when hasBias is false")
	}
	loss := func() float64 { return Dot(Conv2D(x, w, nil, p), g) }
	const eps = 1e-6
	for i := 0; i < x.Len(); i += 11 {
		old := x.Data()[i]
		x.Data()[i] = old + eps
		lp := loss()
		x.Data()[i] = old - eps
		lm := loss()
		x.Data()[i] = old
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-dx.Data()[i]) > 1e-5*(1+math.Abs(num)) {
			t.Errorf("dx[%d]: numerical %v vs analytic %v", i, num, dx.Data()[i])
		}
	}
	for i := 0; i < w.Len(); i += 5 {
		old := w.Data()[i]
		w.Data()[i] = old + eps
		lp := loss()
		w.Data()[i] = old - eps
		lm := loss()
		w.Data()[i] = old
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-dw.Data()[i]) > 1e-5*(1+math.Abs(num)) {
			t.Errorf("dw[%d]: numerical %v vs analytic %v", i, num, dw.Data()[i])
		}
	}
}

func TestConv2DChannelMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("channel mismatch did not panic")
		}
	}()
	Conv2D(New(1, 2, 4, 4), New(1, 3, 3, 3), nil, ConvParams{Stride: 1})
}

func TestAvgPool2DKnown(t *testing.T) {
	x := FromSlice([]float64{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 1, 4, 4)
	got := AvgPool2D(x, 2)
	want := FromSlice([]float64{3.5, 5.5, 11.5, 13.5}, 1, 1, 2, 2)
	if !got.AllClose(want, 1e-12) {
		t.Errorf("AvgPool2D = %v, want %v", got, want)
	}
}

func TestAvgPoolBackwardNumerical(t *testing.T) {
	r := NewRand(15, 25)
	x := RandN(r, 0, 1, 2, 2, 4, 4)
	out := AvgPool2D(x, 2)
	g := RandN(r, 0, 1, out.Shape()...)
	dx := AvgPool2DBackward(g, 2, 4, 4)
	loss := func() float64 { return Dot(AvgPool2D(x, 2), g) }
	const eps = 1e-6
	for i := 0; i < x.Len(); i += 3 {
		old := x.Data()[i]
		x.Data()[i] = old + eps
		lp := loss()
		x.Data()[i] = old - eps
		lm := loss()
		x.Data()[i] = old
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-dx.Data()[i]) > 1e-6 {
			t.Errorf("avgpool dx[%d]: numerical %v vs analytic %v", i, num, dx.Data()[i])
		}
	}
}

func TestMaxPool2DKnownAndBackward(t *testing.T) {
	x := FromSlice([]float64{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 1, 4, 4)
	got, arg := MaxPool2D(x, 2)
	want := FromSlice([]float64{6, 8, 14, 16}, 1, 1, 2, 2)
	if !got.AllClose(want, 1e-12) {
		t.Errorf("MaxPool2D = %v, want %v", got, want)
	}
	g := Ones(1, 1, 2, 2)
	dx := MaxPool2DBackward(g, arg, 2, 4, 4)
	// Gradient must land exactly on the max positions.
	wantDx := New(1, 1, 4, 4)
	wantDx.Set(1, 0, 0, 1, 1)
	wantDx.Set(1, 0, 0, 1, 3)
	wantDx.Set(1, 0, 0, 3, 1)
	wantDx.Set(1, 0, 0, 3, 3)
	if !dx.AllClose(wantDx, 1e-12) {
		t.Errorf("MaxPool2DBackward = %v", dx)
	}
}

func TestPoolBadWindowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("pool with indivisible window did not panic")
		}
	}()
	AvgPool2D(New(1, 1, 5, 5), 2)
}

// Property: average pooling preserves the total sum scaled by window area.
func TestAvgPoolSumProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRand(seed, 31)
		x := RandN(r, 0, 1, 1, 2, 6, 6)
		y := AvgPool2D(x, 2)
		return math.Abs(Sum(x)-Sum(y)*4) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: max pooling output dominates avg pooling output elementwise.
func TestMaxDominatesAvgProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRand(seed, 32)
		x := RandN(r, 0, 1, 1, 1, 4, 4)
		mx, _ := MaxPool2D(x, 2)
		av := AvgPool2D(x, 2)
		for i := range mx.Data() {
			if mx.Data()[i] < av.Data()[i]-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
