package tensor

import (
	"fmt"
	"math"
)

func assertSameShape(op string, a, b *Tensor) {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", op, a.shape, b.shape))
	}
}

// Add returns a + b elementwise.
func Add(a, b *Tensor) *Tensor {
	assertSameShape("Add", a, b)
	out := New(a.shape...)
	for i := range out.data {
		out.data[i] = a.data[i] + b.data[i]
	}
	return out
}

// Sub returns a - b elementwise.
func Sub(a, b *Tensor) *Tensor {
	assertSameShape("Sub", a, b)
	out := New(a.shape...)
	for i := range out.data {
		out.data[i] = a.data[i] - b.data[i]
	}
	return out
}

// Mul returns a * b elementwise (Hadamard product).
func Mul(a, b *Tensor) *Tensor {
	assertSameShape("Mul", a, b)
	out := New(a.shape...)
	for i := range out.data {
		out.data[i] = a.data[i] * b.data[i]
	}
	return out
}

// Div returns a / b elementwise.
func Div(a, b *Tensor) *Tensor {
	assertSameShape("Div", a, b)
	out := New(a.shape...)
	for i := range out.data {
		out.data[i] = a.data[i] / b.data[i]
	}
	return out
}

// Scale returns a*s elementwise.
func Scale(a *Tensor, s float64) *Tensor {
	out := New(a.shape...)
	for i := range out.data {
		out.data[i] = a.data[i] * s
	}
	return out
}

// AddScalar returns a+s elementwise.
func AddScalar(a *Tensor, s float64) *Tensor {
	out := New(a.shape...)
	for i := range out.data {
		out.data[i] = a.data[i] + s
	}
	return out
}

// Neg returns -a.
func Neg(a *Tensor) *Tensor { return Scale(a, -1) }

// Apply returns f applied elementwise.
func Apply(a *Tensor, f func(float64) float64) *Tensor {
	out := New(a.shape...)
	for i := range out.data {
		out.data[i] = f(a.data[i])
	}
	return out
}

// Exp returns e^a elementwise.
func Exp(a *Tensor) *Tensor { return Apply(a, math.Exp) }

// Log returns ln(a) elementwise.
func Log(a *Tensor) *Tensor { return Apply(a, math.Log) }

// Tanh returns tanh(a) elementwise.
func Tanh(a *Tensor) *Tensor { return Apply(a, math.Tanh) }

// Sigmoid returns the logistic function of a elementwise.
func Sigmoid(a *Tensor) *Tensor {
	return Apply(a, func(v float64) float64 { return 1 / (1 + math.Exp(-v)) })
}

// ReLU returns max(a, 0) elementwise.
func ReLU(a *Tensor) *Tensor {
	return Apply(a, func(v float64) float64 {
		if v > 0 {
			return v
		}
		return 0
	})
}

// Sign returns the elementwise sign of a (−1, 0 or +1).
func Sign(a *Tensor) *Tensor {
	return Apply(a, func(v float64) float64 {
		switch {
		case v > 0:
			return 1
		case v < 0:
			return -1
		default:
			return 0
		}
	})
}

// Abs returns |a| elementwise.
func Abs(a *Tensor) *Tensor { return Apply(a, math.Abs) }

// Clamp returns a with each element limited to [lo, hi].
func Clamp(a *Tensor, lo, hi float64) *Tensor {
	return Apply(a, func(v float64) float64 {
		if v < lo {
			return lo
		}
		if v > hi {
			return hi
		}
		return v
	})
}

// Maximum returns the elementwise maximum of a and b.
func Maximum(a, b *Tensor) *Tensor {
	assertSameShape("Maximum", a, b)
	out := New(a.shape...)
	for i := range out.data {
		out.data[i] = math.Max(a.data[i], b.data[i])
	}
	return out
}

// Minimum returns the elementwise minimum of a and b.
func Minimum(a, b *Tensor) *Tensor {
	assertSameShape("Minimum", a, b)
	out := New(a.shape...)
	for i := range out.data {
		out.data[i] = math.Min(a.data[i], b.data[i])
	}
	return out
}

// AddInto computes dst += src elementwise in place.
func AddInto(dst, src *Tensor) {
	assertSameShape("AddInto", dst, src)
	for i := range dst.data {
		dst.data[i] += src.data[i]
	}
}

// SubInto computes dst -= src elementwise in place.
func SubInto(dst, src *Tensor) {
	assertSameShape("SubInto", dst, src)
	for i := range dst.data {
		dst.data[i] -= src.data[i]
	}
}

// MulInto computes dst *= src elementwise in place.
func MulInto(dst, src *Tensor) {
	assertSameShape("MulInto", dst, src)
	for i := range dst.data {
		dst.data[i] *= src.data[i]
	}
}

// ScaleInto computes dst *= s in place.
func ScaleInto(dst *Tensor, s float64) {
	for i := range dst.data {
		dst.data[i] *= s
	}
}

// Axpy computes dst += alpha*src in place.
func Axpy(alpha float64, src, dst *Tensor) {
	assertSameShape("Axpy", dst, src)
	for i := range dst.data {
		dst.data[i] += alpha * src.data[i]
	}
}

// ClampInto limits each element of dst to [lo, hi] in place.
func ClampInto(dst *Tensor, lo, hi float64) {
	for i, v := range dst.data {
		if v < lo {
			dst.data[i] = lo
		} else if v > hi {
			dst.data[i] = hi
		}
	}
}
