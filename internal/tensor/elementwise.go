package tensor

import (
	"fmt"
	"math"

	"snnsec/internal/compute"
)

func assertSameShape(op string, a, b *Tensor) {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", op, a.shape, b.shape))
	}
}

// binaryOn applies fn over matching index blocks of a fresh output tensor.
func binaryOn(be compute.Backend, op string, a, b *Tensor, fn func(dst, x, y []float64)) *Tensor {
	assertSameShape(op, a, b)
	out := New(a.shape...)
	backendOr(be).ParallelFor(len(out.data), elemGrain, func(lo, hi int) {
		fn(out.data[lo:hi], a.data[lo:hi], b.data[lo:hi])
	})
	return out
}

// Add returns a + b elementwise.
func Add(a, b *Tensor) *Tensor { return AddOn(nil, a, b) }

// AddOn returns a + b elementwise on be (nil selects the default backend).
func AddOn(be compute.Backend, a, b *Tensor) *Tensor {
	return binaryOn(be, "Add", a, b, func(dst, x, y []float64) {
		for i := range dst {
			dst[i] = x[i] + y[i]
		}
	})
}

// Sub returns a - b elementwise.
func Sub(a, b *Tensor) *Tensor { return SubOn(nil, a, b) }

// SubOn returns a - b elementwise on be (nil selects the default backend).
func SubOn(be compute.Backend, a, b *Tensor) *Tensor {
	return binaryOn(be, "Sub", a, b, func(dst, x, y []float64) {
		for i := range dst {
			dst[i] = x[i] - y[i]
		}
	})
}

// Mul returns a * b elementwise (Hadamard product).
func Mul(a, b *Tensor) *Tensor { return MulOn(nil, a, b) }

// MulOn returns a * b elementwise on be (nil selects the default backend).
func MulOn(be compute.Backend, a, b *Tensor) *Tensor {
	return binaryOn(be, "Mul", a, b, func(dst, x, y []float64) {
		for i := range dst {
			dst[i] = x[i] * y[i]
		}
	})
}

// Div returns a / b elementwise.
func Div(a, b *Tensor) *Tensor { return DivOn(nil, a, b) }

// DivOn returns a / b elementwise on be (nil selects the default backend).
func DivOn(be compute.Backend, a, b *Tensor) *Tensor {
	return binaryOn(be, "Div", a, b, func(dst, x, y []float64) {
		for i := range dst {
			dst[i] = x[i] / y[i]
		}
	})
}

// Scale returns a*s elementwise.
func Scale(a *Tensor, s float64) *Tensor { return ScaleOn(nil, a, s) }

// ScaleOn returns a*s elementwise on be (nil selects the default backend).
func ScaleOn(be compute.Backend, a *Tensor, s float64) *Tensor {
	out := New(a.shape...)
	backendOr(be).ParallelFor(len(out.data), elemGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out.data[i] = a.data[i] * s
		}
	})
	return out
}

// AddScalar returns a+s elementwise.
func AddScalar(a *Tensor, s float64) *Tensor { return AddScalarOn(nil, a, s) }

// AddScalarOn returns a+s elementwise on be (nil selects the default
// backend).
func AddScalarOn(be compute.Backend, a *Tensor, s float64) *Tensor {
	out := New(a.shape...)
	backendOr(be).ParallelFor(len(out.data), elemGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out.data[i] = a.data[i] + s
		}
	})
	return out
}

// Neg returns -a.
func Neg(a *Tensor) *Tensor { return Scale(a, -1) }

// NegOn returns -a on be (nil selects the default backend).
func NegOn(be compute.Backend, a *Tensor) *Tensor { return ScaleOn(be, a, -1) }

// Apply returns f applied elementwise.
func Apply(a *Tensor, f func(float64) float64) *Tensor { return ApplyOn(nil, a, f) }

// ApplyOn returns f applied elementwise on be (nil selects the default
// backend). f must be safe for concurrent calls.
func ApplyOn(be compute.Backend, a *Tensor, f func(float64) float64) *Tensor {
	out := New(a.shape...)
	backendOr(be).ParallelFor(len(out.data), elemGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out.data[i] = f(a.data[i])
		}
	})
	return out
}

// Exp returns e^a elementwise.
func Exp(a *Tensor) *Tensor { return Apply(a, math.Exp) }

// Log returns ln(a) elementwise.
func Log(a *Tensor) *Tensor { return Apply(a, math.Log) }

// Tanh returns tanh(a) elementwise.
func Tanh(a *Tensor) *Tensor { return Apply(a, math.Tanh) }

// TanhOn returns tanh(a) elementwise on be.
func TanhOn(be compute.Backend, a *Tensor) *Tensor { return ApplyOn(be, a, math.Tanh) }

// Sigmoid returns the logistic function of a elementwise.
func Sigmoid(a *Tensor) *Tensor { return SigmoidOn(nil, a) }

// SigmoidOn returns the logistic function of a elementwise on be.
func SigmoidOn(be compute.Backend, a *Tensor) *Tensor {
	return ApplyOn(be, a, func(v float64) float64 { return 1 / (1 + math.Exp(-v)) })
}

// ReLU returns max(a, 0) elementwise.
func ReLU(a *Tensor) *Tensor { return ReLUOn(nil, a) }

// ReLUOn returns max(a, 0) elementwise on be.
func ReLUOn(be compute.Backend, a *Tensor) *Tensor {
	return ApplyOn(be, a, func(v float64) float64 {
		if v > 0 {
			return v
		}
		return 0
	})
}

// Sign returns the elementwise sign of a (−1, 0 or +1).
func Sign(a *Tensor) *Tensor { return SignOn(nil, a) }

// SignOn returns the elementwise sign of a on be (nil selects the default
// backend).
func SignOn(be compute.Backend, a *Tensor) *Tensor {
	return ApplyOn(be, a, func(v float64) float64 {
		switch {
		case v > 0:
			return 1
		case v < 0:
			return -1
		default:
			return 0
		}
	})
}

// Abs returns |a| elementwise.
func Abs(a *Tensor) *Tensor { return Apply(a, math.Abs) }

// Clamp returns a with each element limited to [lo, hi].
func Clamp(a *Tensor, lo, hi float64) *Tensor {
	return Apply(a, func(v float64) float64 {
		if v < lo {
			return lo
		}
		if v > hi {
			return hi
		}
		return v
	})
}

// Maximum returns the elementwise maximum of a and b.
func Maximum(a, b *Tensor) *Tensor {
	return binaryOn(nil, "Maximum", a, b, func(dst, x, y []float64) {
		for i := range dst {
			dst[i] = math.Max(x[i], y[i])
		}
	})
}

// Minimum returns the elementwise minimum of a and b.
func Minimum(a, b *Tensor) *Tensor {
	return binaryOn(nil, "Minimum", a, b, func(dst, x, y []float64) {
		for i := range dst {
			dst[i] = math.Min(x[i], y[i])
		}
	})
}

// AddInto computes dst += src elementwise in place.
func AddInto(dst, src *Tensor) { AddIntoOn(nil, dst, src) }

// AddIntoOn computes dst += src elementwise in place on be (nil selects
// the default backend). It is the gradient-accumulation primitive
// (AccumGrad), so the inner loop is the 4-wide unrolled addRow.
func AddIntoOn(be compute.Backend, dst, src *Tensor) {
	assertSameShape("AddInto", dst, src)
	backendOr(be).ParallelFor(len(dst.data), elemGrain, func(lo, hi int) {
		addRow(dst.data[lo:hi], src.data[lo:hi])
	})
}

// SubInto computes dst -= src elementwise in place.
func SubInto(dst, src *Tensor) {
	assertSameShape("SubInto", dst, src)
	for i := range dst.data {
		dst.data[i] -= src.data[i]
	}
}

// MulInto computes dst *= src elementwise in place.
func MulInto(dst, src *Tensor) {
	assertSameShape("MulInto", dst, src)
	for i := range dst.data {
		dst.data[i] *= src.data[i]
	}
}

// ScaleInto computes dst *= s in place.
func ScaleInto(dst *Tensor, s float64) {
	for i := range dst.data {
		dst.data[i] *= s
	}
}

// Axpy computes dst += alpha*src in place.
func Axpy(alpha float64, src, dst *Tensor) {
	assertSameShape("Axpy", dst, src)
	for i := range dst.data {
		dst.data[i] += alpha * src.data[i]
	}
}

// ClampInto limits each element of dst to [lo, hi] in place.
func ClampInto(dst *Tensor, lo, hi float64) {
	for i, v := range dst.data {
		if v < lo {
			dst.data[i] = lo
		} else if v > hi {
			dst.data[i] = hi
		}
	}
}
