package tensor

import (
	"math"
	"sync"
	"testing"

	"snnsec/internal/compute"
)

// The backend contract promises bit-identical results from the Serial and
// Parallel backends for every kernel. These property-style tests sweep
// awkward shapes — n smaller than the worker count, n=1, sizes that do not
// divide the grain or the width — and compare element-for-element with ==.

// parallelWidths includes a width larger than any tested dimension so the
// "more workers than rows" path is always exercised.
var parallelWidths = []int{2, 3, 16}

func assertIdentical(t *testing.T, name string, want, got *Tensor) {
	t.Helper()
	if !want.SameShape(got) {
		t.Fatalf("%s: shape %v vs %v", name, want.Shape(), got.Shape())
	}
	wd, gd := want.Data(), got.Data()
	for i := range wd {
		same := wd[i] == gd[i] || (math.IsNaN(wd[i]) && math.IsNaN(gd[i]))
		if !same {
			t.Fatalf("%s: element %d differs: serial %v, parallel %v", name, i, wd[i], gd[i])
		}
	}
}

func forEachParallel(t *testing.T, f func(t *testing.T, be compute.Backend)) {
	t.Helper()
	for _, w := range parallelWidths {
		f(t, compute.NewParallel(w))
	}
}

func TestMatMulEquivalence(t *testing.T) {
	r := NewRand(11, 17)
	shapes := []struct{ m, k, n int }{
		{1, 1, 1}, {1, 7, 3}, {2, 3, 2}, {5, 4, 7}, {17, 9, 13}, {33, 65, 31},
	}
	ser := compute.Serial{}
	for _, s := range shapes {
		a := RandN(r, 0, 1, s.m, s.k)
		b := RandN(r, 0, 1, s.k, s.n)
		// Sprinkle zeros into a so the zero-skip branch fires.
		for i := 0; i < a.Len(); i += 3 {
			a.Data()[i] = 0
		}
		want := MatMulOn(ser, a, b)
		forEachParallel(t, func(t *testing.T, be compute.Backend) {
			assertIdentical(t, "MatMul", want, MatMulOn(be, a, b))
		})

		at := Transpose2D(a)
		wantATB := MatMulATBOn(ser, at, b)
		forEachParallel(t, func(t *testing.T, be compute.Backend) {
			assertIdentical(t, "MatMulATB", wantATB, MatMulATBOn(be, at, b))
		})

		bt := Transpose2D(b)
		wantABT := MatMulABTOn(ser, a, bt)
		forEachParallel(t, func(t *testing.T, be compute.Backend) {
			assertIdentical(t, "MatMulABT", wantABT, MatMulABTOn(be, a, bt))
		})
	}
}

// TestMatMulNaNPropagation pins the satellite fix: the zero-skip fast
// path must not swallow NaN/Inf coming from the other operand — 0·NaN is
// NaN, so a NaN anywhere in b must poison the affected output elements
// even when a's coefficient is zero.
func TestMatMulNaNPropagation(t *testing.T) {
	a := FromSlice([]float64{0, 0, 1, 2}, 2, 2) // first row all zeros
	b := FromSlice([]float64{math.NaN(), 1, 2, 3}, 2, 2)
	for _, be := range []compute.Backend{compute.Serial{}, compute.NewParallel(4)} {
		out := MatMulOn(be, a, b)
		// out[0,0] = 0·NaN + 0·2 must be NaN.
		if !math.IsNaN(out.At(0, 0)) {
			t.Fatalf("MatMul swallowed NaN through the zero-skip branch: got %v", out.At(0, 0))
		}
		outATB := MatMulATBOn(be, Transpose2D(a), b)
		if !math.IsNaN(outATB.At(0, 0)) {
			t.Fatalf("MatMulATB swallowed NaN: got %v", outATB.At(0, 0))
		}
	}
	// +Inf must poison through a zero coefficient too (0·Inf = NaN).
	binf := FromSlice([]float64{math.Inf(1), 1, 2, 3}, 2, 2)
	out := MatMul(a, binf)
	if !math.IsNaN(out.At(0, 0)) {
		t.Fatalf("MatMul swallowed Inf through the zero-skip branch: got %v", out.At(0, 0))
	}
}

func TestConvEquivalence(t *testing.T) {
	r := NewRand(5, 23)
	ser := compute.Serial{}
	cases := []struct {
		n, c, h, w, f, k int
		p                ConvParams
	}{
		{1, 1, 5, 5, 1, 3, ConvParams{Stride: 1, Padding: 1}},
		{2, 3, 7, 9, 4, 3, ConvParams{Stride: 2, Padding: 1}},
		{5, 2, 8, 8, 3, 5, ConvParams{Stride: 1, Padding: 2}},
		{3, 1, 16, 16, 6, 5, ConvParams{Stride: 1, Padding: 0}},
	}
	for _, cs := range cases {
		x := RandN(r, 0, 1, cs.n, cs.c, cs.h, cs.w)
		wt := RandN(r, 0, 1, cs.f, cs.c, cs.k, cs.k)
		bias := RandN(r, 0, 1, cs.f)
		oh := cs.p.ConvOutSize(cs.h, cs.k)
		ow := cs.p.ConvOutSize(cs.w, cs.k)
		gout := RandN(r, 0, 1, cs.n, cs.f, oh, ow)

		want := Conv2DOn(ser, x, wt, bias, cs.p)
		wdx, wdw, wdb := Conv2DBackwardOn(ser, x, wt, gout, cs.p, true)
		forEachParallel(t, func(t *testing.T, be compute.Backend) {
			assertIdentical(t, "Conv2D", want, Conv2DOn(be, x, wt, bias, cs.p))
			dx, dw, db := Conv2DBackwardOn(be, x, wt, gout, cs.p, true)
			assertIdentical(t, "Conv2DBackward dx", wdx, dx)
			assertIdentical(t, "Conv2DBackward dw", wdw, dw)
			assertIdentical(t, "Conv2DBackward db", wdb, db)
		})

		img := x.Slice(0)
		wantCol := Im2ColOn(ser, img, cs.k, cs.k, cs.p)
		forEachParallel(t, func(t *testing.T, be compute.Backend) {
			col := Im2ColOn(be, img, cs.k, cs.k, cs.p)
			assertIdentical(t, "Im2Col", wantCol, col)
			assertIdentical(t, "Col2Im",
				Col2ImOn(ser, wantCol, cs.c, cs.h, cs.w, cs.k, cs.k, cs.p),
				Col2ImOn(be, col, cs.c, cs.h, cs.w, cs.k, cs.k, cs.p))
		})
	}
}

func TestPoolEquivalence(t *testing.T) {
	r := NewRand(7, 29)
	ser := compute.Serial{}
	cases := []struct{ n, c, h, w, k int }{
		{1, 1, 2, 2, 2}, {2, 3, 4, 4, 2}, {5, 2, 6, 6, 3}, {3, 7, 8, 8, 2},
	}
	for _, cs := range cases {
		x := RandN(r, 0, 1, cs.n, cs.c, cs.h, cs.w)
		gout := RandN(r, 0, 1, cs.n, cs.c, cs.h/cs.k, cs.w/cs.k)

		wantAvg := AvgPool2DOn(ser, x, cs.k)
		wantAvgBack := AvgPool2DBackwardOn(ser, gout, cs.k, cs.h, cs.w)
		wantMax, wantArg := MaxPool2DOn(ser, x, cs.k)
		wantMaxBack := MaxPool2DBackwardOn(ser, gout, wantArg, cs.k, cs.h, cs.w)
		forEachParallel(t, func(t *testing.T, be compute.Backend) {
			assertIdentical(t, "AvgPool2D", wantAvg, AvgPool2DOn(be, x, cs.k))
			assertIdentical(t, "AvgPool2DBackward", wantAvgBack, AvgPool2DBackwardOn(be, gout, cs.k, cs.h, cs.w))
			mx, arg := MaxPool2DOn(be, x, cs.k)
			assertIdentical(t, "MaxPool2D", wantMax, mx)
			for i := range wantArg {
				if arg[i] != wantArg[i] {
					t.Fatalf("MaxPool2D argmax %d differs: %d vs %d", i, wantArg[i], arg[i])
				}
			}
			assertIdentical(t, "MaxPool2DBackward", wantMaxBack, MaxPool2DBackwardOn(be, gout, arg, cs.k, cs.h, cs.w))
		})
	}
}

func TestReduceAndElementwiseEquivalence(t *testing.T) {
	r := NewRand(3, 31)
	ser := compute.Serial{}
	for _, rows := range []int{1, 2, 7, 33} {
		for _, cols := range []int{1, 5, 17} {
			a := RandN(r, 0, 1, rows, cols)
			b := RandN(r, 0, 1, rows, cols)
			wantSoftmax := SoftmaxRowsOn(ser, a)
			wantSum := SumRowsOn(ser, a)
			wantArg := ArgmaxRowsOn(ser, a)
			wantAdd := AddOn(ser, a, b)
			wantMul := MulOn(ser, a, b)
			wantSig := SigmoidOn(ser, a)
			forEachParallel(t, func(t *testing.T, be compute.Backend) {
				assertIdentical(t, "SoftmaxRows", wantSoftmax, SoftmaxRowsOn(be, a))
				assertIdentical(t, "SumRows", wantSum, SumRowsOn(be, a))
				for i, w := range wantArg {
					if got := ArgmaxRowsOn(be, a)[i]; got != w {
						t.Fatalf("ArgmaxRows row %d: %d vs %d", i, w, got)
					}
				}
				assertIdentical(t, "Add", wantAdd, AddOn(be, a, b))
				assertIdentical(t, "Mul", wantMul, MulOn(be, a, b))
				assertIdentical(t, "Sigmoid", wantSig, SigmoidOn(be, a))
			})
		}
	}
}

// TestConcurrentBackendUse drives one shared Parallel backend from many
// goroutines at once; run under -race this checks the worker pool and the
// buffer pool for data races, and the output check ensures results stay
// deterministic under contention.
func TestConcurrentBackendUse(t *testing.T) {
	r := NewRand(13, 37)
	a := RandN(r, 0, 1, 31, 17)
	b := RandN(r, 0, 1, 17, 23)
	x := RandN(r, 0, 1, 3, 2, 8, 8)
	w := RandN(r, 0, 1, 4, 2, 3, 3)
	p := ConvParams{Stride: 1, Padding: 1}
	want := MatMulOn(compute.Serial{}, a, b)
	wantConv := Conv2DOn(compute.Serial{}, x, w, nil, p)

	be := compute.NewParallel(4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 20; rep++ {
				got := MatMulOn(be, a, b)
				gotConv := Conv2DOn(be, x, w, nil, p)
				if !got.AllClose(want, 0) || !gotConv.AllClose(wantConv, 0) {
					t.Error("concurrent backend use produced a different result")
					return
				}
			}
		}()
	}
	wg.Wait()
}
