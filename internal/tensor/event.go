package tensor

import (
	"fmt"
	"math/bits"
)

// Event scatter-pack kernel: the streaming input path's replacement for
// PackSpikes. A window binner turns sensor events into, per timestep, a
// list of set element indices; this kernel scatters those indices
// straight into the row-aligned bit layout SpikeTensor uses — the dense
// 0/1 plane PackSpikes would have walked is never materialised, which is
// the whole point of the event path (see internal/stream).

// ScatterSpikesInto clears bits and sets the given linear element
// indices of the logical [rows, cols] view implied by shape, in the
// row-aligned layout NewSpikeTensorFromBits expects (element (r, c) is
// bit c&63 of word r·words + c>>6; tail bits of each row's last word
// stay zero because no index reaches them). Duplicate indices are
// idempotent — two events on one pixel in one time slice are one spike.
// counts, when non-nil, receives the per-row popcounts. Panics on an
// out-of-range index or a mis-sized slab, like every kernel here.
func ScatterSpikesInto(bits64 []uint64, counts []int, idx []int, shape ...int) {
	rows, cols, words := spikeDims(shape)
	if len(bits64) != rows*words {
		panic(fmt.Sprintf("tensor: ScatterSpikesInto got %d words for shape %v (want %d)", len(bits64), shape, rows*words))
	}
	if counts != nil && len(counts) != rows {
		panic(fmt.Sprintf("tensor: ScatterSpikesInto got %d counts for %d rows", len(counts), rows))
	}
	clear(bits64)
	n := rows * cols
	for _, i := range idx {
		if i < 0 || i >= n {
			panic(fmt.Sprintf("tensor: ScatterSpikesInto index %d out of range [0,%d)", i, n))
		}
		r := i / cols
		c := i - r*cols
		bits64[r*words+c>>6] |= 1 << uint(c&63)
	}
	if counts != nil {
		for r := 0; r < rows; r++ {
			cnt := 0
			for _, w := range bits64[r*words : (r+1)*words] {
				cnt += bits.OnesCount64(w)
			}
			counts[r] = cnt
		}
	}
}

// ScatterSpikes packs a list of set linear element indices into a fresh
// SpikeTensor of the given shape. Equivalent to PackSpikes of the dense
// 0/1 plane with those elements set (pinned in event_test.go), without
// ever building that plane.
func ScatterSpikes(idx []int, shape ...int) *SpikeTensor {
	rows, _, words := spikeDims(shape)
	bits64 := make([]uint64, rows*words)
	counts := make([]int, rows)
	ScatterSpikesInto(bits64, counts, idx, shape...)
	return NewSpikeTensorFromBits(bits64, counts, shape...)
}

// HasDenseView reports whether the lazy dense view has been
// materialised. The event path's "never allocates a dense input tensor"
// contract is asserted with this: after a streamed forward, every input
// plane must still answer false.
func (s *SpikeTensor) HasDenseView() bool { return s.dense != nil }
