package tensor

import (
	"math/rand/v2"
	"testing"
)

// TestScatterSpikesMatchesPackSpikes pins the event scatter-pack kernel
// to the reference packer: scattering a set of element indices must
// produce the same bits, counts and dense view as PackSpikes of the
// equivalent dense 0/1 plane — including duplicate indices, ragged tail
// words (cols not a multiple of 64) and empty index lists.
func TestScatterSpikesMatchesPackSpikes(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 7))
	shapes := [][]int{
		{1, 1, 9, 9}, // streaming input plane, ragged tail
		{3, 130},     // multi-row, two-and-a-bit words per row
		{2, 64},      // exact word boundary
		{4, 5, 5},    // trailing dims folded into cols
		{1, 1},       // minimal
	}
	for _, shape := range shapes {
		n := 1
		for _, d := range shape {
			n *= d
		}
		for _, nIdx := range []int{0, 1, n / 2, 2 * n} { // 2n forces duplicates
			idx := make([]int, nIdx)
			for i := range idx {
				idx[i] = rng.IntN(n)
			}
			got := ScatterSpikes(idx, shape...)
			dense := New(shape...)
			for _, i := range idx {
				dense.Data()[i] = 1
			}
			want := PackSpikes(dense)
			if got.Count() != want.Count() {
				t.Fatalf("shape %v, %d idx: count %d, want %d", shape, nIdx, got.Count(), want.Count())
			}
			for r := 0; r < shape[0]; r++ {
				if got.RowCount(r) != want.RowCount(r) {
					t.Fatalf("shape %v row %d: count %d, want %d", shape, r, got.RowCount(r), want.RowCount(r))
				}
			}
			gd, wd := got.Dense().Data(), want.Dense().Data()
			for i := range wd {
				if gd[i] != wd[i] {
					t.Fatalf("shape %v, %d idx: dense[%d] = %v, want %v", shape, nIdx, i, gd[i], wd[i])
				}
			}
		}
	}
}

// TestScatterSpikesIntoReusesSlab checks that the Into form clears stale
// bits from a reused slab and recomputes counts.
func TestScatterSpikesIntoReusesSlab(t *testing.T) {
	shape := []int{2, 70}
	rows, _, words := spikeDims(shape)
	bits64 := make([]uint64, rows*words)
	counts := make([]int, rows)
	ScatterSpikesInto(bits64, counts, []int{0, 69, 70, 139}, shape...)
	if counts[0] != 2 || counts[1] != 2 {
		t.Fatalf("first scatter counts %v, want [2 2]", counts)
	}
	ScatterSpikesInto(bits64, counts, []int{5}, shape...)
	st := NewSpikeTensorFromBits(bits64, counts, shape...)
	if st.Count() != 1 || !st.Bit(0, 5) {
		t.Fatalf("reused slab kept stale bits: count %d", st.Count())
	}
}

// TestScatterSpikesPanicsOutOfRange pins the kernel's bounds check.
func TestScatterSpikesPanicsOutOfRange(t *testing.T) {
	for _, bad := range []int{-1, 12} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("ScatterSpikes(%d) on 12 elements did not panic", bad)
				}
			}()
			ScatterSpikes([]int{bad}, 3, 4)
		}()
	}
}

// TestHasDenseView pins the laziness contract the streaming path's
// no-dense-input assertion rests on.
func TestHasDenseView(t *testing.T) {
	st := ScatterSpikes([]int{1, 3}, 1, 8)
	if st.HasDenseView() {
		t.Fatal("fresh scatter-packed plane already has a dense view")
	}
	st.Dense()
	if !st.HasDenseView() {
		t.Fatal("Dense() did not cache the view")
	}
}
