package tensor

import "snnsec/internal/compute"

// The fast tier (compute.Float32, opt-in via `snnsec -fast`) reroutes
// the dense matmul hot path — and therefore the batched conv pipeline
// and every autodiff product built on it — through float32 staging:
// operands are down-converted once into pooled float32 buffers, the
// product runs a float32 blocked kernel (FMA+AVX2 micro-kernel when the
// CPU has one, a scalar float32 tile otherwise), and the result is
// up-converted and accumulated into the caller's float64 destination.
// Half the memory traffic and twice the SIMD lanes of the default
// kernels, at the cost of float32 rounding (~1e-7 relative per
// operation) plus one fused rounding per FMA step.
//
// Determinism: the fast tier keeps the structural rules of the default
// tier — one accumulator per output element, ascending-k order, kernel
// choice per row block depending only on shape (never on partitioning)
// — so fast-tier results are bit-identical run-to-run and across the
// Serial/Parallel backends on one machine. They are NOT bit-identical
// to the default tier (that is the trade), and may differ between
// machines with and without FMA hardware. Conversion to float32 can
// overflow to ±Inf for magnitudes above ~3.4e38 and flushes subnormal
// products through float32 granularity; NaN/Inf propagate naturally.
//
// The spike select-accumulate kernels and the reference naive kernels
// are unaffected: spikes multiply by 0/1 (exact in either width), and
// the naive kernels are the pinned bit-exactness witnesses of the
// default tier.
const (
	// fmaRows × fmaCols is the FMA register tile: 4 rows × two 8-wide
	// ymm accumulators per row.
	fmaRows = 4
	fmaCols = 16
)

// HasFastKernels reports whether the fast tier runs on the FMA+AVX2
// micro-kernel on this CPU. Without it the fast tier still works (and
// stays deterministic) on the scalar float32 loop, but has no speed
// advantage over the default tier's AVX kernels — the CLI and the perf
// gate use this to warn/skip rather than promise a speedup the hardware
// cannot deliver.
func HasFastKernels() bool { return useFMA32 }

// matMulFastInto is the fast-tier body of matMulInto: it accumulates
// a·b into dst (len m*n) for a [m,k] and b [k,n] through float32
// staging buffers. The zero-skip path is dropped — the float32 kernels
// are cheap enough that skipping only pays on the spike planes, which
// route through the spike kernels before precision is even consulted.
func matMulFastInto(be compute.Backend, dst, a, b []float64, m, k, n int) {
	a32 := compute.GetFloat32(m * k)
	defer compute.PutFloat32(a32)
	downConvert(be, a32, a)
	matMulFastStaged(be, dst, a32, b, m, k, n)
}

// matMulATBFastInto is the fast-tier body of matMulATBInto: aᵀ·b for a
// [k,m], b [k,n]. The transpose is folded into the down-conversion pass
// (a32 is written [m,k] row-major), which reorders memory but not any
// per-element reduction, so the float32 kernel's ascending-p order is
// preserved.
func matMulATBFastInto(be compute.Backend, dst, a, b []float64, k, m, n int) {
	a32 := compute.GetFloat32(m * k)
	defer compute.PutFloat32(a32)
	be.ParallelFor(m, grainRows(k), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := a32[i*k : (i+1)*k]
			for p := 0; p < k; p++ {
				row[p] = float32(a[p*m+i])
			}
		}
	})
	matMulFastStaged(be, dst, a32, b, m, k, n)
}

// matMulFastStaged runs the shared tail of the fast-tier products: b is
// down-converted, the float32 product lands in a pooled buffer, and the
// result is up-converted and accumulated into the float64 dst.
func matMulFastStaged(be compute.Backend, dst []float64, a32 []float32, b []float64, m, k, n int) {
	b32 := compute.GetFloat32(k * n)
	c32 := compute.GetFloat32(m * n)
	defer compute.PutFloat32(b32)
	defer compute.PutFloat32(c32)
	downConvert(be, b32, b)
	be.ParallelFor(m*n, elemGrain, func(lo, hi int) {
		clear(c32[lo:hi])
	})
	matMulF32Into(be, c32, a32, b32, m, k, n)
	be.ParallelFor(m*n, elemGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] += float64(c32[i])
		}
	})
}

// downConvert fills dst[i] = float32(src[i]), partitioned across
// workers.
func downConvert(be compute.Backend, dst []float32, src []float64) {
	be.ParallelFor(len(src), elemGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = float32(src[i])
		}
	})
}

// matMulF32Into accumulates a·b into dst (len m*n, caller-zeroed) in
// float32, reading a [m,k] and b [k,n]. The blocking mirrors
// matMulInto: row blocks of fmaRows rows partitioned across workers,
// ncBlock-column panels walked panel-major, the FMA micro-kernel on
// full tiles and the scalar float32 loop on fringes. Kernel choice per
// sub-panel depends only on (m, n, j0), never on the partitioning, so
// Serial and Parallel stay bit-identical within the fast tier.
func matMulF32Into(be compute.Backend, dst, a, b []float32, m, k, n int) {
	rblocks := (m + fmaRows - 1) / fmaRows
	be.ParallelFor(rblocks, grainRows(2*k*n*fmaRows), func(lo, hi int) {
		for j0 := 0; j0 < n; j0 += ncBlock {
			jw := min(ncBlock, n-j0)
			for rb := lo; rb < hi; rb++ {
				i0 := rb * fmaRows
				ir := min(fmaRows, m-i0)
				if !useFMA32 || jw < fmaCols {
					matMulF32RowsGo(dst, a, b, i0, ir, j0, jw, k, n)
					continue
				}
				groups := jw / fmaCols
				jA := groups * fmaCols
				i, irr := i0, ir
				if irr >= 4 {
					mmPanel4FMA32(&dst[i*n+j0], int64(4*n),
						&a[(i+0)*k], &a[(i+1)*k], &a[(i+2)*k], &a[(i+3)*k], 4,
						&b[j0], int64(4*n), int64(k), int64(groups))
					i, irr = i+4, irr-4
				}
				if irr >= 2 {
					mmPanel2FMA32(&dst[i*n+j0], int64(4*n),
						&a[(i+0)*k], &a[(i+1)*k], 4,
						&b[j0], int64(4*n), int64(k), int64(groups))
					i, irr = i+2, irr-2
				}
				if irr == 1 {
					matMulF32RowsGo(dst, a, b, i, 1, j0, jA, k, n)
				}
				if jA < jw {
					matMulF32RowsGo(dst, a, b, i0, ir, j0+jA, jw-jA, k, n)
				}
			}
		}
	})
}

// matMulF32RowsGo is the scalar float32 fallback/fringe kernel: one
// output row at a time, i-p-j order, ascending-p accumulation with
// separate multiply and add (Go does not fuse on amd64, so the fringe
// rounding is stable run to run).
func matMulF32RowsGo(dst, a, b []float32, i0, ir, j0, jw, k, n int) {
	for i := i0; i < i0+ir; i++ {
		arow := a[i*k : (i+1)*k]
		orow := dst[i*n+j0 : i*n+j0+jw]
		for p := 0; p < k; p++ {
			av := arow[p]
			brow := b[p*n+j0:]
			for jj := range orow {
				orow[jj] += av * brow[jj]
			}
		}
	}
}
