package tensor

import (
	"fmt"
	"math"
	"os"
	"strings"
	"testing"
	"time"

	"snnsec/internal/compute"
)

// The fast tier gives up bit-identity with the float64 reference
// kernels, so its tests are tolerance-based: every result must sit
// within float32-accumulation distance of the default tier, and —
// the part that stays exact — must be bit-for-bit reproducible run to
// run and across backend widths.

func withFastTier(t *testing.T) {
	t.Helper()
	compute.SetPrecision(compute.Float32)
	t.Cleanup(func() { compute.SetPrecision(compute.Float64) })
}

// assertClose checks |got-want| ≤ tol·(|want| + 1) element-wise — a
// relative bound with an absolute floor, sized for float32 accumulation
// over the inner dimensions used here.
func assertClose(t *testing.T, name string, want, got *Tensor, tol float64) {
	t.Helper()
	if !want.SameShape(got) {
		t.Fatalf("%s: shape %v vs %v", name, want.Shape(), got.Shape())
	}
	wd, gd := want.Data(), got.Data()
	for i := range wd {
		if diff := math.Abs(wd[i] - gd[i]); diff > tol*(math.Abs(wd[i])+1) {
			t.Fatalf("%s: element %d: fast %v vs exact %v (diff %v)", name, i, gd[i], wd[i], diff)
		}
	}
}

const fastTol = 1e-4

func TestFastTierMatMulTolerance(t *testing.T) {
	r := NewRand(3, 5)
	shapes := []struct{ m, k, n int }{
		{1, 1, 1}, {2, 3, 2}, {5, 17, 7}, {16, 64, 16}, {33, 65, 31}, {64, 128, 48},
	}
	ser := compute.Serial{}
	for _, s := range shapes {
		a := RandN(r, 0, 1, s.m, s.k)
		b := RandN(r, 0, 1, s.k, s.n)
		exact := MatMulOn(ser, a, b)
		at := Transpose2D(a)
		exactATB := MatMulATBOn(ser, at, b)
		bt := Transpose2D(b)
		exactABT := MatMulABTOn(ser, a, bt)

		withFastTier(t)
		name := fmt.Sprintf("%dx%dx%d", s.m, s.k, s.n)
		assertClose(t, "MatMul "+name, exact, MatMulOn(ser, a, b), fastTol)
		assertClose(t, "MatMulATB "+name, exactATB, MatMulATBOn(ser, at, b), fastTol)
		assertClose(t, "MatMulABT "+name, exactABT, MatMulABTOn(ser, a, bt), fastTol)
		compute.SetPrecision(compute.Float64)
	}
}

func TestFastTierConvTolerance(t *testing.T) {
	r := NewRand(7, 11)
	x := RandN(r, 0, 1, 3, 2, 8, 8)
	w := RandN(r, 0, 0.5, 4, 2, 3, 3)
	bias := RandN(r, 0, 0.5, 4)
	p := ConvParams{Stride: 1, Padding: 1}
	ser := compute.Serial{}
	exact := Conv2DOn(ser, x, w, bias, p)
	gout := RandN(r, 0, 1, exact.Shape()...)
	exDX, exDW, exDB := Conv2DBackwardOn(ser, x, w, gout, p, true)

	withFastTier(t)
	assertClose(t, "Conv2D", exact, Conv2DOn(ser, x, w, bias, p), fastTol)
	dx, dw, db := Conv2DBackwardOn(ser, x, w, gout, p, true)
	assertClose(t, "Conv2D dx", exDX, dx, fastTol)
	assertClose(t, "Conv2D dweight", exDW, dw, fastTol)
	assertClose(t, "Conv2D dbias", exDB, db, fastTol)
}

// TestFastTierDeterminism pins the fast tier's own contract: results
// differ from float64 in ulps, but they are bit-identical run to run
// and across backend widths (the kernel choice per row block depends
// only on the shape, never on the partitioning).
func TestFastTierDeterminism(t *testing.T) {
	r := NewRand(13, 17)
	a := RandN(r, 0, 1, 33, 65)
	b := RandN(r, 0, 1, 65, 31)
	at := Transpose2D(a)
	withFastTier(t)
	ser := compute.Serial{}
	want := MatMulOn(ser, a, b)
	assertIdentical(t, "fast MatMul rerun", want, MatMulOn(ser, a, b))
	wantATB := MatMulATBOn(ser, at, b)
	forEachParallel(t, func(t *testing.T, be compute.Backend) {
		assertIdentical(t, "fast MatMul parallel", want, MatMulOn(be, a, b))
		assertIdentical(t, "fast MatMulATB parallel", wantATB, MatMulATBOn(be, at, b))
	})
}

func TestFastTierPairwiseReductions(t *testing.T) {
	r := NewRand(19, 23)
	for _, n := range []int{1, 63, 64, 65, 1000, 4097} {
		a := RandN(r, 0, 1, n)
		b := RandN(r, 0, 1, n)
		exactSum, exactDot := Sum(a), Dot(a, b)

		withFastTier(t)
		sum, dot := Sum(a), Dot(a, b)
		if math.Abs(sum-exactSum) > 1e-9*(math.Abs(exactSum)+1) {
			t.Errorf("pairwise Sum(%d) = %v, serial %v", n, sum, exactSum)
		}
		if math.Abs(dot-exactDot) > 1e-9*(math.Abs(exactDot)+1) {
			t.Errorf("pairwise Dot(%d) = %v, serial %v", n, dot, exactDot)
		}
		// The tree shape is a function of the length alone, so reruns are
		// bit-identical.
		if Sum(a) != sum || Dot(a, b) != dot {
			t.Errorf("pairwise reduction of length %d not reproducible", n)
		}
		compute.SetPrecision(compute.Float64)
	}
}

// TestFastTierPerfGate is the same-run relative perf gate of the fast
// tier: the float32 FMA path must beat the default blocked float64
// kernel by ≥1.3× on the 256³ matmul, in this very process. The BENCH
// record tracks the same pair; this test is what CI enforces.
func TestFastTierPerfGate(t *testing.T) {
	if !HasFastKernels() {
		t.Skip("no FMA/AVX2 micro-kernels on this CPU")
	}
	if raceEnabled {
		t.Skip("race instrumentation slows the float32 staging loops but not the assembly kernels; the non-race CI step enforces this gate")
	}
	r := NewRand(29, 31)
	const m, k, n = 256, 256, 256
	a := RandN(r, 0, 1, m, k)
	b := RandN(r, 0, 1, k, n)
	ser := compute.Serial{}

	// Warm both tiers and check equivalence before timing.
	exact := MatMulOn(ser, a, b)
	compute.SetPrecision(compute.Float32)
	defer compute.SetPrecision(compute.Float64)
	assertClose(t, "perf gate equivalence", exact, MatMulOn(ser, a, b), fastTol)
	compute.SetPrecision(compute.Float64)

	const iters = 3
	best := func(f func()) time.Duration {
		bestD := time.Duration(math.MaxInt64)
		for rep := 0; rep < 5; rep++ {
			start := time.Now()
			for i := 0; i < iters; i++ {
				f()
			}
			if d := time.Since(start); d < bestD {
				bestD = d
			}
		}
		return bestD
	}
	slow := best(func() { MatMulOn(ser, a, b) })
	compute.SetPrecision(compute.Float32)
	fast := best(func() { MatMulOn(ser, a, b) })
	compute.SetPrecision(compute.Float64)
	speedup := float64(slow) / float64(fast)
	t.Logf("default %v, fast %v (%.2fx) at %dx%dx%d", slow, fast, speedup, m, k, n)
	if speedup < 1.3 {
		t.Fatalf("fast tier only %.2fx over the default blocked kernel (want >= 1.3x)", speedup)
	}
}

// TestDensityCrossoverGate sweeps spike density 0–100% in 10% steps on
// the 256³ matmul, timing the select-accumulate spike kernel against
// the dense blocked kernel on identical inputs. It logs the table the
// dispatch thresholds are calibrated from (EXPERIMENTS.md holds the
// recorded copy; SNNSEC_WRITE_CROSSOVER=1 refreshes it), and asserts
// the dispatcher picks the measured-faster side at both extremes — a
// density-adaptive policy must never lose to the kernel it rejected at
// 0% or 100%.
func TestDensityCrossoverGate(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation distorts the sparse-vs-dense timing ratio; the non-race CI step enforces this gate")
	}
	rng := spikeRand(11)
	r := NewRand(41, 43)
	const m, k, n = 256, 256, 256
	b := RandN(r, 0, 1, k, n)
	ser := compute.Serial{}

	const iters = 2
	best := func(f func()) time.Duration {
		bestD := time.Duration(math.MaxInt64)
		for rep := 0; rep < 3; rep++ {
			start := time.Now()
			for i := 0; i < iters; i++ {
				f()
			}
			if d := time.Since(start); d < bestD {
				bestD = d
			}
		}
		return bestD
	}

	type row struct {
		density        float64
		dense, sparse  time.Duration
		speedup        float64
		dispatchSparse bool
	}
	var rows []row
	for pct := 0; pct <= 100; pct += 10 {
		density := float64(pct) / 100
		a := binaryTensor(rng, density, m, k)
		sp := PackSpikes(a)
		// Warm both kernels and pin equivalence at this density.
		assertIdentical(t, fmt.Sprintf("crossover equivalence at %d%%", pct),
			MatMulOn(ser, a, b), SpikeMatMulOn(ser, sp, b))
		dense := best(func() { MatMulOn(ser, a, b) })
		sparse := best(func() { SpikeMatMulOn(ser, sp, b) })
		rows = append(rows, row{
			density:        density,
			dense:          dense,
			sparse:         sparse,
			speedup:        float64(dense) / float64(sparse),
			dispatchSparse: compute.UseSparse(compute.KernelMatMul, sp.Density()),
		})
	}

	var table strings.Builder
	fmt.Fprintf(&table, "| density | dense | sparse | sparse speedup | dispatch |\n")
	fmt.Fprintf(&table, "|---|---|---|---|---|\n")
	crossover := -1.0
	for _, rw := range rows {
		pick := "dense"
		if rw.dispatchSparse {
			pick = "sparse"
		}
		fmt.Fprintf(&table, "| %3.0f%% | %v | %v | %.2fx | %s |\n",
			rw.density*100, rw.dense.Round(10*time.Microsecond), rw.sparse.Round(10*time.Microsecond), rw.speedup, pick)
		if rw.speedup >= 1 {
			crossover = rw.density
		}
	}
	t.Logf("density crossover sweep (%dx%dx%d, serial):\n%shighest density where sparse still wins: %.0f%%",
		m, k, n, table.String(), crossover*100)

	// The ends of the sweep are unambiguous: at 0% the spike kernel skips
	// everything, at 100% it can only add overhead to dense work. The
	// dispatcher must agree with the measurement on both.
	lo, hi := rows[0], rows[len(rows)-1]
	if !lo.dispatchSparse || lo.sparse > lo.dense {
		t.Errorf("at 0%% density: dispatch sparse=%v, sparse %v vs dense %v — dispatcher must take the winning sparse side",
			lo.dispatchSparse, lo.sparse, lo.dense)
	}
	if hi.dispatchSparse || hi.dense > hi.sparse {
		t.Errorf("at 100%% density: dispatch sparse=%v, dense %v vs sparse %v — dispatcher must take the winning dense side",
			hi.dispatchSparse, hi.dense, hi.sparse)
	}

	if os.Getenv("SNNSEC_WRITE_CROSSOVER") != "" {
		if err := updateCrossoverTable(table.String()); err != nil {
			t.Fatalf("updating EXPERIMENTS.md: %v", err)
		}
	}
}

// updateCrossoverTable replaces the marked section of EXPERIMENTS.md
// with a freshly measured crossover table.
func updateCrossoverTable(table string) error {
	const path = "../../EXPERIMENTS.md"
	const begin, end = "<!-- crossover:begin -->", "<!-- crossover:end -->"
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	s := string(raw)
	i := strings.Index(s, begin)
	j := strings.Index(s, end)
	if i < 0 || j < 0 || j < i {
		return fmt.Errorf("markers %q/%q not found", begin, end)
	}
	out := s[:i+len(begin)] + "\n" + table + s[j:]
	return os.WriteFile(path, []byte(out), 0o644)
}
