package tensor

// useAVX gates the AVX micro-kernel in matMulInto/matMulATBInto. AVX
// (256-bit VMULPD/VADDPD, no FMA — fusing would change rounding and
// break bit-identity with the scalar kernels) is available on every
// x86-64 server/desktop CPU since 2011; when absent the kernels fall
// back to the scalar 2×4 register tile.
var useAVX = hasAVXAsm()

// hasAVXAsm reports whether the CPU supports AVX and the OS preserves
// ymm state across context switches (CPUID.1:ECX {OSXSAVE, AVX} plus
// XGETBV XCR0 {XMM, YMM}).
func hasAVXAsm() bool

// mmPanel4AVX accumulates a 4-row × (groups·8)-column output panel:
//
//	dst[r][g*8+c] += Σ_p ar[p·aStepP/8] · b[p·bStepP/8 + g*8 + c]
//
// for r in [0,4), g in [0,groups), c in [0,8), where ar is the r-th of
// the four a-row cursors a0..a3 and all strides are in bytes. Each output
// element owns one ymm lane accumulated in ascending-p order, so the
// result is bit-identical to the scalar kernels (packed IEEE multiply
// and add round lanewise exactly like MULSD/ADDSD). The caller
// guarantees k ≥ 1 and full tiles (fringes run in Go).
//
//go:noescape
func mmPanel4AVX(dst *float64, dstRowStride int64, a0, a1, a2, a3 *float64, aStepP int64, b *float64, bStepP int64, k, groups int64)

// mmPanel2AVX is the two-row variant of mmPanel4AVX, used for the row
// fringe when m mod 4 is 2 or 3.
//
//go:noescape
func mmPanel2AVX(dst *float64, dstRowStride int64, a0, a1 *float64, aStepP int64, b *float64, bStepP int64, k, groups int64)
