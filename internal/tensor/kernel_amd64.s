// AVX micro-kernel for the blocked matmuls (see kernel_amd64.go for the
// contract and matmul.go for the blocking scheme). No FMA: fused
// multiply-add rounds once where the scalar kernels round twice, and the
// kernels promise bit-identical results.

#include "textflag.h"

// func hasAVXAsm() bool
TEXT ·hasAVXAsm(SB), NOSPLIT, $0-1
	MOVL $1, AX
	XORL CX, CX
	CPUID
	// Require CPUID.1:ECX.OSXSAVE[27] and .AVX[28].
	ANDL $(1<<27 | 1<<28), CX
	CMPL CX, $(1<<27 | 1<<28)
	JNE  novx
	// Require the OS to save XMM (XCR0 bit 1) and YMM (bit 2) state.
	XORL CX, CX
	XGETBV
	ANDL $6, AX
	CMPL AX, $6
	JNE  novx
	MOVB $1, ret+0(FP)
	RET

novx:
	MOVB $0, ret+0(FP)
	RET

// func mmPanel4AVX(dst *float64, dstRowStride int64, a0, a1, a2, a3 *float64, aStepP int64, b *float64, bStepP int64, k, groups int64)
//
// Register layout: Y0..Y7 hold the 4×8 accumulator tile (two ymm per
// row), Y8/Y9 the current 8 columns of b, Y10 the broadcast a
// coefficient, Y11 the product. DI/BX walk dst/b across column groups;
// SI, R9, R10, R11 are the four a-row cursors (reset per group), R12 the
// a step, R13 the b row stride, AX the k countdown, CX the group
// countdown, DX a scratch row pointer.
TEXT ·mmPanel4AVX(SB), NOSPLIT, $0-88
	MOVQ dst+0(FP), DI
	MOVQ dstRowStride+8(FP), R8
	MOVQ aStepP+48(FP), R12
	MOVQ b+56(FP), BX
	MOVQ bStepP+64(FP), R13
	MOVQ groups+80(FP), CX

gloop:
	TESTQ CX, CX
	JZ    done

	// Seed the accumulators from dst (the kernels accumulate into a
	// caller-zeroed or partially-filled output).
	MOVQ    DI, DX
	VMOVUPD (DX), Y0
	VMOVUPD 32(DX), Y1
	ADDQ    R8, DX
	VMOVUPD (DX), Y2
	VMOVUPD 32(DX), Y3
	ADDQ    R8, DX
	VMOVUPD (DX), Y4
	VMOVUPD 32(DX), Y5
	ADDQ    R8, DX
	VMOVUPD (DX), Y6
	VMOVUPD 32(DX), Y7

	// Reset the operand cursors for this column group.
	MOVQ a0+16(FP), SI
	MOVQ a1+24(FP), R9
	MOVQ a2+32(FP), R10
	MOVQ a3+40(FP), R11
	MOVQ BX, DX
	MOVQ k+72(FP), AX

ploop:
	VMOVUPD      (DX), Y8
	VMOVUPD      32(DX), Y9
	VBROADCASTSD (SI), Y10
	VMULPD       Y8, Y10, Y11
	VADDPD       Y11, Y0, Y0
	VMULPD       Y9, Y10, Y11
	VADDPD       Y11, Y1, Y1
	VBROADCASTSD (R9), Y10
	VMULPD       Y8, Y10, Y11
	VADDPD       Y11, Y2, Y2
	VMULPD       Y9, Y10, Y11
	VADDPD       Y11, Y3, Y3
	VBROADCASTSD (R10), Y10
	VMULPD       Y8, Y10, Y11
	VADDPD       Y11, Y4, Y4
	VMULPD       Y9, Y10, Y11
	VADDPD       Y11, Y5, Y5
	VBROADCASTSD (R11), Y10
	VMULPD       Y8, Y10, Y11
	VADDPD       Y11, Y6, Y6
	VMULPD       Y9, Y10, Y11
	VADDPD       Y11, Y7, Y7
	ADDQ         R12, SI
	ADDQ         R12, R9
	ADDQ         R12, R10
	ADDQ         R12, R11
	ADDQ         R13, DX
	DECQ         AX
	JNZ          ploop

	// Write the tile back.
	MOVQ    DI, DX
	VMOVUPD Y0, (DX)
	VMOVUPD Y1, 32(DX)
	ADDQ    R8, DX
	VMOVUPD Y2, (DX)
	VMOVUPD Y3, 32(DX)
	ADDQ    R8, DX
	VMOVUPD Y4, (DX)
	VMOVUPD Y5, 32(DX)
	ADDQ    R8, DX
	VMOVUPD Y6, (DX)
	VMOVUPD Y7, 32(DX)

	// Advance to the next 8 columns.
	ADDQ $64, DI
	ADDQ $64, BX
	DECQ CX
	JMP  gloop

done:
	VZEROUPPER
	RET

// func mmPanel2AVX(dst *float64, dstRowStride int64, a0, a1 *float64, aStepP int64, b *float64, bStepP int64, k, groups int64)
//
// Two-row variant of mmPanel4AVX for row fringes (m mod 4 in {2, 3});
// same contract, Y0..Y3 accumulators.
TEXT ·mmPanel2AVX(SB), NOSPLIT, $0-72
	MOVQ dst+0(FP), DI
	MOVQ dstRowStride+8(FP), R8
	MOVQ aStepP+32(FP), R12
	MOVQ b+40(FP), BX
	MOVQ bStepP+48(FP), R13
	MOVQ groups+64(FP), CX

gloop2:
	TESTQ CX, CX
	JZ    done2

	MOVQ    DI, DX
	VMOVUPD (DX), Y0
	VMOVUPD 32(DX), Y1
	ADDQ    R8, DX
	VMOVUPD (DX), Y2
	VMOVUPD 32(DX), Y3

	MOVQ a0+16(FP), SI
	MOVQ a1+24(FP), R9
	MOVQ BX, DX
	MOVQ k+56(FP), AX

ploop2:
	VMOVUPD      (DX), Y8
	VMOVUPD      32(DX), Y9
	VBROADCASTSD (SI), Y10
	VMULPD       Y8, Y10, Y11
	VADDPD       Y11, Y0, Y0
	VMULPD       Y9, Y10, Y11
	VADDPD       Y11, Y1, Y1
	VBROADCASTSD (R9), Y10
	VMULPD       Y8, Y10, Y11
	VADDPD       Y11, Y2, Y2
	VMULPD       Y9, Y10, Y11
	VADDPD       Y11, Y3, Y3
	ADDQ         R12, SI
	ADDQ         R12, R9
	ADDQ         R13, DX
	DECQ         AX
	JNZ          ploop2

	MOVQ    DI, DX
	VMOVUPD Y0, (DX)
	VMOVUPD Y1, 32(DX)
	ADDQ    R8, DX
	VMOVUPD Y2, (DX)
	VMOVUPD Y3, 32(DX)

	ADDQ $64, DI
	ADDQ $64, BX
	DECQ CX
	JMP  gloop2

done2:
	VZEROUPPER
	RET
