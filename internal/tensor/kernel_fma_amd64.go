package tensor

// useFMA32 gates the fast tier's FMA+AVX2 float32 micro-kernel in
// matMulF32Into. Unlike the default tier's AVX kernel, fusing the
// multiply-add is exactly the point here: the fast tier trades the
// bit-identity contract for speed, and FMA halves the rounding steps
// while doubling throughput. When FMA/AVX2 is absent the fast tier
// falls back to the scalar float32 loop (still deterministic, still
// float32 semantics — just slower).
var useFMA32 = hasFMAAsm()

// hasFMAAsm reports whether the CPU supports AVX2 and FMA and the OS
// preserves ymm state (CPUID.1:ECX {OSXSAVE, AVX, FMA}, XGETBV XCR0
// {XMM, YMM}, CPUID.7.0:EBX {AVX2}).
func hasFMAAsm() bool

// mmPanel4FMA32 accumulates a 4-row × (groups·16)-column float32 output
// panel:
//
//	dst[r][g*16+c] += Σ_p ar[p·aStepP/4] · b[p·bStepP/4 + g*16 + c]
//
// for r in [0,4), g in [0,groups), c in [0,16), where ar is the r-th of
// the four a-row cursors a0..a3 and all strides are in bytes. Each
// output element owns one ymm lane; the multiply-add is fused
// (VFMADD231PS), accumulated in ascending-p order — deterministic, but
// deliberately NOT bit-identical to a separate multiply+add. The caller
// guarantees k ≥ 1 and full tiles (fringes run in Go).
//
//go:noescape
func mmPanel4FMA32(dst *float32, dstRowStride int64, a0, a1, a2, a3 *float32, aStepP int64, b *float32, bStepP int64, k, groups int64)

// mmPanel2FMA32 is the two-row variant of mmPanel4FMA32, used for the
// row fringe when m mod 4 is 2 or 3.
//
//go:noescape
func mmPanel2FMA32(dst *float32, dstRowStride int64, a0, a1 *float32, aStepP int64, b *float32, bStepP int64, k, groups int64)
