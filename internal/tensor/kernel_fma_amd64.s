// FMA+AVX2 float32 micro-kernel for the fast tier (see
// kernel_fma_amd64.go for the contract and fast.go for the blocking
// scheme). The layout mirrors kernel_amd64.s with twice the lanes: a
// ymm register holds 8 float32, so a 4-row × 16-column accumulator tile
// again fills Y0..Y7 with two ymm per row, and VFMADD231PS replaces the
// VMULPD/VADDPD pair — one rounding per step instead of two, which is
// exactly the deviation from the default tier the fast tier opts into.

#include "textflag.h"

// func hasFMAAsm() bool
TEXT ·hasFMAAsm(SB), NOSPLIT, $0-1
	MOVL $1, AX
	XORL CX, CX
	CPUID
	// Require CPUID.1:ECX.FMA[12], .OSXSAVE[27] and .AVX[28].
	ANDL $(1<<12 | 1<<27 | 1<<28), CX
	CMPL CX, $(1<<12 | 1<<27 | 1<<28)
	JNE  nofma
	// Require the OS to save XMM (XCR0 bit 1) and YMM (bit 2) state.
	XORL CX, CX
	XGETBV
	ANDL $6, AX
	CMPL AX, $6
	JNE  nofma
	// Require CPUID.7.0:EBX.AVX2[5] for the 256-bit integer-free
	// broadcast forms.
	MOVL  $7, AX
	XORL  CX, CX
	CPUID
	TESTL $(1<<5), BX
	JZ    nofma
	MOVB  $1, ret+0(FP)
	RET

nofma:
	MOVB $0, ret+0(FP)
	RET

// func mmPanel4FMA32(dst *float32, dstRowStride int64, a0, a1, a2, a3 *float32, aStepP int64, b *float32, bStepP int64, k, groups int64)
//
// Register layout: Y0..Y7 hold the 4×16 accumulator tile (two ymm per
// row), Y8/Y9 the current 16 columns of b, Y10 the broadcast a
// coefficient. DI/BX walk dst/b across column groups; SI, R9, R10, R11
// are the four a-row cursors (reset per group), R12 the a step, R13 the
// b row stride, AX the k countdown, CX the group countdown, DX a
// scratch row pointer.
TEXT ·mmPanel4FMA32(SB), NOSPLIT, $0-88
	MOVQ dst+0(FP), DI
	MOVQ dstRowStride+8(FP), R8
	MOVQ aStepP+48(FP), R12
	MOVQ b+56(FP), BX
	MOVQ bStepP+64(FP), R13
	MOVQ groups+80(FP), CX

gloop:
	TESTQ CX, CX
	JZ    done

	// Seed the accumulators from dst (the kernel accumulates into a
	// caller-zeroed or partially-filled output).
	MOVQ    DI, DX
	VMOVUPS (DX), Y0
	VMOVUPS 32(DX), Y1
	ADDQ    R8, DX
	VMOVUPS (DX), Y2
	VMOVUPS 32(DX), Y3
	ADDQ    R8, DX
	VMOVUPS (DX), Y4
	VMOVUPS 32(DX), Y5
	ADDQ    R8, DX
	VMOVUPS (DX), Y6
	VMOVUPS 32(DX), Y7

	// Reset the operand cursors for this column group.
	MOVQ a0+16(FP), SI
	MOVQ a1+24(FP), R9
	MOVQ a2+32(FP), R10
	MOVQ a3+40(FP), R11
	MOVQ BX, DX
	MOVQ k+72(FP), AX

ploop:
	VMOVUPS      (DX), Y8
	VMOVUPS      32(DX), Y9
	VBROADCASTSS (SI), Y10
	VFMADD231PS  Y8, Y10, Y0
	VFMADD231PS  Y9, Y10, Y1
	VBROADCASTSS (R9), Y10
	VFMADD231PS  Y8, Y10, Y2
	VFMADD231PS  Y9, Y10, Y3
	VBROADCASTSS (R10), Y10
	VFMADD231PS  Y8, Y10, Y4
	VFMADD231PS  Y9, Y10, Y5
	VBROADCASTSS (R11), Y10
	VFMADD231PS  Y8, Y10, Y6
	VFMADD231PS  Y9, Y10, Y7
	ADDQ         R12, SI
	ADDQ         R12, R9
	ADDQ         R12, R10
	ADDQ         R12, R11
	ADDQ         R13, DX
	DECQ         AX
	JNZ          ploop

	// Write the tile back.
	MOVQ    DI, DX
	VMOVUPS Y0, (DX)
	VMOVUPS Y1, 32(DX)
	ADDQ    R8, DX
	VMOVUPS Y2, (DX)
	VMOVUPS Y3, 32(DX)
	ADDQ    R8, DX
	VMOVUPS Y4, (DX)
	VMOVUPS Y5, 32(DX)
	ADDQ    R8, DX
	VMOVUPS Y6, (DX)
	VMOVUPS Y7, 32(DX)

	// Advance to the next 16 columns (64 bytes of float32).
	ADDQ $64, DI
	ADDQ $64, BX
	DECQ CX
	JMP  gloop

done:
	VZEROUPPER
	RET

// func mmPanel2FMA32(dst *float32, dstRowStride int64, a0, a1 *float32, aStepP int64, b *float32, bStepP int64, k, groups int64)
//
// Two-row variant of mmPanel4FMA32 for row fringes (m mod 4 in {2, 3});
// same contract, Y0..Y3 accumulators.
TEXT ·mmPanel2FMA32(SB), NOSPLIT, $0-72
	MOVQ dst+0(FP), DI
	MOVQ dstRowStride+8(FP), R8
	MOVQ aStepP+32(FP), R12
	MOVQ b+40(FP), BX
	MOVQ bStepP+48(FP), R13
	MOVQ groups+64(FP), CX

gloop2:
	TESTQ CX, CX
	JZ    done2

	MOVQ    DI, DX
	VMOVUPS (DX), Y0
	VMOVUPS 32(DX), Y1
	ADDQ    R8, DX
	VMOVUPS (DX), Y2
	VMOVUPS 32(DX), Y3

	MOVQ a0+16(FP), SI
	MOVQ a1+24(FP), R9
	MOVQ BX, DX
	MOVQ k+56(FP), AX

ploop2:
	VMOVUPS      (DX), Y8
	VMOVUPS      32(DX), Y9
	VBROADCASTSS (SI), Y10
	VFMADD231PS  Y8, Y10, Y0
	VFMADD231PS  Y9, Y10, Y1
	VBROADCASTSS (R9), Y10
	VFMADD231PS  Y8, Y10, Y2
	VFMADD231PS  Y9, Y10, Y3
	ADDQ         R12, SI
	ADDQ         R12, R9
	ADDQ         R13, DX
	DECQ         AX
	JNZ          ploop2

	MOVQ    DI, DX
	VMOVUPS Y0, (DX)
	VMOVUPS Y1, 32(DX)
	ADDQ    R8, DX
	VMOVUPS Y2, (DX)
	VMOVUPS Y3, 32(DX)

	ADDQ $64, DI
	ADDQ $64, BX
	DECQ CX
	JMP  gloop2

done2:
	VZEROUPPER
	RET
