//go:build !amd64

package tensor

// Non-amd64 targets run the scalar 2×4 register tile everywhere.
const useAVX = false

// mmPanel4AVX is never called when useAVX is false.
func mmPanel4AVX(dst *float64, dstRowStride int64, a0, a1, a2, a3 *float64, aStepP int64, b *float64, bStepP int64, k, groups int64) {
	panic("tensor: AVX micro-kernel called on a non-amd64 target")
}

// mmPanel2AVX is never called when useAVX is false.
func mmPanel2AVX(dst *float64, dstRowStride int64, a0, a1 *float64, aStepP int64, b *float64, bStepP int64, k, groups int64) {
	panic("tensor: AVX micro-kernel called on a non-amd64 target")
}
