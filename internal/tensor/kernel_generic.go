//go:build !amd64

package tensor

// Non-amd64 targets run the scalar 2×4 register tile everywhere.
const useAVX = false

// mmPanel4AVX is never called when useAVX is false.
func mmPanel4AVX(dst *float64, dstRowStride int64, a0, a1, a2, a3 *float64, aStepP int64, b *float64, bStepP int64, k, groups int64) {
	panic("tensor: AVX micro-kernel called on a non-amd64 target")
}

// mmPanel2AVX is never called when useAVX is false.
func mmPanel2AVX(dst *float64, dstRowStride int64, a0, a1 *float64, aStepP int64, b *float64, bStepP int64, k, groups int64) {
	panic("tensor: AVX micro-kernel called on a non-amd64 target")
}

// Non-amd64 targets run the fast tier on the scalar float32 loop.
const useFMA32 = false

// mmPanel4FMA32 is never called when useFMA32 is false.
func mmPanel4FMA32(dst *float32, dstRowStride int64, a0, a1, a2, a3 *float32, aStepP int64, b *float32, bStepP int64, k, groups int64) {
	panic("tensor: FMA micro-kernel called on a non-amd64 target")
}

// mmPanel2FMA32 is never called when useFMA32 is false.
func mmPanel2FMA32(dst *float32, dstRowStride int64, a0, a1 *float32, aStepP int64, b *float32, bStepP int64, k, groups int64) {
	panic("tensor: FMA micro-kernel called on a non-amd64 target")
}
