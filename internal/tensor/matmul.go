package tensor

import (
	"fmt"

	"snnsec/internal/compute"
)

// MatMul returns the matrix product a·b for 2-D tensors of shapes [m,k]
// and [k,n] on the default backend.
func MatMul(a, b *Tensor) *Tensor { return MatMulOn(nil, a, b) }

// MatMulOn returns a·b computed on be (nil selects the default backend).
// Rows of the output are partitioned across workers; the inner loops are
// ordered i-k-j so the innermost loop streams contiguously over both b
// and the output row.
func MatMulOn(be compute.Backend, a, b *Tensor) *Tensor {
	if a.Dims() != 2 || b.Dims() != 2 {
		panic(fmt.Sprintf("tensor: MatMul needs 2-d operands, got %v x %v", a.shape, b.shape))
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %v x %v", a.shape, b.shape))
	}
	out := New(m, n)
	matMulInto(backendOr(be), out.data, a.data, b.data, m, k, n, true)
	return out
}

// skipGate lazily decides whether the zero-skip fast path is sound. The
// skip (spike matrices are mostly zeros) may only fire when b is finite
// everywhere — 0·NaN and 0·Inf must propagate NaN — but scanning b up
// front would tax every dense product, so the allFinite check runs at
// most once per block and only after a zero coefficient is actually
// encountered. The verdict depends only on b, never on partitioning, so
// Serial and Parallel stay bit-identical.
type skipGate struct {
	b       []float64
	checked bool
	ok      bool
}

func (g *skipGate) skip() bool {
	if !g.checked {
		g.checked = true
		g.ok = allFinite(g.b)
	}
	return g.ok
}

// matMulInto accumulates a·b into dst (len m*n, caller-zeroed), reading a
// [m,k] and b [k,n]. Rows of dst are partitioned across workers.
// allowSkip enables the zero-skip fast path (behind skipGate); pass false
// when a is known dense so zero coefficients are not even tested for.
func matMulInto(be compute.Backend, dst, a, b []float64, m, k, n int, allowSkip bool) {
	be.ParallelFor(m, grainRows(2*k*n), func(lo, hi int) {
		gate := skipGate{b: b}
		for i := lo; i < hi; i++ {
			arow := a[i*k : (i+1)*k]
			orow := dst[i*n : (i+1)*n]
			for p := 0; p < k; p++ {
				av := arow[p]
				if av == 0 && allowSkip && gate.skip() {
					continue
				}
				brow := b[p*n : (p+1)*n]
				for j := 0; j < n; j++ {
					orow[j] += av * brow[j]
				}
			}
		}
	})
}

// MatMulATB returns aᵀ·b for a of shape [k,m] and b of shape [k,n],
// producing [m,n], without materialising the transpose.
func MatMulATB(a, b *Tensor) *Tensor { return MatMulATBOn(nil, a, b) }

// MatMulATBOn returns aᵀ·b computed on be (nil selects the default
// backend).
func MatMulATBOn(be compute.Backend, a, b *Tensor) *Tensor {
	if a.Dims() != 2 || b.Dims() != 2 {
		panic(fmt.Sprintf("tensor: MatMulATB needs 2-d operands, got %v x %v", a.shape, b.shape))
	}
	k, m := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulATB dimension mismatch %v x %v", a.shape, b.shape))
	}
	out := New(m, n)
	matMulATBInto(backendOr(be), out.data, a.data, b.data, k, m, n, true)
	return out
}

// matMulATBInto accumulates aᵀ·b into dst (len m*n, caller-zeroed) for a
// [k,m] and b [k,n]. Output rows (columns of a) are partitioned across
// workers; each element accumulates over p in ascending order regardless
// of partitioning. allowSkip follows the same contract as matMulInto.
func matMulATBInto(be compute.Backend, dst, a, b []float64, k, m, n int, allowSkip bool) {
	be.ParallelFor(m, grainRows(2*k*n), func(lo, hi int) {
		gate := skipGate{b: b}
		for i := lo; i < hi; i++ {
			orow := dst[i*n : (i+1)*n]
			for p := 0; p < k; p++ {
				av := a[p*m+i]
				if av == 0 && allowSkip && gate.skip() {
					continue
				}
				brow := b[p*n : (p+1)*n]
				for j := 0; j < n; j++ {
					orow[j] += av * brow[j]
				}
			}
		}
	})
}

// MatMulABT returns a·bᵀ for a of shape [m,k] and b of shape [n,k],
// producing [m,n], without materialising the transpose.
func MatMulABT(a, b *Tensor) *Tensor { return MatMulABTOn(nil, a, b) }

// MatMulABTOn returns a·bᵀ computed on be (nil selects the default
// backend).
func MatMulABTOn(be compute.Backend, a, b *Tensor) *Tensor {
	if a.Dims() != 2 || b.Dims() != 2 {
		panic(fmt.Sprintf("tensor: MatMulABT needs 2-d operands, got %v x %v", a.shape, b.shape))
	}
	m, k := a.shape[0], a.shape[1]
	n, k2 := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulABT dimension mismatch %v x %v", a.shape, b.shape))
	}
	out := New(m, n)
	matMulABTInto(backendOr(be), out.data, a.data, b.data, m, k, n)
	return out
}

// matMulABTInto writes a·bᵀ into dst (len m*n) for a [m,k] and b [n,k].
// Each dst element is one dot product, so no accumulation crosses blocks.
func matMulABTInto(be compute.Backend, dst, a, b []float64, m, k, n int) {
	be.ParallelFor(m, grainRows(2*k*n), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a[i*k : (i+1)*k]
			orow := dst[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				brow := b[j*k : (j+1)*k]
				var s float64
				for p := 0; p < k; p++ {
					s += arow[p] * brow[p]
				}
				orow[j] = s
			}
		}
	})
}

// Transpose2D returns the transpose of a 2-D tensor.
func Transpose2D(a *Tensor) *Tensor { return Transpose2DOn(nil, a) }

// Transpose2DOn returns the transpose computed on be (nil selects the
// default backend), partitioned over output rows.
func Transpose2DOn(be compute.Backend, a *Tensor) *Tensor {
	if a.Dims() != 2 {
		panic(fmt.Sprintf("tensor: Transpose2D on %v", a.shape))
	}
	m, n := a.shape[0], a.shape[1]
	out := New(n, m)
	backendOr(be).ParallelFor(n, grainRows(m), func(lo, hi int) {
		for j := lo; j < hi; j++ {
			orow := out.data[j*m : (j+1)*m]
			for i := 0; i < m; i++ {
				orow[i] = a.data[i*n+j]
			}
		}
	})
	return out
}

// AddRowVector returns a with the 1-D vector v (length = a columns) added
// to every row of the 2-D tensor a. Used for bias broadcasting.
func AddRowVector(a, v *Tensor) *Tensor { return AddRowVectorOn(nil, a, v) }

// AddRowVectorOn broadcasts v over a's rows on be (nil selects the
// default backend).
func AddRowVectorOn(be compute.Backend, a, v *Tensor) *Tensor {
	if a.Dims() != 2 || v.Dims() != 1 || v.shape[0] != a.shape[1] {
		panic(fmt.Sprintf("tensor: AddRowVector shape mismatch %v + %v", a.shape, v.shape))
	}
	m, n := a.shape[0], a.shape[1]
	out := New(m, n)
	backendOr(be).ParallelFor(m, grainRows(n), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for j := 0; j < n; j++ {
				out.data[i*n+j] = a.data[i*n+j] + v.data[j]
			}
		}
	})
	return out
}

// SumRows returns the column sums of a 2-D tensor as a 1-D vector. It is
// the gradient counterpart of AddRowVector.
func SumRows(a *Tensor) *Tensor { return SumRowsOn(nil, a) }

// SumRowsOn returns the column sums computed on be (nil selects the
// default backend). Columns are partitioned across workers; each column
// accumulates over rows in ascending order regardless of partitioning.
func SumRowsOn(be compute.Backend, a *Tensor) *Tensor {
	if a.Dims() != 2 {
		panic(fmt.Sprintf("tensor: SumRows on %v", a.shape))
	}
	m, n := a.shape[0], a.shape[1]
	out := New(n)
	backendOr(be).ParallelFor(n, grainRows(m), func(lo, hi int) {
		for j := lo; j < hi; j++ {
			var s float64
			for i := 0; i < m; i++ {
				s += a.data[i*n+j]
			}
			out.data[j] = s
		}
	})
	return out
}
