package tensor

import "fmt"

// MatMul returns the matrix product a·b for 2-D tensors of shapes [m,k] and
// [k,n]. The inner loops are ordered i-k-j so the innermost loop streams
// contiguously over both b and the output row.
func MatMul(a, b *Tensor) *Tensor {
	if a.Dims() != 2 || b.Dims() != 2 {
		panic(fmt.Sprintf("tensor: MatMul needs 2-d operands, got %v x %v", a.shape, b.shape))
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %v x %v", a.shape, b.shape))
	}
	out := New(m, n)
	for i := 0; i < m; i++ {
		arow := a.data[i*k : (i+1)*k]
		orow := out.data[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := b.data[p*n : (p+1)*n]
			for j := 0; j < n; j++ {
				orow[j] += av * brow[j]
			}
		}
	}
	return out
}

// MatMulATB returns aᵀ·b for a of shape [k,m] and b of shape [k,n],
// producing [m,n], without materialising the transpose.
func MatMulATB(a, b *Tensor) *Tensor {
	if a.Dims() != 2 || b.Dims() != 2 {
		panic(fmt.Sprintf("tensor: MatMulATB needs 2-d operands, got %v x %v", a.shape, b.shape))
	}
	k, m := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulATB dimension mismatch %v x %v", a.shape, b.shape))
	}
	out := New(m, n)
	for p := 0; p < k; p++ {
		arow := a.data[p*m : (p+1)*m]
		brow := b.data[p*n : (p+1)*n]
		for i := 0; i < m; i++ {
			av := arow[i]
			if av == 0 {
				continue
			}
			orow := out.data[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				orow[j] += av * brow[j]
			}
		}
	}
	return out
}

// MatMulABT returns a·bᵀ for a of shape [m,k] and b of shape [n,k],
// producing [m,n], without materialising the transpose.
func MatMulABT(a, b *Tensor) *Tensor {
	if a.Dims() != 2 || b.Dims() != 2 {
		panic(fmt.Sprintf("tensor: MatMulABT needs 2-d operands, got %v x %v", a.shape, b.shape))
	}
	m, k := a.shape[0], a.shape[1]
	n, k2 := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulABT dimension mismatch %v x %v", a.shape, b.shape))
	}
	out := New(m, n)
	for i := 0; i < m; i++ {
		arow := a.data[i*k : (i+1)*k]
		orow := out.data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b.data[j*k : (j+1)*k]
			var s float64
			for p := 0; p < k; p++ {
				s += arow[p] * brow[p]
			}
			orow[j] = s
		}
	}
	return out
}

// Transpose2D returns the transpose of a 2-D tensor.
func Transpose2D(a *Tensor) *Tensor {
	if a.Dims() != 2 {
		panic(fmt.Sprintf("tensor: Transpose2D on %v", a.shape))
	}
	m, n := a.shape[0], a.shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.data[j*m+i] = a.data[i*n+j]
		}
	}
	return out
}

// AddRowVector returns a with the 1-D vector v (length = a columns) added
// to every row of the 2-D tensor a. Used for bias broadcasting.
func AddRowVector(a, v *Tensor) *Tensor {
	if a.Dims() != 2 || v.Dims() != 1 || v.shape[0] != a.shape[1] {
		panic(fmt.Sprintf("tensor: AddRowVector shape mismatch %v + %v", a.shape, v.shape))
	}
	m, n := a.shape[0], a.shape[1]
	out := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.data[i*n+j] = a.data[i*n+j] + v.data[j]
		}
	}
	return out
}

// SumRows returns the column sums of a 2-D tensor as a 1-D vector. It is
// the gradient counterpart of AddRowVector.
func SumRows(a *Tensor) *Tensor {
	if a.Dims() != 2 {
		panic(fmt.Sprintf("tensor: SumRows on %v", a.shape))
	}
	m, n := a.shape[0], a.shape[1]
	out := New(n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.data[j] += a.data[i*n+j]
		}
	}
	return out
}
