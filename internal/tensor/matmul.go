package tensor

import (
	"fmt"

	"snnsec/internal/compute"
)

// The a·b and aᵀ·b kernels share a cache-blocked, register-tiled layout:
// the output is cut into row blocks of asmRows rows, partitioned across
// workers via Backend.ParallelFor, and each worker walks its rows in
// ncBlock-column panels (panel-major, so the slab of b a panel streams is
// reused by every row block the worker owns before moving on). Inside a
// panel a full dense row block runs on the AVX micro-kernel when the CPU
// has one (4 rows × 8 columns of accumulators live in ymm registers
// across the whole k loop), and otherwise on a 2×4 scalar register tile;
// rows containing zeros take a zero-skipping scalar path instead when
// the finiteness gate allows it. a·bᵀ reaches the same panel kernels by
// packing bᵀ into a pooled [k,n] panel first: its reduction runs along
// the contiguous dimension of b, and the packed panel turns that into
// the a·b memory layout without touching the per-element reduction
// order.
//
// Every output element is accumulated by a single accumulator in
// ascending-k order in all of these paths — packed IEEE multiplies and
// adds round lanewise exactly like the scalar instructions — so the
// blocked kernels are bit-identical to the naive reference kernels in
// naive.go, and Serial/Parallel backends remain bit-identical to each
// other (row-block writes are disjoint). batched_test.go pins both
// properties.
const (
	// mrTile × nrTile is the scalar register tile. 2×4 keeps the 8
	// float64 accumulators plus the 2+4 operand temporaries within the
	// 16-register floating-point budget of amd64 — a 4×4 tile spills
	// accumulators to the stack every iteration.
	mrTile = 2
	nrTile = 4
	// asmRows × asmCols is the AVX register tile: 4 rows × two 4-wide
	// ymm accumulators per row, so each row has independent add chains
	// and the loads of b amortise over four rows.
	asmRows = 4
	asmCols = 8
	// ncBlock is the column-panel width: workers sweep the output in
	// panels of at most this many columns so the k×ncBlock slab of b a
	// panel streams stays cache-resident while every row block consumes
	// it.
	ncBlock = 256
)

// MatMul returns the matrix product a·b for 2-D tensors of shapes [m,k]
// and [k,n] on the default backend.
func MatMul(a, b *Tensor) *Tensor { return MatMulOn(nil, a, b) }

// MatMulOn returns a·b computed on be (nil selects the default backend)
// using the cache-blocked micro-kernel.
func MatMulOn(be compute.Backend, a, b *Tensor) *Tensor {
	m, k, n := matMulShapes("MatMul", a, b)
	out := New(m, n)
	matMulInto(backendOr(be), out.data, a.data, b.data, m, k, n, true)
	return out
}

func matMulShapes(name string, a, b *Tensor) (m, k, n int) {
	if a.Dims() != 2 || b.Dims() != 2 {
		panic(fmt.Sprintf("tensor: %s needs 2-d operands, got %v x %v", name, a.shape, b.shape))
	}
	if a.shape[1] != b.shape[0] {
		panic(fmt.Sprintf("tensor: %s inner dimension mismatch %v x %v", name, a.shape, b.shape))
	}
	return a.shape[0], a.shape[1], b.shape[1]
}

// skipGate lazily decides whether the zero-skip fast path is sound. The
// skip (spike matrices are mostly zeros) may only fire when b is finite
// everywhere — 0·NaN and 0·Inf must propagate NaN — but scanning b up
// front would tax every dense product, so the allFinite check runs at
// most once per block and only after a zero coefficient is actually
// encountered. The verdict depends only on b, never on partitioning, so
// Serial and Parallel stay bit-identical.
type skipGate struct {
	b       []float64
	checked bool
	ok      bool
}

func (g *skipGate) skip() bool {
	if !g.checked {
		g.checked = true
		g.ok = allFinite(g.b)
	}
	return g.ok
}

// hasZero reports whether s contains an exact zero (either sign).
func hasZero(s []float64) bool {
	for _, v := range s {
		if v == 0 {
			return true
		}
	}
	return false
}

// matMulInto accumulates a·b into dst (len m*n, caller-zeroed), reading a
// [m,k] and b [k,n]. Row blocks of dst are partitioned across workers.
// allowSkip enables the zero-skip fast path (behind skipGate); pass false
// when a is known dense so zero coefficients are not even tested for.
func matMulInto(be compute.Backend, dst, a, b []float64, m, k, n int, allowSkip bool) {
	if k == 0 {
		return
	}
	if compute.FastTier() {
		matMulFastInto(be, dst, a, b, m, k, n)
		return
	}
	rblocks := (m + asmRows - 1) / asmRows
	be.ParallelFor(rblocks, grainRows(2*k*n*asmRows), func(lo, hi int) {
		gate := skipGate{b: b}
		// Hoist the skip decision out of the micro-kernels: the gate
		// verdict depends only on b, and skipping can only matter on rows
		// that actually contain zeros, so zero-free row blocks take the
		// branch-free (possibly AVX) loop. The per-(row, k) skip
		// decisions are exactly the naive kernel's.
		doSkip := make([]bool, hi-lo)
		for rb := lo; rb < hi; rb++ {
			i0 := rb * asmRows
			ir := min(asmRows, m-i0)
			doSkip[rb-lo] = allowSkip && hasZero(a[i0*k:(i0+ir)*k]) && gate.skip()
		}
		for j0 := 0; j0 < n; j0 += ncBlock {
			jw := min(ncBlock, n-j0)
			for rb := lo; rb < hi; rb++ {
				i0 := rb * asmRows
				ir := min(asmRows, m-i0)
				if !useAVX || doSkip[rb-lo] || jw < asmCols {
					matMulRowsGo(dst, a, b, i0, ir, j0, jw, k, n, doSkip[rb-lo])
					continue
				}
				groups := jw / asmCols
				jA := groups * asmCols
				i, irr := i0, ir
				if irr >= 4 {
					mmPanel4AVX(&dst[i*n+j0], int64(8*n),
						&a[(i+0)*k], &a[(i+1)*k], &a[(i+2)*k], &a[(i+3)*k], 8,
						&b[j0], int64(8*n), int64(k), int64(groups))
					i, irr = i+4, irr-4
				}
				if irr >= 2 {
					mmPanel2AVX(&dst[i*n+j0], int64(8*n),
						&a[(i+0)*k], &a[(i+1)*k], 8,
						&b[j0], int64(8*n), int64(k), int64(groups))
					i, irr = i+2, irr-2
				}
				if irr == 1 {
					matMulRowsGo(dst, a, b, i, 1, j0, jA, k, n, false)
				}
				if jA < jw {
					matMulRowsGo(dst, a, b, i0, ir, j0+jA, jw-jA, k, n, false)
				}
			}
		}
	})
}

// matMulRowsGo covers an ir×jw sub-panel with 2×4 scalar register tiles
// plus a single-row loop for an odd final row.
func matMulRowsGo(dst, a, b []float64, i0, ir, j0, jw, k, n int, doSkip bool) {
	for ; ir >= mrTile; i0, ir = i0+mrTile, ir-mrTile {
		matMulPanel2x4(dst, a, b, i0, j0, jw, k, n, doSkip)
	}
	if ir == 1 {
		arow := a[i0*k : (i0+1)*k]
		orow := dst[i0*n+j0 : i0*n+j0+jw]
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 && doSkip {
				continue
			}
			brow := b[p*n+j0:]
			for jj := range orow {
				orow[jj] += av * brow[jj]
			}
		}
	}
}

// matMulPanel2x4 runs the 2×4 scalar micro-kernel over the row pair
// [i0, i0+2) and the column panel [j0, j0+jw). doSkip selects the
// zero-skipping loop body; the caller has already folded the finiteness
// gate into it, so a row's term is skipped iff its a coefficient is zero
// — the same per-element decision the naive kernel makes.
func matMulPanel2x4(dst, a, b []float64, i0, j0, jw, k, n int, doSkip bool) {
	a0 := a[(i0+0)*k : (i0+1)*k]
	a1 := a[(i0+1)*k : (i0+2)*k]
	j := j0
	for ; j+nrTile <= j0+jw; j += nrTile {
		d0 := (*[nrTile]float64)(dst[(i0+0)*n+j:])
		d1 := (*[nrTile]float64)(dst[(i0+1)*n+j:])
		c00, c01, c02, c03 := d0[0], d0[1], d0[2], d0[3]
		c10, c11, c12, c13 := d1[0], d1[1], d1[2], d1[3]
		if doSkip {
			for p := 0; p < k; p++ {
				bv := (*[nrTile]float64)(b[p*n+j:])
				b0, b1, b2, b3 := bv[0], bv[1], bv[2], bv[3]
				if av := a0[p]; av != 0 {
					c00 += av * b0
					c01 += av * b1
					c02 += av * b2
					c03 += av * b3
				}
				if av := a1[p]; av != 0 {
					c10 += av * b0
					c11 += av * b1
					c12 += av * b2
					c13 += av * b3
				}
			}
		} else {
			for p := 0; p < k; p++ {
				bv := (*[nrTile]float64)(b[p*n+j:])
				av0, av1 := a0[p], a1[p]
				c00 += av0 * bv[0]
				c01 += av0 * bv[1]
				c02 += av0 * bv[2]
				c03 += av0 * bv[3]
				c10 += av1 * bv[0]
				c11 += av1 * bv[1]
				c12 += av1 * bv[2]
				c13 += av1 * bv[3]
			}
		}
		d0[0], d0[1], d0[2], d0[3] = c00, c01, c02, c03
		d1[0], d1[1], d1[2], d1[3] = c10, c11, c12, c13
	}
	for ; j < j0+jw; j++ {
		// Column fringe: one dst column, same ascending-k accumulation.
		c0, c1 := dst[(i0+0)*n+j], dst[(i0+1)*n+j]
		for p := 0; p < k; p++ {
			bv := b[p*n+j]
			if av := a0[p]; !doSkip || av != 0 {
				c0 += av * bv
			}
			if av := a1[p]; !doSkip || av != 0 {
				c1 += av * bv
			}
		}
		dst[(i0+0)*n+j], dst[(i0+1)*n+j] = c0, c1
	}
}

// MatMulATB returns aᵀ·b for a of shape [k,m] and b of shape [k,n],
// producing [m,n], without materialising the transpose.
func MatMulATB(a, b *Tensor) *Tensor { return MatMulATBOn(nil, a, b) }

// MatMulATBOn returns aᵀ·b computed on be (nil selects the default
// backend) using the cache-blocked micro-kernel.
func MatMulATBOn(be compute.Backend, a, b *Tensor) *Tensor {
	if a.Dims() != 2 || b.Dims() != 2 {
		panic(fmt.Sprintf("tensor: MatMulATB needs 2-d operands, got %v x %v", a.shape, b.shape))
	}
	k, m := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulATB dimension mismatch %v x %v", a.shape, b.shape))
	}
	out := New(m, n)
	matMulATBInto(backendOr(be), out.data, a.data, b.data, k, m, n, true)
	return out
}

// matMulATBInto accumulates aᵀ·b into dst (len m*n, caller-zeroed) for a
// [k,m] and b [k,n]. Row blocks of dst (column blocks of a) are
// partitioned across workers; each element accumulates over p in
// ascending order regardless of partitioning. allowSkip follows the same
// contract as matMulInto. The AVX micro-kernel is shared with matMulInto:
// only the stepping of the a pointers differs (down a column of a instead
// of along a row).
func matMulATBInto(be compute.Backend, dst, a, b []float64, k, m, n int, allowSkip bool) {
	if k == 0 {
		return
	}
	if compute.FastTier() {
		matMulATBFastInto(be, dst, a, b, k, m, n)
		return
	}
	rblocks := (m + asmRows - 1) / asmRows
	be.ParallelFor(rblocks, grainRows(2*k*n*asmRows), func(lo, hi int) {
		gate := skipGate{b: b}
		doSkip := make([]bool, hi-lo)
		for rb := lo; rb < hi; rb++ {
			i0 := rb * asmRows
			ir := min(asmRows, m-i0)
			anyZero := false
			if allowSkip {
			scan:
				for p := 0; p < k; p++ {
					for i := i0; i < i0+ir; i++ {
						if a[p*m+i] == 0 {
							anyZero = true
							break scan
						}
					}
				}
			}
			doSkip[rb-lo] = anyZero && gate.skip()
		}
		for j0 := 0; j0 < n; j0 += ncBlock {
			jw := min(ncBlock, n-j0)
			for rb := lo; rb < hi; rb++ {
				i0 := rb * asmRows
				ir := min(asmRows, m-i0)
				if !useAVX || doSkip[rb-lo] || jw < asmCols {
					matMulATBRowsGo(dst, a, b, i0, ir, j0, jw, k, m, n, doSkip[rb-lo])
					continue
				}
				groups := jw / asmCols
				jA := groups * asmCols
				i, irr := i0, ir
				if irr >= 4 {
					mmPanel4AVX(&dst[i*n+j0], int64(8*n),
						&a[i], &a[i+1], &a[i+2], &a[i+3], int64(8*m),
						&b[j0], int64(8*n), int64(k), int64(groups))
					i, irr = i+4, irr-4
				}
				if irr >= 2 {
					mmPanel2AVX(&dst[i*n+j0], int64(8*n),
						&a[i], &a[i+1], int64(8*m),
						&b[j0], int64(8*n), int64(k), int64(groups))
					i, irr = i+2, irr-2
				}
				if irr == 1 {
					matMulATBRowsGo(dst, a, b, i, 1, j0, jA, k, m, n, false)
				}
				if jA < jw {
					matMulATBRowsGo(dst, a, b, i0, ir, j0+jA, jw-jA, k, m, n, false)
				}
			}
		}
	})
}

// matMulATBRowsGo covers an ir×jw sub-panel with 2×4 scalar register
// tiles plus a single-row loop for an odd final row.
func matMulATBRowsGo(dst, a, b []float64, i0, ir, j0, jw, k, m, n int, doSkip bool) {
	for ; ir >= mrTile; i0, ir = i0+mrTile, ir-mrTile {
		matMulATBPanel2x4(dst, a, b, i0, j0, jw, k, m, n, doSkip)
	}
	if ir == 1 {
		orow := dst[i0*n+j0 : i0*n+j0+jw]
		for p := 0; p < k; p++ {
			av := a[p*m+i0]
			if av == 0 && doSkip {
				continue
			}
			brow := b[p*n+j0:]
			for jj := range orow {
				orow[jj] += av * brow[jj]
			}
		}
	}
}

// matMulATBPanel2x4 is the 2×4 scalar micro-kernel of matMulATBInto: the
// two a coefficients of a step are adjacent in memory (a row-major row of
// a), so both operand loads are unit-stride.
func matMulATBPanel2x4(dst, a, b []float64, i0, j0, jw, k, m, n int, doSkip bool) {
	j := j0
	for ; j+nrTile <= j0+jw; j += nrTile {
		d0 := (*[nrTile]float64)(dst[(i0+0)*n+j:])
		d1 := (*[nrTile]float64)(dst[(i0+1)*n+j:])
		c00, c01, c02, c03 := d0[0], d0[1], d0[2], d0[3]
		c10, c11, c12, c13 := d1[0], d1[1], d1[2], d1[3]
		if doSkip {
			for p := 0; p < k; p++ {
				av := (*[mrTile]float64)(a[p*m+i0:])
				bv := (*[nrTile]float64)(b[p*n+j:])
				b0, b1, b2, b3 := bv[0], bv[1], bv[2], bv[3]
				if v := av[0]; v != 0 {
					c00 += v * b0
					c01 += v * b1
					c02 += v * b2
					c03 += v * b3
				}
				if v := av[1]; v != 0 {
					c10 += v * b0
					c11 += v * b1
					c12 += v * b2
					c13 += v * b3
				}
			}
		} else {
			for p := 0; p < k; p++ {
				av := (*[mrTile]float64)(a[p*m+i0:])
				bv := (*[nrTile]float64)(b[p*n+j:])
				v0, v1 := av[0], av[1]
				c00 += v0 * bv[0]
				c01 += v0 * bv[1]
				c02 += v0 * bv[2]
				c03 += v0 * bv[3]
				c10 += v1 * bv[0]
				c11 += v1 * bv[1]
				c12 += v1 * bv[2]
				c13 += v1 * bv[3]
			}
		}
		d0[0], d0[1], d0[2], d0[3] = c00, c01, c02, c03
		d1[0], d1[1], d1[2], d1[3] = c10, c11, c12, c13
	}
	for ; j < j0+jw; j++ {
		c0, c1 := dst[(i0+0)*n+j], dst[(i0+1)*n+j]
		for p := 0; p < k; p++ {
			bv := b[p*n+j]
			if v := a[p*m+i0]; !doSkip || v != 0 {
				c0 += v * bv
			}
			if v := a[p*m+i0+1]; !doSkip || v != 0 {
				c1 += v * bv
			}
		}
		dst[(i0+0)*n+j], dst[(i0+1)*n+j] = c0, c1
	}
}

// MatMulABT returns a·bᵀ for a of shape [m,k] and b of shape [n,k],
// producing [m,n], without materialising the transpose.
func MatMulABT(a, b *Tensor) *Tensor { return MatMulABTOn(nil, a, b) }

// MatMulABTOn returns a·bᵀ computed on be (nil selects the default
// backend) using the cache-blocked micro-kernel.
func MatMulABTOn(be compute.Backend, a, b *Tensor) *Tensor {
	if a.Dims() != 2 || b.Dims() != 2 {
		panic(fmt.Sprintf("tensor: MatMulABT needs 2-d operands, got %v x %v", a.shape, b.shape))
	}
	m, k := a.shape[0], a.shape[1]
	n, k2 := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulABT dimension mismatch %v x %v", a.shape, b.shape))
	}
	out := New(m, n)
	matMulABTInto(backendOr(be), out.data, a.data, b.data, m, k, n, k)
	return out
}

// matMulABTInto writes a·bᵀ into dst (len m*n, contents overwritten) for
// a [m,k] and b whose n rows of length k start at multiples of ldb
// (pass ldb = k for a contiguous b). The ldb parameter lets the batched
// conv weight-gradient run directly on one image's column slab of the
// batch-wide im2col matrix without copying it out.
//
// The product runs on the same blocked (and, on amd64, AVX) panel
// kernels as a·b by first packing bᵀ into a pooled [k,n] panel: each
// dst element is then the identical ascending-k dot product the direct
// formulation computes — transposing reorders memory, not the
// reduction — so the result stays bit-identical to the naive reference
// while the k loop vectorises. The packing pass costs k·n moves against
// the product's 2·m·k·n flops; it pays for itself for every m ≥ 1
// because the panel kernels more than double the scalar dot-product
// throughput. The zero-skip path stays off: both operands of the
// weight-gradient product are dense gradients.
func matMulABTInto(be compute.Backend, dst, a, b []float64, m, k, n, ldb int) {
	bt := be.Get(k * n)
	defer be.Put(bt)
	// bt[p*n+j] = b[j*ldb+p]: rows of bt are partitioned across workers.
	be.ParallelFor(k, grainRows(n), func(lo, hi int) {
		for p := lo; p < hi; p++ {
			drow := bt[p*n : (p+1)*n]
			for j := range drow {
				drow[j] = b[j*ldb+p]
			}
		}
	})
	clear(dst[:m*n])
	matMulInto(be, dst, a, bt, m, k, n, false)
}

// Transpose2D returns the transpose of a 2-D tensor.
func Transpose2D(a *Tensor) *Tensor { return Transpose2DOn(nil, a) }

// Transpose2DOn returns the transpose computed on be (nil selects the
// default backend), partitioned over output rows.
func Transpose2DOn(be compute.Backend, a *Tensor) *Tensor {
	if a.Dims() != 2 {
		panic(fmt.Sprintf("tensor: Transpose2D on %v", a.shape))
	}
	m, n := a.shape[0], a.shape[1]
	out := New(n, m)
	backendOr(be).ParallelFor(n, grainRows(m), func(lo, hi int) {
		for j := lo; j < hi; j++ {
			orow := out.data[j*m : (j+1)*m]
			for i := 0; i < m; i++ {
				orow[i] = a.data[i*n+j]
			}
		}
	})
	return out
}

// AddRowVector returns a with the 1-D vector v (length = a columns) added
// to every row of the 2-D tensor a. Used for bias broadcasting.
func AddRowVector(a, v *Tensor) *Tensor { return AddRowVectorOn(nil, a, v) }

// AddRowVectorOn broadcasts v over a's rows on be (nil selects the
// default backend).
func AddRowVectorOn(be compute.Backend, a, v *Tensor) *Tensor {
	if a.Dims() != 2 || v.Dims() != 1 || v.shape[0] != a.shape[1] {
		panic(fmt.Sprintf("tensor: AddRowVector shape mismatch %v + %v", a.shape, v.shape))
	}
	m, n := a.shape[0], a.shape[1]
	out := New(m, n)
	backendOr(be).ParallelFor(m, grainRows(n), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for j := 0; j < n; j++ {
				out.data[i*n+j] = a.data[i*n+j] + v.data[j]
			}
		}
	})
	return out
}

// SumRows returns the column sums of a 2-D tensor as a 1-D vector. It is
// the gradient counterpart of AddRowVector.
func SumRows(a *Tensor) *Tensor { return SumRowsOn(nil, a) }

// SumRowsOn returns the column sums computed on be (nil selects the
// default backend). Columns are partitioned across workers; each column
// accumulates over rows in ascending order regardless of partitioning.
func SumRowsOn(be compute.Backend, a *Tensor) *Tensor {
	if a.Dims() != 2 {
		panic(fmt.Sprintf("tensor: SumRows on %v", a.shape))
	}
	m, n := a.shape[0], a.shape[1]
	out := New(n)
	backendOr(be).ParallelFor(n, grainRows(m), func(lo, hi int) {
		for j := lo; j < hi; j++ {
			var s float64
			for i := 0; i < m; i++ {
				s += a.data[i*n+j]
			}
			out.data[j] = s
		}
	})
	return out
}
