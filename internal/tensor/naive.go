package tensor

import "snnsec/internal/compute"

// Reference kernels: the straightforward row-at-a-time matmuls and the
// per-image conv path that preceded the cache-blocked micro-kernel and
// the batched im2col pipeline. They are retained for two reasons: the
// equivalence tests pin the production kernels bit-for-bit against them,
// and bench_test.go reports naive-vs-blocked and per-image-vs-batched
// timings into BENCH_compute.json. They are not used on any hot path.

// MatMulNaiveOn returns a·b computed with the reference row-at-a-time
// kernel (i-k-j loop order, one output row at a time). The blocked
// MatMulOn is bit-identical to it; use this entry point only for
// equivalence testing and benchmarking.
func MatMulNaiveOn(be compute.Backend, a, b *Tensor) *Tensor {
	m, k, n := matMulShapes("MatMulNaive", a, b)
	out := New(m, n)
	matMulNaiveInto(backendOr(be), out.data, a.data, b.data, m, k, n, true)
	return out
}

// matMulNaiveInto accumulates a·b into dst (len m*n, caller-zeroed),
// reading a [m,k] and b [k,n]. Rows of dst are partitioned across
// workers; the inner loops are ordered i-k-j so the innermost loop
// streams contiguously over both b and the output row.
func matMulNaiveInto(be compute.Backend, dst, a, b []float64, m, k, n int, allowSkip bool) {
	be.ParallelFor(m, grainRows(2*k*n), func(lo, hi int) {
		gate := skipGate{b: b}
		for i := lo; i < hi; i++ {
			arow := a[i*k : (i+1)*k]
			orow := dst[i*n : (i+1)*n]
			for p := 0; p < k; p++ {
				av := arow[p]
				if av == 0 && allowSkip && gate.skip() {
					continue
				}
				brow := b[p*n : (p+1)*n]
				for j := 0; j < n; j++ {
					orow[j] += av * brow[j]
				}
			}
		}
	})
}

// matMulATBNaiveInto accumulates aᵀ·b into dst (len m*n, caller-zeroed)
// for a [k,m] and b [k,n] with the reference row-at-a-time loop.
func matMulATBNaiveInto(be compute.Backend, dst, a, b []float64, k, m, n int, allowSkip bool) {
	be.ParallelFor(m, grainRows(2*k*n), func(lo, hi int) {
		gate := skipGate{b: b}
		for i := lo; i < hi; i++ {
			orow := dst[i*n : (i+1)*n]
			for p := 0; p < k; p++ {
				av := a[p*m+i]
				if av == 0 && allowSkip && gate.skip() {
					continue
				}
				brow := b[p*n : (p+1)*n]
				for j := 0; j < n; j++ {
					orow[j] += av * brow[j]
				}
			}
		}
	})
}

// matMulABTNaiveInto writes a·bᵀ into dst (len m*n) for a [m,k] and
// b [n,k] with the reference one-dot-product-per-element loop.
func matMulABTNaiveInto(be compute.Backend, dst, a, b []float64, m, k, n int) {
	be.ParallelFor(m, grainRows(2*k*n), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a[i*k : (i+1)*k]
			orow := dst[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				brow := b[j*k : (j+1)*k]
				var s float64
				for p := 0; p < k; p++ {
					s += arow[p] * brow[p]
				}
				orow[j] = s
			}
		}
	})
}

// Conv2DPerImageOn is the PR-1 conv forward path: one im2col expansion
// and one naive matmul per image, images partitioned across workers. The
// batched Conv2DOn is bit-identical to it; use this entry point only for
// equivalence testing and benchmarking.
func Conv2DPerImageOn(be compute.Backend, x, weight, bias *Tensor, p ConvParams) *Tensor {
	n, c, h, w, f, kh, kw := convShapes("Conv2DPerImage", x, weight, bias, p)
	be = backendOr(be)
	oh, ow := p.ConvOutSize(h, kh), p.ConvOutSize(w, kw)
	ckk := c * kh * kw
	wmat := weight.data // [f, ckk] row-major, same layout as the reshape
	out := New(n, f, oh, ow)
	be.ParallelFor(n, 1, func(lo, hi int) {
		col := be.Get(ckk * oh * ow)
		defer be.Put(col)
		for i := lo; i < hi; i++ {
			img := x.data[i*c*h*w : (i+1)*c*h*w]
			im2colBatchInto(compute.Serial{}, col, img, 1, c, h, w, kh, kw, p)
			dst := out.data[i*f*oh*ow : (i+1)*f*oh*ow]
			// skipZero off: the weight matrix is dense, so the zero-skip
			// would almost never fire and its allFinite scan of the im2col
			// buffer is pure overhead on the conv hot path.
			matMulNaiveInto(compute.Serial{}, dst, wmat, col, f, ckk, oh*ow, false)
			if bias != nil {
				for fi := 0; fi < f; fi++ {
					b := bias.data[fi]
					seg := dst[fi*oh*ow : (fi+1)*oh*ow]
					for j := range seg {
						seg[j] += b
					}
				}
			}
		}
	})
	return out
}

// Conv2DBackwardPerImageOn is the PR-1 conv backward path: per-image
// im2col, naive matmuls and col2im scatter, with the weight gradient
// merged from per-image partials in image order. The batched
// Conv2DBackwardOn is bit-identical to it; use this entry point only for
// equivalence testing and benchmarking.
func Conv2DBackwardPerImageOn(be compute.Backend, x, weight, gout *Tensor, p ConvParams, hasBias bool) (dx, dweight, dbias *Tensor) {
	n, c, h, w, f, kh, kw := convShapes("Conv2DBackwardPerImage", x, weight, nil, p)
	be = backendOr(be)
	oh, ow := p.ConvOutSize(h, kh), p.ConvOutSize(w, kw)
	checkGoutShape("Conv2DBackwardPerImage", gout, n, f, oh, ow)
	ckk := c * kh * kw
	wmat := weight.data // [f, ckk] row-major
	dx = New(n, c, h, w)
	dwmat := New(f, ckk)
	if hasBias {
		dbias = New(f)
	}
	// dwPartials[i] is image i's contribution g_i·col_iᵀ, merged below.
	dwPartials := make([][]float64, n)
	be.ParallelFor(n, 1, func(lo, hi int) {
		col := be.Get(ckk * oh * ow)
		dcol := be.Get(ckk * oh * ow)
		defer be.Put(col)
		defer be.Put(dcol)
		for i := lo; i < hi; i++ {
			img := x.data[i*c*h*w : (i+1)*c*h*w]
			im2colBatchInto(compute.Serial{}, col, img, 1, c, h, w, kh, kw, p)
			g := gout.data[i*f*oh*ow : (i+1)*f*oh*ow]
			// dW_i = g · colᵀ into a pooled per-image partial.
			dw := be.Get(f * ckk)
			matMulABTNaiveInto(compute.Serial{}, dw, g, col, f, oh*ow, ckk)
			dwPartials[i] = dw
			// dcol = Wᵀ · g, scattered back into dx.
			clear(dcol)
			matMulATBNaiveInto(compute.Serial{}, dcol, wmat, g, f, ckk, oh*ow, false)
			col2imAddInto(compute.Serial{}, dx.data[i*c*h*w:(i+1)*c*h*w], dcol, oh*ow, c, h, w, kh, kw, p)
		}
	})
	for _, dw := range dwPartials {
		for j, v := range dw {
			dwmat.data[j] += v
		}
		be.Put(dw)
	}
	if hasBias {
		convBiasGradInto(dbias.data, gout.data, n, f, oh*ow)
	}
	dweight = dwmat.Reshape(f, c, kh, kw)
	return dx, dweight, dbias
}
