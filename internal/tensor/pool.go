package tensor

import (
	"fmt"

	"snnsec/internal/compute"
)

// AvgPool2D performs non-overlapping average pooling with a k×k window and
// stride k over x of shape [N,C,H,W]. H and W must be divisible by k.
func AvgPool2D(x *Tensor, k int) *Tensor { return AvgPool2DOn(nil, x, k) }

// AvgPool2DOn is AvgPool2D on an explicit backend (nil selects the
// default), partitioned over the independent [N*C] input planes.
func AvgPool2DOn(be compute.Backend, x *Tensor, k int) *Tensor {
	n, c, h, w := poolCheck("AvgPool2D", x, k)
	oh, ow := h/k, w/k
	out := New(n, c, oh, ow)
	inv := 1 / float64(k*k)
	backendOr(be).ParallelFor(n*c, grainRows(h*w), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			src := x.data[i*h*w : (i+1)*h*w]
			dst := out.data[i*oh*ow : (i+1)*oh*ow]
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					var s float64
					for ky := 0; ky < k; ky++ {
						row := src[(oy*k+ky)*w+ox*k:]
						for kx := 0; kx < k; kx++ {
							s += row[kx]
						}
					}
					dst[oy*ow+ox] = s * inv
				}
			}
		}
	})
	return out
}

// AvgPool2DBackward distributes the upstream gradient gout [N,C,OH,OW]
// uniformly over each pooling window, returning dx [N,C,H,W].
func AvgPool2DBackward(gout *Tensor, k, h, w int) *Tensor {
	return AvgPool2DBackwardOn(nil, gout, k, h, w)
}

// AvgPool2DBackwardOn is AvgPool2DBackward on an explicit backend (nil
// selects the default).
func AvgPool2DBackwardOn(be compute.Backend, gout *Tensor, k, h, w int) *Tensor {
	if gout.Dims() != 4 {
		panic(fmt.Sprintf("tensor: AvgPool2DBackward needs 4-d gout, got %v", gout.shape))
	}
	n, c, oh, ow := gout.shape[0], gout.shape[1], gout.shape[2], gout.shape[3]
	if oh*k != h || ow*k != w {
		panic(fmt.Sprintf("tensor: AvgPool2DBackward size mismatch out=%dx%d k=%d in=%dx%d", oh, ow, k, h, w))
	}
	dx := New(n, c, h, w)
	inv := 1 / float64(k*k)
	backendOr(be).ParallelFor(n*c, grainRows(h*w), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			src := gout.data[i*oh*ow : (i+1)*oh*ow]
			dst := dx.data[i*h*w : (i+1)*h*w]
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					g := src[oy*ow+ox] * inv
					for ky := 0; ky < k; ky++ {
						row := dst[(oy*k+ky)*w+ox*k:]
						for kx := 0; kx < k; kx++ {
							row[kx] += g
						}
					}
				}
			}
		}
	})
	return dx
}

// MaxPool2D performs non-overlapping max pooling with a k×k window and
// stride k. It returns the pooled tensor and the flat argmax index (within
// the input plane) of each output element, for use by the backward pass.
func MaxPool2D(x *Tensor, k int) (*Tensor, []int) { return MaxPool2DOn(nil, x, k) }

// MaxPool2DOn is MaxPool2D on an explicit backend (nil selects the
// default).
func MaxPool2DOn(be compute.Backend, x *Tensor, k int) (*Tensor, []int) {
	n, c, h, w := poolCheck("MaxPool2D", x, k)
	oh, ow := h/k, w/k
	out := New(n, c, oh, ow)
	arg := make([]int, n*c*oh*ow)
	backendOr(be).ParallelFor(n*c, grainRows(h*w), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			src := x.data[i*h*w : (i+1)*h*w]
			dst := out.data[i*oh*ow : (i+1)*oh*ow]
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					best := src[oy*k*w+ox*k]
					bestIdx := oy*k*w + ox*k
					for ky := 0; ky < k; ky++ {
						for kx := 0; kx < k; kx++ {
							idx := (oy*k+ky)*w + ox*k + kx
							if src[idx] > best {
								best = src[idx]
								bestIdx = idx
							}
						}
					}
					dst[oy*ow+ox] = best
					arg[i*oh*ow+oy*ow+ox] = bestIdx
				}
			}
		}
	})
	return out, arg
}

// MaxPool2DBackward routes the upstream gradient to the argmax positions
// recorded by MaxPool2D.
func MaxPool2DBackward(gout *Tensor, arg []int, k, h, w int) *Tensor {
	return MaxPool2DBackwardOn(nil, gout, arg, k, h, w)
}

// MaxPool2DBackwardOn is MaxPool2DBackward on an explicit backend (nil
// selects the default).
func MaxPool2DBackwardOn(be compute.Backend, gout *Tensor, arg []int, k, h, w int) *Tensor {
	n, c, oh, ow := gout.shape[0], gout.shape[1], gout.shape[2], gout.shape[3]
	if oh*k != h || ow*k != w {
		panic(fmt.Sprintf("tensor: MaxPool2DBackward size mismatch out=%dx%d k=%d in=%dx%d", oh, ow, k, h, w))
	}
	if len(arg) != n*c*oh*ow {
		panic(fmt.Sprintf("tensor: MaxPool2DBackward argmax length %d, want %d", len(arg), n*c*oh*ow))
	}
	dx := New(n, c, h, w)
	backendOr(be).ParallelFor(n*c, grainRows(h*w), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			src := gout.data[i*oh*ow : (i+1)*oh*ow]
			dst := dx.data[i*h*w : (i+1)*h*w]
			for j, g := range src {
				dst[arg[i*oh*ow+j]] += g
			}
		}
	})
	return dx
}

func poolCheck(op string, x *Tensor, k int) (n, c, h, w int) {
	if x.Dims() != 4 {
		panic(fmt.Sprintf("tensor: %s needs [N,C,H,W], got %v", op, x.shape))
	}
	if k <= 0 {
		panic(fmt.Sprintf("tensor: %s window must be positive, got %d", op, k))
	}
	n, c, h, w = x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	if h%k != 0 || w%k != 0 {
		panic(fmt.Sprintf("tensor: %s input %dx%d not divisible by window %d", op, h, w, k))
	}
	return n, c, h, w
}
