//go:build race

package tensor

// raceEnabled reports whether this test binary was built with the race
// detector. Relative perf gates whose two sides are instrumented
// asymmetrically (Go staging loops vs uninstrumented assembly) skip
// under it; the dedicated non-race CI steps enforce them.
const raceEnabled = true
