package tensor

import "math/rand/v2"

// RandN returns a tensor with elements drawn from N(mean, std²) using r.
func RandN(r *rand.Rand, mean, std float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = mean + std*r.NormFloat64()
	}
	return t
}

// RandU returns a tensor with elements drawn uniformly from [lo, hi) using
// r.
func RandU(r *rand.Rand, lo, hi float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = lo + (hi-lo)*r.Float64()
	}
	return t
}

// NewRand returns a deterministic PCG-backed generator for the given seed
// pair. All stochastic components of the library accept a generator built
// through this helper so experiments are reproducible bit-for-bit.
func NewRand(seed1, seed2 uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed1, seed2))
}
