package tensor

import (
	"fmt"
	"math"

	"snnsec/internal/compute"
)

// The scalar reductions (Sum, Mean, Dot, the norms) deliberately stay
// serial: they are memory-bound, and parallel partial sums would change
// the floating-point accumulation order, breaking the bit-identical
// Serial/Parallel guarantee the backend contract makes. Row-wise
// reductions (ArgmaxRows, SoftmaxRows, SumRows) have independent outputs
// per row and do run on the backend.
//
// Under the fast tier (compute.Float32), Sum and Dot switch to a
// pairwise tree whose shape depends only on the input length: the tree
// halves the error growth of a linear sweep (O(log n) vs O(n) rounding
// accumulation), which matters once the products feeding the reduction
// carry float32 noise, and it is exactly as deterministic — same
// length, same tree, same result, run to run and across backends.

// pairwiseLeaf is the length below which the pairwise tree degenerates
// to a serial sweep; small enough for accuracy, large enough that the
// recursion overhead vanishes against the memory traffic.
const pairwiseLeaf = 64

func pairwiseSum(s []float64) float64 {
	if len(s) <= pairwiseLeaf {
		var x float64
		for _, v := range s {
			x += v
		}
		return x
	}
	h := len(s) / 2
	return pairwiseSum(s[:h]) + pairwiseSum(s[h:])
}

func pairwiseDot(a, b []float64) float64 {
	if len(a) <= pairwiseLeaf {
		var x float64
		for i := range a {
			x += a[i] * b[i]
		}
		return x
	}
	h := len(a) / 2
	return pairwiseDot(a[:h], b[:h]) + pairwiseDot(a[h:], b[h:])
}

// Sum returns the sum of all elements.
func Sum(a *Tensor) float64 {
	if compute.FastTier() {
		return pairwiseSum(a.data)
	}
	var s float64
	for _, v := range a.data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all elements.
func Mean(a *Tensor) float64 { return Sum(a) / float64(len(a.data)) }

// Max returns the maximum element.
func Max(a *Tensor) float64 {
	m := math.Inf(-1)
	for _, v := range a.data {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the minimum element.
func Min(a *Tensor) float64 {
	m := math.Inf(1)
	for _, v := range a.data {
		if v < m {
			m = v
		}
	}
	return m
}

// Argmax returns the flat index of the largest element (first on ties).
func Argmax(a *Tensor) int {
	best, bi := math.Inf(-1), 0
	for i, v := range a.data {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}

// ArgmaxRows returns, for a 2-D tensor, the argmax of each row. This is the
// predicted class per sample for a [batch, classes] logit matrix.
func ArgmaxRows(a *Tensor) []int { return ArgmaxRowsOn(nil, a) }

// ArgmaxRowsOn is ArgmaxRows on an explicit backend (nil selects the
// default), partitioned over rows.
func ArgmaxRowsOn(be compute.Backend, a *Tensor) []int {
	if a.Dims() != 2 {
		panic(fmt.Sprintf("tensor: ArgmaxRows on %v", a.shape))
	}
	m, n := a.shape[0], a.shape[1]
	out := make([]int, m)
	backendOr(be).ParallelFor(m, grainRows(n), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := a.data[i*n : (i+1)*n]
			best, bi := math.Inf(-1), 0
			for j, v := range row {
				if v > best {
					best, bi = v, j
				}
			}
			out[i] = bi
		}
	})
	return out
}

// Dot returns the inner product of two tensors with equal element counts.
func Dot(a, b *Tensor) float64 {
	if len(a.data) != len(b.data) {
		panic(fmt.Sprintf("tensor: Dot size mismatch %v vs %v", a.shape, b.shape))
	}
	if compute.FastTier() {
		return pairwiseDot(a.data, b.data)
	}
	var s float64
	for i := range a.data {
		s += a.data[i] * b.data[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of all elements.
func Norm2(a *Tensor) float64 { return math.Sqrt(Dot(a, a)) }

// NormInf returns the maximum absolute element.
func NormInf(a *Tensor) float64 {
	var m float64
	for _, v := range a.data {
		if av := math.Abs(v); av > m {
			m = av
		}
	}
	return m
}

// SoftmaxRows returns row-wise softmax of a 2-D tensor, computed with the
// usual max-subtraction for numerical stability.
func SoftmaxRows(a *Tensor) *Tensor { return SoftmaxRowsOn(nil, a) }

// SoftmaxRowsOn is SoftmaxRows on an explicit backend (nil selects the
// default), partitioned over rows.
func SoftmaxRowsOn(be compute.Backend, a *Tensor) *Tensor {
	if a.Dims() != 2 {
		panic(fmt.Sprintf("tensor: SoftmaxRows on %v", a.shape))
	}
	m, n := a.shape[0], a.shape[1]
	out := New(m, n)
	backendOr(be).ParallelFor(m, grainRows(4*n), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := a.data[i*n : (i+1)*n]
			orow := out.data[i*n : (i+1)*n]
			mx := math.Inf(-1)
			for _, v := range row {
				if v > mx {
					mx = v
				}
			}
			var z float64
			for j, v := range row {
				e := math.Exp(v - mx)
				orow[j] = e
				z += e
			}
			for j := range orow {
				orow[j] /= z
			}
		}
	})
	return out
}
