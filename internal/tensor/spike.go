package tensor

import (
	"fmt"
	"math/bits"

	"snnsec/internal/compute"
)

// Spike-plane engine: binary activations stored one bit per element.
//
// Every layer input inside the SNN's BPTT loop is a spike matrix — a
// tensor whose elements are exactly 0 or 1 and which is mostly zeros at
// the low-Vth/low-T corners of the paper's (Vth, T) grid. Multiplying
// by a binary matrix needs no multiplies at all: a·b degenerates to
// "for each set bit p of row i, add row p of b into row i of the
// output" (select-accumulate). SpikeTensor stores that binary plane
// packed 64 elements per word with a per-row popcount index, so the
// kernels skip zeros 64 at a time instead of testing float64
// coefficients one by one, and the packed operand occupies 1/64 of the
// dense plane's memory bandwidth.
//
// Determinism: the select-accumulate kernels visit set bits in
// ascending element order and keep one accumulator per output element,
// which is exactly the dense kernels' ascending-k reduction. Skipping a
// zero coefficient is bit-identical to adding its 0·b term whenever b
// is finite (adding ±0 to any accumulated sum is an identity in IEEE
// arithmetic, and an accumulated sum of finite terms is never −0), so
// every spike kernel first checks the dense operand with allFinite and
// falls back to the dense reference kernel when 0·NaN / 0·Inf
// propagation could be observed — the same gate the dense zero-skip
// path uses. spike_test.go pins bit-identity against the dense
// reference across spike densities 0%, ~10%, ~50% and 100%, on the
// Serial and Parallel backends.

// SpikeTensor is a bit-packed binary tensor: element (r, c) of the
// logical [rows, cols] view — rows is the leading dimension, cols the
// product of the rest — is bit c&63 of word bits[r*words + c>>6]. Each
// row starts on a word boundary so rows can be packed, unpacked and
// gathered independently. counts[r] caches the popcount of row r.
//
// A SpikeTensor is immutable after construction; the lazily built dense
// view is cached and shared, so callers must not mutate it.
type SpikeTensor struct {
	shape  []int
	rows   int
	cols   int
	words  int // words per row: ceil(cols/64)
	bits   []uint64
	counts []int
	dense  *Tensor // lazy cache; nil until DenseOn materialises it
}

// spikeDims returns the packed geometry for a shape.
func spikeDims(shape []int) (rows, cols, words int) {
	if len(shape) == 0 {
		panic("tensor: spike tensors must have at least one dimension")
	}
	rows = shape[0]
	cols = 1
	for _, d := range shape[1:] {
		cols *= d
	}
	return rows, cols, (cols + 63) / 64
}

// PackSpikes packs a binary 0/1 tensor into spike-plane form on the
// default backend.
func PackSpikes(t *Tensor) *SpikeTensor { return PackSpikesOn(nil, t) }

// PackSpikesOn packs t on be (nil selects the default backend). Every
// element must be exactly 0 or 1 — the select-accumulate kernels assume
// 1·x = x — and the pack panics otherwise. Rows are packed in parallel;
// each row owns a disjoint word range.
func PackSpikesOn(be compute.Backend, t *Tensor) *SpikeTensor {
	rows, cols, words := spikeDims(t.shape)
	s := &SpikeTensor{
		shape:  append([]int(nil), t.shape...),
		rows:   rows,
		cols:   cols,
		words:  words,
		bits:   make([]uint64, rows*words),
		counts: make([]int, rows),
	}
	backendOr(be).ParallelFor(rows, grainRows(cols), func(lo, hi int) {
		for r := lo; r < hi; r++ {
			src := t.data[r*cols : (r+1)*cols]
			dst := s.bits[r*words : (r+1)*words]
			count := 0
			for wi := range dst {
				var w uint64
				base := wi * 64
				limit := min(64, cols-base)
				for b := 0; b < limit; b++ {
					switch src[base+b] {
					case 0:
					case 1:
						w |= 1 << uint(b)
					default:
						panic(fmt.Sprintf("tensor: PackSpikes element (%d,%d) = %v is not binary", r, base+b, src[base+b]))
					}
				}
				dst[wi] = w
				count += bits.OnesCount64(w)
			}
			s.counts[r] = count
		}
	})
	return s
}

// ensureCounts materialises the per-row popcount index on first use.
// Like the dense-view cache, it is not synchronised (tape-owned tensors
// are used from one goroutine).
func (s *SpikeTensor) ensureCounts() []int {
	if s.counts == nil {
		counts := make([]int, s.rows)
		for r := 0; r < s.rows; r++ {
			c := 0
			for _, w := range s.bits[r*s.words : (r+1)*s.words] {
				c += bits.OnesCount64(w)
			}
			counts[r] = c
		}
		s.counts = counts
	}
	return s.counts
}

// NewSpikeTensorFromBits wraps bit planes a producer computed inline
// (e.g. the LIF threshold step packs while it thresholds) into a
// SpikeTensor. bits must hold rows·ceil(cols/64) words in the row-
// aligned layout (unused tail bits of each row's last word zero), and
// counts, when non-nil, the per-row popcounts; both are used directly,
// not copied. The caller vouches that the bits match the 0/1 plane it
// is packing — the kernels' bit-identity contract rests on that.
func NewSpikeTensorFromBits(bits []uint64, counts []int, shape ...int) *SpikeTensor {
	rows, cols, words := spikeDims(shape)
	if len(bits) != rows*words {
		panic(fmt.Sprintf("tensor: NewSpikeTensorFromBits got %d words for shape %v (want %d)", len(bits), shape, rows*words))
	}
	if counts != nil && len(counts) != rows {
		panic(fmt.Sprintf("tensor: NewSpikeTensorFromBits got %d counts for %d rows", len(counts), rows))
	}
	return &SpikeTensor{
		shape:  append([]int(nil), shape...),
		rows:   rows,
		cols:   cols,
		words:  words,
		bits:   bits,
		counts: counts,
	}
}

// Shape returns the logical dimensions. The returned slice must not be
// modified.
func (s *SpikeTensor) Shape() []int { return s.shape }

// Dims returns the number of logical dimensions.
func (s *SpikeTensor) Dims() int { return len(s.shape) }

// Dim returns the size of dimension i.
func (s *SpikeTensor) Dim(i int) int { return s.shape[i] }

// Len returns the total number of logical elements.
func (s *SpikeTensor) Len() int { return s.rows * s.cols }

// Bit reports whether element (r, c) of the [rows, cols] view is set.
func (s *SpikeTensor) Bit(r, c int) bool {
	return s.bits[r*s.words+c>>6]>>(uint(c)&63)&1 != 0
}

// RowCount returns the popcount of row r of the [rows, cols] view.
func (s *SpikeTensor) RowCount(r int) int { return s.ensureCounts()[r] }

// Count returns the total number of set bits.
func (s *SpikeTensor) Count() int {
	total := 0
	for _, c := range s.ensureCounts() {
		total += c
	}
	return total
}

// Density returns the fraction of set bits in [0, 1].
func (s *SpikeTensor) Density() float64 {
	return float64(s.Count()) / float64(s.Len())
}

// Reshape returns a view sharing s's bits under a new shape. The
// element count and the leading dimension must be preserved — rows are
// word-padded, so only reshapes that keep the row structure (e.g.
// flattening [N,C,H,W] to [N, C·H·W]) are representable.
func (s *SpikeTensor) Reshape(shape ...int) *SpikeTensor {
	rows, cols, _ := spikeDims(shape)
	if rows != s.rows || cols != s.cols {
		panic(fmt.Sprintf("tensor: spike reshape %v to %v must preserve the leading dimension and element count", s.shape, shape))
	}
	out := *s
	out.shape = append([]int(nil), shape...)
	if s.dense != nil {
		// Carry the cached dense view under the new shape (same data).
		out.dense = s.dense.Reshape(shape...)
	}
	return &out
}

// Dense returns the dense 0/1 view, materialising it on the default
// backend on first use.
func (s *SpikeTensor) Dense() *Tensor { return s.DenseOn(nil) }

// DenseOn returns the dense 0/1 view, materialising it on be on first
// use and caching it. The cache is not synchronised: concurrent first
// calls on the same tensor race (tape-owned tensors are used from one
// goroutine; materialise before sharing otherwise). The returned tensor
// is shared — callers must not mutate it.
func (s *SpikeTensor) DenseOn(be compute.Backend) *Tensor {
	if s.dense != nil {
		return s.dense
	}
	d := New(s.shape...)
	backendOr(be).ParallelFor(s.rows, grainRows(s.cols), func(lo, hi int) {
		for r := lo; r < hi; r++ {
			dst := d.data[r*s.cols : (r+1)*s.cols]
			row := s.bits[r*s.words : (r+1)*s.words]
			for wi, w := range row {
				for w != 0 {
					b := bits.TrailingZeros64(w)
					w &= w - 1
					dst[wi*64+b] = 1
				}
			}
		}
	})
	s.dense = d
	return d
}

// addRow accumulates src into dst elementwise (dst += src), 4-wide
// unrolled. It is the entire inner loop of the select-accumulate
// kernels: one call per set spike bit, no multiplies.
func addRow(dst, src []float64) {
	n := len(dst)
	src = src[:n]
	j := 0
	for ; j+4 <= n; j += 4 {
		d := (*[4]float64)(dst[j:])
		s := (*[4]float64)(src[j:])
		d[0] += s[0]
		d[1] += s[1]
		d[2] += s[2]
		d[3] += s[3]
	}
	for ; j < n; j++ {
		dst[j] += src[j]
	}
}

// spikeSelectAccumInto accumulates the select-accumulate product into
// dst (len m*n, caller-zeroed): for each row i of the packed plane
// (bitRows, words words per row, m rows, k logical columns), every set
// bit p adds b's row p (length n) into dst's row i. Set bits are
// visited in ascending p — word order, then TrailingZeros within a word
// — so each output element accumulates in the dense kernels'
// ascending-k order. avgCount sizes the parallel grain.
func spikeSelectAccumInto(be compute.Backend, dst []float64, bitRows []uint64, words, m int, b []float64, n, avgCount int) {
	be.ParallelFor(m, grainRows(2*(avgCount+1)*n), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			orow := dst[i*n : (i+1)*n]
			row := bitRows[i*words : (i+1)*words]
			for wi, w := range row {
				base := wi * 64
				for w != 0 {
					p := base + bits.TrailingZeros64(w)
					w &= w - 1
					addRow(orow, b[p*n:(p+1)*n])
				}
			}
		}
	})
}

// SpikeMatMul returns the matrix product s·b for a binary [m,k] spike
// plane and dense [k,n] b on the default backend.
func SpikeMatMul(s *SpikeTensor, b *Tensor) *Tensor { return SpikeMatMulOn(nil, s, b) }

// SpikeMatMulOn returns s·b computed on be (nil selects the default
// backend) as a multiply-free row select-accumulate, bit-identical to
// MatMulOn on the dense view. When b is not finite everywhere the
// product must propagate 0·NaN / 0·Inf, so it falls back to the dense
// kernel on the unpacked view.
func SpikeMatMulOn(be compute.Backend, s *SpikeTensor, b *Tensor) *Tensor {
	if s.Dims() != 2 || b.Dims() != 2 {
		panic(fmt.Sprintf("tensor: SpikeMatMul needs 2-d operands, got %v x %v", s.shape, b.shape))
	}
	m, k := s.rows, s.cols
	if k != b.shape[0] {
		panic(fmt.Sprintf("tensor: SpikeMatMul inner dimension mismatch %v x %v", s.shape, b.shape))
	}
	n := b.shape[1]
	be = backendOr(be)
	out := New(m, n)
	if !allFinite(b.data) {
		matMulInto(be, out.data, s.DenseOn(be).data, b.data, m, k, n, true)
		return out
	}
	spikeSelectAccumInto(be, out.data, s.bits, s.words, m, b.data, n, s.Count()/m)
	return out
}

// SpikeMatMulATB returns sᵀ·b for a binary [k,m] spike plane and dense
// [k,n] b on the default backend.
func SpikeMatMulATB(s *SpikeTensor, b *Tensor) *Tensor { return SpikeMatMulATBOn(nil, s, b) }

// SpikeMatMulATBOn returns sᵀ·b (shape [m,n]) computed on be (nil
// selects the default backend): output row i accumulates exactly the
// rows p of b where spike bit (p, i) is set, in ascending p — the
// weight-gradient product dW = spikesᵀ·g with the dense kernel's
// per-element reduction order preserved, so the result is bit-identical
// to MatMulATBOn on the dense view. Falls back to the dense kernel when
// b is not finite everywhere.
func SpikeMatMulATBOn(be compute.Backend, s *SpikeTensor, b *Tensor) *Tensor {
	if s.Dims() != 2 || b.Dims() != 2 {
		panic(fmt.Sprintf("tensor: SpikeMatMulATB needs 2-d operands, got %v x %v", s.shape, b.shape))
	}
	k, m := s.rows, s.cols
	if k != b.shape[0] {
		panic(fmt.Sprintf("tensor: SpikeMatMulATB dimension mismatch %v x %v", s.shape, b.shape))
	}
	n := b.shape[1]
	be = backendOr(be)
	out := New(m, n)
	if !allFinite(b.data) {
		matMulATBInto(be, out.data, s.DenseOn(be).data, b.data, k, m, n, true)
		return out
	}
	words := s.words
	avg := s.Count()/m + 1
	be.ParallelFor(m, grainRows(2*avg*n), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			orow := out.data[i*n : (i+1)*n]
			wi := i >> 6
			mask := uint64(1) << (uint(i) & 63)
			for p := 0; p < k; p++ {
				if s.bits[p*words+wi]&mask != 0 {
					addRow(orow, b.data[p*n:(p+1)*n])
				}
			}
		}
	})
	return out
}

// SpikeIm2Col expands a packed batch [N,C,H,W] into the packed,
// transposed column matrix on the default backend.
func SpikeIm2Col(s *SpikeTensor, kh, kw int, p ConvParams) *SpikeTensor {
	return SpikeIm2ColOn(nil, s, kh, kw, p)
}

// SpikeIm2ColOn is the spike-aware im2col: it expands a packed batch
// [N,C,H,W] into a packed column matrix of shape [N·OH·OW, C·KH·KW] —
// the transpose of the dense batched layout [C·KH·KW, N·OH·OW], so each
// output position owns one bit row of receptive-field taps and the
// product with the transposed weight matrix is a row
// select-accumulate. Out-of-bounds taps are zero bits. The expansion
// reads bits and writes bits; no floats are touched.
func SpikeIm2ColOn(be compute.Backend, s *SpikeTensor, kh, kw int, p ConvParams) *SpikeTensor {
	n, c, _, _, oh, ow := spikeIm2colShapes(s, kh, kw, p)
	ckk := c * kh * kw
	out := &SpikeTensor{
		shape: []int{n * oh * ow, ckk},
		rows:  n * oh * ow,
		cols:  ckk,
		words: (ckk + 63) / 64,
		bits:  make([]uint64, n*oh*ow*((ckk+63)/64)),
		// counts stay lazy: the conv pipeline never reads them.
	}
	spikeIm2colInto(backendOr(be), out.bits, s, kh, kw, p)
	return out
}

func spikeIm2colShapes(s *SpikeTensor, kh, kw int, p ConvParams) (n, c, h, w, oh, ow int) {
	p.validate()
	if s.Dims() != 4 {
		panic(fmt.Sprintf("tensor: SpikeIm2Col needs [N,C,H,W], got %v", s.shape))
	}
	n, c, h, w = s.shape[0], s.shape[1], s.shape[2], s.shape[3]
	oh, ow = p.ConvOutSize(h, kh), p.ConvOutSize(w, kw)
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("tensor: SpikeIm2Col non-positive output %dx%d for input %v kernel %dx%d", oh, ow, s.shape, kh, kw))
	}
	return n, c, h, w, oh, ow
}

// spikeIm2colInto writes the packed column matrix into dstBits (len
// n·oh·ow·ceil(ckk/64), possibly pooled and dirty — every word is
// written).
//
// The expansion is event-driven: instead of testing every receptive-
// field tap of every output position (the dense im2col's O(N·P·CKK)
// walk), it clears the destination bits and scatters only the set input
// bits, each into the ≤ KH·KW output positions whose receptive field
// covers it — O(nnz·KH·KW) work, which is what makes the packed
// expansion nearly free at the sparse corners of the (Vth, T) grid.
// Images are partitioned across workers (each image's output rows are
// a disjoint bit range); within an image, bit sets are idempotent ORs,
// so the result does not depend on scatter order.
func spikeIm2colInto(be compute.Backend, dstBits []uint64, s *SpikeTensor, kh, kw int, p ConvParams) {
	n, c, h, w, oh, ow := spikeIm2colShapes(s, kh, kw, p)
	ckk := c * kh * kw
	words := (ckk + 63) / 64
	ohow := oh * ow
	// Precomputed (input coordinate, kernel offset) → output coordinate
	// tables (−1 = no output position) keep the per-bit scatter free of
	// division and modulo; the tables are image-independent and read-only
	// across workers.
	oyTab := make([]int, h*kh)
	for iy := 0; iy < h; iy++ {
		for ki := 0; ki < kh; ki++ {
			oyTab[iy*kh+ki] = -1
			if num := iy + p.Padding - ki; num >= 0 && num%p.Stride == 0 && num/p.Stride < oh {
				oyTab[iy*kh+ki] = num / p.Stride
			}
		}
	}
	oxTab := make([]int, w*kw)
	for ix := 0; ix < w; ix++ {
		for kj := 0; kj < kw; kj++ {
			oxTab[ix*kw+kj] = -1
			if num := ix + p.Padding - kj; num >= 0 && num%p.Stride == 0 && num/p.Stride < ow {
				oxTab[ix*kw+kj] = num / p.Stride
			}
		}
	}
	be.ParallelFor(n, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			src := s.bits[i*s.words : (i+1)*s.words]
			img := dstBits[i*ohow*words : (i+1)*ohow*words]
			clear(img)
			for wi, wrd := range src {
				base := wi * 64
				for wrd != 0 {
					cidx := base + bits.TrailingZeros64(wrd)
					wrd &= wrd - 1
					ci := cidx / (h * w)
					iy := (cidx / w) % h
					ix := cidx % w
					tapBase := ci * kh * kw
					for ki := 0; ki < kh; ki++ {
						oy := oyTab[iy*kh+ki]
						if oy < 0 {
							continue
						}
						rowBase := oy * ow
						for kj := 0; kj < kw; kj++ {
							ox := oxTab[ix*kw+kj]
							if ox < 0 {
								continue
							}
							row := (rowBase + ox) * words
							tap := tapBase + ki*kw + kj
							img[row+tap>>6] |= 1 << (uint(tap) & 63)
						}
					}
				}
			}
		}
	})
}

// SpikeConv2D computes a batched 2-D convolution of a packed binary
// input on the default backend.
func SpikeConv2D(s *SpikeTensor, weight, bias *Tensor, p ConvParams) *Tensor {
	return SpikeConv2DOn(nil, s, weight, bias, p)
}

// SpikeConv2DOn convolves with a freshly expanded (pooled) column
// matrix; see SpikeConv2DWithColOn.
func SpikeConv2DOn(be compute.Backend, s *SpikeTensor, weight, bias *Tensor, p ConvParams) *Tensor {
	return SpikeConv2DWithColOn(be, s, nil, weight, bias, p)
}

// SpikeConv2DWithColOn convolves the packed batch s [N,C,H,W] with
// weight [F,C,KH,KW] and optional bias [F] on be (nil selects the
// default backend), producing [N,F,OH,OW] bit-identically to Conv2DOn
// on the dense view. The pipeline is the spike-plane counterpart of the
// batched dense one: a packed spike-im2col (bits — pooled scratch when
// col is nil, or col as built by SpikeIm2ColOn, which the caller can
// retain for the weight-gradient pullback at 1/64 the dense footprint),
// a pooled transpose of the weight matrix to [C·KH·KW, F], one
// select-accumulate product over the whole batch, and a scatter that
// reorders into the output layout and folds in the bias. Falls back to
// the dense pipeline when the weights are not finite everywhere (a
// skipped zero tap must propagate 0·NaN).
func SpikeConv2DWithColOn(be compute.Backend, s, col *SpikeTensor, weight, bias *Tensor, p ConvParams) *Tensor {
	be = backendOr(be)
	if weight.Dims() != 4 {
		panic(fmt.Sprintf("tensor: SpikeConv2D needs 4-d weight, got %v", weight.shape))
	}
	if !allFinite(weight.data) {
		return Conv2DOn(be, s.DenseOn(be), weight, bias, p)
	}
	n, c, _, _, oh, ow := spikeIm2colShapes(s, weight.shape[2], weight.shape[3], p)
	f, cw, kh, kw := weight.shape[0], weight.shape[1], weight.shape[2], weight.shape[3]
	if c != cw {
		panic(fmt.Sprintf("tensor: SpikeConv2D channel mismatch x=%v weight=%v", s.shape, weight.shape))
	}
	if bias != nil && !bias.ShapeEquals(f) {
		panic(fmt.Sprintf("tensor: SpikeConv2D bias shape %v, want [%d]", bias.shape, f))
	}
	ckk := c * kh * kw
	ohow := oh * ow
	rows := n * ohow
	words := (ckk + 63) / 64

	colBits := spikeColBits(be, s, col, rows, words, kh, kw, p)
	if col == nil {
		defer compute.PutUint64(colBits)
	}

	// wt = weightᵀ in [CKK, F] layout: tap p's row is the F filter
	// coefficients the select-accumulate gathers when bit p is set.
	wt := be.Get(ckk * f)
	defer be.Put(wt)
	be.ParallelFor(ckk, grainRows(f), func(lo, hi int) {
		for q := lo; q < hi; q++ {
			drow := wt[q*f : (q+1)*f]
			for fi := 0; fi < f; fi++ {
				drow[fi] = weight.data[fi*ckk+q]
			}
		}
	})

	// prodT[j, fi] = Σ_{p set in col row j} wt[p, fi], ascending p — the
	// transpose of the dense pipeline's prod[fi, j], term for term.
	prodT := be.Get(rows * f)
	defer be.Put(prodT)
	clear(prodT)
	// Average taps per output position ≈ input density · CKK.
	avg := s.Count()*ckk/s.Len() + 1
	spikeSelectAccumInto(be, prodT, colBits, words, rows, wt, f, avg)

	out := New(n, f, oh, ow)
	be.ParallelFor(n*f, grainRows(ohow), func(lo, hi int) {
		for idx := lo; idx < hi; idx++ {
			i, fi := idx/f, idx%f
			dst := out.data[idx*ohow : (idx+1)*ohow]
			var bv float64
			if bias != nil {
				bv = bias.data[fi]
			}
			base := i * ohow
			for q := 0; q < ohow; q++ {
				v := prodT[(base+q)*f+fi]
				if bias != nil {
					v += bv
				}
				dst[q] = v
			}
		}
	})
	return out
}

// spikeColBits returns the packed column bits to run a conv product
// over: col's bits when the caller retained them from SpikeIm2ColOn
// (validated against the expected geometry), or a pooled freshly
// expanded matrix otherwise (the caller must PutUint64 it).
func spikeColBits(be compute.Backend, s, col *SpikeTensor, rows, words, kh, kw int, p ConvParams) []uint64 {
	if col != nil {
		if col.rows != rows || col.words != words {
			panic(fmt.Sprintf("tensor: spike conv col shape %v does not match input %v with kernel %dx%d", col.shape, s.shape, kh, kw))
		}
		return col.bits
	}
	bits := compute.GetUint64(rows * words)
	spikeIm2colInto(be, bits, s, kh, kw, p)
	return bits
}

// SpikeConv2DBackward computes the gradients of a convolution over a
// packed binary input on the default backend.
func SpikeConv2DBackward(s *SpikeTensor, weight, gout *Tensor, p ConvParams, hasBias bool) (dx, dweight, dbias *Tensor) {
	return SpikeConv2DBackwardOn(nil, s, weight, gout, p, hasBias)
}

// SpikeConv2DBackwardOn is SpikeConv2DBackwardWithColOn with a freshly
// expanded (pooled) column matrix.
func SpikeConv2DBackwardOn(be compute.Backend, s *SpikeTensor, weight, gout *Tensor, p ConvParams, hasBias bool) (dx, dweight, dbias *Tensor) {
	return SpikeConv2DBackwardWithColOn(be, s, nil, weight, gout, p, hasBias)
}

// SpikeConv2DBackwardWithColOn is the spike-plane conv pullback,
// bit-identical to Conv2DBackwardOn on the dense view of s. The input
// gradient dx = col2im(Wᵀ·G) never reads the input, so it runs the
// dense pipeline unchanged; the weight gradient — the only consumer of
// the im2col matrix — gathers through the packed column bits instead:
// per image, every set tap bit (output position j, tap q) adds G's
// column j into the partial at tap q, visiting j in ascending order so
// each dW element keeps the dense kernel's ascending-j reduction, and
// partials merge in image order exactly like the dense path. The dense
// float column matrix is never built; col, when non-nil, is the packed
// matrix retained from the forward pass (otherwise it is re-expanded
// into pooled scratch). Falls back to the dense pipeline when gout is
// not finite everywhere (a skipped zero tap must propagate 0·NaN).
func SpikeConv2DBackwardWithColOn(be compute.Backend, s, col *SpikeTensor, weight, gout *Tensor, p ConvParams, hasBias bool) (dx, dweight, dbias *Tensor) {
	be = backendOr(be)
	if weight.Dims() != 4 {
		panic(fmt.Sprintf("tensor: SpikeConv2DBackward needs 4-d weight, got %v", weight.shape))
	}
	if !allFinite(gout.data) {
		return Conv2DBackwardOn(be, s.DenseOn(be), weight, gout, p, hasBias)
	}
	n, c, h, w, oh, ow := spikeIm2colShapes(s, weight.shape[2], weight.shape[3], p)
	f, cw, kh, kw := weight.shape[0], weight.shape[1], weight.shape[2], weight.shape[3]
	if c != cw {
		panic(fmt.Sprintf("tensor: SpikeConv2DBackward channel mismatch x=%v weight=%v", s.shape, weight.shape))
	}
	checkGoutShape("SpikeConv2DBackward", gout, n, f, oh, ow)
	ohow := oh * ow
	ckk := c * kh * kw
	cols := n * ohow
	chw := c * h * w
	words := (ckk + 63) / 64
	wmat := weight.data // [f, ckk] row-major
	dx = New(n, c, h, w)
	dwmat := New(f, ckk)
	if hasBias {
		dbias = New(f)
	}

	colBits := spikeColBits(be, s, col, cols, words, kh, kw, p)
	if col == nil {
		defer compute.PutUint64(colBits)
	}

	// Input gradient: identical to the dense pipeline — G reordered to
	// [f, n·ohow], one blocked Wᵀ·G product, per-image col2im scatter.
	gbig := be.Get(f * cols)
	defer be.Put(gbig)
	be.ParallelFor(n*f, grainRows(ohow), func(lo, hi int) {
		for idx := lo; idx < hi; idx++ {
			i, fi := idx/f, idx%f
			copy(gbig[fi*cols+i*ohow:fi*cols+(i+1)*ohow], gout.data[idx*ohow:(idx+1)*ohow])
		}
	})
	dcol := be.Get(ckk * cols)
	defer be.Put(dcol)
	clear(dcol)
	matMulATBInto(be, dcol, wmat, gbig, f, ckk, cols, false)

	// Weight gradient: per-image select-accumulate partials, merged in
	// image order — the dense path's float semantics exactly. Output
	// positions j are walked in ascending order, so every dW element
	// keeps its ascending-j single-accumulator reduction; the strided
	// g/dw accesses stay within one image's L1-resident working set.
	dwPartials := make([][]float64, n)
	be.ParallelFor(n, 1, func(lo, hi int) {
		gcol := be.Get(f)
		defer be.Put(gcol)
		for i := lo; i < hi; i++ {
			col2imAddInto(be, dx.data[i*chw:(i+1)*chw], dcol[i*ohow:], cols, c, h, w, kh, kw, p)
			g := gout.data[i*f*ohow : (i+1)*f*ohow]
			dw := be.Get(f * ckk)
			clear(dw)
			imgBits := colBits[i*ohow*words : (i+1)*ohow*words]
			for j := 0; j < ohow; j++ {
				row := imgBits[j*words : (j+1)*words]
				filled := false // g's column j, gathered once per non-empty row
				for wi, wrd := range row {
					base := wi * 64
					for wrd != 0 {
						q := base + bits.TrailingZeros64(wrd)
						wrd &= wrd - 1
						if !filled {
							for fi := 0; fi < f; fi++ {
								gcol[fi] = g[fi*ohow+j]
							}
							filled = true
						}
						for fi := 0; fi < f; fi++ {
							dw[fi*ckk+q] += gcol[fi]
						}
					}
				}
			}
			dwPartials[i] = dw
		}
	})
	for _, dw := range dwPartials {
		for j, v := range dw {
			dwmat.data[j] += v
		}
		be.Put(dw)
	}
	if hasBias {
		convBiasGradInto(dbias.data, gout.data, n, f, ohow)
	}
	dweight = dwmat.Reshape(f, c, kh, kw)
	return dx, dweight, dbias
}
