package tensor

import (
	"fmt"
	"math/bits"

	"snnsec/internal/compute"
)

// Spike-aware pooling: the pooling windows of a packed binary plane can
// be answered from the bit representation alone. An average over a k×k
// window of 0/1 values is popcount·(1/k²) — the dense kernel's window
// sum of zeros and ones is a small exact integer, so multiplying the
// popcount by the same 1/k² reciprocal is bit-identical to it. A max
// over 0/1 values is "any bit set", and the dense kernel's
// first-on-ties argmax is the first set bit in (ky, kx) scan order (or
// the window's first element when the window is empty). Max pooling a
// binary plane is itself binary, so SpikeMaxPool2D also returns the
// pooled plane in packed form — pooled topologies keep the packed
// representation flowing instead of forcing the dense fallback behind
// every pool.
//
// Windows are not word-aligned, so a k-bit window row is extracted with
// a two-word shift (windowBits); k is limited to 64, far above any
// realistic pooling window.

// windowBits extracts width consecutive bits of a packed row starting
// at bit offset off. width must be in [1, 64]; the caller guarantees
// off+width does not run past the row's logical columns.
func windowBits(row []uint64, off, width int) uint64 {
	w := off >> 6
	sh := uint(off & 63)
	v := row[w] >> sh
	if sh+uint(width) > 64 {
		v |= row[w+1] << (64 - sh)
	}
	if width == 64 {
		return v
	}
	return v & (1<<uint(width) - 1)
}

func spikePoolCheck(op string, s *SpikeTensor, k int) (n, c, h, w int) {
	if s.Dims() != 4 {
		panic(fmt.Sprintf("tensor: %s needs [N,C,H,W], got %v", op, s.shape))
	}
	if k <= 0 || k > 64 {
		panic(fmt.Sprintf("tensor: %s window %d out of [1,64]", op, k))
	}
	n, c, h, w = s.shape[0], s.shape[1], s.shape[2], s.shape[3]
	if h%k != 0 || w%k != 0 {
		panic(fmt.Sprintf("tensor: %s input %dx%d not divisible by window %d", op, h, w, k))
	}
	return n, c, h, w
}

// SpikeAvgPool2D is SpikeAvgPool2DOn on the default backend.
func SpikeAvgPool2D(s *SpikeTensor, k int) *Tensor { return SpikeAvgPool2DOn(nil, s, k) }

// SpikeAvgPool2DOn performs non-overlapping k×k average pooling over a
// packed [N,C,H,W] spike plane by popcounting each window, bit-identical
// to AvgPool2DOn on the dense view.
func SpikeAvgPool2DOn(be compute.Backend, s *SpikeTensor, k int) *Tensor {
	n, c, h, w := spikePoolCheck("SpikeAvgPool2D", s, k)
	oh, ow := h/k, w/k
	out := New(n, c, oh, ow)
	inv := 1 / float64(k*k)
	backendOr(be).ParallelFor(n*c, grainRows(h*w), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			img, ch := i/c, i%c
			row := s.bits[img*s.words : (img+1)*s.words]
			base := ch * h * w
			dst := out.data[i*oh*ow : (i+1)*oh*ow]
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					count := 0
					for ky := 0; ky < k; ky++ {
						count += bits.OnesCount64(windowBits(row, base+(oy*k+ky)*w+ox*k, k))
					}
					dst[oy*ow+ox] = float64(count) * inv
				}
			}
		}
	})
	return out
}

// SpikeMaxPool2D is SpikeMaxPool2DOn on the default backend.
func SpikeMaxPool2D(s *SpikeTensor, k int) (*Tensor, []int, *SpikeTensor) {
	return SpikeMaxPool2DOn(nil, s, k)
}

// SpikeMaxPool2DOn performs non-overlapping k×k max pooling over a
// packed [N,C,H,W] spike plane. It returns the pooled tensor and flat
// per-plane argmax indices bit-identical to MaxPool2DOn on the dense
// view, plus the pooled plane in packed form (max of a binary window is
// binary) so downstream synapses can stay on the spike kernels.
func SpikeMaxPool2DOn(be compute.Backend, s *SpikeTensor, k int) (*Tensor, []int, *SpikeTensor) {
	n, c, h, w := spikePoolCheck("SpikeMaxPool2D", s, k)
	oh, ow := h/k, w/k
	out := New(n, c, oh, ow)
	arg := make([]int, n*c*oh*ow)
	ocols := c * oh * ow
	owords := (ocols + 63) / 64
	sp := &SpikeTensor{
		shape:  []int{n, c, oh, ow},
		rows:   n,
		cols:   ocols,
		words:  owords,
		bits:   make([]uint64, n*owords),
		counts: make([]int, n),
	}
	// Each worker owns whole batch rows, so the packed output words it
	// writes are disjoint from every other worker's.
	backendOr(be).ParallelFor(n, grainRows(c*h*w), func(lo, hi int) {
		for img := lo; img < hi; img++ {
			row := s.bits[img*s.words : (img+1)*s.words]
			obits := sp.bits[img*owords : (img+1)*owords]
			count := 0
			for ch := 0; ch < c; ch++ {
				base := ch * h * w
				plane := img*c + ch
				dst := out.data[plane*oh*ow : (plane+1)*oh*ow]
				for oy := 0; oy < oh; oy++ {
					for ox := 0; ox < ow; ox++ {
						// Dense semantics: best seeds from the window's
						// first element, strictly-greater wins — on 0/1
						// values the argmax is the first set bit in
						// (ky, kx) order, or the window start if empty.
						bestIdx := oy*k*w + ox*k
						hit := false
						for ky := 0; ky < k; ky++ {
							wb := windowBits(row, base+(oy*k+ky)*w+ox*k, k)
							if wb != 0 {
								bestIdx = (oy*k+ky)*w + ox*k + bits.TrailingZeros64(wb)
								hit = true
								break
							}
						}
						oidx := oy*ow + ox
						arg[plane*oh*ow+oidx] = bestIdx
						if hit {
							dst[oidx] = 1
							ob := ch*oh*ow + oidx
							obits[ob>>6] |= 1 << uint(ob&63)
							count++
						}
					}
				}
			}
			sp.counts[img] = count
		}
	})
	return out, arg, sp
}
