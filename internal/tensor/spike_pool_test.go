package tensor

import (
	"fmt"
	"testing"

	"snnsec/internal/compute"
)

// The popcount pooling kernels must be bit-identical to the dense
// window loops on the dense view of the same plane — values, argmax
// indices (first-on-ties semantics) and the repacked max output — at
// every density, on every backend.

func TestSpikeAvgPool2DMatchesDense(t *testing.T) {
	for _, density := range []float64{0, 0.1, 0.5, 1} {
		rng := spikeRand(uint64(100 + int(density*100)))
		for _, shape := range []struct{ n, c, h, w, k int }{
			{2, 3, 8, 8, 2},
			{1, 1, 4, 4, 4},
			{3, 2, 12, 6, 3},
			{1, 2, 64, 64, 2}, // rows longer than one packed word
		} {
			x := binaryTensor(rng, density, shape.n, shape.c, shape.h, shape.w)
			sp := PackSpikes(x)
			ser := compute.Serial{}
			want := AvgPool2DOn(ser, x, shape.k)
			name := fmt.Sprintf("SpikeAvgPool2D d=%g %v k=%d", density, x.Shape(), shape.k)
			assertIdentical(t, name, want, SpikeAvgPool2DOn(ser, sp, shape.k))
			forEachParallel(t, func(t *testing.T, be compute.Backend) {
				assertIdentical(t, name+" parallel", want, SpikeAvgPool2DOn(be, sp, shape.k))
			})
		}
	}
}

func TestSpikeMaxPool2DMatchesDense(t *testing.T) {
	for _, density := range []float64{0, 0.1, 0.5, 1} {
		rng := spikeRand(uint64(200 + int(density*100)))
		for _, shape := range []struct{ n, c, h, w, k int }{
			{2, 3, 8, 8, 2},
			{1, 1, 4, 4, 4},
			{3, 2, 12, 6, 3},
			{1, 2, 64, 64, 2},
		} {
			x := binaryTensor(rng, density, shape.n, shape.c, shape.h, shape.w)
			sp := PackSpikes(x)
			ser := compute.Serial{}
			want, wantArg := MaxPool2DOn(ser, x, shape.k)
			name := fmt.Sprintf("SpikeMaxPool2D d=%g %v k=%d", density, x.Shape(), shape.k)

			check := func(be compute.Backend, label string) {
				t.Helper()
				got, arg, spOut := SpikeMaxPool2DOn(be, sp, shape.k)
				assertIdentical(t, label, want, got)
				for i := range wantArg {
					if arg[i] != wantArg[i] {
						t.Fatalf("%s: argmax %d differs: dense %d, spike %d", label, i, wantArg[i], arg[i])
					}
				}
				// The repacked output must round-trip to the pooled values
				// and keep a correct popcount index.
				assertIdentical(t, label+" repacked", got, spOut.DenseOn(be))
				oh, ow := shape.h/shape.k, shape.w/shape.k
				for img := 0; img < shape.n; img++ {
					count := 0
					for i := 0; i < shape.c*oh*ow; i++ {
						if got.Data()[img*shape.c*oh*ow+i] != 0 {
							count++
						}
					}
					if spOut.RowCount(img) != count {
						t.Fatalf("%s: image %d popcount %d, want %d", label, img, spOut.RowCount(img), count)
					}
				}
			}
			check(ser, name)
			forEachParallel(t, func(t *testing.T, be compute.Backend) {
				check(be, name+" parallel")
			})
		}
	}
}

func TestSpikePoolRejectsBadShapes(t *testing.T) {
	sp := PackSpikes(New(1, 1, 4, 4))
	for _, f := range []func(){
		func() { SpikeAvgPool2D(sp, 3) },                    // 4 % 3 != 0
		func() { SpikeAvgPool2D(sp, 0) },                    // window out of range
		func() { SpikeMaxPool2D(sp, 65) },                   // window above one word
		func() { SpikeAvgPool2D(PackSpikes(New(2, 8)), 2) }, // not 4-D
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad spike pool call did not panic")
				}
			}()
			f()
		}()
	}
}
