package tensor

import (
	"math"
	"math/rand/v2"
	"sync"
	"testing"
	"time"

	"snnsec/internal/compute"
)

// The spike-plane contract: every spike kernel is bit-identical to the
// dense kernel on the unpacked 0/1 view, at every spike density, on the
// Serial and Parallel backends. The density sweep covers the empty and
// full planes (pure control flow, no accumulation at 0%) and the
// sparse/half-full interior where the select-accumulate and the dense
// zero-skip paths genuinely diverge in execution.

// spikeDensities spans the sweep the acceptance criteria name: all-zero,
// ~10%, ~50%, all-one.
var spikeDensities = []float64{0, 0.1, 0.5, 1}

// binaryTensor returns a 0/1 tensor with approximately the given
// density of ones (exactly empty/full at 0 and 1).
func binaryTensor(rng *rand.Rand, density float64, shape ...int) *Tensor {
	t := New(shape...)
	d := t.Data()
	for i := range d {
		if density >= 1 || (density > 0 && rng.Float64() < density) {
			d[i] = 1
		}
	}
	return t
}

func spikeRand(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, 0x59135))
}

func TestPackSpikesRoundTrip(t *testing.T) {
	rng := spikeRand(1)
	shapes := [][]int{{1, 1}, {3, 7}, {5, 64}, {4, 65}, {2, 3, 5, 7}, {9, 130}}
	for _, shape := range shapes {
		for _, density := range spikeDensities {
			x := binaryTensor(rng, density, shape...)
			s := PackSpikes(x)
			d := s.Dense()
			if !d.SameShape(x) {
				t.Fatalf("dense view shape %v, want %v", d.Shape(), x.Shape())
			}
			total := 0
			for i, v := range x.Data() {
				if d.Data()[i] != v {
					t.Fatalf("shape %v density %v: element %d round-trips %v to %v", shape, density, i, v, d.Data()[i])
				}
				if v == 1 {
					total++
				}
			}
			if s.Count() != total {
				t.Fatalf("Count = %d, want %d", s.Count(), total)
			}
			rows, cols, _ := spikeDims(shape)
			rc := 0
			for r := 0; r < rows; r++ {
				rc += s.RowCount(r)
				for c := 0; c < cols; c++ {
					if s.Bit(r, c) != (x.Data()[r*cols+c] == 1) {
						t.Fatalf("Bit(%d,%d) disagrees with the dense element", r, c)
					}
				}
			}
			if rc != total {
				t.Fatalf("row counts sum to %d, want %d", rc, total)
			}
			if got := s.Density(); math.Abs(got-float64(total)/float64(x.Len())) > 1e-15 {
				t.Fatalf("Density = %v", got)
			}
		}
	}
}

func TestPackSpikesRejectsNonBinary(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("PackSpikes accepted a non-binary element")
		}
	}()
	PackSpikes(FromSlice([]float64{0, 1, 0.5}, 3))
}

func TestSpikeReshape(t *testing.T) {
	rng := spikeRand(2)
	x := binaryTensor(rng, 0.3, 2, 3, 4, 5)
	s := PackSpikes(x)
	s.Dense() // materialise before reshaping: the cache must follow the shape
	flat := s.Reshape(2, 60)
	if flat.Dims() != 2 || flat.Dim(1) != 60 {
		t.Fatalf("reshape shape = %v", flat.Shape())
	}
	want := x.Reshape(2, 60)
	if !flat.Dense().ShapeEquals(2, 60) {
		t.Fatalf("reshaped dense view kept the old shape %v", flat.Dense().Shape())
	}
	assertIdentical(t, "spike reshape dense view", want, flat.Dense())
	defer func() {
		if recover() == nil {
			t.Fatal("reshape changing the leading dimension did not panic")
		}
	}()
	s.Reshape(4, 30)
}

func TestSpikeMatMulMatchesDense(t *testing.T) {
	rng := spikeRand(3)
	r := NewRand(11, 19)
	ser := compute.Serial{}
	shapes := []struct{ m, k, n int }{
		{1, 1, 1}, {3, 5, 2}, {5, 64, 9}, {7, 65, 13}, {17, 130, 31}, {8, 200, 48},
	}
	for _, s := range shapes {
		for _, density := range spikeDensities {
			a := binaryTensor(rng, density, s.m, s.k)
			b := RandN(r, 0, 1, s.k, s.n)
			sp := PackSpikes(a)
			want := MatMulOn(ser, a, b)
			assertIdentical(t, "SpikeMatMul vs naive", MatMulNaiveOn(ser, a, b), want)
			for _, be := range blockedBackends {
				assertIdentical(t, "SpikeMatMul", want, SpikeMatMulOn(be, sp, b))
			}

			at := Transpose2D(a) // [k, m] spike plane, bits along m
			spt := PackSpikes(at)
			wantATB := MatMulATBOn(ser, at, b)
			for _, be := range blockedBackends {
				assertIdentical(t, "SpikeMatMulATB", wantATB, SpikeMatMulATBOn(be, spt, b))
			}
		}
	}
}

// TestSpikeMatMulNaNFallback pins the finiteness gate: a NaN or Inf in
// the dense operand must poison the product exactly as the dense kernel
// does (0·NaN = NaN), even where the spike row would skip the term.
func TestSpikeMatMulNaNFallback(t *testing.T) {
	a := FromSlice([]float64{0, 0, 1, 0}, 2, 2)
	sp := PackSpikes(a)
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		b := FromSlice([]float64{bad, 1, 2, 3}, 2, 2)
		want := MatMulOn(compute.Serial{}, a, b)
		wantATB := MatMulATBOn(compute.Serial{}, a, b)
		spa := PackSpikes(a) // a is its own transpose pattern holder: [k=2, m=2]
		for _, be := range blockedBackends {
			assertIdentical(t, "SpikeMatMul NaN fallback", want, SpikeMatMulOn(be, sp, b))
			assertIdentical(t, "SpikeMatMulATB NaN fallback", wantATB, SpikeMatMulATBOn(be, spa, b))
		}
		if !math.IsNaN(SpikeMatMul(sp, b).At(0, 0)) {
			t.Fatalf("SpikeMatMul swallowed %v through a zero spike row", bad)
		}
	}
}

func TestSpikeIm2ColMatchesDense(t *testing.T) {
	rng := spikeRand(4)
	ser := compute.Serial{}
	for _, cs := range convCases {
		for _, density := range spikeDensities {
			x := binaryTensor(rng, density, cs.n, cs.c, cs.h, cs.w)
			sp := PackSpikes(x)
			oh, ow := cs.p.ConvOutSize(cs.h, cs.k), cs.p.ConvOutSize(cs.w, cs.k)
			ckk := cs.c * cs.k * cs.k
			dense := make([]float64, ckk*cs.n*oh*ow)
			im2colBatchInto(ser, dense, x.Data(), cs.n, cs.c, cs.h, cs.w, cs.k, cs.k, cs.p)
			for _, be := range blockedBackends {
				col := SpikeIm2ColOn(be, sp, cs.k, cs.k, cs.p)
				if col.Dim(0) != cs.n*oh*ow || col.Dim(1) != ckk {
					t.Fatalf("spike col shape %v", col.Shape())
				}
				// col is the transpose of the dense batched layout.
				for q := 0; q < ckk; q++ {
					for j := 0; j < cs.n*oh*ow; j++ {
						want := dense[q*cs.n*oh*ow+j] == 1
						if col.Bit(j, q) != want {
							t.Fatalf("case %+v density %v: tap (%d,%d) = %v, want %v", cs, density, j, q, col.Bit(j, q), want)
						}
					}
				}
			}
		}
	}
}

func TestSpikeConv2DMatchesDense(t *testing.T) {
	rng := spikeRand(5)
	r := NewRand(13, 29)
	ser := compute.Serial{}
	for _, cs := range convCases {
		for _, density := range spikeDensities {
			x := binaryTensor(rng, density, cs.n, cs.c, cs.h, cs.w)
			wt := RandN(r, 0, 1, cs.f, cs.c, cs.k, cs.k)
			bias := RandN(r, 0, 1, cs.f)
			sp := PackSpikes(x)
			want := Conv2DOn(ser, x, wt, bias, cs.p)
			wantNoBias := Conv2DOn(ser, x, wt, nil, cs.p)
			for _, be := range blockedBackends {
				assertIdentical(t, "SpikeConv2D", want, SpikeConv2DOn(be, sp, wt, bias, cs.p))
				assertIdentical(t, "SpikeConv2D no-bias", wantNoBias, SpikeConv2DOn(be, sp, wt, nil, cs.p))
			}
		}
	}
}

func TestSpikeConv2DBackwardMatchesDense(t *testing.T) {
	rng := spikeRand(8)
	r := NewRand(19, 53)
	ser := compute.Serial{}
	for _, cs := range convCases {
		for _, density := range spikeDensities {
			x := binaryTensor(rng, density, cs.n, cs.c, cs.h, cs.w)
			wt := RandN(r, 0, 1, cs.f, cs.c, cs.k, cs.k)
			oh, ow := cs.p.ConvOutSize(cs.h, cs.k), cs.p.ConvOutSize(cs.w, cs.k)
			gout := RandN(r, 0, 1, cs.n, cs.f, oh, ow)
			sp := PackSpikes(x)
			wdx, wdw, wdb := Conv2DBackwardOn(ser, x, wt, gout, cs.p, true)
			for _, be := range blockedBackends {
				dx, dw, db := SpikeConv2DBackwardOn(be, sp, wt, gout, cs.p, true)
				assertIdentical(t, "SpikeConv2DBackward dx", wdx, dx)
				assertIdentical(t, "SpikeConv2DBackward dw", wdw, dw)
				assertIdentical(t, "SpikeConv2DBackward db", wdb, db)
				dxn, dwn, dbn := SpikeConv2DBackwardOn(be, sp, wt, gout, cs.p, false)
				assertIdentical(t, "SpikeConv2DBackward dx no-bias", wdx, dxn)
				assertIdentical(t, "SpikeConv2DBackward dw no-bias", wdw, dwn)
				if dbn != nil {
					t.Fatalf("SpikeConv2DBackward returned dbias without hasBias")
				}
			}
		}
	}
}

// TestSpikeConv2DBackwardNaNGoutFallback: a non-finite upstream gradient
// must reach the weight gradient exactly as in the dense pipeline (a
// skipped zero tap would swallow 0·NaN).
func TestSpikeConv2DBackwardNaNGoutFallback(t *testing.T) {
	x := New(1, 1, 3, 3) // all-zero spikes
	sp := PackSpikes(x)
	r := NewRand(29, 31)
	wt := RandN(r, 0, 1, 2, 1, 3, 3)
	p := ConvParams{Stride: 1, Padding: 1}
	gout := Full(math.NaN(), 1, 2, 3, 3)
	wdx, wdw, _ := Conv2DBackwardOn(compute.Serial{}, x, wt, gout, p, false)
	for _, be := range blockedBackends {
		dx, dw, _ := SpikeConv2DBackwardOn(be, sp, wt, gout, p, false)
		assertIdentical(t, "SpikeConv2DBackward NaN dx", wdx, dx)
		assertIdentical(t, "SpikeConv2DBackward NaN dw", wdw, dw)
	}
}

// TestSpikeConv2DNonFiniteWeightFallback: a NaN weight must reach every
// output element it touches in the dense pipeline, so the spike path
// must defer to it rather than skip zero taps.
func TestSpikeConv2DNonFiniteWeightFallback(t *testing.T) {
	x := New(1, 1, 3, 3) // all-zero spikes: every tap would be skipped
	sp := PackSpikes(x)
	wt := Full(math.NaN(), 1, 1, 3, 3)
	p := ConvParams{Stride: 1, Padding: 1}
	want := Conv2DOn(compute.Serial{}, x, wt, nil, p)
	for _, be := range blockedBackends {
		assertIdentical(t, "SpikeConv2D NaN weights", want, SpikeConv2DOn(be, sp, wt, nil, p))
	}
	if !math.IsNaN(SpikeConv2D(sp, wt, nil, p).At(0, 0, 0, 0)) {
		t.Fatal("SpikeConv2D swallowed NaN weights on an all-zero plane")
	}
}

// TestConcurrentSpikePoolUse drives pack, unpack, spike-im2col and the
// spike products from many goroutines sharing one Parallel backend and
// the process-wide float64/uint64 scratch pools; under -race this
// checks the pooled pack/unpack scratch for data races, and the result
// checks pin determinism under contention.
func TestConcurrentSpikePoolUse(t *testing.T) {
	rng := spikeRand(6)
	r := NewRand(17, 31)
	x := binaryTensor(rng, 0.2, 3, 2, 8, 8)
	wt := RandN(r, 0, 1, 4, 2, 3, 3)
	a := binaryTensor(rng, 0.15, 9, 33)
	b := RandN(r, 0, 1, 33, 21)
	p := ConvParams{Stride: 1, Padding: 1}
	ser := compute.Serial{}
	wantConv := Conv2DOn(ser, x, wt, nil, p)
	wantMM := MatMulOn(ser, a, b)

	be := compute.NewParallel(4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 20; rep++ {
				sp := PackSpikesOn(be, x)
				if got := SpikeConv2DOn(be, sp, wt, nil, p); !got.AllClose(wantConv, 0) {
					t.Error("concurrent SpikeConv2D produced a different result")
					return
				}
				if got := sp.DenseOn(be); !got.AllClose(x, 0) {
					t.Error("concurrent Dense produced a different result")
					return
				}
				am := PackSpikesOn(be, a)
				if got := SpikeMatMulOn(be, am, b); !got.AllClose(wantMM, 0) {
					t.Error("concurrent SpikeMatMul produced a different result")
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestSparseVsDensePerfGate is the same-run relative perf gate of the
// spike-plane PR: both kernels run in this very process on identical
// inputs at ~10% spike density, and the test fails if the
// select-accumulate kernel is slower than the dense micro-kernel it
// replaces. At this density the sparse kernel skips ~90% of the work
// 64 elements at a time, so a generous margin separates it from
// scheduler noise even under the race detector.
func TestSparseVsDensePerfGate(t *testing.T) {
	rng := spikeRand(7)
	r := NewRand(23, 37)
	const m, k, n = 256, 256, 256
	a := binaryTensor(rng, 0.1, m, k)
	b := RandN(r, 0, 1, k, n)
	sp := PackSpikes(a)
	ser := compute.Serial{}

	// Warm both paths (pools, branch predictors) before timing.
	assertIdentical(t, "perf gate equivalence", MatMulOn(ser, a, b), SpikeMatMulOn(ser, sp, b))

	const iters = 3
	best := func(f func()) time.Duration {
		bestD := time.Duration(math.MaxInt64)
		for rep := 0; rep < 5; rep++ {
			start := time.Now()
			for i := 0; i < iters; i++ {
				f()
			}
			if d := time.Since(start); d < bestD {
				bestD = d
			}
		}
		return bestD
	}
	dense := best(func() { MatMulOn(ser, a, b) })
	sparse := best(func() { SpikeMatMulOn(ser, sp, b) })
	t.Logf("dense %v, sparse %v (%.2fx) at 10%% density, %dx%dx%d", dense, sparse, float64(dense)/float64(sparse), m, k, n)
	if sparse > dense {
		t.Fatalf("sparse kernel slower than dense at 10%% density: sparse %v vs dense %v", sparse, dense)
	}
}
