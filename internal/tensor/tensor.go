// Package tensor provides dense float64 tensors and the numerical kernels
// (elementwise arithmetic, matrix multiplication, 2-D convolution, pooling,
// reductions) that back the autodiff engine. Tensors are row-major and
// always contiguous; views are not shared except through explicit Reshape,
// which reuses the underlying data slice.
//
// The hot kernels are written for CPU throughput without giving up exact
// reproducibility: matmuls are cache-blocked and register-tiled (with an
// AVX micro-kernel on amd64), convolution expands the whole batch into
// one pooled im2col matrix and runs one matmul per batch, and every
// kernel partitions its work through a compute.Backend. Binary spike
// activations additionally have a first-class bit-packed representation
// (SpikeTensor, spike.go) whose multiply-free select-accumulate kernels
// do O(nnz) work instead of O(size). All of it is bit-identical —
// across the Serial and Parallel backends, across the scalar and AVX
// tiles, across the packed and dense forms, and against the
// straightforward reference kernels retained in naive.go. See DESIGN.md
// for the blocking scheme, the spike-plane layout and the determinism
// contract.
package tensor

import (
	"fmt"
	"math"
	"strings"
)

// Tensor is a dense, row-major, contiguous float64 tensor.
type Tensor struct {
	shape []int
	data  []float64
}

// New returns a zero-filled tensor with the given shape. A tensor with no
// dimensions is a scalar holding one element.
func New(shape ...int) *Tensor {
	n := checkShape(shape)
	return &Tensor{shape: append([]int(nil), shape...), data: make([]float64, n)}
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (not copied); its length must equal the shape's element count.
func FromSlice(data []float64, shape ...int) *Tensor {
	n := checkShape(shape)
	if len(data) != n {
		panic(fmt.Sprintf("tensor: FromSlice data length %d does not match shape %v (%d elements)", len(data), shape, n))
	}
	return &Tensor{shape: append([]int(nil), shape...), data: data}
}

// Full returns a tensor with every element set to v.
func Full(v float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = v
	}
	return t
}

// Ones returns a tensor of ones.
func Ones(shape ...int) *Tensor { return Full(1, shape...) }

// Scalar returns a 0-dimensional tensor holding v.
func Scalar(v float64) *Tensor {
	t := New()
	t.data[0] = v
	return t
}

func checkShape(shape []int) int {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: invalid dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	return n
}

// Shape returns the tensor's dimensions. The returned slice must not be
// modified.
func (t *Tensor) Shape() []int { return t.shape }

// Dims returns the number of dimensions.
func (t *Tensor) Dims() int { return len(t.shape) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.data) }

// Data returns the backing slice in row-major order. Mutating it mutates
// the tensor.
func (t *Tensor) Data() []float64 { return t.data }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.data, t.data)
	return c
}

// CopyFrom copies src's elements into t. Shapes must have equal element
// counts (shape itself may differ, matching Reshape semantics).
func (t *Tensor) CopyFrom(src *Tensor) {
	if len(t.data) != len(src.data) {
		panic(fmt.Sprintf("tensor: CopyFrom size mismatch %v vs %v", t.shape, src.shape))
	}
	copy(t.data, src.data)
}

// Zero sets all elements to 0.
func (t *Tensor) Zero() {
	for i := range t.data {
		t.data[i] = 0
	}
}

// Fill sets all elements to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.data {
		t.data[i] = v
	}
}

// Reshape returns a tensor with the new shape sharing t's data. The total
// element count must be preserved. One dimension may be -1, in which case
// it is inferred.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	shape = append([]int(nil), shape...)
	infer := -1
	n := 1
	for i, d := range shape {
		switch {
		case d == -1:
			if infer >= 0 {
				panic("tensor: Reshape with more than one -1 dimension")
			}
			infer = i
		case d <= 0:
			panic(fmt.Sprintf("tensor: invalid dimension %d in reshape %v", d, shape))
		default:
			n *= d
		}
	}
	if infer >= 0 {
		if len(t.data)%n != 0 {
			panic(fmt.Sprintf("tensor: cannot infer dimension reshaping %v to %v", t.shape, shape))
		}
		shape[infer] = len(t.data) / n
		n = len(t.data)
	}
	if n != len(t.data) {
		panic(fmt.Sprintf("tensor: reshape %v to %v changes element count", t.shape, shape))
	}
	return &Tensor{shape: shape, data: t.data}
}

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.shape) != len(o.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != o.shape[i] {
			return false
		}
	}
	return true
}

// ShapeEquals reports whether t's shape equals the given dims.
func (t *Tensor) ShapeEquals(shape ...int) bool {
	if len(t.shape) != len(shape) {
		return false
	}
	for i := range shape {
		if t.shape[i] != shape[i] {
			return false
		}
	}
	return true
}

// index converts multi-dimensional indices to a flat offset.
func (t *Tensor) index(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index %v rank mismatch for shape %v", idx, t.shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// At returns the element at the given indices.
func (t *Tensor) At(idx ...int) float64 { return t.data[t.index(idx)] }

// Set assigns the element at the given indices.
func (t *Tensor) Set(v float64, idx ...int) { t.data[t.index(idx)] = v }

// Row returns a view of row i of a 2-D tensor as a slice.
func (t *Tensor) Row(i int) []float64 {
	if len(t.shape) != 2 {
		panic(fmt.Sprintf("tensor: Row on %d-d tensor", len(t.shape)))
	}
	c := t.shape[1]
	return t.data[i*c : (i+1)*c]
}

// Slice returns a copy of subtensor t[i] along the first dimension: for a
// tensor of shape [N, d1, ..., dk] it returns shape [d1, ..., dk].
func (t *Tensor) Slice(i int) *Tensor {
	if len(t.shape) < 1 {
		panic("tensor: Slice of scalar")
	}
	if i < 0 || i >= t.shape[0] {
		panic(fmt.Sprintf("tensor: Slice index %d out of range %d", i, t.shape[0]))
	}
	sub := len(t.data) / t.shape[0]
	out := New(t.shape[1:]...)
	copy(out.data, t.data[i*sub:(i+1)*sub])
	return out
}

// SetSlice copies src into subtensor i along the first dimension.
func (t *Tensor) SetSlice(i int, src *Tensor) {
	sub := len(t.data) / t.shape[0]
	if src.Len() != sub {
		panic(fmt.Sprintf("tensor: SetSlice size mismatch %d vs %d", src.Len(), sub))
	}
	copy(t.data[i*sub:(i+1)*sub], src.data)
}

// Item returns the single element of a one-element tensor.
func (t *Tensor) Item() float64 {
	if len(t.data) != 1 {
		panic(fmt.Sprintf("tensor: Item on tensor with %d elements", len(t.data)))
	}
	return t.data[0]
}

// String renders a compact, shape-prefixed representation, eliding large
// tensors.
func (t *Tensor) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tensor%v", t.shape)
	if len(t.data) <= 16 {
		b.WriteString("{")
		for i, v := range t.data {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%.4g", v)
		}
		b.WriteString("}")
	} else {
		fmt.Fprintf(&b, "{%.4g, %.4g, ... (%d elements)}", t.data[0], t.data[1], len(t.data))
	}
	return b.String()
}

// AllClose reports whether all elements of t and o agree within atol.
func (t *Tensor) AllClose(o *Tensor, atol float64) bool {
	if !t.SameShape(o) {
		return false
	}
	for i := range t.data {
		if math.Abs(t.data[i]-o.data[i]) > atol {
			return false
		}
	}
	return true
}

// HasNaN reports whether any element is NaN or infinite.
func (t *Tensor) HasNaN() bool {
	for _, v := range t.data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
	}
	return false
}
