package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewZeroFilled(t *testing.T) {
	x := New(2, 3)
	if x.Len() != 6 {
		t.Fatalf("Len = %d, want 6", x.Len())
	}
	for i, v := range x.Data() {
		if v != 0 {
			t.Fatalf("element %d = %v, want 0", i, v)
		}
	}
}

func TestNewInvalidShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(2, 0) did not panic")
		}
	}()
	New(2, 0)
}

func TestFromSliceAndAt(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	if got := x.At(0, 0); got != 1 {
		t.Errorf("At(0,0) = %v, want 1", got)
	}
	if got := x.At(1, 2); got != 6 {
		t.Errorf("At(1,2) = %v, want 6", got)
	}
	x.Set(9, 1, 0)
	if got := x.At(1, 0); got != 9 {
		t.Errorf("after Set, At(1,0) = %v, want 9", got)
	}
}

func TestFromSliceLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromSlice with wrong length did not panic")
		}
	}()
	FromSlice([]float64{1, 2, 3}, 2, 2)
}

func TestAtOutOfRangePanics(t *testing.T) {
	x := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("At out of range did not panic")
		}
	}()
	x.At(2, 0)
}

func TestScalar(t *testing.T) {
	s := Scalar(3.5)
	if s.Dims() != 0 {
		t.Errorf("Dims = %d, want 0", s.Dims())
	}
	if s.Item() != 3.5 {
		t.Errorf("Item = %v, want 3.5", s.Item())
	}
}

func TestItemPanicsOnMultiElement(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Item on 4-element tensor did not panic")
		}
	}()
	New(2, 2).Item()
}

func TestCloneIndependence(t *testing.T) {
	x := FromSlice([]float64{1, 2}, 2)
	y := x.Clone()
	y.Data()[0] = 99
	if x.At(0) != 1 {
		t.Error("Clone shares storage with original")
	}
}

func TestReshapeSharesData(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	y := x.Reshape(3, 2)
	y.Set(42, 0, 1)
	if x.At(0, 1) != 42 {
		t.Error("Reshape does not share data")
	}
	if !y.ShapeEquals(3, 2) {
		t.Errorf("reshaped shape = %v", y.Shape())
	}
}

func TestReshapeInfer(t *testing.T) {
	x := New(4, 6)
	y := x.Reshape(2, -1)
	if !y.ShapeEquals(2, 12) {
		t.Errorf("inferred shape = %v, want [2 12]", y.Shape())
	}
	z := x.Reshape(-1)
	if !z.ShapeEquals(24) {
		t.Errorf("inferred shape = %v, want [24]", z.Shape())
	}
}

func TestReshapeBadCountPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad reshape did not panic")
		}
	}()
	New(2, 3).Reshape(4, 2)
}

func TestReshapeDoubleInferPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("double -1 reshape did not panic")
		}
	}()
	New(2, 3).Reshape(-1, -1)
}

func TestSliceAndSetSlice(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 3, 2)
	s := x.Slice(1)
	if !s.ShapeEquals(2) || s.At(0) != 3 || s.At(1) != 4 {
		t.Errorf("Slice(1) = %v", s)
	}
	x.SetSlice(0, FromSlice([]float64{9, 8}, 2))
	if x.At(0, 0) != 9 || x.At(0, 1) != 8 {
		t.Error("SetSlice did not write")
	}
	// Slice must be a copy.
	s.Data()[0] = 100
	if x.At(1, 0) != 3 {
		t.Error("Slice shares storage")
	}
}

func TestRowView(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	r := x.Row(1)
	r[0] = 7
	if x.At(1, 0) != 7 {
		t.Error("Row should be a view")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float64{1, -2, 3}, 3)
	b := FromSlice([]float64{4, 5, -6}, 3)
	if got := Add(a, b); !got.AllClose(FromSlice([]float64{5, 3, -3}, 3), 1e-12) {
		t.Errorf("Add = %v", got)
	}
	if got := Sub(a, b); !got.AllClose(FromSlice([]float64{-3, -7, 9}, 3), 1e-12) {
		t.Errorf("Sub = %v", got)
	}
	if got := Mul(a, b); !got.AllClose(FromSlice([]float64{4, -10, -18}, 3), 1e-12) {
		t.Errorf("Mul = %v", got)
	}
	if got := Div(b, a); !got.AllClose(FromSlice([]float64{4, -2.5, -2}, 3), 1e-12) {
		t.Errorf("Div = %v", got)
	}
	if got := Scale(a, 2); !got.AllClose(FromSlice([]float64{2, -4, 6}, 3), 1e-12) {
		t.Errorf("Scale = %v", got)
	}
	if got := AddScalar(a, 1); !got.AllClose(FromSlice([]float64{2, -1, 4}, 3), 1e-12) {
		t.Errorf("AddScalar = %v", got)
	}
	if got := Neg(a); !got.AllClose(FromSlice([]float64{-1, 2, -3}, 3), 1e-12) {
		t.Errorf("Neg = %v", got)
	}
	if got := Sign(a); !got.AllClose(FromSlice([]float64{1, -1, 1}, 3), 1e-12) {
		t.Errorf("Sign = %v", got)
	}
	if got := Abs(a); !got.AllClose(FromSlice([]float64{1, 2, 3}, 3), 1e-12) {
		t.Errorf("Abs = %v", got)
	}
}

func TestSignOfZero(t *testing.T) {
	if got := Sign(Scalar(0)).Item(); got != 0 {
		t.Errorf("Sign(0) = %v, want 0", got)
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add with mismatched shapes did not panic")
		}
	}()
	Add(New(2), New(3))
}

func TestClamp(t *testing.T) {
	a := FromSlice([]float64{-5, 0.5, 5}, 3)
	got := Clamp(a, 0, 1)
	want := FromSlice([]float64{0, 0.5, 1}, 3)
	if !got.AllClose(want, 1e-12) {
		t.Errorf("Clamp = %v, want %v", got, want)
	}
	ClampInto(a, -1, 1)
	if !a.AllClose(FromSlice([]float64{-1, 0.5, 1}, 3), 1e-12) {
		t.Errorf("ClampInto = %v", a)
	}
}

func TestMaximumMinimum(t *testing.T) {
	a := FromSlice([]float64{1, 5}, 2)
	b := FromSlice([]float64{3, 2}, 2)
	if got := Maximum(a, b); !got.AllClose(FromSlice([]float64{3, 5}, 2), 1e-12) {
		t.Errorf("Maximum = %v", got)
	}
	if got := Minimum(a, b); !got.AllClose(FromSlice([]float64{1, 2}, 2), 1e-12) {
		t.Errorf("Minimum = %v", got)
	}
}

func TestInPlaceOps(t *testing.T) {
	a := FromSlice([]float64{1, 2}, 2)
	AddInto(a, FromSlice([]float64{10, 20}, 2))
	if !a.AllClose(FromSlice([]float64{11, 22}, 2), 1e-12) {
		t.Errorf("AddInto = %v", a)
	}
	SubInto(a, FromSlice([]float64{1, 2}, 2))
	if !a.AllClose(FromSlice([]float64{10, 20}, 2), 1e-12) {
		t.Errorf("SubInto = %v", a)
	}
	MulInto(a, FromSlice([]float64{2, 0.5}, 2))
	if !a.AllClose(FromSlice([]float64{20, 10}, 2), 1e-12) {
		t.Errorf("MulInto = %v", a)
	}
	ScaleInto(a, 0.1)
	if !a.AllClose(FromSlice([]float64{2, 1}, 2), 1e-12) {
		t.Errorf("ScaleInto = %v", a)
	}
	Axpy(3, FromSlice([]float64{1, 1}, 2), a)
	if !a.AllClose(FromSlice([]float64{5, 4}, 2), 1e-12) {
		t.Errorf("Axpy = %v", a)
	}
}

func TestMatMulKnown(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	got := MatMul(a, b)
	want := FromSlice([]float64{58, 64, 139, 154}, 2, 2)
	if !got.AllClose(want, 1e-12) {
		t.Errorf("MatMul = %v, want %v", got, want)
	}
}

func TestMatMulIdentity(t *testing.T) {
	r := NewRand(1, 2)
	a := RandN(r, 0, 1, 4, 4)
	id := New(4, 4)
	for i := 0; i < 4; i++ {
		id.Set(1, i, i)
	}
	if got := MatMul(a, id); !got.AllClose(a, 1e-12) {
		t.Error("A·I != A")
	}
	if got := MatMul(id, a); !got.AllClose(a, 1e-12) {
		t.Error("I·A != A")
	}
}

func TestMatMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MatMul with bad inner dims did not panic")
		}
	}()
	MatMul(New(2, 3), New(4, 2))
}

func TestMatMulTransposedVariants(t *testing.T) {
	r := NewRand(3, 4)
	a := RandN(r, 0, 1, 5, 3)
	b := RandN(r, 0, 1, 5, 4)
	// aᵀ·b via explicit transpose must match MatMulATB.
	want := MatMul(Transpose2D(a), b)
	if got := MatMulATB(a, b); !got.AllClose(want, 1e-10) {
		t.Error("MatMulATB disagrees with explicit transpose")
	}
	c := RandN(r, 0, 1, 4, 3)
	d := RandN(r, 0, 1, 6, 3)
	want2 := MatMul(c, Transpose2D(d))
	if got := MatMulABT(c, d); !got.AllClose(want2, 1e-10) {
		t.Error("MatMulABT disagrees with explicit transpose")
	}
}

func TestTranspose2D(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	got := Transpose2D(a)
	want := FromSlice([]float64{1, 4, 2, 5, 3, 6}, 3, 2)
	if !got.AllClose(want, 1e-12) {
		t.Errorf("Transpose2D = %v", got)
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRand(seed, 99)
		m := 1 + int(seed%5)
		n := 1 + int((seed/5)%7)
		a := RandN(r, 0, 1, m, n)
		return Transpose2D(Transpose2D(a)).AllClose(a, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestAddRowVectorAndSumRows(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	v := FromSlice([]float64{10, 20}, 2)
	got := AddRowVector(a, v)
	want := FromSlice([]float64{11, 22, 13, 24}, 2, 2)
	if !got.AllClose(want, 1e-12) {
		t.Errorf("AddRowVector = %v", got)
	}
	s := SumRows(a)
	if !s.AllClose(FromSlice([]float64{4, 6}, 2), 1e-12) {
		t.Errorf("SumRows = %v", s)
	}
}

func TestReductions(t *testing.T) {
	a := FromSlice([]float64{3, -1, 4, -1, 5}, 5)
	if got := Sum(a); got != 10 {
		t.Errorf("Sum = %v", got)
	}
	if got := Mean(a); got != 2 {
		t.Errorf("Mean = %v", got)
	}
	if got := Max(a); got != 5 {
		t.Errorf("Max = %v", got)
	}
	if got := Min(a); got != -1 {
		t.Errorf("Min = %v", got)
	}
	if got := Argmax(a); got != 4 {
		t.Errorf("Argmax = %v", got)
	}
	if got := NormInf(a); got != 5 {
		t.Errorf("NormInf = %v", got)
	}
}

func TestArgmaxRows(t *testing.T) {
	a := FromSlice([]float64{0, 2, 1, 9, 3, 4}, 2, 3)
	got := ArgmaxRows(a)
	if got[0] != 1 || got[1] != 0 {
		t.Errorf("ArgmaxRows = %v, want [1 0]", got)
	}
}

func TestDotAndNorm(t *testing.T) {
	a := FromSlice([]float64{3, 4}, 2)
	if got := Dot(a, a); got != 25 {
		t.Errorf("Dot = %v", got)
	}
	if got := Norm2(a); math.Abs(got-5) > 1e-12 {
		t.Errorf("Norm2 = %v", got)
	}
}

func TestSoftmaxRowsSumsToOne(t *testing.T) {
	r := NewRand(7, 8)
	a := RandN(r, 0, 3, 4, 10)
	s := SoftmaxRows(a)
	for i := 0; i < 4; i++ {
		var sum float64
		for j := 0; j < 10; j++ {
			v := s.At(i, j)
			if v < 0 || v > 1 {
				t.Fatalf("softmax value out of [0,1]: %v", v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("row %d sums to %v", i, sum)
		}
	}
}

func TestSoftmaxRowsStability(t *testing.T) {
	a := FromSlice([]float64{1000, 1001, 999}, 1, 3)
	s := SoftmaxRows(a)
	if s.HasNaN() {
		t.Fatal("softmax of large logits produced NaN")
	}
	if s.At(0, 1) <= s.At(0, 0) {
		t.Error("softmax ordering lost")
	}
}

func TestSoftmaxShiftInvariance(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRand(seed, 5)
		a := RandN(r, 0, 1, 2, 6)
		b := AddScalar(a, 17.5)
		return SoftmaxRows(a).AllClose(SoftmaxRows(b), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: Add is commutative and Sub(a, a) is zero.
func TestElementwiseProperties(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRand(seed, 11)
		n := 1 + int(seed%16)
		a := RandN(r, 0, 2, n)
		b := RandN(r, 0, 2, n)
		if !Add(a, b).AllClose(Add(b, a), 0) {
			return false
		}
		z := Sub(a, a)
		return z.AllClose(New(n), 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: MatMul distributes over addition: A(B+C) = AB + AC.
func TestMatMulDistributive(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRand(seed, 13)
		m := 1 + int(seed%4)
		k := 1 + int((seed/4)%4)
		n := 1 + int((seed/16)%4)
		a := RandN(r, 0, 1, m, k)
		b := RandN(r, 0, 1, k, n)
		c := RandN(r, 0, 1, k, n)
		left := MatMul(a, Add(b, c))
		right := Add(MatMul(a, b), MatMul(a, c))
		return left.AllClose(right, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestHasNaN(t *testing.T) {
	a := FromSlice([]float64{1, 2}, 2)
	if a.HasNaN() {
		t.Error("finite tensor reported NaN")
	}
	a.Data()[1] = math.NaN()
	if !a.HasNaN() {
		t.Error("NaN not detected")
	}
	a.Data()[1] = math.Inf(1)
	if !a.HasNaN() {
		t.Error("Inf not detected")
	}
}

func TestStringForms(t *testing.T) {
	small := FromSlice([]float64{1, 2}, 2)
	if s := small.String(); s == "" {
		t.Error("empty String for small tensor")
	}
	big := New(100)
	if s := big.String(); s == "" {
		t.Error("empty String for big tensor")
	}
}

func TestFillZeroCopy(t *testing.T) {
	a := New(3)
	a.Fill(7)
	if !a.AllClose(Full(7, 3), 0) {
		t.Errorf("Fill = %v", a)
	}
	a.Zero()
	if Sum(a) != 0 {
		t.Error("Zero did not clear")
	}
	b := New(3)
	b.CopyFrom(Full(2, 3))
	if !b.AllClose(Full(2, 3), 0) {
		t.Error("CopyFrom failed")
	}
}

func TestRandDeterminism(t *testing.T) {
	a := RandN(NewRand(42, 1), 0, 1, 10)
	b := RandN(NewRand(42, 1), 0, 1, 10)
	if !a.AllClose(b, 0) {
		t.Error("same seed produced different tensors")
	}
	c := RandU(NewRand(42, 1), -1, 1, 10)
	for _, v := range c.Data() {
		if v < -1 || v >= 1 {
			t.Errorf("RandU out of range: %v", v)
		}
	}
}
