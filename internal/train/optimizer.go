// Package train provides optimisers (SGD, momentum, Adam), learning-rate
// schedules, the minibatch training loop and evaluation metrics used to
// train both the CNN baseline and the spiking networks of the paper.
//
// The training loop is batch-oriented end to end: each minibatch is one
// tape (one batched forward/backward over all of its images on the
// configured compute backend), so BatchSize is both the SGD batch and
// the unit of kernel-level work.
package train

import (
	"fmt"
	"math"

	"snnsec/internal/nn"
	"snnsec/internal/tensor"
)

// Optimizer updates parameters from their accumulated gradients. Step
// consumes the gradients; callers clear them (ZeroGrads) before the next
// accumulation.
type Optimizer interface {
	// Step applies one update using the current learning rate.
	Step(params []*nn.Param)
	// SetLR changes the learning rate (used by schedules).
	SetLR(lr float64)
	// LR returns the current learning rate.
	LR() float64
}

// SGD is plain stochastic gradient descent with optional weight decay.
type SGD struct {
	lr          float64
	WeightDecay float64
}

// NewSGD returns plain SGD.
func NewSGD(lr float64) *SGD { return &SGD{lr: lr} }

// Step applies p ← p − lr·(g + wd·p).
func (o *SGD) Step(params []*nn.Param) {
	for _, p := range params {
		if o.WeightDecay != 0 {
			tensor.Axpy(-o.lr*o.WeightDecay, p.Data, p.Data)
		}
		tensor.Axpy(-o.lr, p.Grad, p.Data)
	}
}

// SetLR sets the learning rate.
func (o *SGD) SetLR(lr float64) { o.lr = lr }

// LR returns the learning rate.
func (o *SGD) LR() float64 { return o.lr }

// Momentum is SGD with classical (heavy-ball) momentum.
type Momentum struct {
	lr, mu   float64
	velocity map[*nn.Param]*tensor.Tensor
}

// NewMomentum returns SGD with momentum coefficient mu (typically 0.9).
func NewMomentum(lr, mu float64) *Momentum {
	return &Momentum{lr: lr, mu: mu, velocity: map[*nn.Param]*tensor.Tensor{}}
}

// Step applies v ← mu·v − lr·g; p ← p + v.
func (o *Momentum) Step(params []*nn.Param) {
	for _, p := range params {
		v, ok := o.velocity[p]
		if !ok {
			v = tensor.New(p.Data.Shape()...)
			o.velocity[p] = v
		}
		tensor.ScaleInto(v, o.mu)
		tensor.Axpy(-o.lr, p.Grad, v)
		// Axpy(1, ...) rather than AddInto keeps the update on the calling
		// goroutine: optimiser steps run inside grid workers, and the
		// in-place serial loop is cheaper than a backend dispatch.
		tensor.Axpy(1, v, p.Data)
	}
}

// SetLR sets the learning rate.
func (o *Momentum) SetLR(lr float64) { o.lr = lr }

// LR returns the learning rate.
func (o *Momentum) LR() float64 { return o.lr }

// Adam implements Kingma & Ba's optimiser; the default for all
// experiments, matching the reference implementation of the paper.
type Adam struct {
	lr, beta1, beta2, eps float64
	t                     int
	m, v                  map[*nn.Param]*tensor.Tensor
}

// NewAdam returns Adam with the canonical defaults β₁=0.9, β₂=0.999,
// ε=1e-8.
func NewAdam(lr float64) *Adam {
	return &Adam{
		lr: lr, beta1: 0.9, beta2: 0.999, eps: 1e-8,
		m: map[*nn.Param]*tensor.Tensor{}, v: map[*nn.Param]*tensor.Tensor{},
	}
}

// Step applies the bias-corrected Adam update.
func (o *Adam) Step(params []*nn.Param) {
	o.t++
	c1 := 1 - math.Pow(o.beta1, float64(o.t))
	c2 := 1 - math.Pow(o.beta2, float64(o.t))
	for _, p := range params {
		m, ok := o.m[p]
		if !ok {
			m = tensor.New(p.Data.Shape()...)
			o.m[p] = m
			o.v[p] = tensor.New(p.Data.Shape()...)
		}
		v := o.v[p]
		md, vd, gd, pd := m.Data(), v.Data(), p.Grad.Data(), p.Data.Data()
		for i := range gd {
			g := gd[i]
			md[i] = o.beta1*md[i] + (1-o.beta1)*g
			vd[i] = o.beta2*vd[i] + (1-o.beta2)*g*g
			mhat := md[i] / c1
			vhat := vd[i] / c2
			pd[i] -= o.lr * mhat / (math.Sqrt(vhat) + o.eps)
		}
	}
}

// SetLR sets the learning rate.
func (o *Adam) SetLR(lr float64) { o.lr = lr }

// LR returns the learning rate.
func (o *Adam) LR() float64 { return o.lr }

// Schedule maps an epoch index to a learning rate.
type Schedule interface {
	Rate(epoch int) float64
}

// ConstantSchedule keeps the rate fixed.
type ConstantSchedule struct{ Value float64 }

// Rate returns the constant value.
func (s ConstantSchedule) Rate(int) float64 { return s.Value }

// StepSchedule multiplies the base rate by Gamma every Every epochs.
type StepSchedule struct {
	Base  float64
	Gamma float64
	Every int
}

// Rate returns Base·Gamma^(epoch/Every).
func (s StepSchedule) Rate(epoch int) float64 {
	if s.Every <= 0 {
		panic(fmt.Sprintf("train: StepSchedule.Every = %d", s.Every))
	}
	return s.Base * math.Pow(s.Gamma, float64(epoch/s.Every))
}

// CosineSchedule anneals from Base to Floor over Epochs.
type CosineSchedule struct {
	Base, Floor float64
	Epochs      int
}

// Rate returns the half-cosine interpolation at the given epoch.
func (s CosineSchedule) Rate(epoch int) float64 {
	if s.Epochs <= 1 {
		return s.Base
	}
	if epoch >= s.Epochs {
		return s.Floor
	}
	f := float64(epoch) / float64(s.Epochs-1)
	return s.Floor + (s.Base-s.Floor)*(1+math.Cos(math.Pi*f))/2
}
